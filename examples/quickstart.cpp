// Quickstart: generate a synthetic LBSN, train TCSS, and evaluate the
// paper's ranking metrics (Hit@10, MRR).
//
//   ./quickstart [scale]
//
// `scale` in (0,1] shrinks the dataset for fast experimentation
// (default 0.5).
#include <cstdio>
#include <cstdlib>

#include "core/tcss_model.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "eval/ranking_protocol.h"

int main(int argc, char** argv) {
  using namespace tcss;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;

  // 1. Data: a Gowalla-like synthetic LBSN (users, POIs with geolocation
  //    and category, friendships, seasonally patterned check-ins).
  SyntheticConfig data_cfg =
      PresetConfig(SyntheticPreset::kGowallaLike, scale);
  auto data_or = GenerateSyntheticLbsn(data_cfg);
  if (!data_or.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();
  std::printf("dataset: %s\n", data.Summary().c_str());

  // 2. 80/20 split, month-granularity check-in tensors.
  const TrainTestSplit split = SplitCheckins(data, 0.8, /*seed=*/42);
  auto train_or =
      BuildCheckinTensor(data, split.train, TimeGranularity::kMonthOfYear);
  if (!train_or.ok()) {
    std::fprintf(stderr, "tensor build failed: %s\n",
                 train_or.status().ToString().c_str());
    return 1;
  }
  const SparseTensor& train = train_or.value();
  std::printf("train tensor: %zux%zux%zu nnz=%zu density=%.4f%%\n",
              train.dim_i(), train.dim_j(), train.dim_k(), train.nnz(),
              100.0 * train.Density());

  // 3. Train TCSS with the paper's default hyperparameters.
  TcssConfig cfg;
  cfg.epochs = 300;
  TcssModel model(cfg);
  std::printf("training %s ...\n", cfg.Summary().c_str());
  Status st = model.FitWithCallback(
      {&data, &train, TimeGranularity::kMonthOfYear, 13},
      [](const EpochStats& s, const FactorModel&) {
        if (s.epoch % 75 == 0) {
          std::printf("  epoch %3d  L2=%.3f  L1=%.3f  (%.3fs)\n", s.epoch,
                      s.loss_l2, s.loss_l1, s.seconds);
        }
      });
  if (!st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. Evaluate with the paper's protocol: rank each held-out check-in
  //    against 100 sampled POIs.
  const auto test_cells =
      EventsToCells(split.test, TimeGranularity::kMonthOfYear);
  RankingProtocolOptions opts;
  const RankingMetrics m =
      EvaluateRanking(model, data.num_pois(), test_cells, opts);
  std::printf("TCSS:  Hit@10 = %.4f   MRR = %.4f   (%zu test entries, %zu "
              "users)\n",
              m.hit_at_k, m.mrr, m.num_entries, m.num_users);

  // 5. Score one concrete recommendation, the library's basic use case.
  if (!test_cells.empty()) {
    const TensorCell& c = test_cells.front();
    std::printf("example: user %u, POI %u, month %u -> score %.4f\n", c.i,
                c.j, c.k, model.Score(c.i, c.j, c.k));
  }
  return 0;
}
