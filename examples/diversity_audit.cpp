// Diversity audit: quantifies the effect of the location-entropy weights
// (Eq 11/12). Trains TCSS with and without the e_j = exp(-E_j) weighting
// and compares how popular / diverse the top-10 recommendations are.
//
//   ./diversity_audit [scale]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <set>

#include "core/tcss_model.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "geo/location_entropy.h"

using namespace tcss;

namespace {

struct Audit {
  double mean_entropy_top10 = 0.0;   // popularity of recommended POIs
  double distinct_fraction = 0.0;    // catalogue coverage of the top-10s
};

Audit AuditModel(const TcssModel& model, const Dataset& data,
                 const std::vector<double>& entropy) {
  Audit a;
  std::set<uint32_t> distinct;
  size_t count = 0;
  for (uint32_t user = 0; user < data.num_users(); ++user) {
    std::vector<uint32_t> order(data.num_pois());
    std::iota(order.begin(), order.end(), 0u);
    const uint32_t month = 6;
    std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                      [&](uint32_t x, uint32_t y) {
                        return model.Score(user, x, month) >
                               model.Score(user, y, month);
                      });
    for (int t = 0; t < 10; ++t) {
      a.mean_entropy_top10 += entropy[order[t]];
      distinct.insert(order[t]);
      ++count;
    }
  }
  a.mean_entropy_top10 /= static_cast<double>(count);
  a.distinct_fraction =
      static_cast<double>(distinct.size()) / data.num_pois();
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.6;
  auto data_or = GenerateSyntheticLbsn(
      PresetConfig(SyntheticPreset::kGowallaLike, scale));
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();
  const TrainTestSplit split = SplitCheckins(data, 0.8, 42);
  auto train_or =
      BuildCheckinTensor(data, split.train, TimeGranularity::kMonthOfYear);
  if (!train_or.ok()) return 1;
  const SparseTensor& train = train_or.value();

  // Location entropy of every POI (high = visited by many users).
  const std::vector<double> entropy = ComputeLocationEntropy(train);
  const double catalogue_mean =
      std::accumulate(entropy.begin(), entropy.end(), 0.0) /
      static_cast<double>(entropy.size());

  std::printf("dataset: %s\n", data.Summary().c_str());
  std::printf("mean location entropy over the catalogue: %.3f\n\n",
              catalogue_mean);

  Audit audits[2];
  const char* labels[2] = {"with entropy weights (full TCSS)",
                           "without entropy weights"};
  for (int variant = 0; variant < 2; ++variant) {
    TcssConfig cfg;
    cfg.epochs = 250;
    cfg.use_location_entropy = (variant == 0);
    TcssModel model(cfg);
    std::printf("training %-34s ...\n", labels[variant]);
    Status st = model.Fit({&data, &train, TimeGranularity::kMonthOfYear, 13});
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    audits[variant] = AuditModel(model, data, entropy);
  }

  std::printf("\n%-36s %-22s %-s\n", "variant", "mean entropy of top-10",
              "distinct POIs recommended");
  for (int variant = 0; variant < 2; ++variant) {
    std::printf("%-36s %-22.3f %.1f%% of catalogue\n", labels[variant],
                audits[variant].mean_entropy_top10,
                100.0 * audits[variant].distinct_fraction);
  }
  std::printf("\nLower mean entropy / higher distinct coverage with the "
              "weights on means the recommender favours niche places over "
              "the same few crowd-pleasers - the diversity effect the "
              "paper attributes to Eq 11/12.\n");
  return 0;
}
