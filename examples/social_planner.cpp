// Social weekend planner: the intro scenario of the paper. For a chosen
// user and month, recommend POIs they have not visited yet, and explain
// each recommendation with its social-spatial context (which friends have
// been there, how far it is from the user's usual places).
//
//   ./social_planner [user_id] [month 1-12]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "core/tcss_model.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "geo/haversine.h"

using namespace tcss;

int main(int argc, char** argv) {
  // Build the LBSN world and train TCSS on the observed 80%.
  auto data_or =
      GenerateSyntheticLbsn(PresetConfig(SyntheticPreset::kGowallaLike, 0.6));
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();
  const uint32_t user = argc > 1
                            ? static_cast<uint32_t>(std::atoi(argv[1]))
                            : 17 % data.num_users();
  const uint32_t month =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2]) - 1) % 12 : 6;

  const TrainTestSplit split = SplitCheckins(data, 0.8, 42);
  auto train_or =
      BuildCheckinTensor(data, split.train, TimeGranularity::kMonthOfYear);
  if (!train_or.ok()) {
    std::fprintf(stderr, "%s\n", train_or.status().ToString().c_str());
    return 1;
  }
  const SparseTensor& train = train_or.value();

  TcssConfig cfg;
  cfg.epochs = 250;
  TcssModel model(cfg);
  std::printf("training TCSS on %s ...\n", data.Summary().c_str());
  Status st = model.Fit({&data, &train, TimeGranularity::kMonthOfYear, 13});
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // The user's own train POIs (we only recommend *new* places here).
  std::vector<uint8_t> visited(data.num_pois(), 0);
  for (const auto& e : train.entries()) {
    if (e.i == user) visited[e.j] = 1;
  }
  std::vector<GeoPoint> own_places;
  for (uint32_t j = 0; j < data.num_pois(); ++j) {
    if (visited[j]) own_places.push_back(data.poi(j).location);
  }

  // Friends' POI sets for the social explanation.
  std::vector<std::vector<uint32_t>> friend_of_poi(data.num_pois());
  for (const uint32_t* f = data.social().NeighborsBegin(user);
       f != data.social().NeighborsEnd(user); ++f) {
    for (const auto& e : train.entries()) {
      if (e.i == *f) friend_of_poi[e.j].push_back(*f);
    }
  }

  // Rank unvisited POIs by TCSS score for (user, *, month).
  std::vector<uint32_t> candidates;
  for (uint32_t j = 0; j < data.num_pois(); ++j) {
    if (!visited[j]) candidates.push_back(j);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](uint32_t a, uint32_t b) {
              return model.Score(user, a, month) > model.Score(user, b, month);
            });

  static const char* kMonths[] = {"January",   "February", "March",
                                  "April",     "May",      "June",
                                  "July",      "August",   "September",
                                  "October",   "November", "December"};
  std::printf("\nTop new-place recommendations for user %u in %s:\n", user,
              kMonths[month]);
  std::printf("%-5s %-6s %-14s %-7s %-22s %s\n", "rank", "poi", "category",
              "score", "dist. to usual area", "friends who went");
  const size_t top_n = std::min<size_t>(8, candidates.size());
  for (size_t t = 0; t < top_n; ++t) {
    const uint32_t j = candidates[t];
    double nearest_own = -1.0;
    for (const auto& p : own_places) {
      const double d = HaversineKm(p, data.poi(j).location);
      if (nearest_own < 0 || d < nearest_own) nearest_own = d;
    }
    auto friends = friend_of_poi[j];
    std::sort(friends.begin(), friends.end());
    friends.erase(std::unique(friends.begin(), friends.end()),
                  friends.end());
    std::string who;
    for (size_t f = 0; f < friends.size() && f < 3; ++f) {
      who += (f ? ", " : "") + std::string("user ") +
             std::to_string(friends[f]);
    }
    if (friends.size() > 3) who += ", ...";
    if (who.empty()) who = "-";
    std::printf("%-5zu %-6u %-14s %-7.3f %18.1f km  %s\n", t + 1, j,
                CategoryName(data.poi(j).category),
                model.Score(user, j, month), nearest_own, who.c_str());
  }

  std::printf("\n(The social Hausdorff head is what pulls friend-visited, "
              "nearby POIs up this list.)\n");
  return 0;
}
