// Seasonality explorer: trains TCSS per POI category and inspects the
// learned time factors - which months look alike (Fig 6/7 of the paper)
// and when each category peaks. Demonstrates category filtering, time
// granularities and the TimeFactorSimilarity API.
//
//   ./seasonality_explorer [scale]
#include <cstdio>
#include <cstdlib>

#include "core/tcss_model.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"

using namespace tcss;

namespace {

void ExploreCategory(const Dataset& base, PoiCategory category) {
  Dataset data = base.FilterByCategory(category);
  if (data.num_pois() < 8 || data.num_checkins() < 500) {
    std::printf("\n[%s] too few POIs/check-ins after filtering, skipped\n",
                CategoryName(category));
    return;
  }
  const TrainTestSplit split = SplitCheckins(data, 0.8, 42);
  auto train_or =
      BuildCheckinTensor(data, split.train, TimeGranularity::kMonthOfYear);
  if (!train_or.ok()) return;

  TcssConfig cfg;
  cfg.epochs = 200;
  TcssModel model(cfg);
  Status st = model.Fit(
      {&data, &train_or.value(), TimeGranularity::kMonthOfYear, 13});
  if (!st.ok()) {
    std::fprintf(stderr, "[%s] training failed: %s\n",
                 CategoryName(category), st.ToString().c_str());
    return;
  }

  // Check-in volume per month (the raw seasonal signal).
  size_t volume[12] = {0};
  for (const auto& e : train_or.value().entries()) ++volume[e.k];

  // Which months have similar learned factors?
  const Matrix sim = model.TimeFactorSimilarity();
  std::printf("\n[%s]  %zu POIs, %zu check-ins\n", CategoryName(category),
              data.num_pois(), data.num_checkins());
  std::printf("  month     :  J    F    M    A    M    J    J    A    S    "
              "O    N    D\n");
  std::printf("  volume    :");
  for (int m = 0; m < 12; ++m) std::printf(" %4zu", volume[m]);
  std::printf("\n  sim to Jul:");
  for (int m = 0; m < 12; ++m) std::printf(" %4.2f", sim(m, 6));
  std::printf("\n  sim to Dec:");
  for (int m = 0; m < 12; ++m) std::printf(" %4.2f", sim(m, 11));
  std::printf("\n");

  // Seasonal block strength: adjacent- vs opposite-month similarity.
  double adjacent = 0, opposite = 0;
  for (int m = 0; m < 12; ++m) {
    adjacent += sim(m, (m + 1) % 12);
    opposite += sim(m, (m + 6) % 12);
  }
  std::printf("  seasonality score (adjacent - opposite): %.3f\n",
              (adjacent - opposite) / 12.0);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.6;
  auto data = GenerateSyntheticLbsn(
      PresetConfig(SyntheticPreset::kGowallaLike, scale));
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %s\n", data.value().Summary().c_str());
  std::printf("\nHow seasonal is each POI category, and did the model learn "
              "it?\n(expect: outdoor most seasonal, food least - Fig 7 of "
              "the paper)\n");
  for (int c = 0; c < kNumCategories; ++c) {
    ExploreCategory(data.value(), static_cast<PoiCategory>(c));
  }
  return 0;
}
