// tcss - command-line front end for the TCSS library.
//
//   tcss generate  --preset gowalla|yelp|foursquare|gmu5k [--scale S]
//                  [--seed N] --out DIR
//   tcss train     --data DIR --model FILE [--epochs N] [--rank R]
//                  [--lambda L] [--num-threads N]
//                  [--granularity month|week|hour]
//                  [--checkpoint-dir DIR] [--checkpoint-every N]
//                  [--checkpoint-retain N] [--resume]
//                  [--metrics-out FILE] [--metrics-every N]
//   tcss evaluate  --data DIR --model FILE [--granularity G]
//   tcss recommend --data DIR --model FILE --user U [--time K] [--k N]
//                  [--new-only] [--granularity G]
//   tcss serve     --data DIR --model FILE
//                  (--requests FILE | --listen SOCKET)
//                  [--granularity G] [--poll-every N] [--metrics-out FILE]
//                  [--workers N] [--queue N] [--max-batch N] [--max-conns N]
//                  [--deadline-ms X] [--write-timeout-ms N]
//                  [--ann-tables N] [--ann-probes N] [--ann-min-candidates N]
//
// `generate` writes an LBSN as CSV (pois.csv / checkins.csv / friends.csv);
// `train` fits TCSS on an 80/20 split of the check-ins and saves the
// factors; `evaluate` reports Hit@10 / MRR on the held-out 20%;
// `recommend` prints a ranked POI list for one user and time bin; `serve`
// answers queries through the resilient fallback chain (hot-reloaded
// model -> fold-in -> popularity) — either a batch request file
// (`--requests`, ranked lists on stdout) or a Unix-domain socket server
// (`--listen`, frame protocol of serve/frontend.h with admission control
// and load shedding; see DESIGN.md §10).
//
// Both `train` and `serve --listen` shut down gracefully on SIGINT/SIGTERM:
// training writes a final checkpoint through the atomic path and saves the
// model trained so far; the server stops accepting, answers or sheds
// everything in flight, flushes --metrics-out, and exits 0.
//
// All data-loading commands accept `--lenient` (quarantine malformed CSV
// rows instead of failing the load) and `--max-bad-rows N`.
//
// `--metrics-out FILE` dumps the process metric registry (stage timings,
// counters, latency histograms) as JSON — periodically while running
// (atomic replace, so the file is always whole) and once on exit. Set
// TCSS_LOG_LEVEL=debug|info|warning|error to change log verbosity.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/env.h"
#include "common/strings.h"
#include "core/checkpoint.h"
#include "core/model_io.h"
#include "core/recommend.h"
#include "core/tcss_model.h"
#include "data/csv_io.h"
#include "data/split.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "dist/coordinator.h"
#include "dist/partition.h"
#include "dist/worker.h"
#include "eval/ranking_protocol.h"
#include "obs/metrics.h"
#include "serve/model_watcher.h"
#include "serve/recommend_service.h"
#include "serve/request.h"
#include "serve/server.h"
#include "stream/streaming_engine.h"

namespace {

using namespace tcss;

// SIGINT/SIGTERM request a graceful stop. The handler only stores to an
// atomic flag (the one async-signal-safe thing it can do); the trainer
// checks it per epoch and the server's drain loop polls it.
std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

void InstallStopHandlers() {
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
}

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;
  bool new_only = false;
  bool resume = false;
  bool lenient = false;
  bool ingest = false;

  const char* Get(const std::string& key, const char* dflt = nullptr) const {
    auto it = flags.find(key);
    return it != flags.end() ? it->second.c_str() : dflt;
  }
  double GetD(const std::string& key, double dflt) const {
    const char* v = Get(key);
    return v != nullptr ? std::atof(v) : dflt;
  }
  long GetI(const std::string& key, long dflt) const {
    const char* v = Get(key);
    return v != nullptr ? std::atol(v) : dflt;
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tcss generate  --preset gowalla|yelp|foursquare|gmu5k "
      "[--scale S] [--seed N] --out DIR\n"
      "  tcss train     --data DIR --model FILE [--epochs N] [--rank R] "
      "[--lambda L] [--num-threads N] [--granularity month|week|hour] "
      "[--checkpoint-dir DIR] [--checkpoint-every N] "
      "[--checkpoint-retain N] [--resume] "
      "[--metrics-out FILE] [--metrics-every N]\n"
      "  tcss evaluate  --data DIR --model FILE [--granularity G]\n"
      "  tcss stats     --data DIR\n"
      "distributed training (see DESIGN.md §11):\n"
      "  tcss train     --dist-coordinator SOCKET --dist-workers W "
      "[--model FILE] [--checkpoint-every N] [training flags] "
      "(--data DIR | --streamed-users N [--streamed-pois N] "
      "[--streamed-bins N] [--streamed-seed S])\n"
      "  tcss train     --dist-worker SOCKET --dist-rank R "
      "--dist-workers W [--checkpoint-dir DIR] [training flags] "
      "(--data DIR | --streamed-users N ...)\n"
      "  tcss recommend --data DIR --model FILE --user U [--time K] "
      "[--k N] [--new-only] [--granularity G]\n"
      "  tcss serve     --data DIR --model FILE "
      "(--requests FILE | --listen SOCKET) "
      "[--granularity G] [--poll-every N] [--metrics-out FILE] "
      "[--workers N] [--queue N] [--max-batch N] [--max-conns N] "
      "[--deadline-ms X] [--write-timeout-ms N] "
      "[--ann-tables N] [--ann-probes N] [--ann-min-candidates N] "
      "[--ingest [--rollover-every N] [--refine-every N] "
      "[--refine-budget N]]\n"
      "common flags: [--lenient] [--max-bad-rows N]\n"
      "env: TCSS_LOG_LEVEL=debug|info|warning|error\n");
  return 2;
}

// Dumps the global metric registry to `path` (no-op on null). A failed
// dump only warns: telemetry must never fail the command it observes.
void DumpMetrics(const char* path) {
  if (path == nullptr) return;
  Status st = obs::DumpMetricsJson(Env::Default(), path);
  if (!st.ok()) {
    std::fprintf(stderr, "warning: metrics dump to %s failed: %s\n", path,
                 st.ToString().c_str());
  }
}

TimeGranularity ParseGranularity(const char* s) {
  if (s == nullptr || std::strcmp(s, "month") == 0) {
    return TimeGranularity::kMonthOfYear;
  }
  if (std::strcmp(s, "week") == 0) return TimeGranularity::kWeekOfYear;
  if (std::strcmp(s, "hour") == 0) return TimeGranularity::kHourOfDay;
  std::fprintf(stderr, "unknown granularity '%s', using month\n", s);
  return TimeGranularity::kMonthOfYear;
}

int Generate(const Args& args) {
  const char* preset_name = args.Get("preset", "gowalla");
  const char* out = args.Get("out");
  if (out == nullptr) return Usage();
  SyntheticPreset preset = SyntheticPreset::kGowallaLike;
  if (std::strcmp(preset_name, "yelp") == 0) {
    preset = SyntheticPreset::kYelpLike;
  } else if (std::strcmp(preset_name, "foursquare") == 0) {
    preset = SyntheticPreset::kFoursquareLike;
  } else if (std::strcmp(preset_name, "gmu5k") == 0) {
    preset = SyntheticPreset::kGmu5kLike;
  } else if (std::strcmp(preset_name, "gowalla") != 0) {
    std::fprintf(stderr, "unknown preset '%s'\n", preset_name);
    return 2;
  }
  SyntheticConfig cfg = PresetConfig(preset, args.GetD("scale", 1.0));
  cfg.seed = static_cast<uint64_t>(args.GetI("seed", cfg.seed));
  auto data = GenerateSyntheticLbsn(cfg);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  std::filesystem::create_directories(out);
  Status st = SaveDatasetCsv(data.value(), out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s to %s\n", data.value().Summary().c_str(), out);
  return 0;
}

Result<Dataset> LoadData(const Args& args) {
  const char* dir = args.Get("data");
  if (dir == nullptr) return Status::InvalidArgument("--data is required");
  CsvLoadOptions opts;
  opts.mode = args.lenient ? CsvLoadMode::kLenient : CsvLoadMode::kStrict;
  opts.max_bad_rows = static_cast<size_t>(
      args.GetI("max-bad-rows", static_cast<long>(opts.max_bad_rows)));
  LoadReport report;
  auto data = LoadDatasetCsv(dir, opts, &report);
  if (data.ok() && report.bad_rows() > 0) {
    std::fprintf(stderr,
                 "warning: quarantined %zu bad rows (%zu pois, %zu "
                 "checkins, %zu edges) to %s\n",
                 report.bad_rows(), report.bad_pois, report.bad_checkins,
                 report.bad_edges, report.quarantine_path.c_str());
  }
  return data;
}

// Distributed training entry points (`train --dist-coordinator` /
// `--dist-worker`). Every process of a run must be launched with the same
// training flags and data source — the fingerprint handshake enforces it.
// The tensor comes either from a CSV dataset (--data, sliced per worker)
// or from the streamed power-law generator (--streamed-users ...), where
// each worker synthesizes only its own row block and the full tensor is
// never materialized anywhere.
int DistTrain(const Args& args) {
  const char* coord_socket = args.Get("dist-coordinator");
  const char* worker_socket = args.Get("dist-worker");
  const int num_workers = static_cast<int>(args.GetI("dist-workers", 1));

  TcssConfig cfg;
  cfg.epochs = static_cast<int>(args.GetI("epochs", 40));
  cfg.rank = static_cast<size_t>(args.GetI("rank", 8));
  cfg.num_threads =
      static_cast<int>(args.GetI("num-threads", cfg.num_threads));
  cfg.seed = static_cast<uint64_t>(args.GetI("seed", 13));
  cfg.learning_rate = args.GetD("lr", cfg.learning_rate);
  cfg.temporal_smoothness =
      args.GetD("temporal-smoothness", cfg.temporal_smoothness);
  // The social Hausdorff head couples users across shards and spectral
  // init needs the full tensor; the distributed defaults drop both
  // (ValidateDistConfig rejects incompatible overrides with a diagnostic).
  cfg.lambda = args.GetD("lambda", 0.0);
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.init = InitMethod::kRandom;

  // Dims + a per-rank tensor slice factory, from either source.
  const bool streamed = args.Get("streamed-users") != nullptr;
  StreamedTensorConfig scfg;
  SparseTensor full;
  size_t dim_i = 0, dim_j = 0, dim_k = 0;
  if (streamed) {
    scfg.num_users = static_cast<size_t>(args.GetI("streamed-users", 0));
    scfg.num_pois = static_cast<size_t>(
        args.GetI("streamed-pois", static_cast<long>(scfg.num_pois)));
    scfg.num_bins = static_cast<size_t>(
        args.GetI("streamed-bins", static_cast<long>(scfg.num_bins)));
    scfg.seed = static_cast<uint64_t>(
        args.GetI("streamed-seed", static_cast<long>(scfg.seed)));
    scfg.mean_checkins =
        args.GetD("streamed-mean-checkins", scfg.mean_checkins);
    dim_i = scfg.num_users;
    dim_j = scfg.num_pois;
    dim_k = scfg.num_bins;
  } else {
    auto data = LoadData(args);
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    const TimeGranularity g = ParseGranularity(args.Get("granularity"));
    TrainTestSplit split = SplitCheckins(data.value(), 0.8, 42);
    auto built = BuildCheckinTensor(data.value(), split.train, g);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    full = built.MoveValue();
    dim_i = full.dim_i();
    dim_j = full.dim_j();
    dim_k = full.dim_k();
  }
  if (dim_i == 0 || dim_j == 0 || dim_k == 0) {
    std::fprintf(stderr,
                 "distributed training needs a data source: --data DIR or "
                 "--streamed-users N\n");
    return 2;
  }

  if (coord_socket != nullptr) {
    InstallStopHandlers();
    DistCoordinatorOptions opts;
    opts.num_workers = num_workers;
    opts.socket_path = coord_socket;
    opts.checkpoint_every = static_cast<int>(args.GetI("checkpoint-every", 25));
    opts.heartbeat_timeout_ms =
        static_cast<int>(args.GetI("heartbeat-timeout-ms", 3000));
    opts.world_timeout_ms =
        static_cast<int>(args.GetI("world-timeout-ms", 60000));
    opts.stop = &g_stop;
    opts.epoch_callback = [&cfg](const EpochStats& s) {
      if (s.epoch % std::max(1, cfg.epochs / 5) == 0) {
        std::printf("  epoch %4d  L2=%.2f  grad=%.3g  lr=%.4f\n", s.epoch,
                    s.loss_l2, s.grad_norm, s.lr);
      }
    };
    DistCoordinator coordinator(cfg, dim_i, dim_j, dim_k, opts);
    std::printf("coordinating %d workers on %s (%s, tensor %zux%zux%zu)\n",
                num_workers, coord_socket, cfg.Summary().c_str(), dim_i,
                dim_j, dim_k);
    auto model = coordinator.Run();
    const DistCoordinatorStats& cs = coordinator.stats();
    std::fprintf(stderr,
                 "coordinator: %d epochs, %d rollbacks, %d recoveries, %d "
                 "stragglers, %d ckpt acks\n",
                 cs.epochs, cs.rollbacks, cs.recoveries, cs.stragglers,
                 cs.ckpt_acks);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    const char* model_path = args.Get("model");
    if (model_path != nullptr) {
      Status st = SaveFactorModel(model.value(), model_path);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("saved model to %s\n", model_path);
    }
    return 0;
  }

  // Worker process.
  const int rank = static_cast<int>(args.GetI("dist-rank", 0));
  const RowPartition part(dim_i, num_workers);
  if (rank < 0 || rank >= num_workers) {
    std::fprintf(stderr, "--dist-rank %d outside [0, %d)\n", rank,
                 num_workers);
    return 2;
  }
  Result<SparseTensor> slice =
      streamed
          ? GenerateStreamedSlice(scfg, part.Begin(rank), part.End(rank))
          : SliceTensorRows(full, part.Begin(rank), part.End(rank));
  if (!slice.ok()) {
    std::fprintf(stderr, "%s\n", slice.status().ToString().c_str());
    return 1;
  }
  DistWorkerOptions wopts;
  wopts.rank = rank;
  wopts.num_workers = num_workers;
  wopts.socket_path = worker_socket;
  const char* ckpt_dir = args.Get("checkpoint-dir");
  if (ckpt_dir != nullptr) wopts.checkpoint_dir = ckpt_dir;
  wopts.checkpoint_retain =
      static_cast<int>(args.GetI("checkpoint-retain", 3));
  DistWorker worker(cfg, dim_i, dim_j, dim_k, slice.MoveValue(), wopts);
  std::printf("worker %d/%d connecting to %s (%zu local users)\n", rank,
              num_workers, worker_socket, part.Count(rank));
  Status st = worker.Run();
  const DistWorkerStats& ws = worker.stats();
  std::fprintf(stderr,
               "worker %d: %d epochs computed, %d steps, %d rollbacks, %d "
               "reconnects, %d checkpoints, %d reloads\n",
               rank, ws.epochs_computed, ws.steps_applied, ws.rollbacks,
               ws.reconnects, ws.checkpoints, ws.reloads);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}

int Train(const Args& args) {
  if (args.Get("dist-coordinator") != nullptr ||
      args.Get("dist-worker") != nullptr) {
    return DistTrain(args);
  }
  const char* model_path = args.Get("model");
  if (model_path == nullptr) return Usage();
  auto data = LoadData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const TimeGranularity g = ParseGranularity(args.Get("granularity"));
  TrainTestSplit split = SplitCheckins(data.value(), 0.8, 42);
  auto train = BuildCheckinTensor(data.value(), split.train, g);
  if (!train.ok()) {
    std::fprintf(stderr, "%s\n", train.status().ToString().c_str());
    return 1;
  }
  TcssConfig cfg;
  cfg.epochs = static_cast<int>(args.GetI("epochs", cfg.epochs));
  cfg.rank = static_cast<size_t>(args.GetI("rank", cfg.rank));
  cfg.lambda = args.GetD("lambda", cfg.lambda);
  cfg.num_threads =
      static_cast<int>(args.GetI("num-threads", cfg.num_threads));

  const char* ckpt_dir = args.Get("checkpoint-dir");
  if (args.resume && ckpt_dir == nullptr) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return 2;
  }
  std::unique_ptr<CheckpointManager> checkpoints;
  if (ckpt_dir != nullptr) {
    CheckpointOptions copts;
    copts.dir = ckpt_dir;
    copts.every = static_cast<int>(args.GetI("checkpoint-every", 25));
    copts.retain = static_cast<int>(args.GetI("checkpoint-retain", 3));
    checkpoints = std::make_unique<CheckpointManager>(copts);
    Status cst = checkpoints->Init();
    if (!cst.ok()) {
      std::fprintf(stderr, "%s\n", cst.ToString().c_str());
      return 1;
    }
  }
  TrainOptions topts;
  topts.checkpoints = checkpoints.get();
  topts.resume = args.resume;
  // An explicit --resume against a directory with nothing loadable exits
  // nonzero with a diagnostic instead of silently retraining from scratch.
  topts.require_checkpoint = args.resume;
  InstallStopHandlers();
  topts.stop = &g_stop;

  const char* metrics_out = args.Get("metrics-out");
  const long metrics_every = std::max(1L, args.GetI("metrics-every", 25));

  TcssModel model(cfg);
  std::printf("training %s on %s ...\n", cfg.Summary().c_str(),
              data.value().Summary().c_str());
  Status st = model.FitWithOptions(
      {&data.value(), &train.value(), g, 13}, topts,
      [&](const EpochStats& s, const FactorModel&) {
        if (s.epoch % std::max(1, cfg.epochs / 5) == 0) {
          std::printf("  epoch %4d  L2=%.2f  L1=%.2f\n", s.epoch, s.loss_l2,
                      s.loss_l1);
        }
        // Periodic flush so a killed run still leaves telemetry behind;
        // the write is atomic-replace, never a torn file.
        if (metrics_out != nullptr && s.epoch % metrics_every == 0) {
          DumpMetrics(metrics_out);
        }
      });
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    DumpMetrics(metrics_out);
    return 1;
  }
  if (g_stop.load(std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "interrupted: saving the model trained so far "
                 "(checkpoint written; --resume continues from here)\n");
  }
  st = SaveFactorModel(model.factors(), model_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    DumpMetrics(metrics_out);
    return 1;
  }
  std::printf("saved model to %s\n", model_path);
  DumpMetrics(metrics_out);
  return 0;
}

// Loads a model and exposes it through the Recommender interface.
class LoadedModel : public Recommender {
 public:
  explicit LoadedModel(FactorModel factors) : factors_(std::move(factors)) {}
  std::string name() const override { return "TCSS(loaded)"; }
  Status Fit(const TrainContext&) override { return Status::OK(); }
  double Score(uint32_t i, uint32_t j, uint32_t k) const override {
    return factors_.Predict(i, j, k);
  }
  const FactorModel& factors() const { return factors_; }

 private:
  FactorModel factors_;
};

Result<LoadedModel> LoadModel(const Args& args, const Dataset& data,
                              TimeGranularity g) {
  const char* path = args.Get("model");
  if (path == nullptr) return Status::InvalidArgument("--model is required");
  auto factors = LoadFactorModel(path);
  if (!factors.ok()) return factors.status();
  const FactorModel& m = factors.value();
  if (m.u1.rows() != data.num_users() || m.u2.rows() != data.num_pois() ||
      m.u3.rows() != NumBins(g)) {
    return Status::InvalidArgument(
        "model dimensions do not match the dataset/granularity");
  }
  return LoadedModel(factors.MoveValue());
}

int Stats(const Args& args) {
  auto data = LoadData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const DatasetProfile profile = ProfileDataset(data.value());
  std::fputs(profile.ToString().c_str(), stdout);
  return 0;
}

int Evaluate(const Args& args) {
  auto data = LoadData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const TimeGranularity g = ParseGranularity(args.Get("granularity"));
  auto model = LoadModel(args, data.value(), g);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  TrainTestSplit split = SplitCheckins(data.value(), 0.8, 42);
  const auto cells = EventsToCells(split.test, g);
  RankingMetrics m = EvaluateRanking(model.value(), data.value().num_pois(),
                                     cells, RankingProtocolOptions{});
  std::printf("test entries: %zu users: %zu\nHit@10 = %.4f\nMRR    = %.4f\n",
              m.num_entries, m.num_users, m.hit_at_k, m.mrr);
  return 0;
}

int Recommend(const Args& args) {
  auto data = LoadData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const TimeGranularity g = ParseGranularity(args.Get("granularity"));
  auto model = LoadModel(args, data.value(), g);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  const char* user_s = args.Get("user");
  if (user_s == nullptr) return Usage();
  const uint32_t user = static_cast<uint32_t>(std::atol(user_s));
  if (user >= data.value().num_users()) {
    std::fprintf(stderr, "user %u out of range\n", user);
    return 1;
  }
  const uint32_t time_bin = static_cast<uint32_t>(
      args.GetI("time", 0) % static_cast<long>(NumBins(g)));

  TopKOptions opts;
  opts.k = static_cast<size_t>(args.GetI("k", 10));
  opts.exclude_visited = args.new_only;
  TrainTestSplit split = SplitCheckins(data.value(), 0.8, 42);
  auto train = BuildCheckinTensor(data.value(), split.train, g);
  if (!train.ok()) {
    std::fprintf(stderr, "%s\n", train.status().ToString().c_str());
    return 1;
  }
  auto recs = TopKRecommendations(model.value(), user, time_bin,
                                  data.value().num_pois(), opts,
                                  &train.value());
  std::printf("top-%zu POIs for user %u at %s bin %u%s:\n", opts.k, user,
              GranularityName(g), time_bin,
              args.new_only ? " (new places only)" : "");
  std::printf("%-5s %-6s %-14s %-9s %-s\n", "rank", "poi", "category",
              "score", "location");
  for (size_t t = 0; t < recs.size(); ++t) {
    const Poi& poi = data.value().poi(recs[t].poi);
    std::printf("%-5zu %-6u %-14s %-9.4f %s\n", t + 1, recs[t].poi,
                CategoryName(poi.category), recs[t].score,
                ToString(poi.location).c_str());
  }
  return 0;
}

// Batch serving front end: every line of --requests is either a `topk`
// query (see ParseRequestLine), `poll` (one hot-reload check), `stats`
// (dump running stats to stderr), a blank line or a `#` comment. The
// process never aborts on a malformed line — it reports and moves on,
// because request files are untrusted input.
// Socket server mode (`serve --listen`): runs until SIGINT/SIGTERM, then
// drains — stops accepting, answers or sheds everything accepted, flushes
// metrics and exits 0. Overload never crashes it: the queue is bounded,
// admission control sheds predicted deadline misses, slow clients hit
// write timeouts.
int ServeListen(const Args& args, RecommendService* service,
                StreamingEngine* engine, const char* listen,
                const char* metrics_out, long poll_every) {
  InstallStopHandlers();
  ServerOptions sopts;
  if (engine != nullptr) {
    // Ingest frames run on the dispatcher thread (the sole mutator of
    // serving state), interleaved with query batches.
    sopts.ingest_handler = [engine](const ServeRequest& req) {
      return engine->Ingest(req);
    };
  }
  sopts.num_workers = static_cast<int>(args.GetI("workers", 0));
  sopts.queue_capacity = static_cast<size_t>(args.GetI("queue", 256));
  sopts.max_batch = static_cast<size_t>(args.GetI("max-batch", 32));
  sopts.max_connections = static_cast<size_t>(args.GetI("max-conns", 64));
  sopts.default_deadline_ms = args.GetD("deadline-ms", 0.0);
  sopts.write_timeout_ms =
      static_cast<int>(args.GetI("write-timeout-ms", 2000));
  sopts.poll_every_batches = static_cast<int>(poll_every);
  Server server(service, listen, sopts);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "listening on unix socket %s\n", listen);
  int ticks = 0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (metrics_out != nullptr && ++ticks % 100 == 0) {
      DumpMetrics(metrics_out);  // ~every 5 s, atomic replace
    }
  }
  std::fprintf(stderr, "signal received, draining ...\n");
  st = server.Stop();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "server: %s\n", server.stats().ToString().c_str());
  std::fprintf(stderr, "service: %s\n", service->Stats().ToString().c_str());
  DumpMetrics(metrics_out);
  return 0;
}

int Serve(const Args& args) {
  const char* model_path = args.Get("model");
  const char* requests_path = args.Get("requests");
  const char* listen = args.Get("listen");
  if (model_path == nullptr ||
      (requests_path == nullptr && listen == nullptr)) {
    return Usage();
  }
  auto data = LoadData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const TimeGranularity g = ParseGranularity(args.Get("granularity"));
  const long poll_every = args.GetI("poll-every", 0);
  const char* metrics_out = args.Get("metrics-out");

  ModelWatcher::Options wopts;
  wopts.num_users = data.value().num_users();
  wopts.num_pois = data.value().num_pois();
  wopts.num_bins = NumBins(g);
  ModelWatcher watcher(model_path, wopts);
  RecommendService::Options svc_opts;
  // ANN candidate generation (DESIGN.md §13): --ann-tables > 0 enables
  // the LSH tier; probes and the exact-fallback floor tune the
  // recall/latency trade-off per deployment.
  const long ann_tables = args.GetI("ann-tables", 0);
  if (ann_tables > 0) {
    svc_opts.ann.enabled = true;
    svc_opts.ann.lsh.tables = static_cast<size_t>(ann_tables);
    svc_opts.ann.lsh.probes = static_cast<size_t>(
        args.GetI("ann-probes", static_cast<long>(svc_opts.ann.lsh.probes)));
    svc_opts.ann.lsh.min_candidates = static_cast<size_t>(args.GetI(
        "ann-min-candidates",
        static_cast<long>(svc_opts.ann.lsh.min_candidates)));
  }
  // Streaming ingestion (--ingest, DESIGN.md §14): the engine owns the
  // delta buffer, the incremental fold-in tier the service delegates to,
  // and the periodic rollover/refinement publishers. The refinement config
  // mirrors the train command's flags; --refine-budget is its epoch count.
  std::unique_ptr<StreamingEngine> engine;
  if (args.ingest) {
    StreamingEngine::Options eopts;
    eopts.granularity = g;
    eopts.model_path = model_path;
    eopts.rollover_every =
        static_cast<uint64_t>(args.GetI("rollover-every", 0));
    eopts.refine_every = static_cast<uint64_t>(args.GetI("refine-every", 0));
    TcssConfig rcfg;
    rcfg.epochs = static_cast<int>(args.GetI("refine-budget", 3));
    rcfg.rank = static_cast<size_t>(args.GetI("rank", rcfg.rank));
    rcfg.lambda = args.GetD("lambda", rcfg.lambda);
    rcfg.num_threads =
        static_cast<int>(args.GetI("num-threads", rcfg.num_threads));
    eopts.refiner.config = rcfg;
    eopts.refiner.stop = &g_stop;
    engine = std::make_unique<StreamingEngine>(data.value(), &watcher,
                                               eopts);
    svc_opts.incremental = engine->fold_in();
  }
  RecommendService service(&data.value(), g, &watcher, svc_opts);
  Status st = service.Init();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (watcher.current() == nullptr) {
    std::fprintf(stderr, "warning: no valid model at %s (%s); serving %s\n",
                 model_path, watcher.last_error().ToString().c_str(),
                 ServeHealthName(service.health()));
  }

  if (listen != nullptr) {
    return ServeListen(args, &service, engine.get(), listen, metrics_out,
                       poll_every);
  }

  std::ifstream in(requests_path);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", requests_path);
    return 1;
  }
  std::string line;
  size_t lineno = 0;
  long since_poll = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed(Trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (trimmed == "poll") {
      service.PollModel();
      std::fprintf(stderr, "poll: health=%s\n",
                   ServeHealthName(service.health()));
      continue;
    }
    if (trimmed == "stats") {
      std::fprintf(stderr, "%s\n", service.Stats().ToString().c_str());
      continue;
    }
    auto req = ParseRequestLine(trimmed);
    if (!req.ok()) {
      std::printf("line %zu error: %s\n", lineno,
                  req.status().message().c_str());
      continue;
    }
    if (poll_every > 0 && ++since_poll >= poll_every) {
      service.PollModel();
      since_poll = 0;
    }
    if (req.value().verb == ServeVerb::kIngest) {
      if (engine == nullptr) {
        std::printf("line %zu error: ingest not enabled (pass --ingest)\n",
                    lineno);
        continue;
      }
      auto seq = engine->Ingest(req.value());
      if (!seq.ok()) {
        std::printf("line %zu error: %s\n", lineno,
                    seq.status().message().c_str());
      } else {
        std::printf("ingested seq=%llu\n",
                    static_cast<unsigned long long>(seq.value()));
      }
      continue;
    }
    auto resp = service.TopK(req.value());
    std::printf("user=%u time=%u tier=%s :", req.value().user,
                req.value().time_bin, ServeTierName(resp.tier));
    for (const auto& r : resp.recs) {
      std::printf(" %u:%.4f", r.poi, r.score);
    }
    std::printf("\n");
    if (metrics_out != nullptr && lineno % 256 == 0) {
      DumpMetrics(metrics_out);
    }
  }
  std::fprintf(stderr, "%s\n", service.Stats().ToString().c_str());
  DumpMetrics(metrics_out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int a = 2; a < argc; ++a) {
    std::string flag = argv[a];
    if (flag.rfind("--", 0) != 0) return Usage();
    flag = flag.substr(2);
    if (flag == "new-only") {
      args.new_only = true;
    } else if (flag == "resume") {
      args.resume = true;
    } else if (flag == "lenient") {
      args.lenient = true;
    } else if (flag == "ingest") {
      args.ingest = true;
    } else if (a + 1 < argc) {
      args.flags[flag] = argv[++a];
    } else {
      return Usage();
    }
  }
  if (args.command == "generate") return Generate(args);
  if (args.command == "train") return Train(args);
  if (args.command == "evaluate") return Evaluate(args);
  if (args.command == "stats") return Stats(args);
  if (args.command == "recommend") return Recommend(args);
  if (args.command == "serve") return Serve(args);
  return Usage();
}
