#!/usr/bin/env bash
# CI check, three stages:
#
#   1. Plain build: run the serving-layer, randomized-corruption, and
#      parallel-determinism suites (ctest labels "serve", "fuzz", and
#      "determinism") in the production configuration — the exact
#      binaries that ship.
#   2. Sanitizer build: configure with AddressSanitizer + UBSan and run
#      the FULL test suite (which again includes the labeled suites)
#      under the instrumented binaries.
#   3. ThreadSanitizer build: configure with TCSS_SANITIZE=thread and run
#      the determinism suite, which drives the thread pool, the sharded
#      losses, and multi-threaded training end to end. Any data race in
#      the parallel engine fails here.
#
#   tools/check.sh [asan-build-dir] [tsan-build-dir]
#                  (defaults: build-asan, build-tsan; the plain stage
#                   uses/creates ./build)
#
# Any test failure or sanitizer report (heap overflow, UB, leak, race)
# fails.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
TSAN_DIR="${2:-build-tsan}"

# --- Stage 1: plain build, resilience + determinism suites ---------------
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -L "serve|fuzz|determinism"

# --- Stage 2: ASan/UBSan build, full suite -------------------------------
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTCSS_SANITIZE="address;undefined"
cmake --build "$BUILD_DIR" -j

# halt_on_error so UBSan findings fail the test instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

# --- Stage 3: TSan build, determinism suite ------------------------------
# TSan is mutually exclusive with ASan, hence the separate tree. Only the
# determinism label runs here: it is the suite that exercises concurrency
# (ThreadPool, sharded losses, multi-threaded training); the rest of the
# suite is single-threaded and already covered by stage 2.
cmake -B "$TSAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTCSS_SANITIZE=thread
cmake --build "$TSAN_DIR" -j

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
ctest --test-dir "$TSAN_DIR" --output-on-failure -L "determinism"

echo "sanitizer check passed"
