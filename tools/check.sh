#!/usr/bin/env bash
# Sanitizer CI check: configure with AddressSanitizer + UBSan, build
# everything, and run the full test suite under the instrumented binaries.
#
#   tools/check.sh [build-dir]        (default: build-asan)
#
# Any sanitizer report (heap overflow, UB, leak) fails the ctest run.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTCSS_SANITIZE="address;undefined"
cmake --build "$BUILD_DIR" -j

# halt_on_error so UBSan findings fail the test instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

echo "sanitizer check passed"
