#!/usr/bin/env bash
# CI check, two stages:
#
#   1. Plain build: run the serving-layer and randomized-corruption suites
#      (ctest labels "serve" and "fuzz") in the production configuration —
#      the exact binaries that ship.
#   2. Sanitizer build: configure with AddressSanitizer + UBSan and run
#      the FULL test suite (which again includes serve + fuzz) under the
#      instrumented binaries.
#
#   tools/check.sh [asan-build-dir]   (default: build-asan; the plain
#                                      stage uses/creates ./build)
#
# Any test failure or sanitizer report (heap overflow, UB, leak) fails.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

# --- Stage 1: plain build, resilience suites -----------------------------
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -L "serve|fuzz"

# --- Stage 2: ASan/UBSan build, full suite -------------------------------
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTCSS_SANITIZE="address;undefined"
cmake --build "$BUILD_DIR" -j

# halt_on_error so UBSan findings fail the test instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

echo "sanitizer check passed"
