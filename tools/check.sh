#!/usr/bin/env bash
# CI check, three stages:
#
#   1. Plain build: run the serving-layer, server chaos, randomized-
#      corruption, parallel-determinism, observability, property-based
#      differential-oracle, kernel-dispatch, distributed-training, ANN
#      candidate-generation, and streaming-ingestion suites (ctest labels
#      "serve", "server", "fuzz", "determinism", "obs", "proptest",
#      "kernels", "dist", "ann", and "stream") in the production
#      configuration — the exact binaries that
#      ship. The kernels label
#      runs twice more: once with TCSS_SIMD=off and once with
#      TCSS_SIMD=native, so both sides of the dispatch seam are the
#      startup-selected table (the suite's own guard test fails if the
#      dispatcher silently falls back to scalar on a machine where the
#      vectorized build is compiled in and supported).
#   2. Sanitizer build: configure with AddressSanitizer + UBSan and run
#      the FULL test suite (which again includes the labeled suites)
#      under the instrumented binaries.
#   3. ThreadSanitizer build: configure with TCSS_SANITIZE=thread and run
#      the determinism + obs + proptest + server + dist suites: determinism
#      drives the thread pool, the sharded losses, and multi-threaded
#      training end to end; obs hammers the sharded metric registry from
#      many threads; proptest re-runs the differential-oracle properties,
#      whose kernel equalities execute at 1/2/8 threads; the server
#      chaos harness replays its storms — with TCSS_SERVER_SOAK=10000 so
#      the mixed-traffic soak pushes >=10k requests through the full
#      acceptor/reader/dispatcher thread web under TSan; and the dist
#      suite runs coordinator + worker fleets (acceptor, per-session
#      readers, heartbeat threads, kill/partition recovery) in one
#      process, where TSan sees every cross-thread edge; the ann suite
#      rebuilds LSH indexes on the dispatcher thread while reload storms
#      and client floods run (rebuild-while-serving); and the stream
#      suite drives its differential gate at 1/2/8 threads plus the
#      ingest-during-reload-storm soak (dispatcher ingesting while a
#      writer thread swaps and tears the model file). Any data race in
#      the parallel engine, the telemetry, the serving front-end, the
#      distributed engine, the ANN tier, or the streaming engine fails
#      here.
#
#   tools/check.sh [asan-build-dir] [tsan-build-dir]
#                  (defaults: build-asan, build-tsan; the plain stage
#                   uses/creates ./build)
#
# Any test failure or sanitizer report (heap overflow, UB, leak, race)
# fails.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
TSAN_DIR="${2:-build-tsan}"

# --- Stage 1: plain build, resilience + determinism suites ---------------
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -L "serve|server|fuzz|determinism|obs|proptest|kernels|dist|ann|stream"

# Kernel-dispatch suite under both env-forced SIMD modes. The unlabeled
# run above already covers the default (auto) resolution; these two pin
# each side of the seam explicitly.
TCSS_SIMD=off ctest --test-dir build --output-on-failure -L "kernels"
TCSS_SIMD=native ctest --test-dir build --output-on-failure -L "kernels"

# --- Stage 2: ASan/UBSan build, full suite -------------------------------
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTCSS_SANITIZE="address;undefined"
cmake --build "$BUILD_DIR" -j

# halt_on_error so UBSan findings fail the test instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

# --- Stage 3: TSan build, concurrency suites -----------------------------
# TSan is mutually exclusive with ASan, hence the separate tree. Only the
# determinism, obs, proptest, kernels, server, dist, ann, and stream
# labels run here: they are the suites that exercise concurrency
# (ThreadPool, sharded losses, multi-threaded training, concurrent metric
# recording, the multi-threaded kernel-equality properties, the sharded
# CSF/MTTKRP kernels at 1/2/8 threads, the server's acceptor/reader/
# dispatcher threads, the distributed coordinator/worker fleets, and the
# streaming ingest path under reload storms); the rest of the suite is
# single-threaded and already covered by stage 2.
cmake -B "$TSAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTCSS_SANITIZE=thread
cmake --build "$TSAN_DIR" -j

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
# The chaos soak gates this stage at >=10k requests (see tests/CMakeLists).
export TCSS_SERVER_SOAK=10000
ctest --test-dir "$TSAN_DIR" --output-on-failure -L "determinism|obs|proptest|kernels|server|dist|ann|stream"

echo "sanitizer check passed"
