#!/usr/bin/env bash
# Line-coverage report for the test suite (gcov, no external tools).
#
#   tools/coverage.sh [build-dir]     (default: build-cov)
#
# Configures a dedicated tree with -DTCSS_COVERAGE=ON (--coverage -O0 so
# line counts are not distorted by inlining), runs the full ctest suite,
# then aggregates the gcov JSON for every object file into a per-module
# line-coverage table for src/. Lines hit in ANY test binary count as
# covered (counts are merged across objects, so shared headers are not
# double-counted). The raw merged data lands in <build-dir>/coverage.json.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-cov}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Debug -DTCSS_COVERAGE=ON
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

python3 - "$BUILD_DIR" <<'EOF'
import gzip, json, os, subprocess, sys

build_dir = sys.argv[1]
repo = os.getcwd()

# Every compiled object under src/ (gcno exists even if a file was never
# executed, so unexercised code still shows up as 0%).
gcnos = []
for root, _, files in os.walk(os.path.join(build_dir, "src")):
    gcnos += [os.path.join(root, f) for f in files if f.endswith(".gcno")]
if not gcnos:
    sys.exit("no .gcno files found -- was the tree built with TCSS_COVERAGE?")

# file -> line -> max count across all objects that compiled it.
lines = {}
for gcno in sorted(gcnos):
    out = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcno],
        capture_output=True, check=True).stdout
    for doc in out.splitlines():
        if not doc.strip():
            continue
        for f in json.loads(doc).get("files", []):
            path = os.path.normpath(os.path.join(repo, f["file"]))
            rel = os.path.relpath(path, repo)
            if rel.startswith("..") or not rel.startswith("src/"):
                continue  # system headers, gtest, tests/ themselves
            per = lines.setdefault(rel, {})
            for ln in f["lines"]:
                n = ln["line_number"]
                per[n] = max(per.get(n, 0), ln["count"])

modules = {}
for rel, per in lines.items():
    parts = rel.split(os.sep)
    module = parts[1] if len(parts) > 2 else "(top)"
    covered, total = modules.setdefault(module, [0, 0])
    modules[module][0] = covered + sum(1 for c in per.values() if c > 0)
    modules[module][1] = total + len(per)

print()
print(f"{'module':<12} {'covered':>8} {'lines':>8} {'pct':>7}")
print("-" * 38)
tot_c = tot_t = 0
for module in sorted(modules):
    c, t = modules[module]
    tot_c, tot_t = tot_c + c, tot_t + t
    print(f"src/{module:<8} {c:>8} {t:>8} {100.0 * c / t:>6.1f}%")
print("-" * 38)
print(f"{'total':<12} {tot_c:>8} {tot_t:>8} {100.0 * tot_c / tot_t:>6.1f}%")

with open(os.path.join(build_dir, "coverage.json"), "w") as fh:
    json.dump({rel: per for rel, per in sorted(lines.items())}, fh)
print(f"\nper-line data: {build_dir}/coverage.json")
EOF
