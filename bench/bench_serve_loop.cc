// Closed-loop serving benchmark for src/serve/server.cc. Phase 1
// calibrates saturation throughput C with unthrottled pipelined clients;
// phase 2 replays paced load at 0.5x / 1.0x / 2.0x C with a per-request
// deadline and reports achieved QPS, p50/p95/p99 latency of answered
// requests, and the shed rate. The property the overload design promises:
// at 2x saturation the admission controller sheds explicitly *before*
// the p99 of answered requests exceeds the deadline — the queue is
// bounded and expired work is shed at dequeue, so answered latency stays
// inside the budget while the excess is refused, not silently delayed.
//
// Human-readable table on stdout; TCSS_BENCH_JSON appends machine rows
// (bench "serve_loop"). TCSS_BENCH_SERVE_SCALE (default 1.0) scales the
// request counts for quick smoke runs.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/model_io.h"
#include "data/dataset.h"
#include "serve/frontend.h"
#include "serve/model_watcher.h"
#include "serve/recommend_service.h"
#include "serve/server.h"

namespace tcss {
namespace {

constexpr size_t kUsers = 64;
constexpr size_t kModelUsers = 48;  // users >= 48 exercise the fold-in tier
constexpr size_t kPois = 128;
constexpr size_t kBins = 12;
constexpr double kDeadlineMs = 10.0;
constexpr size_t kClients = 4;

double ServeScale() {
  const char* env = std::getenv("TCSS_BENCH_SERVE_SCALE");
  if (env != nullptr) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

Dataset BenchDataset() {
  std::vector<Poi> pois(kPois);
  for (size_t j = 0; j < kPois; ++j) {
    pois[j] = {{30.0 + 0.01 * static_cast<double>(j),
                -80.0 + 0.01 * static_cast<double>(j)},
               static_cast<PoiCategory>(j % 4)};
  }
  SocialGraph social(kUsers);
  for (size_t u = 0; u + 1 < kUsers; u += 2) {
    Status s = social.AddEdge(static_cast<uint32_t>(u),
                              static_cast<uint32_t>(u + 1));
    (void)s;
  }
  Status fin = social.Finalize();
  (void)fin;
  Dataset data(kUsers, std::move(pois), std::move(social));
  // One check-in per (user, month) pair spread over the POI set so every
  // tier (model, fold-in, popularity) has signal.
  const int64_t base = 1577836800;  // 2020-01-01
  Rng rng(99);
  for (size_t u = 0; u < kUsers; ++u) {
    for (size_t m = 0; m < kBins; m += 2) {
      const uint32_t j = static_cast<uint32_t>(rng.UniformInt(kPois));
      const int64_t ts = base + static_cast<int64_t>(m) * 2629800;
      Status s = data.AddCheckIn(static_cast<uint32_t>(u), j, ts);
      (void)s;
    }
  }
  return data;
}

FactorModel BenchModel() {
  FactorModel m;
  const size_t r = 16;
  Rng rng(5);
  m.u1 = Matrix::GaussianRandom(kModelUsers, r, &rng);
  m.u2 = Matrix::GaussianRandom(kPois, r, &rng);
  m.u3 = Matrix::GaussianRandom(kBins, r, &rng);
  m.h.assign(r, 1.0 / static_cast<double>(r));
  return m;
}

// One load level's merged client-side outcome.
struct LoadResult {
  size_t sent = 0;
  size_t ok = 0;
  size_t shed = 0;
  size_t error = 0;
  size_t lost = 0;  ///< transport failures / unanswered (should stay 0)
  std::vector<double> ok_latency_ms;
  double elapsed_s = 0.0;

  double qps() const {
    return elapsed_s > 0.0 ? static_cast<double>(ok + shed + error) /
                                 elapsed_s
                           : 0.0;
  }
  double shed_rate() const {
    const size_t answered = ok + shed + error;
    return answered > 0
               ? static_cast<double>(shed) / static_cast<double>(answered)
               : 0.0;
  }
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

// Drives `total` requests through `kClients` connections. offered_qps
// > 0 paces the writers (open-loop within each connection, so overload
// actually builds up); 0 runs a strict closed loop — one outstanding
// request per connection — which measures service capacity without
// tripping admission control. Every request carries deadline_ms when it
// is > 0.
LoadResult RunLoad(Env* env, const std::string& path, size_t total,
                   double offered_qps, double deadline_ms) {
  LoadResult merged;
  std::mutex mu;
  std::vector<std::thread> clients;
  Stopwatch wall;
  for (size_t cidx = 0; cidx < kClients; ++cidx) {
    clients.emplace_back([&, cidx] {
      const size_t n = total / kClients + (cidx < total % kClients ? 1 : 0);
      if (n == 0) return;
      LoadResult local;
      local.sent = n;
      auto conn = env->Connect(path);
      if (!conn.ok()) {
        local.lost = n;
        std::lock_guard<std::mutex> lk(mu);
        merged.sent += local.sent;
        merged.lost += local.lost;
        return;
      }
      Conn* c = conn.value().get();
      // Send timestamps indexed by frame id; atomics because the reader
      // thread loads them while the writer is still publishing later ids.
      std::unique_ptr<std::atomic<double>[]> sent_at(
          new std::atomic<double>[n]);
      for (size_t i = 0; i < n; ++i) sent_at[i].store(0.0);
      std::atomic<size_t> answered{0};
      std::atomic<bool> writes_done{false};
      std::atomic<bool> give_up{false};
      Stopwatch clock;
      std::thread watchdog([&] {
        // Generous bound: pacing time plus 15 s of drain.
        const double pace_s =
            offered_qps > 0.0
                ? static_cast<double>(total) / offered_qps
                : 0.0;
        while (answered.load() < n &&
               clock.ElapsedSeconds() < pace_s + 15.0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        give_up.store(true);
      });
      std::thread reader([&] {
        FrameReader fr;
        while (answered.load() < n) {
          Frame f;
          auto ev = fr.Next(c, kResponseMagic, &f, &give_up, 50);
          if (!ev.ok() || ev.value() != FrameReader::Event::kFrame) break;
          const double now = clock.ElapsedSeconds();
          auto parsed = ParseResponsePayload(f.payload);
          answered.fetch_add(1);
          if (!parsed.ok() || f.id >= n) {
            ++local.error;
            continue;
          }
          switch (parsed.value().kind) {
            case WireResponse::Kind::kOk:
              ++local.ok;
              local.ok_latency_ms.push_back(
                  (now - sent_at[f.id].load(std::memory_order_acquire)) *
                  1e3);
              break;
            case WireResponse::Kind::kShed:
              ++local.shed;
              break;
            case WireResponse::Kind::kError:
            case WireResponse::Kind::kIngested:
              ++local.error;
              break;
          }
        }
      });
      const double interval_s =
          offered_qps > 0.0 ? static_cast<double>(kClients) / offered_qps
                            : 0.0;
      Status write_err;
      for (size_t i = 0; i < n; ++i) {
        if (give_up.load()) break;
        if (interval_s > 0.0) {
          const double due = static_cast<double>(i) * interval_s;
          while (clock.ElapsedSeconds() < due && !give_up.load()) {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
          }
        } else {
          // Closed loop: wait for the previous response before sending.
          while (answered.load() < i && !give_up.load()) {
            std::this_thread::yield();
          }
        }
        // Mostly model-tier users; every 16th request hits fold-in so the
        // per-request tier predictor sees both lanes.
        const size_t user =
            (i % 16 == 9)
                ? kModelUsers + (i + cidx) % (kUsers - kModelUsers)
                : (i * 7 + cidx) % kModelUsers;
        std::string payload =
            StrFormat("topk %zu %zu k=10", user, i % kBins);
        if (deadline_ms > 0.0) {
          payload += StrFormat(" deadline_ms=%.3f", deadline_ms);
        }
        sent_at[i].store(clock.ElapsedSeconds(),
                         std::memory_order_release);
        write_err = c->Write(
            EncodeRequestFrame({static_cast<uint64_t>(i), payload}),
            /*timeout_ms=*/5000);
        if (!write_err.ok()) break;
      }
      writes_done.store(true);
      reader.join();
      watchdog.join();
      c->Close();
      local.lost = local.sent - (local.ok + local.shed + local.error);
      std::lock_guard<std::mutex> lk(mu);
      merged.sent += local.sent;
      merged.ok += local.ok;
      merged.shed += local.shed;
      merged.error += local.error;
      merged.lost += local.lost;
      merged.ok_latency_ms.insert(merged.ok_latency_ms.end(),
                                  local.ok_latency_ms.begin(),
                                  local.ok_latency_ms.end());
    });
  }
  for (auto& t : clients) t.join();
  merged.elapsed_s = wall.ElapsedSeconds();
  return merged;
}

}  // namespace
}  // namespace tcss

int main() {
  using namespace tcss;
  const double scale = ServeScale();
  Env* env = Env::Default();

  Dataset data = BenchDataset();
  const std::string model_path =
      "/tmp/tcss_bench_serve_" + std::to_string(getpid()) + ".model";
  const std::string socket_path =
      "/tmp/tcss_bench_serve_" + std::to_string(getpid()) + ".sock";
  Status saved = SaveFactorModel(BenchModel(), model_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save model: %s\n", saved.ToString().c_str());
    return 1;
  }
  ModelWatcher::Options wopts;
  wopts.num_users = data.num_users();
  wopts.num_pois = data.num_pois();
  wopts.num_bins = kBins;
  ModelWatcher watcher(model_path, wopts);
  RecommendService service(&data, TimeGranularity::kMonthOfYear, &watcher);
  Status init = service.Init();
  if (!init.ok()) {
    std::fprintf(stderr, "service init: %s\n", init.ToString().c_str());
    return 1;
  }
  ServerOptions opts;
  opts.queue_capacity = 64;
  opts.max_batch = 16;
  Server server(&service, socket_path, opts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start: %s\n", started.ToString().c_str());
    return 1;
  }

  // Phase 1: saturation throughput with unthrottled pipelined clients.
  const size_t calib_total =
      static_cast<size_t>(4000.0 * scale) / kClients * kClients;
  LoadResult calib = RunLoad(env, socket_path, calib_total,
                             /*offered_qps=*/0.0, /*deadline_ms=*/0.0);
  const double capacity = calib.qps();
  std::printf("saturation: %zu requests, %.0f qps, p50 %.3f ms, lost %zu\n",
              calib.sent, capacity, Percentile(calib.ok_latency_ms, 50.0),
              calib.lost);
  bench::AppendBenchJson("serve_loop", "synthetic64x128",
                         "saturation_qps", capacity);

  // Phase 2: paced load sweep with a deadline.
  std::printf(
      "%-8s %10s %10s %10s %10s %10s %10s %8s\n", "load", "offered",
      "achieved", "p50_ms", "p95_ms", "p99_ms", "shed_rate", "lost");
  bool shed_before_breach = true;
  for (const double factor : {0.5, 1.0, 2.0}) {
    const double offered = factor * capacity;
    const double window_s = 1.5;
    size_t total = static_cast<size_t>(offered * window_s);
    total = std::min<size_t>(std::max<size_t>(total, 800), 24000);
    LoadResult r =
        RunLoad(env, socket_path, total, offered, kDeadlineMs);
    const double p50 = Percentile(r.ok_latency_ms, 50.0);
    const double p95 = Percentile(r.ok_latency_ms, 95.0);
    const double p99 = Percentile(r.ok_latency_ms, 99.0);
    std::printf("%-8.1f %10.0f %10.0f %10.3f %10.3f %10.3f %10.4f %8zu\n",
                factor, offered, r.qps(), p50, p95, p99, r.shed_rate(),
                r.lost);
    const std::string tag = StrFormat("load%.1f_", factor);
    bench::AppendBenchJson("serve_loop", "synthetic64x128",
                           tag + "offered_qps", offered);
    bench::AppendBenchJson("serve_loop", "synthetic64x128",
                           tag + "achieved_qps", r.qps());
    bench::AppendBenchJson("serve_loop", "synthetic64x128", tag + "p50_ms",
                           p50);
    bench::AppendBenchJson("serve_loop", "synthetic64x128", tag + "p95_ms",
                           p95);
    bench::AppendBenchJson("serve_loop", "synthetic64x128", tag + "p99_ms",
                           p99);
    bench::AppendBenchJson("serve_loop", "synthetic64x128",
                           tag + "shed_rate", r.shed_rate());
    // The overload property: when answered-latency p99 is at or past the
    // deadline, shedding must already be engaged. (At mild load neither
    // side trips; at 2x saturation sheds must appear while p99 holds.)
    if (factor >= 2.0) {
      const bool sheds_engaged = r.shed > 0;
      const bool p99_within = p99 <= kDeadlineMs * 1.5;
      shed_before_breach = sheds_engaged && p99_within;
      bench::AppendBenchJson("serve_loop", "synthetic64x128",
                             "load2.0_shed_before_p99_breach",
                             shed_before_breach ? 1.0 : 0.0);
    }
    if (r.lost != 0) {
      std::fprintf(stderr, "WARNING: %zu requests lost at load %.1f\n",
                   r.lost, factor);
    }
  }
  std::printf("overload property (sheds engage while p99 holds at 2x): %s\n",
              shed_before_breach ? "PASS" : "FAIL");

  Status stopped = server.Stop();
  if (!stopped.ok()) {
    std::fprintf(stderr, "server stop: %s\n", stopped.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", server.stats().ToString().c_str());
  std::remove(model_path.c_str());
  return shed_before_breach ? 0 : 2;
}
