// Figure 11: parameter sensitivity - Hit@10 and MRR as the social
// Hausdorff weight lambda varies.
//
// Expected shape (paper): quality improves from lambda = 0.001 toward an
// intermediate optimum and degrades when lambda grows to 1 (the
// regularizer starts to dominate the least-squares head).
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using tcss::bench::EvalRow;
using tcss::bench::FitAndEvaluate;
using tcss::bench::GetWorld;

std::map<std::pair<std::string, double>, EvalRow> g_results;

void BM_Lambda(benchmark::State& state, tcss::SyntheticPreset preset,
               double lambda) {
  const tcss::bench::World& world = GetWorld(preset);
  EvalRow row;
  for (auto _ : state) {
    tcss::TcssConfig cfg;
    cfg.lambda = lambda;
    if (lambda == 0.0) cfg.hausdorff = tcss::HausdorffMode::kNone;
    tcss::TcssModel model(cfg);
    row = FitAndEvaluate(&model, world);
  }
  state.counters["Hit@10"] = row.hit_at_10;
  state.counters["MRR"] = row.mrr;
  g_results[{tcss::PresetName(preset), lambda}] = row;
}

}  // namespace

int main(int argc, char** argv) {
  const tcss::SyntheticPreset presets[] = {
      tcss::SyntheticPreset::kGowallaLike, tcss::SyntheticPreset::kYelpLike,
      tcss::SyntheticPreset::kFoursquareLike};
  const double lambdas[] = {0.0, 0.001, 0.01, 0.1, 1.0};
  for (auto preset : presets) {
    for (double l : lambdas) {
      std::string name = std::string("fig11/") + tcss::PresetName(preset) +
                         "/lambda=" + std::to_string(l);
      benchmark::RegisterBenchmark(name.c_str(), BM_Lambda, preset, l)
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Figure 11: effect of the social Hausdorff weight "
              "lambda ===\n");
  for (const char* metric : {"Hit@10", "MRR"}) {
    std::printf("\n%s:\n%-18s", metric, "dataset");
    for (double l : lambdas) std::printf(" l=%-7g", l);
    std::printf("\n");
    for (auto preset : presets) {
      std::printf("%-18s", tcss::PresetName(preset));
      for (double l : lambdas) {
        const EvalRow& row = g_results[{tcss::PresetName(preset), l}];
        std::printf(" %-9.4f", metric[0] == 'H' ? row.hit_at_10 : row.mrr);
      }
      std::printf("\n");
    }
  }
  return 0;
}
