// Table II: ablation study - TCSS variants (random / one-hot init, no L1,
// negative sampling, self-Hausdorff, zero-out) vs the full model on all
// four preset datasets.
//
// Expected shape (paper): every ablation degrades the full TCSS.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using tcss::bench::AllPresets;
using tcss::bench::EvalRow;
using tcss::bench::FitAndEvaluate;
using tcss::bench::GetWorld;
using tcss::bench::PrintResultsTable;

struct Variant {
  std::string label;
  tcss::TcssConfig config;
};

std::vector<Variant> Variants() {
  std::vector<Variant> variants;
  tcss::TcssConfig base;
  {
    tcss::TcssConfig c = base;
    c.init = tcss::InitMethod::kRandom;
    variants.push_back({"Random initialization", c});
  }
  {
    tcss::TcssConfig c = base;
    c.init = tcss::InitMethod::kOneHot;
    variants.push_back({"One-hot initialization", c});
  }
  {
    tcss::TcssConfig c = base;
    c.lambda = 0.0;
    c.hausdorff = tcss::HausdorffMode::kNone;
    variants.push_back({"Remove L1 (lambda=0)", c});
  }
  {
    tcss::TcssConfig c = base;
    c.loss_mode = tcss::LossMode::kNegativeSampling;
    variants.push_back({"Negative sampling", c});
  }
  {
    tcss::TcssConfig c = base;
    c.hausdorff = tcss::HausdorffMode::kSelf;
    variants.push_back({"Self-Hausdorff", c});
  }
  {
    tcss::TcssConfig c = base;
    c.hausdorff = tcss::HausdorffMode::kZeroOut;
    variants.push_back({"Zero-out", c});
  }
  variants.push_back({"Full-Fledged TCSS", base});
  return variants;
}

std::map<std::pair<std::string, std::string>, EvalRow> g_results;

void BM_Variant(benchmark::State& state, const Variant& variant,
                tcss::SyntheticPreset preset) {
  const tcss::bench::World& world = GetWorld(preset);
  EvalRow row;
  for (auto _ : state) {
    tcss::TcssModel model(variant.config);
    row = FitAndEvaluate(&model, world);
  }
  row.model = variant.label;
  state.counters["Hit@10"] = row.hit_at_10;
  state.counters["MRR"] = row.mrr;
  g_results[{variant.label, row.dataset}] = row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto variants = Variants();
  for (tcss::SyntheticPreset preset : AllPresets()) {
    for (const Variant& v : variants) {
      std::string name = std::string("table2/") + tcss::PresetName(preset) +
                         "/" + v.label;
      benchmark::RegisterBenchmark(name.c_str(), BM_Variant, v, preset)
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::vector<std::string> datasets;
  for (auto p : AllPresets()) datasets.push_back(tcss::PresetName(p));
  std::vector<std::string> models;
  for (const Variant& v : variants) models.push_back(v.label);
  PrintResultsTable("Table II: ablation study (Hit@10 / MRR)", datasets,
                    models, g_results);
  return 0;
}
