// Streaming-ingestion benchmark for src/stream/ (DESIGN.md §14). Three
// phases:
//
//   1. Ingest throughput: a drifting check-in stream is pushed through
//      StreamingEngine::Ingest (delta-buffer validation + incremental
//      rank-1 fold-in update per event) and we report accepted events
//      per second, plus the solve latency of a cold embedding query
//      after the flood.
//   2. Rollover latency: one full cycle of time-slice retirements
//      (publish a cyclic-neighbour-warm-started model through the
//      SaveFactorModel + ModelWatcher hot-swap path, then drop the
//      retired bin from the delta and fold-in state); mean and worst
//      milliseconds per rollover.
//   3. Chronological evaluation: the prequential protocol from
//      tests/stream_test.cc at bench scale — train a static model
//      before the 70% time cutoff, then score every post-cutoff event
//      with (a) the frozen trained factors, (b) frozen fold-in, and
//      (c) streaming fold-in that ingests each event after predicting
//      it. Reports hit@10 and MRR for all three so the freshness win
//      on drifting traffic is a tracked number, not just a test gate.
//
// Human-readable table on stdout; TCSS_BENCH_JSON appends machine rows
// (bench "stream"). TCSS_BENCH_SCALE (default 1.0) scales event counts
// for quick smoke runs.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/fold_in.h"
#include "core/incremental_fold_in.h"
#include "core/model_io.h"
#include "core/tcss_model.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "data/time_binning.h"
#include "eval/chronological.h"
#include "serve/model_watcher.h"
#include "serve/request.h"
#include "stream/streaming_engine.h"

namespace tcss {
namespace {

std::string ScratchModelPath() {
  const auto dir = std::filesystem::temp_directory_path() / "tcss_bench_stream";
  std::filesystem::create_directories(dir);
  return (dir / "live.model").string();
}

FactorModel RandomModel(size_t users, size_t pois, size_t bins, size_t rank,
                        uint64_t seed) {
  Rng rng(seed);
  FactorModel m;
  m.u1 = Matrix::GaussianRandom(users, rank, &rng);
  m.u2 = Matrix::GaussianRandom(pois, rank, &rng);
  m.u3 = Matrix::GaussianRandom(bins, rank, &rng);
  m.h.assign(rank, 1.0 / static_cast<double>(rank));
  return m;
}

// --- Phase 1 + 2: ingest throughput and rollover latency -----------------

void BenchIngestAndRollover() {
  const double scale = bench::BenchScale();
  DriftStreamConfig cfg;
  cfg.num_users = 400;
  cfg.num_pois = 300;
  cfg.num_events = static_cast<size_t>(20000 * scale);
  auto gen = GenerateDriftStream(cfg);
  if (!gen.ok()) {
    std::fprintf(stderr, "drift stream: %s\n", gen.status().ToString().c_str());
    return;
  }
  const Dataset& data = gen.value();
  const std::string dataset =
      "drift" + std::to_string(cfg.num_users) + "x" +
      std::to_string(cfg.num_pois);

  const std::string path = ScratchModelPath();
  const FactorModel seed_model =
      RandomModel(cfg.num_users, cfg.num_pois,
                  NumBins(TimeGranularity::kMonthOfYear), 16, 77);
  Status saved = SaveFactorModel(seed_model, path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return;
  }

  ModelWatcher::Options wopts;
  wopts.num_users = cfg.num_users;
  wopts.num_pois = cfg.num_pois;
  wopts.num_bins = NumBins(TimeGranularity::kMonthOfYear);
  ModelWatcher watcher(path, wopts);
  (void)watcher.Poll();

  StreamingEngine::Options eopts;
  eopts.granularity = TimeGranularity::kMonthOfYear;
  eopts.model_path = path;
  StreamingEngine engine(data, &watcher, eopts);
  // In the serving path RecommendService binds the incremental solver to
  // the watcher's model; the bench drives the engine directly, so bind
  // here or Embedding() has no factors to solve against.
  engine.fold_in()->BindModel(watcher.current(), watcher.generation());

  // Flood: every event of the drifting year, in stream order, repeated
  // until the timed region is long enough to measure (the first pass
  // pays the per-cell fold-in rank-1 updates; later passes are pure
  // validated appends, like a real log with revisits).
  const size_t passes = std::max<size_t>(1, 100000 / data.checkins().size());
  Stopwatch flood;
  for (size_t p = 0; p < passes; ++p) {
    for (const CheckInEvent& e : data.checkins()) {
      ServeRequest req;
      req.verb = ServeVerb::kIngest;
      req.user = e.user;
      req.poi = e.poi;
      req.timestamp = e.timestamp;
      (void)engine.Ingest(req);
    }
  }
  const double flood_s = flood.ElapsedSeconds();
  const StreamingEngine::Stats after_flood = engine.stats();
  const double events_per_sec =
      flood_s > 0.0 ? static_cast<double>(after_flood.accepted) / flood_s
                    : 0.0;

  // Cold-solve latency: first Embedding() after the flood pays the ridge
  // solve; amortized over the busiest users it is the per-query cost a
  // fold-in-tier request sees right after its owner checked in.
  Stopwatch solves;
  size_t solved = 0;
  for (uint32_t u = 0; u < cfg.num_users && solved < 100; ++u) {
    if (engine.fold_in()->Embedding(u) != nullptr) ++solved;
  }
  const double solve_us =
      solved > 0 ? solves.ElapsedMillis() * 1000.0 /
                       static_cast<double>(solved)
                 : 0.0;

  // One full cycle of rollovers (12 monthly slices).
  std::vector<double> roll_ms;
  for (int r = 0; r < 12; ++r) {
    Stopwatch one;
    Status st = engine.Rollover();
    if (!st.ok()) {
      std::fprintf(stderr, "rollover: %s\n", st.ToString().c_str());
      return;
    }
    roll_ms.push_back(one.ElapsedMillis());
  }
  double mean_ms = 0.0, max_ms = 0.0;
  for (double ms : roll_ms) {
    mean_ms += ms;
    max_ms = std::max(max_ms, ms);
  }
  mean_ms /= static_cast<double>(roll_ms.size());

  // Drift gauge on a delta that actually drifted: a fresh engine whose
  // delta holds only the final quarter of the year, against the same
  // full-year base. (Replaying the whole base into the delta measures
  // zero by construction — identical histograms.)
  StreamingEngine tail_engine(data, &watcher, eopts);
  const size_t tail_start = data.checkins().size() * 3 / 4;
  for (size_t i = tail_start; i < data.checkins().size(); ++i) {
    const CheckInEvent& e = data.checkins()[i];
    ServeRequest req;
    req.verb = ServeVerb::kIngest;
    req.user = e.user;
    req.poi = e.poi;
    req.timestamp = e.timestamp;
    (void)tail_engine.Ingest(req);
  }
  const double tail_drift = tail_engine.DriftScore();

  std::printf("=== streaming ingest (%s, %zu events) ===\n", dataset.c_str(),
              data.checkins().size());
  std::printf("  ingest throughput : %10.0f events/s (accepted %llu)\n",
              events_per_sec,
              static_cast<unsigned long long>(after_flood.accepted));
  std::printf("  cold solve        : %10.1f us/user (n=%zu)\n", solve_us,
              solved);
  std::printf("  rollover latency  : %10.2f ms mean, %.2f ms max (12 rolls)\n",
              mean_ms, max_ms);
  std::printf("  tail drift score  : %10.3f (last quarter vs full year)\n",
              tail_drift);

  bench::AppendBenchJson("stream", dataset, "ingest_events_per_sec",
                         events_per_sec);
  bench::AppendBenchJson("stream", dataset, "cold_solve_us_per_user",
                         solve_us);
  bench::AppendBenchJson("stream", dataset, "rollover_ms_mean", mean_ms);
  bench::AppendBenchJson("stream", dataset, "rollover_ms_max", max_ms);
  bench::AppendBenchJson("stream", dataset, "tail_drift_score", tail_drift);
}

// --- Phase 3: chronological static-vs-streaming --------------------------

struct RankSums {
  double hits = 0.0;
  double mrr = 0.0;
  size_t n = 0;
  double HitAt10() const {
    return n > 0 ? hits / static_cast<double>(n) : 0.0;
  }
  double Mrr() const { return n > 0 ? mrr / static_cast<double>(n) : 0.0; }
};

void RecordRank(const FactorModel& model, const std::vector<double>& emb,
                uint32_t poi, uint32_t bin, size_t num_pois, RankSums* sums) {
  const double target = FoldInScore(model, emb, poi, bin);
  size_t above = 0;
  for (uint32_t j = 0; j < num_pois; ++j) {
    if (j != poi && FoldInScore(model, emb, j, bin) > target) ++above;
  }
  const double rank = static_cast<double>(above + 1);
  if (rank <= 10.0) sums->hits += 1.0;
  sums->mrr += 1.0 / rank;
  ++sums->n;
}

void BenchChronological() {
  const double scale = bench::BenchScale();
  DriftStreamConfig cfg;
  cfg.num_users = 200;
  cfg.num_pois = 160;
  cfg.num_events = static_cast<size_t>(12000 * scale);
  auto gen = GenerateDriftStream(cfg);
  if (!gen.ok()) {
    std::fprintf(stderr, "drift stream: %s\n", gen.status().ToString().c_str());
    return;
  }
  const Dataset& data = gen.value();
  const std::string dataset =
      "drift" + std::to_string(cfg.num_users) + "x" +
      std::to_string(cfg.num_pois);

  // Hour-of-day bins: every bin has pre-cutoff coverage, so the drift the
  // protocol measures lives in the POI dimension — where streaming
  // fold-in can actually track it (see tests/stream_test.cc).
  const TimeGranularity gran = TimeGranularity::kHourOfDay;
  ChronoSplit split = ChronologicalSplit(data.checkins(), 0.7);
  auto before_tensor = BuildCheckinTensor(data, split.before, gran);
  if (!before_tensor.ok()) return;
  TcssConfig tcfg;
  tcfg.rank = 8;
  tcfg.epochs = 80;
  Stopwatch fit;
  TcssTrainer trainer(data, before_tensor.value(), tcfg);
  auto trained = trainer.Train();
  if (!trained.ok()) {
    std::fprintf(stderr, "train: %s\n", trained.status().ToString().c_str());
    return;
  }
  const double fit_s = fit.ElapsedSeconds();
  auto model = std::make_shared<const FactorModel>(trained.MoveValue());

  std::vector<TensorCell> before_cells = EventsToCells(split.before, gran);
  std::map<uint32_t, std::vector<TensorCell>> by_user;
  for (const auto& c : before_cells) by_user[c.i].push_back(c);
  IncrementalFoldIn frozen, streaming;
  frozen.BindModel(model, 1);
  streaming.BindModel(model, 1);
  for (const auto& [user, cells] : by_user) {
    frozen.Seed(user, cells);
    streaming.Seed(user, cells);
  }

  RankSums static_model, static_fold, stream_fold;
  Stopwatch prequential;
  for (const CheckInEvent& e : split.after) {
    const uint32_t bin = TimeBin(e.timestamp, gran);
    if (e.user < model->u1.rows()) {
      std::vector<double> row(model->u1.row(e.user),
                              model->u1.row(e.user) + model->rank());
      RecordRank(*model, row, e.poi, bin, data.num_pois(), &static_model);
    }
    const std::vector<double>* femb = frozen.Embedding(e.user);
    const std::vector<double>* semb = streaming.Embedding(e.user);
    if (femb != nullptr && semb != nullptr) {
      RecordRank(*model, *femb, e.poi, bin, data.num_pois(), &static_fold);
      RecordRank(*model, *semb, e.poi, bin, data.num_pois(), &stream_fold);
    }
    streaming.Append(e.user, e.poi, bin);
  }
  const double preq_s = prequential.ElapsedSeconds();

  std::printf("\n=== chronological eval (%s, cutoff 0.7, %zu post-cutoff) ===\n",
              dataset.c_str(), split.after.size());
  std::printf("  %-18s %8s %8s\n", "scorer", "hit@10", "MRR");
  std::printf("  %-18s %8.4f %8.4f\n", "static model", static_model.HitAt10(),
              static_model.Mrr());
  std::printf("  %-18s %8.4f %8.4f\n", "static fold-in", static_fold.HitAt10(),
              static_fold.Mrr());
  std::printf("  %-18s %8.4f %8.4f\n", "streaming fold-in",
              stream_fold.HitAt10(), stream_fold.Mrr());
  std::printf("  fit %.1fs, prequential replay %.1fs\n", fit_s, preq_s);

  bench::AppendBenchJson("stream", dataset, "static_model_hit_at_10",
                         static_model.HitAt10());
  bench::AppendBenchJson("stream", dataset, "static_model_mrr",
                         static_model.Mrr());
  bench::AppendBenchJson("stream", dataset, "static_fold_hit_at_10",
                         static_fold.HitAt10());
  bench::AppendBenchJson("stream", dataset, "static_fold_mrr",
                         static_fold.Mrr());
  bench::AppendBenchJson("stream", dataset, "stream_fold_hit_at_10",
                         stream_fold.HitAt10());
  bench::AppendBenchJson("stream", dataset, "stream_fold_mrr",
                         stream_fold.Mrr());
}

}  // namespace
}  // namespace tcss

int main() {
  tcss::BenchIngestAndRollover();
  tcss::BenchChronological();
  return 0;
}
