// Design-choice ablation (DESIGN.md #2): size of the Hausdorff candidate
// pool S(v_i). The paper's formulation uses all J POIs (pool = 0 here);
// bounded pools trade a little quality for a large reduction of the per-
// epoch Hausdorff cost.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using tcss::bench::EvalRow;
using tcss::bench::FitAndEvaluate;
using tcss::bench::GetWorld;

struct PoolRow {
  size_t pool;
  EvalRow eval;
};

std::vector<PoolRow> g_rows;

void BM_Pool(benchmark::State& state, size_t pool) {
  const tcss::bench::World& world =
      GetWorld(tcss::SyntheticPreset::kGowallaLike);
  PoolRow r{pool, {}};
  for (auto _ : state) {
    tcss::TcssConfig cfg;
    cfg.hausdorff_pool = pool;
    tcss::TcssModel model(cfg);
    r.eval = FitAndEvaluate(&model, world);
  }
  state.counters["Hit@10"] = r.eval.hit_at_10;
  state.counters["MRR"] = r.eval.mrr;
  state.counters["fit_s"] = r.eval.fit_seconds;
  g_rows.push_back(r);
}

}  // namespace

int main(int argc, char** argv) {
  for (size_t pool : {size_t{32}, size_t{64}, size_t{160}, size_t{0}}) {
    std::string name =
        "ablation_pool/" + (pool == 0 ? std::string("all-pois")
                                      : std::to_string(pool));
    benchmark::RegisterBenchmark(name.c_str(), BM_Pool, pool)
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Ablation: Hausdorff candidate pool size "
              "(gowalla-like) ===\n");
  std::printf("%-12s %-8s %-8s %-10s\n", "pool |S(v)|", "Hit@10", "MRR",
              "fit time");
  for (const auto& r : g_rows) {
    std::printf("%-12s %-8.4f %-8.4f %-10.2fs\n",
                r.pool == 0 ? "all" : std::to_string(r.pool).c_str(),
                r.eval.hit_at_10, r.eval.mrr, r.eval.fit_seconds);
  }
  return 0;
}
