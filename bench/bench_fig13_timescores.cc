// Figure 13: score along the time dimension. For a randomly selected
// *observed* entry (i, j, k) the model scores of (i, j, *) are plotted
// across all 12 months; likewise for a randomly selected *negative*
// (unobserved) entry.
//
// Expected shape (paper): TCSS gives the observed pair consistently high
// scores (peaking near the observed month) and the negative pair scores
// near 0; baselines sit lower / noisier on the positive pair.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using tcss::bench::FitAndEvaluate;
using tcss::bench::GetWorld;

struct Series {
  std::string model;
  std::vector<double> pos;  // scores of the observed (i,j) across months
  std::vector<double> neg;  // scores of the unobserved (i,j)
};

std::vector<Series> g_series;
uint32_t g_pos_i, g_pos_j, g_pos_k, g_neg_i, g_neg_j;

void PickEntries(const tcss::bench::World& world) {
  tcss::Rng rng(77);
  const auto& entries = world.train.entries();
  const auto& e = entries[rng.UniformInt(entries.size())];
  g_pos_i = e.i;
  g_pos_j = e.j;
  g_pos_k = e.k;
  for (;;) {
    const uint32_t i =
        static_cast<uint32_t>(rng.UniformInt(world.train.dim_i()));
    const uint32_t j =
        static_cast<uint32_t>(rng.UniformInt(world.train.dim_j()));
    bool any = false;
    for (uint32_t k = 0; k < world.train.dim_k(); ++k) {
      if (world.train.Contains(i, j, k)) any = true;
    }
    if (!any) {
      g_neg_i = i;
      g_neg_j = j;
      break;
    }
  }
}

void BM_TimeScores(benchmark::State& state, const std::string& model_name) {
  const tcss::bench::World& world =
      GetWorld(tcss::SyntheticPreset::kGowallaLike);
  Series s;
  s.model = model_name;
  for (auto _ : state) {
    auto model = tcss::MakeModel(model_name, 7);
    (void)FitAndEvaluate(model.get(), world);
    s.pos.clear();
    s.neg.clear();
    for (uint32_t k = 0; k < world.train.dim_k(); ++k) {
      s.pos.push_back(model->Score(g_pos_i, g_pos_j, k));
      s.neg.push_back(model->Score(g_neg_i, g_neg_j, k));
    }
  }
  double peak = 0;
  for (double v : s.pos) peak = std::max(peak, v);
  state.counters["pos_peak"] = peak;
  g_series.push_back(std::move(s));
}

}  // namespace

int main(int argc, char** argv) {
  PickEntries(GetWorld(tcss::SyntheticPreset::kGowallaLike));
  for (const char* model : {"CP", "P-Tucker", "NCF", "TCSS"}) {
    std::string name = std::string("fig13/") + model;
    benchmark::RegisterBenchmark(name.c_str(), BM_TimeScores,
                                 std::string(model))
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Figure 13: score along the time dimension "
              "(gowalla-like) ===\n");
  std::printf("observed entry (i=%u, j=%u) with check-in at month %u; "
              "negative entry (i=%u, j=%u)\n",
              g_pos_i, g_pos_j, g_pos_k, g_neg_i, g_neg_j);
  for (const char* which : {"observed", "negative"}) {
    std::printf("\n%s (i,j) scored across months 0..11:\n%-10s", which,
                "model");
    for (int k = 0; k < 12; ++k) std::printf(" m%-6d", k);
    std::printf("\n");
    for (const auto& s : g_series) {
      std::printf("%-10s", s.model.c_str());
      const auto& vals = which[0] == 'o' ? s.pos : s.neg;
      for (double v : vals) std::printf(" %-7.3f", v);
      std::printf("\n");
    }
  }
  return 0;
}
