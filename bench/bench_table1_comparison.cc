// Table I: results comparison - Hit@10 and MRR of all 13 models on the
// four synthetic preset datasets.
//
// Expected shape (paper): tensor completion > matrix completion and the
// sequential/social baselines; TCSS best on every dataset; the dense
// GMU-like preset scores highest, the sparse Yelp-like lowest.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using tcss::bench::AllPresets;
using tcss::bench::AppendEvalRowJson;
using tcss::bench::EvalRow;
using tcss::bench::FitAndEvaluate;
using tcss::bench::GetWorld;
using tcss::bench::PrintResultsTable;

std::map<std::pair<std::string, std::string>, EvalRow> g_results;

void BM_Model(benchmark::State& state, const std::string& model_name,
              tcss::SyntheticPreset preset) {
  const tcss::bench::World& world = GetWorld(preset);
  EvalRow row;
  for (auto _ : state) {
    auto model = tcss::MakeModel(model_name, /*seed=*/7);
    row = FitAndEvaluate(model.get(), world);
  }
  state.counters["Hit@10"] = row.hit_at_10;
  state.counters["MRR"] = row.mrr;
  g_results[{row.model, row.dataset}] = row;
}

}  // namespace

int main(int argc, char** argv) {
  for (tcss::SyntheticPreset preset : AllPresets()) {
    for (const std::string& model : tcss::RegisteredModelNames()) {
      std::string name = std::string("table1/") + tcss::PresetName(preset) +
                         "/" + model;
      benchmark::RegisterBenchmark(name.c_str(), BM_Model, model, preset)
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::vector<std::string> datasets;
  for (auto p : AllPresets()) datasets.push_back(tcss::PresetName(p));
  std::vector<std::string> models;
  for (const auto& [key, row] : g_results) {
    if (std::find(models.begin(), models.end(), key.first) == models.end()) {
      models.push_back(key.first);
    }
  }
  // Table I row order: matrix completion, POI recommendation, tensor
  // completion, TCSS.
  std::vector<std::string> order = {"MCCO",   "PureSVD", "STRNN", "STAN",
                                    "STGN",   "LFBCA",   "CP",    "Tucker",
                                    "P-Tucker", "NCF",   "NTM",   "CoSTCo",
                                    "TCSS"};
  std::vector<std::string> ordered;
  for (const auto& m : order) {
    if (g_results.count({m, datasets[0]})) ordered.push_back(m);
  }
  PrintResultsTable("Table I: results comparison (Hit@10 / MRR)", datasets,
                    ordered, g_results);
  for (const auto& [key, row] : g_results) {
    AppendEvalRowJson("table1_comparison", row);
  }
  return 0;
}
