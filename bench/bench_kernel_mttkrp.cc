// Kernel micro-benchmark: MTTKRP on COO vs CSF vs CSF+SIMD, plus the
// dense gemm/Gram micro-kernels behind the ALS solves — the trajectory
// behind BENCH_kernels.json.
//
// History: the first measurement on month-binned presets found fibers
// averaging only ~3 nonzeros (K = 12 caps them), so plain COO won and
// the library kept COO in the hot path. The register-blocked kernel
// rewrite changed that verdict: CSF's fiber factoring (one rank-r
// accumulator per fiber, ~1/2 the flops) combined with the vectorized
// kernel build now beats the COO entry loop well past the 4x mark, and
// CSF via SparseKernels IS the training hot path (trainer, RewrittenLoss,
// CP-ALS). The coo series here measures the retained COO fallback
// (MttkrpCoo) for continuity with the committed baselines; csf uses the
// scalar kernel table, csf_simd the native (TCSS_SIMD=native) build.
// All three are bit-identical across thread counts; scalar and native
// are bit-identical to each other (see tests/kernels_test.cc).
//
// The thread-scaling sweep (BM_MttkrpCooThreads) tracks the speedup of
// the deterministic parallel path at 1/2/4/8 threads; the output is
// bit-identical at every thread count, so this measures scheduling
// overhead and memory bandwidth only. BM_Gemm/BM_Gram sweep the dense
// products behind the ALS solves (square references plus the tall-skinny
// rows x rank shapes CP-ALS actually forms), each in scalar and simd
// variants.
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "linalg/simd.h"
#include "tensor/csf_tensor.h"
#include "tensor/mttkrp.h"
#include "tensor/sparse_kernels.h"

namespace {

using namespace tcss;

const char* TensorName(int which) {
  return which == 0 ? "gowalla-like" : "gmu5k-like";
}

// Selects the kernel build for one benchmark run. simd=1 asks for the
// native build; if it is unavailable (not compiled in / CPU too old) the
// dispatcher falls back to scalar with a warning and the emitted rows
// carry "simd": "scalar", so a fallback can never masquerade as a
// vectorized measurement.
void SelectSimd(int64_t simd) {
  SetSimdMode(simd != 0 ? SimdMode::kNative : SimdMode::kScalar);
  if (simd != 0 && !(SimdNativeCompiledIn() && SimdNativeSupportedByCpu())) {
    SetSimdMode(SimdMode::kScalar);
  }
}

const char* SimdTag(int64_t simd) { return simd != 0 ? "_simd" : ""; }

// Emits one TCSS_BENCH_JSON record with mean seconds/iteration; the
// google-benchmark tables stay the human-readable output.
void EmitKernelJson(const std::string& metric, int which, double total_s,
                    size_t iters) {
  if (iters == 0) return;
  tcss::bench::AppendBenchJson("kernel_mttkrp", TensorName(which), metric,
                               total_s / static_cast<double>(iters));
}

const SparseTensor& CheckinTensor(int which) {
  static std::map<int, SparseTensor>* tensors = new std::map<int, SparseTensor>();
  auto it = tensors->find(which);
  if (it != tensors->end()) return it->second;
  auto preset = which == 0 ? SyntheticPreset::kGowallaLike
                           : SyntheticPreset::kGmu5kLike;
  auto data = GenerateSyntheticLbsn(PresetConfig(preset, 1.0));
  auto split = SplitCheckins(data.value(), 0.8, 42);
  auto t = BuildCheckinTensor(data.value(), split.train,
                              TimeGranularity::kMonthOfYear);
  return tensors->emplace(which, t.MoveValue()).first->second;
}

void BM_MttkrpCoo(benchmark::State& state) {
  const SparseTensor& x = CheckinTensor(static_cast<int>(state.range(1)));
  const size_t r = static_cast<size_t>(state.range(0));
  SetSimdMode(SimdMode::kScalar);  // COO loop bypasses the kernel table;
                                   // keep the emitted simd tag honest
  Rng rng(1);
  Matrix factors[3] = {Matrix(x.dim_i(), r),
                       Matrix::GaussianRandom(x.dim_j(), r, &rng),
                       Matrix::GaussianRandom(x.dim_k(), r, &rng)};
  Stopwatch sw;
  size_t iters = 0;
  for (auto _ : state) {
    Matrix out = MttkrpCoo(x, factors, 0);
    benchmark::DoNotOptimize(out.data());
    ++iters;
  }
  state.counters["nnz"] = static_cast<double>(x.nnz());
  EmitKernelJson("coo_r" + std::to_string(r) + "_s",
                 static_cast<int>(state.range(1)), sw.ElapsedSeconds(),
                 iters);
}

// Args: {rank, dataset, simd}. Measures the dispatched CSF mode-0 MTTKRP
// (the hot-path kernel) on a prebuilt tree.
void BM_MttkrpCsf(benchmark::State& state) {
  const SparseTensor& x = CheckinTensor(static_cast<int>(state.range(1)));
  const CsfTensor csf(x);
  const size_t r = static_cast<size_t>(state.range(0));
  const int64_t simd = state.range(2);
  SelectSimd(simd);
  Rng rng(1);
  Matrix factors[3] = {Matrix(x.dim_i(), r),
                       Matrix::GaussianRandom(x.dim_j(), r, &rng),
                       Matrix::GaussianRandom(x.dim_k(), r, &rng)};
  Stopwatch sw;
  size_t iters = 0;
  for (auto _ : state) {
    Matrix out = SparseKernels::Mttkrp(csf, factors, 0);
    benchmark::DoNotOptimize(out.data());
    ++iters;
  }
  state.counters["fibers"] = static_cast<double>(csf.num_fibers());
  state.counters["nnz"] = static_cast<double>(csf.nnz());
  EmitKernelJson("csf" + std::string(SimdTag(simd)) + "_r" +
                     std::to_string(r) + "_s",
                 static_cast<int>(state.range(1)), sw.ElapsedSeconds(),
                 iters);
  SetSimdMode(SimdMode::kScalar);
}

// Args: {mode, simd}. Per-mode CSF series at rank 32 on the gowalla-like
// tensor: modes 1/2 run off the same mode-0-rooted tree.
void BM_MttkrpCsfMode(benchmark::State& state) {
  const SparseTensor& x = CheckinTensor(0);
  const CsfTensor csf(x);
  const size_t r = 32;
  const int mode = static_cast<int>(state.range(0));
  const int64_t simd = state.range(1);
  SelectSimd(simd);
  Rng rng(1);
  Matrix factors[3] = {Matrix::GaussianRandom(x.dim_i(), r, &rng),
                       Matrix::GaussianRandom(x.dim_j(), r, &rng),
                       Matrix::GaussianRandom(x.dim_k(), r, &rng)};
  Stopwatch sw;
  size_t iters = 0;
  for (auto _ : state) {
    Matrix out = SparseKernels::Mttkrp(csf, factors, mode);
    benchmark::DoNotOptimize(out.data());
    ++iters;
  }
  EmitKernelJson("csf" + std::string(SimdTag(simd)) + "_mode" +
                     std::to_string(mode) + "_r32_s",
                 /*which=*/0, sw.ElapsedSeconds(), iters);
  SetSimdMode(SimdMode::kScalar);
}

// Thread-scaling sweep over the parallel COO path: rank 32 on the
// gowalla-like tensor, num_threads in {1, 2, 4, 8}. UseRealTime because
// the work happens on pool workers, not the timing thread.
void BM_MttkrpCooThreads(benchmark::State& state) {
  const SparseTensor& x = CheckinTensor(0);
  const size_t r = 32;
  SetSimdMode(SimdMode::kScalar);
  Rng rng(1);
  Matrix factors[3] = {Matrix(x.dim_i(), r),
                       Matrix::GaussianRandom(x.dim_j(), r, &rng),
                       Matrix::GaussianRandom(x.dim_k(), r, &rng)};
  SetGlobalThreads(static_cast<int>(state.range(0)));
  Stopwatch sw;
  size_t iters = 0;
  for (auto _ : state) {
    Matrix out = MttkrpCoo(x, factors, 0);
    benchmark::DoNotOptimize(out.data());
    ++iters;
  }
  state.counters["nnz"] = static_cast<double>(x.nnz());
  state.counters["threads"] = static_cast<double>(state.range(0));
  EmitKernelJson("coo_r32_t" + std::to_string(state.range(0)) + "_s",
                 /*which=*/0, sw.ElapsedSeconds(), iters);
  SetGlobalThreads(1);
}

// Dense gemm sweep over the shapes the CP-ALS solve path actually hits:
// square reference points plus the tall-skinny (rows x rank) products
// behind Gram matrices and fold-in. Args: {m, k, n, simd} for
// (m x k)(k x n).
void BM_Gemm(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const size_t n = static_cast<size_t>(state.range(2));
  const int64_t simd = state.range(3);
  SelectSimd(simd);
  Rng rng(7);
  const Matrix a = Matrix::GaussianRandom(m, k, &rng);
  const Matrix b = Matrix::GaussianRandom(k, n, &rng);
  Stopwatch sw;
  size_t iters = 0;
  for (auto _ : state) {
    Matrix out = MatMul(a, b);
    benchmark::DoNotOptimize(out.data());
    ++iters;
  }
  const double flops = 2.0 * static_cast<double>(m) *
                       static_cast<double>(k) * static_cast<double>(n);
  state.counters["gflops"] = benchmark::Counter(
      flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  if (iters > 0) {
    tcss::bench::AppendBenchJson(
        "kernel_gemm", "dense",
        "m" + std::to_string(m) + "_k" + std::to_string(k) + "_n" +
            std::to_string(n) + SimdTag(simd) + "_s",
        sw.ElapsedSeconds() / static_cast<double>(iters));
  }
  SetSimdMode(SimdMode::kScalar);
}

// Tall-skinny Gram sweep (a^T a for rows x rank factors): the per-mode
// normal-equation matrix CP-ALS forms every sweep. Args: {rows, r, simd}.
void BM_Gram(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t r = static_cast<size_t>(state.range(1));
  const int64_t simd = state.range(2);
  SelectSimd(simd);
  Rng rng(7);
  const Matrix a = Matrix::GaussianRandom(rows, r, &rng);
  Stopwatch sw;
  size_t iters = 0;
  for (auto _ : state) {
    Matrix out = Gram(a);
    benchmark::DoNotOptimize(out.data());
    ++iters;
  }
  if (iters > 0) {
    tcss::bench::AppendBenchJson(
        "kernel_gemm", "dense",
        "gram_rows" + std::to_string(rows) + "_r" + std::to_string(r) +
            SimdTag(simd) + "_s",
        sw.ElapsedSeconds() / static_cast<double>(iters));
  }
  SetSimdMode(SimdMode::kScalar);
}

// Arg tuples: {rank, dataset} (dataset 0 = sparse gowalla-like with
// short fibers, 1 = dense gmu5k-like with long fibers); CSF variants add
// a trailing simd flag (0 = scalar table, 1 = native table).
BENCHMARK(BM_MttkrpCoo)
    ->Args({4, 0})->Args({10, 0})->Args({32, 0})
    ->Args({4, 1})->Args({10, 1})->Args({32, 1});
BENCHMARK(BM_MttkrpCsf)
    ->Args({4, 0, 0})->Args({10, 0, 0})->Args({32, 0, 0})
    ->Args({4, 1, 0})->Args({10, 1, 0})->Args({32, 1, 0})
    ->Args({4, 0, 1})->Args({10, 0, 1})->Args({32, 0, 1})
    ->Args({4, 1, 1})->Args({10, 1, 1})->Args({32, 1, 1});
BENCHMARK(BM_MttkrpCsfMode)
    ->Args({0, 0})->Args({1, 0})->Args({2, 0})
    ->Args({0, 1})->Args({1, 1})->Args({2, 1});
BENCHMARK(BM_MttkrpCooThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();
BENCHMARK(BM_Gemm)
    ->Args({128, 128, 128, 0})
    ->Args({256, 256, 256, 0})
    ->Args({512, 512, 512, 0})
    ->Args({4096, 32, 32, 0})
    ->Args({4096, 32, 512, 0})
    ->Args({128, 128, 128, 1})
    ->Args({256, 256, 256, 1})
    ->Args({512, 512, 512, 1})
    ->Args({4096, 32, 32, 1})
    ->Args({4096, 32, 512, 1});
BENCHMARK(BM_Gram)
    ->Args({2000, 10, 0})
    ->Args({2000, 32, 0})
    ->Args({20000, 32, 0})
    ->Args({2000, 10, 1})
    ->Args({2000, 32, 1})
    ->Args({20000, 32, 1});

}  // namespace

BENCHMARK_MAIN();
