// Kernel micro-benchmark: mode-0 MTTKRP on COO vs CSF (DESIGN.md's
// compressed-sparse-fiber decision). CSF's fiber factoring reuses the U2
// row across a fiber's nonzeros, which pays off when (user, POI) fibers
// are long. Measured result on the month-binned presets: fibers average
// only ~3 nonzeros (K = 12 caps them), so plain COO wins - the library
// therefore keeps COO in the CP-ALS hot path and CSF as an alternative
// for long-fiber regimes (hour/week granularities, denser data).
// The thread-scaling sweep (BM_MttkrpCooThreads) tracks the speedup of
// the deterministic parallel path at 1/2/4/8 threads; the output is
// bit-identical at every thread count, so this measures scheduling
// overhead and memory bandwidth only. BM_Gemm/BM_Gram sweep the dense
// products behind the ALS solves (square references plus the tall-skinny
// rows x rank shapes CP-ALS actually forms).
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "tensor/csf_tensor.h"
#include "tensor/mttkrp.h"

namespace {

using namespace tcss;

const char* TensorName(int which) {
  return which == 0 ? "gowalla-like" : "gmu5k-like";
}

// Emits one TCSS_BENCH_JSON record with mean seconds/iteration; the
// google-benchmark tables stay the human-readable output.
void EmitKernelJson(const std::string& metric, int which, double total_s,
                    size_t iters) {
  if (iters == 0) return;
  tcss::bench::AppendBenchJson("kernel_mttkrp", TensorName(which), metric,
                               total_s / static_cast<double>(iters));
}

const SparseTensor& CheckinTensor(int which) {
  static std::map<int, SparseTensor>* tensors = new std::map<int, SparseTensor>();
  auto it = tensors->find(which);
  if (it != tensors->end()) return it->second;
  auto preset = which == 0 ? SyntheticPreset::kGowallaLike
                           : SyntheticPreset::kGmu5kLike;
  auto data = GenerateSyntheticLbsn(PresetConfig(preset, 1.0));
  auto split = SplitCheckins(data.value(), 0.8, 42);
  auto t = BuildCheckinTensor(data.value(), split.train,
                              TimeGranularity::kMonthOfYear);
  return tensors->emplace(which, t.MoveValue()).first->second;
}

void BM_MttkrpCoo(benchmark::State& state) {
  const SparseTensor& x = CheckinTensor(static_cast<int>(state.range(1)));
  const size_t r = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix factors[3] = {Matrix(x.dim_i(), r),
                       Matrix::GaussianRandom(x.dim_j(), r, &rng),
                       Matrix::GaussianRandom(x.dim_k(), r, &rng)};
  Stopwatch sw;
  size_t iters = 0;
  for (auto _ : state) {
    Matrix out = Mttkrp(x, factors, 0);
    benchmark::DoNotOptimize(out.data());
    ++iters;
  }
  state.counters["nnz"] = static_cast<double>(x.nnz());
  EmitKernelJson("coo_r" + std::to_string(r) + "_s",
                 static_cast<int>(state.range(1)), sw.ElapsedSeconds(),
                 iters);
}

void BM_MttkrpCsf(benchmark::State& state) {
  const SparseTensor& x = CheckinTensor(static_cast<int>(state.range(1)));
  const CsfTensor csf(x);
  const size_t r = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix u2 = Matrix::GaussianRandom(x.dim_j(), r, &rng);
  Matrix u3 = Matrix::GaussianRandom(x.dim_k(), r, &rng);
  Stopwatch sw;
  size_t iters = 0;
  for (auto _ : state) {
    Matrix out = csf.MttkrpMode0(u2, u3);
    benchmark::DoNotOptimize(out.data());
    ++iters;
  }
  state.counters["fibers"] = static_cast<double>(csf.num_fibers());
  state.counters["nnz"] = static_cast<double>(csf.nnz());
  EmitKernelJson("csf_r" + std::to_string(r) + "_s",
                 static_cast<int>(state.range(1)), sw.ElapsedSeconds(),
                 iters);
}

// Thread-scaling sweep over the parallel COO path: rank 32 on the
// gowalla-like tensor, num_threads in {1, 2, 4, 8}. UseRealTime because
// the work happens on pool workers, not the timing thread.
void BM_MttkrpCooThreads(benchmark::State& state) {
  const SparseTensor& x = CheckinTensor(0);
  const size_t r = 32;
  Rng rng(1);
  Matrix factors[3] = {Matrix(x.dim_i(), r),
                       Matrix::GaussianRandom(x.dim_j(), r, &rng),
                       Matrix::GaussianRandom(x.dim_k(), r, &rng)};
  SetGlobalThreads(static_cast<int>(state.range(0)));
  Stopwatch sw;
  size_t iters = 0;
  for (auto _ : state) {
    Matrix out = Mttkrp(x, factors, 0);
    benchmark::DoNotOptimize(out.data());
    ++iters;
  }
  state.counters["nnz"] = static_cast<double>(x.nnz());
  state.counters["threads"] = static_cast<double>(state.range(0));
  SetGlobalThreads(1);
  EmitKernelJson("coo_r32_t" + std::to_string(state.range(0)) + "_s",
                 /*which=*/0, sw.ElapsedSeconds(), iters);
}

// Dense gemm sweep over the shapes the CP-ALS solve path actually hits:
// square reference points plus the tall-skinny (rows x rank) products
// behind Gram matrices and fold-in. Args: {m, k, n} for (m x k)(k x n).
void BM_Gemm(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const size_t n = static_cast<size_t>(state.range(2));
  Rng rng(7);
  const Matrix a = Matrix::GaussianRandom(m, k, &rng);
  const Matrix b = Matrix::GaussianRandom(k, n, &rng);
  Stopwatch sw;
  size_t iters = 0;
  for (auto _ : state) {
    Matrix out = MatMul(a, b);
    benchmark::DoNotOptimize(out.data());
    ++iters;
  }
  const double flops = 2.0 * static_cast<double>(m) *
                       static_cast<double>(k) * static_cast<double>(n);
  state.counters["gflops"] = benchmark::Counter(
      flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  if (iters > 0) {
    tcss::bench::AppendBenchJson(
        "kernel_gemm", "dense",
        "m" + std::to_string(m) + "_k" + std::to_string(k) + "_n" +
            std::to_string(n) + "_s",
        sw.ElapsedSeconds() / static_cast<double>(iters));
  }
}

// Tall-skinny Gram sweep (a^T a for rows x rank factors): the per-mode
// normal-equation matrix CP-ALS forms every sweep.
void BM_Gram(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t r = static_cast<size_t>(state.range(1));
  Rng rng(7);
  const Matrix a = Matrix::GaussianRandom(rows, r, &rng);
  Stopwatch sw;
  size_t iters = 0;
  for (auto _ : state) {
    Matrix out = Gram(a);
    benchmark::DoNotOptimize(out.data());
    ++iters;
  }
  if (iters > 0) {
    tcss::bench::AppendBenchJson(
        "kernel_gemm", "dense",
        "gram_rows" + std::to_string(rows) + "_r" + std::to_string(r) +
            "_s",
        sw.ElapsedSeconds() / static_cast<double>(iters));
  }
}

// Arg pairs: {rank, dataset} with dataset 0 = sparse gowalla-like
// (short fibers; COO tends to win) and 1 = dense gmu5k-like (long
// fibers; CSF's factoring pays off).
BENCHMARK(BM_MttkrpCoo)
    ->Args({4, 0})->Args({10, 0})->Args({32, 0})
    ->Args({4, 1})->Args({10, 1})->Args({32, 1});
BENCHMARK(BM_MttkrpCsf)
    ->Args({4, 0})->Args({10, 0})->Args({32, 0})
    ->Args({4, 1})->Args({10, 1})->Args({32, 1});
BENCHMARK(BM_MttkrpCooThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();
BENCHMARK(BM_Gemm)
    ->Args({128, 128, 128})
    ->Args({256, 256, 256})
    ->Args({512, 512, 512})
    ->Args({4096, 32, 32})
    ->Args({4096, 32, 512});
BENCHMARK(BM_Gram)
    ->Args({2000, 10})
    ->Args({2000, 32})
    ->Args({20000, 32});

}  // namespace

BENCHMARK_MAIN();
