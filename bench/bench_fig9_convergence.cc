// Figure 9: effectiveness of the spectral initialization - Hit@10 and MRR
// along the training trajectory for spectral vs random vs one-hot
// initialization (Gowalla-like).
//
// Expected shape (paper): the spectral start converges faster and ends at
// or above the alternatives.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"

namespace {

using tcss::bench::GetWorld;

struct Curve {
  std::string label;
  std::vector<int> epochs;
  std::vector<double> hit;
  std::vector<double> mrr;
};

std::vector<Curve> g_curves;

void BM_Convergence(benchmark::State& state, tcss::InitMethod init,
                    const std::string& label) {
  const tcss::bench::World& world =
      GetWorld(tcss::SyntheticPreset::kGowallaLike);
  Curve curve;
  curve.label = label;
  for (auto _ : state) {
    curve.epochs.clear();
    curve.hit.clear();
    curve.mrr.clear();
    tcss::TcssConfig cfg;
    cfg.init = init;
    tcss::TcssModel model(cfg);
    const int eval_every = std::max(1, cfg.epochs / 10);
    tcss::Status st = model.FitWithCallback(
        {&world.data, &world.train, tcss::TimeGranularity::kMonthOfYear, 7},
        [&](const tcss::EpochStats& s, const tcss::FactorModel& factors) {
          if (s.epoch % eval_every != 0 && s.epoch != 1) return;
          tcss::RankingProtocolOptions opts;
          tcss::RankingMetrics m = tcss::EvaluateRanking(
              [&factors](uint32_t i, uint32_t j, uint32_t k) {
                return factors.Predict(i, j, k);
              },
              world.data.num_pois(), world.test_cells, opts);
          curve.epochs.push_back(s.epoch);
          curve.hit.push_back(m.hit_at_k);
          curve.mrr.push_back(m.mrr);
        });
    TCSS_CHECK(st.ok());
  }
  state.counters["final_Hit@10"] = curve.hit.empty() ? 0 : curve.hit.back();
  state.counters["final_MRR"] = curve.mrr.empty() ? 0 : curve.mrr.back();
  g_curves.push_back(std::move(curve));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("fig9/spectral", BM_Convergence,
                               tcss::InitMethod::kSpectral,
                               std::string("spectral"))
      ->Iterations(1)
      ->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark("fig9/random", BM_Convergence,
                               tcss::InitMethod::kRandom,
                               std::string("random"))
      ->Iterations(1)
      ->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark("fig9/one-hot", BM_Convergence,
                               tcss::InitMethod::kOneHot,
                               std::string("one-hot"))
      ->Iterations(1)
      ->Unit(benchmark::kSecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Figure 9: convergence of initialization methods "
              "(gowalla-like) ===\n");
  for (const char* metric : {"Hit@10", "MRR"}) {
    std::printf("\n%s along training:\n%-10s", metric, "epoch");
    if (!g_curves.empty()) {
      for (int e : g_curves.front().epochs) std::printf(" %-7d", e);
    }
    std::printf("\n");
    for (const auto& c : g_curves) {
      std::printf("%-10s", c.label.c_str());
      const auto& vals = metric[0] == 'H' ? c.hit : c.mrr;
      for (double v : vals) std::printf(" %-7.4f", v);
      std::printf("\n");
    }
  }
  return 0;
}
