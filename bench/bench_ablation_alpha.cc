// Design-choice ablation (DESIGN.md #4): the generalized-mean exponent
// alpha of the soft minimum in the weighted Hausdorff loss (Eq 10). The
// paper adopts alpha = -1 following Ribera et al.; more negative values
// approximate min() more closely but give rougher gradients.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using tcss::bench::EvalRow;
using tcss::bench::FitAndEvaluate;
using tcss::bench::GetWorld;

std::vector<std::pair<double, EvalRow>> g_rows;

void BM_Alpha(benchmark::State& state, double alpha) {
  const tcss::bench::World& world =
      GetWorld(tcss::SyntheticPreset::kGowallaLike);
  EvalRow row;
  for (auto _ : state) {
    tcss::TcssConfig cfg;
    cfg.alpha = alpha;
    tcss::TcssModel model(cfg);
    row = FitAndEvaluate(&model, world);
  }
  state.counters["Hit@10"] = row.hit_at_10;
  state.counters["MRR"] = row.mrr;
  g_rows.emplace_back(alpha, row);
}

}  // namespace

int main(int argc, char** argv) {
  for (double alpha : {-0.5, -1.0, -2.0, -4.0}) {
    std::string name = "ablation_alpha/alpha=" + std::to_string(alpha);
    benchmark::RegisterBenchmark(name.c_str(), BM_Alpha, alpha)
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Ablation: soft-min exponent alpha (gowalla-like) ===\n");
  std::printf("%-8s %-8s %-8s\n", "alpha", "Hit@10", "MRR");
  for (const auto& [alpha, row] : g_rows) {
    std::printf("%-8g %-8.4f %-8.4f\n", alpha, row.hit_at_10, row.mrr);
  }
  return 0;
}
