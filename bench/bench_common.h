#ifndef TCSS_BENCH_BENCH_COMMON_H_
#define TCSS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "common/stopwatch.h"
#include "core/tcss_model.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "eval/ranking_protocol.h"

namespace tcss::bench {

/// A fully prepared experiment world: dataset, 80/20 split, train tensor
/// and deduplicated test cells for one granularity.
struct World {
  std::string name;
  Dataset data;
  TrainTestSplit split;
  SparseTensor train;
  std::vector<TensorCell> test_cells;
};

/// Dataset scale for all benches; override with TCSS_BENCH_SCALE (e.g. 0.3
/// for a quick smoke run). 1.0 reproduces the committed preset sizes.
inline double BenchScale() {
  const char* env = std::getenv("TCSS_BENCH_SCALE");
  if (env != nullptr) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) return s;
  }
  return 1.0;
}

/// Builds (and memoizes per preset x granularity) a World.
const World& GetWorld(SyntheticPreset preset,
                      TimeGranularity granularity =
                          TimeGranularity::kMonthOfYear);

/// Builds a world from an explicit dataset (per-category experiments).
World MakeWorld(std::string name, const Dataset& data,
                TimeGranularity granularity);

/// Result of one (model, world) evaluation.
struct EvalRow {
  std::string model;
  std::string dataset;
  double hit_at_10 = 0.0;
  double mrr = 0.0;
  double fit_seconds = 0.0;
};

/// Fits a model on the world and evaluates the paper's protocol.
EvalRow FitAndEvaluate(Recommender* model, const World& world,
                       uint64_t eval_seed = 777);

/// Paper-style results table, one row per model, Hit@10 + MRR columns
/// grouped per dataset.
void PrintResultsTable(const std::string& title,
                       const std::vector<std::string>& datasets,
                       const std::vector<std::string>& models,
                       const std::map<std::pair<std::string, std::string>,
                                      EvalRow>& cells);

/// All four preset datasets in Table I order.
std::vector<SyntheticPreset> AllPresets();

/// Appends one machine-readable result record to the file named by the
/// TCSS_BENCH_JSON environment variable, as a JSON Lines row:
///
///   {"bench": "...", "dataset": "...", "metric": "...", "value": 1.5}
///
/// No-op when the variable is unset, so human-readable tables stay the
/// default; append-mode, so one file can collect a whole bench suite.
void AppendBenchJson(const std::string& bench, const std::string& dataset,
                     const std::string& metric, double value);

/// Emits the standard Hit@10 / MRR / fit-seconds records for one EvalRow.
void AppendEvalRowJson(const std::string& bench, const EvalRow& row);

}  // namespace tcss::bench

#endif  // TCSS_BENCH_BENCH_COMMON_H_
