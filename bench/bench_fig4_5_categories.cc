// Figures 4 & 5: Hit@10 and MRR per POI category (shopping,
// entertainment, food, outdoor) and per time granularity (month, week,
// hour) on the Gowalla-like preset, for TCSS and representative baselines.
//
// Expected shape (paper): TCSS leads on every category and granularity;
// the outdoor category is strongest (most seasonal), food weakest;
// month granularity beats week.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using tcss::bench::EvalRow;
using tcss::bench::FitAndEvaluate;
using tcss::bench::MakeWorld;

const char* const kModels[] = {"CP", "P-Tucker", "NCF", "TCSS"};

// world cache: category x granularity
std::map<std::pair<int, int>, tcss::bench::World> g_worlds;
std::map<std::tuple<std::string, int, int>, EvalRow> g_results;

const tcss::bench::World& CategoryWorld(int category, int granularity) {
  auto key = std::make_pair(category, granularity);
  auto it = g_worlds.find(key);
  if (it != g_worlds.end()) return it->second;
  const tcss::bench::World& base =
      tcss::bench::GetWorld(tcss::SyntheticPreset::kGowallaLike);
  tcss::Dataset filtered = base.data.FilterByCategory(
      static_cast<tcss::PoiCategory>(category));
  tcss::bench::World world = MakeWorld(
      std::string(tcss::CategoryName(static_cast<tcss::PoiCategory>(category))),
      filtered, static_cast<tcss::TimeGranularity>(granularity));
  return g_worlds.emplace(key, std::move(world)).first->second;
}

void BM_CategoryModel(benchmark::State& state, const std::string& model_name,
                      int category, int granularity) {
  const tcss::bench::World& world = CategoryWorld(category, granularity);
  EvalRow row;
  for (auto _ : state) {
    auto model = tcss::MakeModel(model_name, 7);
    row = FitAndEvaluate(model.get(), world);
  }
  state.counters["Hit@10"] = row.hit_at_10;
  state.counters["MRR"] = row.mrr;
  g_results[{model_name, category, granularity}] = row;
}

}  // namespace

int main(int argc, char** argv) {
  const int granularities[] = {
      static_cast<int>(tcss::TimeGranularity::kMonthOfYear),
      static_cast<int>(tcss::TimeGranularity::kWeekOfYear),
      static_cast<int>(tcss::TimeGranularity::kHourOfDay)};
  for (int cat = 0; cat < tcss::kNumCategories; ++cat) {
    for (int g : granularities) {
      for (const char* model : kModels) {
        std::string name =
            std::string("fig4_5/") +
            tcss::CategoryName(static_cast<tcss::PoiCategory>(cat)) + "/" +
            tcss::GranularityName(static_cast<tcss::TimeGranularity>(g)) +
            "/" + model;
        benchmark::RegisterBenchmark(name.c_str(), BM_CategoryModel,
                                     std::string(model), cat, g)
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  for (const char* metric : {"Hit@10", "MRR"}) {
    std::printf("\n=== Figure %s: %s per POI category and granularity "
                "(gowalla-like) ===\n",
                metric[0] == 'H' ? "4" : "5", metric);
    std::printf("%-12s %-10s", "category", "model");
    for (int g : granularities) {
      std::printf(" %-8s",
                  tcss::GranularityName(static_cast<tcss::TimeGranularity>(g)));
    }
    std::printf("\n");
    for (int cat = 0; cat < tcss::kNumCategories; ++cat) {
      for (const char* model : kModels) {
        std::printf("%-12s %-10s",
                    tcss::CategoryName(static_cast<tcss::PoiCategory>(cat)),
                    model);
        for (int g : granularities) {
          const EvalRow& row = g_results[{model, cat, g}];
          std::printf(" %-8.4f",
                      metric[0] == 'H' ? row.hit_at_10 : row.mrr);
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
