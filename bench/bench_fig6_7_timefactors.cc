// Figures 6 & 7: cosine-similarity heatmaps between learned time-factor
// rows of U3.
//   Fig 6: month / week / hour granularities on the shopping category.
//   Fig 7: month similarity for each POI category.
//
// Expected shape (paper): month factors form seasonal blocks (adjacent
// months similar); blocks are weaker for week/hour; the food category
// shows the fewest dark blocks.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using tcss::bench::FitAndEvaluate;
using tcss::bench::MakeWorld;

void PrintHeatmap(const char* title, const tcss::Matrix& sim) {
  std::printf("\n--- %s (cosine similarity of time factors) ---\n", title);
  const size_t k = sim.rows();
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = 0; b < k; ++b) std::printf("%6.2f", sim(a, b));
    std::printf("\n");
  }
  // Seasonality score: mean similarity of adjacent bins minus mean
  // similarity of bins half a cycle apart (higher = blockier heatmap).
  double adjacent = 0.0, opposite = 0.0;
  for (size_t a = 0; a < k; ++a) {
    adjacent += sim(a, (a + 1) % k);
    opposite += sim(a, (a + k / 2) % k);
  }
  std::printf("seasonality score (adjacent - opposite mean): %.4f\n",
              (adjacent - opposite) / static_cast<double>(k));
}

tcss::Matrix TrainAndSimilarity(const tcss::bench::World& world) {
  tcss::TcssConfig cfg;
  tcss::TcssModel model(cfg);
  (void)FitAndEvaluate(&model, world);
  return model.TimeFactorSimilarity();
}

std::vector<std::pair<std::string, tcss::Matrix>> g_heatmaps;

void BM_TimeFactors(benchmark::State& state, const std::string& label,
                    int category, int granularity) {
  const tcss::bench::World& base =
      tcss::bench::GetWorld(tcss::SyntheticPreset::kGowallaLike);
  tcss::Dataset filtered = base.data.FilterByCategory(
      static_cast<tcss::PoiCategory>(category));
  tcss::bench::World world =
      MakeWorld(label, filtered,
                static_cast<tcss::TimeGranularity>(granularity));
  tcss::Matrix sim;
  for (auto _ : state) {
    sim = TrainAndSimilarity(world);
    benchmark::DoNotOptimize(sim.data());
  }
  g_heatmaps.emplace_back(label, std::move(sim));
}

}  // namespace

int main(int argc, char** argv) {
  // Fig 6: shopping category across granularities.
  const std::pair<const char*, tcss::TimeGranularity> fig6[] = {
      {"fig6/shopping/month", tcss::TimeGranularity::kMonthOfYear},
      {"fig6/shopping/week", tcss::TimeGranularity::kWeekOfYear},
      {"fig6/shopping/hour", tcss::TimeGranularity::kHourOfDay}};
  for (const auto& [label, g] : fig6) {
    benchmark::RegisterBenchmark(label, BM_TimeFactors, std::string(label),
                                 static_cast<int>(tcss::PoiCategory::kShopping),
                                 static_cast<int>(g))
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  // Fig 7: month granularity across the other categories.
  for (int cat = 1; cat < tcss::kNumCategories; ++cat) {
    std::string label =
        std::string("fig7/") +
        tcss::CategoryName(static_cast<tcss::PoiCategory>(cat)) + "/month";
    benchmark::RegisterBenchmark(
        label.c_str(), BM_TimeFactors, label, cat,
        static_cast<int>(tcss::TimeGranularity::kMonthOfYear))
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Figures 6 & 7: time-factor similarity heatmaps ===\n");
  for (const auto& [label, sim] : g_heatmaps) {
    PrintHeatmap(label.c_str(), sim);
  }
  return 0;
}
