// Table III: performance with different (w+, w-) class-balance weights on
// the Gowalla-like preset. Reports RMSE on positive and (sampled)
// negative test cells plus Hit@10 / MRR.
//
// Expected shape (paper): quality improves as w+/w- grows, peaks at an
// intermediate setting, then degrades.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "eval/metrics.h"

namespace {

using tcss::bench::FitAndEvaluate;
using tcss::bench::GetWorld;

struct WeightResult {
  double w_pos, w_neg;
  double rmse_pos, rmse_neg;
  double hit, mrr;
};

std::vector<WeightResult> g_rows;

void BM_Weights(benchmark::State& state, double w_pos, double w_neg) {
  const tcss::bench::World& world =
      GetWorld(tcss::SyntheticPreset::kGowallaLike);
  WeightResult r{w_pos, w_neg, 0, 0, 0, 0};
  for (auto _ : state) {
    tcss::TcssConfig cfg;
    cfg.w_pos = w_pos;
    cfg.w_neg = w_neg;
    tcss::TcssModel model(cfg);
    auto row = FitAndEvaluate(&model, world);
    r.hit = row.hit_at_10;
    r.mrr = row.mrr;

    // RMSE columns: positive test cells vs 1; sampled unobserved cells
    // vs 0 (the "RM Positive/Negative" columns of Table III).
    auto score = [&model](uint32_t i, uint32_t j, uint32_t k) {
      return model.Score(i, j, k);
    };
    r.rmse_pos = tcss::RmseAgainstConstant(score, world.test_cells, 1.0);
    tcss::Rng rng(99);
    std::vector<tcss::TensorCell> negatives;
    while (negatives.size() < world.test_cells.size()) {
      tcss::TensorCell c{
          static_cast<uint32_t>(rng.UniformInt(world.train.dim_i())),
          static_cast<uint32_t>(rng.UniformInt(world.train.dim_j())),
          static_cast<uint32_t>(rng.UniformInt(world.train.dim_k()))};
      if (!world.train.Contains(c.i, c.j, c.k)) negatives.push_back(c);
    }
    r.rmse_neg = tcss::RmseAgainstConstant(score, negatives, 0.0);
  }
  state.counters["Hit@10"] = r.hit;
  state.counters["MRR"] = r.mrr;
  state.counters["RMSE+"] = r.rmse_pos;
  state.counters["RMSE-"] = r.rmse_neg;
  g_rows.push_back(r);
}

}  // namespace

int main(int argc, char** argv) {
  const std::pair<double, double> weights[] = {
      {0.9, 0.1}, {0.95, 0.05}, {0.99, 0.01}, {0.995, 0.005},
      {0.999, 0.001}};
  for (const auto& [wp, wn] : weights) {
    std::string name =
        "table3/w+=" + std::to_string(wp) + "_w-=" + std::to_string(wn);
    benchmark::RegisterBenchmark(name.c_str(), BM_Weights, wp, wn)
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Table III: performance with different (w+, w-) "
              "(gowalla-like) ===\n");
  std::printf("%-16s %-10s %-10s %-8s %-8s\n", "(w+, w-)", "RMSE(pos)",
              "RMSE(neg)", "Hit@10", "MRR");
  for (const auto& r : g_rows) {
    std::printf("(%g, %g)%*s %-10.4f %-10.4f %-8.4f %-8.4f\n", r.w_pos,
                r.w_neg,
                static_cast<int>(16 - 4 - std::to_string(r.w_pos).size()), "",
                r.rmse_pos, r.rmse_neg, r.hit, r.mrr);
  }
  return 0;
}
