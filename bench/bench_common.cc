#include "bench_common.h"

#include <thread>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "linalg/simd.h"

namespace tcss::bench {

const World& GetWorld(SyntheticPreset preset, TimeGranularity granularity) {
  static std::map<std::pair<int, int>, std::unique_ptr<World>> cache;
  auto key = std::make_pair(static_cast<int>(preset),
                            static_cast<int>(granularity));
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;

  SyntheticConfig cfg = PresetConfig(preset, BenchScale());
  auto data = GenerateSyntheticLbsn(cfg);
  TCSS_CHECK(data.ok()) << data.status().ToString();
  auto world = std::make_unique<World>();
  world->name = PresetName(preset);
  world->data = data.MoveValue();
  world->split = SplitCheckins(world->data, 0.8, /*seed=*/42);
  auto train = BuildCheckinTensor(world->data, world->split.train,
                                  granularity);
  TCSS_CHECK(train.ok()) << train.status().ToString();
  world->train = train.MoveValue();
  world->test_cells = EventsToCells(world->split.test, granularity);
  auto [pos, inserted] = cache.emplace(key, std::move(world));
  (void)inserted;
  return *pos->second;
}

World MakeWorld(std::string name, const Dataset& data,
                TimeGranularity granularity) {
  World world;
  world.name = std::move(name);
  world.data = data;
  world.split = SplitCheckins(world.data, 0.8, /*seed=*/42);
  auto train = BuildCheckinTensor(world.data, world.split.train, granularity);
  TCSS_CHECK(train.ok()) << train.status().ToString();
  world.train = train.MoveValue();
  world.test_cells = EventsToCells(world.split.test, granularity);
  return world;
}

EvalRow FitAndEvaluate(Recommender* model, const World& world,
                       uint64_t eval_seed) {
  EvalRow row;
  row.model = model->name();
  row.dataset = world.name;
  Stopwatch sw;
  TimeGranularity g = TimeGranularity::kMonthOfYear;
  switch (world.train.dim_k()) {
    case 12:
      g = TimeGranularity::kMonthOfYear;
      break;
    case 53:
      g = TimeGranularity::kWeekOfYear;
      break;
    case 24:
      g = TimeGranularity::kHourOfDay;
      break;
  }
  Status st = model->Fit({&world.data, &world.train, g, /*seed=*/7});
  TCSS_CHECK(st.ok()) << model->name() << ": " << st.ToString();
  row.fit_seconds = sw.ElapsedSeconds();
  RankingProtocolOptions opts;
  opts.seed = eval_seed;
  RankingMetrics m =
      EvaluateRanking(*model, world.data.num_pois(), world.test_cells, opts);
  row.hit_at_10 = m.hit_at_k;
  row.mrr = m.mrr;
  return row;
}

void PrintResultsTable(const std::string& title,
                       const std::vector<std::string>& datasets,
                       const std::vector<std::string>& models,
                       const std::map<std::pair<std::string, std::string>,
                                      EvalRow>& cells) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-24s", "Model");
  for (const auto& d : datasets) std::printf(" | %-17s", d.c_str());
  std::printf("\n%-24s", "");
  for (size_t d = 0; d < datasets.size(); ++d) {
    std::printf(" | %-8s %-8s", "Hit@10", "MRR");
  }
  std::printf("\n");
  for (const auto& m : models) {
    std::printf("%-24s", m.c_str());
    for (const auto& d : datasets) {
      auto it = cells.find({m, d});
      if (it == cells.end()) {
        std::printf(" | %-8s %-8s", "-", "-");
      } else {
        std::printf(" | %-8.4f %-8.4f", it->second.hit_at_10,
                    it->second.mrr);
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

std::vector<SyntheticPreset> AllPresets() {
  return {SyntheticPreset::kGowallaLike, SyntheticPreset::kYelpLike,
          SyntheticPreset::kFoursquareLike, SyntheticPreset::kGmu5kLike};
}

namespace {

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Short git revision stamped into each row so trajectory points from
/// different checkouts are distinguishable. Configure-time value (the
/// TCSS_GIT_REV define from bench/CMakeLists.txt), overridable at run
/// time via the TCSS_GIT_REV environment variable (CI runs that bench a
/// stale build tree can stamp the truth).
std::string GitRev() {
  const char* env = std::getenv("TCSS_GIT_REV");
  if (env != nullptr && *env != '\0') return env;
#ifdef TCSS_GIT_REV
  return TCSS_GIT_REV;
#else
  return "unknown";
#endif
}

}  // namespace

void AppendBenchJson(const std::string& bench, const std::string& dataset,
                     const std::string& metric, double value) {
  const char* path = std::getenv("TCSS_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  // Append-open per record: several bench binaries run in sequence can
  // share one results file, and a crash loses at most one line.
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot append bench JSON to %s\n", path);
    return;
  }
  // Context fields (num_threads/host_cpus/git_rev/simd) are additive:
  // rows from before they existed parse with the same reader, they just
  // lack the keys.
  std::fprintf(f,
               "{\"bench\": %s, \"dataset\": %s, \"metric\": %s, "
               "\"value\": %.17g, \"num_threads\": %d, \"host_cpus\": %u, "
               "\"git_rev\": %s, \"simd\": %s}\n",
               JsonQuote(bench).c_str(), JsonQuote(dataset).c_str(),
               JsonQuote(metric).c_str(), value, GlobalThreads(),
               std::thread::hardware_concurrency(),
               JsonQuote(GitRev()).c_str(),
               JsonQuote(SimdModeName(ActiveSimdMode())).c_str());
  std::fclose(f);
}

void AppendEvalRowJson(const std::string& bench, const EvalRow& row) {
  AppendBenchJson(bench, row.dataset, row.model + ".hit_at_10",
                  row.hit_at_10);
  AppendBenchJson(bench, row.dataset, row.model + ".mrr", row.mrr);
  AppendBenchJson(bench, row.dataset, row.model + ".fit_seconds",
                  row.fit_seconds);
}

}  // namespace tcss::bench
