// Extension study (not in the paper): cyclic temporal smoothness on the
// time factors, ts * sum_k ||U3_k - U3_{k+1}||^2. Measures recommendation
// quality and the seasonality of the learned time factors as the
// smoothness weight varies.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using tcss::bench::FitAndEvaluate;
using tcss::bench::GetWorld;

struct Row {
  double ts;
  double hit, mrr, season_score;
};

std::vector<Row> g_rows;

double SeasonScore(const tcss::Matrix& sim) {
  const size_t k = sim.rows();
  double adjacent = 0, opposite = 0;
  for (size_t a = 0; a < k; ++a) {
    adjacent += sim(a, (a + 1) % k);
    opposite += sim(a, (a + k / 2) % k);
  }
  return (adjacent - opposite) / static_cast<double>(k);
}

void BM_Temporal(benchmark::State& state, double ts) {
  const tcss::bench::World& world =
      GetWorld(tcss::SyntheticPreset::kGowallaLike);
  Row r{ts, 0, 0, 0};
  for (auto _ : state) {
    tcss::TcssConfig cfg;
    cfg.temporal_smoothness = ts;
    tcss::TcssModel model(cfg);
    auto row = FitAndEvaluate(&model, world);
    r.hit = row.hit_at_10;
    r.mrr = row.mrr;
    r.season_score = SeasonScore(model.TimeFactorSimilarity());
  }
  state.counters["Hit@10"] = r.hit;
  state.counters["MRR"] = r.mrr;
  state.counters["season"] = r.season_score;
  g_rows.push_back(r);
}

}  // namespace

int main(int argc, char** argv) {
  for (double ts : {0.0, 0.5, 2.0, 8.0}) {
    std::string name = "ext_temporal/ts=" + std::to_string(ts);
    benchmark::RegisterBenchmark(name.c_str(), BM_Temporal, ts)
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Extension: temporal smoothness of the time factors "
              "(gowalla-like) ===\n");
  std::printf("%-8s %-8s %-8s %-14s\n", "ts", "Hit@10", "MRR",
              "season score");
  for (const auto& r : g_rows) {
    std::printf("%-8g %-8.4f %-8.4f %-14.4f\n", r.ts, r.hit, r.mrr,
                r.season_score);
  }
  return 0;
}
