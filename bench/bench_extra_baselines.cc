// Extra reference baselines beyond the paper's Table I: non-personalized
// popularity, classic user-KNN collaborative filtering, and a GeoMF-style
// geographic matrix factorization. Contextualizes the Table I numbers:
// TCSS must beat these simpler references too.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using tcss::bench::EvalRow;
using tcss::bench::FitAndEvaluate;
using tcss::bench::GetWorld;
using tcss::bench::PrintResultsTable;

std::map<std::pair<std::string, std::string>, EvalRow> g_results;

void BM_Extra(benchmark::State& state, const std::string& model_name,
              tcss::SyntheticPreset preset) {
  const tcss::bench::World& world = GetWorld(preset);
  EvalRow row;
  for (auto _ : state) {
    auto model = tcss::MakeModel(model_name, 7);
    row = FitAndEvaluate(model.get(), world);
  }
  state.counters["Hit@10"] = row.hit_at_10;
  state.counters["MRR"] = row.mrr;
  g_results[{row.model, row.dataset}] = row;
}

}  // namespace

int main(int argc, char** argv) {
  const tcss::SyntheticPreset presets[] = {
      tcss::SyntheticPreset::kGowallaLike,
      tcss::SyntheticPreset::kFoursquareLike};
  std::vector<std::string> models = tcss::ExtraModelNames();
  models.push_back("TCSS");
  for (auto preset : presets) {
    for (const auto& model : models) {
      std::string name = std::string("extra/") + tcss::PresetName(preset) +
                         "/" + model;
      benchmark::RegisterBenchmark(name.c_str(), BM_Extra, model, preset)
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::vector<std::string> datasets;
  for (auto p : presets) datasets.push_back(tcss::PresetName(p));
  PrintResultsTable("Extra baselines (Hit@10 / MRR)", datasets, models,
                    g_results);
  return 0;
}
