// Figure 8: effect of different (w+, w-) weight combinations on MRR and
// RMSE (Gowalla-like). Sweeps a grid of w+ for several fixed w- values.
//
// Expected shape (paper): for a fixed w-, MRR rises and RMSE falls as w+
// grows; the absolute weight scale matters (not just the ratio) because
// only L2 carries the weights while L1's scale is fixed by lambda.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "eval/metrics.h"

namespace {

using tcss::bench::FitAndEvaluate;
using tcss::bench::GetWorld;

struct GridRow {
  double w_pos, w_neg, mrr, rmse;
};

std::vector<GridRow> g_rows;

void BM_Grid(benchmark::State& state, double w_pos, double w_neg) {
  const tcss::bench::World& world =
      GetWorld(tcss::SyntheticPreset::kGowallaLike);
  GridRow r{w_pos, w_neg, 0, 0};
  for (auto _ : state) {
    tcss::TcssConfig cfg;
    cfg.w_pos = w_pos;
    cfg.w_neg = w_neg;
    tcss::TcssModel model(cfg);
    auto row = FitAndEvaluate(&model, world);
    r.mrr = row.mrr;
    auto score = [&model](uint32_t i, uint32_t j, uint32_t k) {
      return model.Score(i, j, k);
    };
    r.rmse = tcss::RmseAgainstConstant(score, world.test_cells, 1.0);
  }
  state.counters["MRR"] = r.mrr;
  state.counters["RMSE"] = r.rmse;
  g_rows.push_back(r);
}

}  // namespace

int main(int argc, char** argv) {
  const double w_neg_values[] = {0.01, 0.05, 0.1};
  const double w_pos_values[] = {0.3, 0.6, 0.9, 0.99};
  for (double wn : w_neg_values) {
    for (double wp : w_pos_values) {
      std::string name = "fig8/w+=" + std::to_string(wp) +
                         "/w-=" + std::to_string(wn);
      benchmark::RegisterBenchmark(name.c_str(), BM_Grid, wp, wn)
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Figure 8: effect of (w+, w-) on MRR and RMSE "
              "(gowalla-like) ===\n");
  std::printf("%-8s %-8s %-8s %-8s\n", "w+", "w-", "MRR", "RMSE(pos)");
  for (const auto& r : g_rows) {
    std::printf("%-8g %-8g %-8.4f %-8.4f\n", r.w_pos, r.w_neg, r.mrr,
                r.rmse);
  }
  return 0;
}
