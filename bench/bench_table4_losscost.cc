// Table IV: training time of one epoch of the L2 head under the three
// implementations - the naive whole-data loss (Eq 14), negative sampling,
// and the rewritten loss (Eq 15).
//
// Expected shape (paper): Eq 15 is orders of magnitude faster than Eq 14
// and clearly faster than negative sampling; absolute numbers differ from
// the paper (single CPU core vs their GPU setup), the ratios are the
// asymptotic-complexity property being reproduced.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include <algorithm>
#include <vector>

#include "core/trainer.h"

namespace {

using tcss::bench::GetWorld;

struct CostRow {
  std::string dataset;
  double naive_s = 0, sampling_s = 0, rewritten_s = 0;
};

std::map<std::string, CostRow> g_rows;

void BM_LossEpoch(benchmark::State& state, tcss::SyntheticPreset preset,
                  tcss::LossMode mode) {
  const tcss::bench::World& world = GetWorld(preset);
  tcss::TcssConfig cfg;
  tcss::TcssTrainer trainer(world.data, world.train, cfg);
  double seconds = 0.0;
  for (auto _ : state) {
    auto timed = trainer.TimeOneLossEpoch(mode);
    TCSS_CHECK(timed.ok());
    seconds = timed.value();
    benchmark::DoNotOptimize(seconds);
  }
  state.counters["epoch_s"] = seconds;
  CostRow& row = g_rows[tcss::PresetName(preset)];
  row.dataset = tcss::PresetName(preset);
  switch (mode) {
    case tcss::LossMode::kNaive:
      row.naive_s = seconds;
      break;
    case tcss::LossMode::kNegativeSampling:
      row.sampling_s = seconds;
      break;
    case tcss::LossMode::kRewritten:
      row.rewritten_s = seconds;
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const tcss::SyntheticPreset presets[] = {
      tcss::SyntheticPreset::kGowallaLike, tcss::SyntheticPreset::kYelpLike,
      tcss::SyntheticPreset::kFoursquareLike};
  const std::pair<tcss::LossMode, const char*> modes[] = {
      {tcss::LossMode::kNaive, "naive_eq14"},
      {tcss::LossMode::kNegativeSampling, "negative_sampling"},
      {tcss::LossMode::kRewritten, "rewritten_eq15"}};
  for (auto preset : presets) {
    for (const auto& [mode, label] : modes) {
      std::string name = std::string("table4/") + tcss::PresetName(preset) +
                         "/" + label;
      benchmark::RegisterBenchmark(name.c_str(), BM_LossEpoch, preset, mode)
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The summary table re-measures directly (median of 3) rather than
  // relying on state captured inside the benchmark callbacks.
  std::printf("\n=== Table IV: training time per epoch of the L2 head ===\n");
  std::printf("%-24s %-18s %-20s %-18s %-12s\n", "Dataset",
              "Original Eq (14)", "Negative sampling", "Rewritten Eq (15)",
              "speedup");
  for (auto preset : presets) {
    const tcss::bench::World& world = GetWorld(preset);
    tcss::TcssConfig cfg;
    tcss::TcssTrainer trainer(world.data, world.train, cfg);
    auto median_time = [&trainer](tcss::LossMode mode) {
      std::vector<double> ts;
      for (int rep = 0; rep < 3; ++rep) {
        auto timed = trainer.TimeOneLossEpoch(mode);
        TCSS_CHECK(timed.ok());
        ts.push_back(timed.value());
      }
      std::sort(ts.begin(), ts.end());
      return ts[1];
    };
    const double naive = median_time(tcss::LossMode::kNaive);
    const double sampling = median_time(tcss::LossMode::kNegativeSampling);
    const double rewritten = median_time(tcss::LossMode::kRewritten);
    std::printf("%-24s %-18.6f %-20.6f %-18.6f %-12.0fx\n",
                tcss::PresetName(preset), naive, sampling, rewritten,
                rewritten > 0 ? naive / rewritten : 0.0);
    const std::string dataset = tcss::PresetName(preset);
    tcss::bench::AppendBenchJson("table4_losscost", dataset, "naive_epoch_s",
                                 naive);
    tcss::bench::AppendBenchJson("table4_losscost", dataset,
                                 "negative_sampling_epoch_s", sampling);
    tcss::bench::AppendBenchJson("table4_losscost", dataset,
                                 "rewritten_epoch_s", rewritten);
    tcss::bench::AppendBenchJson("table4_losscost", dataset,
                                 "rewritten_speedup",
                                 rewritten > 0 ? naive / rewritten : 0.0);
  }
  return 0;
}
