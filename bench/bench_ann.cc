// Candidate-generation benchmark for src/ann (DESIGN.md §13): exact
// full-scan top-10 versus LSH candidates + exact re-rank at the default
// table/probe settings, across a catalogue sweep. For each catalogue size
// the bench reports per-query latency of both paths, the speedup, the
// measured recall@10 of the re-ranked union against the full scan, the
// mean union size, and the one-off index build time. The acceptance
// criterion the committed BENCH_ann.json pins: at the largest catalogue
// the ANN path beats the exact scan while recall@10 stays high.
//
// Human-readable table on stdout; TCSS_BENCH_JSON appends machine rows
// (bench "ann_lsh"). TCSS_BENCH_ANN_SCALE (default 1.0) scales the
// catalogue sizes and query counts for quick smoke runs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ann/lsh_index.h"
#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/factor_model.h"
#include "linalg/matrix.h"

namespace tcss {
namespace {

constexpr size_t kRank = 32;
constexpr size_t kUsers = 8;
constexpr size_t kBins = 12;
constexpr size_t kTopK = 10;

double AnnScale() {
  const char* env = std::getenv("TCSS_BENCH_ANN_SCALE");
  if (env != nullptr) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

// Cluster-structured factors: users and POIs co-embed around shared
// centers, the shape trained factorizations actually take (people and
// the places they visit pull toward common taste directions). This is
// the regime LSH is built for. I.i.d. Gaussian factors are the known
// degenerate case — the best item's angle to the query barely beats a
// random item's, no hashing scheme separates them, and a bench on such
// data measures nothing a trained model would ever serve.
constexpr size_t kClusters = 64;

FactorModel BenchModel(uint64_t seed, size_t num_pois) {
  Rng rng(seed);
  FactorModel m;
  const Matrix centers = Matrix::GaussianRandom(kClusters, kRank, &rng, 1.0);
  const auto around = [&](size_t rows, size_t cols, double spread) {
    Matrix out = Matrix::GaussianRandom(rows, cols, &rng, spread);
    for (size_t i = 0; i < rows; ++i) {
      const double* c = centers.row(i % kClusters);
      double* row = out.row(i);
      for (size_t t = 0; t < cols; ++t) row[t] += c[t];
    }
    return out;
  };
  m.u1 = around(kUsers, kRank, 0.1);
  m.u2 = around(num_pois, kRank, 0.3);
  m.u3 = Matrix::GaussianRandom(kBins, kRank, &rng, 0.05);
  for (size_t i = 0; i < kBins * kRank; ++i) m.u3.data()[i] += 1.0;
  m.h.assign(kRank, 1.0);
  return m;
}

// Composed query q_t = h_t * U1[i,t] * U3[k,t]; <q, U2[j]> == Predict.
std::vector<double> ComposeQuery(const FactorModel& m, uint32_t user,
                                 uint32_t bin) {
  std::vector<double> q(kRank);
  const double* a = m.u1.row(user);
  const double* c = m.u3.row(bin);
  for (size_t t = 0; t < kRank; ++t) q[t] = m.h[t] * a[t] * c[t];
  return q;
}

// Exact top-k by full scan over the whole catalogue (what the serving
// exact path pays per factor-scored request), (score desc, id asc).
std::vector<uint32_t> FullScanTopK(const FactorModel& m,
                                   const std::vector<double>& q) {
  std::vector<std::pair<double, uint32_t>> heap;  // min-heap of top k
  const auto worse = [](const std::pair<double, uint32_t>& a,
                        const std::pair<double, uint32_t>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  const size_t J = m.u2.rows();
  for (size_t j = 0; j < J; ++j) {
    const double* row = m.u2.row(j);
    double s = 0.0;
    for (size_t t = 0; t < kRank; ++t) s += q[t] * row[t];
    const std::pair<double, uint32_t> cand{s, static_cast<uint32_t>(j)};
    if (heap.size() < kTopK) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (worse(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), worse);
  std::vector<uint32_t> ids;
  ids.reserve(heap.size());
  for (const auto& [s, j] : heap) ids.push_back(j);
  return ids;
}

// Exact re-rank of the candidate union — the ANN serving path.
std::vector<uint32_t> RerankTopK(const FactorModel& m,
                                 const std::vector<double>& q,
                                 const std::vector<uint32_t>& cands) {
  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(cands.size());
  for (uint32_t j : cands) {
    const double* row = m.u2.row(j);
    double s = 0.0;
    for (size_t t = 0; t < kRank; ++t) s += q[t] * row[t];
    scored.emplace_back(s, j);
  }
  const size_t k = std::min(kTopK, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<uint32_t> ids;
  ids.reserve(k);
  for (size_t i = 0; i < k; ++i) ids.push_back(scored[i].second);
  return ids;
}

double Recall(const std::vector<uint32_t>& approx,
              const std::vector<uint32_t>& exact) {
  if (exact.empty()) return 1.0;
  std::vector<uint32_t> sorted = approx;
  std::sort(sorted.begin(), sorted.end());
  size_t hit = 0;
  for (uint32_t id : exact) {
    if (std::binary_search(sorted.begin(), sorted.end(), id)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

void RunCatalog(size_t num_pois, size_t num_queries) {
  const std::string dataset = StrFormat("catalog%zu_r%zu", num_pois, kRank);
  const FactorModel model = BenchModel(1234 + num_pois, num_pois);

  Stopwatch build_sw;
  ann::LshConfig cfg;  // the defaults the serve flags default to
  ann::LshIndex index(model, cfg);
  const double build_ms = build_sw.ElapsedMillis();

  // Fixed query mix over (user, bin); one warm-up pass keeps the factor
  // matrix hot for both timed passes alike.
  std::vector<std::vector<double>> queries;
  Rng rng(42);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(ComposeQuery(
        model, static_cast<uint32_t>(rng.UniformInt(kUsers)),
        static_cast<uint32_t>(rng.UniformInt(kBins))));
  }
  std::vector<std::vector<uint32_t>> exact(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    exact[i] = FullScanTopK(model, queries[i]);
  }

  Stopwatch exact_sw;
  for (size_t i = 0; i < num_queries; ++i) {
    const auto ids = FullScanTopK(model, queries[i]);
    if (ids != exact[i]) std::abort();  // keep the work observable
  }
  const double exact_us =
      exact_sw.ElapsedMillis() * 1000.0 / static_cast<double>(num_queries);

  double recall_sum = 0.0;
  double cand_sum = 0.0;
  Stopwatch ann_sw;
  for (size_t i = 0; i < num_queries; ++i) {
    const auto cands = index.Candidates(queries[i].data(), kRank);
    const auto ids = RerankTopK(model, queries[i], cands);
    cand_sum += static_cast<double>(cands.size());
    recall_sum += Recall(ids, exact[i]);
  }
  const double ann_us =
      ann_sw.ElapsedMillis() * 1000.0 / static_cast<double>(num_queries);
  const double recall = recall_sum / static_cast<double>(num_queries);
  const double cand_mean = cand_sum / static_cast<double>(num_queries);
  const double speedup = ann_us > 0.0 ? exact_us / ann_us : 0.0;

  std::printf(
      "%-18s exact %8.2f us   ann %8.2f us   speedup %5.2fx   "
      "recall@10 %.4f   cands %7.1f   build %7.2f ms\n",
      dataset.c_str(), exact_us, ann_us, speedup, recall, cand_mean,
      build_ms);

  bench::AppendBenchJson("ann_lsh", dataset, "exact_topk_us", exact_us);
  bench::AppendBenchJson("ann_lsh", dataset, "ann_topk_us", ann_us);
  bench::AppendBenchJson("ann_lsh", dataset, "speedup", speedup);
  bench::AppendBenchJson("ann_lsh", dataset, "recall_at_10", recall);
  bench::AppendBenchJson("ann_lsh", dataset, "candidates_mean", cand_mean);
  bench::AppendBenchJson("ann_lsh", dataset, "build_ms", build_ms);
}

}  // namespace
}  // namespace tcss

int main() {
  const double scale = tcss::AnnScale();
  const size_t queries =
      std::max<size_t>(20, static_cast<size_t>(400 * scale));
  std::printf("ANN candidate generation vs exact full scan (rank %zu, "
              "%zu queries per catalogue)\n",
              tcss::kRank, queries);
  for (size_t pois : {2000, 10000, 50000}) {
    const size_t scaled =
        std::max<size_t>(500, static_cast<size_t>(pois * scale));
    tcss::RunCatalog(scaled, queries);
  }
  return 0;
}
