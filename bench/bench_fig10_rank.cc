// Figure 10: parameter sensitivity - Hit@10 and MRR as the tensor rank r
// varies (r in {2, 4, 6, 8, 10}; the paper caps r at 10 < K-1 because of
// the eigenvector computation along the 12-bin time mode).
//
// Expected shape (paper): larger r helps, r = 10 best.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using tcss::bench::EvalRow;
using tcss::bench::FitAndEvaluate;
using tcss::bench::GetWorld;

std::map<std::pair<std::string, size_t>, EvalRow> g_results;

void BM_Rank(benchmark::State& state, tcss::SyntheticPreset preset,
             size_t rank) {
  const tcss::bench::World& world = GetWorld(preset);
  EvalRow row;
  for (auto _ : state) {
    tcss::TcssConfig cfg;
    cfg.rank = rank;
    tcss::TcssModel model(cfg);
    row = FitAndEvaluate(&model, world);
  }
  state.counters["Hit@10"] = row.hit_at_10;
  state.counters["MRR"] = row.mrr;
  g_results[{tcss::PresetName(preset), rank}] = row;
}

}  // namespace

int main(int argc, char** argv) {
  const tcss::SyntheticPreset presets[] = {
      tcss::SyntheticPreset::kGowallaLike, tcss::SyntheticPreset::kYelpLike,
      tcss::SyntheticPreset::kFoursquareLike};
  const size_t ranks[] = {2, 4, 6, 8, 10};
  for (auto preset : presets) {
    for (size_t r : ranks) {
      std::string name = std::string("fig10/") + tcss::PresetName(preset) +
                         "/r=" + std::to_string(r);
      benchmark::RegisterBenchmark(name.c_str(), BM_Rank, preset, r)
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Figure 10: effect of tensor rank r ===\n");
  for (const char* metric : {"Hit@10", "MRR"}) {
    std::printf("\n%s:\n%-18s", metric, "dataset");
    for (size_t r : ranks) std::printf(" r=%-6zu", r);
    std::printf("\n");
    for (auto preset : presets) {
      std::printf("%-18s", tcss::PresetName(preset));
      for (size_t r : ranks) {
        const EvalRow& row = g_results[{tcss::PresetName(preset), r}];
        std::printf(" %-8.4f", metric[0] == 'H' ? row.hit_at_10 : row.mrr);
      }
      std::printf("\n");
    }
  }
  return 0;
}
