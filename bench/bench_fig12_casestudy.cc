// Figure 12: case study - spatial distribution of the top-100 and top-200
// recommended POIs for a randomly selected user at a fixed time.
//
// Expected shape (paper): the top-100 POIs cluster in small areas
// (Tobler's first law); the top-200 cover a visibly larger area,
// diversifying the recommendation as we move down the list.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>

#include "bench_common.h"
#include "geo/haversine.h"

namespace {

using tcss::bench::FitAndEvaluate;
using tcss::bench::GetWorld;

struct SpreadStats {
  double mean_pairwise_km = 0.0;
  double radius_km = 0.0;  // mean distance to centroid
  tcss::GeoBounds bounds;
};

SpreadStats Spread(const std::vector<tcss::GeoPoint>& pts) {
  SpreadStats s;
  if (pts.size() < 2) return s;
  double lat = 0, lon = 0;
  for (const auto& p : pts) {
    lat += p.lat;
    lon += p.lon;
    s.bounds.Extend(p);
  }
  tcss::GeoPoint centroid{lat / pts.size(), lon / pts.size()};
  double pair_sum = 0.0;
  size_t pairs = 0;
  for (size_t a = 0; a < pts.size(); ++a) {
    s.radius_km += tcss::HaversineKm(pts[a], centroid);
    for (size_t b = a + 1; b < pts.size(); ++b) {
      pair_sum += tcss::HaversineKm(pts[a], pts[b]);
      ++pairs;
    }
  }
  s.mean_pairwise_km = pair_sum / static_cast<double>(pairs);
  s.radius_km /= static_cast<double>(pts.size());
  return s;
}

struct CaseResult {
  uint32_t user;
  SpreadStats top20, top100, top200, all;
};

CaseResult g_result;

void BM_CaseStudy(benchmark::State& state) {
  const tcss::bench::World& world =
      GetWorld(tcss::SyntheticPreset::kGowallaLike);
  for (auto _ : state) {
    tcss::TcssConfig cfg;
    tcss::TcssModel model(cfg);
    (void)FitAndEvaluate(&model, world);

    tcss::Rng rng(1234);
    const uint32_t user =
        static_cast<uint32_t>(rng.UniformInt(world.data.num_users()));
    const uint32_t k = 6;  // July
    std::vector<uint32_t> order(world.data.num_pois());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return model.Score(user, a, k) > model.Score(user, b, k);
    });
    auto take = [&](size_t n) {
      std::vector<tcss::GeoPoint> pts;
      for (size_t t = 0; t < std::min(n, order.size()); ++t) {
        pts.push_back(world.data.poi(order[t]).location);
      }
      return Spread(pts);
    };
    g_result.user = user;
    g_result.top20 = take(20);
    g_result.top100 = take(100);
    g_result.top200 = take(200);
    g_result.all = Spread(world.data.PoiLocations());
  }
  state.counters["top100_radius_km"] = g_result.top100.radius_km;
  state.counters["top200_radius_km"] = g_result.top200.radius_km;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("fig12/case_study", BM_CaseStudy)
      ->Iterations(1)
      ->Unit(benchmark::kSecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  auto print = [](const char* label, const SpreadStats& s) {
    std::printf("%-10s mean pairwise %8.1f km | mean radius %8.1f km | "
                "bbox [%.2f..%.2f] x [%.2f..%.2f]\n",
                label, s.mean_pairwise_km, s.radius_km, s.bounds.min_lat,
                s.bounds.max_lat, s.bounds.min_lon, s.bounds.max_lon);
  };
  std::printf("\n=== Figure 12: spatial spread of top-scored POIs for user "
              "%u (gowalla-like) ===\n",
              g_result.user);
  print("top-20", g_result.top20);
  print("top-100", g_result.top100);
  print("top-200", g_result.top200);
  print("all POIs", g_result.all);
  std::printf("shape check: top-20 clusters tighter than top-100/200, all "
              "tighter than the full POI cloud.\n");
  return 0;
}
