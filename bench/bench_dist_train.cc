// Scaling + recovery benchmark for the distributed training engine
// (src/dist/, DESIGN.md §11). Phase 1 sweeps world sizes W = 1/2/4 over
// the same streamed tensor — every worker generates exactly its row
// slice with GenerateStreamedSlice — and reports wall time and
// epochs/sec per fleet. Phase 2 re-runs W = 2 with shard checkpoints,
// SIGKILL-simulates rank 1 mid-run, and measures the recovery latency:
// the gap between the kill and the first epoch the resumed fleet
// completes (heartbeat detection + world reassembly + checkpoint replay).
//
// Human-readable table on stdout; TCSS_BENCH_JSON appends machine rows
// (bench "dist_train"). TCSS_BENCH_SCALE (default 1.0) scales the user
// count for quick smoke runs.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/env.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "data/synthetic.h"
#include "dist/coordinator.h"
#include "dist/partition.h"
#include "dist/worker.h"

namespace tcss {
namespace {

constexpr size_t kPois = 2'000;
constexpr size_t kBins = 12;
constexpr int kEpochs = 15;
constexpr int kKillEpoch = 8;  // between periodic snapshots (every 5)

StreamedTensorConfig TensorConfig() {
  StreamedTensorConfig cfg;
  cfg.seed = 17;
  // ~5M check-ins at scale 1: big enough that per-epoch gradient work
  // dwarfs the lockstep round trip, so the sweep measures scaling and
  // not protocol overhead.
  cfg.num_users = static_cast<size_t>(200'000 * bench::BenchScale());
  cfg.num_pois = kPois;
  cfg.num_bins = kBins;
  cfg.mean_checkins = 24.0;
  return cfg;
}

TcssConfig TrainConfig() {
  TcssConfig cfg;
  cfg.rank = 8;
  cfg.epochs = kEpochs;
  cfg.learning_rate = 0.05;
  cfg.lambda = 0.0;  // decomposability: no Hausdorff side information
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.init = InitMethod::kRandom;
  cfg.loss_mode = LossMode::kRewritten;
  cfg.temporal_smoothness = 0.05;
  cfg.num_threads = 1;
  cfg.seed = 13;
  return cfg;
}

struct FleetResult {
  bool ok = false;
  double wall_s = 0.0;
  double recovery_ms = 0.0;  ///< kill fleets only
  int epochs = 0;
  int recoveries = 0;
};

/// One full fleet run: coordinator on this thread, W worker threads each
/// generating its own tensor slice. kill_rank1 simulates a SIGKILL of
/// rank 1 at epoch kKillEpoch and restarts it (a fresh DistWorker over
/// the same checkpoint directory), timing kill -> first resumed epoch.
FleetResult RunFleet(int num_workers, bool kill_rank1,
                     const std::string& ckpt_dir) {
  const StreamedTensorConfig tcfg = TensorConfig();
  const TcssConfig cfg = TrainConfig();
  const RowPartition part(tcfg.num_users, num_workers);
  const std::string sock = StrFormat("/tmp/tcssbd-%d-w%d%s.sock", getpid(),
                                     num_workers, kill_rank1 ? "k" : "");

  std::atomic<bool> kill{false};
  Stopwatch clock;
  std::atomic<double> kill_at_s{-1.0};
  std::atomic<double> resumed_at_s{-1.0};

  DistCoordinatorOptions copts;
  copts.num_workers = num_workers;
  copts.socket_path = sock;
  copts.checkpoint_every = 5;
  copts.heartbeat_timeout_ms = 1'000;
  copts.straggler_warn_ms = 10'000;
  copts.world_timeout_ms = 60'000;
  bool killed = false;  // callbacks re-fire after recovery: kill once
  copts.epoch_callback = [&](const EpochStats& s) {
    if (kill_rank1 && s.epoch == kKillEpoch && !killed) {
      killed = true;
      kill_at_s.store(clock.ElapsedSeconds());
      kill.store(true);
    } else if (killed && kill_at_s.load() >= 0.0 &&
               resumed_at_s.load() < 0.0) {
      resumed_at_s.store(clock.ElapsedSeconds());
    }
  };
  DistCoordinator coordinator(cfg, tcfg.num_users, kPois, kBins, copts);

  std::vector<std::thread> workers;
  std::atomic<bool> workers_ok{true};
  for (int r = 0; r < num_workers; ++r) {
    workers.emplace_back([&, r] {
      DistWorkerOptions wopts;
      wopts.rank = r;
      wopts.num_workers = num_workers;
      wopts.socket_path = sock;
      wopts.heartbeat_interval_ms = 50;
      wopts.checkpoint_dir = ckpt_dir;
      if (kill_rank1 && r == 1) wopts.abrupt_stop = &kill;
      for (int life = 0; life < 2; ++life) {
        auto slice = GenerateStreamedSlice(tcfg, part.Begin(r), part.End(r));
        if (!slice.ok()) {
          workers_ok.store(false);
          return;
        }
        DistWorker worker(cfg, tcfg.num_users, kPois, kBins,
                          slice.MoveValue(), wopts);
        Status st = worker.Run();
        if (st.ok()) return;
        // Only the killed rank restarts; real failures end the fleet.
        if (!(kill_rank1 && r == 1 && life == 0)) {
          workers_ok.store(false);
          return;
        }
        kill.store(false);
      }
    });
  }

  auto model = coordinator.Run();
  for (auto& t : workers) t.join();

  FleetResult out;
  out.ok = model.ok() && workers_ok.load();
  out.wall_s = clock.ElapsedSeconds();
  out.epochs = coordinator.stats().epochs;
  out.recoveries = coordinator.stats().recoveries;
  if (resumed_at_s.load() >= 0.0 && kill_at_s.load() >= 0.0) {
    out.recovery_ms = (resumed_at_s.load() - kill_at_s.load()) * 1e3;
  }
  if (!model.ok()) {
    std::fprintf(stderr, "coordinator (W=%d): %s\n", num_workers,
                 model.status().ToString().c_str());
  }
  return out;
}

}  // namespace
}  // namespace tcss

int main() {
  using namespace tcss;
  const StreamedTensorConfig tcfg = TensorConfig();
  const std::string dataset = StrFormat("streamed%zux%zux%zu",
                                        tcfg.num_users, kPois, kBins);
  bool all_ok = true;

  // Phase 1: world-size sweep, no faults, no checkpoints. Speedup is
  // bounded by host cores: on a 1-CPU box the fleets timeshare and the
  // sweep instead measures the engine's oversubscription overhead.
  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf("host cpus: %u (speedup ceiling)\n", cpus);
  bench::AppendBenchJson("dist_train", dataset, "host_cpus",
                         static_cast<double>(cpus));
  std::printf("%-6s %10s %12s %8s\n", "world", "wall_s", "epochs_per_s",
              "epochs");
  double w1_wall = 0.0;
  for (const int w : {1, 2, 4}) {
    FleetResult r = RunFleet(w, /*kill_rank1=*/false, /*ckpt_dir=*/"");
    all_ok = all_ok && r.ok;
    const double eps = r.wall_s > 0.0 ? r.epochs / r.wall_s : 0.0;
    if (w == 1) w1_wall = r.wall_s;
    std::printf("%-6d %10.2f %12.2f %8d%s\n", w, r.wall_s, eps, r.epochs,
                r.ok ? "" : "  FAILED");
    bench::AppendBenchJson("dist_train", dataset,
                           StrFormat("w%d_wall_s", w), r.wall_s);
    bench::AppendBenchJson("dist_train", dataset,
                           StrFormat("w%d_epochs_per_s", w), eps);
    if (w > 1 && r.wall_s > 0.0 && w1_wall > 0.0) {
      bench::AppendBenchJson("dist_train", dataset,
                             StrFormat("w%d_speedup", w),
                             w1_wall / r.wall_s);
    }
  }

  // Phase 2: W=2 with shard checkpoints; SIGKILL rank 1 at epoch 8.
  const std::string ckpt_dir =
      StrFormat("/tmp/tcssbd-%d-ckpt", getpid());
  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::create_directories(ckpt_dir);
  FleetResult kr = RunFleet(2, /*kill_rank1=*/true, ckpt_dir);
  all_ok = all_ok && kr.ok && kr.recoveries >= 1 && kr.recovery_ms > 0.0;
  std::printf(
      "kill+resume (W=2): wall %.2f s, recovery %.0f ms, %d recoveries%s\n",
      kr.wall_s, kr.recovery_ms, kr.recoveries, kr.ok ? "" : "  FAILED");
  bench::AppendBenchJson("dist_train", dataset, "kill_resume_wall_s",
                         kr.wall_s);
  bench::AppendBenchJson("dist_train", dataset, "kill_recovery_ms",
                         kr.recovery_ms);
  bench::AppendBenchJson("dist_train", dataset, "kill_recoveries",
                         kr.recoveries);
  std::filesystem::remove_all(ckpt_dir);
  return all_ok ? 0 : 2;
}
