# Empty dependencies file for core_loss_test.
# This may be replaced when dependencies are built.
