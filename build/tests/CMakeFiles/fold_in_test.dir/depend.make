# Empty dependencies file for fold_in_test.
# This may be replaced when dependencies are built.
