file(REMOVE_RECURSE
  "CMakeFiles/fold_in_test.dir/fold_in_test.cc.o"
  "CMakeFiles/fold_in_test.dir/fold_in_test.cc.o.d"
  "fold_in_test"
  "fold_in_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fold_in_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
