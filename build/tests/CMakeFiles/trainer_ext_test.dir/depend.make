# Empty dependencies file for trainer_ext_test.
# This may be replaced when dependencies are built.
