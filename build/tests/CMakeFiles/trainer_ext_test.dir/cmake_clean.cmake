file(REMOVE_RECURSE
  "CMakeFiles/trainer_ext_test.dir/trainer_ext_test.cc.o"
  "CMakeFiles/trainer_ext_test.dir/trainer_ext_test.cc.o.d"
  "trainer_ext_test"
  "trainer_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trainer_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
