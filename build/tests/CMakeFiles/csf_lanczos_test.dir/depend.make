# Empty dependencies file for csf_lanczos_test.
# This may be replaced when dependencies are built.
