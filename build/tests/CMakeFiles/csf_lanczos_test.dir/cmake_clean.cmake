file(REMOVE_RECURSE
  "CMakeFiles/csf_lanczos_test.dir/csf_lanczos_test.cc.o"
  "CMakeFiles/csf_lanczos_test.dir/csf_lanczos_test.cc.o.d"
  "csf_lanczos_test"
  "csf_lanczos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csf_lanczos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
