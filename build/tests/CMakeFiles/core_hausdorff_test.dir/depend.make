# Empty dependencies file for core_hausdorff_test.
# This may be replaced when dependencies are built.
