file(REMOVE_RECURSE
  "CMakeFiles/core_hausdorff_test.dir/core_hausdorff_test.cc.o"
  "CMakeFiles/core_hausdorff_test.dir/core_hausdorff_test.cc.o.d"
  "core_hausdorff_test"
  "core_hausdorff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hausdorff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
