file(REMOVE_RECURSE
  "CMakeFiles/neural_common_test.dir/neural_common_test.cc.o"
  "CMakeFiles/neural_common_test.dir/neural_common_test.cc.o.d"
  "neural_common_test"
  "neural_common_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
