# Empty dependencies file for neural_common_test.
# This may be replaced when dependencies are built.
