
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/csf_tensor.cc" "src/CMakeFiles/tcss_tensor.dir/tensor/csf_tensor.cc.o" "gcc" "src/CMakeFiles/tcss_tensor.dir/tensor/csf_tensor.cc.o.d"
  "/root/repo/src/tensor/dense_tensor.cc" "src/CMakeFiles/tcss_tensor.dir/tensor/dense_tensor.cc.o" "gcc" "src/CMakeFiles/tcss_tensor.dir/tensor/dense_tensor.cc.o.d"
  "/root/repo/src/tensor/gram_operator.cc" "src/CMakeFiles/tcss_tensor.dir/tensor/gram_operator.cc.o" "gcc" "src/CMakeFiles/tcss_tensor.dir/tensor/gram_operator.cc.o.d"
  "/root/repo/src/tensor/matricization.cc" "src/CMakeFiles/tcss_tensor.dir/tensor/matricization.cc.o" "gcc" "src/CMakeFiles/tcss_tensor.dir/tensor/matricization.cc.o.d"
  "/root/repo/src/tensor/mttkrp.cc" "src/CMakeFiles/tcss_tensor.dir/tensor/mttkrp.cc.o" "gcc" "src/CMakeFiles/tcss_tensor.dir/tensor/mttkrp.cc.o.d"
  "/root/repo/src/tensor/sparse_tensor.cc" "src/CMakeFiles/tcss_tensor.dir/tensor/sparse_tensor.cc.o" "gcc" "src/CMakeFiles/tcss_tensor.dir/tensor/sparse_tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcss_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
