file(REMOVE_RECURSE
  "CMakeFiles/tcss_tensor.dir/tensor/csf_tensor.cc.o"
  "CMakeFiles/tcss_tensor.dir/tensor/csf_tensor.cc.o.d"
  "CMakeFiles/tcss_tensor.dir/tensor/dense_tensor.cc.o"
  "CMakeFiles/tcss_tensor.dir/tensor/dense_tensor.cc.o.d"
  "CMakeFiles/tcss_tensor.dir/tensor/gram_operator.cc.o"
  "CMakeFiles/tcss_tensor.dir/tensor/gram_operator.cc.o.d"
  "CMakeFiles/tcss_tensor.dir/tensor/matricization.cc.o"
  "CMakeFiles/tcss_tensor.dir/tensor/matricization.cc.o.d"
  "CMakeFiles/tcss_tensor.dir/tensor/mttkrp.cc.o"
  "CMakeFiles/tcss_tensor.dir/tensor/mttkrp.cc.o.d"
  "CMakeFiles/tcss_tensor.dir/tensor/sparse_tensor.cc.o"
  "CMakeFiles/tcss_tensor.dir/tensor/sparse_tensor.cc.o.d"
  "libtcss_tensor.a"
  "libtcss_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcss_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
