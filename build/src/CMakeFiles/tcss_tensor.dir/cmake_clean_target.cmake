file(REMOVE_RECURSE
  "libtcss_tensor.a"
)
