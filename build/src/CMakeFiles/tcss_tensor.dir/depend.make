# Empty dependencies file for tcss_tensor.
# This may be replaced when dependencies are built.
