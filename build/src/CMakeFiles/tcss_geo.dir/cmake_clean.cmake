file(REMOVE_RECURSE
  "CMakeFiles/tcss_geo.dir/geo/geo_point.cc.o"
  "CMakeFiles/tcss_geo.dir/geo/geo_point.cc.o.d"
  "CMakeFiles/tcss_geo.dir/geo/haversine.cc.o"
  "CMakeFiles/tcss_geo.dir/geo/haversine.cc.o.d"
  "CMakeFiles/tcss_geo.dir/geo/location_entropy.cc.o"
  "CMakeFiles/tcss_geo.dir/geo/location_entropy.cc.o.d"
  "CMakeFiles/tcss_geo.dir/geo/spatial_grid.cc.o"
  "CMakeFiles/tcss_geo.dir/geo/spatial_grid.cc.o.d"
  "libtcss_geo.a"
  "libtcss_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcss_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
