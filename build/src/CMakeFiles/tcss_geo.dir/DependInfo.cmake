
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/geo_point.cc" "src/CMakeFiles/tcss_geo.dir/geo/geo_point.cc.o" "gcc" "src/CMakeFiles/tcss_geo.dir/geo/geo_point.cc.o.d"
  "/root/repo/src/geo/haversine.cc" "src/CMakeFiles/tcss_geo.dir/geo/haversine.cc.o" "gcc" "src/CMakeFiles/tcss_geo.dir/geo/haversine.cc.o.d"
  "/root/repo/src/geo/location_entropy.cc" "src/CMakeFiles/tcss_geo.dir/geo/location_entropy.cc.o" "gcc" "src/CMakeFiles/tcss_geo.dir/geo/location_entropy.cc.o.d"
  "/root/repo/src/geo/spatial_grid.cc" "src/CMakeFiles/tcss_geo.dir/geo/spatial_grid.cc.o" "gcc" "src/CMakeFiles/tcss_geo.dir/geo/spatial_grid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
