file(REMOVE_RECURSE
  "libtcss_geo.a"
)
