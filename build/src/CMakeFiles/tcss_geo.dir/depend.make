# Empty dependencies file for tcss_geo.
# This may be replaced when dependencies are built.
