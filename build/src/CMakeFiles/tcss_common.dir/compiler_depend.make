# Empty compiler generated dependencies file for tcss_common.
# This may be replaced when dependencies are built.
