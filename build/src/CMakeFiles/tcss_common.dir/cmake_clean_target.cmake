file(REMOVE_RECURSE
  "libtcss_common.a"
)
