file(REMOVE_RECURSE
  "CMakeFiles/tcss_common.dir/common/logging.cc.o"
  "CMakeFiles/tcss_common.dir/common/logging.cc.o.d"
  "CMakeFiles/tcss_common.dir/common/rng.cc.o"
  "CMakeFiles/tcss_common.dir/common/rng.cc.o.d"
  "CMakeFiles/tcss_common.dir/common/status.cc.o"
  "CMakeFiles/tcss_common.dir/common/status.cc.o.d"
  "CMakeFiles/tcss_common.dir/common/stopwatch.cc.o"
  "CMakeFiles/tcss_common.dir/common/stopwatch.cc.o.d"
  "CMakeFiles/tcss_common.dir/common/strings.cc.o"
  "CMakeFiles/tcss_common.dir/common/strings.cc.o.d"
  "libtcss_common.a"
  "libtcss_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcss_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
