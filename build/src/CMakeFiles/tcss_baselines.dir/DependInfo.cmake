
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/costco.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/costco.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/costco.cc.o.d"
  "/root/repo/src/baselines/cp_als.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/cp_als.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/cp_als.cc.o.d"
  "/root/repo/src/baselines/geomf.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/geomf.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/geomf.cc.o.d"
  "/root/repo/src/baselines/lfbca.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/lfbca.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/lfbca.cc.o.d"
  "/root/repo/src/baselines/mcco.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/mcco.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/mcco.cc.o.d"
  "/root/repo/src/baselines/ncf.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/ncf.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/ncf.cc.o.d"
  "/root/repo/src/baselines/ntm.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/ntm.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/ntm.cc.o.d"
  "/root/repo/src/baselines/p_tucker.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/p_tucker.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/p_tucker.cc.o.d"
  "/root/repo/src/baselines/popularity.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/popularity.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/popularity.cc.o.d"
  "/root/repo/src/baselines/pure_svd.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/pure_svd.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/pure_svd.cc.o.d"
  "/root/repo/src/baselines/recommender.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/recommender.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/recommender.cc.o.d"
  "/root/repo/src/baselines/stan.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/stan.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/stan.cc.o.d"
  "/root/repo/src/baselines/stgn.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/stgn.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/stgn.cc.o.d"
  "/root/repo/src/baselines/strnn.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/strnn.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/strnn.cc.o.d"
  "/root/repo/src/baselines/tucker_hooi.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/tucker_hooi.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/tucker_hooi.cc.o.d"
  "/root/repo/src/baselines/user_knn.cc" "src/CMakeFiles/tcss_baselines.dir/baselines/user_knn.cc.o" "gcc" "src/CMakeFiles/tcss_baselines.dir/baselines/user_knn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
