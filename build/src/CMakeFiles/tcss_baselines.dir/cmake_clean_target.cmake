file(REMOVE_RECURSE
  "libtcss_baselines.a"
)
