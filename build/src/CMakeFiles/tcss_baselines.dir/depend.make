# Empty dependencies file for tcss_baselines.
# This may be replaced when dependencies are built.
