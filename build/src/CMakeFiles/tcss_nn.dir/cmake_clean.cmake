file(REMOVE_RECURSE
  "CMakeFiles/tcss_nn.dir/nn/layers.cc.o"
  "CMakeFiles/tcss_nn.dir/nn/layers.cc.o.d"
  "CMakeFiles/tcss_nn.dir/nn/ops.cc.o"
  "CMakeFiles/tcss_nn.dir/nn/ops.cc.o.d"
  "CMakeFiles/tcss_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/tcss_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/tcss_nn.dir/nn/tape.cc.o"
  "CMakeFiles/tcss_nn.dir/nn/tape.cc.o.d"
  "libtcss_nn.a"
  "libtcss_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcss_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
