# Empty compiler generated dependencies file for tcss_nn.
# This may be replaced when dependencies are built.
