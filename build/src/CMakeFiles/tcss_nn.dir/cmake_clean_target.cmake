file(REMOVE_RECURSE
  "libtcss_nn.a"
)
