
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/personalized_pagerank.cc" "src/CMakeFiles/tcss_graph.dir/graph/personalized_pagerank.cc.o" "gcc" "src/CMakeFiles/tcss_graph.dir/graph/personalized_pagerank.cc.o.d"
  "/root/repo/src/graph/social_graph.cc" "src/CMakeFiles/tcss_graph.dir/graph/social_graph.cc.o" "gcc" "src/CMakeFiles/tcss_graph.dir/graph/social_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
