file(REMOVE_RECURSE
  "CMakeFiles/tcss_graph.dir/graph/personalized_pagerank.cc.o"
  "CMakeFiles/tcss_graph.dir/graph/personalized_pagerank.cc.o.d"
  "CMakeFiles/tcss_graph.dir/graph/social_graph.cc.o"
  "CMakeFiles/tcss_graph.dir/graph/social_graph.cc.o.d"
  "libtcss_graph.a"
  "libtcss_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcss_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
