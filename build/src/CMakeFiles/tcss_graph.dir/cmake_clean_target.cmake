file(REMOVE_RECURSE
  "libtcss_graph.a"
)
