# Empty dependencies file for tcss_graph.
# This may be replaced when dependencies are built.
