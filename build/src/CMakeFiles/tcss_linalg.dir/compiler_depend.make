# Empty compiler generated dependencies file for tcss_linalg.
# This may be replaced when dependencies are built.
