file(REMOVE_RECURSE
  "libtcss_linalg.a"
)
