file(REMOVE_RECURSE
  "CMakeFiles/tcss_linalg.dir/linalg/cholesky.cc.o"
  "CMakeFiles/tcss_linalg.dir/linalg/cholesky.cc.o.d"
  "CMakeFiles/tcss_linalg.dir/linalg/jacobi_eigen.cc.o"
  "CMakeFiles/tcss_linalg.dir/linalg/jacobi_eigen.cc.o.d"
  "CMakeFiles/tcss_linalg.dir/linalg/lanczos.cc.o"
  "CMakeFiles/tcss_linalg.dir/linalg/lanczos.cc.o.d"
  "CMakeFiles/tcss_linalg.dir/linalg/matrix.cc.o"
  "CMakeFiles/tcss_linalg.dir/linalg/matrix.cc.o.d"
  "CMakeFiles/tcss_linalg.dir/linalg/qr.cc.o"
  "CMakeFiles/tcss_linalg.dir/linalg/qr.cc.o.d"
  "CMakeFiles/tcss_linalg.dir/linalg/subspace_iteration.cc.o"
  "CMakeFiles/tcss_linalg.dir/linalg/subspace_iteration.cc.o.d"
  "CMakeFiles/tcss_linalg.dir/linalg/svd.cc.o"
  "CMakeFiles/tcss_linalg.dir/linalg/svd.cc.o.d"
  "CMakeFiles/tcss_linalg.dir/linalg/vector_ops.cc.o"
  "CMakeFiles/tcss_linalg.dir/linalg/vector_ops.cc.o.d"
  "libtcss_linalg.a"
  "libtcss_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcss_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
