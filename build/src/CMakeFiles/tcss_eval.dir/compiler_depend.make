# Empty compiler generated dependencies file for tcss_eval.
# This may be replaced when dependencies are built.
