
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/tcss_eval.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/tcss_eval.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/ranking_protocol.cc" "src/CMakeFiles/tcss_eval.dir/eval/ranking_protocol.cc.o" "gcc" "src/CMakeFiles/tcss_eval.dir/eval/ranking_protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcss_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
