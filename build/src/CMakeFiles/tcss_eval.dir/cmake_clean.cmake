file(REMOVE_RECURSE
  "CMakeFiles/tcss_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/tcss_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/tcss_eval.dir/eval/ranking_protocol.cc.o"
  "CMakeFiles/tcss_eval.dir/eval/ranking_protocol.cc.o.d"
  "libtcss_eval.a"
  "libtcss_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcss_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
