file(REMOVE_RECURSE
  "libtcss_eval.a"
)
