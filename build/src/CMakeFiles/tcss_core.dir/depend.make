# Empty dependencies file for tcss_core.
# This may be replaced when dependencies are built.
