file(REMOVE_RECURSE
  "CMakeFiles/tcss_core.dir/core/fold_in.cc.o"
  "CMakeFiles/tcss_core.dir/core/fold_in.cc.o.d"
  "CMakeFiles/tcss_core.dir/core/hausdorff_loss.cc.o"
  "CMakeFiles/tcss_core.dir/core/hausdorff_loss.cc.o.d"
  "CMakeFiles/tcss_core.dir/core/model_io.cc.o"
  "CMakeFiles/tcss_core.dir/core/model_io.cc.o.d"
  "CMakeFiles/tcss_core.dir/core/recommend.cc.o"
  "CMakeFiles/tcss_core.dir/core/recommend.cc.o.d"
  "CMakeFiles/tcss_core.dir/core/spectral_init.cc.o"
  "CMakeFiles/tcss_core.dir/core/spectral_init.cc.o.d"
  "CMakeFiles/tcss_core.dir/core/tcss_config.cc.o"
  "CMakeFiles/tcss_core.dir/core/tcss_config.cc.o.d"
  "CMakeFiles/tcss_core.dir/core/tcss_model.cc.o"
  "CMakeFiles/tcss_core.dir/core/tcss_model.cc.o.d"
  "CMakeFiles/tcss_core.dir/core/trainer.cc.o"
  "CMakeFiles/tcss_core.dir/core/trainer.cc.o.d"
  "CMakeFiles/tcss_core.dir/core/whole_data_loss.cc.o"
  "CMakeFiles/tcss_core.dir/core/whole_data_loss.cc.o.d"
  "libtcss_core.a"
  "libtcss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcss_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
