file(REMOVE_RECURSE
  "libtcss_core.a"
)
