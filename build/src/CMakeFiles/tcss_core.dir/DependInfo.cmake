
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fold_in.cc" "src/CMakeFiles/tcss_core.dir/core/fold_in.cc.o" "gcc" "src/CMakeFiles/tcss_core.dir/core/fold_in.cc.o.d"
  "/root/repo/src/core/hausdorff_loss.cc" "src/CMakeFiles/tcss_core.dir/core/hausdorff_loss.cc.o" "gcc" "src/CMakeFiles/tcss_core.dir/core/hausdorff_loss.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/CMakeFiles/tcss_core.dir/core/model_io.cc.o" "gcc" "src/CMakeFiles/tcss_core.dir/core/model_io.cc.o.d"
  "/root/repo/src/core/recommend.cc" "src/CMakeFiles/tcss_core.dir/core/recommend.cc.o" "gcc" "src/CMakeFiles/tcss_core.dir/core/recommend.cc.o.d"
  "/root/repo/src/core/spectral_init.cc" "src/CMakeFiles/tcss_core.dir/core/spectral_init.cc.o" "gcc" "src/CMakeFiles/tcss_core.dir/core/spectral_init.cc.o.d"
  "/root/repo/src/core/tcss_config.cc" "src/CMakeFiles/tcss_core.dir/core/tcss_config.cc.o" "gcc" "src/CMakeFiles/tcss_core.dir/core/tcss_config.cc.o.d"
  "/root/repo/src/core/tcss_model.cc" "src/CMakeFiles/tcss_core.dir/core/tcss_model.cc.o" "gcc" "src/CMakeFiles/tcss_core.dir/core/tcss_model.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/CMakeFiles/tcss_core.dir/core/trainer.cc.o" "gcc" "src/CMakeFiles/tcss_core.dir/core/trainer.cc.o.d"
  "/root/repo/src/core/whole_data_loss.cc" "src/CMakeFiles/tcss_core.dir/core/whole_data_loss.cc.o" "gcc" "src/CMakeFiles/tcss_core.dir/core/whole_data_loss.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcss_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
