
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv_io.cc" "src/CMakeFiles/tcss_data.dir/data/csv_io.cc.o" "gcc" "src/CMakeFiles/tcss_data.dir/data/csv_io.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/tcss_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/tcss_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/split.cc" "src/CMakeFiles/tcss_data.dir/data/split.cc.o" "gcc" "src/CMakeFiles/tcss_data.dir/data/split.cc.o.d"
  "/root/repo/src/data/stats.cc" "src/CMakeFiles/tcss_data.dir/data/stats.cc.o" "gcc" "src/CMakeFiles/tcss_data.dir/data/stats.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/tcss_data.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/tcss_data.dir/data/synthetic.cc.o.d"
  "/root/repo/src/data/tensor_builder.cc" "src/CMakeFiles/tcss_data.dir/data/tensor_builder.cc.o" "gcc" "src/CMakeFiles/tcss_data.dir/data/tensor_builder.cc.o.d"
  "/root/repo/src/data/time_binning.cc" "src/CMakeFiles/tcss_data.dir/data/time_binning.cc.o" "gcc" "src/CMakeFiles/tcss_data.dir/data/time_binning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcss_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
