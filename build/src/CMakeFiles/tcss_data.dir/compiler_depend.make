# Empty compiler generated dependencies file for tcss_data.
# This may be replaced when dependencies are built.
