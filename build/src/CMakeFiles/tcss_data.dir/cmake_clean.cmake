file(REMOVE_RECURSE
  "CMakeFiles/tcss_data.dir/data/csv_io.cc.o"
  "CMakeFiles/tcss_data.dir/data/csv_io.cc.o.d"
  "CMakeFiles/tcss_data.dir/data/dataset.cc.o"
  "CMakeFiles/tcss_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/tcss_data.dir/data/split.cc.o"
  "CMakeFiles/tcss_data.dir/data/split.cc.o.d"
  "CMakeFiles/tcss_data.dir/data/stats.cc.o"
  "CMakeFiles/tcss_data.dir/data/stats.cc.o.d"
  "CMakeFiles/tcss_data.dir/data/synthetic.cc.o"
  "CMakeFiles/tcss_data.dir/data/synthetic.cc.o.d"
  "CMakeFiles/tcss_data.dir/data/tensor_builder.cc.o"
  "CMakeFiles/tcss_data.dir/data/tensor_builder.cc.o.d"
  "CMakeFiles/tcss_data.dir/data/time_binning.cc.o"
  "CMakeFiles/tcss_data.dir/data/time_binning.cc.o.d"
  "libtcss_data.a"
  "libtcss_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcss_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
