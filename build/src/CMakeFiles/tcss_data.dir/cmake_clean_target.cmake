file(REMOVE_RECURSE
  "libtcss_data.a"
)
