# Empty dependencies file for tcss.
# This may be replaced when dependencies are built.
