file(REMOVE_RECURSE
  "CMakeFiles/tcss.dir/tcss_cli.cpp.o"
  "CMakeFiles/tcss.dir/tcss_cli.cpp.o.d"
  "tcss"
  "tcss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
