file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_rank.dir/bench_fig10_rank.cc.o"
  "CMakeFiles/bench_fig10_rank.dir/bench_fig10_rank.cc.o.d"
  "bench_fig10_rank"
  "bench_fig10_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
