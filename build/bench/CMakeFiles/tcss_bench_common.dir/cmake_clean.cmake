file(REMOVE_RECURSE
  "CMakeFiles/tcss_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/tcss_bench_common.dir/bench_common.cc.o.d"
  "libtcss_bench_common.a"
  "libtcss_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcss_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
