file(REMOVE_RECURSE
  "libtcss_bench_common.a"
)
