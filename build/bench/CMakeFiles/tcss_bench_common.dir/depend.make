# Empty dependencies file for tcss_bench_common.
# This may be replaced when dependencies are built.
