file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_losscost.dir/bench_table4_losscost.cc.o"
  "CMakeFiles/bench_table4_losscost.dir/bench_table4_losscost.cc.o.d"
  "bench_table4_losscost"
  "bench_table4_losscost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_losscost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
