file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_7_timefactors.dir/bench_fig6_7_timefactors.cc.o"
  "CMakeFiles/bench_fig6_7_timefactors.dir/bench_fig6_7_timefactors.cc.o.d"
  "bench_fig6_7_timefactors"
  "bench_fig6_7_timefactors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_7_timefactors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
