# Empty dependencies file for bench_table3_weights.
# This may be replaced when dependencies are built.
