file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_weights.dir/bench_table3_weights.cc.o"
  "CMakeFiles/bench_table3_weights.dir/bench_table3_weights.cc.o.d"
  "bench_table3_weights"
  "bench_table3_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
