# Empty dependencies file for bench_fig13_timescores.
# This may be replaced when dependencies are built.
