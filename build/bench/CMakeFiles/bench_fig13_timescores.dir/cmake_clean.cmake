file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_timescores.dir/bench_fig13_timescores.cc.o"
  "CMakeFiles/bench_fig13_timescores.dir/bench_fig13_timescores.cc.o.d"
  "bench_fig13_timescores"
  "bench_fig13_timescores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_timescores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
