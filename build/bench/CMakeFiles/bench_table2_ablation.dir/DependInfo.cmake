
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_ablation.cc" "bench/CMakeFiles/bench_table2_ablation.dir/bench_table2_ablation.cc.o" "gcc" "bench/CMakeFiles/bench_table2_ablation.dir/bench_table2_ablation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/tcss_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
