# Empty dependencies file for bench_fig12_casestudy.
# This may be replaced when dependencies are built.
