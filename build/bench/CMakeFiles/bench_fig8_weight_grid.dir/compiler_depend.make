# Empty compiler generated dependencies file for bench_fig8_weight_grid.
# This may be replaced when dependencies are built.
