# Empty dependencies file for bench_kernel_mttkrp.
# This may be replaced when dependencies are built.
