file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_mttkrp.dir/bench_kernel_mttkrp.cc.o"
  "CMakeFiles/bench_kernel_mttkrp.dir/bench_kernel_mttkrp.cc.o.d"
  "bench_kernel_mttkrp"
  "bench_kernel_mttkrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_mttkrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
