# Empty dependencies file for seasonality_explorer.
# This may be replaced when dependencies are built.
