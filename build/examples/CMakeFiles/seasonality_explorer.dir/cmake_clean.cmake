file(REMOVE_RECURSE
  "CMakeFiles/seasonality_explorer.dir/seasonality_explorer.cpp.o"
  "CMakeFiles/seasonality_explorer.dir/seasonality_explorer.cpp.o.d"
  "seasonality_explorer"
  "seasonality_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seasonality_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
