file(REMOVE_RECURSE
  "CMakeFiles/social_planner.dir/social_planner.cpp.o"
  "CMakeFiles/social_planner.dir/social_planner.cpp.o.d"
  "social_planner"
  "social_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
