# Empty dependencies file for social_planner.
# This may be replaced when dependencies are built.
