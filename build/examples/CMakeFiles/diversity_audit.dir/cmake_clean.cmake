file(REMOVE_RECURSE
  "CMakeFiles/diversity_audit.dir/diversity_audit.cpp.o"
  "CMakeFiles/diversity_audit.dir/diversity_audit.cpp.o.d"
  "diversity_audit"
  "diversity_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversity_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
