# Empty compiler generated dependencies file for diversity_audit.
# This may be replaced when dependencies are built.
