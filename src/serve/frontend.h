#ifndef TCSS_SERVE_FRONTEND_H_
#define TCSS_SERVE_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "core/recommend.h"
#include "serve/request.h"

namespace tcss {

/// Wire protocol of the serving front-end (`tcss serve --listen`).
///
/// Every message is one length-prefixed, CRC-checked frame:
///
///   magic      4 bytes   "TQRQ" (request) / "TQRS" (response)
///   id         8 bytes   little-endian u64, chosen by the client and
///                        echoed verbatim in the response; lets pipelined
///                        clients correlate out-of-order completions
///   len        4 bytes   little-endian u32 payload length
///   payload    len bytes
///   crc        4 bytes   little-endian CRC-32 over id||payload
///
/// The payload is text: requests use the ParseRequestLine grammar
/// ("topk <user> <time_bin> [k=N] [new] [deadline_ms=X] [cand=...]
/// [within_km=KM,LAT,LON]"), responses the WireResponse grammar
/// below. The CRC covers the id too, so a bit flip anywhere past the
/// magic is detected; a flipped magic or an absurd length is rejected
/// before any allocation. A byte stream that produced a malformed frame
/// cannot be resynchronized, so the server answers once with an error
/// frame and closes the connection.
inline constexpr uint32_t kRequestMagic = 0x51525154u;   // "TQRQ" LE
inline constexpr uint32_t kResponseMagic = 0x53525154u;  // "TQRS" LE
inline constexpr size_t kFrameHeaderSize = 16;           // magic+id+len
inline constexpr size_t kFrameTrailerSize = 4;           // crc
inline constexpr size_t kMaxFramePayload = 1u << 20;

/// One decoded frame (either direction).
struct Frame {
  uint64_t id = 0;
  std::string payload;
};

/// Serializes a frame under the given magic.
std::string EncodeFrame(uint32_t magic, const Frame& frame);

inline std::string EncodeRequestFrame(const Frame& f) {
  return EncodeFrame(kRequestMagic, f);
}
inline std::string EncodeResponseFrame(const Frame& f) {
  return EncodeFrame(kResponseMagic, f);
}

/// Attempts to decode one frame from the front of `buf`.
///   ok(true)   — a full frame was decoded; `*consumed` bytes were used
///                (any remainder is the start of the next frame).
///   ok(false)  — `buf` is a consistent prefix; read more bytes.
///   error      — malformed: wrong magic, length beyond `max_payload`,
///                or CRC mismatch. The stream cannot be resynchronized.
///                When the 16-byte header itself validated (only the
///                length/payload/CRC were bad), `out->id` carries the
///                header's id so an error response can echo it.
Result<bool> DecodeFrame(uint32_t magic, std::string_view buf, Frame* out,
                         size_t* consumed,
                         size_t max_payload = kMaxFramePayload);

/// Incremental frame reader over a Conn. Buffers partial frames across
/// reads, so pipelined clients (many frames per segment) and slow clients
/// (one frame over many segments) both decode correctly.
class FrameReader {
 public:
  enum class Event { kFrame, kEof, kStopped };

  /// Blocks until one full frame arrives (ok(kFrame)), the peer closes
  /// cleanly between frames (kEof), or `*stop` becomes true (kStopped,
  /// checked every `tick_ms`). Errors: malformed frame, EOF inside a
  /// frame (truncated), or a transport failure.
  Result<Event> Next(Conn* conn, uint32_t magic, Frame* out,
                     const std::atomic<bool>* stop, int tick_ms);

  /// Bytes buffered beyond the last returned frame.
  size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Why the server refused to answer a request with a result.
enum class ShedReason {
  kQueueFull = 0,   ///< bounded queue at capacity (backpressure)
  kDeadline = 1,    ///< admission control: predicted time > budget
  kExpired = 2,     ///< deadline passed while queued
  kDraining = 3,    ///< graceful shutdown in progress
  kOverloaded = 4,  ///< connection limit reached
};
inline constexpr int kNumShedReasons = 5;

/// "queue_full" / "deadline" / "expired" / "draining" / "overloaded".
const char* ShedReasonName(ShedReason r);

/// Typed response payload. Exactly one of these four shapes goes back
/// for every accepted request:
///   ok       — `ok tier=<t> latency_ms=<ms> recs=<j:score,...>`
///   ingested — `ingested seq=<n>` (ack of one accepted ingest verb; seq
///              is the engine's monotone accept counter, so a client can
///              reconcile its ledger against the server's)
///   shed     — `shed reason=<r>`
///   error    — `error <message>`
struct WireResponse {
  enum class Kind { kOk, kShed, kError, kIngested };
  Kind kind = Kind::kError;
  ServeTier tier = ServeTier::kPopularity;  ///< kOk only
  double latency_ms = 0.0;                  ///< kOk only
  ShedReason shed = ShedReason::kQueueFull; ///< kShed only
  std::string message;                      ///< kError only
  std::vector<Recommendation> recs;         ///< kOk only
  uint64_t seq = 0;                         ///< kIngested only
};

/// Encodes the payload, guaranteed to fit kMaxFramePayload so the server
/// never emits a frame the client-side DecodeFrame rejects: an ok
/// response drops its lowest-ranked recs once the cap is reached (a
/// k=kMaxRequestK answer over a large catalogue would otherwise encode to
/// several MiB), and an error message is clamped.
std::string EncodeResponsePayload(const WireResponse& resp);

/// Strict parse of the response grammar; rejects anything else so tests
/// and clients can assert "well-formed response" mechanically.
Result<WireResponse> ParseResponsePayload(std::string_view payload);

}  // namespace tcss

#endif  // TCSS_SERVE_FRONTEND_H_
