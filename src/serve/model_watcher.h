#ifndef TCSS_SERVE_MODEL_WATCHER_H_
#define TCSS_SERVE_MODEL_WATCHER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/env.h"
#include "core/factor_model.h"
#include "obs/metrics.h"

namespace tcss {

/// Watches a model file and hot-reloads it for the serving path.
///
/// Every Poll() reads the file through the Env abstraction (so
/// FaultInjectionEnv can fail or tear the read), fully validates the bytes
/// *off the serving path* — CRC footer, structural bounds, finite entries,
/// shape against the serving dataset — and only then publishes the new
/// model by swapping a shared_ptr under a mutex. In-flight queries hold
/// their own shared_ptr copy, so a swap never invalidates a query that is
/// mid-scoring, and a corrupt or half-written file is rejected, counted,
/// and the previous model stays live.
///
/// State machine (drives ServeHealth):
///
///   (no model) --valid file--> LIVE --reject--> STALE --valid--> LIVE
///       ^                        |                 |
///       +------file deleted------+-----------------+
///
/// Deleting the file is treated as an explicit operator action ("unserve
/// this model") and unloads it; a *corrupt* file is treated as an accident
/// and the last good model keeps serving.
class ModelWatcher {
 public:
  struct Options {
    Env* env = nullptr;    ///< defaults to Env::Default()
    size_t num_users = 0;  ///< serving dataset shape, for validation
    size_t num_pois = 0;
    size_t num_bins = 0;
    /// Registry for the serve.reload.* counters; null means the
    /// process-global registry.
    obs::MetricRegistry* metrics = nullptr;
  };

  ModelWatcher(std::string path, const Options& opts);

  /// One reload check. Cheap when the bytes are unchanged (CRC + size
  /// compare against the live or last-rejected content); a repeated poll
  /// over the same bad file neither re-validates nor re-counts it.
  enum class PollResult { kUnchanged, kReloaded, kRejected, kMissing };
  PollResult Poll();

  /// The live model; null before the first successful load or after the
  /// file was deleted. Callers keep the returned shared_ptr for the
  /// duration of a query — the watcher may swap underneath them.
  std::shared_ptr<const FactorModel> current() const;

  /// True when the file's current content (or absence) does not match the
  /// live model — i.e. the last poll rejected a reload.
  bool stale() const { return stale_; }

  /// Bumped on every successful swap; lets per-model caches (fold-in
  /// embeddings) invalidate themselves.
  uint64_t generation() const { return generation_; }

  uint64_t reload_successes() const { return successes_; }
  uint64_t reload_rejects() const { return rejects_; }

  /// Status of the most recent rejected/missing poll; OK after a success.
  const Status& last_error() const { return last_error_; }

  const std::string& path() const { return path_; }

 private:
  PollResult Reject(uint32_t crc, size_t size, Status why);

  const std::string path_;
  Env* env_;
  const size_t num_users_, num_pois_, num_bins_;

  mutable std::mutex mu_;  ///< guards current_ only; stats are single-writer
  std::shared_ptr<const FactorModel> current_;

  bool stale_ = false;
  uint64_t generation_ = 0;
  uint64_t successes_ = 0;
  uint64_t rejects_ = 0;
  Status last_error_;

  // Content fingerprints to make polls idempotent.
  bool has_live_ = false;
  uint32_t live_crc_ = 0;
  size_t live_size_ = 0;
  bool has_rejected_ = false;
  uint32_t rejected_crc_ = 0;
  size_t rejected_size_ = 0;

  // Registry mirrors of the per-watcher stats (a repeated poll over the
  // same outcome counts once, like the fields above — except kMissing and
  // kUnchanged, which count every poll: they describe poll traffic, not
  // distinct reload attempts).
  obs::Counter* reload_success_counter_;
  obs::Counter* reload_reject_counter_;
  obs::Counter* reload_unchanged_counter_;
  obs::Counter* reload_missing_counter_;
};

}  // namespace tcss

#endif  // TCSS_SERVE_MODEL_WATCHER_H_
