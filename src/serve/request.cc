#include "serve/request.h"

#include <cmath>
#include <limits>

#include "common/strings.h"
#include "data/csv_io.h"

namespace tcss {
namespace {

bool ParseU32(std::string_view s, uint32_t* out) {
  size_t v = 0;
  if (!ParseIndex(s, &v) || v > std::numeric_limits<uint32_t>::max()) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

}  // namespace

const char* ServeTierName(ServeTier t) {
  switch (t) {
    case ServeTier::kModel:
      return "model";
    case ServeTier::kFoldIn:
      return "fold_in";
    case ServeTier::kPopularity:
      return "popularity";
  }
  return "unknown";
}

const char* ServeHealthName(ServeHealth h) {
  switch (h) {
    case ServeHealth::kHealthy:
      return "healthy";
    case ServeHealth::kDegraded:
      return "degraded";
    case ServeHealth::kFallback:
      return "fallback";
  }
  return "unknown";
}

Result<ServeRequest> ParseRequestLine(std::string_view line) {
  std::vector<std::string> tokens;
  for (const auto& t : Split(std::string(Trim(line)), ' ')) {
    if (!Trim(t).empty()) tokens.emplace_back(Trim(t));
  }
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  if (tokens[0] == "ingest") {
    // ingest <user> <poi> <timestamp> — one streamed check-in, validated
    // exactly like a CSV check-in row (exact integer parse, calendar
    // bounds) so the wire path can never smuggle in what the loader
    // rejects.
    if (tokens.size() != 4) {
      return Status::InvalidArgument(
          "ingest needs exactly <user> <poi> <timestamp>");
    }
    ServeRequest req;
    req.verb = ServeVerb::kIngest;
    if (!ParseU32(tokens[1], &req.user)) {
      return Status::InvalidArgument("bad user id '" + tokens[1] + "'");
    }
    if (!ParseU32(tokens[2], &req.poi)) {
      return Status::InvalidArgument("bad poi id '" + tokens[2] + "'");
    }
    if (!ParseInt64(tokens[3], &req.timestamp) ||
        req.timestamp < kMinCheckinTimestamp ||
        req.timestamp > kMaxCheckinTimestamp) {
      return Status::InvalidArgument("bad timestamp '" + tokens[3] + "'");
    }
    return req;
  }
  if (tokens[0] != "topk") {
    return Status::InvalidArgument("unknown directive '" + tokens[0] + "'");
  }
  if (tokens.size() < 3) {
    return Status::InvalidArgument(
        "topk needs at least <user> <time_bin>");
  }
  ServeRequest req;
  if (!ParseU32(tokens[1], &req.user)) {
    return Status::InvalidArgument("bad user id '" + tokens[1] + "'");
  }
  if (!ParseU32(tokens[2], &req.time_bin)) {
    return Status::InvalidArgument("bad time bin '" + tokens[2] + "'");
  }
  for (size_t i = 3; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok == "new") {
      req.exclude_visited = true;
    } else if (tok.rfind("k=", 0) == 0) {
      size_t k = 0;
      if (!ParseIndex(tok.substr(2), &k) || k > kMaxRequestK) {
        return Status::InvalidArgument("bad k '" + tok + "'");
      }
      req.k = k;
    } else if (tok.rfind("deadline_ms=", 0) == 0) {
      double d = 0;
      if (!ParseDouble(tok.substr(12), &d) || !std::isfinite(d) || d < 0) {
        return Status::InvalidArgument("bad deadline '" + tok + "'");
      }
      req.deadline_ms = d;
    } else if (tok.rfind("within_km=", 0) == 0) {
      const auto parts = Split(tok.substr(10), ',');
      double km = 0, lat = 0, lon = 0;
      if (parts.size() != 3 || !ParseDouble(parts[0], &km) ||
          !ParseDouble(parts[1], &lat) || !ParseDouble(parts[2], &lon) ||
          !std::isfinite(km) || km <= 0.0 || km > kMaxRequestWithinKm ||
          !std::isfinite(lat) || !std::isfinite(lon) ||
          !IsValid(GeoPoint{lat, lon})) {
        return Status::InvalidArgument("bad geo fence '" + tok + "'");
      }
      req.within_km = km;
      req.center = {lat, lon};
    } else if (tok.rfind("cand=", 0) == 0) {
      for (const auto& c : Split(tok.substr(5), ',')) {
        uint32_t j = 0;
        if (!ParseU32(c, &j)) {
          return Status::InvalidArgument("bad candidate '" + c + "'");
        }
        if (req.candidates.size() >= kMaxRequestCandidates) {
          return Status::InvalidArgument("too many candidates");
        }
        req.candidates.push_back(j);
      }
    } else {
      return Status::InvalidArgument("unknown option '" + tok + "'");
    }
  }
  return req;
}

}  // namespace tcss
