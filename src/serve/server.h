#ifndef TCSS_SERVE_SERVER_H_
#define TCSS_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "serve/frontend.h"
#include "serve/recommend_service.h"

namespace tcss {

/// Tuning knobs of the serving front-end. The defaults favor never
/// falling over: every queue is bounded, every wait has a timeout, and
/// overload turns into explicit SHED responses instead of latency.
struct ServerOptions {
  /// Worker threads for batch scoring (resizes the global deterministic
  /// ThreadPool); 0 keeps the pool as-is.
  int num_workers = 0;
  /// Bounded request queue between connection readers and the dispatcher.
  /// A full queue sheds (backpressure) — it never grows.
  size_t queue_capacity = 256;
  /// Requests scored per batch pass (one gemm scores the whole batch).
  size_t max_batch = 32;
  /// Concurrent connections; over the limit, accepts are answered with a
  /// shed frame and closed.
  size_t max_connections = 64;
  /// Granularity at which blocked reads/accepts re-check the stop flag.
  int idle_tick_ms = 20;
  /// Slow-client guard: a response write that cannot progress within this
  /// budget drops the connection instead of stalling the dispatcher.
  int write_timeout_ms = 2000;
  /// Deadline applied to requests that do not carry their own
  /// (deadline_ms=0 on the wire); 0 = no implicit deadline.
  double default_deadline_ms = 0.0;
  /// Hot-reload poll cadence: check the model file every N batches
  /// (0 = only the initial Init() poll).
  int poll_every_batches = 0;
  /// EWMA smoothing for the admission predictors (batch latency, batch
  /// fill); mirrors RecommendService::Options::latency_ewma_alpha.
  double ewma_alpha = 0.2;
  /// Streaming ingest handler for the `ingest` wire/text verb. Invoked on
  /// the dispatcher thread only — the same single-mutator discipline as
  /// BatchTopK, so the handler may touch serving state (the incremental
  /// fold-in layer) without locking. Returns the engine's monotone accept
  /// sequence number (echoed as `ingested seq=<n>`) or an error, sent
  /// back verbatim as an error frame. Null: every ingest request is
  /// answered with an error response.
  std::function<Result<uint64_t>(const ServeRequest&)> ingest_handler;
  /// Transport + filesystem source; null = Env::Default().
  /// FaultInjectionEnv here puts faults on the wire.
  Env* env = nullptr;
  /// Registry for serve.shed / serve.queue_depth / serve.batch_size et
  /// al.; null = the process-global registry.
  obs::MetricRegistry* metrics = nullptr;
};

/// Counters published by the server; all monotonically increasing, safe
/// to read while the server runs. The serving invariant in numbers:
/// frames_received == responses_ok + responses_ingested + responses_error
/// + shed_total() once the server has drained.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  ///< over max_connections
  uint64_t frames_received = 0;       ///< accepted (well-formed) requests
  uint64_t bad_frames = 0;            ///< torn/garbage/CRC-failed streams
  uint64_t responses_ok = 0;          ///< result or degraded result
  uint64_t responses_ingested = 0;    ///< acknowledged ingest verbs
  uint64_t responses_error = 0;       ///< e.g. unparseable request payload
  uint64_t sheds[kNumShedReasons] = {0, 0, 0, 0, 0};
  uint64_t batches = 0;               ///< batch passes dispatched
  uint64_t write_failures = 0;        ///< response writes to dead clients

  uint64_t shed_total() const {
    uint64_t s = 0;
    for (int r = 0; r < kNumShedReasons; ++r) s += sheds[r];
    return s;
  }

  std::string ToString() const;
};

/// Concurrent, overload-safe front-end over one RecommendService.
///
/// Threads: an acceptor (owns the listener), one reader per connection
/// (frame decode, request parse, admission control), and a dispatcher
/// that drains the bounded queue in batches through
/// RecommendService::BatchTopK — the only thread that touches the
/// service's mutable state, so the service itself needs no locking.
///
/// Admission control: each request's effective deadline is compared
/// against predicted completion time
///
///     predicted = queue_depth / batch_fill * batch_ms   (queue wait)
///               + tier_ewma(planned tier)               (service time)
///
/// where batch_ms/batch_fill are EWMAs the dispatcher publishes after
/// every batch and tier_ewma comes from the service's per-tier latency
/// EWMA. A request predicted to miss its deadline is shed immediately
/// with an explicit response — rejecting in microseconds what would
/// otherwise time out in milliseconds. Requests whose deadline expires
/// while queued are shed at dequeue; survivors carry their *remaining*
/// budget into the service, whose EWMA check can still degrade them to a
/// cheaper tier mid-flight.
///
/// Graceful drain: RequestStop() (async-signal-safe to trigger via a
/// flag; see `tcss serve --listen`) stops the acceptor, lets readers
/// finish their current frame, then the dispatcher finishes or sheds
/// everything still queued — every accepted request gets exactly one
/// response before Wait() returns.
class Server {
 public:
  /// `service` must be Init()ed and outlive the server. The server is the
  /// sole caller of the service's mutating methods once started.
  Server(RecommendService* service, std::string listen_path,
         const ServerOptions& opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the acceptor + dispatcher.
  Status Start();

  /// Initiates drain; returns immediately. Safe from any thread.
  void RequestStop();

  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  /// Joins everything after a RequestStop(), completing the drain. Every
  /// accepted request has been answered (ok, error, or shed) when this
  /// returns.
  Status Wait();

  /// RequestStop() + Wait().
  Status Stop();

  ServerStats stats() const;

  const std::string& address() const { return listen_path_; }

 private:
  /// One accepted connection. Reader thread and dispatcher both write
  /// response frames, serialized by write_mu; inflight tracks queued
  /// requests so reaping never closes a connection the dispatcher still
  /// owes a response.
  struct Session {
    std::unique_ptr<Conn> conn;
    std::mutex write_mu;
    std::thread reader;
    std::atomic<bool> done{false};
    std::atomic<bool> dead{false};  ///< write failed; skip further writes
    std::atomic<int> inflight{0};
  };

  /// A queued, admitted request.
  struct Pending {
    std::shared_ptr<Session> session;
    uint64_t frame_id = 0;
    ServeRequest req;
    double deadline_ms = 0.0;  ///< effective; 0 = none
    Stopwatch age;             ///< started at admission
  };

  void AcceptorLoop();
  void ReaderLoop(const std::shared_ptr<Session>& session);
  void DispatcherLoop();

  /// Serialized, timeout-guarded response write; counts failures and
  /// marks the session dead so later writes are skipped cheaply.
  void WriteResponse(Session* session, uint64_t frame_id,
                     const WireResponse& resp);
  void Shed(Session* session, uint64_t frame_id, ShedReason reason);

  /// Admission decision for one parsed request; returns true when
  /// enqueued, false when shed (the shed response has been written).
  bool Admit(const std::shared_ptr<Session>& session, uint64_t frame_id,
             const ServeRequest& req);

  void ReapSessions(bool all);

  RecommendService* service_;
  const std::string listen_path_;
  const ServerOptions opts_;
  Env* env_;
  obs::MetricRegistry* metrics_;

  std::unique_ptr<Listener> listener_;
  std::thread acceptor_;
  std::thread dispatcher_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> readers_done_{false};
  bool started_ = false;
  bool joined_ = false;

  std::mutex sessions_mu_;
  std::list<std::shared_ptr<Session>> sessions_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;

  // Admission predictors, published by the dispatcher and read by every
  // connection thread.
  std::atomic<size_t> queue_depth_{0};
  std::atomic<double> batch_ms_ewma_{0.0};
  std::atomic<double> batch_fill_ewma_{1.0};
  std::atomic<double> tier_predict_ms_[kNumServeTiers] = {};

  // Stats (atomics — read concurrently by tests/CLI).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> bad_frames_{0};
  std::atomic<uint64_t> responses_ok_{0};
  std::atomic<uint64_t> responses_ingested_{0};
  std::atomic<uint64_t> responses_error_{0};
  std::atomic<uint64_t> sheds_[kNumShedReasons] = {};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> write_failures_{0};

  // Telemetry handles (serve.* metrics), resolved once in Start().
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* shed_reason_counters_[kNumShedReasons] = {};
  obs::Counter* connections_counter_ = nullptr;
  obs::Counter* bad_frames_counter_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;
  obs::Histogram* batch_ms_hist_ = nullptr;
  obs::Histogram* queue_wait_ms_hist_ = nullptr;
};

}  // namespace tcss

#endif  // TCSS_SERVE_SERVER_H_
