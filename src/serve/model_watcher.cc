#include "serve/model_watcher.h"

#include <utility>

#include "common/crc32.h"
#include "core/model_io.h"

namespace tcss {

ModelWatcher::ModelWatcher(std::string path, const Options& opts)
    : path_(std::move(path)),
      env_(opts.env != nullptr ? opts.env : Env::Default()),
      num_users_(opts.num_users),
      num_pois_(opts.num_pois),
      num_bins_(opts.num_bins) {
  obs::MetricRegistry* reg =
      opts.metrics != nullptr ? opts.metrics : obs::MetricRegistry::Global();
  reload_success_counter_ = reg->GetCounter("serve.reload.successes");
  reload_reject_counter_ = reg->GetCounter("serve.reload.rejects");
  reload_unchanged_counter_ = reg->GetCounter("serve.reload.unchanged");
  reload_missing_counter_ = reg->GetCounter("serve.reload.missing");
}

std::shared_ptr<const FactorModel> ModelWatcher::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

ModelWatcher::PollResult ModelWatcher::Reject(uint32_t crc, size_t size,
                                              Status why) {
  ++rejects_;
  reload_reject_counter_->Add(1);
  has_rejected_ = true;
  rejected_crc_ = crc;
  rejected_size_ = size;
  stale_ = true;
  last_error_ = std::move(why);
  return PollResult::kRejected;
}

ModelWatcher::PollResult ModelWatcher::Poll() {
  if (!env_->FileExists(path_)) {
    // Explicit unserve: drop the model so the service degrades openly
    // instead of silently serving a file an operator removed.
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_.reset();
    }
    has_live_ = false;
    has_rejected_ = false;
    stale_ = false;
    last_error_ = Status::NotFound("model file missing: " + path_);
    reload_missing_counter_->Add(1);
    return PollResult::kMissing;
  }

  auto read = env_->ReadFileToString(path_);
  if (!read.ok()) {
    // A failed read has no bytes to fingerprint; count it every time.
    ++rejects_;
    reload_reject_counter_->Add(1);
    stale_ = true;
    last_error_ = read.status();
    return PollResult::kRejected;
  }
  const std::string& bytes = read.value();
  const uint32_t crc = Crc32(bytes);

  if (has_live_ && crc == live_crc_ && bytes.size() == live_size_) {
    stale_ = false;
    reload_unchanged_counter_->Add(1);
    return PollResult::kUnchanged;
  }
  if (has_rejected_ && crc == rejected_crc_ &&
      bytes.size() == rejected_size_) {
    return PollResult::kRejected;  // same bad bytes; already counted
  }

  auto model = ParseFactorModelBytes(bytes);
  if (!model.ok()) {
    return Reject(crc, bytes.size(), model.status());
  }
  Status shape =
      ValidateModelShape(model.value(), num_users_, num_pois_, num_bins_);
  if (!shape.ok()) {
    return Reject(crc, bytes.size(), std::move(shape));
  }

  auto fresh = std::make_shared<const FactorModel>(model.MoveValue());
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(fresh);
  }
  has_live_ = true;
  live_crc_ = crc;
  live_size_ = bytes.size();
  has_rejected_ = false;
  stale_ = false;
  ++successes_;
  reload_success_counter_->Add(1);
  ++generation_;
  last_error_ = Status::OK();
  return PollResult::kReloaded;
}

}  // namespace tcss
