#include "serve/frontend.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/crc32.h"
#include "common/strings.h"

namespace tcss {
namespace {

void PutU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

/// CRC over id || payload, the integrity span of a frame.
uint32_t FrameCrc(uint64_t id, std::string_view payload) {
  char idb[8];
  for (int i = 0; i < 8; ++i) {
    idb[i] = static_cast<char>(id >> (8 * i));
  }
  uint32_t crc = Crc32(idb, sizeof(idb));
  return Crc32(payload.data(), payload.size(), crc);
}

}  // namespace

std::string EncodeFrame(uint32_t magic, const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderSize + frame.payload.size() + kFrameTrailerSize);
  PutU32(&out, magic);
  PutU64(&out, frame.id);
  PutU32(&out, static_cast<uint32_t>(frame.payload.size()));
  out += frame.payload;
  PutU32(&out, FrameCrc(frame.id, frame.payload));
  return out;
}

Result<bool> DecodeFrame(uint32_t magic, std::string_view buf, Frame* out,
                         size_t* consumed, size_t max_payload) {
  *consumed = 0;
  if (buf.size() < 4) {
    // Even a partial magic must match, so garbage is rejected at the
    // first byte instead of after a timeout.
    for (size_t i = 0; i < buf.size(); ++i) {
      if (static_cast<unsigned char>(buf[i]) !=
          static_cast<unsigned char>(magic >> (8 * i))) {
        return Status::InvalidArgument("bad frame magic");
      }
    }
    return false;
  }
  if (GetU32(buf.data()) != magic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (buf.size() < kFrameHeaderSize) return false;
  const uint64_t id = GetU64(buf.data() + 4);
  const uint32_t len = GetU32(buf.data() + 12);
  // The 16-byte header validated; surface its id even when the rest of
  // the frame is bad (absurd length, CRC mismatch), so the error response
  // can echo the request that triggered it and a pipelined client can
  // correlate the failure.
  out->id = id;
  if (len > max_payload) {
    return Status::InvalidArgument(
        StrFormat("frame payload length %u exceeds cap %zu",
                  static_cast<unsigned>(len), max_payload));
  }
  const size_t total = kFrameHeaderSize + len + kFrameTrailerSize;
  if (buf.size() < total) return false;
  const std::string_view payload = buf.substr(kFrameHeaderSize, len);
  const uint32_t want = GetU32(buf.data() + kFrameHeaderSize + len);
  if (want != FrameCrc(id, payload)) {
    return Status::InvalidArgument("frame CRC mismatch");
  }
  out->payload.assign(payload);
  *consumed = total;
  return true;
}

Result<FrameReader::Event> FrameReader::Next(Conn* conn, uint32_t magic,
                                             Frame* out,
                                             const std::atomic<bool>* stop,
                                             int tick_ms) {
  for (;;) {
    if (!buf_.empty()) {
      size_t consumed = 0;
      auto got = DecodeFrame(magic, buf_, out, &consumed);
      if (!got.ok()) return got.status();
      if (got.value()) {
        buf_.erase(0, consumed);
        return Event::kFrame;
      }
    }
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return Event::kStopped;
    }
    char chunk[4096];
    size_t n = 0;
    auto ev = conn->Read(chunk, sizeof(chunk), &n, tick_ms);
    if (!ev.ok()) return ev.status();
    switch (ev.value()) {
      case IoEvent::kData:
        buf_.append(chunk, n);
        break;
      case IoEvent::kEof:
        if (!buf_.empty()) {
          return Status::InvalidArgument("connection closed mid-frame");
        }
        return Event::kEof;
      case IoEvent::kTimeout:
        break;  // idle tick: loop re-checks the stop flag
    }
  }
}

const char* ShedReasonName(ShedReason r) {
  switch (r) {
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kDeadline:
      return "deadline";
    case ShedReason::kExpired:
      return "expired";
    case ShedReason::kDraining:
      return "draining";
    case ShedReason::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

std::string EncodeResponsePayload(const WireResponse& resp) {
  switch (resp.kind) {
    case WireResponse::Kind::kOk: {
      std::string s = StrFormat("ok tier=%s latency_ms=%.6f recs=",
                                ServeTierName(resp.tier), resp.latency_ms);
      // The server must never emit a frame its own protocol rejects:
      // kMaxRequestK recs at ~30 bytes each would overflow the 1 MiB
      // kMaxFramePayload that DecodeFrame enforces, so the lowest-ranked
      // tail is truncated once the payload would exceed the cap.
      for (size_t i = 0; i < resp.recs.size(); ++i) {
        const std::string rec =
            StrFormat("%u:%.17g", resp.recs[i].poi, resp.recs[i].score);
        const size_t sep = i > 0 ? 1 : 0;
        if (s.size() + sep + rec.size() > kMaxFramePayload) break;
        if (i > 0) s += ',';
        s += rec;
      }
      return s;
    }
    case WireResponse::Kind::kIngested:
      return StrFormat("ingested seq=%llu",
                       static_cast<unsigned long long>(resp.seq));
    case WireResponse::Kind::kShed:
      return StrFormat("shed reason=%s", ShedReasonName(resp.shed));
    case WireResponse::Kind::kError: {
      std::string s = "error ";
      // Clamped for the same reason as the recs above.
      s.append(resp.message, 0, kMaxFramePayload - s.size());
      return s;
    }
  }
  return "error internal";
}

Result<WireResponse> ParseResponsePayload(std::string_view payload) {
  WireResponse resp;
  const std::string text(payload);
  if (text.rfind("error ", 0) == 0) {
    resp.kind = WireResponse::Kind::kError;
    resp.message = text.substr(6);
    return resp;
  }
  if (text.rfind("ingested seq=", 0) == 0) {
    size_t seq = 0;
    if (!ParseIndex(text.substr(13), &seq)) {
      return Status::InvalidArgument("bad ingest seq '" + text + "'");
    }
    resp.kind = WireResponse::Kind::kIngested;
    resp.seq = static_cast<uint64_t>(seq);
    return resp;
  }
  if (text.rfind("shed reason=", 0) == 0) {
    const std::string reason = text.substr(12);
    for (int r = 0; r < kNumShedReasons; ++r) {
      if (reason == ShedReasonName(static_cast<ShedReason>(r))) {
        resp.kind = WireResponse::Kind::kShed;
        resp.shed = static_cast<ShedReason>(r);
        return resp;
      }
    }
    return Status::InvalidArgument("unknown shed reason '" + reason + "'");
  }
  // ok tier=<t> latency_ms=<ms> recs=<j:score,...>
  std::vector<std::string> tokens;
  for (const auto& t : Split(text, ' ')) {
    if (!Trim(t).empty()) tokens.emplace_back(Trim(t));
  }
  if (tokens.size() != 4 || tokens[0] != "ok" ||
      tokens[1].rfind("tier=", 0) != 0 ||
      tokens[2].rfind("latency_ms=", 0) != 0 ||
      tokens[3].rfind("recs=", 0) != 0) {
    return Status::InvalidArgument("malformed response payload");
  }
  resp.kind = WireResponse::Kind::kOk;
  const std::string tier = tokens[1].substr(5);
  bool tier_ok = false;
  for (int t = 0; t < kNumServeTiers; ++t) {
    if (tier == ServeTierName(static_cast<ServeTier>(t))) {
      resp.tier = static_cast<ServeTier>(t);
      tier_ok = true;
      break;
    }
  }
  if (!tier_ok) {
    return Status::InvalidArgument("unknown tier '" + tier + "'");
  }
  if (!ParseDouble(tokens[2].substr(11), &resp.latency_ms) ||
      !std::isfinite(resp.latency_ms) || resp.latency_ms < 0) {
    return Status::InvalidArgument("bad latency '" + tokens[2] + "'");
  }
  const std::string recs = tokens[3].substr(5);
  if (!recs.empty()) {
    for (const auto& pair : Split(recs, ',')) {
      const size_t colon = pair.find(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument("bad rec '" + pair + "'");
      }
      size_t poi = 0;
      double score = 0.0;
      if (!ParseIndex(pair.substr(0, colon), &poi) ||
          poi > std::numeric_limits<uint32_t>::max() ||
          !ParseDouble(pair.substr(colon + 1), &score) ||
          !std::isfinite(score)) {
        return Status::InvalidArgument("bad rec '" + pair + "'");
      }
      if (resp.recs.size() >= kMaxRequestK) {
        return Status::InvalidArgument("too many recs");
      }
      resp.recs.push_back({static_cast<uint32_t>(poi), score});
    }
  }
  return resp;
}

}  // namespace tcss
