#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "common/thread_pool.h"

namespace tcss {
namespace {

/// Write budget for the one shed frame sent to an over-limit connection.
/// That client is being dropped anyway, so the frame is best-effort: a
/// burst of rejected peers that never read must not stall the acceptor
/// for write_timeout_ms each, delaying accepts for legitimate clients.
constexpr int kRejectWriteTimeoutMs = 10;

}  // namespace

std::string ServerStats::ToString() const {
  std::string s = StrFormat(
      "conns=%llu rejected=%llu frames=%llu bad_frames=%llu ok=%llu "
      "ingested=%llu error=%llu shed=%llu batches=%llu write_failures=%llu",
      static_cast<unsigned long long>(connections_accepted),
      static_cast<unsigned long long>(connections_rejected),
      static_cast<unsigned long long>(frames_received),
      static_cast<unsigned long long>(bad_frames),
      static_cast<unsigned long long>(responses_ok),
      static_cast<unsigned long long>(responses_ingested),
      static_cast<unsigned long long>(responses_error),
      static_cast<unsigned long long>(shed_total()),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(write_failures));
  for (int r = 0; r < kNumShedReasons; ++r) {
    if (sheds[r] > 0) {
      s += StrFormat(" shed.%s=%llu", ShedReasonName(static_cast<ShedReason>(r)),
                     static_cast<unsigned long long>(sheds[r]));
    }
  }
  return s;
}

Server::Server(RecommendService* service, std::string listen_path,
               const ServerOptions& opts)
    : service_(service),
      listen_path_(std::move(listen_path)),
      opts_(opts),
      env_(opts.env != nullptr ? opts.env : Env::Default()),
      metrics_(opts.metrics != nullptr ? opts.metrics
                                       : obs::MetricRegistry::Global()) {}

Server::~Server() {
  if (started_ && !joined_) Stop();
}

Status Server::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  if (opts_.num_workers > 0) SetGlobalThreads(opts_.num_workers);

  shed_counter_ = metrics_->GetCounter("serve.shed");
  for (int r = 0; r < kNumShedReasons; ++r) {
    shed_reason_counters_[r] = metrics_->GetCounter(
        StrFormat("serve.shed.%s", ShedReasonName(static_cast<ShedReason>(r))));
  }
  connections_counter_ = metrics_->GetCounter("serve.connections");
  bad_frames_counter_ = metrics_->GetCounter("serve.frames.bad");
  queue_depth_gauge_ = metrics_->GetGauge("serve.queue_depth");
  batch_size_hist_ = metrics_->GetHistogram("serve.batch_size");
  batch_ms_hist_ = metrics_->GetHistogram("serve.batch_ms");
  queue_wait_ms_hist_ = metrics_->GetHistogram("serve.queue_wait_ms");

  // Seed the admission predictors from the service's EWMAs (warm restarts:
  // a server built over an already-exercised service predicts immediately).
  for (int t = 0; t < kNumServeTiers; ++t) {
    tier_predict_ms_[t].store(
        service_->TierLatencyEwmaMs(static_cast<ServeTier>(t)),
        std::memory_order_relaxed);
  }

  auto listener = env_->NewListener(listen_path_);
  if (!listener.ok()) return listener.status();
  listener_ = listener.MoveValue();

  started_ = true;
  acceptor_ = std::thread([this] { AcceptorLoop(); });
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  return Status::OK();
}

void Server::RequestStop() {
  stop_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
}

Status Server::Wait() {
  if (!started_) return Status::InvalidArgument("server not started");
  if (joined_) return Status::OK();
  // Drain choreography: stop the intake front to back. Once the acceptor
  // and every reader have exited, no new requests can appear, so the
  // dispatcher can finish the queue and exit; only then are connections
  // closed (the dispatcher writes its final responses through them).
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& s : sessions_) {
      if (s->reader.joinable()) s->reader.join();
    }
  }
  readers_done_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  ReapSessions(/*all=*/true);
  if (listener_ != nullptr) listener_->Close();
  joined_ = true;
  return Status::OK();
}

Status Server::Stop() {
  RequestStop();
  return Wait();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_rejected = connections_rejected_.load();
  s.frames_received = frames_received_.load();
  s.bad_frames = bad_frames_.load();
  s.responses_ok = responses_ok_.load();
  s.responses_ingested = responses_ingested_.load();
  s.responses_error = responses_error_.load();
  for (int r = 0; r < kNumShedReasons; ++r) s.sheds[r] = sheds_[r].load();
  s.batches = batches_.load();
  s.write_failures = write_failures_.load();
  return s;
}

void Server::AcceptorLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto accepted = listener_->Accept(opts_.idle_tick_ms);
    if (!accepted.ok()) break;  // listener gone; drain proceeds
    std::unique_ptr<Conn> conn = accepted.MoveValue();
    if (conn == nullptr) {
      ReapSessions(/*all=*/false);  // idle tick
      continue;
    }
    connections_counter_->Increment();
    size_t active = 0;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      active = sessions_.size();
    }
    if (active >= opts_.max_connections) {
      // Over the connection limit: answer with one explicit shed frame so
      // the client knows it was load, not a crash, then close.
      connections_rejected_.fetch_add(1);
      shed_counter_->Increment();
      shed_reason_counters_[static_cast<int>(ShedReason::kOverloaded)]
          ->Increment();
      WireResponse resp;
      resp.kind = WireResponse::Kind::kShed;
      resp.shed = ShedReason::kOverloaded;
      Status ignored =
          conn->Write(EncodeResponseFrame({0, EncodeResponsePayload(resp)}),
                      std::min(opts_.write_timeout_ms, kRejectWriteTimeoutMs));
      (void)ignored;
      conn->Close();
      continue;
    }
    connections_accepted_.fetch_add(1);
    auto session = std::make_shared<Session>();
    session->conn = std::move(conn);
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(session);
    }
    session->reader = std::thread([this, session] { ReaderLoop(session); });
    ReapSessions(/*all=*/false);
  }
}

void Server::ReaderLoop(const std::shared_ptr<Session>& session) {
  FrameReader reader;
  for (;;) {
    Frame frame;
    auto ev = reader.Next(session->conn.get(), kRequestMagic, &frame, &stop_,
                          opts_.idle_tick_ms);
    if (!ev.ok()) {
      // Malformed frame or transport fault: the stream cannot be
      // resynchronized. Answer once so a live client learns why, close.
      bad_frames_.fetch_add(1);
      bad_frames_counter_->Increment();
      WireResponse resp;
      resp.kind = WireResponse::Kind::kError;
      resp.message = ev.status().message();
      WriteResponse(session.get(), frame.id, resp);
      break;
    }
    if (ev.value() != FrameReader::Event::kFrame) break;  // EOF or stop
    frames_received_.fetch_add(1);
    auto req = ParseRequestLine(frame.payload);
    if (!req.ok()) {
      WireResponse resp;
      resp.kind = WireResponse::Kind::kError;
      resp.message = req.status().message();
      WriteResponse(session.get(), frame.id, resp);
      responses_error_.fetch_add(1);
      continue;  // frame was well-formed; the stream is still in sync
    }
    Admit(session, frame.id, req.value());
  }
  session->done.store(true, std::memory_order_release);
}

bool Server::Admit(const std::shared_ptr<Session>& session, uint64_t frame_id,
                   const ServeRequest& req) {
  if (stop_.load(std::memory_order_relaxed)) {
    Shed(session.get(), frame_id, ShedReason::kDraining);
    return false;
  }
  ServeRequest admitted = req;
  if (admitted.verb == ServeVerb::kIngest) {
    // Ingests skip deadline admission: they cost microseconds (one
    // validated append + a rank-1 fold-in update), so the tier-latency
    // predictor has nothing meaningful to say about them. Backpressure
    // still applies below — a full queue sheds ingests like any request.
    admitted.deadline_ms = 0.0;
  } else if (admitted.deadline_ms <= 0.0) {
    admitted.deadline_ms = opts_.default_deadline_ms;
  }
  if (admitted.deadline_ms > 0.0) {
    // Predict completion time as queue wait (queued requests over the
    // recent batch fill, times the recent batch latency) plus the planned
    // tier's recent service time. Predicted misses are shed now — in
    // microseconds — instead of timing out in the queue.
    const double batch_ms = batch_ms_ewma_.load(std::memory_order_relaxed);
    const double fill = std::max(
        1.0, batch_fill_ewma_.load(std::memory_order_relaxed));
    const double depth =
        static_cast<double>(queue_depth_.load(std::memory_order_relaxed));
    const ServeTier tier = service_->PlanTier(admitted);
    const double service_ms =
        tier_predict_ms_[static_cast<int>(tier)].load(
            std::memory_order_relaxed);
    const double predicted = depth / fill * batch_ms +
                             (service_ms > 0.0 ? service_ms : batch_ms);
    if (predicted > admitted.deadline_ms) {
      Shed(session.get(), frame_id, ShedReason::kDeadline);
      return false;
    }
  }
  bool enqueued = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() < opts_.queue_capacity) {
      Pending p;
      p.session = session;
      p.frame_id = frame_id;
      p.req = std::move(admitted);
      p.deadline_ms = p.req.deadline_ms;
      session->inflight.fetch_add(1, std::memory_order_acq_rel);
      queue_.push_back(std::move(p));
      queue_depth_.store(queue_.size(), std::memory_order_relaxed);
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
      enqueued = true;
    }
  }
  if (!enqueued) {
    // Queue full. The shed response is written outside queue_mu_: the
    // write can stall up to write_timeout_ms on a slow client, and
    // holding the lock that long would freeze the dispatcher and every
    // other reader — the exact overload this path exists to survive.
    Shed(session.get(), frame_id, ShedReason::kQueueFull);
    return false;
  }
  queue_cv_.notify_one();
  return true;
}

void Server::DispatcherLoop() {
  int batches_since_poll = 0;
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait_for(
          lock, std::chrono::milliseconds(opts_.idle_tick_ms), [this] {
            return !queue_.empty() || stop_.load(std::memory_order_relaxed);
          });
      if (queue_.empty()) {
        if (stop_.load(std::memory_order_relaxed) &&
            readers_done_.load(std::memory_order_acquire)) {
          break;  // drained: nothing queued and nothing can arrive
        }
        continue;
      }
      const size_t take = std::min(opts_.max_batch, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_.store(queue_.size(), std::memory_order_relaxed);
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }

    if (opts_.poll_every_batches > 0 &&
        ++batches_since_poll >= opts_.poll_every_batches) {
      batches_since_poll = 0;
      service_->PollModel();
    }

    // Shed requests whose deadline elapsed while queued; survivors carry
    // their remaining budget so the service can still degrade them.
    std::vector<size_t> live;
    std::vector<ServeRequest> reqs;
    live.reserve(batch.size());
    reqs.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      Pending& p = batch[i];
      if (p.req.verb == ServeVerb::kIngest) {
        // Ingest verbs run serially here, before this batch's scoring
        // pass — the dispatcher is the single mutator of serving state,
        // so the handler may update the incremental fold-in layer (and
        // trigger a rollover or refinement publish) without locks, and
        // queries batched behind an ingest already observe it.
        queue_wait_ms_hist_->Record(p.age.ElapsedMillis());
        WireResponse resp;
        if (opts_.ingest_handler != nullptr) {
          auto seq = opts_.ingest_handler(p.req);
          if (seq.ok()) {
            resp.kind = WireResponse::Kind::kIngested;
            resp.seq = seq.value();
            responses_ingested_.fetch_add(1);
          } else {
            resp.kind = WireResponse::Kind::kError;
            resp.message = seq.status().message();
            responses_error_.fetch_add(1);
          }
        } else {
          resp.kind = WireResponse::Kind::kError;
          resp.message = "ingest not enabled on this server";
          responses_error_.fetch_add(1);
        }
        WriteResponse(p.session.get(), p.frame_id, resp);
        p.session->inflight.fetch_sub(1, std::memory_order_acq_rel);
        p.session.reset();
        continue;
      }
      if (p.deadline_ms > 0.0) {
        const double waited = p.age.ElapsedMillis();
        queue_wait_ms_hist_->Record(waited);
        const double remaining = p.deadline_ms - waited;
        if (remaining <= 0.0) {
          Shed(p.session.get(), p.frame_id, ShedReason::kExpired);
          p.session->inflight.fetch_sub(1, std::memory_order_acq_rel);
          p.session.reset();
          continue;
        }
        p.req.deadline_ms = remaining;
      } else {
        queue_wait_ms_hist_->Record(p.age.ElapsedMillis());
      }
      live.push_back(i);
      reqs.push_back(p.req);
    }

    if (!reqs.empty()) {
      Stopwatch batch_clock;
      std::vector<RecommendService::Response> resps =
          service_->BatchTopK(reqs);
      const double batch_ms = batch_clock.ElapsedMillis();
      batches_.fetch_add(1);
      batch_size_hist_->Record(static_cast<double>(reqs.size()));
      batch_ms_hist_->Record(batch_ms);

      // Publish the admission predictors for the connection threads.
      const double a = opts_.ewma_alpha;
      const double old_ms = batch_ms_ewma_.load(std::memory_order_relaxed);
      batch_ms_ewma_.store(old_ms == 0.0 ? batch_ms
                                         : (1 - a) * old_ms + a * batch_ms,
                           std::memory_order_relaxed);
      const double old_fill =
          batch_fill_ewma_.load(std::memory_order_relaxed);
      batch_fill_ewma_.store(
          (1 - a) * old_fill + a * static_cast<double>(reqs.size()),
          std::memory_order_relaxed);
      for (int t = 0; t < kNumServeTiers; ++t) {
        tier_predict_ms_[t].store(
            service_->TierLatencyEwmaMs(static_cast<ServeTier>(t)),
            std::memory_order_relaxed);
      }

      for (size_t b = 0; b < live.size(); ++b) {
        Pending& p = batch[live[b]];
        WireResponse resp;
        resp.kind = WireResponse::Kind::kOk;
        resp.tier = resps[b].tier;
        resp.latency_ms = resps[b].latency_ms;
        resp.recs = std::move(resps[b].recs);
        WriteResponse(p.session.get(), p.frame_id, resp);
        responses_ok_.fetch_add(1);
        p.session->inflight.fetch_sub(1, std::memory_order_acq_rel);
        p.session.reset();
      }
    }
  }
}

void Server::WriteResponse(Session* session, uint64_t frame_id,
                           const WireResponse& resp) {
  if (session->dead.load(std::memory_order_relaxed)) {
    write_failures_.fetch_add(1);
    return;
  }
  const std::string frame =
      EncodeResponseFrame({frame_id, EncodeResponsePayload(resp)});
  std::lock_guard<std::mutex> lock(session->write_mu);
  Status st = session->conn->Write(frame, opts_.write_timeout_ms);
  if (!st.ok()) {
    // Slow or vanished client. Mark the session dead so the dispatcher
    // never stalls on it again; the reader will see EOF/error and exit.
    session->dead.store(true, std::memory_order_relaxed);
    write_failures_.fetch_add(1);
  }
}

void Server::Shed(Session* session, uint64_t frame_id, ShedReason reason) {
  sheds_[static_cast<int>(reason)].fetch_add(1);
  shed_counter_->Increment();
  shed_reason_counters_[static_cast<int>(reason)]->Increment();
  WireResponse resp;
  resp.kind = WireResponse::Kind::kShed;
  resp.shed = reason;
  WriteResponse(session, frame_id, resp);
}

void Server::ReapSessions(bool all) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    Session& s = **it;
    const bool reapable =
        all || (s.done.load(std::memory_order_acquire) &&
                s.inflight.load(std::memory_order_acquire) == 0);
    if (reapable) {
      if (s.reader.joinable()) s.reader.join();
      s.conn->Close();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace tcss
