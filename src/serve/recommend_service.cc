#include "serve/recommend_service.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "data/tensor_builder.h"

namespace tcss {
namespace {

/// Tier-0 adapter: scores through the hot-reloaded factors. Holds its own
/// shared_ptr so the model stays alive for the whole query even if the
/// watcher swaps mid-scoring.
class FactorTier : public Recommender {
 public:
  explicit FactorTier(std::shared_ptr<const FactorModel> m)
      : model_(std::move(m)) {}
  std::string name() const override { return "serve-model"; }
  Status Fit(const TrainContext&) override { return Status::OK(); }
  double Score(uint32_t i, uint32_t j, uint32_t k) const override {
    return model_->Predict(i, j, k);
  }

 private:
  std::shared_ptr<const FactorModel> model_;
};

/// Tier-1 adapter: scores one folded-in user embedding against the fixed
/// POI/time factors.
class FoldInTier : public Recommender {
 public:
  FoldInTier(std::shared_ptr<const FactorModel> m,
             const std::vector<double>* user)
      : model_(std::move(m)), user_(user) {}
  std::string name() const override { return "serve-fold-in"; }
  Status Fit(const TrainContext&) override { return Status::OK(); }
  double Score(uint32_t, uint32_t j, uint32_t k) const override {
    return FoldInScore(*model_, *user_, j, k);
  }

 private:
  std::shared_ptr<const FactorModel> model_;
  const std::vector<double>* user_;
};

}  // namespace

std::string ServiceStats::ToString() const {
  std::string s = StrFormat(
      "health=%s reloads=%llu rejects=%llu q_model=%llu q_fold_in=%llu "
      "q_popularity=%llu deadline_degrades=%llu invalid=%llu total=%llu "
      "cache_hit=%llu cache_miss=%llu p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f",
      ServeHealthName(health),
      static_cast<unsigned long long>(reload_successes),
      static_cast<unsigned long long>(reload_rejects),
      static_cast<unsigned long long>(queries_by_tier[0]),
      static_cast<unsigned long long>(queries_by_tier[1]),
      static_cast<unsigned long long>(queries_by_tier[2]),
      static_cast<unsigned long long>(deadline_degrades),
      static_cast<unsigned long long>(invalid_requests),
      static_cast<unsigned long long>(total_queries),
      static_cast<unsigned long long>(fold_in_cache_hits),
      static_cast<unsigned long long>(fold_in_cache_misses), p50_ms, p95_ms,
      p99_ms);
  for (int t = 0; t < kNumServeTiers; ++t) {
    if (queries_by_tier[t] == 0) continue;
    s += StrFormat(" %s[p50=%.3f p95=%.3f p99=%.3f]",
                   ServeTierName(static_cast<ServeTier>(t)), tier_p50_ms[t],
                   tier_p95_ms[t], tier_p99_ms[t]);
  }
  return s;
}

RecommendService::RecommendService(const Dataset* data,
                                   TimeGranularity granularity,
                                   ModelWatcher* watcher, const Options& opts)
    : data_(data), granularity_(granularity), watcher_(watcher),
      opts_(opts),
      metrics_(opts.metrics != nullptr ? opts.metrics
                                       : obs::MetricRegistry::Global()) {
  for (int t = 0; t < kNumServeTiers; ++t) {
    tier_latency_[t] = metrics_->GetHistogram(
        std::string("serve.latency_ms.") +
        ServeTierName(static_cast<ServeTier>(t)));
  }
  requests_counter_ = metrics_->GetCounter("serve.requests");
  invalid_counter_ = metrics_->GetCounter("serve.invalid_requests");
  degrade_counter_ = metrics_->GetCounter("serve.deadline_degrades");
  cache_hit_counter_ = metrics_->GetCounter("serve.fold_in.cache_hits");
  cache_miss_counter_ = metrics_->GetCounter("serve.fold_in.cache_misses");
}

Status RecommendService::Init() {
  if (data_ == nullptr) {
    return Status::InvalidArgument("RecommendService: null dataset");
  }
  if (data_->num_pois() == 0) {
    return Status::FailedPrecondition(
        "RecommendService: empty POI catalogue, nothing to rank");
  }
  num_bins_ = NumBins(granularity_);

  auto train = BuildCheckinTensor(*data_, granularity_);
  if (!train.ok()) return train.status();
  train_ = train.MoveValue();

  TCSS_RETURN_IF_ERROR(
      popularity_.Fit({data_, &train_, granularity_, /*seed=*/1}));

  // Per-user distinct (poi, time) cells — the fold-in observations.
  user_cells_.assign(data_->num_users(), {});
  for (const auto& e : train_.entries()) {
    if (e.i < user_cells_.size()) {
      user_cells_[e.i].push_back({e.i, e.j, e.k});
    }
  }

  initialized_ = true;
  if (watcher_ != nullptr) watcher_->Poll();
  return Status::OK();
}

void RecommendService::PollModel() {
  if (watcher_ != nullptr) watcher_->Poll();
}

ServeTier RecommendService::ChooseTier(
    const ServeRequest& req,
    const std::shared_ptr<const FactorModel>& model) {
  if (model != nullptr && req.user < model->u1.rows()) {
    return ServeTier::kModel;
  }
  if (model != nullptr && req.user < user_cells_.size() &&
      !user_cells_[req.user].empty()) {
    return ServeTier::kFoldIn;
  }
  return ServeTier::kPopularity;
}

RecommendService::Response RecommendService::TopK(const ServeRequest& req) {
  Response resp;
  if (!initialized_ || req.time_bin >= num_bins_) {
    // An out-of-range time bin would index past every tier's tables; an
    // empty answer is the only safe response to that input.
    ++invalid_requests_;
    invalid_counter_->Add(1);
    return resp;
  }
  Stopwatch sw;

  std::shared_ptr<const FactorModel> model =
      watcher_ != nullptr ? watcher_->current() : nullptr;
  ServeTier tier = ChooseTier(req, model);

  // Deadline budget: if this tier's recent latency already exceeds the
  // budget, answer from the cheap non-personalized tier instead of
  // predictably blowing the deadline.
  if (req.deadline_ms > 0.0 && tier != ServeTier::kPopularity &&
      tier_ewma_valid_[static_cast<int>(tier)] &&
      tier_ewma_ms_[static_cast<int>(tier)] > req.deadline_ms) {
    tier = ServeTier::kPopularity;
    ++deadline_degrades_;
    degrade_counter_->Add(1);
  }

  TopKOptions topts;
  topts.k = req.k;
  topts.exclude_visited = req.exclude_visited;
  topts.candidates = req.candidates;
  const size_t num_pois = data_->num_pois();

  if (tier == ServeTier::kFoldIn) {
    // Re-solve embeddings only when the model generation changed.
    if (watcher_->generation() != fold_in_generation_) {
      fold_in_cache_.clear();
      fold_in_generation_ = watcher_->generation();
    }
    auto it = fold_in_cache_.find(req.user);
    if (it == fold_in_cache_.end()) {
      ++fold_in_cache_misses_;
      cache_miss_counter_->Add(1);
      auto emb = FoldInUser(*model, user_cells_[req.user], opts_.fold_in);
      if (emb.ok()) {
        it = fold_in_cache_.emplace(req.user, emb.MoveValue()).first;
      }
    } else {
      ++fold_in_cache_hits_;
      cache_hit_counter_->Add(1);
    }
    if (it != fold_in_cache_.end()) {
      FoldInTier scorer(model, &it->second);
      resp.recs = TopKRecommendations(scorer, req.user, req.time_bin,
                                      num_pois, topts, &train_);
      resp.tier = ServeTier::kFoldIn;
    } else {
      tier = ServeTier::kPopularity;  // singular solve: degrade further
    }
  }
  if (tier == ServeTier::kModel) {
    FactorTier scorer(model);
    resp.recs = TopKRecommendations(scorer, req.user, req.time_bin,
                                    num_pois, topts, &train_);
    resp.tier = ServeTier::kModel;
  } else if (tier == ServeTier::kPopularity) {
    resp.recs = TopKRecommendations(popularity_, req.user, req.time_bin,
                                    num_pois, topts, &train_);
    resp.tier = ServeTier::kPopularity;
  }

  resp.latency_ms = sw.ElapsedMillis();
  RecordLatency(resp.tier, resp.latency_ms);
  return resp;
}

void RecommendService::RecordLatency(ServeTier tier, double ms) {
  const int t = static_cast<int>(tier);
  ++queries_by_tier_[t];
  ++total_queries_;
  // The EWMA stays the deadline-budget predictor (recency-weighted); the
  // histogram is the quantile source for Stats() and the JSON snapshot.
  if (tier_ewma_valid_[t]) {
    tier_ewma_ms_[t] = (1.0 - opts_.latency_ewma_alpha) * tier_ewma_ms_[t] +
                       opts_.latency_ewma_alpha * ms;
  } else {
    tier_ewma_ms_[t] = ms;
    tier_ewma_valid_[t] = true;
  }
  tier_latency_[t]->Record(ms);
  requests_counter_->Add(1);
}

ServeHealth RecommendService::health() const {
  if (!initialized_ || watcher_ == nullptr || watcher_->current() == nullptr) {
    return ServeHealth::kFallback;
  }
  return watcher_->stale() ? ServeHealth::kDegraded : ServeHealth::kHealthy;
}

ServiceStats RecommendService::Stats() const {
  ServiceStats s;
  s.health = health();
  if (watcher_ != nullptr) {
    s.reload_successes = watcher_->reload_successes();
    s.reload_rejects = watcher_->reload_rejects();
  }
  for (int t = 0; t < kNumServeTiers; ++t) {
    s.queries_by_tier[t] = queries_by_tier_[t];
  }
  s.deadline_degrades = deadline_degrades_;
  s.invalid_requests = invalid_requests_;
  s.total_queries = total_queries_;
  s.fold_in_cache_hits = fold_in_cache_hits_;
  s.fold_in_cache_misses = fold_in_cache_misses_;
  obs::HistogramSnapshot all;
  for (int t = 0; t < kNumServeTiers; ++t) {
    const obs::HistogramSnapshot snap = tier_latency_[t]->Snapshot();
    if (snap.count > 0) {
      s.tier_p50_ms[t] = snap.Quantile(0.50);
      s.tier_p95_ms[t] = snap.Quantile(0.95);
      s.tier_p99_ms[t] = snap.Quantile(0.99);
    }
    all.Merge(snap);
  }
  if (all.count > 0) {
    s.p50_ms = all.Quantile(0.50);
    s.p95_ms = all.Quantile(0.95);
    s.p99_ms = all.Quantile(0.99);
  }
  return s;
}

}  // namespace tcss
