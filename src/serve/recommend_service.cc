#include "serve/recommend_service.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "data/tensor_builder.h"

namespace tcss {
namespace {

/// Tier-0 adapter: scores through the hot-reloaded factors. Holds its own
/// shared_ptr so the model stays alive for the whole query even if the
/// watcher swaps mid-scoring.
class FactorTier : public Recommender {
 public:
  explicit FactorTier(std::shared_ptr<const FactorModel> m)
      : model_(std::move(m)) {}
  std::string name() const override { return "serve-model"; }
  Status Fit(const TrainContext&) override { return Status::OK(); }
  double Score(uint32_t i, uint32_t j, uint32_t k) const override {
    return model_->Predict(i, j, k);
  }

 private:
  std::shared_ptr<const FactorModel> model_;
};

/// Tier-1 adapter: scores one folded-in user embedding against the fixed
/// POI/time factors.
class FoldInTier : public Recommender {
 public:
  FoldInTier(std::shared_ptr<const FactorModel> m,
             const std::vector<double>* user)
      : model_(std::move(m)), user_(user) {}
  std::string name() const override { return "serve-fold-in"; }
  Status Fit(const TrainContext&) override { return Status::OK(); }
  double Score(uint32_t, uint32_t j, uint32_t k) const override {
    return FoldInScore(*model_, *user_, j, k);
  }

 private:
  std::shared_ptr<const FactorModel> model_;
  const std::vector<double>* user_;
};

/// Batch adapter: reads one column of the precomputed J x B score matrix
/// (one gemm scored the whole batch), so the top-k selection never
/// re-touches the factors.
class ColumnScorer : public Recommender {
 public:
  ColumnScorer(const Matrix* scores, size_t col)
      : scores_(scores), col_(col) {}
  std::string name() const override { return "serve-batch"; }
  Status Fit(const TrainContext&) override { return Status::OK(); }
  double Score(uint32_t, uint32_t j, uint32_t) const override {
    return (*scores_)(j, col_);
  }

 private:
  const Matrix* scores_;
  size_t col_;
};

/// A request's geo fence is either absent or a finite positive radius
/// under the cap with a valid centre — the service re-validates because
/// requests can arrive through the C++ API without passing the parser.
bool ValidGeoFence(const ServeRequest& req) {
  if (req.within_km == 0.0) return true;
  return std::isfinite(req.within_km) && req.within_km > 0.0 &&
         req.within_km <= kMaxRequestWithinKm && IsValid(req.center);
}

std::vector<uint32_t> IntersectSorted(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Fraction of the exact oracle's top-k the approximate list recovered.
double RecallAtK(const std::vector<Recommendation>& approx,
                 const std::vector<Recommendation>& exact) {
  if (exact.empty()) return 1.0;
  std::vector<uint32_t> ids;
  ids.reserve(approx.size());
  for (const auto& a : approx) ids.push_back(a.poi);
  std::sort(ids.begin(), ids.end());
  size_t hit = 0;
  for (const auto& e : exact) {
    if (std::binary_search(ids.begin(), ids.end(), e.poi)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

}  // namespace

std::string ServiceStats::ToString() const {
  std::string s = StrFormat(
      "health=%s reloads=%llu rejects=%llu q_model=%llu q_fold_in=%llu "
      "q_popularity=%llu deadline_degrades=%llu invalid=%llu total=%llu "
      "cache_hit=%llu cache_miss=%llu p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f",
      ServeHealthName(health),
      static_cast<unsigned long long>(reload_successes),
      static_cast<unsigned long long>(reload_rejects),
      static_cast<unsigned long long>(queries_by_tier[0]),
      static_cast<unsigned long long>(queries_by_tier[1]),
      static_cast<unsigned long long>(queries_by_tier[2]),
      static_cast<unsigned long long>(deadline_degrades),
      static_cast<unsigned long long>(invalid_requests),
      static_cast<unsigned long long>(total_queries),
      static_cast<unsigned long long>(fold_in_cache_hits),
      static_cast<unsigned long long>(fold_in_cache_misses), p50_ms, p95_ms,
      p99_ms);
  if (ann_served + ann_fallbacks + ann_rebuilds + geo_fenced > 0) {
    s += StrFormat(
        " ann_served=%llu ann_fallbacks=%llu ann_rebuilds=%llu "
        "ann_audits=%llu geo_fenced=%llu",
        static_cast<unsigned long long>(ann_served),
        static_cast<unsigned long long>(ann_fallbacks),
        static_cast<unsigned long long>(ann_rebuilds),
        static_cast<unsigned long long>(ann_audits),
        static_cast<unsigned long long>(geo_fenced));
  }
  for (int t = 0; t < kNumServeTiers; ++t) {
    if (queries_by_tier[t] == 0) continue;
    s += StrFormat(" %s[p50=%.3f p95=%.3f p99=%.3f]",
                   ServeTierName(static_cast<ServeTier>(t)), tier_p50_ms[t],
                   tier_p95_ms[t], tier_p99_ms[t]);
  }
  return s;
}

RecommendService::RecommendService(const Dataset* data,
                                   TimeGranularity granularity,
                                   ModelWatcher* watcher, const Options& opts)
    : data_(data), granularity_(granularity), watcher_(watcher),
      opts_(opts),
      metrics_(opts.metrics != nullptr ? opts.metrics
                                       : obs::MetricRegistry::Global()) {
  for (int t = 0; t < kNumServeTiers; ++t) {
    tier_latency_[t] = metrics_->GetHistogram(
        std::string("serve.latency_ms.") +
        ServeTierName(static_cast<ServeTier>(t)));
  }
  requests_counter_ = metrics_->GetCounter("serve.requests");
  invalid_counter_ = metrics_->GetCounter("serve.invalid_requests");
  degrade_counter_ = metrics_->GetCounter("serve.deadline_degrades");
  cache_hit_counter_ = metrics_->GetCounter("serve.fold_in.cache_hits");
  cache_miss_counter_ = metrics_->GetCounter("serve.fold_in.cache_misses");
  ann_candidates_hist_ = metrics_->GetHistogram("ann.candidates");
  ann_recall_hist_ = metrics_->GetHistogram("ann.recall_proxy");
  ann_served_counter_ = metrics_->GetCounter("ann.served");
  ann_fallback_counter_ = metrics_->GetCounter("ann.fallbacks");
  ann_rebuild_counter_ = metrics_->GetCounter("ann.rebuilds");
  geo_fenced_counter_ = metrics_->GetCounter("serve.geo_fenced");
}

Status RecommendService::Init() {
  if (data_ == nullptr) {
    return Status::InvalidArgument("RecommendService: null dataset");
  }
  if (data_->num_pois() == 0) {
    return Status::FailedPrecondition(
        "RecommendService: empty POI catalogue, nothing to rank");
  }
  num_bins_ = NumBins(granularity_);

  auto train = BuildCheckinTensor(*data_, granularity_);
  if (!train.ok()) return train.status();
  train_ = train.MoveValue();

  TCSS_RETURN_IF_ERROR(
      popularity_.Fit({data_, &train_, granularity_, /*seed=*/1}));

  // Per-user distinct (poi, time) cells — the fold-in observations.
  user_cells_.assign(data_->num_users(), {});
  for (const auto& e : train_.entries()) {
    if (e.i < user_cells_.size()) {
      user_cells_[e.i].push_back({e.i, e.j, e.k});
    }
  }
  // Streaming mode: the incremental solver starts from the same history
  // the batch path would use, in the same (tensor-entry) order — the
  // differential contract's replay order.
  if (opts_.incremental != nullptr) {
    for (uint32_t u = 0; u < user_cells_.size(); ++u) {
      if (!user_cells_[u].empty()) {
        opts_.incremental->Seed(u, user_cells_[u]);
      }
    }
  }

  // Geo fence index. The grid keeps a pointer into poi_locations_, which
  // lives (and stays unmoved) as long as the service.
  poi_locations_ = data_->PoiLocations();
  geo_grid_ = std::make_unique<SpatialGrid>(poi_locations_);

  initialized_ = true;
  if (watcher_ != nullptr) watcher_->Poll();
  return Status::OK();
}

void RecommendService::PollModel() {
  if (watcher_ != nullptr) watcher_->Poll();
}

ServeTier RecommendService::ChooseTier(
    const ServeRequest& req,
    const std::shared_ptr<const FactorModel>& model) const {
  if (model != nullptr && req.user < model->u1.rows()) {
    return ServeTier::kModel;
  }
  if (model != nullptr && req.user < user_cells_.size() &&
      (!user_cells_[req.user].empty() ||
       (opts_.incremental != nullptr &&
        opts_.incremental->HasObservations(req.user)))) {
    // A user with no training history but streamed check-ins (the
    // incremental branch) is servable by fold-in too — that is the whole
    // point of the streaming tier.
    return ServeTier::kFoldIn;
  }
  return ServeTier::kPopularity;
}

ServeTier RecommendService::PlanTier(const ServeRequest& req) const {
  if (!initialized_) return ServeTier::kPopularity;
  return ChooseTier(req,
                    watcher_ != nullptr ? watcher_->current() : nullptr);
}

double RecommendService::TierLatencyEwmaMs(ServeTier tier) const {
  const int t = static_cast<int>(tier);
  return tier_ewma_valid_[t] ? tier_ewma_ms_[t] : 0.0;
}

ServeTier RecommendService::ApplyDeadlineBudget(const ServeRequest& req,
                                                ServeTier tier) {
  // Deadline budget: if this tier's recent latency already exceeds the
  // budget, answer from the cheap non-personalized tier instead of
  // predictably blowing the deadline.
  if (req.deadline_ms > 0.0 && tier != ServeTier::kPopularity &&
      tier_ewma_valid_[static_cast<int>(tier)] &&
      tier_ewma_ms_[static_cast<int>(tier)] > req.deadline_ms) {
    tier = ServeTier::kPopularity;
    ++deadline_degrades_;
    degrade_counter_->Add(1);
  }
  return tier;
}

const std::vector<double>* RecommendService::FoldInEmbedding(
    uint32_t user, const std::shared_ptr<const FactorModel>& model) {
  if (opts_.incremental != nullptr) {
    // Streaming mode: the incremental solver owns the cache. Binding the
    // watcher's generation is what keys every piece of its derived state,
    // so a reload invalidates here exactly like the map-clear below.
    opts_.incremental->BindModel(model, watcher_->generation());
    const uint64_t solves_before = opts_.incremental->stats().solves;
    const std::vector<double>* emb = opts_.incremental->Embedding(user);
    if (opts_.incremental->stats().solves != solves_before) {
      ++fold_in_cache_misses_;
      cache_miss_counter_->Add(1);
    } else if (emb != nullptr) {
      ++fold_in_cache_hits_;
      cache_hit_counter_->Add(1);
    }
    return emb;
  }
  // Re-solve embeddings only when the model generation changed.
  if (watcher_->generation() != fold_in_generation_) {
    fold_in_cache_.clear();
    fold_in_generation_ = watcher_->generation();
  }
  auto it = fold_in_cache_.find(user);
  if (it == fold_in_cache_.end()) {
    ++fold_in_cache_misses_;
    cache_miss_counter_->Add(1);
    auto emb = FoldInUser(*model, user_cells_[user], opts_.fold_in);
    if (!emb.ok()) return nullptr;  // singular solve: degrade further
    it = fold_in_cache_.emplace(user, emb.MoveValue()).first;
  } else {
    ++fold_in_cache_hits_;
    cache_hit_counter_->Add(1);
  }
  return &it->second;
}

void RecommendService::EnsureAnnIndex(
    const std::shared_ptr<const FactorModel>& model) {
  if (!opts_.ann.enabled || model == nullptr) return;
  if (ann_model_.get() == model.get() && ann_index_ != nullptr) return;
  // A generation the index was not built from: rebuild before any
  // candidate query. Both members swap together on this (the serving)
  // thread, so no request ever pairs an old index with a new model.
  ann_index_ = std::make_unique<ann::LshIndex>(*model, opts_.ann.lsh,
                                               metrics_);
  ann_model_ = model;
  ++ann_rebuilds_;
  ann_rebuild_counter_->Add(1);
}

void RecommendService::PlanScore(
    const ServeRequest& req, ServeTier tier,
    const std::shared_ptr<const FactorModel>& model,
    const std::vector<double>* fold_emb, ScorePlan* plan) {
  plan->topts.k = req.k;
  plan->topts.exclude_visited = req.exclude_visited;

  // The exact restriction: explicit candidates ∩ geo fence. An empty
  // TopKOptions candidate list means "the whole catalogue", so a
  // restriction that matched nothing must short-circuit to an empty
  // answer instead of being passed through.
  bool restricted = false;
  std::vector<uint32_t> base;
  if (!req.candidates.empty()) {
    base = req.candidates;
    std::sort(base.begin(), base.end());
    base.erase(std::unique(base.begin(), base.end()), base.end());
    restricted = true;
  }
  if (req.within_km > 0.0 && geo_grid_ != nullptr) {
    std::vector<uint32_t> fence =
        geo_grid_->WithinRadius(req.center, req.within_km);
    base = restricted ? IntersectSorted(base, fence) : std::move(fence);
    restricted = true;
    ++geo_fenced_;
    geo_fenced_counter_->Add(1);
  }
  if (restricted && base.empty()) {
    plan->empty = true;
    return;
  }

  const bool factor_tier =
      tier == ServeTier::kModel || tier == ServeTier::kFoldIn;
  if (opts_.ann.enabled && factor_tier && model != nullptr &&
      (tier != ServeTier::kFoldIn || fold_emb != nullptr)) {
    EnsureAnnIndex(model);
    if (ann_index_ != nullptr && ann_index_->rank() == model->rank()) {
      // The hot-reload pairing invariant: the index in hand was built
      // from exactly the model this request scores through.
      TCSS_CHECK(ann_model_.get() == model.get());
      const size_t r = model->rank();
      const double* u1row = tier == ServeTier::kModel
                                ? model->u1.row(req.user)
                                : fold_emb->data();
      const double* u3row = model->u3.row(req.time_bin);
      std::vector<double> q(r);
      for (size_t t = 0; t < r; ++t) {
        q[t] = model->h[t] * u1row[t] * u3row[t];
      }
      std::vector<uint32_t> cands = ann_index_->Candidates(q.data(), r);
      if (restricted) cands = IntersectSorted(cands, base);
      // Too few candidates and the re-rank could starve the answer; fall
      // back to the exact restriction. A fence smaller than the floor is
      // fine — the union can never exceed the fence.
      size_t need = std::max(opts_.ann.lsh.min_candidates, req.k);
      if (restricted) need = std::min(need, base.size());
      if (!cands.empty() && cands.size() >= need) {
        ++ann_served_;
        ann_served_counter_->Add(1);
        ann_candidates_hist_->Record(static_cast<double>(cands.size()));
        if (opts_.ann.audit_every > 0 &&
            ++ann_tick_ % opts_.ann.audit_every == 0) {
          plan->audit = true;
          plan->exact_topts = plan->topts;
          plan->exact_topts.candidates = base;
          ++ann_audits_;
        }
        plan->ann = true;
        plan->topts.candidates = std::move(cands);
        return;
      }
      ++ann_fallbacks_;
      ann_fallback_counter_->Add(1);
    }
  }
  if (restricted) plan->topts.candidates = std::move(base);
}

RecommendService::Response RecommendService::TopK(const ServeRequest& req) {
  Response resp;
  if (!initialized_ || req.time_bin >= num_bins_ || !ValidGeoFence(req)) {
    // An out-of-range time bin would index past every tier's tables, and
    // a malformed geo fence has no meaningful answer; an empty response
    // is the only safe reply to either input.
    ++invalid_requests_;
    invalid_counter_->Add(1);
    return resp;
  }
  Stopwatch sw;

  std::shared_ptr<const FactorModel> model =
      watcher_ != nullptr ? watcher_->current() : nullptr;
  ServeTier tier = ApplyDeadlineBudget(req, ChooseTier(req, model));

  const std::vector<double>* emb = nullptr;
  if (tier == ServeTier::kFoldIn) {
    emb = FoldInEmbedding(req.user, model);
    if (emb == nullptr) tier = ServeTier::kPopularity;
  }
  ScorePlan plan;
  PlanScore(req, tier, model, emb, &plan);

  const size_t num_pois = data_->num_pois();
  resp.tier = tier;
  if (!plan.empty) {
    if (tier == ServeTier::kModel) {
      FactorTier scorer(model);
      resp.recs = TopKRecommendations(scorer, req.user, req.time_bin,
                                      num_pois, plan.topts, &train_);
      if (plan.audit) {
        ann_recall_hist_->Record(RecallAtK(
            resp.recs, TopKRecommendations(scorer, req.user, req.time_bin,
                                           num_pois, plan.exact_topts,
                                           &train_)));
      }
    } else if (tier == ServeTier::kFoldIn) {
      FoldInTier scorer(model, emb);
      resp.recs = TopKRecommendations(scorer, req.user, req.time_bin,
                                      num_pois, plan.topts, &train_);
      if (plan.audit) {
        ann_recall_hist_->Record(RecallAtK(
            resp.recs, TopKRecommendations(scorer, req.user, req.time_bin,
                                           num_pois, plan.exact_topts,
                                           &train_)));
      }
    } else {
      resp.recs = TopKRecommendations(popularity_, req.user, req.time_bin,
                                      num_pois, plan.topts, &train_);
    }
  }

  resp.latency_ms = sw.ElapsedMillis();
  RecordLatency(resp.tier, resp.latency_ms);
  return resp;
}

std::vector<RecommendService::Response> RecommendService::BatchTopK(
    const std::vector<ServeRequest>& reqs) {
  std::vector<Response> out(reqs.size());
  if (reqs.empty()) return out;
  Stopwatch sw;

  std::shared_ptr<const FactorModel> model =
      watcher_ != nullptr ? watcher_->current() : nullptr;

  struct Plan {
    bool valid = false;           ///< false: invalid request, empty answer
    bool factor_scored = false;   ///< participates in the batch gemm
    ServeTier tier = ServeTier::kPopularity;
    const std::vector<double>* fold_emb = nullptr;
    size_t q_row = 0;   ///< row in the stacked query matrix
    ScorePlan sp;       ///< candidate set / ANN / audit decision
    double recall = -1.0;  ///< audit result, recorded serially in phase 4
  };
  std::vector<Plan> plans(reqs.size());

  // Phase 1 — serial: validation, tier choice with deadline degradation,
  // fold-in cache fills, candidate planning (geo fence, ANN candidate
  // unions, index rebuilds). Every service-state mutation happens here,
  // on the one serving thread.
  size_t num_factor = 0;
  for (size_t b = 0; b < reqs.size(); ++b) {
    const ServeRequest& req = reqs[b];
    if (!initialized_ || req.time_bin >= num_bins_ || !ValidGeoFence(req)) {
      ++invalid_requests_;
      invalid_counter_->Add(1);
      continue;
    }
    Plan& plan = plans[b];
    plan.valid = true;
    ServeTier tier = ApplyDeadlineBudget(req, ChooseTier(req, model));
    if (tier == ServeTier::kFoldIn) {
      plan.fold_emb = FoldInEmbedding(req.user, model);
      if (plan.fold_emb == nullptr) tier = ServeTier::kPopularity;
    }
    plan.tier = tier;
    PlanScore(req, tier, model, plan.fold_emb, &plan.sp);
    // ANN requests skip the full-catalogue gemm: their candidate unions
    // are re-ranked directly against the factors in phase 3.
    if (!plan.sp.empty && !plan.sp.ann && tier != ServeTier::kPopularity) {
      plan.factor_scored = true;
      plan.q_row = num_factor++;
    }
  }

  // Phase 2 — one factor pass for the whole batch: stack the query
  // vectors q_t = h_t * U1[i,t] * U3[k,t] (fold-in users substitute their
  // solved embedding for the U1 row) and score them against every POI
  // with a single gemm. MatMulT row-shards over the deterministic pool,
  // so this is where the batch amortizes both factor loads and threads.
  Matrix scores;  // J x num_factor
  if (num_factor > 0) {
    const size_t r = model->rank();
    Matrix q(num_factor, r);
    for (size_t b = 0; b < reqs.size(); ++b) {
      if (!plans[b].factor_scored) continue;
      const double* u1row = plans[b].tier == ServeTier::kModel
                                ? model->u1.row(reqs[b].user)
                                : plans[b].fold_emb->data();
      const double* u3row = model->u3.row(reqs[b].time_bin);
      double* dst = q.row(plans[b].q_row);
      for (size_t t = 0; t < r; ++t) {
        dst[t] = model->h[t] * u1row[t] * u3row[t];
      }
    }
    scores = MatMulT(model->u2, q);
  }

  // Phase 3 — parallel top-k selection into disjoint slots. The shard
  // decomposition depends only on the batch size, never the worker
  // count, so a batch's answers are worker-count-invariant.
  const size_t num_pois = data_->num_pois();
  ParallelFor(reqs.size(), 1, [&](size_t begin, size_t end, size_t) {
    for (size_t b = begin; b < end; ++b) {
      if (!plans[b].valid) continue;
      out[b].tier = plans[b].tier;
      const ScorePlan& sp = plans[b].sp;
      if (sp.empty) continue;  // restriction matched nothing
      if (plans[b].factor_scored) {
        ColumnScorer scorer(&scores, plans[b].q_row);
        out[b].recs =
            TopKRecommendations(scorer, reqs[b].user, reqs[b].time_bin,
                                num_pois, sp.topts, &train_);
      } else if (sp.ann) {
        // Candidate re-rank against the factors this batch's index was
        // built from; audited requests also run the exact oracle here,
        // into their own plan slot (recorded serially in phase 4).
        if (plans[b].tier == ServeTier::kModel) {
          FactorTier scorer(model);
          out[b].recs =
              TopKRecommendations(scorer, reqs[b].user, reqs[b].time_bin,
                                  num_pois, sp.topts, &train_);
          if (sp.audit) {
            plans[b].recall = RecallAtK(
                out[b].recs,
                TopKRecommendations(scorer, reqs[b].user, reqs[b].time_bin,
                                    num_pois, sp.exact_topts, &train_));
          }
        } else {
          FoldInTier scorer(model, plans[b].fold_emb);
          out[b].recs =
              TopKRecommendations(scorer, reqs[b].user, reqs[b].time_bin,
                                  num_pois, sp.topts, &train_);
          if (sp.audit) {
            plans[b].recall = RecallAtK(
                out[b].recs,
                TopKRecommendations(scorer, reqs[b].user, reqs[b].time_bin,
                                    num_pois, sp.exact_topts, &train_));
          }
        }
      } else {
        out[b].recs =
            TopKRecommendations(popularity_, reqs[b].user, reqs[b].time_bin,
                                num_pois, sp.topts, &train_);
      }
    }
  });

  // Phase 4 — serial: latency accounting and audit recalls. Each request
  // is charged the whole batch pass — that is the latency its caller
  // observed, and what the admission EWMA must predict for the next
  // arrival.
  const double ms = sw.ElapsedMillis();
  for (size_t b = 0; b < reqs.size(); ++b) {
    if (!plans[b].valid) continue;
    out[b].latency_ms = ms;
    RecordLatency(plans[b].tier, ms);
    if (plans[b].recall >= 0.0) ann_recall_hist_->Record(plans[b].recall);
  }
  return out;
}

void RecommendService::RecordLatency(ServeTier tier, double ms) {
  const int t = static_cast<int>(tier);
  ++queries_by_tier_[t];
  ++total_queries_;
  // The EWMA stays the deadline-budget predictor (recency-weighted); the
  // histogram is the quantile source for Stats() and the JSON snapshot.
  if (tier_ewma_valid_[t]) {
    tier_ewma_ms_[t] = (1.0 - opts_.latency_ewma_alpha) * tier_ewma_ms_[t] +
                       opts_.latency_ewma_alpha * ms;
  } else {
    tier_ewma_ms_[t] = ms;
    tier_ewma_valid_[t] = true;
  }
  tier_latency_[t]->Record(ms);
  requests_counter_->Add(1);
}

ServeHealth RecommendService::health() const {
  if (!initialized_ || watcher_ == nullptr || watcher_->current() == nullptr) {
    return ServeHealth::kFallback;
  }
  return watcher_->stale() ? ServeHealth::kDegraded : ServeHealth::kHealthy;
}

ServiceStats RecommendService::Stats() const {
  ServiceStats s;
  s.health = health();
  if (watcher_ != nullptr) {
    s.reload_successes = watcher_->reload_successes();
    s.reload_rejects = watcher_->reload_rejects();
  }
  for (int t = 0; t < kNumServeTiers; ++t) {
    s.queries_by_tier[t] = queries_by_tier_[t];
  }
  s.deadline_degrades = deadline_degrades_;
  s.invalid_requests = invalid_requests_;
  s.total_queries = total_queries_;
  s.fold_in_cache_hits = fold_in_cache_hits_;
  s.fold_in_cache_misses = fold_in_cache_misses_;
  s.ann_served = ann_served_;
  s.ann_fallbacks = ann_fallbacks_;
  s.ann_rebuilds = ann_rebuilds_;
  s.ann_audits = ann_audits_;
  s.geo_fenced = geo_fenced_;
  obs::HistogramSnapshot all;
  for (int t = 0; t < kNumServeTiers; ++t) {
    const obs::HistogramSnapshot snap = tier_latency_[t]->Snapshot();
    if (snap.count > 0) {
      s.tier_p50_ms[t] = snap.Quantile(0.50);
      s.tier_p95_ms[t] = snap.Quantile(0.95);
      s.tier_p99_ms[t] = snap.Quantile(0.99);
    }
    all.Merge(snap);
  }
  if (all.count > 0) {
    s.p50_ms = all.Quantile(0.50);
    s.p95_ms = all.Quantile(0.95);
    s.p99_ms = all.Quantile(0.99);
  }
  return s;
}

}  // namespace tcss
