#ifndef TCSS_SERVE_REQUEST_H_
#define TCSS_SERVE_REQUEST_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "geo/geo_point.h"

namespace tcss {

/// Which tier of the fallback chain produced an answer.
enum class ServeTier {
  kModel = 0,       ///< full TCSS factors (users covered by the model)
  kFoldIn = 1,      ///< ridge fold-in for users the model was not trained on
  kPopularity = 2,  ///< non-personalized last resort
};
inline constexpr int kNumServeTiers = 3;

/// "model" / "fold_in" / "popularity".
const char* ServeTierName(ServeTier t);

/// Serving health, derived from the reload state machine:
///   Healthy  — a validated model is live and matches the file on disk.
///   Degraded — a model is live but stale: the most recent reload attempt
///              was rejected (corrupt / torn / unreadable file), so the
///              previous model keeps serving.
///   Fallback — no valid model at all; every query degrades to popularity.
enum class ServeHealth { kHealthy, kDegraded, kFallback };

/// "healthy" / "degraded" / "fallback".
const char* ServeHealthName(ServeHealth h);

/// What a request line asks the server to do: rank POIs (topk) or append
/// one check-in to the streaming delta path (ingest).
enum class ServeVerb { kTopK = 0, kIngest = 1 };

/// One request against the service. All fields arrive from untrusted
/// input (a request file or, eventually, the network) and are re-validated
/// by the service: an out-of-range user degrades to popularity, an
/// out-of-range time bin yields an empty answer, out-of-range candidate
/// ids are dropped, and an ingest whose ids fall outside the serving
/// dataset is rejected with an error response.
struct ServeRequest {
  ServeVerb verb = ServeVerb::kTopK;
  uint32_t user = 0;
  uint32_t time_bin = 0;
  /// Ingest fields (verb == kIngest): the check-in being appended.
  uint32_t poi = 0;
  int64_t timestamp = 0;
  size_t k = 10;
  bool exclude_visited = false;
  /// Per-request latency budget in milliseconds; 0 = unlimited. When the
  /// chosen tier's recent latency exceeds the budget, the service degrades
  /// the request to the (cheap, precomputable) popularity tier up front
  /// rather than blowing the deadline.
  double deadline_ms = 0.0;
  /// Restrict ranking to these POI ids (empty = the full catalogue).
  std::vector<uint32_t> candidates;
  /// Geo fence: when > 0, only POIs within `within_km` kilometres of
  /// `center` are eligible. Composes (intersects) with `candidates`.
  double within_km = 0.0;
  GeoPoint center;
};

/// Hard caps on untrusted request fields, so a hostile request file cannot
/// trigger huge allocations.
inline constexpr size_t kMaxRequestK = 100'000;
inline constexpr size_t kMaxRequestCandidates = 1'000'000;
/// Largest meaningful geo fence: half the Earth's circumference reaches
/// every point, anything beyond it is a malformed request.
inline constexpr double kMaxRequestWithinKm = 20'038.0;

/// Parses one line of the batch request grammar:
///
///   topk <user> <time_bin> [k=N] [new] [deadline_ms=X] [cand=j1,j2,...]
///        [within_km=KM,LAT,LON]
///   ingest <user> <poi> <timestamp>
///
/// The ingest timestamp goes through the CSV loader's hardening: exact
/// integer parse (ParseInt64 — no float round-trip, no overflow wrap) and
/// the [kMinCheckinTimestamp, kMaxCheckinTimestamp] calendar bounds.
/// Returns InvalidArgument for anything malformed — unknown directive,
/// non-numeric fields, values beyond the caps above, non-finite deadline,
/// a non-positive / oversized fence radius or an out-of-range fence
/// centre — never crashes and never allocates proportionally to a corrupt
/// length field.
Result<ServeRequest> ParseRequestLine(std::string_view line);

}  // namespace tcss

#endif  // TCSS_SERVE_REQUEST_H_
