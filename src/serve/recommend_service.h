#ifndef TCSS_SERVE_RECOMMEND_SERVICE_H_
#define TCSS_SERVE_RECOMMEND_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ann/lsh_index.h"
#include "baselines/popularity.h"
#include "core/fold_in.h"
#include "core/incremental_fold_in.h"
#include "core/recommend.h"
#include "data/dataset.h"
#include "data/time_binning.h"
#include "geo/spatial_grid.h"
#include "obs/metrics.h"
#include "serve/model_watcher.h"
#include "serve/request.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Aggregate serving statistics, exposed for health endpoints and dumped
/// to stderr by `tcss serve`.
///
/// Latency quantiles are read from the per-tier obs::Histogram metrics
/// (serve.latency_ms.<tier>); the overall p50/p95/p99 come from the merged
/// tier histograms. With the default process-global registry the
/// histograms aggregate across every service instance in the process —
/// pass Options::metrics for per-service isolation.
struct ServiceStats {
  ServeHealth health = ServeHealth::kFallback;
  uint64_t reload_successes = 0;
  uint64_t reload_rejects = 0;
  uint64_t queries_by_tier[kNumServeTiers] = {0, 0, 0};
  uint64_t deadline_degrades = 0;  ///< budget forced the popularity tier
  uint64_t invalid_requests = 0;   ///< e.g. time bin outside the granularity
  uint64_t total_queries = 0;
  uint64_t fold_in_cache_hits = 0;
  uint64_t fold_in_cache_misses = 0;
  uint64_t ann_served = 0;     ///< answered from an LSH candidate union
  uint64_t ann_fallbacks = 0;  ///< candidate union too small → exact path
  uint64_t ann_rebuilds = 0;   ///< index rebuilds (one per model generation)
  uint64_t ann_audits = 0;     ///< requests double-scored by the oracle
  uint64_t geo_fenced = 0;     ///< requests with a within_km restriction
  double p50_ms = 0.0;  ///< across all tiers
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double tier_p50_ms[kNumServeTiers] = {0.0, 0.0, 0.0};
  double tier_p95_ms[kNumServeTiers] = {0.0, 0.0, 0.0};
  double tier_p99_ms[kNumServeTiers] = {0.0, 0.0, 0.0};

  /// One-line "health=... reloads=... p99_ms=..." summary.
  std::string ToString() const;
};

/// The serving read path: answers TopK queries through a fallback chain of
/// recommenders, never crashing and never blocking on a model reload.
///
///   tier 0  model       — the hot-reloaded TCSS factors, for any user the
///                         model was trained on
///   tier 1  fold_in     — ridge fold-in (factors held fixed) for dataset
///                         users the model has no row for
///   tier 2  popularity  — non-personalized counts; always available once
///                         Init() succeeded, and the answer of last resort
///                         for unknown users or when no model is live
///
/// The chain degrades per *request*, not globally: one query from an
/// unseen user answers from fold-in while the next answers from the model.
/// A per-request deadline budget can force the cheap popularity tier when
/// the chosen tier's recent latency (EWMA) would blow the budget.
///
/// With Options::ann enabled, the factor-scored tiers gain a candidate-
/// generation stage: the request ranks only the LSH candidate union
/// (re-ranked by the exact scorer) instead of the whole catalogue, with a
/// per-request fallback to the exact path when the union is too small. A
/// geo fence (ServeRequest::within_km) restricts any tier — including
/// ANN, by intersection — to the POIs inside the fence, resolved through
/// the spatial grid without touching the full catalogue.
class RecommendService {
 public:
  struct Options {
    FoldInOptions fold_in;
    /// Streaming mode (DESIGN.md §14): when set, the fold-in tier runs
    /// through this incremental, generation-keyed solver instead of the
    /// batch FoldInUser path — appended check-ins become O(r²) rank-1
    /// updates and a hot reload invalidates exactly the derived state.
    /// Init() seeds it with the train tensor's per-user cells so the two
    /// paths agree on history. Not owned; must outlive the service, and
    /// is touched only from the serving thread (the owner — typically a
    /// StreamingEngine — appends through that same thread).
    IncrementalFoldIn* incremental = nullptr;
    /// EWMA smoothing for per-tier latency estimates (0 < a <= 1). The
    /// EWMA is the deadline-budget predictor: it tracks *recent* latency,
    /// which the cumulative histograms cannot, so degradation reacts to a
    /// latency regression instead of averaging it away.
    double latency_ewma_alpha = 0.2;
    /// Metric registry for latency histograms and serve counters; null
    /// means the process-global registry (metrics then aggregate across
    /// all services in the process).
    obs::MetricRegistry* metrics = nullptr;
    /// The ANN candidate-generation tier (DESIGN.md §13). When enabled,
    /// factor-scored requests rank only the LSH candidate union instead
    /// of the whole catalogue, falling back to the exact path per request
    /// when the union is smaller than lsh.min_candidates.
    struct AnnOptions {
      bool enabled = false;
      ann::LshConfig lsh;
      /// Every Nth ANN-served request is also scored by the exact oracle
      /// and the top-k overlap recorded into ann.recall_proxy; 0 disables
      /// auditing.
      uint64_t audit_every = 64;
    };
    AnnOptions ann;
  };

  /// `data` must outlive the service. `watcher` may be null (pure
  /// popularity service); if set it must outlive the service too.
  RecommendService(const Dataset* data, TimeGranularity granularity,
                   ModelWatcher* watcher, const Options& opts);
  RecommendService(const Dataset* data, TimeGranularity granularity,
                   ModelWatcher* watcher)
      : RecommendService(data, granularity, watcher, Options()) {}

  /// Builds the check-in tensor, fits the popularity tier and performs the
  /// initial watcher poll. Must be called once before TopK(); failure
  /// means even the last-resort tier could not be constructed.
  Status Init();

  struct Response {
    ServeTier tier = ServeTier::kPopularity;
    std::vector<Recommendation> recs;
    double latency_ms = 0.0;
  };

  /// Answers one query. Never fails: untrusted fields degrade (bad user →
  /// popularity) or yield an empty list (bad time bin), and a missing or
  /// stale model falls down the chain.
  Response TopK(const ServeRequest& req);

  /// Answers many queries in one model pass. Responses land at the index
  /// of their request. Tier choice, deadline degradation and fold-in cache
  /// fills run serially; then every factor-scored request contributes one
  /// query vector q_t = h_t * U1[i,t] * U3[k,t] to a stacked matrix that a
  /// single gemm (U2 · Qᵀ, row-sharded on the deterministic thread pool)
  /// scores against the whole catalogue, and the per-request top-k
  /// selections run shard-parallel into disjoint slots. Scores can differ
  /// from the one-at-a-time path in the last ulp (different product
  /// association), never in ranking semantics.
  std::vector<Response> BatchTopK(const std::vector<ServeRequest>& reqs);

  /// Predicts which tier would answer `req` right now, without running it.
  /// Thread-safe (reads only immutable post-Init state and the watcher's
  /// mutex-guarded model pointer) — the server's admission control calls
  /// this from connection threads while the dispatcher is mid-batch.
  ServeTier PlanTier(const ServeRequest& req) const;

  /// Recent latency EWMA of a tier in milliseconds (0 before the first
  /// sample). Single-writer like TopK itself: only the serving thread may
  /// call this; the server republishes the values atomically for its
  /// admission-control threads.
  double TierLatencyEwmaMs(ServeTier tier) const;

  /// Triggers one hot-reload check on the watcher (no-op without one).
  void PollModel();

  ServeHealth health() const;
  ServiceStats Stats() const;

 private:
  /// How one request's candidate set is scored: the options handed to
  /// TopKRecommendations, whether they carry an ANN candidate union, and
  /// whether this request is an audit (also scored by the exact oracle,
  /// whose options are `exact_topts`).
  struct ScorePlan {
    TopKOptions topts;
    /// The request's restriction (candidates ∩ geo fence) matched no POI:
    /// answer empty without scoring (an empty TopKOptions candidate list
    /// would mean "the whole catalogue").
    bool empty = false;
    bool ann = false;
    bool audit = false;
    TopKOptions exact_topts;
  };

  ServeTier ChooseTier(const ServeRequest& req,
                       const std::shared_ptr<const FactorModel>& model) const;
  /// Applies the deadline-budget EWMA check to a chosen tier; may degrade
  /// to popularity (counting the degrade).
  ServeTier ApplyDeadlineBudget(const ServeRequest& req, ServeTier tier);
  /// Returns the fold-in embedding for `user` (solving and caching it on
  /// miss), or null when the solve fails. Must run on the serving thread.
  const std::vector<double>* FoldInEmbedding(
      uint32_t user, const std::shared_ptr<const FactorModel>& model);
  /// Resolves a request's candidate set: explicit candidates ∩ geo fence,
  /// then the ANN union (intersected with that restriction) when the tier
  /// is factor-scored, the index is live and the union is large enough —
  /// otherwise the exact restriction, counting the fallback. Mutates
  /// service counters: serving thread only.
  void PlanScore(const ServeRequest& req, ServeTier tier,
                 const std::shared_ptr<const FactorModel>& model,
                 const std::vector<double>* fold_emb, ScorePlan* plan);
  /// Rebuilds the LSH index when `model` is a generation the index was
  /// not built from. Pointer identity keys the pair: after this call
  /// ann_model_ == model, so a request scoring through `model` can never
  /// consult an index built from another generation. Serving thread only.
  void EnsureAnnIndex(const std::shared_ptr<const FactorModel>& model);
  void RecordLatency(ServeTier tier, double ms);

  const Dataset* data_;
  const TimeGranularity granularity_;
  ModelWatcher* watcher_;
  const Options opts_;

  bool initialized_ = false;
  size_t num_bins_ = 0;
  SparseTensor train_;  ///< full-data check-in tensor (visited-POI filter)
  Popularity popularity_;
  /// Per-user distinct (poi, time) cells, the fold-in observations.
  std::vector<std::vector<TensorCell>> user_cells_;

  /// Fold-in embeddings are valid only for the model generation they were
  /// solved against.
  uint64_t fold_in_generation_ = 0;
  std::unordered_map<uint32_t, std::vector<double>> fold_in_cache_;

  /// Geo fence support: the POI coordinates (the grid stores a pointer
  /// into this vector, so it must live as long as the grid) and the cell
  /// index over them, built once in Init().
  std::vector<GeoPoint> poi_locations_;
  std::unique_ptr<SpatialGrid> geo_grid_;

  /// The ANN tier's (model, index) pair. The two members always change
  /// together on the serving thread, keyed by model pointer identity —
  /// the hot-reload atomicity guarantee: a request holding `model` either
  /// finds ann_model_ == model (index built from exactly that object) or
  /// triggers a rebuild from it before any candidate query.
  std::shared_ptr<const FactorModel> ann_model_;
  std::unique_ptr<ann::LshIndex> ann_index_;
  uint64_t ann_tick_ = 0;  ///< ANN-served request counter driving audits

  uint64_t queries_by_tier_[kNumServeTiers] = {0, 0, 0};
  uint64_t deadline_degrades_ = 0;
  uint64_t invalid_requests_ = 0;
  uint64_t total_queries_ = 0;
  uint64_t fold_in_cache_hits_ = 0;
  uint64_t fold_in_cache_misses_ = 0;
  uint64_t ann_served_ = 0;
  uint64_t ann_fallbacks_ = 0;
  uint64_t ann_rebuilds_ = 0;
  uint64_t ann_audits_ = 0;
  uint64_t geo_fenced_ = 0;
  double tier_ewma_ms_[kNumServeTiers] = {0.0, 0.0, 0.0};
  bool tier_ewma_valid_[kNumServeTiers] = {false, false, false};

  /// Telemetry handles, resolved once in the constructor. Histograms are
  /// the source of the Stats() quantiles (they replaced the raw latency
  /// ring); counters mirror the per-service fields into the registry.
  obs::MetricRegistry* metrics_;
  obs::Histogram* tier_latency_[kNumServeTiers] = {nullptr, nullptr, nullptr};
  obs::Counter* requests_counter_ = nullptr;
  obs::Counter* invalid_counter_ = nullptr;
  obs::Counter* degrade_counter_ = nullptr;
  obs::Counter* cache_hit_counter_ = nullptr;
  obs::Counter* cache_miss_counter_ = nullptr;
  obs::Histogram* ann_candidates_hist_ = nullptr;
  obs::Histogram* ann_recall_hist_ = nullptr;
  obs::Counter* ann_served_counter_ = nullptr;
  obs::Counter* ann_fallback_counter_ = nullptr;
  obs::Counter* ann_rebuild_counter_ = nullptr;
  obs::Counter* geo_fenced_counter_ = nullptr;
};

}  // namespace tcss

#endif  // TCSS_SERVE_RECOMMEND_SERVICE_H_
