#ifndef TCSS_BASELINES_REGISTRY_H_
#define TCSS_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "eval/recommender.h"

namespace tcss {

/// Names of all models known to the factory, in Table I's row order
/// (matrix completion, POI recommendation, tensor completion, TCSS).
std::vector<std::string> RegisteredModelNames();

/// Additional reference baselines beyond the paper's Table I
/// ("Popularity", "UserKNN", "GeoMF"); see bench_extra_baselines.
std::vector<std::string> ExtraModelNames();

/// Creates a model by Table I name with default options ("CP", "Tucker",
/// "P-Tucker", "NCF", "NTM", "CoSTCo", "MCCO", "PureSVD", "STRNN", "STAN",
/// "STGN", "LFBCA", "TCSS"). Returns nullptr for unknown names.
std::unique_ptr<Recommender> MakeModel(const std::string& name,
                                       uint64_t seed = 1);

}  // namespace tcss

#endif  // TCSS_BASELINES_REGISTRY_H_
