#include "baselines/strnn.h"

#include <algorithm>
#include <cmath>

#include "geo/haversine.h"
#include "nn/optimizer.h"
#include "nn/tape.h"

namespace tcss {
namespace {

// Normalized scalar gaps between consecutive trajectory events.
double TimeGap(int64_t from, int64_t to) {
  const double days = static_cast<double>(to - from) / 86400.0;
  return std::clamp(days / 30.0, 0.0, 2.0);
}

double DistGap(const Dataset& data, uint32_t from, uint32_t to) {
  const double km =
      HaversineKm(data.poi(from).location, data.poi(to).location);
  return std::clamp(km / 200.0, 0.0, 2.0);
}

}  // namespace

Status Strnn::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr || ctx.data == nullptr) {
    return Status::InvalidArgument("Strnn: null context");
  }
  const Dataset& data = *ctx.data;
  const size_t d = opts_.dim;
  const size_t J = ctx.train->dim_j();
  const size_t K = ctx.train->dim_k();
  Rng rng(opts_.seed ^ ctx.seed);

  poi_emb_ = store_.Create("poi", J, d, &rng, 0.1);
  time_emb_ = store_.Create("time", K, d, &rng, 0.1);
  wx_ = store_.Create("wx", d, d, &rng, 1.0 / std::sqrt((double)d));
  wh_ = store_.Create("wh", d, d, &rng, 1.0 / std::sqrt((double)d));
  wt_ = store_.Create("wt", 1, d, &rng, 0.1);
  wd_ = store_.Create("wd", 1, d, &rng, 0.1);
  b_ = store_.Create("b", Matrix(1, d));

  // Only events whose cell is observed in the train tensor are used, so
  // the held-out check-ins never leak into the trajectories.
  const auto trajectories =
      BuildTrajectories(data, data.checkins(), ctx.granularity,
                        opts_.max_seq, ctx.train);
  nn::Adam::Options adam_opts;
  adam_opts.lr = opts_.lr;
  nn::Adam adam(&store_, adam_opts);

  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    for (uint32_t user = 0; user < trajectories.size(); ++user) {
      const auto& traj = trajectories[user];
      if (traj.size() < 3) continue;
      nn::Tape tape;
      nn::Var h = tape.Input(Matrix(1, d));
      nn::Var loss;
      bool have_loss = false;
      for (size_t t = 0; t + 1 < traj.size(); ++t) {
        // Advance the RNN with event t.
        nn::Var x = tape.Rows(poi_emb_, {traj[t].poi});
        Matrix dt(1, 1), dd(1, 1);
        if (t > 0) {
          dt(0, 0) = TimeGap(traj[t - 1].timestamp, traj[t].timestamp);
          dd(0, 0) = DistGap(data, traj[t - 1].poi, traj[t].poi);
        }
        nn::Var z = tape.Add(tape.MatMul(x, tape.Leaf(wx_)),
                             tape.MatMul(h, tape.Leaf(wh_)));
        z = tape.Add(z, tape.MatMul(tape.Input(dt), tape.Leaf(wt_)));
        z = tape.Add(z, tape.MatMul(tape.Input(dd), tape.Leaf(wd_)));
        h = tape.Tanh(tape.AddRowBroadcast(z, tape.Leaf(b_)));

        // BPR: next event's POI vs a random negative, time-conditioned.
        const TrajectoryEvent& next = traj[t + 1];
        uint32_t neg = static_cast<uint32_t>(rng.UniformInt(J));
        if (neg == next.poi) neg = (neg + 1) % static_cast<uint32_t>(J);
        nn::Var state =
            tape.Add(h, tape.Rows(time_emb_, {next.time_bin}));
        nn::Var s_pos = tape.MatMulT(state, tape.Rows(poi_emb_, {next.poi}));
        nn::Var s_neg = tape.MatMulT(state, tape.Rows(poi_emb_, {neg}));
        nn::Var step_loss =
            tape.BceLoss(tape.Sigmoid(tape.Sub(s_pos, s_neg)),
                         Matrix(1, 1, 1.0));
        loss = have_loss ? tape.Add(loss, step_loss) : step_loss;
        have_loss = true;
      }
      if (have_loss) {
        tape.Backward(loss);
        adam.Step();
      }
    }
  }

  // Final hidden state per user (forward only).
  user_state_ = Matrix(trajectories.size(), d);
  for (uint32_t user = 0; user < trajectories.size(); ++user) {
    const auto& traj = trajectories[user];
    std::vector<double> h(d, 0.0);
    for (size_t t = 0; t < traj.size(); ++t) {
      std::vector<double> z(d, 0.0);
      const double* x = poi_emb_->value.row(traj[t].poi);
      for (size_t a = 0; a < d; ++a) {
        const double* wx_row = wx_->value.row(a);
        const double* wh_row = wh_->value.row(a);
        for (size_t o = 0; o < d; ++o) {
          z[o] += x[a] * wx_row[o] + h[a] * wh_row[o];
        }
      }
      double dt = 0.0, dd = 0.0;
      if (t > 0) {
        dt = TimeGap(traj[t - 1].timestamp, traj[t].timestamp);
        dd = DistGap(data, traj[t - 1].poi, traj[t].poi);
      }
      for (size_t o = 0; o < d; ++o) {
        z[o] += dt * wt_->value(0, o) + dd * wd_->value(0, o) +
                b_->value(0, o);
        z[o] = std::tanh(z[o]);
      }
      h = std::move(z);
    }
    for (size_t o = 0; o < d; ++o) user_state_(user, o) = h[o];
  }
  return Status::OK();
}

double Strnn::Score(uint32_t i, uint32_t j, uint32_t k) const {
  const size_t d = opts_.dim;
  const double* h = user_state_.row(i);
  const double* q = time_emb_->value.row(k);
  const double* e = poi_emb_->value.row(j);
  double s = 0.0;
  for (size_t o = 0; o < d; ++o) s += (h[o] + q[o]) * e[o];
  return s;
}

}  // namespace tcss
