#include "baselines/mcco.h"

#include <algorithm>
#include <vector>

#include "linalg/svd.h"

namespace tcss {

Status Mcco::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr) {
    return Status::InvalidArgument("Mcco: null train tensor");
  }
  const SparseTensor& x = *ctx.train;
  const size_t I = x.dim_i();
  const size_t J = x.dim_j();

  // Observed (i,j) cells, collapsed over time.
  std::vector<std::pair<uint32_t, uint32_t>> obs;
  obs.reserve(x.nnz());
  for (const auto& e : x.entries()) obs.emplace_back(e.i, e.j);
  std::sort(obs.begin(), obs.end());
  obs.erase(std::unique(obs.begin(), obs.end()), obs.end());

  z_ = Matrix(I, J);
  const size_t r = std::min(opts_.max_rank, std::min(I, J));
  for (int iter = 0; iter < opts_.iterations; ++iter) {
    // Y = P_Omega(X) + P_Omega_perp(Z): overwrite observed cells with 1.
    Matrix y = z_;
    for (const auto& [i, j] : obs) y(i, j) = 1.0;
    auto svd = ComputeTruncatedSvd(y, r);
    if (!svd.ok()) return svd.status();
    const TruncatedSvd& dec = svd.value();
    // Z = U * shrink(S) * V^T, dropping zeroed components.
    z_.Fill(0.0);
    for (size_t t = 0; t < r; ++t) {
      const double s = std::max(dec.s[t] - opts_.tau, 0.0);
      if (s == 0.0) continue;
      for (size_t i = 0; i < I; ++i) {
        const double us = dec.u(i, t) * s;
        if (us == 0.0) continue;
        for (size_t j = 0; j < J; ++j) z_(i, j) += us * dec.v(j, t);
      }
    }
  }
  return Status::OK();
}

double Mcco::Score(uint32_t i, uint32_t j, uint32_t k) const {
  return z_(i, j);
}

}  // namespace tcss
