#ifndef TCSS_BASELINES_GEOMF_H_
#define TCSS_BASELINES_GEOMF_H_

#include <vector>

#include "eval/recommender.h"
#include "linalg/matrix.h"

namespace tcss {

/// GeoMF-style baseline (Lian et al., KDD'14; cited as [31] in the
/// paper): weighted matrix factorization of the user-POI matrix,
/// augmented with an additive geographic activity term. The user's
/// activity area is modeled as a kernel density over their visited POIs;
/// a candidate POI's geographic affinity is the summed Gaussian kernel
/// from those anchors. Final score = u_i . v_j + geo_weight * K_i(j).
///
/// The MF part uses implicit-feedback weighted ALS (observed weight w+,
/// everything else w- with target 0) - the same closed-form row updates
/// as the rest of the library's ALS solvers. Time-unaware.
class GeoMf : public Recommender {
 public:
  struct Options {
    size_t rank = 10;
    int sweeps = 12;
    double w_pos = 1.0;
    double w_neg = 0.05;
    double ridge = 1e-6;
    /// Gaussian kernel bandwidth (km) of the activity-area density.
    double kernel_sigma_km = 15.0;
    /// Weight of the geographic term relative to the MF dot product.
    double geo_weight = 0.3;
    uint64_t seed = 67;
  };

  GeoMf() : GeoMf(Options()) {}
  explicit GeoMf(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "GeoMF"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

 private:
  Options opts_;
  Matrix user_;  ///< I x r
  Matrix poi_;   ///< J x r
  size_t num_pois_ = 0;
  std::vector<float> geo_;  ///< [i * J + j] normalized activity affinity
};

}  // namespace tcss

#endif  // TCSS_BASELINES_GEOMF_H_
