#ifndef TCSS_BASELINES_STGN_H_
#define TCSS_BASELINES_STGN_H_

#include "baselines/neural_common.h"
#include "eval/recommender.h"
#include "nn/layers.h"

namespace tcss {

/// STGN (Zhao et al., AAAI'19): LSTM with spatio-temporal gates. Uses the
/// library's LstmCell in spatiotemporal mode - two extra sigmoid gates
/// driven by the time gap and distance gap between successive check-ins
/// modulate the cell update. Trained with BPR on next-POI prediction;
/// scores are (h_user + time_emb_k) . poi_emb_j.
class Stgn : public Recommender {
 public:
  struct Options {
    size_t dim = 16;
    size_t max_seq = 20;
    int epochs = 4;
    double lr = 1e-2;
    uint64_t seed = 61;
  };

  Stgn() : Stgn(Options()) {}
  explicit Stgn(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "STGN"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

 private:
  Options opts_;
  nn::ParameterStore store_;
  nn::Parameter *poi_emb_ = nullptr, *time_emb_ = nullptr;
  nn::LstmCell cell_;
  Matrix user_state_;
};

}  // namespace tcss

#endif  // TCSS_BASELINES_STGN_H_
