#include "baselines/costco.h"

#include <cmath>

#include "nn/optimizer.h"
#include "nn/tape.h"

namespace tcss {

Status CoSTCo::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr) {
    return Status::InvalidArgument("CoSTCo: null train tensor");
  }
  const SparseTensor& x = *ctx.train;
  const size_t d = opts_.emb_dim;
  const size_t c = opts_.channels;
  Rng rng(opts_.seed ^ ctx.seed);

  eu_ = store_.Create("emb.user", x.dim_i(), d, &rng, 0.1);
  ep_ = store_.Create("emb.poi", x.dim_j(), d, &rng, 0.1);
  et_ = store_.Create("emb.time", x.dim_k(), d, &rng, 0.1);
  wu_ = store_.Create("conv1.wu", 1, c, &rng, 0.4);
  wv_ = store_.Create("conv1.wv", 1, c, &rng, 0.4);
  ww_ = store_.Create("conv1.ww", 1, c, &rng, 0.4);
  wb_ = store_.Create("conv1.b", Matrix(1, c));
  conv2_ = nn::Dense(&store_, "conv2", d * c, opts_.hidden,
                     nn::Activation::kRelu, &rng);
  out_ = nn::Dense(&store_, "out", opts_.hidden, 1, nn::Activation::kSigmoid,
                   &rng);

  nn::Adam::Options adam_opts;
  adam_opts.lr = opts_.lr;
  nn::Adam adam(&store_, adam_opts);
  TripleSampler sampler(x, opts_.seed ^ ctx.seed ^ 0xc057);

  const size_t batches_per_epoch =
      std::max<size_t>(1, x.nnz() / std::max<size_t>(1, opts_.batch_positives));
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    for (size_t bi = 0; bi < batches_per_epoch; ++bi) {
      TripleBatch batch =
          sampler.Next(opts_.batch_positives, opts_.neg_ratio);
      if (batch.users.empty()) continue;
      nn::Tape tape;
      nn::Var u = tape.Rows(eu_, batch.users);   // batch x d
      nn::Var v = tape.Rows(ep_, batch.pois);
      nn::Var w = tape.Rows(et_, batch.times);
      nn::Var wu = tape.Leaf(wu_);
      nn::Var wv = tape.Leaf(wv_);
      nn::Var ww = tape.Leaf(ww_);
      nn::Var wb = tape.Leaf(wb_);
      // conv-1 (1x3 kernels): channel f maps each latent dim t of each
      // sample to relu(wu_f * u_t + wv_f * v_t + ww_f * w_t + b_f);
      // channel maps are concatenated to a batch x (d*c) feature block.
      nn::Var features;
      for (size_t f = 0; f < c; ++f) {
        nn::Var lin = tape.Add(
            tape.Add(tape.MulScalarVar(u, tape.Slice(wu, 0, f, 1, 1)),
                     tape.MulScalarVar(v, tape.Slice(wv, 0, f, 1, 1))),
            tape.MulScalarVar(w, tape.Slice(ww, 0, f, 1, 1)));
        // Bias per channel: add b_f to every element of the channel map.
        nn::Var biased = tape.Relu(
            tape.Add(lin, tape.MulScalarVar(
                              tape.Input(Matrix(tape.value(lin).rows(),
                                                tape.value(lin).cols(), 1.0)),
                              tape.Slice(wb, 0, f, 1, 1))));
        features = (f == 0) ? biased : tape.ConcatCols(features, biased);
      }
      nn::Var h = conv2_.Apply(&tape, features);
      nn::Var prob = out_.Apply(&tape, h);
      nn::Var loss = tape.BceLoss(prob, batch.labels);
      tape.Backward(loss);
      adam.Step();
    }
  }
  return Status::OK();
}

double CoSTCo::Score(uint32_t i, uint32_t j, uint32_t k) const {
  const size_t d = opts_.emb_dim;
  const size_t c = opts_.channels;
  std::vector<double> features(d * c);
  for (size_t f = 0; f < c; ++f) {
    const double a = wu_->value(0, f);
    const double b = wv_->value(0, f);
    const double g = ww_->value(0, f);
    const double bias = wb_->value(0, f);
    for (size_t t = 0; t < d; ++t) {
      const double z = a * eu_->value(i, t) + b * ep_->value(j, t) +
                       g * et_->value(k, t) + bias;
      features[f * d + t] = z > 0.0 ? z : 0.0;
    }
  }
  std::vector<double> h =
      DenseForward(*conv2_.weights(), *conv2_.bias(), features, true);
  const std::vector<double> out =
      DenseForward(*out_.weights(), *out_.bias(), h, false, true);
  return out[0];
}

}  // namespace tcss
