#ifndef TCSS_BASELINES_TUCKER_HOOI_H_
#define TCSS_BASELINES_TUCKER_HOOI_H_

#include "eval/recommender.h"
#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"

namespace tcss {

/// Tucker decomposition (Eq 2) fitted by HOOI (higher-order orthogonal
/// iteration) on the zero-filled binary tensor. Each iteration contracts
/// the sparse tensor with the other two factors (O(nnz r^2)) and takes the
/// top singular vectors of the small unfolded result; the core is the full
/// three-way contraction.
class TuckerHooi : public Recommender {
 public:
  struct Options {
    size_t rank1 = 8, rank2 = 8, rank3 = 8;
    int iterations = 12;
    uint64_t seed = 23;
  };

  TuckerHooi() : TuckerHooi(Options()) {}
  explicit TuckerHooi(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "Tucker"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

  const Matrix& factor(int mode) const { return factors_[mode]; }
  const DenseTensor& core() const { return core_; }

 private:
  Options opts_;
  Matrix factors_[3];   // I x r1, J x r2, K x r3 (orthonormal columns)
  DenseTensor core_;    // r1 x r2 x r3
};

}  // namespace tcss

#endif  // TCSS_BASELINES_TUCKER_HOOI_H_
