#ifndef TCSS_BASELINES_MCCO_H_
#define TCSS_BASELINES_MCCO_H_

#include "eval/recommender.h"
#include "linalg/matrix.h"

namespace tcss {

/// Convex matrix completion baseline (Candes & Recht). The exact
/// semidefinite program of MCCO is impractical without an SDP solver, so
/// this implements Soft-Impute (Mazumder et al.) - the standard scalable
/// solver for the *same* nuclear-norm relaxation: iterate
///   Z <- SVT_tau( P_Omega(X) + P_Omega_perp(Z) )
/// where SVT shrinks singular values by tau. Operates on the dense
/// user x POI matrix (fine at library scale); time dimension ignored.
class Mcco : public Recommender {
 public:
  struct Options {
    size_t max_rank = 10;   ///< truncation rank of each SVT step (= r of Table I)
    double tau = 3.0;       ///< singular-value shrinkage
    int iterations = 15;
    uint64_t seed = 37;
  };

  Mcco() : Mcco(Options()) {}
  explicit Mcco(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "MCCO"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

 private:
  Options opts_;
  Matrix z_;  ///< completed user x POI matrix
};

}  // namespace tcss

#endif  // TCSS_BASELINES_MCCO_H_
