#ifndef TCSS_BASELINES_POPULARITY_H_
#define TCSS_BASELINES_POPULARITY_H_

#include <vector>

#include "eval/recommender.h"

namespace tcss {

/// Non-personalized popularity baseline (reference point, not in the
/// paper's Table I): scores a POI by its global check-in count,
/// optionally modulated by the POI's per-time-bin popularity so that
/// seasonal venues rank higher in season.
class Popularity : public Recommender {
 public:
  struct Options {
    /// 0 = purely global counts; 1 = purely per-bin counts.
    double time_mix = 0.5;
  };

  Popularity() : Popularity(Options()) {}
  explicit Popularity(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "Popularity"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

 private:
  Options opts_;
  size_t num_bins_ = 0;
  std::vector<double> global_;    ///< per-POI counts, normalized
  std::vector<double> per_bin_;   ///< [j * K + k], normalized
};

}  // namespace tcss

#endif  // TCSS_BASELINES_POPULARITY_H_
