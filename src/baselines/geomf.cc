#include "baselines/geomf.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "geo/haversine.h"
#include "linalg/cholesky.h"

namespace tcss {

Status GeoMf::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr || ctx.data == nullptr) {
    return Status::InvalidArgument("GeoMf: null context");
  }
  const SparseTensor& x = *ctx.train;
  const Dataset& data = *ctx.data;
  const size_t I = x.dim_i();
  const size_t J = x.dim_j();
  const size_t r = std::min(opts_.rank, std::min(I, J));
  num_pois_ = J;

  // Distinct (user, poi) pairs, grouped both ways.
  std::vector<std::vector<uint32_t>> by_user(I), by_poi(J);
  {
    std::vector<std::pair<uint32_t, uint32_t>> pairs;
    for (const auto& e : x.entries()) pairs.emplace_back(e.i, e.j);
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    for (const auto& [i, j] : pairs) {
      by_user[i].push_back(j);
      by_poi[j].push_back(i);
    }
  }

  // --- Weighted implicit ALS on the binary user-POI matrix -------------
  Rng rng(opts_.seed ^ ctx.seed);
  user_ = Matrix::GaussianRandom(I, r, &rng, 0.1);
  poi_ = Matrix::GaussianRandom(J, r, &rng, 0.1);
  const double dw = opts_.w_pos - opts_.w_neg;
  auto update_side = [&](Matrix* rows, const Matrix& cols,
                         const std::vector<std::vector<uint32_t>>& nz) {
    // Shared part of the normal equations: w- * cols^T cols.
    Matrix base = Gram(cols);
    base.Scale(opts_.w_neg);
    for (size_t row = 0; row < rows->rows(); ++row) {
      Matrix lhs = base;
      std::vector<double> rhs(r, 0.0);
      for (uint32_t other : nz[row]) {
        const double* c = cols.row(other);
        for (size_t a = 0; a < r; ++a) {
          rhs[a] += opts_.w_pos * c[a];
          for (size_t b = 0; b < r; ++b) lhs(a, b) += dw * c[a] * c[b];
        }
      }
      auto sol = CholeskySolve(lhs, rhs, opts_.ridge);
      if (!sol.ok()) continue;  // keep the previous row on failure
      for (size_t a = 0; a < r; ++a) (*rows)(row, a) = sol.value()[a];
    }
  };
  for (int sweep = 0; sweep < opts_.sweeps; ++sweep) {
    update_side(&user_, poi_, by_user);
    update_side(&poi_, user_, by_poi);
  }

  // --- Geographic activity term ----------------------------------------
  geo_.assign(I * J, 0.0f);
  const double inv_two_sigma2 =
      1.0 / (2.0 * opts_.kernel_sigma_km * opts_.kernel_sigma_km);
  double max_geo = 1e-12;
  for (uint32_t i = 0; i < I; ++i) {
    float* row = geo_.data() + static_cast<size_t>(i) * J;
    for (uint32_t j = 0; j < J; ++j) {
      double affinity = 0.0;
      for (uint32_t anchor : by_user[i]) {
        const double d = HaversineKm(data.poi(anchor).location,
                                     data.poi(j).location);
        affinity += std::exp(-d * d * inv_two_sigma2);
      }
      row[j] = static_cast<float>(affinity);
      max_geo = std::max(max_geo, affinity);
    }
  }
  const float inv = static_cast<float>(1.0 / max_geo);
  for (auto& g : geo_) g *= inv;
  return Status::OK();
}

double GeoMf::Score(uint32_t i, uint32_t j, uint32_t k) const {
  const double* u = user_.row(i);
  const double* v = poi_.row(j);
  double s = 0.0;
  for (size_t t = 0; t < user_.cols(); ++t) s += u[t] * v[t];
  return s + opts_.geo_weight *
                 geo_[static_cast<size_t>(i) * num_pois_ + j];
}

}  // namespace tcss
