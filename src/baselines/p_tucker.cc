#include "baselines/p_tucker.h"

#include <vector>

#include "common/rng.h"
#include "linalg/cholesky.h"

namespace tcss {
namespace {

// q = G x_a u x_b v, leaving `mode` free: q[t] = sum_{a,b} G[t,a,b] u[a] v[b]
// (indices permuted per mode). Core layout is (r1, r2, r3).
void ContractCoreVec(const DenseTensor& core, int mode, const double* u,
                     const double* v, double* q) {
  const size_t r1 = core.dim_i();
  const size_t r2 = core.dim_j();
  const size_t r3 = core.dim_k();
  if (mode == 0) {
    for (size_t t = 0; t < r1; ++t) {
      double s = 0.0;
      for (size_t a = 0; a < r2; ++a)
        for (size_t b = 0; b < r3; ++b) s += core.at(t, a, b) * u[a] * v[b];
      q[t] = s;
    }
  } else if (mode == 1) {
    for (size_t t = 0; t < r2; ++t) {
      double s = 0.0;
      for (size_t a = 0; a < r1; ++a)
        for (size_t b = 0; b < r3; ++b) s += core.at(a, t, b) * u[a] * v[b];
      q[t] = s;
    }
  } else {
    for (size_t t = 0; t < r3; ++t) {
      double s = 0.0;
      for (size_t a = 0; a < r1; ++a)
        for (size_t b = 0; b < r2; ++b) s += core.at(a, b, t) * u[a] * v[b];
      q[t] = s;
    }
  }
}

}  // namespace

Status PTucker::UpdateMode(const SparseTensor& x, int mode) {
  const int m1 = (mode + 1) % 3;
  const int m2 = (mode + 2) % 3;
  const size_t r = opts_.rank;
  const size_t dim = x.dim(mode);

  // Q_full = sum over the *entire* (other-modes) grid of q q^T, assembled
  // from the factor Grams through the core: O(r^4) work.
  const Matrix gram1 = Gram(factors_[m1]);
  const Matrix gram2 = Gram(factors_[m2]);
  Matrix q_full(r, r);
  // q_full[s,t] = sum_{a,a',b,b'} G_s[a,b] G_t[a',b'] gram1[a,a'] gram2[b,b']
  for (size_t s = 0; s < r; ++s) {
    for (size_t t = s; t < r; ++t) {
      double acc = 0.0;
      for (size_t a = 0; a < r; ++a)
        for (size_t ap = 0; ap < r; ++ap) {
          const double g1 = gram1(a, ap);
          if (g1 == 0.0) continue;
          for (size_t b = 0; b < r; ++b)
            for (size_t bp = 0; bp < r; ++bp) {
              double gs, gt;
              if (mode == 0) {
                gs = core_.at(s, a, b);
                gt = core_.at(t, ap, bp);
              } else if (mode == 1) {
                gs = core_.at(a, s, b);
                gt = core_.at(ap, t, bp);
              } else {
                gs = core_.at(a, b, s);
                gt = core_.at(ap, bp, t);
              }
              acc += gs * gt * g1 * gram2(b, bp);
            }
        }
      q_full(s, t) = acc;
      q_full(t, s) = acc;
    }
  }

  // Group observed entries by this mode's index.
  std::vector<std::vector<size_t>> rows(dim);
  const auto& entries = x.entries();
  for (size_t t = 0; t < entries.size(); ++t) {
    const uint32_t idx[3] = {entries[t].i, entries[t].j, entries[t].k};
    rows[idx[mode]].push_back(t);
  }

  std::vector<double> q(r);
  for (size_t row = 0; row < dim; ++row) {
    Matrix lhs = q_full;
    lhs.Scale(opts_.w_neg);
    std::vector<double> rhs(r, 0.0);
    for (size_t tidx : rows[row]) {
      const TensorEntry& e = entries[tidx];
      const uint32_t idx[3] = {e.i, e.j, e.k};
      ContractCoreVec(core_, mode, factors_[m1].row(idx[m1]),
                      factors_[m2].row(idx[m2]), q.data());
      const double dw = opts_.w_pos - opts_.w_neg;
      for (size_t s = 0; s < r; ++s) {
        rhs[s] += opts_.w_pos * e.value * q[s];
        for (size_t t = 0; t < r; ++t) lhs(s, t) += dw * q[s] * q[t];
      }
    }
    auto sol = CholeskySolve(lhs, rhs, opts_.ridge);
    if (!sol.ok()) return sol.status();
    for (size_t s = 0; s < r; ++s) factors_[mode](row, s) = sol.value()[s];
  }
  return Status::OK();
}

void PTucker::RefreshCore(const SparseTensor& x) {
  const size_t r = opts_.rank;
  // Unweighted LS core given the factors:
  //   G = (X x1 A^T x2 B^T x3 C^T) x1 GramA^-1 x2 GramB^-1 x3 GramC^-1.
  DenseTensor t(r, r, r);
  for (const auto& e : x.entries()) {
    const double* fa = factors_[0].row(e.i);
    const double* fb = factors_[1].row(e.j);
    const double* fc = factors_[2].row(e.k);
    for (size_t a = 0; a < r; ++a) {
      const double va = e.value * fa[a];
      for (size_t b = 0; b < r; ++b) {
        const double vb = va * fb[b];
        for (size_t c = 0; c < r; ++c) t.at(a, b, c) += vb * fc[c];
      }
    }
  }
  for (int mode = 0; mode < 3; ++mode) {
    const Matrix gram = Gram(factors_[mode]);
    // Unfold along `mode`, solve gram * Z = unfolding, refold.
    Matrix unf(r, r * r);
    for (size_t a = 0; a < r; ++a)
      for (size_t b = 0; b < r; ++b)
        for (size_t c = 0; c < r; ++c) {
          const double v = t.at(a, b, c);
          if (mode == 0) unf(a, b * r + c) = v;
          if (mode == 1) unf(b, a * r + c) = v;
          if (mode == 2) unf(c, a * r + b) = v;
        }
    auto solved = CholeskySolveMulti(gram, unf, 1e-8);
    if (!solved.ok()) return;  // keep previous core on numerical failure
    const Matrix& z = solved.value();
    for (size_t a = 0; a < r; ++a)
      for (size_t b = 0; b < r; ++b)
        for (size_t c = 0; c < r; ++c) {
          if (mode == 0) t.at(a, b, c) = z(a, b * r + c);
          if (mode == 1) t.at(a, b, c) = z(b, a * r + c);
          if (mode == 2) t.at(a, b, c) = z(c, a * r + b);
        }
  }
  core_ = std::move(t);
}

Status PTucker::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr) {
    return Status::InvalidArgument("PTucker: null train tensor");
  }
  const SparseTensor& x = *ctx.train;
  const size_t r = opts_.rank;
  if (r > x.dim_i() || r > x.dim_j() || r > x.dim_k()) {
    return Status::InvalidArgument("PTucker: rank exceeds a mode dimension");
  }
  Rng rng(opts_.seed ^ ctx.seed);
  for (int mode = 0; mode < 3; ++mode) {
    factors_[mode] = Matrix::GaussianRandom(x.dim(mode), r, &rng, 0.1);
  }
  // Superdiagonal core start (CP-like), refined between sweeps.
  core_ = DenseTensor(r, r, r);
  for (size_t t = 0; t < r; ++t) core_.at(t, t, t) = 1.0;

  for (int sweep = 0; sweep < opts_.sweeps; ++sweep) {
    for (int mode = 0; mode < 3; ++mode) {
      TCSS_RETURN_IF_ERROR(UpdateMode(x, mode));
    }
    RefreshCore(x);
  }
  return Status::OK();
}

double PTucker::Score(uint32_t i, uint32_t j, uint32_t k) const {
  const size_t r = opts_.rank;
  const double* fa = factors_[0].row(i);
  const double* fb = factors_[1].row(j);
  const double* fc = factors_[2].row(k);
  double s = 0.0;
  for (size_t a = 0; a < r; ++a) {
    for (size_t b = 0; b < r; ++b) {
      const double ab = fa[a] * fb[b];
      for (size_t c = 0; c < r; ++c) s += core_.at(a, b, c) * ab * fc[c];
    }
  }
  return s;
}

}  // namespace tcss
