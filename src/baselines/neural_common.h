#ifndef TCSS_BASELINES_NEURAL_COMMON_H_
#define TCSS_BASELINES_NEURAL_COMMON_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/time_binning.h"
#include "nn/parameter.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// A minibatch of (user, poi, time) triples with 0/1 labels, used by the
/// pointwise neural baselines (NCF, NTM, CoSTCo).
struct TripleBatch {
  std::vector<uint32_t> users;
  std::vector<uint32_t> pois;
  std::vector<uint32_t> times;
  Matrix labels;  ///< batch x 1
};

/// Draws a batch of `num_pos` positives (cyclic cursor over the tensor's
/// nonzeros) plus `neg_ratio` sampled negatives per positive (uniform
/// unlabeled cells).
class TripleSampler {
 public:
  TripleSampler(const SparseTensor& train, uint64_t seed)
      : train_(&train), rng_(seed) {}

  TripleBatch Next(size_t num_pos, size_t neg_ratio) {
    TripleBatch b;
    const size_t nnz = train_->nnz();
    const size_t total = num_pos * (1 + neg_ratio);
    b.users.reserve(total);
    b.pois.reserve(total);
    b.times.reserve(total);
    b.labels = Matrix(total, 1);
    size_t row = 0;
    for (size_t p = 0; p < num_pos && nnz > 0; ++p) {
      const TensorEntry& e = train_->entries()[cursor_];
      cursor_ = (cursor_ + 1) % nnz;
      b.users.push_back(e.i);
      b.pois.push_back(e.j);
      b.times.push_back(e.k);
      b.labels(row++, 0) = 1.0;
      for (size_t n = 0; n < neg_ratio; ++n) {
        uint32_t i, j, k;
        int guard = 0;
        do {
          i = static_cast<uint32_t>(rng_.UniformInt(train_->dim_i()));
          j = static_cast<uint32_t>(rng_.UniformInt(train_->dim_j()));
          k = static_cast<uint32_t>(rng_.UniformInt(train_->dim_k()));
        } while (train_->Contains(i, j, k) && ++guard < 50);
        b.users.push_back(i);
        b.pois.push_back(j);
        b.times.push_back(k);
        b.labels(row++, 0) = 0.0;
      }
    }
    b.labels.Resize(row, 1);
    // Resize cleared values; refill (positives at stride 1+neg_ratio).
    for (size_t t = 0; t < row; ++t) {
      b.labels(t, 0) = (t % (1 + neg_ratio) == 0) ? 1.0 : 0.0;
    }
    return b;
  }

 private:
  const SparseTensor* train_;
  Rng rng_;
  size_t cursor_ = 0;
};

/// y = act(x W + b) computed directly from parameter values (no tape);
/// used by Score() paths where building a graph per call would dominate.
inline std::vector<double> DenseForward(const nn::Parameter& w,
                                        const nn::Parameter& b,
                                        const std::vector<double>& x,
                                        bool relu, bool sigmoid = false) {
  std::vector<double> y(w.value.cols(), 0.0);
  for (size_t i = 0; i < w.value.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* row = w.value.row(i);
    for (size_t o = 0; o < y.size(); ++o) y[o] += xi * row[o];
  }
  for (size_t o = 0; o < y.size(); ++o) {
    y[o] += b.value(0, o);
    if (relu && y[o] < 0.0) y[o] = 0.0;
    if (sigmoid) y[o] = 1.0 / (1.0 + std::exp(-y[o]));
  }
  return y;
}

/// One event of a user trajectory (for the sequential baselines).
struct TrajectoryEvent {
  uint32_t poi;
  uint32_t time_bin;
  int64_t timestamp;
};

/// Chronologically sorted per-user trajectories built from check-in
/// events, truncated to the most recent `max_len` events. If
/// `train_filter` is non-null, only events whose (user, poi, bin) cell is
/// observed in that tensor are kept - this is how the sequential baselines
/// avoid reading test check-ins from the dataset.
std::vector<std::vector<TrajectoryEvent>> BuildTrajectories(
    const Dataset& data, const std::vector<CheckInEvent>& events,
    TimeGranularity granularity, size_t max_len,
    const SparseTensor* train_filter = nullptr);

}  // namespace tcss

#endif  // TCSS_BASELINES_NEURAL_COMMON_H_
