#ifndef TCSS_BASELINES_CP_ALS_H_
#define TCSS_BASELINES_CP_ALS_H_

#include "eval/recommender.h"
#include "linalg/matrix.h"

namespace tcss {

/// CP (CANDECOMP/PARAFAC) decomposition fitted by alternating least
/// squares on the zero-filled binary tensor (the classical baseline of
/// Table I, Eq 1). Each ALS sweep solves, e.g. for the user factors,
///   A <- MTTKRP(X; B, C) * pinv((B^T B) .* (C^T C))
/// using the sparse MTTKRP kernel; missing entries count as zeros, which
/// is the standard implicit-feedback treatment for CP on check-in data.
class CpAls : public Recommender {
 public:
  struct Options {
    size_t rank = 10;
    int sweeps = 30;
    double ridge = 1e-9;  ///< regularizer for the r x r normal equations
    uint64_t seed = 21;
  };

  CpAls() : CpAls(Options()) {}
  explicit CpAls(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "CP"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

  const Matrix& factor(int mode) const { return factors_[mode]; }

 private:
  Options opts_;
  Matrix factors_[3];
};

}  // namespace tcss

#endif  // TCSS_BASELINES_CP_ALS_H_
