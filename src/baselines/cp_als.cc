#include "baselines/cp_als.h"

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "tensor/csf_tensor.h"
#include "tensor/mttkrp.h"
#include "tensor/sparse_kernels.h"

namespace tcss {

Status CpAls::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr) {
    return Status::InvalidArgument("CpAls: null train tensor");
  }
  const SparseTensor& x = *ctx.train;
  const size_t r = opts_.rank;
  Rng rng(opts_.seed ^ ctx.seed);
  factors_[0] = Matrix::GaussianRandom(x.dim_i(), r, &rng, 0.1);
  factors_[1] = Matrix::GaussianRandom(x.dim_j(), r, &rng, 0.1);
  factors_[2] = Matrix::GaussianRandom(x.dim_k(), r, &rng, 0.1);

  // One CSF build serves every MTTKRP of every sweep (finalized tensors
  // only; unfinalized fall back to the COO entry loop).
  CsfTensor csf;
  if (x.finalized()) csf = CsfTensor(x);

  for (int sweep = 0; sweep < opts_.sweeps; ++sweep) {
    for (int mode = 0; mode < 3; ++mode) {
      // Normal equations gram: Hadamard of the other two factor Grams.
      const Matrix& f1 = factors_[(mode + 1) % 3];
      const Matrix& f2 = factors_[(mode + 2) % 3];
      Matrix gram = Hadamard(Gram(f1), Gram(f2));
      Matrix rhs = x.finalized() ? SparseKernels::Mttkrp(csf, factors_, mode)
                                 : MttkrpCoo(x, factors_, mode);  // dim x r
      // Solve gram * a_row = rhs_row for every row (shared factorization).
      auto solved = CholeskySolveMulti(gram, rhs.Transposed(), opts_.ridge);
      if (!solved.ok()) return solved.status();
      factors_[mode] = solved.MoveValue().Transposed();
    }
  }
  return Status::OK();
}

double CpAls::Score(uint32_t i, uint32_t j, uint32_t k) const {
  const double* a = factors_[0].row(i);
  const double* b = factors_[1].row(j);
  const double* c = factors_[2].row(k);
  double s = 0.0;
  for (size_t t = 0; t < factors_[0].cols(); ++t) s += a[t] * b[t] * c[t];
  return s;
}

}  // namespace tcss
