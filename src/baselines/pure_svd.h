#ifndef TCSS_BASELINES_PURE_SVD_H_
#define TCSS_BASELINES_PURE_SVD_H_

#include "eval/recommender.h"
#include "linalg/matrix.h"

namespace tcss {

/// PureSVD (Cremonesi et al., RecSys'10): treat missing entries of the
/// user x POI interaction matrix as zeros and take a rank-r truncated SVD.
/// Scores ignore the time dimension (matrix-completion baseline of
/// Table I). The SVD runs on the *implicit* sparse matrix via subspace
/// iteration - the dense matrix is never materialized.
class PureSvd : public Recommender {
 public:
  struct Options {
    size_t rank = 10;
    uint64_t seed = 31;
  };

  PureSvd() : PureSvd(Options()) {}
  explicit PureSvd(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "PureSVD"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

 private:
  Options opts_;
  Matrix user_;  ///< I x r (U * diag(S))
  Matrix poi_;   ///< J x r (V)
};

}  // namespace tcss

#endif  // TCSS_BASELINES_PURE_SVD_H_
