#ifndef TCSS_BASELINES_NTM_H_
#define TCSS_BASELINES_NTM_H_

#include "baselines/neural_common.h"
#include "eval/recommender.h"
#include "nn/layers.h"

namespace tcss {

/// NTM - Neural Tensor Machine (Chen & Li, IJCAI'20): combines a
/// generalized CP term (learned importance weights over the element-wise
/// product of the three embeddings, like TCSS's Eq 6) with a tensorized
/// MLP over the concatenated embeddings; the two heads are summed and
/// squashed. Trained pointwise with BCE and sampled negatives.
class Ntm : public Recommender {
 public:
  struct Options {
    size_t emb_dim = 10;
    std::vector<size_t> mlp_hidden = {32};
    int epochs = 8;
    size_t batch_positives = 256;
    size_t neg_ratio = 2;
    double lr = 5e-3;
    uint64_t seed = 43;
  };

  Ntm() : Ntm(Options()) {}
  explicit Ntm(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "NTM"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

 private:
  Options opts_;
  nn::ParameterStore store_;
  nn::Parameter *eu_ = nullptr, *ep_ = nullptr, *et_ = nullptr;
  nn::Parameter* cp_weights_ = nullptr;  ///< 1 x d generalized-CP head
  std::vector<nn::Dense> mlp_;
  nn::Dense mlp_out_;
};

}  // namespace tcss

#endif  // TCSS_BASELINES_NTM_H_
