#include "baselines/user_knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tcss {

Status UserKnn::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr) {
    return Status::InvalidArgument("UserKnn: null train tensor");
  }
  const SparseTensor& x = *ctx.train;
  const size_t I = x.dim_i();
  const size_t J = x.dim_j();
  num_pois_ = J;

  // Distinct POI sets per user (sorted).
  std::vector<std::vector<uint32_t>> sets(I);
  for (const auto& e : x.entries()) sets[e.i].push_back(e.j);
  for (auto& s : sets) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }

  scores_.assign(I * J, 0.0f);
  std::vector<double> sim(I);
  std::vector<uint32_t> order(I);
  for (uint32_t u = 0; u < I; ++u) {
    // Cosine similarity of binary sets: |A ∩ B| / sqrt(|A| |B|).
    for (uint32_t v = 0; v < I; ++v) {
      if (v == u || sets[u].empty() || sets[v].empty()) {
        sim[v] = 0.0;
        continue;
      }
      size_t inter = 0;
      // Merge-count on sorted vectors.
      size_t a = 0, b = 0;
      while (a < sets[u].size() && b < sets[v].size()) {
        if (sets[u][a] < sets[v][b]) {
          ++a;
        } else if (sets[u][a] > sets[v][b]) {
          ++b;
        } else {
          ++inter;
          ++a;
          ++b;
        }
      }
      sim[v] = static_cast<double>(inter) /
               std::sqrt(static_cast<double>(sets[u].size()) *
                         static_cast<double>(sets[v].size()));
    }
    std::iota(order.begin(), order.end(), 0u);
    const size_t n = std::min(opts_.neighbors, order.size());
    std::partial_sort(order.begin(), order.begin() + n, order.end(),
                      [&sim](uint32_t a, uint32_t b) {
                        return sim[a] > sim[b];
                      });
    float* row = scores_.data() + static_cast<size_t>(u) * J;
    for (size_t t = 0; t < n; ++t) {
      const uint32_t v = order[t];
      if (sim[v] <= 0.0) break;
      for (uint32_t j : sets[v]) row[j] += static_cast<float>(sim[v]);
    }
    for (uint32_t j : sets[u]) {
      row[j] += static_cast<float>(opts_.self_weight *
                                   static_cast<double>(opts_.neighbors));
    }
  }
  return Status::OK();
}

double UserKnn::Score(uint32_t i, uint32_t j, uint32_t k) const {
  return scores_[static_cast<size_t>(i) * num_pois_ + j];
}

}  // namespace tcss
