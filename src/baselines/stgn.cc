#include "baselines/stgn.h"

#include <algorithm>
#include <cmath>

#include "geo/haversine.h"
#include "nn/optimizer.h"
#include "nn/tape.h"

namespace tcss {
namespace {

double TimeGap(int64_t from, int64_t to) {
  const double days = static_cast<double>(to - from) / 86400.0;
  return std::clamp(days / 30.0, 0.0, 2.0);
}

double DistGap(const Dataset& data, uint32_t from, uint32_t to) {
  const double km =
      HaversineKm(data.poi(from).location, data.poi(to).location);
  return std::clamp(km / 200.0, 0.0, 2.0);
}

}  // namespace

Status Stgn::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr || ctx.data == nullptr) {
    return Status::InvalidArgument("Stgn: null context");
  }
  const Dataset& data = *ctx.data;
  const size_t d = opts_.dim;
  const size_t J = ctx.train->dim_j();
  const size_t K = ctx.train->dim_k();
  Rng rng(opts_.seed ^ ctx.seed);

  poi_emb_ = store_.Create("poi", J, d, &rng, 0.1);
  time_emb_ = store_.Create("time", K, d, &rng, 0.1);
  cell_ = nn::LstmCell(&store_, "lstm", d, d, /*spatiotemporal=*/true, &rng);

  const auto trajectories =
      BuildTrajectories(data, data.checkins(), ctx.granularity,
                        opts_.max_seq, ctx.train);
  nn::Adam::Options adam_opts;
  adam_opts.lr = opts_.lr;
  nn::Adam adam(&store_, adam_opts);

  // One forward pass of the whole trajectory; records h at every step so
  // training and the final-state extraction share this helper.
  auto unroll = [&](nn::Tape* tape, const std::vector<TrajectoryEvent>& traj,
                    std::vector<nn::Var>* states) {
    nn::LstmCell::State st = cell_.InitialState(tape, 1);
    for (size_t t = 0; t < traj.size(); ++t) {
      nn::Var x = tape->Rows(poi_emb_, {traj[t].poi});
      Matrix dt(1, 1), dd(1, 1);
      if (t > 0) {
        dt(0, 0) = TimeGap(traj[t - 1].timestamp, traj[t].timestamp);
        dd(0, 0) = DistGap(data, traj[t - 1].poi, traj[t].poi);
      }
      st = cell_.Step(tape, x, st, tape->Input(dt), tape->Input(dd));
      if (states != nullptr) states->push_back(st.h);
    }
    return st;
  };

  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    for (uint32_t user = 0; user < trajectories.size(); ++user) {
      const auto& traj = trajectories[user];
      if (traj.size() < 3) continue;
      nn::Tape tape;
      std::vector<nn::Var> states;
      unroll(&tape, traj, &states);
      nn::Var loss;
      bool have_loss = false;
      for (size_t t = 0; t + 1 < traj.size(); ++t) {
        const TrajectoryEvent& next = traj[t + 1];
        uint32_t neg = static_cast<uint32_t>(rng.UniformInt(J));
        if (neg == next.poi) neg = (neg + 1) % static_cast<uint32_t>(J);
        nn::Var state =
            tape.Add(states[t], tape.Rows(time_emb_, {next.time_bin}));
        nn::Var s_pos =
            tape.MatMulT(state, tape.Rows(poi_emb_, {next.poi}));
        nn::Var s_neg = tape.MatMulT(state, tape.Rows(poi_emb_, {neg}));
        nn::Var step = tape.BceLoss(tape.Sigmoid(tape.Sub(s_pos, s_neg)),
                                    Matrix(1, 1, 1.0));
        loss = have_loss ? tape.Add(loss, step) : step;
        have_loss = true;
      }
      if (have_loss) {
        tape.Backward(loss);
        adam.Step();
      }
    }
  }

  user_state_ = Matrix(trajectories.size(), d);
  for (uint32_t user = 0; user < trajectories.size(); ++user) {
    const auto& traj = trajectories[user];
    if (traj.empty()) continue;
    nn::Tape tape;  // forward only
    nn::LstmCell::State st = unroll(&tape, traj, nullptr);
    const Matrix& h = tape.value(st.h);
    for (size_t o = 0; o < d; ++o) user_state_(user, o) = h(0, o);
  }
  return Status::OK();
}

double Stgn::Score(uint32_t i, uint32_t j, uint32_t k) const {
  const size_t d = opts_.dim;
  const double* h = user_state_.row(i);
  const double* q = time_emb_->value.row(k);
  const double* e = poi_emb_->value.row(j);
  double s = 0.0;
  for (size_t o = 0; o < d; ++o) s += (h[o] + q[o]) * e[o];
  return s;
}

}  // namespace tcss
