#include "baselines/ntm.h"

#include <cmath>

#include "nn/optimizer.h"
#include "nn/tape.h"

namespace tcss {

Status Ntm::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr) {
    return Status::InvalidArgument("Ntm: null train tensor");
  }
  const SparseTensor& x = *ctx.train;
  const size_t d = opts_.emb_dim;
  Rng rng(opts_.seed ^ ctx.seed);

  eu_ = store_.Create("emb.user", x.dim_i(), d, &rng, 0.1);
  ep_ = store_.Create("emb.poi", x.dim_j(), d, &rng, 0.1);
  et_ = store_.Create("emb.time", x.dim_k(), d, &rng, 0.1);
  cp_weights_ = store_.Create("cp.w", Matrix(d, 1, 1.0 / d));

  size_t in = 3 * d;
  for (size_t l = 0; l < opts_.mlp_hidden.size(); ++l) {
    mlp_.emplace_back(&store_, "mlp.l" + std::to_string(l), in,
                      opts_.mlp_hidden[l], nn::Activation::kRelu, &rng);
    in = opts_.mlp_hidden[l];
  }
  mlp_out_ = nn::Dense(&store_, "mlp.out", in, 1, nn::Activation::kNone, &rng);

  nn::Adam::Options adam_opts;
  adam_opts.lr = opts_.lr;
  nn::Adam adam(&store_, adam_opts);
  TripleSampler sampler(x, opts_.seed ^ ctx.seed ^ 0xcafe);

  const size_t batches_per_epoch =
      std::max<size_t>(1, x.nnz() / std::max<size_t>(1, opts_.batch_positives));
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    for (size_t bi = 0; bi < batches_per_epoch; ++bi) {
      TripleBatch batch =
          sampler.Next(opts_.batch_positives, opts_.neg_ratio);
      if (batch.users.empty()) continue;
      nn::Tape tape;
      nn::Var u = tape.Rows(eu_, batch.users);
      nn::Var p = tape.Rows(ep_, batch.pois);
      nn::Var t = tape.Rows(et_, batch.times);
      // Generalized-CP head: (u ⊙ p ⊙ t) w  -> batch x 1.
      nn::Var cp = tape.MatMul(tape.Mul(tape.Mul(u, p), t),
                               tape.Leaf(cp_weights_));
      // Tensorized MLP head over the concatenation.
      nn::Var h = tape.ConcatCols(tape.ConcatCols(u, p), t);
      for (const auto& layer : mlp_) h = layer.Apply(&tape, h);
      nn::Var mlp = mlp_out_.Apply(&tape, h);
      nn::Var prob = tape.Sigmoid(tape.Add(cp, mlp));
      nn::Var loss = tape.BceLoss(prob, batch.labels);
      tape.Backward(loss);
      adam.Step();
    }
  }
  return Status::OK();
}

double Ntm::Score(uint32_t i, uint32_t j, uint32_t k) const {
  const size_t d = opts_.emb_dim;
  double cp = 0.0;
  std::vector<double> h;
  h.reserve(3 * d);
  for (size_t t = 0; t < d; ++t) {
    cp += eu_->value(i, t) * ep_->value(j, t) * et_->value(k, t) *
          cp_weights_->value(t, 0);
  }
  for (size_t t = 0; t < d; ++t) h.push_back(eu_->value(i, t));
  for (size_t t = 0; t < d; ++t) h.push_back(ep_->value(j, t));
  for (size_t t = 0; t < d; ++t) h.push_back(et_->value(k, t));
  for (const auto& layer : mlp_) {
    h = DenseForward(*layer.weights(), *layer.bias(), h, /*relu=*/true);
  }
  const std::vector<double> mlp =
      DenseForward(*mlp_out_.weights(), *mlp_out_.bias(), h, /*relu=*/false);
  const double z = cp + mlp[0];
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace tcss
