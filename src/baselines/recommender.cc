#include <algorithm>

#include "baselines/neural_common.h"
#include "baselines/registry.h"

#include "baselines/costco.h"
#include "baselines/geomf.h"
#include "baselines/cp_als.h"
#include "baselines/lfbca.h"
#include "baselines/mcco.h"
#include "baselines/ncf.h"
#include "baselines/ntm.h"
#include "baselines/popularity.h"
#include "baselines/p_tucker.h"
#include "baselines/pure_svd.h"
#include "baselines/stan.h"
#include "baselines/stgn.h"
#include "baselines/strnn.h"
#include "baselines/tucker_hooi.h"
#include "baselines/user_knn.h"
#include "core/tcss_model.h"

namespace tcss {

std::vector<std::vector<TrajectoryEvent>> BuildTrajectories(
    const Dataset& data, const std::vector<CheckInEvent>& events,
    TimeGranularity granularity, size_t max_len,
    const SparseTensor* train_filter) {
  std::vector<std::vector<TrajectoryEvent>> out(data.num_users());
  for (const auto& e : events) {
    const uint32_t bin = TimeBin(e.timestamp, granularity);
    if (train_filter != nullptr &&
        !train_filter->Contains(e.user, e.poi, bin)) {
      continue;
    }
    out[e.user].push_back({e.poi, bin, e.timestamp});
  }
  for (auto& traj : out) {
    std::sort(traj.begin(), traj.end(),
              [](const TrajectoryEvent& a, const TrajectoryEvent& b) {
                return a.timestamp < b.timestamp;
              });
    if (max_len > 0 && traj.size() > max_len) {
      traj.erase(traj.begin(),
                 traj.begin() + static_cast<ptrdiff_t>(traj.size() - max_len));
    }
  }
  return out;
}

std::vector<std::string> RegisteredModelNames() {
  return {"MCCO", "PureSVD", "STRNN",    "STAN", "STGN",   "LFBCA", "CP",
          "Tucker", "P-Tucker", "NCF",   "NTM",  "CoSTCo", "TCSS"};
}

std::vector<std::string> ExtraModelNames() {
  return {"Popularity", "UserKNN", "GeoMF"};
}

std::unique_ptr<Recommender> MakeModel(const std::string& name,
                                       uint64_t seed) {
  if (name == "Popularity") return std::make_unique<Popularity>();
  if (name == "UserKNN") return std::make_unique<UserKnn>();
  if (name == "GeoMF") return std::make_unique<GeoMf>();
  if (name == "MCCO") return std::make_unique<Mcco>();
  if (name == "PureSVD") return std::make_unique<PureSvd>();
  if (name == "STRNN") return std::make_unique<Strnn>();
  if (name == "STAN") return std::make_unique<Stan>();
  if (name == "STGN") return std::make_unique<Stgn>();
  if (name == "LFBCA") return std::make_unique<Lfbca>();
  if (name == "CP") return std::make_unique<CpAls>();
  if (name == "Tucker") return std::make_unique<TuckerHooi>();
  if (name == "P-Tucker") return std::make_unique<PTucker>();
  if (name == "NCF") return std::make_unique<Ncf>();
  if (name == "NTM") return std::make_unique<Ntm>();
  if (name == "CoSTCo") return std::make_unique<CoSTCo>();
  if (name == "TCSS") {
    TcssConfig cfg;
    cfg.seed = seed;
    return std::make_unique<TcssModel>(cfg);
  }
  return nullptr;
}

}  // namespace tcss
