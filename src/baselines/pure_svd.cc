#include "baselines/pure_svd.h"

#include <algorithm>
#include <vector>

#include "linalg/svd.h"

namespace tcss {
namespace {

// Sparse user x POI binary matrix (tensor collapsed over time) exposed as
// a MatVecOperator for the implicit SVD.
class UserPoiMatrix : public MatVecOperator {
 public:
  UserPoiMatrix(const SparseTensor& x) : rows_(x.dim_i()), cols_(x.dim_j()) {
    // Collapse (i,j,k) -> distinct (i,j) pairs.
    std::vector<std::pair<uint32_t, uint32_t>> pairs;
    pairs.reserve(x.nnz());
    for (const auto& e : x.entries()) pairs.emplace_back(e.i, e.j);
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    nz_ = std::move(pairs);
  }

  size_t Rows() const override { return rows_; }
  size_t Cols() const override { return cols_; }
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override {
    y->assign(rows_, 0.0);
    for (const auto& [i, j] : nz_) (*y)[i] += x[j];
  }
  void ApplyTranspose(const std::vector<double>& x,
                      std::vector<double>* y) const override {
    y->assign(cols_, 0.0);
    for (const auto& [i, j] : nz_) (*y)[j] += x[i];
  }

 private:
  size_t rows_, cols_;
  std::vector<std::pair<uint32_t, uint32_t>> nz_;
};

}  // namespace

Status PureSvd::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr) {
    return Status::InvalidArgument("PureSvd: null train tensor");
  }
  UserPoiMatrix m(*ctx.train);
  const size_t r = std::min(opts_.rank, std::min(m.Rows(), m.Cols()));
  auto svd = ComputeTruncatedSvd(m, r, opts_.seed ^ ctx.seed);
  if (!svd.ok()) return svd.status();
  TruncatedSvd dec = svd.MoveValue();
  user_ = std::move(dec.u);
  for (size_t i = 0; i < user_.rows(); ++i)
    for (size_t t = 0; t < r; ++t) user_(i, t) *= dec.s[t];
  poi_ = std::move(dec.v);
  return Status::OK();
}

double PureSvd::Score(uint32_t i, uint32_t j, uint32_t k) const {
  const double* a = user_.row(i);
  const double* b = poi_.row(j);
  double s = 0.0;
  for (size_t t = 0; t < user_.cols(); ++t) s += a[t] * b[t];
  return s;
}

}  // namespace tcss
