#ifndef TCSS_BASELINES_STRNN_H_
#define TCSS_BASELINES_STRNN_H_

#include <vector>

#include "baselines/neural_common.h"
#include "eval/recommender.h"
#include "nn/layers.h"

namespace tcss {

/// STRNN (Liu et al., AAAI'16): recurrent next-POI model whose transition
/// incorporates the spatial and temporal gaps between successive
/// check-ins. This compact re-implementation uses
///   h_t = tanh(x_t Wx + h_{t-1} Wh + dt_t wt + dd_t wd + b)
/// where x_t is the POI embedding, dt/dd the normalized time/distance
/// intervals (the linear-interpolation role of STRNN's time- and
/// distance-specific transition matrices). Trained with BPR on next-POI
/// prediction over each user's trajectory; scores are
/// (h_user + time_emb_k) . poi_emb_j.
class Strnn : public Recommender {
 public:
  struct Options {
    size_t dim = 16;
    size_t max_seq = 24;
    int epochs = 4;
    double lr = 1e-2;
    uint64_t seed = 53;
  };

  Strnn() : Strnn(Options()) {}
  explicit Strnn(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "STRNN"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

 private:
  Options opts_;
  nn::ParameterStore store_;
  nn::Parameter *poi_emb_ = nullptr, *time_emb_ = nullptr;
  nn::Parameter *wx_ = nullptr, *wh_ = nullptr;
  nn::Parameter *wt_ = nullptr, *wd_ = nullptr, *b_ = nullptr;
  Matrix user_state_;  ///< I x dim, final hidden state per user
};

}  // namespace tcss

#endif  // TCSS_BASELINES_STRNN_H_
