#include "baselines/ncf.h"

#include <cmath>

#include "nn/tape.h"

namespace tcss {

Status Ncf::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr) {
    return Status::InvalidArgument("Ncf: null train tensor");
  }
  const SparseTensor& x = *ctx.train;
  const size_t d = opts_.emb_dim;
  Rng rng(opts_.seed ^ ctx.seed);

  gu_ = store_.Create("gmf.user", x.dim_i(), d, &rng, 0.1);
  gp_ = store_.Create("gmf.poi", x.dim_j(), d, &rng, 0.1);
  gt_ = store_.Create("gmf.time", x.dim_k(), d, &rng, 0.1);
  mu_ = store_.Create("mlp.user", x.dim_i(), d, &rng, 0.1);
  mp_ = store_.Create("mlp.poi", x.dim_j(), d, &rng, 0.1);
  mt_ = store_.Create("mlp.time", x.dim_k(), d, &rng, 0.1);

  size_t in = 3 * d;
  for (size_t l = 0; l < opts_.mlp_hidden.size(); ++l) {
    mlp_.emplace_back(&store_, "mlp.l" + std::to_string(l), in,
                      opts_.mlp_hidden[l], nn::Activation::kRelu, &rng);
    in = opts_.mlp_hidden[l];
  }
  out_ = nn::Dense(&store_, "out", d + in, 1, nn::Activation::kSigmoid, &rng);

  nn::Adam::Options adam_opts;
  adam_opts.lr = opts_.lr;
  nn::Adam adam(&store_, adam_opts);
  TripleSampler sampler(x, opts_.seed ^ ctx.seed ^ 0xbeef);

  const size_t batches_per_epoch =
      std::max<size_t>(1, x.nnz() / std::max<size_t>(1, opts_.batch_positives));
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    for (size_t bi = 0; bi < batches_per_epoch; ++bi) {
      TripleBatch batch =
          sampler.Next(opts_.batch_positives, opts_.neg_ratio);
      if (batch.users.empty()) continue;
      nn::Tape tape;
      nn::Var gmf = tape.Mul(
          tape.Mul(tape.Rows(gu_, batch.users), tape.Rows(gp_, batch.pois)),
          tape.Rows(gt_, batch.times));
      nn::Var h = tape.ConcatCols(
          tape.ConcatCols(tape.Rows(mu_, batch.users),
                          tape.Rows(mp_, batch.pois)),
          tape.Rows(mt_, batch.times));
      for (const auto& layer : mlp_) h = layer.Apply(&tape, h);
      nn::Var prob = out_.Apply(&tape, tape.ConcatCols(gmf, h));
      nn::Var loss = tape.BceLoss(prob, batch.labels);
      tape.Backward(loss);
      adam.Step();
    }
  }
  return Status::OK();
}

double Ncf::Score(uint32_t i, uint32_t j, uint32_t k) const {
  const size_t d = opts_.emb_dim;
  // GMF path.
  std::vector<double> feat;
  feat.reserve(d + 3 * d);
  for (size_t t = 0; t < d; ++t) {
    feat.push_back(gu_->value(i, t) * gp_->value(j, t) * gt_->value(k, t));
  }
  // MLP path.
  std::vector<double> h;
  h.reserve(3 * d);
  for (size_t t = 0; t < d; ++t) h.push_back(mu_->value(i, t));
  for (size_t t = 0; t < d; ++t) h.push_back(mp_->value(j, t));
  for (size_t t = 0; t < d; ++t) h.push_back(mt_->value(k, t));
  for (const auto& layer : mlp_) {
    h = DenseForward(*layer.weights(), *layer.bias(), h, /*relu=*/true);
  }
  feat.insert(feat.end(), h.begin(), h.end());
  const std::vector<double> out =
      DenseForward(*out_.weights(), *out_.bias(), feat,
                   /*relu=*/false, /*sigmoid=*/true);
  return out[0];
}

}  // namespace tcss
