#ifndef TCSS_BASELINES_P_TUCKER_H_
#define TCSS_BASELINES_P_TUCKER_H_

#include <vector>

#include "eval/recommender.h"
#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"

namespace tcss {

/// P-Tucker-style scalable Tucker factorization: row-wise alternating
/// least squares over the factor matrices, here with implicit-feedback
/// weighting (observed cells weight w+, all unobserved cells weight w-
/// with target 0) so that the all-positive check-in data does not collapse
/// to the trivial "predict 1 everywhere" solution.
///
/// The per-row normal equations decompose as
///   (w- * Q_full + (w+ - w-) * Q_obs + ridge I) a_i = w+ * rhs_obs
/// where Q_full = G_(n) (Gram_a ⊗ Gram_b) G_(n)^T is assembled from the
/// factor Grams in O(r^4) (never touching the J*K dense side) and Q_obs
/// accumulates q q^T over the row's observed cells - the same row-wise
/// update structure as Oh et al., ICDE'18. The core is refreshed by the
/// orthogonal-projection contraction between sweeps.
class PTucker : public Recommender {
 public:
  struct Options {
    size_t rank = 10;    ///< shared rank for all three modes
    int sweeps = 30;
    double w_pos = 1.0;
    double w_neg = 0.2;
    double ridge = 1e-6;
    uint64_t seed = 29;
  };

  PTucker() : PTucker(Options()) {}
  explicit PTucker(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "P-Tucker"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

 private:
  Status UpdateMode(const SparseTensor& x, int mode);
  void RefreshCore(const SparseTensor& x);

  Options opts_;
  Matrix factors_[3];
  DenseTensor core_;
};

}  // namespace tcss

#endif  // TCSS_BASELINES_P_TUCKER_H_
