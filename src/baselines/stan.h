#ifndef TCSS_BASELINES_STAN_H_
#define TCSS_BASELINES_STAN_H_

#include "baselines/neural_common.h"
#include "eval/recommender.h"
#include "nn/layers.h"

namespace tcss {

/// STAN (Luo et al., WWW'21): spatio-temporal attention network. This
/// compact re-implementation applies scaled dot-product self-attention
/// over the embedded trajectory (POI + time-bin embeddings), with learned
/// scalar weights on the pairwise time-gap and distance matrices acting as
/// the spatiotemporal relation bias, takes the last attended position as
/// the user state, and trains with BPR on next-POI prediction.
class Stan : public Recommender {
 public:
  struct Options {
    size_t dim = 16;
    size_t max_seq = 20;
    int epochs = 5;
    double lr = 1e-2;
    uint64_t seed = 59;
  };

  Stan() : Stan(Options()) {}
  explicit Stan(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "STAN"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

 private:
  Options opts_;
  nn::ParameterStore store_;
  nn::Parameter *poi_emb_ = nullptr, *time_emb_ = nullptr;
  nn::Parameter *rel_t_ = nullptr, *rel_d_ = nullptr;  // 1x1 bias scales
  Matrix user_state_;
};

}  // namespace tcss

#endif  // TCSS_BASELINES_STAN_H_
