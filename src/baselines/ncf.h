#ifndef TCSS_BASELINES_NCF_H_
#define TCSS_BASELINES_NCF_H_

#include <memory>

#include "baselines/neural_common.h"
#include "eval/recommender.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace tcss {

/// Neural Collaborative Filtering (He et al., WWW'17), extended to three
/// modes as in the NTM paper's protocol: the GMF path takes the
/// element-wise product of user/POI/time embeddings, the MLP path takes
/// their concatenation through a ReLU tower, and a final dense layer on
/// [gmf | mlp] produces the interaction probability. Trained pointwise
/// with BCE on positives plus sampled negatives.
class Ncf : public Recommender {
 public:
  struct Options {
    size_t emb_dim = 10;
    std::vector<size_t> mlp_hidden = {32, 16};
    int epochs = 8;
    size_t batch_positives = 256;
    size_t neg_ratio = 2;
    double lr = 5e-3;
    uint64_t seed = 41;
  };

  Ncf() : Ncf(Options()) {}
  explicit Ncf(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "NCF"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

 private:
  Options opts_;
  nn::ParameterStore store_;
  // GMF embeddings
  nn::Parameter *gu_ = nullptr, *gp_ = nullptr, *gt_ = nullptr;
  // MLP embeddings
  nn::Parameter *mu_ = nullptr, *mp_ = nullptr, *mt_ = nullptr;
  std::vector<nn::Dense> mlp_;
  nn::Dense out_;
};

}  // namespace tcss

#endif  // TCSS_BASELINES_NCF_H_
