#ifndef TCSS_BASELINES_COSTCO_H_
#define TCSS_BASELINES_COSTCO_H_

#include "baselines/neural_common.h"
#include "eval/recommender.h"
#include "nn/layers.h"

namespace tcss {

/// CoSTCo (Liu et al., KDD'19): convolutional tensor completion. The three
/// mode embeddings of a triple are stacked into an r x 3 "image"; a first
/// conv layer with 1x3 kernels mixes the modes per latent dimension
/// (weights shared across latent dimensions - exactly the paper's
/// parameter-sharing scheme), a second conv with r x 1 kernels mixes the
/// latent dimensions (realized as a dense layer over the flattened
/// channel maps, its exact general form), followed by a dense + sigmoid
/// head. Trained pointwise with BCE and sampled negatives.
class CoSTCo : public Recommender {
 public:
  struct Options {
    size_t emb_dim = 10;
    size_t channels = 8;    ///< conv-1 output channels
    size_t hidden = 32;     ///< conv-2 output size
    int epochs = 8;
    size_t batch_positives = 256;
    size_t neg_ratio = 2;
    double lr = 5e-3;
    uint64_t seed = 47;
  };

  CoSTCo() : CoSTCo(Options()) {}
  explicit CoSTCo(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "CoSTCo"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

 private:
  Options opts_;
  nn::ParameterStore store_;
  nn::Parameter *eu_ = nullptr, *ep_ = nullptr, *et_ = nullptr;
  // conv-1: one 1x3 kernel per channel, stored as three 1 x channels rows.
  nn::Parameter *wu_ = nullptr, *wv_ = nullptr, *ww_ = nullptr, *wb_ = nullptr;
  nn::Dense conv2_;  ///< (r * channels) -> hidden, the r x 1 conv stage
  nn::Dense out_;
};

}  // namespace tcss

#endif  // TCSS_BASELINES_COSTCO_H_
