#ifndef TCSS_BASELINES_USER_KNN_H_
#define TCSS_BASELINES_USER_KNN_H_

#include <vector>

#include "eval/recommender.h"

namespace tcss {

/// Classic user-based collaborative filtering (reference point, not in
/// the paper's Table I): cosine similarity between users' binary POI
/// vectors; a POI's score for user i is the similarity-weighted vote of
/// i's top-N most similar users (plus i's own visits). Time-unaware.
class UserKnn : public Recommender {
 public:
  struct Options {
    size_t neighbors = 25;
    /// Weight of the user's own visit indicator in the final score.
    double self_weight = 0.5;
  };

  UserKnn() : UserKnn(Options()) {}
  explicit UserKnn(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "UserKNN"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

 private:
  Options opts_;
  size_t num_pois_ = 0;
  std::vector<float> scores_;  ///< [i * J + j] precomputed votes
};

}  // namespace tcss

#endif  // TCSS_BASELINES_USER_KNN_H_
