#include "baselines/popularity.h"

#include <algorithm>

namespace tcss {

Status Popularity::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr) {
    return Status::InvalidArgument("Popularity: null train tensor");
  }
  const SparseTensor& x = *ctx.train;
  num_bins_ = x.dim_k();
  global_.assign(x.dim_j(), 0.0);
  per_bin_.assign(x.dim_j() * num_bins_, 0.0);
  for (const auto& e : x.entries()) {
    global_[e.j] += 1.0;
    per_bin_[static_cast<size_t>(e.j) * num_bins_ + e.k] += 1.0;
  }
  const double gmax = std::max(
      1.0, *std::max_element(global_.begin(), global_.end()));
  for (auto& v : global_) v /= gmax;
  const double bmax = std::max(
      1.0, *std::max_element(per_bin_.begin(), per_bin_.end()));
  for (auto& v : per_bin_) v /= bmax;
  return Status::OK();
}

double Popularity::Score(uint32_t i, uint32_t j, uint32_t k) const {
  return (1.0 - opts_.time_mix) * global_[j] +
         opts_.time_mix * per_bin_[static_cast<size_t>(j) * num_bins_ + k];
}

}  // namespace tcss
