#include "baselines/lfbca.h"

#include <algorithm>

#include "geo/spatial_grid.h"
#include "graph/personalized_pagerank.h"

namespace tcss {

Status Lfbca::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr || ctx.data == nullptr) {
    return Status::InvalidArgument("Lfbca: null context");
  }
  const Dataset& data = *ctx.data;
  const SparseTensor& x = *ctx.train;
  const size_t I = x.dim_i();
  const size_t J = x.dim_j();
  num_pois_ = J;

  // Node layout: users [0, I), POIs [I, I+J).
  WalkGraph graph(I + J);

  // Friendship edges (both directions).
  for (uint32_t u = 0; u < I; ++u) {
    for (const uint32_t* f = data.social().NeighborsBegin(u);
         f != data.social().NeighborsEnd(u); ++f) {
      graph.AddArc(u, *f, opts_.friend_edge_weight);
    }
  }

  // User-POI visit edges. The original bookmark-coloring algorithm walks
  // the *binary* check-in graph (an edge per distinct user-POI pair).
  {
    size_t t = 0;
    const auto& entries = x.entries();
    while (t < entries.size()) {
      size_t end = t;
      while (end < entries.size() && entries[end].i == entries[t].i &&
             entries[end].j == entries[t].j) {
        ++end;
      }
      const uint32_t user = entries[t].i;
      const uint32_t poi_node = static_cast<uint32_t>(I) + entries[t].j;
      graph.AddArc(user, poi_node, opts_.visit_edge_weight);
      graph.AddArc(poi_node, user, opts_.visit_edge_weight);
      t = end;
    }
  }

  // POI-POI proximity edges (location similarity), limited-radius.
  if (opts_.poi_edge_weight > 0.0 && J > 1) {
    const auto locations = data.PoiLocations();
    SpatialGrid grid(locations);
    for (uint32_t j = 0; j < J; ++j) {
      for (uint32_t other : grid.WithinRadius(locations[j],
                                              opts_.poi_radius_km)) {
        if (other == j) continue;
        graph.AddArc(static_cast<uint32_t>(I) + j,
                     static_cast<uint32_t>(I) + other,
                     opts_.poi_edge_weight);
      }
    }
  }

  graph.Finalize();

  // Bookmark-coloring PPR from every user; keep only POI mass.
  scores_.assign(I * J, 0.0f);
  for (uint32_t u = 0; u < I; ++u) {
    const std::vector<double> ppr =
        graph.BookmarkColoring(u, opts_.restart_alpha, opts_.push_epsilon);
    for (size_t j = 0; j < J; ++j) {
      scores_[static_cast<size_t>(u) * J + j] =
          static_cast<float>(ppr[I + j]);
    }
  }
  if (opts_.revisit_damping < 1.0) {
    // Faithful to Wang et al.: LFBCA targets *new* locations, so the walk
    // mass of POIs the user already checked in at is damped and those
    // POIs compete far below fresh candidates.
    std::vector<uint8_t> damped(I * J, 0);
    for (const auto& e : x.entries()) {
      const size_t idx = static_cast<size_t>(e.i) * J + e.j;
      if (!damped[idx]) {
        damped[idx] = 1;
        scores_[idx] =
            static_cast<float>(scores_[idx] * opts_.revisit_damping);
      }
    }
  }
  return Status::OK();
}

double Lfbca::Score(uint32_t i, uint32_t j, uint32_t k) const {
  return scores_[static_cast<size_t>(i) * num_pois_ + j];
}

}  // namespace tcss
