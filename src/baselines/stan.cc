#include "baselines/stan.h"

#include <algorithm>
#include <cmath>

#include "geo/haversine.h"
#include "nn/optimizer.h"
#include "nn/tape.h"

namespace tcss {
namespace {

// Pairwise relation matrices over a trajectory window: normalized absolute
// time gaps (days/30) and distances (km/200), negated so that *near*
// events receive *larger* attention bias.
void RelationMatrices(const Dataset& data,
                      const std::vector<TrajectoryEvent>& window, Matrix* mt,
                      Matrix* md) {
  const size_t L = window.size();
  mt->Resize(L, L);
  md->Resize(L, L);
  for (size_t a = 0; a < L; ++a) {
    for (size_t b = 0; b < L; ++b) {
      const double days =
          std::fabs(static_cast<double>(window[a].timestamp -
                                        window[b].timestamp)) /
          86400.0;
      (*mt)(a, b) = -std::clamp(days / 30.0, 0.0, 3.0);
      const double km = HaversineKm(data.poi(window[a].poi).location,
                                    data.poi(window[b].poi).location);
      (*md)(a, b) = -std::clamp(km / 200.0, 0.0, 3.0);
    }
  }
}

}  // namespace

Status Stan::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr || ctx.data == nullptr) {
    return Status::InvalidArgument("Stan: null context");
  }
  const Dataset& data = *ctx.data;
  const size_t d = opts_.dim;
  const size_t J = ctx.train->dim_j();
  const size_t K = ctx.train->dim_k();
  Rng rng(opts_.seed ^ ctx.seed);

  poi_emb_ = store_.Create("poi", J, d, &rng, 0.1);
  time_emb_ = store_.Create("time", K, d, &rng, 0.1);
  rel_t_ = store_.Create("rel_t", Matrix(1, 1, 0.5));
  rel_d_ = store_.Create("rel_d", Matrix(1, 1, 0.5));

  const auto trajectories =
      BuildTrajectories(data, data.checkins(), ctx.granularity,
                        opts_.max_seq + 1, ctx.train);
  nn::Adam::Options adam_opts;
  adam_opts.lr = opts_.lr;
  nn::Adam adam(&store_, adam_opts);
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(d));

  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    for (uint32_t user = 0; user < trajectories.size(); ++user) {
      const auto& traj = trajectories[user];
      if (traj.size() < 4) continue;
      // Window = all but the last event; target = the last event.
      std::vector<TrajectoryEvent> window(traj.begin(), traj.end() - 1);
      const TrajectoryEvent& target = traj.back();
      const size_t L = window.size();

      std::vector<uint32_t> pois(L), bins(L);
      for (size_t t = 0; t < L; ++t) {
        pois[t] = window[t].poi;
        bins[t] = window[t].time_bin;
      }
      Matrix mt, md;
      RelationMatrices(data, window, &mt, &md);

      nn::Tape tape;
      nn::Var e = tape.Add(tape.Rows(poi_emb_, pois),
                           tape.Rows(time_emb_, bins));  // L x d
      nn::Var logits = tape.Scale(tape.MatMulT(e, e), inv_sqrt_d);
      logits = tape.Add(
          logits, tape.MulScalarVar(tape.Input(mt), tape.Leaf(rel_t_)));
      logits = tape.Add(
          logits, tape.MulScalarVar(tape.Input(md), tape.Leaf(rel_d_)));
      nn::Var attended = tape.MatMul(tape.SoftmaxRows(logits), e);
      nn::Var state = tape.Add(tape.Slice(attended, L - 1, 0, 1, d),
                               tape.Rows(time_emb_, {target.time_bin}));
      uint32_t neg = static_cast<uint32_t>(rng.UniformInt(J));
      if (neg == target.poi) neg = (neg + 1) % static_cast<uint32_t>(J);
      nn::Var s_pos = tape.MatMulT(state, tape.Rows(poi_emb_, {target.poi}));
      nn::Var s_neg = tape.MatMulT(state, tape.Rows(poi_emb_, {neg}));
      nn::Var loss = tape.BceLoss(tape.Sigmoid(tape.Sub(s_pos, s_neg)),
                                  Matrix(1, 1, 1.0));
      tape.Backward(loss);
      adam.Step();
    }
  }

  // Final user states: attention over the full trajectory, last position.
  user_state_ = Matrix(trajectories.size(), d);
  for (uint32_t user = 0; user < trajectories.size(); ++user) {
    const auto& traj = trajectories[user];
    if (traj.empty()) continue;
    const size_t L = traj.size();
    std::vector<uint32_t> pois(L), bins(L);
    for (size_t t = 0; t < L; ++t) {
      pois[t] = traj[t].poi;
      bins[t] = traj[t].time_bin;
    }
    Matrix mt, md;
    RelationMatrices(data, traj, &mt, &md);
    nn::Tape tape;  // forward only
    nn::Var e = tape.Add(tape.Rows(poi_emb_, pois),
                         tape.Rows(time_emb_, bins));
    nn::Var logits = tape.Scale(tape.MatMulT(e, e), inv_sqrt_d);
    logits = tape.Add(
        logits, tape.MulScalarVar(tape.Input(mt), tape.Leaf(rel_t_)));
    logits = tape.Add(
        logits, tape.MulScalarVar(tape.Input(md), tape.Leaf(rel_d_)));
    nn::Var attended = tape.MatMul(tape.SoftmaxRows(logits), e);
    const Matrix& out = tape.value(attended);
    for (size_t o = 0; o < d; ++o) user_state_(user, o) = out(L - 1, o);
  }
  return Status::OK();
}

double Stan::Score(uint32_t i, uint32_t j, uint32_t k) const {
  const size_t d = opts_.dim;
  const double* h = user_state_.row(i);
  const double* q = time_emb_->value.row(k);
  const double* e = poi_emb_->value.row(j);
  double s = 0.0;
  for (size_t o = 0; o < d; ++o) s += (h[o] + q[o]) * e[o];
  return s;
}

}  // namespace tcss
