#ifndef TCSS_BASELINES_LFBCA_H_
#define TCSS_BASELINES_LFBCA_H_

#include <vector>

#include "eval/recommender.h"

namespace tcss {

/// LFBCA (Wang, Terrovitis & Mamoulis, SIGSPATIAL'13): location-friendship
/// bookmark-coloring. Builds a heterogeneous graph over users and POIs
/// (friendship edges between users, visit edges between users and POIs,
/// similarity edges between nearby POIs) and scores POIs for each user by
/// personalized PageRank computed with the bookmark-coloring (push)
/// algorithm. Time-unaware.
class Lfbca : public Recommender {
 public:
  struct Options {
    double restart_alpha = 0.15;   ///< PPR restart probability
    double friend_edge_weight = 1.0;
    double visit_edge_weight = 1.0;
    /// POI-POI similarity edges connect POIs within this many km.
    double poi_radius_km = 10.0;
    double poi_edge_weight = 0.3;
    double push_epsilon = 1e-7;
    /// The original LFBCA recommends *new* locations, heavily demoting
    /// POIs the user already visited. This factor multiplies the walk
    /// mass of visited POIs (0 = hard exclusion, 1 = rank everything).
    double revisit_damping = 0.18;
  };

  Lfbca() : Lfbca(Options()) {}
  explicit Lfbca(const Options& opts) : opts_(opts) {}

  std::string name() const override { return "LFBCA"; }
  Status Fit(const TrainContext& ctx) override;
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

 private:
  Options opts_;
  size_t num_pois_ = 0;
  /// scores_[i * num_pois + j] = PPR mass of POI j for user i.
  std::vector<float> scores_;
};

}  // namespace tcss

#endif  // TCSS_BASELINES_LFBCA_H_
