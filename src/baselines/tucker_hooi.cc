#include "baselines/tucker_hooi.h"

#include <algorithm>

#include "common/rng.h"
#include "linalg/qr.h"
#include "linalg/svd.h"

namespace tcss {
namespace {

// Contracts the sparse tensor with two factor matrices, leaving `mode`
// free:  Y[idx_mode, (t1, t2)] += v * F1[idx1, t1] * F2[idx2, t2]
// where F1/F2 are the factors of the two other modes in cyclic order.
// Returns the mode-n unfolded result, dim(mode) x (r_a * r_b).
Matrix ContractOthers(const SparseTensor& x, const Matrix factors[3],
                      int mode) {
  const int m1 = (mode + 1) % 3;
  const int m2 = (mode + 2) % 3;
  const size_t ra = factors[m1].cols();
  const size_t rb = factors[m2].cols();
  Matrix y(x.dim(mode), ra * rb);
  for (const auto& e : x.entries()) {
    const uint32_t idx[3] = {e.i, e.j, e.k};
    const double* fa = factors[m1].row(idx[m1]);
    const double* fb = factors[m2].row(idx[m2]);
    double* dst = y.row(idx[mode]);
    for (size_t a = 0; a < ra; ++a) {
      const double va = e.value * fa[a];
      for (size_t b = 0; b < rb; ++b) dst[a * rb + b] += va * fb[b];
    }
  }
  return y;
}

}  // namespace

Status TuckerHooi::Fit(const TrainContext& ctx) {
  if (ctx.train == nullptr) {
    return Status::InvalidArgument("TuckerHooi: null train tensor");
  }
  const SparseTensor& x = *ctx.train;
  size_t ranks[3] = {std::min(opts_.rank1, x.dim_i()),
                     std::min(opts_.rank2, x.dim_j()),
                     std::min(opts_.rank3, x.dim_k())};
  Rng rng(opts_.seed ^ ctx.seed);
  for (int mode = 0; mode < 3; ++mode) {
    factors_[mode] =
        Matrix::GaussianRandom(x.dim(mode), ranks[mode], &rng, 1.0);
    TCSS_RETURN_IF_ERROR(Orthonormalize(&factors_[mode], &rng));
  }

  for (int iter = 0; iter < opts_.iterations; ++iter) {
    for (int mode = 0; mode < 3; ++mode) {
      Matrix y = ContractOthers(x, factors_, mode);
      auto svd = ComputeTruncatedSvd(y, ranks[mode]);
      if (!svd.ok()) return svd.status();
      factors_[mode] = std::move(svd.value().u);
    }
  }

  // Core: G = X x1 A^T x2 B^T x3 C^T, O(nnz * r1*r2*r3).
  core_ = DenseTensor(ranks[0], ranks[1], ranks[2]);
  for (const auto& e : x.entries()) {
    const double* fa = factors_[0].row(e.i);
    const double* fb = factors_[1].row(e.j);
    const double* fc = factors_[2].row(e.k);
    for (size_t a = 0; a < ranks[0]; ++a) {
      const double va = e.value * fa[a];
      for (size_t b = 0; b < ranks[1]; ++b) {
        const double vb = va * fb[b];
        for (size_t c = 0; c < ranks[2]; ++c) {
          core_.at(a, b, c) += vb * fc[c];
        }
      }
    }
  }
  return Status::OK();
}

double TuckerHooi::Score(uint32_t i, uint32_t j, uint32_t k) const {
  const double* fa = factors_[0].row(i);
  const double* fb = factors_[1].row(j);
  const double* fc = factors_[2].row(k);
  const size_t r1 = factors_[0].cols();
  const size_t r2 = factors_[1].cols();
  const size_t r3 = factors_[2].cols();
  double s = 0.0;
  for (size_t a = 0; a < r1; ++a) {
    for (size_t b = 0; b < r2; ++b) {
      const double ab = fa[a] * fb[b];
      for (size_t c = 0; c < r3; ++c) {
        s += core_.at(a, b, c) * ab * fc[c];
      }
    }
  }
  return s;
}

}  // namespace tcss
