#include "data/stats.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/strings.h"
#include "data/tensor_builder.h"
#include "geo/haversine.h"

namespace tcss {

DistributionStats Summarize(std::vector<double> values) {
  DistributionStats s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  s.min = values.front();
  s.max = values.back();
  double total = 0.0;
  for (double v : values) total += v;
  s.mean = total / static_cast<double>(n);
  s.median = values[n / 2];
  s.p90 = values[static_cast<size_t>(0.9 * (n - 1))];
  // Gini from the sorted values: (2 sum_i i*x_i) / (n sum x) - (n+1)/n.
  if (total > 0.0) {
    double weighted = 0.0;
    for (size_t i = 0; i < n; ++i) {
      weighted += static_cast<double>(i + 1) * values[i];
    }
    s.gini = 2.0 * weighted / (static_cast<double>(n) * total) -
             (static_cast<double>(n) + 1.0) / static_cast<double>(n);
    s.gini = std::max(0.0, s.gini);
  }
  return s;
}

DatasetProfile ProfileDataset(const Dataset& data) {
  DatasetProfile p;
  p.num_users = data.num_users();
  p.num_pois = data.num_pois();
  p.num_checkins = data.num_checkins();
  p.avg_friends = data.social().AverageDegree();

  std::vector<double> per_user(data.num_users(), 0.0);
  std::vector<std::set<uint32_t>> user_pois(data.num_users());
  std::vector<std::set<uint32_t>> poi_users(data.num_pois());

  // Chronological order for the revisit ratio.
  std::vector<CheckInEvent> events = data.checkins();
  std::sort(events.begin(), events.end(),
            [](const CheckInEvent& a, const CheckInEvent& b) {
              if (a.user != b.user) return a.user < b.user;
              return a.timestamp < b.timestamp;
            });
  size_t revisits = 0;
  for (const auto& e : events) {
    per_user[e.user] += 1.0;
    if (!user_pois[e.user].insert(e.poi).second) ++revisits;
    poi_users[e.poi].insert(e.user);
    const CivilTime c = ToCivil(e.timestamp);
    ++p.monthly_by_category[static_cast<int>(data.poi(e.poi).category)]
                           [c.month - 1];
  }
  if (!events.empty()) {
    p.revisit_ratio =
        static_cast<double>(revisits) / static_cast<double>(events.size());
  }

  p.checkins_per_user = Summarize(per_user);
  {
    std::vector<double> v;
    v.reserve(data.num_pois());
    for (const auto& users : poi_users) {
      v.push_back(static_cast<double>(users.size()));
    }
    p.visitors_per_poi = Summarize(std::move(v));
  }
  {
    std::vector<double> v;
    v.reserve(data.num_users());
    for (const auto& pois : user_pois) {
      v.push_back(static_cast<double>(pois.size()));
    }
    p.distinct_pois_per_user = Summarize(std::move(v));
  }

  // Radius of gyration per user.
  double rog_total = 0.0;
  size_t rog_users = 0;
  {
    std::vector<std::vector<GeoPoint>> pts(data.num_users());
    for (const auto& e : data.checkins()) {
      pts[e.user].push_back(data.poi(e.poi).location);
    }
    for (const auto& user_pts : pts) {
      if (user_pts.size() < 2) continue;
      double lat = 0, lon = 0;
      for (const auto& q : user_pts) {
        lat += q.lat;
        lon += q.lon;
      }
      GeoPoint centroid{lat / user_pts.size(), lon / user_pts.size()};
      double sq = 0.0;
      for (const auto& q : user_pts) {
        const double d = HaversineKm(q, centroid);
        sq += d * d;
      }
      rog_total += std::sqrt(sq / static_cast<double>(user_pts.size()));
      ++rog_users;
    }
  }
  if (rog_users > 0) {
    p.mean_radius_of_gyration_km = rog_total / static_cast<double>(rog_users);
  }

  auto tensor = BuildCheckinTensor(data, TimeGranularity::kMonthOfYear);
  if (tensor.ok()) p.tensor_density = tensor.value().Density();
  return p;
}

std::string DatasetProfile::ToString() const {
  std::string out;
  out += StrFormat("users: %zu  POIs: %zu  check-ins: %zu  avg friends: %.2f\n",
                   num_users, num_pois, num_checkins, avg_friends);
  auto line = [&out](const char* label, const DistributionStats& s) {
    out += StrFormat(
        "%-24s min %-6.0f median %-6.0f mean %-8.1f p90 %-6.0f max %-6.0f "
        "gini %.2f\n",
        label, s.min, s.median, s.mean, s.p90, s.max, s.gini);
  };
  line("check-ins per user:", checkins_per_user);
  line("distinct POIs per user:", distinct_pois_per_user);
  line("visitors per POI:", visitors_per_poi);
  out += StrFormat("revisit ratio: %.1f%%   mean radius of gyration: %.1f km"
                   "   tensor density: %.3f%%\n",
                   100.0 * revisit_ratio, mean_radius_of_gyration_km,
                   100.0 * tensor_density);
  out += "monthly check-ins by category (Jan..Dec):\n";
  for (int c = 0; c < kNumCategories; ++c) {
    out += StrFormat("  %-14s", CategoryName(static_cast<PoiCategory>(c)));
    for (int m = 0; m < 12; ++m) {
      out += StrFormat(" %5zu", monthly_by_category[c][m]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace tcss
