#include "data/synthetic.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "data/time_binning.h"
#include "geo/spatial_grid.h"

namespace tcss {
namespace {

// Month profiles per category (unnormalized; Jan..Dec). These encode the
// seasonal patterns the paper discusses: outdoor activity peaks in summer,
// shopping around the winter holidays, entertainment mildly in summer, and
// food is nearly uniform ("people can go to a restaurant at any time of the
// year").
const double kMonthProfile[kNumCategories][12] = {
    // shopping: holiday build-up, Nov/Dec spike
    {0.7, 0.6, 0.7, 0.7, 0.8, 0.8, 0.8, 0.9, 0.9, 1.0, 1.8, 2.2},
    // entertainment: mild summer peak + December
    {0.7, 0.7, 0.8, 0.9, 1.0, 1.3, 1.4, 1.3, 1.0, 0.9, 0.8, 1.1},
    // food: nearly uniform
    {1.0, 1.0, 1.0, 1.0, 1.05, 1.05, 1.05, 1.05, 1.0, 1.0, 1.0, 1.0},
    // outdoor: strong summer peak, dead winter
    {0.2, 0.25, 0.5, 0.9, 1.4, 1.9, 2.1, 2.0, 1.3, 0.8, 0.35, 0.2},
};

// Hour-of-day profiles per category (unnormalized; 0..23).
const double kHourProfile[kNumCategories][24] = {
    // shopping: daytime, after-work bump
    {0.02, 0.01, 0.01, 0.01, 0.02, 0.05, 0.1, 0.3, 0.6, 0.9, 1.1, 1.2,
     1.2,  1.1,  1.0,  1.0,  1.1,  1.3,  1.2, 0.9, 0.6, 0.3, 0.1, 0.05},
    // entertainment: evening/night heavy
    {0.5,  0.4,  0.3,  0.15, 0.08, 0.05, 0.05, 0.08, 0.1, 0.15, 0.25, 0.4,
     0.5,  0.5,  0.5,  0.6,  0.7,  0.9,  1.2,  1.6,  1.9, 2.0,  1.6,  1.0},
    // food: breakfast/lunch/dinner peaks
    {0.05, 0.03, 0.02, 0.02, 0.03, 0.1, 0.4, 0.8, 0.7, 0.4, 0.5, 1.4,
     1.8,  1.2,  0.5,  0.4,  0.5,  1.2, 2.0, 1.8, 1.0, 0.5, 0.2, 0.1},
    // outdoor: daylight hours
    {0.02, 0.01, 0.01, 0.01, 0.03, 0.15, 0.5, 0.9, 1.3, 1.5, 1.6, 1.5,
     1.4,  1.4,  1.4,  1.3,  1.2,  1.0,  0.7, 0.4, 0.15, 0.06, 0.03, 0.02},
};

// Global category mix of POIs, loosely matching Gowalla's category sizes
// in the paper (shopping 6392, entertainment 5667, food 3824, outdoor 2272).
const double kCategoryMix[kNumCategories] = {0.35, 0.31, 0.21, 0.13};

const int kDaysInMonth[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

// Seasonal concentration per category: how sharply an individual POI's
// visits cluster around its own peak month (von-Mises-like window).
// Outdoor POIs (a ski slope, a lake beach) are strongly seasonal; food is
// nearly year-round - matching the category analysis of the paper.
const double kSeasonKappa[kNumCategories] = {1.8, 1.2, 0.2, 3.0};

struct UserProfile {
  uint32_t home_city;
  uint32_t archetype;
  double activity;                     // expected share of total check-ins
  double pref[kNumCategories];         // category preference, sums to 1
};

double PrefSimilarity(const UserProfile& a, const UserProfile& b) {
  double s = 0.0;
  for (int c = 0; c < kNumCategories; ++c) s += std::min(a.pref[c], b.pref[c]);
  return s;  // overlap coefficient in [0,1]
}

}  // namespace

const char* PresetName(SyntheticPreset preset) {
  switch (preset) {
    case SyntheticPreset::kGowallaLike:
      return "gowalla-like";
    case SyntheticPreset::kYelpLike:
      return "yelp-like";
    case SyntheticPreset::kFoursquareLike:
      return "foursquare-like";
    case SyntheticPreset::kGmu5kLike:
      return "gmu5k-like";
  }
  return "?";
}

SyntheticConfig PresetConfig(SyntheticPreset preset, double scale) {
  SyntheticConfig c;
  c.name = PresetName(preset);
  switch (preset) {
    case SyntheticPreset::kGowallaLike:
      c.seed = 101;
      c.num_users = 300;
      c.num_pois = 250;
      c.num_checkins = 24000;
      c.num_cities = 3;
      c.num_archetypes = 4;
      c.popularity_zipf = 1.3;
      c.mean_friends = 8.0;
      c.revisit_prob = 0.50;
      c.friend_poi_prob = 0.22;
      c.travel_prob = 0.05;
      break;
    case SyntheticPreset::kYelpLike:
      c.seed = 202;
      c.num_users = 310;
      c.num_pois = 280;
      c.num_checkins = 8500;  // sparsest preset
      c.num_cities = 5;
      c.num_archetypes = 6;
      c.popularity_zipf = 1.1;
      c.mean_friends = 5.0;
      c.revisit_prob = 0.42;
      c.friend_poi_prob = 0.16;
      break;
    case SyntheticPreset::kFoursquareLike:
      c.seed = 303;
      c.num_users = 350;
      c.num_pois = 230;
      c.num_checkins = 26000;
      c.num_cities = 3;
      c.num_archetypes = 4;
      c.popularity_zipf = 1.3;
      c.mean_friends = 7.0;
      c.revisit_prob = 0.52;
      c.friend_poi_prob = 0.22;
      c.travel_prob = 0.05;
      break;
    case SyntheticPreset::kGmu5kLike:
      c.seed = 404;
      c.num_users = 200;
      c.num_pois = 170;
      c.num_checkins = 52000;  // dense patterns-of-life
      c.num_cities = 2;
      c.num_archetypes = 4;
      c.popularity_zipf = 1.25;
      c.mean_friends = 10.0;
      c.friend_poi_prob = 0.22;
      c.revisit_prob = 0.55;
      break;
  }
  if (scale < 1.0 && scale > 0.0) {
    c.num_users = std::max<size_t>(24, static_cast<size_t>(c.num_users * scale));
    c.num_pois = std::max<size_t>(20, static_cast<size_t>(c.num_pois * scale));
    c.num_checkins =
        std::max<size_t>(400, static_cast<size_t>(c.num_checkins * scale));
    c.num_cities = std::max<size_t>(2, static_cast<size_t>(c.num_cities * scale));
  }
  return c;
}

Result<Dataset> GenerateSyntheticLbsn(const SyntheticConfig& cfg) {
  if (cfg.num_users < 2 || cfg.num_pois < kNumCategories ||
      cfg.num_cities < 1) {
    return Status::InvalidArgument("synthetic: config too small");
  }
  Rng rng(cfg.seed);

  // --- Cities: centers scattered over a continental-US-like box. ---
  std::vector<GeoPoint> city_centers(cfg.num_cities);
  for (auto& c : city_centers) {
    c.lat = rng.Uniform(30.0, 47.0);
    c.lon = rng.Uniform(-122.0, -75.0);
  }
  // City sizes follow a Zipf-ish skew (big metros get more POIs/users).
  std::vector<double> city_weight(cfg.num_cities);
  for (size_t c = 0; c < cfg.num_cities; ++c) {
    city_weight[c] = 1.0 / std::pow(static_cast<double>(c + 1), 0.6);
  }

  // --- POIs ---
  std::vector<Poi> pois(cfg.num_pois);
  std::vector<uint32_t> poi_city(cfg.num_pois);
  std::vector<double> poi_popularity(cfg.num_pois);
  std::vector<int> poi_peak_month(cfg.num_pois);
  std::vector<std::vector<std::vector<uint32_t>>> city_cat_pois(
      cfg.num_cities,
      std::vector<std::vector<uint32_t>>(kNumCategories));
  {
    std::vector<double> mix(kCategoryMix, kCategoryMix + kNumCategories);
    for (uint32_t j = 0; j < cfg.num_pois; ++j) {
      const uint32_t city = static_cast<uint32_t>(rng.Categorical(city_weight));
      const int cat = static_cast<int>(rng.Categorical(mix));
      pois[j].category = static_cast<PoiCategory>(cat);
      pois[j].location.lat =
          city_centers[city].lat + rng.Gaussian(0.0, cfg.city_sigma_deg);
      pois[j].location.lon =
          city_centers[city].lon + rng.Gaussian(0.0, cfg.city_sigma_deg * 1.3);
      poi_city[j] = city;
      city_cat_pois[city][cat].push_back(j);
      // Each POI gets its own peak month, drawn from the category's
      // month profile, so e.g. one outdoor POI is a July lake beach and
      // another a January ski slope.
      std::vector<double> mp(kMonthProfile[cat], kMonthProfile[cat] + 12);
      poi_peak_month[j] = static_cast<int>(rng.Categorical(mp));
    }
    // Ensure every (city, category) bucket used later has a fallback: if a
    // city lacks a category, queries fall back to any POI in the city, and
    // failing that, anywhere.
    std::vector<double> zipf(cfg.num_pois);
    for (uint32_t j = 0; j < cfg.num_pois; ++j) {
      zipf[j] = 1.0 / std::pow(static_cast<double>(j + 1), cfg.popularity_zipf);
    }
    rng.Shuffle(&zipf);  // decorrelate popularity from index/category
    poi_popularity = std::move(zipf);
  }
  std::vector<std::vector<uint32_t>> city_pois(cfg.num_cities);
  for (uint32_t j = 0; j < cfg.num_pois; ++j) city_pois[poi_city[j]].push_back(j);

  // --- Archetypes: sharp taste prototypes shared by many users. ---
  const size_t num_arch = std::max<size_t>(1, cfg.num_archetypes);
  std::vector<std::array<double, kNumCategories>> arch_pref(num_arch);
  for (size_t a = 0; a < num_arch; ++a) {
    // Each archetype concentrates on one dominant category (cycled so all
    // categories are covered) with a random secondary interest.
    const int dominant = static_cast<int>(a % kNumCategories);
    const int secondary = static_cast<int>(rng.UniformInt(kNumCategories));
    double total = 0.0;
    for (int c = 0; c < kNumCategories; ++c) {
      double w = 0.08 + 0.1 * rng.Uniform();
      if (c == dominant) w += 1.0;
      if (c == secondary) w += 0.35;
      arch_pref[a][c] = w * kCategoryMix[c];
      total += arch_pref[a][c];
    }
    for (int c = 0; c < kNumCategories; ++c) arch_pref[a][c] /= total;
  }

  // --- Users: archetype + home city + activity. ---
  std::vector<UserProfile> users(cfg.num_users);
  for (auto& u : users) {
    u.home_city = static_cast<uint32_t>(rng.Categorical(city_weight));
    u.archetype = static_cast<uint32_t>(rng.UniformInt(num_arch));
    u.activity = std::exp(rng.Gaussian(0.0, 0.8));  // lognormal
    double total = 0.0;
    for (int c = 0; c < kNumCategories; ++c) {
      const double noise =
          1.0 + cfg.pref_noise * (2.0 * rng.Uniform() - 1.0);
      u.pref[c] = arch_pref[u.archetype][c] * std::max(noise, 0.05);
      total += u.pref[c];
    }
    for (int c = 0; c < kNumCategories; ++c) u.pref[c] /= total;
  }

  // --- Social graph: homophilous random graph. ---
  SocialGraph social(cfg.num_users);
  {
    // Bucket users by city for fast same-city sampling.
    std::vector<std::vector<uint32_t>> city_users(cfg.num_cities);
    for (uint32_t i = 0; i < cfg.num_users; ++i) {
      city_users[users[i].home_city].push_back(i);
    }
    const size_t target_edges = static_cast<size_t>(
        cfg.mean_friends * static_cast<double>(cfg.num_users) / 2.0);
    size_t made = 0;
    size_t attempts = 0;
    const size_t max_attempts = target_edges * 50 + 1000;
    while (made < target_edges && attempts < max_attempts) {
      ++attempts;
      uint32_t u = static_cast<uint32_t>(rng.UniformInt(cfg.num_users));
      uint32_t v;
      if (rng.Bernoulli(cfg.same_city_friend_prob) &&
          city_users[users[u].home_city].size() > 1) {
        const auto& pool = city_users[users[u].home_city];
        v = pool[rng.UniformInt(pool.size())];
      } else {
        v = static_cast<uint32_t>(rng.UniformInt(cfg.num_users));
      }
      if (u == v) continue;
      // Preference homophily: accept with probability rising in taste
      // overlap.
      if (!rng.Bernoulli(0.25 + 0.75 * PrefSimilarity(users[u], users[v]))) {
        continue;
      }
      Status st = social.AddEdge(u, v);
      if (st.ok()) ++made;
    }
    // Every user gets at least one friend (the paper filters users with
    // >= 1 friend): attach loners to a random same-city user.
    for (uint32_t i = 0; i < cfg.num_users; ++i) {
      // SocialGraph isn't finalized yet, so track degrees separately.
      // Simpler: always add one edge for users never touched above.
      // We do a cheap pass by attempting an edge; duplicates coalesce.
      uint32_t v;
      const auto& pool = city_users[users[i].home_city];
      if (pool.size() > 1) {
        do {
          v = pool[rng.UniformInt(pool.size())];
        } while (v == i);
      } else {
        do {
          v = static_cast<uint32_t>(rng.UniformInt(cfg.num_users));
        } while (v == i);
      }
      (void)social.AddEdge(i, v);
    }
    TCSS_RETURN_IF_ERROR(social.Finalize());
  }

  Dataset data(cfg.num_users, pois, std::move(social));

  // --- Check-ins ---
  // Per-user expected event count proportional to activity, floor 15
  // (the paper filters users with at least 15 check-ins).
  std::vector<double> act(cfg.num_users);
  double act_total = 0.0;
  for (uint32_t i = 0; i < cfg.num_users; ++i) {
    act[i] = users[i].activity;
    act_total += act[i];
  }
  std::vector<size_t> quota(cfg.num_users);
  for (uint32_t i = 0; i < cfg.num_users; ++i) {
    quota[i] = std::max<size_t>(
        15, static_cast<size_t>(std::lround(
                act[i] / act_total * static_cast<double>(cfg.num_checkins))));
  }

  std::vector<std::vector<uint32_t>> history(cfg.num_users);
  // Friends' POIs are consulted lazily from histories; generate users in
  // random order rounds so adoption can flow both directions.
  std::vector<uint32_t> order(cfg.num_users);
  for (uint32_t i = 0; i < cfg.num_users; ++i) order[i] = i;

  // Seed every user's history with one home-city POI matching their taste.
  for (uint32_t i = 0; i < cfg.num_users; ++i) {
    const UserProfile& u = users[i];
    std::vector<double> prefs(u.pref, u.pref + kNumCategories);
    int cat = static_cast<int>(rng.Categorical(prefs));
    const std::vector<uint32_t>* pool = &city_cat_pois[u.home_city][cat];
    if (pool->empty()) pool = &city_pois[u.home_city];
    if (pool->empty()) continue;
    std::vector<double> w(pool->size());
    for (size_t t = 0; t < pool->size(); ++t) w[t] = poi_popularity[(*pool)[t]];
    history[i].push_back((*pool)[rng.Categorical(w)]);
  }

  // Spatial index over all POIs for the friend-neighbourhood step.
  const std::vector<GeoPoint> poi_locations = data.PoiLocations();
  SpatialGrid poi_grid(poi_locations);

  const size_t rounds = 8;  // interleave users for social adoption
  for (size_t round = 0; round < rounds; ++round) {
    rng.Shuffle(&order);
    for (uint32_t i : order) {
      size_t n = quota[i] / rounds + (round < quota[i] % rounds ? 1 : 0);
      const UserProfile& u = users[i];
      for (size_t e = 0; e < n; ++e) {
        uint32_t poi = UINT32_MAX;
        const double roll = rng.Uniform();
        if (roll < cfg.revisit_prob && !history[i].empty()) {
          poi = history[i][rng.UniformInt(history[i].size())];
        } else if (roll < cfg.revisit_prob + cfg.friend_poi_prob &&
                   data.social().Degree(i) > 0) {
          // Friend influence: take a POI from a uniformly chosen friend's
          // history, or (friend_nearby_prob) a POI in its neighbourhood -
          // friends recommend areas, not just exact venues.
          const size_t deg = data.social().Degree(i);
          const uint32_t f =
              data.social().NeighborsBegin(i)[rng.UniformInt(deg)];
          if (!history[f].empty()) {
            const uint32_t anchor =
                history[f][rng.UniformInt(history[f].size())];
            poi = anchor;
            if (rng.Bernoulli(cfg.friend_nearby_prob)) {
              const auto nearby = poi_grid.WithinRadius(
                  poi_locations[anchor], cfg.friend_nearby_km);
              if (nearby.size() > 1) {
                std::vector<double> w(nearby.size());
                for (size_t t = 0; t < nearby.size(); ++t) {
                  w[t] = poi_popularity[nearby[t]];
                }
                poi = nearby[rng.Categorical(w)];
              }
            }
          }
        }
        if (poi == UINT32_MAX) {
          // Popularity-weighted choice of a taste-matching POI, usually in
          // the home city.
          std::vector<double> prefs(u.pref, u.pref + kNumCategories);
          const int cat = static_cast<int>(rng.Categorical(prefs));
          uint32_t city = u.home_city;
          if (rng.Bernoulli(cfg.travel_prob)) {
            city = static_cast<uint32_t>(rng.Categorical(city_weight));
          }
          const std::vector<uint32_t>* pool = &city_cat_pois[city][cat];
          if (pool->empty()) pool = &city_pois[city];
          if (pool->empty()) pool = &city_pois[0];
          if (pool->empty()) continue;
          std::vector<double> w(pool->size());
          for (size_t t = 0; t < pool->size(); ++t)
            w[t] = poi_popularity[(*pool)[t]];
          poi = (*pool)[rng.Categorical(w)];
        }

        // Timestamp: month from the POI's *own* seasonal window (peak
        // month + category-dependent concentration), blended toward
        // uniform by (1 - seasonality); hour from the category profile.
        const int pcat = static_cast<int>(pois[poi].category);
        const double kappa = kSeasonKappa[pcat];
        std::vector<double> mp(12);
        for (int m = 0; m < 12; ++m) {
          const double w = std::exp(
              kappa *
              std::cos(2.0 * M_PI * (m - poi_peak_month[poi]) / 12.0));
          mp[m] = cfg.seasonality * w + (1.0 - cfg.seasonality) * 1.0;
        }
        const int month = static_cast<int>(rng.Categorical(mp)) + 1;
        std::vector<double> hp(kHourProfile[pcat],
                               kHourProfile[pcat] + 24);
        const int hour = static_cast<int>(rng.Categorical(hp));
        const int day =
            1 + static_cast<int>(rng.UniformInt(kDaysInMonth[month - 1]));
        const int minute = static_cast<int>(rng.UniformInt(60));
        const int64_t ts =
            FromCivil(cfg.year, month, day, hour, minute, 0);
        TCSS_RETURN_IF_ERROR(data.AddCheckIn(i, poi, ts));
        history[i].push_back(poi);
      }
    }
  }
  return data;
}

namespace {

/// SplitMix64-style finalizer deriving one independent RNG stream per
/// (seed, user). Counter-based: user u's draws are a pure function of
/// these two, never of how many other users were generated before — the
/// property that makes arbitrary user slices independently generatable.
uint64_t UserStream(uint64_t seed, uint64_t user) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (user + 1);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

}  // namespace

Result<SparseTensor> GenerateStreamedSlice(const StreamedTensorConfig& config,
                                           size_t user_begin,
                                           size_t user_end) {
  if (user_begin > user_end || user_end > config.num_users) {
    return Status::InvalidArgument("streamed slice out of user range");
  }
  if (config.num_pois == 0 || config.num_bins == 0) {
    return Status::InvalidArgument("streamed tensor needs pois and bins");
  }
  if (!(config.activity_tail > 1.0)) {
    return Status::InvalidArgument("activity_tail must be > 1");
  }
  const size_t J = config.num_pois;
  const size_t K = config.num_bins;
  SparseTensor tensor(user_end - user_begin, J, K);
  // Pareto(a) has mean a/(a-1); dividing it out makes mean_checkins the
  // actual expected event count regardless of the tail index.
  const double a = config.activity_tail;
  const double pareto_mean = a / (a - 1.0);
  for (size_t u = user_begin; u < user_end; ++u) {
    Rng rng(UserStream(config.seed, u));
    const double pareto = std::pow(1.0 - rng.Uniform(), -1.0 / a);
    const double events = config.mean_checkins * pareto / pareto_mean;
    size_t n = static_cast<size_t>(events);
    if (n > config.max_checkins_per_user) n = config.max_checkins_per_user;
    const uint32_t i = static_cast<uint32_t>(u - user_begin);
    for (size_t e = 0; e < n; ++e) {
      const double pop = std::pow(rng.Uniform(), config.popularity_skew);
      size_t j = static_cast<size_t>(pop * static_cast<double>(J));
      if (j >= J) j = J - 1;
      const size_t k = rng.UniformInt(K);
      TCSS_RETURN_IF_ERROR(tensor.Add(i, static_cast<uint32_t>(j),
                                      static_cast<uint32_t>(k)));
    }
  }
  TCSS_RETURN_IF_ERROR(tensor.Finalize(/*binary=*/true));
  return tensor;
}

Result<Dataset> GenerateDriftStream(const DriftStreamConfig& config) {
  if (config.num_users == 0 || config.num_pois == 0) {
    return Status::InvalidArgument("drift stream needs users and POIs");
  }
  if (config.popularity_width <= 0.0 || config.home_width <= 0.0) {
    return Status::InvalidArgument("drift stream widths must be positive");
  }
  const double J = static_cast<double>(config.num_pois);

  // POIs on a geographic grid (valid coordinates, cycling categories) so
  // the stream feeds every downstream consumer unchanged.
  std::vector<Poi> pois(config.num_pois);
  const size_t grid = static_cast<size_t>(std::ceil(std::sqrt(J)));
  for (size_t j = 0; j < config.num_pois; ++j) {
    Poi& p = pois[j];
    p.location = {35.0 + 0.01 * static_cast<double>(j / grid),
                  -100.0 + 0.01 * static_cast<double>(j % grid)};
    p.category = static_cast<PoiCategory>(j % kNumCategories);
  }
  SocialGraph social(config.num_users);  // streams carry no social signal
  TCSS_RETURN_IF_ERROR(social.Finalize());
  Dataset data(config.num_users, std::move(pois), std::move(social));

  Rng rng(config.seed);
  // Home blocks: each user anchors to a block of the catalogue; migrating
  // users get a second block (offset by half the catalogue) and a
  // personal migration date in the middle third of the year.
  std::vector<double> home(config.num_users);
  std::vector<double> home_after(config.num_users);
  std::vector<double> migrate_at(config.num_users, 2.0);  // > 1 = never
  for (size_t u = 0; u < config.num_users; ++u) {
    home[u] = rng.Uniform() * J;
    home_after[u] = home[u];
    if (rng.Bernoulli(config.migration_prob)) {
      home_after[u] = std::fmod(home[u] + 0.5 * J, J);
      migrate_at[u] = 0.33 + 0.34 * rng.Uniform();
    }
  }

  const int64_t start = FromCivil(config.year, 1, 1);
  const int64_t end = FromCivil(config.year + 1, 1, 1);
  const double span = static_cast<double>(end - start);
  const double pop_w = config.popularity_width * J;
  const double home_w = config.home_width * J;
  for (size_t e = 0; e < config.num_events; ++e) {
    // Monotone timestamps: event e lands in its own slot of the year.
    const double frac =
        static_cast<double>(e) / static_cast<double>(config.num_events);
    const int64_t slot = static_cast<int64_t>(
        span / static_cast<double>(config.num_events));
    const int64_t ts = start + static_cast<int64_t>(frac * span) +
                       (slot > 0 ? static_cast<int64_t>(
                                       rng.UniformInt(static_cast<uint64_t>(
                                           slot)))
                                 : 0);
    const uint32_t user =
        static_cast<uint32_t>(rng.UniformInt(config.num_users));
    double center;
    if (rng.Bernoulli(config.popular_prob)) {
      // The drifting popular window: its centre moves linearly through
      // the catalogue as the year progresses.
      center = std::fmod(0.2 * J + frac * config.popularity_shift * J, J);
    } else {
      center = frac < migrate_at[user] ? home[user] : home_after[user];
    }
    const double width = rng.Bernoulli(config.popular_prob) ? pop_w : home_w;
    double pos = center + rng.Gaussian(0.0, 0.5 * width);
    pos = std::fmod(std::fmod(pos, J) + J, J);
    const uint32_t poi = static_cast<uint32_t>(pos);
    TCSS_RETURN_IF_ERROR(data.AddCheckIn(user, poi, ts));
  }
  return data;
}

}  // namespace tcss
