#ifndef TCSS_DATA_SPLIT_H_
#define TCSS_DATA_SPLIT_H_

#include <vector>

#include "data/dataset.h"

namespace tcss {

/// Train/test partition of check-in events.
struct TrainTestSplit {
  std::vector<CheckInEvent> train;
  std::vector<CheckInEvent> test;
};

/// Randomly splits check-ins into train/test with the given train fraction
/// (the paper uses 80% of check-ins as observed tensor entries). The split
/// is per-event and seeded for reproducibility. Users with very few events
/// are guaranteed at least one training event when possible, so every user
/// row of the train tensor is non-empty.
TrainTestSplit SplitCheckins(const Dataset& data, double train_fraction,
                             uint64_t seed);

}  // namespace tcss

#endif  // TCSS_DATA_SPLIT_H_
