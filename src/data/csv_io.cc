#include "data/csv_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace tcss {
namespace {

Status OpenForRead(const std::string& path, std::ifstream* in) {
  in->open(path);
  if (!in->is_open()) {
    return Status::IOError("cannot open " + path);
  }
  return Status::OK();
}

/// A full disk (or any write error) must yield IOError, not a silently
/// truncated CSV: flush and inspect the stream state before returning.
Status CloseChecked(std::ofstream* out, const char* name) {
  out->flush();
  if (!out->good()) {
    return Status::IOError(std::string("write to ") + name + " failed");
  }
  return Status::OK();
}

}  // namespace

Status SaveDatasetCsv(const Dataset& data, const std::string& dir) {
  {
    std::ofstream out(dir + "/pois.csv");
    if (!out.is_open()) return Status::IOError("cannot write pois.csv");
    out << "poi_id,lat,lon,category\n";
    for (uint32_t j = 0; j < data.num_pois(); ++j) {
      const Poi& p = data.poi(j);
      out << j << ',' << StrFormat("%.7f", p.location.lat) << ','
          << StrFormat("%.7f", p.location.lon) << ','
          << static_cast<int>(p.category) << '\n';
    }
    TCSS_RETURN_IF_ERROR(CloseChecked(&out, "pois.csv"));
  }
  {
    std::ofstream out(dir + "/checkins.csv");
    if (!out.is_open()) return Status::IOError("cannot write checkins.csv");
    out << "user_id,poi_id,unix_seconds\n";
    for (const auto& c : data.checkins()) {
      out << c.user << ',' << c.poi << ',' << c.timestamp << '\n';
    }
    TCSS_RETURN_IF_ERROR(CloseChecked(&out, "checkins.csv"));
  }
  {
    std::ofstream out(dir + "/friends.csv");
    if (!out.is_open()) return Status::IOError("cannot write friends.csv");
    out << "user_id,friend_id\n";
    for (uint32_t u = 0; u < data.num_users(); ++u) {
      for (const uint32_t* p = data.social().NeighborsBegin(u);
           p != data.social().NeighborsEnd(u); ++p) {
        if (u < *p) out << u << ',' << *p << '\n';
      }
    }
    TCSS_RETURN_IF_ERROR(CloseChecked(&out, "friends.csv"));
  }
  return Status::OK();
}

Result<Dataset> LoadDatasetCsv(const std::string& dir) {
  std::vector<Poi> pois;
  {
    std::ifstream in;
    TCSS_RETURN_IF_ERROR(OpenForRead(dir + "/pois.csv", &in));
    std::string line;
    std::getline(in, line);  // header
    size_t lineno = 1;
    while (std::getline(in, line)) {
      ++lineno;
      if (Trim(line).empty()) continue;
      auto f = Split(line, ',');
      size_t id = 0, cat = 0;
      double lat = 0, lon = 0;
      if (f.size() != 4 || !ParseIndex(f[0], &id) ||
          !ParseDouble(f[1], &lat) || !ParseDouble(f[2], &lon) ||
          !ParseIndex(f[3], &cat) || cat >= kNumCategories) {
        return Status::IOError(
            StrFormat("pois.csv line %zu malformed", lineno));
      }
      if (id != pois.size()) {
        return Status::IOError(
            StrFormat("pois.csv line %zu: ids must be dense ascending",
                      lineno));
      }
      pois.push_back(
          {{lat, lon}, static_cast<PoiCategory>(static_cast<int>(cat))});
    }
  }

  struct RawCheckin {
    size_t user, poi;
    int64_t ts;
  };
  std::vector<RawCheckin> raw;
  size_t max_user = 0;
  {
    std::ifstream in;
    TCSS_RETURN_IF_ERROR(OpenForRead(dir + "/checkins.csv", &in));
    std::string line;
    std::getline(in, line);
    size_t lineno = 1;
    while (std::getline(in, line)) {
      ++lineno;
      if (Trim(line).empty()) continue;
      auto f = Split(line, ',');
      size_t user = 0, poi = 0;
      double ts = 0;
      if (f.size() != 3 || !ParseIndex(f[0], &user) ||
          !ParseIndex(f[1], &poi) || !ParseDouble(f[2], &ts)) {
        return Status::IOError(
            StrFormat("checkins.csv line %zu malformed", lineno));
      }
      raw.push_back({user, poi, static_cast<int64_t>(ts)});
      max_user = std::max(max_user, user);
    }
  }

  std::vector<std::pair<size_t, size_t>> edges;
  {
    std::ifstream in;
    TCSS_RETURN_IF_ERROR(OpenForRead(dir + "/friends.csv", &in));
    std::string line;
    std::getline(in, line);
    size_t lineno = 1;
    while (std::getline(in, line)) {
      ++lineno;
      if (Trim(line).empty()) continue;
      auto f = Split(line, ',');
      size_t u = 0, v = 0;
      if (f.size() != 2 || !ParseIndex(f[0], &u) || !ParseIndex(f[1], &v)) {
        return Status::IOError(
            StrFormat("friends.csv line %zu malformed", lineno));
      }
      edges.emplace_back(u, v);
      max_user = std::max({max_user, u, v});
    }
  }

  const size_t num_users = raw.empty() && edges.empty() ? 0 : max_user + 1;
  SocialGraph social(num_users);
  for (const auto& [u, v] : edges) {
    TCSS_RETURN_IF_ERROR(social.AddEdge(static_cast<uint32_t>(u),
                                        static_cast<uint32_t>(v)));
  }
  TCSS_RETURN_IF_ERROR(social.Finalize());
  Dataset out(num_users, std::move(pois), std::move(social));
  for (const auto& r : raw) {
    TCSS_RETURN_IF_ERROR(out.AddCheckIn(static_cast<uint32_t>(r.user),
                                        static_cast<uint32_t>(r.poi), r.ts));
  }
  return out;
}

}  // namespace tcss
