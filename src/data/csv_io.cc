#include "data/csv_io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/strings.h"

namespace tcss {
namespace {

Status OpenForRead(const std::string& path, std::ifstream* in) {
  in->open(path);
  if (!in->is_open()) {
    return Status::IOError("cannot open " + path);
  }
  return Status::OK();
}

/// A full disk (or any write error) must yield IOError, not a silently
/// truncated CSV: flush and inspect the stream state before returning.
Status CloseChecked(std::ofstream* out, const char* name) {
  out->flush();
  if (!out->good()) {
    return Status::IOError(std::string("write to ") + name + " failed");
  }
  return Status::OK();
}

/// Marker for a POI row that was quarantined: check-ins referencing it are
/// quarantined too instead of silently pointing at the wrong POI.
constexpr uint32_t kQuarantinedPoi = UINT32_MAX;

/// Routes bad rows either to a hard error (strict) or to
/// "<dir>/quarantine.csv" with a per-file budget (lenient).
class BadRowSink {
 public:
  BadRowSink(std::string dir, const CsvLoadOptions& opts)
      : dir_(std::move(dir)), opts_(opts) {}

  /// Records one bad row; bumps `*counter`. Non-OK return means the load
  /// must abort (strict mode, quarantine write failure, or the lenient
  /// bad-row budget is exhausted).
  Status Add(const char* file, size_t lineno, const char* reason,
             const std::string& raw, size_t* counter) {
    if (opts_.mode == CsvLoadMode::kStrict) {
      return Status::IOError(
          StrFormat("%s line %zu: %s", file, lineno, reason));
    }
    if (!out_.is_open()) {
      path_ = dir_ + "/quarantine.csv";
      out_.open(path_, std::ios::trunc);
      if (!out_.is_open()) {
        return Status::IOError("cannot write " + path_);
      }
      out_ << "file,line,reason,raw\n";
    }
    // `raw` goes last so its embedded commas stay parseable.
    out_ << file << ',' << lineno << ',' << reason << ',' << raw << '\n';
    ++count_;
    ++*counter;
    if (count_ > opts_.max_bad_rows) {
      return Status::IOError(StrFormat(
          "too many bad rows (%zu > max_bad_rows %zu), see %s", count_,
          opts_.max_bad_rows, path_.c_str()));
    }
    return Status::OK();
  }

  size_t count() const { return count_; }
  const std::string& path() const { return path_; }

  Status Flush() {
    if (!out_.is_open()) return Status::OK();
    return CloseChecked(&out_, "quarantine.csv");
  }

 private:
  const std::string dir_;
  const CsvLoadOptions& opts_;
  std::ofstream out_;
  std::string path_;
  size_t count_ = 0;
};

}  // namespace

Status SaveDatasetCsv(const Dataset& data, const std::string& dir) {
  {
    std::ofstream out(dir + "/pois.csv");
    if (!out.is_open()) return Status::IOError("cannot write pois.csv");
    out << "poi_id,lat,lon,category\n";
    for (uint32_t j = 0; j < data.num_pois(); ++j) {
      const Poi& p = data.poi(j);
      out << j << ',' << StrFormat("%.7f", p.location.lat) << ','
          << StrFormat("%.7f", p.location.lon) << ','
          << static_cast<int>(p.category) << '\n';
    }
    TCSS_RETURN_IF_ERROR(CloseChecked(&out, "pois.csv"));
  }
  {
    std::ofstream out(dir + "/checkins.csv");
    if (!out.is_open()) return Status::IOError("cannot write checkins.csv");
    out << "user_id,poi_id,unix_seconds\n";
    for (const auto& c : data.checkins()) {
      out << c.user << ',' << c.poi << ',' << c.timestamp << '\n';
    }
    TCSS_RETURN_IF_ERROR(CloseChecked(&out, "checkins.csv"));
  }
  {
    std::ofstream out(dir + "/friends.csv");
    if (!out.is_open()) return Status::IOError("cannot write friends.csv");
    out << "user_id,friend_id\n";
    for (uint32_t u = 0; u < data.num_users(); ++u) {
      for (const uint32_t* p = data.social().NeighborsBegin(u);
           p != data.social().NeighborsEnd(u); ++p) {
        if (u < *p) out << u << ',' << *p << '\n';
      }
    }
    TCSS_RETURN_IF_ERROR(CloseChecked(&out, "friends.csv"));
  }
  return Status::OK();
}

Result<Dataset> LoadDatasetCsv(const std::string& dir,
                               const CsvLoadOptions& opts,
                               LoadReport* report) {
  LoadReport local_report;
  if (report == nullptr) report = &local_report;
  *report = LoadReport();
  BadRowSink bad(dir, opts);

  std::vector<Poi> pois;
  // File row position -> dense POI index, or kQuarantinedPoi for a hole
  // left by a quarantined row.
  std::vector<uint32_t> poi_remap;
  {
    std::ifstream in;
    TCSS_RETURN_IF_ERROR(OpenForRead(dir + "/pois.csv", &in));
    std::string line;
    std::getline(in, line);  // header
    size_t lineno = 1;
    size_t row = 0;  // data-row position; doubles as the expected poi id
    while (std::getline(in, line)) {
      ++lineno;
      if (Trim(line).empty()) continue;
      auto f = Split(line, ',');
      size_t id = 0, cat = 0;
      double lat = 0, lon = 0;
      const char* reason = nullptr;
      if (f.size() != 4) {
        reason = "expected 4 fields";
      } else if (!ParseIndex(f[0], &id)) {
        reason = "bad poi id";
      } else if (id != row) {
        reason = "poi ids must be dense ascending";
      } else if (!ParseDouble(f[1], &lat) || !ParseDouble(f[2], &lon)) {
        reason = "bad coordinates";
      } else if (!(lat >= -90.0 && lat <= 90.0)) {
        reason = "lat out of range [-90,90]";
      } else if (!(lon >= -180.0 && lon <= 180.0)) {
        reason = "lon out of range [-180,180]";
      } else if (!ParseIndex(f[3], &cat) || cat >= kNumCategories) {
        reason = "bad category";
      }
      ++row;
      if (reason != nullptr) {
        TCSS_RETURN_IF_ERROR(
            bad.Add("pois.csv", lineno, reason, line, &report->bad_pois));
        poi_remap.push_back(kQuarantinedPoi);
        continue;
      }
      poi_remap.push_back(static_cast<uint32_t>(pois.size()));
      pois.push_back(
          {{lat, lon}, static_cast<PoiCategory>(static_cast<int>(cat))});
    }
  }

  struct RawCheckin {
    size_t user;
    uint32_t poi;  ///< dense (remapped) index
    int64_t ts;
  };
  std::vector<RawCheckin> raw;
  size_t max_user = 0;
  {
    std::ifstream in;
    TCSS_RETURN_IF_ERROR(OpenForRead(dir + "/checkins.csv", &in));
    std::string line;
    std::getline(in, line);
    size_t lineno = 1;
    while (std::getline(in, line)) {
      ++lineno;
      if (Trim(line).empty()) continue;
      auto f = Split(line, ',');
      size_t user = 0, poi = 0;
      int64_t ts = 0;
      const char* reason = nullptr;
      if (f.size() != 3) {
        reason = "expected 3 fields";
      } else if (!ParseIndex(f[0], &user) || user > UINT32_MAX) {
        reason = "bad user id";
      } else if (!ParseIndex(f[1], &poi)) {
        reason = "bad poi id";
      } else if (!ParseInt64(f[2], &ts)) {
        // int64 parse, not double-and-cast: "1.5e9" and values above 2^53
        // must be rejected, never silently rounded.
        reason = "timestamp must be integer unix seconds";
      } else if (ts < kMinCheckinTimestamp || ts > kMaxCheckinTimestamp) {
        reason = "timestamp out of range";
      } else if (poi >= poi_remap.size()) {
        reason = "unknown poi";
      } else if (poi_remap[poi] == kQuarantinedPoi) {
        reason = "references quarantined poi";
      }
      if (reason != nullptr) {
        TCSS_RETURN_IF_ERROR(bad.Add("checkins.csv", lineno, reason, line,
                                     &report->bad_checkins));
        continue;
      }
      raw.push_back({user, poi_remap[poi], ts});
      max_user = std::max(max_user, user);
    }
  }

  std::vector<std::pair<size_t, size_t>> edges;
  {
    std::ifstream in;
    TCSS_RETURN_IF_ERROR(OpenForRead(dir + "/friends.csv", &in));
    std::string line;
    std::getline(in, line);
    size_t lineno = 1;
    std::unordered_set<uint64_t> seen;
    while (std::getline(in, line)) {
      ++lineno;
      if (Trim(line).empty()) continue;
      auto f = Split(line, ',');
      size_t u = 0, v = 0;
      const char* reason = nullptr;
      if (f.size() != 2) {
        reason = "expected 2 fields";
      } else if (!ParseIndex(f[0], &u) || !ParseIndex(f[1], &v)) {
        reason = "bad user id";
      } else if (u == v) {
        reason = "self-loop";
      } else if (u > UINT32_MAX || v > UINT32_MAX) {
        reason = "user id out of range";
      } else {
        const uint64_t key = (static_cast<uint64_t>(std::min(u, v)) << 32) |
                             static_cast<uint64_t>(std::max(u, v));
        if (!seen.insert(key).second) reason = "duplicate edge";
      }
      if (reason != nullptr) {
        TCSS_RETURN_IF_ERROR(
            bad.Add("friends.csv", lineno, reason, line, &report->bad_edges));
        continue;
      }
      edges.emplace_back(u, v);
      max_user = std::max({max_user, u, v});
    }
  }

  TCSS_RETURN_IF_ERROR(bad.Flush());
  report->quarantine_path = bad.path();

  const size_t num_users = raw.empty() && edges.empty() ? 0 : max_user + 1;
  SocialGraph social(num_users);
  for (const auto& [u, v] : edges) {
    TCSS_RETURN_IF_ERROR(social.AddEdge(static_cast<uint32_t>(u),
                                        static_cast<uint32_t>(v)));
  }
  TCSS_RETURN_IF_ERROR(social.Finalize());
  Dataset out(num_users, std::move(pois), std::move(social));
  for (const auto& r : raw) {
    TCSS_RETURN_IF_ERROR(
        out.AddCheckIn(static_cast<uint32_t>(r.user), r.poi, r.ts));
  }
  report->pois_loaded = out.num_pois();
  report->checkins_loaded = out.num_checkins();
  report->edges_loaded = out.social().num_edges();
  return out;
}

Result<Dataset> LoadDatasetCsv(const std::string& dir) {
  return LoadDatasetCsv(dir, CsvLoadOptions(), nullptr);
}

}  // namespace tcss
