#include "data/split.h"

#include <algorithm>

#include "common/rng.h"

namespace tcss {

TrainTestSplit SplitCheckins(const Dataset& data, double train_fraction,
                             uint64_t seed) {
  Rng rng(seed);
  TrainTestSplit out;
  // Group event indices per user so we can guarantee train coverage.
  std::vector<std::vector<size_t>> per_user(data.num_users());
  const auto& events = data.checkins();
  for (size_t idx = 0; idx < events.size(); ++idx) {
    per_user[events[idx].user].push_back(idx);
  }
  for (auto& idxs : per_user) {
    if (idxs.empty()) continue;
    rng.Shuffle(&idxs);
    // At least one event stays in train for each active user.
    size_t n_train = static_cast<size_t>(
        std::max<double>(1.0, train_fraction * static_cast<double>(idxs.size())));
    n_train = std::min(n_train, idxs.size());
    for (size_t t = 0; t < idxs.size(); ++t) {
      if (t < n_train) {
        out.train.push_back(events[idxs[t]]);
      } else {
        out.test.push_back(events[idxs[t]]);
      }
    }
  }
  return out;
}

}  // namespace tcss
