#include "data/time_binning.h"

namespace tcss {
namespace {

// Days from 1970-01-01 to year-month-day (Howard Hinnant's algorithms).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);       // [0,399]
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d) - 1u;                               // [0,365]
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;   // [0,146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0,146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;     // [0,399]
  const int64_t yr = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0,365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0,11]
  *d = doy - (153 * mp + 2) / 5 + 1;                             // [1,31]
  *m = mp + (mp < 10 ? 3 : -9);                                  // [1,12]
  *y = static_cast<int>(yr + (*m <= 2));
}

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DayOfYear(int y, int m, int d) {
  static const int kCum[12] = {0,   31,  59,  90,  120, 151,
                               181, 212, 243, 273, 304, 334};
  int doy = kCum[m - 1] + d - 1;
  if (m > 2 && IsLeap(y)) ++doy;
  return doy;
}

// Floor division/modulo for possibly-negative timestamps.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

size_t NumBins(TimeGranularity g) {
  switch (g) {
    case TimeGranularity::kMonthOfYear:
      return 12;
    case TimeGranularity::kWeekOfYear:
      return 53;
    case TimeGranularity::kHourOfDay:
      return 24;
  }
  return 12;
}

const char* GranularityName(TimeGranularity g) {
  switch (g) {
    case TimeGranularity::kMonthOfYear:
      return "month";
    case TimeGranularity::kWeekOfYear:
      return "week";
    case TimeGranularity::kHourOfDay:
      return "hour";
  }
  return "?";
}

CivilTime ToCivil(int64_t unix_seconds) {
  const int64_t days = FloorDiv(unix_seconds, 86400);
  int64_t secs = unix_seconds - days * 86400;  // [0, 86399]
  CivilTime c;
  unsigned m, d;
  CivilFromDays(days, &c.year, &m, &d);
  c.month = static_cast<int>(m);
  c.day = static_cast<int>(d);
  c.hour = static_cast<int>(secs / 3600);
  secs %= 3600;
  c.minute = static_cast<int>(secs / 60);
  c.second = static_cast<int>(secs % 60);
  c.day_of_year = DayOfYear(c.year, c.month, c.day);
  return c;
}

int64_t FromCivil(int year, int month, int day, int hour, int minute,
                  int second) {
  return DaysFromCivil(year, month, day) * 86400 + hour * 3600 + minute * 60 +
         second;
}

uint32_t TimeBin(int64_t unix_seconds, TimeGranularity g) {
  const CivilTime c = ToCivil(unix_seconds);
  switch (g) {
    case TimeGranularity::kMonthOfYear:
      return static_cast<uint32_t>(c.month - 1);
    case TimeGranularity::kWeekOfYear:
      return static_cast<uint32_t>(c.day_of_year / 7);  // 0..52
    case TimeGranularity::kHourOfDay:
      return static_cast<uint32_t>(c.hour);
  }
  return 0;
}

}  // namespace tcss
