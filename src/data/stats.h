#ifndef TCSS_DATA_STATS_H_
#define TCSS_DATA_STATS_H_

#include <array>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/time_binning.h"

namespace tcss {

/// Summary statistics of a value distribution.
struct DistributionStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  /// Gini coefficient in [0, 1): 0 = perfectly even, ->1 = concentrated.
  double gini = 0.0;
};

/// Computes DistributionStats over non-negative values (order-agnostic).
DistributionStats Summarize(std::vector<double> values);

/// Dataset profile: the quantities LBSN papers (including this one)
/// report about their data, computed from the events.
struct DatasetProfile {
  size_t num_users = 0;
  size_t num_pois = 0;
  size_t num_checkins = 0;
  double avg_friends = 0.0;

  DistributionStats checkins_per_user;
  DistributionStats visitors_per_poi;     ///< distinct users per POI
  DistributionStats distinct_pois_per_user;

  /// Fraction of check-in events that revisit a POI the user had already
  /// visited earlier (chronologically).
  double revisit_ratio = 0.0;

  /// Mean radius of gyration (km): RMS distance of a user's check-ins
  /// from their centroid - the standard mobility spread measure.
  double mean_radius_of_gyration_km = 0.0;

  /// Check-in counts per month (Jan..Dec) for each category.
  std::array<std::array<size_t, 12>, kNumCategories> monthly_by_category{};

  /// Density of the user x POI x month binary tensor.
  double tensor_density = 0.0;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Profiles a dataset. O(events log events).
DatasetProfile ProfileDataset(const Dataset& data);

}  // namespace tcss

#endif  // TCSS_DATA_STATS_H_
