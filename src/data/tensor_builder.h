#ifndef TCSS_DATA_TENSOR_BUILDER_H_
#define TCSS_DATA_TENSOR_BUILDER_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/time_binning.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// One labeled cell of the check-in tensor (used for train/test splits).
struct TensorCell {
  uint32_t i, j, k;
};

/// Builds the binary user x POI x time check-in tensor from check-in events
/// under the given granularity. Duplicate (i,j,k) cells are coalesced.
Result<SparseTensor> BuildCheckinTensor(const Dataset& data,
                                        TimeGranularity granularity);

/// Same, over an explicit subset of check-in events (e.g. the train split).
Result<SparseTensor> BuildCheckinTensor(const Dataset& data,
                                        const std::vector<CheckInEvent>& events,
                                        TimeGranularity granularity);

/// Maps check-in events to distinct tensor cells (deduplicated).
std::vector<TensorCell> EventsToCells(const std::vector<CheckInEvent>& events,
                                      TimeGranularity granularity);

}  // namespace tcss

#endif  // TCSS_DATA_TENSOR_BUILDER_H_
