#ifndef TCSS_DATA_CSV_IO_H_
#define TCSS_DATA_CSV_IO_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace tcss {

/// Serializes a dataset into a directory as three CSV files:
///   pois.csv      poi_id,lat,lon,category
///   checkins.csv  user_id,poi_id,unix_seconds
///   friends.csv   user_id,friend_id  (one row per undirected edge, u < v)
/// The directory must already exist; files are overwritten.
Status SaveDatasetCsv(const Dataset& data, const std::string& dir);

/// Loads a dataset previously written by SaveDatasetCsv (or hand-authored
/// in the same layout). `num_users` is inferred as 1 + max user id seen in
/// checkins.csv and friends.csv.
Result<Dataset> LoadDatasetCsv(const std::string& dir);

}  // namespace tcss

#endif  // TCSS_DATA_CSV_IO_H_
