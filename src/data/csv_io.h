#ifndef TCSS_DATA_CSV_IO_H_
#define TCSS_DATA_CSV_IO_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace tcss {

/// Serializes a dataset into a directory as three CSV files:
///   pois.csv      poi_id,lat,lon,category
///   checkins.csv  user_id,poi_id,unix_seconds
///   friends.csv   user_id,friend_id  (one row per undirected edge, u < v)
/// The directory must already exist; files are overwritten.
Status SaveDatasetCsv(const Dataset& data, const std::string& dir);

/// How LoadDatasetCsv treats malformed rows.
enum class CsvLoadMode {
  /// Any bad row fails the whole load with a line-numbered error.
  kStrict,
  /// Bad rows are quarantined to "<dir>/quarantine.csv" (line number +
  /// reason + raw row) and counted; the load succeeds with the good rows
  /// unless more than CsvLoadOptions::max_bad_rows are quarantined.
  kLenient,
};

struct CsvLoadOptions {
  CsvLoadMode mode = CsvLoadMode::kStrict;
  /// Lenient mode only: quarantining more rows than this fails the load
  /// (a dataset that is mostly garbage should not limp into serving).
  size_t max_bad_rows = 1000;
};

/// Outcome of a lenient (or strict) load.
struct LoadReport {
  size_t pois_loaded = 0;
  size_t checkins_loaded = 0;
  size_t edges_loaded = 0;
  size_t bad_pois = 0;
  size_t bad_checkins = 0;
  size_t bad_edges = 0;
  /// "<dir>/quarantine.csv" when at least one row was quarantined,
  /// empty otherwise.
  std::string quarantine_path;

  size_t bad_rows() const { return bad_pois + bad_checkins + bad_edges; }
};

/// Timestamp sanity bounds for checkins.csv (years 1 .. 9999). Values are
/// parsed as int64 directly — "1.5e9"-style floats and anything that would
/// lose precision or overflow are rejected, not truncated.
inline constexpr int64_t kMinCheckinTimestamp = -62135596800;  // 0001-01-01
inline constexpr int64_t kMaxCheckinTimestamp = 253402300799;  // 9999-12-31

/// Loads a dataset previously written by SaveDatasetCsv (or hand-authored
/// in the same layout). `num_users` is inferred as 1 + max user id seen in
/// checkins.csv and friends.csv.
///
/// Validation applied in *both* modes (strict errors, lenient quarantines):
///   pois.csv      4 fields, ids dense ascending (one row per POI, in
///                 order), lat in [-90, 90], lon in [-180, 180], known
///                 category
///   checkins.csv  3 fields, integer ids, integer timestamp within
///                 [kMinCheckinTimestamp, kMaxCheckinTimestamp], POI id
///                 must refer to a loaded (non-quarantined) POI
///   friends.csv   2 fields, integer ids, no self-loops, no duplicate
///                 edges (in either orientation)
///
/// In lenient mode a quarantined POI row leaves a hole: surviving POIs are
/// re-indexed densely and check-ins referencing the hole are quarantined
/// too ("references quarantined poi").
Result<Dataset> LoadDatasetCsv(const std::string& dir,
                               const CsvLoadOptions& opts,
                               LoadReport* report = nullptr);

/// Strict load with default options.
Result<Dataset> LoadDatasetCsv(const std::string& dir);

}  // namespace tcss

#endif  // TCSS_DATA_CSV_IO_H_
