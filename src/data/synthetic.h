#ifndef TCSS_DATA_SYNTHETIC_H_
#define TCSS_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "data/dataset.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Configuration of the synthetic LBSN simulator. The generator produces
/// the statistical structure that the paper's model exploits:
///  * POIs clustered in geographic "cities", with a Zipf popularity skew
///    and one of four categories;
///  * users anchored to a home city with Dirichlet-like category
///    preferences and a heavy-tailed activity level;
///  * a homophilous social graph: friendships form mostly within a city
///    and between preference-similar users (social homophily theory);
///  * check-ins whose month/hour distribution is category-seasonal
///    (outdoor peaks in summer, shopping around the holidays, food almost
///    uniform - matching the paper's category analysis) and whose POI
///    choice mixes revisits (Tobler locality), friends' POIs (homophily),
///    and popularity.
struct SyntheticConfig {
  std::string name = "synthetic";
  uint64_t seed = 7;

  size_t num_users = 600;
  size_t num_pois = 500;
  size_t num_cities = 6;
  /// Number of user archetypes (taste prototypes). Users of the same
  /// archetype share category preferences, which gives the ground-truth
  /// check-in tensor an approximately low-rank block structure - the
  /// property tensor completion exploits. Archetype preferences are
  /// perturbed per user by `pref_noise`.
  size_t num_archetypes = 6;
  double pref_noise = 0.15;
  /// Expected number of check-in events in total.
  size_t num_checkins = 40000;

  /// Mean number of friends per user.
  double mean_friends = 8.0;
  /// Probability that a friendship stays within the home city.
  double same_city_friend_prob = 0.8;

  /// Check-in generation mixture.
  double revisit_prob = 0.35;       ///< revisit a previously visited POI
  double friend_poi_prob = 0.30;    ///< adopt a POI visited by a friend
  /// Within a friend-influenced check-in: probability of going to a POI
  /// *near* the friend's POI instead of the exact same one (friends
  /// recommend the neighbourhood, not just the venue - Tobler's law).
  double friend_nearby_prob = 0.5;
  /// Radius (km) of "near the friend's POI".
  double friend_nearby_km = 8.0;
  /// Remaining mass: popularity-weighted POI in (mostly) the home city.
  double travel_prob = 0.08;        ///< explore outside the home city

  /// Zipf exponent of POI popularity.
  double popularity_zipf = 0.9;
  /// Stddev (degrees) of POI scatter around its city center.
  double city_sigma_deg = 0.07;
  /// How strongly the month distribution follows the category season
  /// profile (0 = uniform months, 1 = full profile).
  double seasonality = 0.85;

  /// Year the simulated check-ins fall into.
  int year = 2011;
};

/// Named presets mirroring the character of the paper's four datasets
/// (scaled to single-core runtime; see DESIGN.md "Substitutions").
enum class SyntheticPreset {
  kGowallaLike,     ///< medium density, strong social signal
  kYelpLike,        ///< sparse (the paper reports the lowest scores here)
  kFoursquareLike,  ///< medium-dense, many check-ins
  kGmu5kLike,       ///< dense patterns-of-life simulation (~3% density)
};

/// Returns the config for a preset. `scale` in (0, 1] shrinks user/POI/
/// check-in counts proportionally for quick tests.
SyntheticConfig PresetConfig(SyntheticPreset preset, double scale = 1.0);

const char* PresetName(SyntheticPreset preset);

/// Generates a dataset. Deterministic given the config (including seed).
Result<Dataset> GenerateSyntheticLbsn(const SyntheticConfig& config);

/// Streamed, shard-addressable check-in tensor for the large-scale
/// regime (ROADMAP: "millions of users"). Unlike GenerateSyntheticLbsn —
/// which simulates a full LBSN with social graph and geography — this
/// produces only the tensor, with the two statistics that matter for
/// training-cost realism: a heavy-tailed (Pareto) per-user activity level
/// and a power-law POI popularity skew.
///
/// Every user's check-ins derive from an independent counter-based RNG
/// stream keyed by (seed, user), so any contiguous user range is
/// generatable on its own: a distributed worker materializes exactly its
/// row block, never the full tensor, and the concatenation of disjoint
/// slices equals the full generation entry-for-entry.
struct StreamedTensorConfig {
  uint64_t seed = 11;
  size_t num_users = 1'000'000;
  size_t num_pois = 20'000;
  size_t num_bins = 12;        ///< time bins (months)
  double mean_checkins = 24.0; ///< mean events per user
  /// Pareto tail index of per-user activity (smaller = heavier tail).
  /// Must be > 1 so the mean exists.
  double activity_tail = 1.8;
  /// POI popularity: event POI = floor(J * U^skew) for uniform U, so
  /// skew > 1 concentrates mass on low-index ("popular") POIs.
  double popularity_skew = 2.5;
  /// Hard cap on one user's events (bounds worst-case slice memory).
  size_t max_checkins_per_user = 4096;
};

/// Generates the tensor rows of users [user_begin, user_end), remapped to
/// local rows 0..(user_end-user_begin): the returned (finalized, binary)
/// tensor has dims (user_end - user_begin, num_pois, num_bins) — exactly
/// the slice a distributed worker owning that row block trains on.
/// GenerateStreamedSlice(cfg, 0, cfg.num_users) is the full tensor.
Result<SparseTensor> GenerateStreamedSlice(const StreamedTensorConfig& config,
                                           size_t user_begin,
                                           size_t user_end);

/// Chronological check-in stream with injected drift, for the streaming-
/// ingestion scenario (DESIGN.md §14): events come out sorted by
/// timestamp across one calendar year, and the data-generating process
/// changes as the year progresses, so a model frozen at any cutoff is
/// measurably wrong about what follows. Two drift mechanisms:
///
///  * POI popularity shift: each event's POI is drawn around a "popular
///    window" whose centre moves linearly through the catalogue over the
///    year (by `popularity_shift` x num_pois positions), so the head of
///    the popularity distribution in December is a different set of POIs
///    than in January;
///  * user migration: a `migration_prob` fraction of users abandons
///    their home POI block mid-year for a new one on the far side of the
///    catalogue — their post-migration check-ins look nothing like their
///    history.
///
/// Deterministic given the config: one sequential seeded stream in time
/// order. The returned dataset's POIs sit on a geographic grid (valid
/// locations, cycling categories) so it feeds every downstream consumer
/// (tensor builder, geo fences, serving).
struct DriftStreamConfig {
  uint64_t seed = 17;
  size_t num_users = 400;
  size_t num_pois = 300;
  size_t num_events = 20000;
  int year = 2012;
  /// How far (as a fraction of the catalogue) the popular window's centre
  /// travels over the year. 0 = stationary popularity.
  double popularity_shift = 0.6;
  /// Width of the popular window as a fraction of the catalogue.
  double popularity_width = 0.15;
  /// Probability an event draws from the global popular window instead of
  /// the user's own home block.
  double popular_prob = 0.45;
  /// Fraction of users that migrate to a new home block mid-year.
  double migration_prob = 0.35;
  /// Width of a user's home block as a fraction of the catalogue.
  double home_width = 0.08;
};

Result<Dataset> GenerateDriftStream(const DriftStreamConfig& config);

}  // namespace tcss

#endif  // TCSS_DATA_SYNTHETIC_H_
