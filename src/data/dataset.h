#ifndef TCSS_DATA_DATASET_H_
#define TCSS_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/geo_point.h"
#include "graph/social_graph.h"

namespace tcss {

/// POI categories used throughout the experiments (matching the Gowalla
/// category analysis of the paper).
enum class PoiCategory : int {
  kShopping = 0,
  kEntertainment = 1,
  kFood = 2,
  kOutdoor = 3,
};
inline constexpr int kNumCategories = 4;

/// Human-readable category name ("shopping", ...).
const char* CategoryName(PoiCategory c);

/// A point of interest: location plus category.
struct Poi {
  GeoPoint location;
  PoiCategory category = PoiCategory::kShopping;
};

/// A single check-in event. `timestamp` is Unix seconds (UTC).
struct CheckInEvent {
  uint32_t user;
  uint32_t poi;
  int64_t timestamp;
};

/// An LBSN dataset: users (implicit 0..num_users-1), POIs with geolocation
/// and category, check-in events, and the friendship graph.
class Dataset {
 public:
  Dataset() = default;
  Dataset(size_t num_users, std::vector<Poi> pois, SocialGraph social)
      : num_users_(num_users), pois_(std::move(pois)),
        social_(std::move(social)) {}

  size_t num_users() const { return num_users_; }
  size_t num_pois() const { return pois_.size(); }
  size_t num_checkins() const { return checkins_.size(); }

  const std::vector<Poi>& pois() const { return pois_; }
  const Poi& poi(uint32_t j) const { return pois_[j]; }
  const SocialGraph& social() const { return social_; }
  const std::vector<CheckInEvent>& checkins() const { return checkins_; }

  Status AddCheckIn(uint32_t user, uint32_t poi, int64_t timestamp);

  /// All POI locations, index-aligned with pois().
  std::vector<GeoPoint> PoiLocations() const;

  /// Restricts the dataset to POIs of one category: POIs are re-indexed
  /// densely, check-ins at other categories are dropped, the social graph
  /// is kept as-is (users keep their ids). This mirrors the paper's
  /// per-category experiments ("each tensor only involves one specific
  /// category of POIs").
  Dataset FilterByCategory(PoiCategory category) const;

  /// Per-user list of distinct visited POIs (sorted).
  std::vector<std::vector<uint32_t>> UserPoiSets() const;

  /// One-line summary for logs.
  std::string Summary() const;

 private:
  size_t num_users_ = 0;
  std::vector<Poi> pois_;
  SocialGraph social_;
  std::vector<CheckInEvent> checkins_;
};

}  // namespace tcss

#endif  // TCSS_DATA_DATASET_H_
