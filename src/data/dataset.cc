#include "data/dataset.h"

#include <algorithm>

#include "common/strings.h"

namespace tcss {

const char* CategoryName(PoiCategory c) {
  switch (c) {
    case PoiCategory::kShopping:
      return "shopping";
    case PoiCategory::kEntertainment:
      return "entertainment";
    case PoiCategory::kFood:
      return "food";
    case PoiCategory::kOutdoor:
      return "outdoor";
  }
  return "unknown";
}

Status Dataset::AddCheckIn(uint32_t user, uint32_t poi, int64_t timestamp) {
  if (user >= num_users_) {
    return Status::OutOfRange(
        StrFormat("check-in user %u >= %zu", user, num_users_));
  }
  if (poi >= pois_.size()) {
    return Status::OutOfRange(
        StrFormat("check-in poi %u >= %zu", poi, pois_.size()));
  }
  checkins_.push_back({user, poi, timestamp});
  return Status::OK();
}

std::vector<GeoPoint> Dataset::PoiLocations() const {
  std::vector<GeoPoint> locs(pois_.size());
  for (size_t j = 0; j < pois_.size(); ++j) locs[j] = pois_[j].location;
  return locs;
}

Dataset Dataset::FilterByCategory(PoiCategory category) const {
  std::vector<uint32_t> remap(pois_.size(), UINT32_MAX);
  std::vector<Poi> kept;
  for (uint32_t j = 0; j < pois_.size(); ++j) {
    if (pois_[j].category == category) {
      remap[j] = static_cast<uint32_t>(kept.size());
      kept.push_back(pois_[j]);
    }
  }
  // The social graph is shared structure; rebuild a copy with equal edges.
  SocialGraph social(num_users_);
  for (uint32_t u = 0; u < num_users_; ++u) {
    for (const uint32_t* p = social_.NeighborsBegin(u);
         p != social_.NeighborsEnd(u); ++p) {
      if (u < *p) (void)social.AddEdge(u, *p);
    }
  }
  (void)social.Finalize();
  Dataset out(num_users_, std::move(kept), std::move(social));
  for (const auto& c : checkins_) {
    if (remap[c.poi] != UINT32_MAX) {
      (void)out.AddCheckIn(c.user, remap[c.poi], c.timestamp);
    }
  }
  return out;
}

std::vector<std::vector<uint32_t>> Dataset::UserPoiSets() const {
  std::vector<std::vector<uint32_t>> sets(num_users_);
  for (const auto& c : checkins_) sets[c.user].push_back(c.poi);
  for (auto& s : sets) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }
  return sets;
}

std::string Dataset::Summary() const {
  return StrFormat(
      "Dataset{users=%zu pois=%zu checkins=%zu friends_avg_deg=%.2f}",
      num_users_, pois_.size(), checkins_.size(), social_.AverageDegree());
}

}  // namespace tcss
