#include "data/tensor_builder.h"

#include <algorithm>

namespace tcss {

Result<SparseTensor> BuildCheckinTensor(const Dataset& data,
                                        const std::vector<CheckInEvent>& events,
                                        TimeGranularity granularity) {
  SparseTensor t(data.num_users(), data.num_pois(), NumBins(granularity));
  for (const auto& e : events) {
    TCSS_RETURN_IF_ERROR(t.Add(e.user, e.poi, TimeBin(e.timestamp, granularity)));
  }
  TCSS_RETURN_IF_ERROR(t.Finalize(/*binary=*/true));
  return t;
}

Result<SparseTensor> BuildCheckinTensor(const Dataset& data,
                                        TimeGranularity granularity) {
  return BuildCheckinTensor(data, data.checkins(), granularity);
}

std::vector<TensorCell> EventsToCells(const std::vector<CheckInEvent>& events,
                                      TimeGranularity granularity) {
  std::vector<TensorCell> cells;
  cells.reserve(events.size());
  for (const auto& e : events) {
    cells.push_back({e.user, e.poi, TimeBin(e.timestamp, granularity)});
  }
  std::sort(cells.begin(), cells.end(),
            [](const TensorCell& a, const TensorCell& b) {
              if (a.i != b.i) return a.i < b.i;
              if (a.j != b.j) return a.j < b.j;
              return a.k < b.k;
            });
  cells.erase(std::unique(cells.begin(), cells.end(),
                          [](const TensorCell& a, const TensorCell& b) {
                            return a.i == b.i && a.j == b.j && a.k == b.k;
                          }),
              cells.end());
  return cells;
}

}  // namespace tcss
