#ifndef TCSS_DATA_TIME_BINNING_H_
#define TCSS_DATA_TIME_BINNING_H_

#include <cstdint>
#include <string>

namespace tcss {

/// Time-dimension granularity of the check-in tensor (Section V-G of the
/// paper): month-of-year (K=12), week-of-year (K=53), or hour-of-day
/// (K=24).
enum class TimeGranularity { kMonthOfYear, kWeekOfYear, kHourOfDay };

/// Number of bins K for a granularity.
size_t NumBins(TimeGranularity g);

/// "month" / "week" / "hour".
const char* GranularityName(TimeGranularity g);

/// Broken-down UTC time, computed without libc (locale/TZ independent).
struct CivilTime {
  int year;
  int month;        ///< 1..12
  int day;          ///< 1..31
  int hour;         ///< 0..23
  int minute;       ///< 0..59
  int second;       ///< 0..59
  int day_of_year;  ///< 0..365
};

/// Converts Unix seconds (UTC) to civil time. Valid for the full int64
/// second range of the proleptic Gregorian calendar.
CivilTime ToCivil(int64_t unix_seconds);

/// Unix seconds for a civil UTC date-time.
int64_t FromCivil(int year, int month, int day, int hour = 0, int minute = 0,
                  int second = 0);

/// Bin index k of a timestamp under granularity g:
///   month: 0..11 (Feb -> 1, per the paper's example)
///   week:  0..52 (day_of_year / 7)
///   hour:  0..23 (22:00 -> 21 in the paper's prose is an off-by-one in the
///          text; we use the conventional hour index 22 -> 22).
uint32_t TimeBin(int64_t unix_seconds, TimeGranularity g);

}  // namespace tcss

#endif  // TCSS_DATA_TIME_BINNING_H_
