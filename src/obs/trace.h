#ifndef TCSS_OBS_TRACE_H_
#define TCSS_OBS_TRACE_H_

#include <string>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace tcss {
namespace obs {

/// RAII stage timer: samples elapsed milliseconds into a Histogram when it
/// leaves scope (or at the explicit StopAndRecordMs). A null histogram
/// makes it inert, so call sites can pass a conditionally-resolved metric.
///
///   {
///     ScopedTimer t(registry->GetHistogram("train.stage.loss_ms"));
///     loss = ComputeLoss(...);
///   }  // records here
///
/// The timer only *reads* the clock and writes a metric — it never feeds
/// anything back into the computation it wraps (determinism contract,
/// DESIGN.md §8).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {}
  ~ScopedTimer() { StopAndRecordMs(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records the sample now and returns the elapsed milliseconds; the
  /// destructor then records nothing. Idempotent (later calls return the
  /// first reading without re-recording).
  double StopAndRecordMs();

 private:
  Histogram* hist_;
  Stopwatch sw_;
  bool done_ = false;
  double elapsed_ms_ = 0.0;
};

/// Shorthand span handle: one lookup in the global registry per call.
/// Prefer caching the Histogram* at the call site in hot loops.
Histogram* StageHistogram(const std::string& name);

}  // namespace obs
}  // namespace tcss

#endif  // TCSS_OBS_TRACE_H_
