#ifndef TCSS_OBS_METRICS_H_
#define TCSS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace tcss {

class Env;

namespace obs {

/// Number of per-thread shards inside every Counter/Histogram. Threads hash
/// to a shard, so hot-path increments from the pool workers land on
/// different cache lines and never contend on a single atomic.
inline constexpr size_t kMetricShards = 16;

/// Process-wide kill switch. When disabled, Add/Set/Record are no-ops (one
/// relaxed atomic load); reads (Value/Snapshot) still work. Metrics never
/// feed back into computation, so flipping this must not change any
/// trained bytes — tests/determinism_test.cc proves it.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

/// Monotonically increasing event count. Increments go to a per-thread
/// shard (relaxed atomic, cache-line padded); Value() sums the shards, so
/// a concurrent read sees some valid partial ordering of the increments.
class Counter {
 public:
  void Add(uint64_t n = 1);
  void Increment() { Add(1); }

  /// Sum over all shards.
  uint64_t Value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-written instantaneous value (loss, LR, queue depth).
class Gauge {
 public:
  void Set(double value);
  double Value() const;

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot;

/// Log-bucketed value distribution with exact count/sum/min/max.
///
/// Buckets grow geometrically by 2^(1/4) (~19% resolution) from kMinValue;
/// bucket 0 catches everything at or below kMinValue and the last bucket
/// catches everything beyond the covered range. Quantiles are read from the
/// bucket boundaries and clamped to the exact observed [min, max], so a
/// single-sample histogram reports that sample exactly and p100 == max
/// always.
///
/// Thread safety: Record() locks one of kMetricShards per-thread shards
/// (uncontended unless two threads hash alike); Snapshot() locks each shard
/// in turn and merges them in ascending shard order.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 160;
  static constexpr size_t kSubBucketsPerOctave = 4;
  static constexpr double kMinValue = 1e-6;

  /// Records one sample. NaN and values <= kMinValue land in bucket 0
  /// (count/sum/min/max still see the raw value for non-NaN input).
  void Record(double value);

  /// Merged view over all shards; `name` is left empty (the registry fills
  /// it in for registered histograms).
  HistogramSnapshot Snapshot() const;

  /// Bucket index for a value; depends only on the value.
  static size_t BucketIndex(double value);

  /// Inclusive upper bound of bucket `index` (kMinValue for bucket 0).
  static double BucketUpperBound(size_t index);

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<uint64_t, kNumBuckets> buckets{};
  };
  std::array<Shard, kMetricShards> shards_;
};

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty
  double max = 0.0;  ///< 0 when empty
  std::vector<uint64_t> buckets;  ///< size Histogram::kNumBuckets

  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th sample, clamped to the exact [min, max].
  /// Returns 0 for an empty histogram.
  double Quantile(double q) const;

  /// Folds `other` into this snapshot (same fixed bucket layout).
  void Merge(const HistogramSnapshot& other);
};

/// Point-in-time copy of every registered metric, name-sorted.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Machine-readable form: counters/gauges as name->value objects,
  /// histograms with count/sum/min/max, p50/p90/p95/p99, and the non-empty
  /// buckets as {"le": upper_bound, "n": count} pairs.
  std::string ToJson() const;
};

/// Named metric directory. Get* registers on first use and returns a
/// pointer that stays valid for the registry's lifetime, so hot paths look
/// a metric up once and then increment lock-free. Re-requesting a name
/// with a different kind is a programming error (TCSS_CHECK).
///
/// The process-global registry (Global()) is what the trainer, thread pool
/// and serving layer record into; tests that need isolation construct
/// their own instance.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Process-wide registry; never destroyed (safe from static dtors).
  static MetricRegistry* Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Crash-safe JSON export of Snapshot() through the Env layer
  /// (AtomicWriteFile, so a reader never sees a torn snapshot and
  /// FaultInjectionEnv covers the write path).
  Status DumpJson(Env* env, const std::string& path) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetOrCreate(const std::string& name, Kind kind);

  mutable std::mutex mu_;  ///< guards metrics_ (map shape only)
  std::map<std::string, Entry> metrics_;
};

/// DumpJson on the global registry — the `--metrics-out` implementation.
Status DumpMetricsJson(Env* env, const std::string& path);

}  // namespace obs
}  // namespace tcss

#endif  // TCSS_OBS_METRICS_H_
