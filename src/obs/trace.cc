#include "obs/trace.h"

namespace tcss {
namespace obs {

double ScopedTimer::StopAndRecordMs() {
  if (done_) return elapsed_ms_;
  done_ = true;
  elapsed_ms_ = sw_.ElapsedMillis();
  if (hist_ != nullptr) hist_->Record(elapsed_ms_);
  return elapsed_ms_;
}

Histogram* StageHistogram(const std::string& name) {
  return MetricRegistry::Global()->GetHistogram(name);
}

}  // namespace obs
}  // namespace tcss
