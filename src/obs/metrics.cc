#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <thread>

#include "common/env.h"
#include "common/logging.h"
#include "common/strings.h"

namespace tcss {
namespace obs {
namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Stable per-thread shard index; hashing the thread id spreads the pool
/// workers across the shards without any registration protocol.
size_t ThisThreadShard() {
  thread_local const size_t shard =
      std::hash<std::thread::id>()(std::this_thread::get_id()) %
      kMetricShards;
  return shard;
}

/// Minimal JSON string escaping for metric names (which are internal
/// identifiers, but a stray quote must not corrupt the document).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// %.17g keeps doubles round-trippable; trims to a short form when exact.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no Inf/NaN
  std::string s = StrFormat("%.17g", v);
  const std::string shorter = StrFormat("%g", v);
  double back = 0.0;
  if (ParseDouble(shorter, &back) && back == v) return shorter;
  return s;
}

}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

// --- Counter --------------------------------------------------------------

void Counter::Add(uint64_t n) {
  if (!MetricsEnabled()) return;
  shards_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

// --- Gauge ----------------------------------------------------------------

void Gauge::Set(double value) {
  if (!MetricsEnabled()) return;
  value_.store(value, std::memory_order_relaxed);
}

double Gauge::Value() const {
  return value_.load(std::memory_order_relaxed);
}

// --- Histogram ------------------------------------------------------------

size_t Histogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;  // NaN and <= kMinValue
  const double octaves = std::log2(value / kMinValue);
  const size_t idx =
      1 + static_cast<size_t>(octaves * kSubBucketsPerOctave);
  return std::min(idx, kNumBuckets - 1);
}

double Histogram::BucketUpperBound(size_t index) {
  if (index == 0) return kMinValue;
  return kMinValue *
         std::exp2(static_cast<double>(index) /
                   static_cast<double>(kSubBucketsPerOctave));
}

void Histogram::Record(double value) {
  if (!MetricsEnabled()) return;
  const size_t idx = BucketIndex(value);
  Shard& shard = shards_[ThisThreadShard()];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (!std::isnan(value)) {
    if (shard.count == 0 || value < shard.min) shard.min = value;
    if (shard.count == 0 || value > shard.max) shard.max = value;
    shard.sum += value;
  }
  ++shard.count;
  ++shard.buckets[idx];
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kNumBuckets, 0);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.count == 0) continue;
    if (snap.count == 0 || shard.min < snap.min) snap.min = shard.min;
    if (snap.count == 0 || shard.max > snap.max) snap.max = shard.max;
    snap.count += shard.count;
    snap.sum += shard.sum;
    for (size_t b = 0; b < kNumBuckets; ++b) {
      snap.buckets[b] += shard.buckets[b];
    }
  }
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  rank = std::clamp<uint64_t>(rank, 1, count);
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // The overflow bucket has no meaningful upper bound — its samples
      // lie anywhere in (last covered bound, max], so report the exact
      // max. Every other bucket's bound is clamped into [min, max].
      if (b + 1 == buckets.size()) return max;
      return std::clamp(Histogram::BucketUpperBound(b), min, max);
    }
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (buckets.empty()) buckets.assign(Histogram::kNumBuckets, 0);
  if (count == 0 || other.min < min) min = other.min;
  if (count == 0 || other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
  const size_t n = std::min(buckets.size(), other.buckets.size());
  for (size_t b = 0; b < n; ++b) buckets[b] += other.buckets[b];
}

// --- MetricsSnapshot ------------------------------------------------------

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"schema\": \"tcss.metrics.v1\",\n";
  out += "  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += StrFormat("%s\n    \"%s\": %llu", i == 0 ? "" : ",",
                     JsonEscape(counters[i].name).c_str(),
                     static_cast<unsigned long long>(counters[i].value));
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += StrFormat("%s\n    \"%s\": %s", i == 0 ? "" : ",",
                     JsonEscape(gauges[i].name).c_str(),
                     JsonNumber(gauges[i].value).c_str());
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += StrFormat(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %s, \"min\": %s, "
        "\"max\": %s, \"p50\": %s, \"p90\": %s, \"p95\": %s, \"p99\": %s, "
        "\"buckets\": [",
        i == 0 ? "" : ",", JsonEscape(h.name).c_str(),
        static_cast<unsigned long long>(h.count), JsonNumber(h.sum).c_str(),
        JsonNumber(h.min).c_str(), JsonNumber(h.max).c_str(),
        JsonNumber(h.Quantile(0.50)).c_str(),
        JsonNumber(h.Quantile(0.90)).c_str(),
        JsonNumber(h.Quantile(0.95)).c_str(),
        JsonNumber(h.Quantile(0.99)).c_str());
    bool first = true;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      out += StrFormat(
          "%s{\"le\": %s, \"n\": %llu}", first ? "" : ", ",
          JsonNumber(Histogram::BucketUpperBound(b)).c_str(),
          static_cast<unsigned long long>(h.buckets[b]));
      first = false;
    }
    out += "]}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

// --- MetricRegistry -------------------------------------------------------

MetricRegistry* MetricRegistry::Global() {
  // Leaked on purpose: the thread pool and serving layer may record from
  // worker threads during static destruction of other objects.
  static MetricRegistry* const registry = new MetricRegistry();
  return registry;
}

MetricRegistry::Entry* MetricRegistry::GetOrCreate(const std::string& name,
                                                   Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = metrics_.emplace(name, std::move(entry)).first;
  }
  TCSS_CHECK(it->second.kind == kind)
      << "metric '" << name << "' already registered with a different kind";
  return &it->second;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  return GetOrCreate(name, Kind::kCounter)->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  return GetOrCreate(name, Kind::kGauge)->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  return GetOrCreate(name, Kind::kHistogram)->histogram.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters.push_back({name, entry.counter->Value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({name, entry.gauge->Value()});
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h = entry.histogram->Snapshot();
        h.name = name;
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snap;
}

Status MetricRegistry::DumpJson(Env* env, const std::string& path) const {
  if (env == nullptr) return Status::InvalidArgument("DumpJson: null env");
  return AtomicWriteFile(env, path, Snapshot().ToJson());
}

Status DumpMetricsJson(Env* env, const std::string& path) {
  return MetricRegistry::Global()->DumpJson(env, path);
}

}  // namespace obs
}  // namespace tcss
