#include "proptest/oracles.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "geo/haversine.h"
#include "linalg/cholesky.h"

namespace tcss {
namespace proptest {

namespace {

/// Independent re-derivation of the model prediction (the oracle must not
/// trust FactorModel::Predict).
double PredictRef(const FactorModel& m, uint32_t i, uint32_t j, uint32_t k) {
  double s = 0.0;
  for (size_t t = 0; t < m.rank(); ++t) {
    s += m.h[t] * m.u1(i, t) * m.u2(j, t) * m.u3(k, t);
  }
  return s;
}

}  // namespace

double OracleDenseLoss(const FactorModel& model, const SparseTensor& x,
                       double w_pos, double w_neg, FactorGrads* grads) {
  const size_t I = x.dim_i();
  const size_t J = x.dim_j();
  const size_t K = x.dim_k();
  const size_t r = model.rank();
  double loss = 0.0;
  for (uint32_t i = 0; i < I; ++i) {
    for (uint32_t j = 0; j < J; ++j) {
      for (uint32_t k = 0; k < K; ++k) {
        const double value = x.Get(i, j, k);
        const double w = (value != 0.0) ? w_pos : w_neg;
        const double y = PredictRef(model, i, j, k);
        const double d = y - value;
        loss += w * d * d;
        if (grads != nullptr) {
          const double g = 2.0 * w * d;  // dL/dy at this cell
          for (size_t t = 0; t < r; ++t) {
            grads->u1(i, t) += g * model.h[t] * model.u2(j, t) * model.u3(k, t);
            grads->u2(j, t) += g * model.h[t] * model.u1(i, t) * model.u3(k, t);
            grads->u3(k, t) += g * model.h[t] * model.u1(i, t) * model.u2(j, t);
            grads->h[t] += g * model.u1(i, t) * model.u2(j, t) * model.u3(k, t);
          }
        }
      }
    }
  }
  return loss;
}

Matrix OracleMatMul(const Matrix& a, const Matrix& b) {
  TCSS_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      out(i, j) = s;
    }
  }
  return out;
}

Matrix OracleMatTMul(const Matrix& a, const Matrix& b) {
  TCSS_CHECK(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  for (size_t i = 0; i < a.cols(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (size_t k = 0; k < a.rows(); ++k) s += a(k, i) * b(k, j);
      out(i, j) = s;
    }
  }
  return out;
}

Matrix OracleGram(const Matrix& a) { return OracleMatTMul(a, a); }

Matrix OracleMttkrp(const SparseTensor& x, const Matrix factors[3],
                    int mode) {
  TCSS_CHECK(mode >= 0 && mode <= 2);
  const size_t r = factors[(mode + 1) % 3].cols();
  Matrix out(x.dim(mode), r);
  const size_t I = x.dim_i();
  const size_t J = x.dim_j();
  const size_t K = x.dim_k();
  for (uint32_t i = 0; i < I; ++i) {
    for (uint32_t j = 0; j < J; ++j) {
      for (uint32_t k = 0; k < K; ++k) {
        const double value = x.Get(i, j, k);
        if (value == 0.0) continue;
        const uint32_t idx[3] = {i, j, k};
        const Matrix& fa = factors[(mode + 1) % 3];
        const Matrix& fb = factors[(mode + 2) % 3];
        for (size_t t = 0; t < r; ++t) {
          out(idx[mode], t) += value * fa(idx[(mode + 1) % 3], t) *
                               fb(idx[(mode + 2) % 3], t);
        }
      }
    }
  }
  return out;
}

double OracleHausdorffUser(const SocialHausdorffLoss& loss,
                           const Dataset& data, const FactorModel& model,
                           uint32_t user) {
  const std::vector<uint32_t>& s_set = loss.candidate_pool(user);
  const std::vector<uint32_t>& n_set = loss.friend_pois(user);
  if (s_set.empty() || n_set.empty()) return 0.0;
  const std::vector<double>& e = loss.entropy_weights();
  const double d_max = loss.d_max();
  const double alpha = loss.config().alpha;
  const double epsilon = loss.config().epsilon;
  const size_t K = model.u3.rows();

  // Visit probabilities p_j = 1 - prod_k (1 - clamp(Xhat)).
  std::vector<double> p(s_set.size());
  for (size_t a = 0; a < s_set.size(); ++a) {
    double prod = 1.0;
    for (size_t k = 0; k < K; ++k) {
      double y = PredictRef(model, user, s_set[a], static_cast<uint32_t>(k));
      y = std::clamp(y, 0.0, 1.0 - kHausdorffCapMargin);
      prod *= 1.0 - y;
    }
    p[a] = 1.0 - prod;
  }

  // Term 1: sum_j p e_j dmin_j / (sum_j p + eps), dmin capped at d_max.
  double num = 0.0;
  double den = epsilon;
  for (size_t a = 0; a < s_set.size(); ++a) {
    double dmin = d_max;
    for (uint32_t jp : n_set) {
      dmin = std::min(dmin, HaversineKm(data.poi(s_set[a]).location,
                                        data.poi(jp).location));
    }
    num += p[a] * e[s_set[a]] * dmin;
    den += p[a];
  }
  const double term1 = num / den;

  // Term 2: (1/|N|) sum_{j'} e_j' M_alpha over f = p d + (1-p) d_max.
  double term2 = 0.0;
  for (uint32_t jp : n_set) {
    double mean = 0.0;
    for (size_t a = 0; a < s_set.size(); ++a) {
      const double d = HaversineKm(data.poi(s_set[a]).location,
                                   data.poi(jp).location);
      const double f =
          std::max(p[a] * d + (1.0 - p[a]) * d_max, kHausdorffSoftMinFloor);
      mean += std::pow(f, alpha);
    }
    mean /= static_cast<double>(s_set.size());
    term2 += e[jp] * std::pow(mean, 1.0 / alpha);
  }
  term2 /= static_cast<double>(n_set.size());
  return term1 + term2;
}

std::vector<Recommendation> OracleTopK(const Recommender& model,
                                       uint32_t user, uint32_t time_bin,
                                       size_t num_pois,
                                       const TopKOptions& opts,
                                       const SparseTensor* train) {
  if (opts.exclude_visited && train == nullptr) return {};
  std::vector<uint8_t> excluded(num_pois, 0);
  if (opts.exclude_visited) {
    for (const TensorEntry& entry : train->entries()) {
      if (entry.i == user && entry.j < num_pois) excluded[entry.j] = 1;
    }
  }
  std::vector<uint8_t> allowed(num_pois, opts.candidates.empty() ? 1 : 0);
  for (uint32_t j : opts.candidates) {
    if (j < num_pois) allowed[j] = 1;
  }
  std::vector<Recommendation> scored;
  for (uint32_t j = 0; j < num_pois; ++j) {
    if (!allowed[j] || excluded[j]) continue;
    scored.push_back({j, model.Score(user, j, time_bin)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Recommendation& a, const Recommendation& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.poi < b.poi;
            });
  if (scored.size() > std::min(opts.k, num_pois)) {
    scored.resize(std::min(opts.k, num_pois));
  }
  return scored;
}

Result<std::vector<double>> OracleFoldIn(
    const FactorModel& model, const std::vector<TensorCell>& observations,
    const FoldInOptions& opts) {
  const size_t r = model.rank();
  if (r == 0) return Status::FailedPrecondition("OracleFoldIn: empty model");
  const size_t J = model.u2.rows();
  const size_t K = model.u3.rows();
  if (J == 0 || K == 0) {
    return Status::FailedPrecondition("OracleFoldIn: empty POI/time factors");
  }
  // Observation membership on the grid.
  std::vector<uint8_t> observed(J * K, 0);
  for (const TensorCell& cell : observations) {
    if (cell.j >= J || cell.k >= K) {
      return Status::OutOfRange("OracleFoldIn: observation outside model");
    }
    observed[cell.j * K + cell.k] = 1;
  }
  // Normal equations of the weighted ridge LS, cell by dense cell:
  //   lhs = sum_{j,k} w_{jk} phi phi^T,  rhs = sum_{obs} w+ phi,
  // with phi = h ⊙ U2_j ⊙ U3_k and w_{jk} = w+ on observed cells, w-
  // elsewhere.
  Matrix lhs(r, r);
  std::vector<double> rhs(r, 0.0);
  std::vector<double> phi(r);
  for (uint32_t j = 0; j < J; ++j) {
    for (uint32_t k = 0; k < K; ++k) {
      for (size_t t = 0; t < r; ++t) {
        phi[t] = model.h[t] * model.u2(j, t) * model.u3(k, t);
      }
      const bool obs = observed[j * K + k] != 0;
      const double w = obs ? opts.w_pos : opts.w_neg;
      for (size_t a = 0; a < r; ++a) {
        for (size_t b = 0; b < r; ++b) lhs(a, b) += w * phi[a] * phi[b];
        if (obs) rhs[a] += opts.w_pos * phi[a];
      }
    }
  }
  return CholeskySolve(lhs, rhs, opts.ridge);
}

double RelDiff(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) / scale;
}

double RelMaxDiff(const Matrix& a, const Matrix& b) {
  TCSS_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, RelDiff(a.data()[i], b.data()[i]));
  }
  return m;
}

double RelMaxDiff(const FactorGrads& a, const FactorGrads& b) {
  double m = RelMaxDiff(a.u1, b.u1);
  m = std::max(m, RelMaxDiff(a.u2, b.u2));
  m = std::max(m, RelMaxDiff(a.u3, b.u3));
  TCSS_CHECK(a.h.size() == b.h.size());
  for (size_t t = 0; t < a.h.size(); ++t) {
    m = std::max(m, RelDiff(a.h[t], b.h[t]));
  }
  return m;
}

FactorGrads CentralDifferenceGrads(
    const std::function<double(const FactorModel&)>& f, FactorModel model,
    double step) {
  FactorGrads grads(model);
  auto diff = [&](double* param, double* grad) {
    const double saved = *param;
    *param = saved + step;
    const double up = f(model);
    *param = saved - step;
    const double down = f(model);
    *param = saved;
    *grad = (up - down) / (2.0 * step);
  };
  Matrix* factors[3] = {&model.u1, &model.u2, &model.u3};
  Matrix* grad_factors[3] = {&grads.u1, &grads.u2, &grads.u3};
  for (int m = 0; m < 3; ++m) {
    for (size_t i = 0; i < factors[m]->size(); ++i) {
      diff(factors[m]->data() + i, grad_factors[m]->data() + i);
    }
  }
  for (size_t t = 0; t < model.h.size(); ++t) {
    diff(&model.h[t], &grads.h[t]);
  }
  return grads;
}

}  // namespace proptest
}  // namespace tcss
