#ifndef TCSS_PROPTEST_ORACLES_H_
#define TCSS_PROPTEST_ORACLES_H_

#include <functional>
#include <vector>

#include "core/factor_model.h"
#include "core/fold_in.h"
#include "core/hausdorff_loss.h"
#include "core/recommend.h"
#include "core/tcss_config.h"
#include "data/dataset.h"
#include "eval/recommender.h"
#include "linalg/matrix.h"
#include "tensor/sparse_tensor.h"

namespace tcss {
namespace proptest {

/// Naive reference implementations ("oracles") of every optimized kernel
/// and loss in the stack. Each is written as the literal textbook
/// formula — no sorted-cursor tricks, no Gram rewrites, no caches — so a
/// property `optimized == oracle` genuinely checks the algebraic
/// equivalence the optimization claims (DESIGN.md §9). Oracles favour
/// obviousness over speed: costs are dense (O(I*J*K*r) etc.), which is
/// fine at property-test sizes.

// --- whole-data loss (Eq 14) ----------------------------------------------

/// Literal dense enumeration of Eq 14 over every cell of the I x J x K
/// grid, with membership via SparseTensor::Get. Accumulates analytic
/// gradients into `grads` when non-null (explicit per-cell partials, not
/// the shared AccumulateEntryGrad helper). O(I*J*K*(r + log nnz)).
double OracleDenseLoss(const FactorModel& model, const SparseTensor& x,
                       double w_pos, double w_neg, FactorGrads* grads);

// --- dense kernels --------------------------------------------------------

/// Triple-loop gemm out(i,j) = sum_k a(i,k) b(k,j), plain i-j-k dot
/// products.
Matrix OracleMatMul(const Matrix& a, const Matrix& b);

/// Triple-loop out(i,j) = sum_k a(k,i) b(k,j).
Matrix OracleMatTMul(const Matrix& a, const Matrix& b);

/// Triple-loop Gram a^T a.
Matrix OracleGram(const Matrix& a);

/// Entry-free MTTKRP: densifies X and contracts the full grid,
/// out(idx_mode, t) = sum over the other two modes of
/// X[i,j,k] * A(., t) * B(., t). O(I*J*K*r).
Matrix OracleMttkrp(const SparseTensor& x, const Matrix factors[3],
                    int mode);

// --- social Hausdorff head (Eq 12) ----------------------------------------

/// Brute-force social Hausdorff distance of one user: recomputes
/// probabilities, double-precision haversine distances (no float cache)
/// and the generalized-mean soft minimum via std::pow from the formulas
/// in hausdorff_loss.h. Reads the loss object only for its precomputed
/// sets (S, N, entropy weights, d_max).
double OracleHausdorffUser(const SocialHausdorffLoss& loss,
                           const Dataset& data, const FactorModel& model,
                           uint32_t user);

// --- recommendation -------------------------------------------------------

/// Full-sort top-k: scores every candidate, sorts by (score desc, poi
/// asc), returns the first k distinct POIs. Honors the TopKOptions
/// contract (null-train exclusion => empty, k clamp, out-of-range and
/// duplicate candidates dropped).
std::vector<Recommendation> OracleTopK(const Recommender& model,
                                       uint32_t user, uint32_t time_bin,
                                       size_t num_pois,
                                       const TopKOptions& opts,
                                       const SparseTensor* train = nullptr);

// --- fold-in --------------------------------------------------------------

/// Dense-grid fold-in: builds the ridge normal equations by looping every
/// (j, k) cell of the J x K grid (no Gram rewrite), O(J*K*r^2), and
/// solves them. FoldInUser must agree.
Result<std::vector<double>> OracleFoldIn(
    const FactorModel& model, const std::vector<TensorCell>& observations,
    const FoldInOptions& opts = FoldInOptions());

// --- numeric helpers ------------------------------------------------------

/// |a - b| / max(1, |a|, |b|): relative for large values, absolute near
/// zero.
double RelDiff(double a, double b);

/// Max RelDiff over entries; shapes must match.
double RelMaxDiff(const Matrix& a, const Matrix& b);

/// Max RelDiff over all four gradient blocks; shapes must match.
double RelMaxDiff(const FactorGrads& a, const FactorGrads& b);

/// Central-difference gradient of `f` with respect to every parameter of
/// `model` (u1, u2, u3, h), step size `step`. O(#params) evaluations of f.
FactorGrads CentralDifferenceGrads(
    const std::function<double(const FactorModel&)>& f, FactorModel model,
    double step);

}  // namespace proptest
}  // namespace tcss

#endif  // TCSS_PROPTEST_ORACLES_H_
