#ifndef TCSS_PROPTEST_GENERATORS_H_
#define TCSS_PROPTEST_GENERATORS_H_

#include <cstdint>

#include "common/rng.h"
#include "core/factor_model.h"
#include "data/dataset.h"
#include "tensor/sparse_tensor.h"

namespace tcss {
namespace proptest {

/// Composable random-input generators for the property harness. All are
/// deterministic given the Rng state and the size budget, and biased
/// toward adversarial shapes: empty modes, singleton dimensions,
/// duplicate-prone coordinates, empty tensors, isolated social-graph
/// nodes.

struct GenTensorOptions {
  bool binary = true;
  /// Allow a dimension of 0 (a mode with no indices — the tensor then has
  /// no cells at all). Disable for generators that must index into every
  /// mode (e.g. a user for fold-in).
  bool allow_empty_modes = true;
  /// Upper bound on dim_k, 0 = same budget as the other modes (the time
  /// mode is usually much smaller than users/POIs).
  uint32_t max_time_bins = 0;
};

/// Random finalized COO tensor. Dimensions are <= size (possibly 0 or 1),
/// nnz up to ~4*size with intentionally duplicate coordinates before
/// Finalize so coalescing paths are exercised. Binary tensors hold 1.0 in
/// every cell; real tensors hold values in [-2, 2] \ {0}.
SparseTensor GenSparseTensor(Rng* rng, uint32_t size,
                             const GenTensorOptions& opts = {});

/// Random dense factor model of the given shape: Gaussian factors
/// (stddev 0.5) and h in [-1, 1]. Predictions are unconstrained.
FactorModel GenFactorModel(Rng* rng, size_t dim_i, size_t dim_j,
                           size_t dim_k, size_t rank);

/// Factor model whose predictions are strictly inside (0, 1): factor
/// entries in [0.2, 0.8] and h in [0.5/r, 1.67/r]. Needed by losses that
/// clamp predictions to a probability range (SocialHausdorffLoss), where
/// central-difference gradient checks require the clamp to stay inactive.
FactorModel GenInteriorFactorModel(Rng* rng, size_t dim_i, size_t dim_j,
                                   size_t dim_k, size_t rank);

/// A dataset (POIs with geo coordinates and categories, social graph)
/// together with a matching binary train tensor: the full input of the
/// social-spatial loss head.
struct LbsnCase {
  Dataset data;
  SparseTensor train;  ///< num_users x num_pois x K, finalized binary
};

/// Random LBSN case with >= 1 user/POI/time bin; the social graph mixes
/// connected users and isolated ones, POIs are scattered globally so
/// haversine distances span orders of magnitude.
LbsnCase GenLbsnCase(Rng* rng, uint32_t size);

/// Random rank in [1, 1 + size/4] (kept small: oracle costs scale with
/// I*J*K*r).
size_t GenRank(Rng* rng, uint32_t size);

}  // namespace proptest
}  // namespace tcss

#endif  // TCSS_PROPTEST_GENERATORS_H_
