#ifndef TCSS_PROPTEST_PROP_H_
#define TCSS_PROPTEST_PROP_H_

#include <cstdint>
#include <functional>
#include <string>

namespace tcss {
namespace proptest {

/// Seeded property-testing framework (DESIGN.md §9). A property is a pair
/// (generator, predicate):
///
///   * the generator maps a 64-bit case seed and a size budget to an
///     arbitrary input value — same (seed, size) must always yield the
///     same value;
///   * the predicate checks the property and, on failure, explains the
///     counterexample through its out-string.
///
/// Prop::Check runs `n_cases` cases with SplitMix64-derived per-case
/// seeds. The size budget of a case is itself a pure function of the case
/// seed, so one 64-bit number pins the entire case. On the first failure
/// the input is shrunk by repeated size halving (regenerating from the
/// same seed at half the budget while the predicate still fails) and a
///
///   TCSS_PROPTEST_SEED=<seed>
///
/// repro line is printed: exporting that variable makes every Check in
/// the process replay exactly that case — same input, same shrink
/// sequence, same shrunk counterexample (combine with --gtest_filter to
/// isolate one property).

/// SplitMix64 finalizer: derives the seed of case `case_index` under
/// `run_seed`. Statistically independent streams for distinct indices.
uint64_t DeriveCaseSeed(uint64_t run_seed, uint64_t case_index);

/// Size budget of a case: in [1, max_size], pure function of the case
/// seed (biased toward small sizes so edge shapes are common).
uint32_t SizeForSeed(uint64_t case_seed, uint32_t max_size);

/// Reads TCSS_PROPTEST_SEED. Returns true and stores the value if the
/// variable is set to a valid unsigned decimal.
bool ReplaySeedFromEnv(uint64_t* seed);

struct PropOptions {
  /// Upper bound of the per-case size budget handed to the generator.
  uint32_t max_size = 24;
  /// Cap on halving rounds during shrinking (2^32 needs only 32).
  int max_shrink_rounds = 40;
  /// Base seed of the case-seed stream. Fixed by default so CI runs are
  /// reproducible; change it to explore a different corner of the space.
  uint64_t run_seed = 0x7c55'c0de'5eed'0001ULL;
};

struct PropReport {
  bool ok = true;
  int cases_run = 0;       ///< cases that passed
  uint64_t fail_seed = 0;  ///< case seed of the falsified case
  uint32_t fail_size = 0;  ///< size budget at which it first failed
  uint32_t shrunk_size = 0;  ///< size budget after shrinking
  std::string message;       ///< predicate message for the shrunk case
};

namespace internal {
/// Prints the FALSIFIED block with the TCSS_PROPTEST_SEED repro line.
void PrintFailure(const std::string& name, int case_index, int n_cases,
                  const PropReport& report);
}  // namespace internal

class Prop {
 public:
  template <typename T>
  using Gen = std::function<T(uint64_t seed, uint32_t size)>;
  template <typename T>
  using Pred = std::function<bool(const T& value, std::string* message)>;

  /// Runs the property over `n_cases` generated inputs; returns the first
  /// failure (shrunk) or an all-passed report. If TCSS_PROPTEST_SEED is
  /// set, replays exactly that single case instead.
  template <typename T>
  static PropReport Check(const std::string& name, int n_cases,
                          const Gen<T>& gen, const Pred<T>& pred,
                          const PropOptions& opts = PropOptions()) {
    uint64_t replay_seed = 0;
    if (ReplaySeedFromEnv(&replay_seed)) {
      return CheckCase(name, replay_seed, /*case_index=*/0, /*n_cases=*/1,
                       gen, pred, opts);
    }
    PropReport report;
    for (int c = 0; c < n_cases; ++c) {
      const uint64_t seed = DeriveCaseSeed(opts.run_seed, c);
      PropReport one = CheckCase(name, seed, c, n_cases, gen, pred, opts);
      if (!one.ok) {
        one.cases_run = report.cases_run;
        return one;
      }
      ++report.cases_run;
    }
    return report;
  }

  /// Runs (and on failure shrinks) the single case `case_seed`. Exposed so
  /// tests can verify that a repro seed regenerates the identical shrunk
  /// counterexample.
  template <typename T>
  static PropReport CheckCase(const std::string& name, uint64_t case_seed,
                              int case_index, int n_cases, const Gen<T>& gen,
                              const Pred<T>& pred,
                              const PropOptions& opts = PropOptions()) {
    PropReport report;
    const uint32_t size = SizeForSeed(case_seed, opts.max_size);
    std::string message;
    if (pred(gen(case_seed, size), &message)) {
      report.cases_run = 1;
      return report;
    }
    report.ok = false;
    report.fail_seed = case_seed;
    report.fail_size = size;
    // Shrink: regenerate from the same seed at half the budget while the
    // predicate still fails; stop at the first passing half (greedy) or 1.
    uint32_t current = size;
    for (int round = 0; current > 1 && round < opts.max_shrink_rounds;
         ++round) {
      const uint32_t half = current / 2;
      std::string half_message;
      if (pred(gen(case_seed, half), &half_message)) break;
      current = half;
      message = std::move(half_message);
    }
    report.shrunk_size = current;
    report.message = std::move(message);
    internal::PrintFailure(name, case_index, n_cases, report);
    return report;
  }
};

}  // namespace proptest
}  // namespace tcss

#endif  // TCSS_PROPTEST_PROP_H_
