#include "proptest/prop.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace tcss {
namespace proptest {

namespace {

/// SplitMix64 output finalizer.
uint64_t Mix64(uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

}  // namespace

uint64_t DeriveCaseSeed(uint64_t run_seed, uint64_t case_index) {
  return Mix64(run_seed + 0x9e3779b97f4a7c15ULL * (case_index + 1));
}

uint32_t SizeForSeed(uint64_t case_seed, uint32_t max_size) {
  if (max_size <= 1) return max_size;
  const uint64_t bits = Mix64(case_seed ^ 0x517e'b0d9'e7ULL);
  // Mix two scales: ~1/4 of cases draw from [1, min(4, max)] so degenerate
  // shapes (singletons, near-empty tensors) show up often even when the
  // budget is large.
  const uint32_t small_cap = max_size < 4 ? max_size : 4;
  if ((bits & 3u) == 0) {
    return 1 + static_cast<uint32_t>((bits >> 2) % small_cap);
  }
  return 1 + static_cast<uint32_t>((bits >> 2) % max_size);
}

bool ReplaySeedFromEnv(uint64_t* seed) {
  const char* value = std::getenv("TCSS_PROPTEST_SEED");
  if (value == nullptr || *value == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (errno != 0 || end == value || *end != '\0') {
    std::fprintf(stderr,
                 "[proptest] ignoring malformed TCSS_PROPTEST_SEED='%s'\n",
                 value);
    return false;
  }
  *seed = static_cast<uint64_t>(parsed);
  return true;
}

namespace internal {

void PrintFailure(const std::string& name, int case_index, int n_cases,
                  const PropReport& report) {
  std::fprintf(stderr,
               "[proptest] FALSIFIED %s: case %d/%d, size %u, shrunk to "
               "size %u\n",
               name.c_str(), case_index + 1, n_cases, report.fail_size,
               report.shrunk_size);
  if (!report.message.empty()) {
    std::fprintf(stderr, "[proptest]   counterexample: %s\n",
                 report.message.c_str());
  }
  std::fprintf(stderr,
               "[proptest] repro: TCSS_PROPTEST_SEED=%llu replays this "
               "exact case (same shrunk counterexample)\n",
               static_cast<unsigned long long>(report.fail_seed));
}

}  // namespace internal

}  // namespace proptest
}  // namespace tcss
