#include "proptest/generators.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace tcss {
namespace proptest {

namespace {

/// One mode extent under the budget: 0 (if allowed), 1, or uniform in
/// [1, size]. Degenerate extents are drawn with boosted probability — most
/// historical kernel bugs live at empty and singleton modes.
size_t GenDim(Rng* rng, uint32_t size, bool allow_empty) {
  const double roll = rng->Uniform();
  if (allow_empty && roll < 0.08) return 0;
  if (roll < 0.22) return 1;
  return 1 + static_cast<size_t>(rng->UniformInt(size));
}

double GenRealValue(Rng* rng) {
  // Nonzero magnitude in [0.1, 2] with random sign: keeps coalesced sums
  // representable and avoids accidental exact zeros.
  const double magnitude = rng->Uniform(0.1, 2.0);
  return rng->Bernoulli(0.5) ? magnitude : -magnitude;
}

}  // namespace

SparseTensor GenSparseTensor(Rng* rng, uint32_t size,
                             const GenTensorOptions& opts) {
  const size_t dim_i = GenDim(rng, size, opts.allow_empty_modes);
  const size_t dim_j = GenDim(rng, size, opts.allow_empty_modes);
  const uint32_t k_budget =
      opts.max_time_bins > 0 ? std::min(opts.max_time_bins, size) : size;
  const size_t dim_k = GenDim(rng, k_budget, opts.allow_empty_modes);
  SparseTensor x(dim_i, dim_j, dim_k);
  if (dim_i > 0 && dim_j > 0 && dim_k > 0) {
    const size_t target = rng->UniformInt(4 * size + 1);
    std::vector<TensorEntry> added;
    for (size_t n = 0; n < target; ++n) {
      uint32_t i, j, k;
      if (!added.empty() && rng->Bernoulli(0.25)) {
        // Duplicate-prone: re-add an earlier coordinate so Finalize's
        // coalescing (sum / binary clamp) is on the tested path.
        const TensorEntry& prev =
            added[rng->UniformInt(added.size())];
        i = prev.i;
        j = prev.j;
        k = prev.k;
      } else {
        i = static_cast<uint32_t>(rng->UniformInt(dim_i));
        j = static_cast<uint32_t>(rng->UniformInt(dim_j));
        k = static_cast<uint32_t>(rng->UniformInt(dim_k));
      }
      const double value = opts.binary ? 1.0 : GenRealValue(rng);
      TCSS_CHECK(x.Add(i, j, k, value).ok());
      added.push_back({i, j, k, value});
    }
  }
  TCSS_CHECK(x.Finalize(opts.binary).ok());
  return x;
}

FactorModel GenFactorModel(Rng* rng, size_t dim_i, size_t dim_j,
                           size_t dim_k, size_t rank) {
  FactorModel m;
  m.u1 = Matrix::GaussianRandom(dim_i, rank, rng, 0.5);
  m.u2 = Matrix::GaussianRandom(dim_j, rank, rng, 0.5);
  m.u3 = Matrix::GaussianRandom(dim_k, rank, rng, 0.5);
  m.h.resize(rank);
  for (double& h : m.h) h = rng->Uniform(-1.0, 1.0);
  return m;
}

FactorModel GenInteriorFactorModel(Rng* rng, size_t dim_i, size_t dim_j,
                                   size_t dim_k, size_t rank) {
  TCSS_CHECK(rank > 0);
  FactorModel m;
  auto fill = [&](Matrix* f, size_t rows) {
    f->Resize(rows, rank);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t t = 0; t < rank; ++t) (*f)(i, t) = rng->Uniform(0.2, 0.8);
    }
  };
  fill(&m.u1, dim_i);
  fill(&m.u2, dim_j);
  fill(&m.u3, dim_k);
  // Predict sums rank terms h * a * b * c with a,b,c in [0.2, 0.8]; this h
  // range bounds the sum to [0.004, 0.86] — strictly inside the
  // probability clamp of the Hausdorff head.
  m.h.resize(rank);
  const double scale = 1.0 / (0.6 * static_cast<double>(rank));
  for (double& h : m.h) h = rng->Uniform(0.3, 1.0) * scale;
  return m;
}

LbsnCase GenLbsnCase(Rng* rng, uint32_t size) {
  const size_t num_users = 1 + rng->UniformInt(size);
  const size_t num_pois = 1 + rng->UniformInt(size);
  const size_t num_bins = 1 + rng->UniformInt(std::min<uint32_t>(size, 6));

  std::vector<Poi> pois(num_pois);
  for (Poi& poi : pois) {
    poi.location.lat = rng->Uniform(-60.0, 60.0);
    poi.location.lon = rng->Uniform(-170.0, 170.0);
    poi.category = static_cast<PoiCategory>(rng->UniformInt(kNumCategories));
    // Occasionally co-locate POIs exactly: zero pairwise distance is the
    // soft-min floor's adversarial corner.
    if (poi.location.lat > 55.0 && !pois.empty()) {
      poi.location = pois.front().location;
    }
  }

  SocialGraph social(num_users);
  if (num_users > 1) {
    const size_t edges = rng->UniformInt(2 * num_users);
    for (size_t e = 0; e < edges; ++e) {
      const uint32_t u = static_cast<uint32_t>(rng->UniformInt(num_users));
      const uint32_t v = static_cast<uint32_t>(rng->UniformInt(num_users));
      if (u == v) continue;  // AddEdge rejects self-loops by contract
      TCSS_CHECK(social.AddEdge(u, v).ok());
    }
  }
  TCSS_CHECK(social.Finalize().ok());

  LbsnCase out;
  out.data = Dataset(num_users, std::move(pois), std::move(social));

  SparseTensor train(num_users, num_pois, num_bins);
  const size_t checkins = rng->UniformInt(4 * size + 1);
  for (size_t n = 0; n < checkins; ++n) {
    const uint32_t i = static_cast<uint32_t>(rng->UniformInt(num_users));
    const uint32_t j = static_cast<uint32_t>(rng->UniformInt(num_pois));
    const uint32_t k = static_cast<uint32_t>(rng->UniformInt(num_bins));
    TCSS_CHECK(train.Add(i, j, k).ok());
    // Mirror the tensor cell as a dataset check-in (arbitrary timestamp
    // inside the bin is irrelevant to the loss; keeps the two views of the
    // data consistent for code that reads either).
    TCSS_CHECK(out.data
                   .AddCheckIn(i, j,
                               1300000000 + static_cast<int64_t>(n) * 3600)
                   .ok());
  }
  TCSS_CHECK(train.Finalize(/*binary=*/true).ok());
  out.train = std::move(train);
  return out;
}

size_t GenRank(Rng* rng, uint32_t size) {
  return 1 + rng->UniformInt(1 + size / 4);
}

}  // namespace proptest
}  // namespace tcss
