// Scalar reference build of the micro-kernels: kernels_impl.h compiled
// with the project-default flags and no vector hints. This is the
// semantics baseline every other kernel build is tested against.

#define TCSS_KERNEL_NS scalar
#define TCSS_KERNEL_NAME "scalar"
#include "linalg/kernels_impl.h"

namespace tcss {

const KernelTable& ScalarKernelTable() { return kern::scalar::kTable; }

}  // namespace tcss
