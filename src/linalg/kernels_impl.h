// Shared micro-kernel bodies, compiled twice: kernels_scalar.cc includes
// this with TCSS_KERNEL_NS=scalar under the project-default flags, and
// kernels_native.cc with TCSS_KERNEL_NS=native plus vector flags
// (-fopenmp-simd, -O3, -mavx2 where supported, -ffp-contract=off). The
// bodies are written so the two builds are BITWISE-identical:
//
//  * every output element accumulates its terms in a fixed ascending
//    order (k for gemm, entry order for CSF) — vector hints only apply
//    across independent elements, never across terms of one chain;
//  * dot-product style reductions (the y predictions) stay plain scalar
//    loops in both builds — an omp-simd reduction would tree-reorder;
//  * -ffp-contract=off on the native TU forbids mul+add fusion, so both
//    builds round every product and sum identically.
//
// Register blocking: the dense products keep a 2-row x 16-column tile of
// the output in local accumulators across a whole k tile, so each output
// element is loaded/stored twice per kKc multiply-adds instead of once
// per iteration, and the b panel streamed per pass stays cache-resident
// across output rows. The CSF kernels jam four nonzeros (and runs of up
// to four singleton fibers) into one pass over the rank so the
// accumulator row is touched once per four contributions. Neither
// changes any chain's order: contributions stay sequential statements in
// ascending k / entry order.
//
// This header intentionally has no include guard semantics beyond the
// two dedicated TUs; do not include it elsewhere.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/kernel_table.h"

#if defined(TCSS_KERNELS_VECTORIZE)
#define TCSS_SIMD_LOOP _Pragma("omp simd")
#else
#define TCSS_SIMD_LOOP
#endif

// The dense tile bodies use explicit AVX2 intrinsics in the native TU:
// GCC will not keep a local accumulator array in registers across the k
// loop (it round-trips the tile through the stack every iteration),
// which caps the pragma version well below port throughput. Explicit
// _mm256_mul_pd/_mm256_add_pd are exactly the scalar mul and add applied
// lane-wise — never contracted into FMA — so each output element's chain
// rounds identically to the scalar build.
#if defined(TCSS_KERNELS_VECTORIZE) && defined(__AVX2__)
#include <immintrin.h>
#define TCSS_KERNELS_USE_AVX2 1
#endif

namespace tcss {
namespace kern {
namespace TCSS_KERNEL_NS {

namespace {

/// k-tile for the dense products: 64 rows of b stay hot across the whole
/// [i_begin, i_end) row block while the output tile sits in registers.
constexpr size_t kKc = 64;
/// j-tile held in local accumulators (4 AVX2 vectors of doubles). The
/// fixed trip count lets the compiler scalarize the tile into registers.
constexpr size_t kJc = 16;

#if defined(TCSS_KERNELS_USE_AVX2)
/// d + (v * b[t..t+3]) * c[t..t+3], lane-wise: exactly the scalar
/// `d += v * b[t] * c[t]` (left-associated) on each lane.
inline __m256d AddVBC(__m256d d, __m256d v, const double* b, const double* c,
                      size_t t) {
  return _mm256_add_pd(
      d, _mm256_mul_pd(_mm256_mul_pd(v, _mm256_loadu_pd(b + t)),
                       _mm256_loadu_pd(c + t)));
}

/// s + v * c[t..t+3], lane-wise: the scalar `s += v * c[t]`.
inline __m256d AddVC(__m256d s, __m256d v, const double* c, size_t t) {
  return _mm256_add_pd(s, _mm256_mul_pd(v, _mm256_loadu_pd(c + t)));
}
#endif

/// Packs the (kc_end - kc) x jw sub-panel of b at column j0 into `bp`
/// with a fixed kJc row stride. The packed copy is contiguous (<= 8 KB),
/// so the tile bodies' k-loop loads can never alias in L1 — with a
/// power-of-two n (e.g. 512) the unpacked rows sit exactly 4 KB apart
/// and all map to one L1 set, turning every load into a miss. Packing is
/// pure data movement: the values the chains consume are bit-identical.
inline void PackBPanel(const double* b, size_t n, size_t kc, size_t kc_end,
                       size_t j0, size_t jw, double* __restrict bp) {
  for (size_t k = kc; k < kc_end; ++k) {
    const double* __restrict src = b + k * n + j0;
    double* __restrict row = bp + (k - kc) * kJc;
    for (size_t t = 0; t < jw; ++t) row[t] = src[t];
  }
}

/// One (2 x kJc) output tile accumulated over [kc, kc_end). `stride` is
/// the distance a_row advances per k (1 for gemm's row-major a; a_cols
/// for the transposed products, where consecutive k are consecutive rows
/// of a). `bp` is the packed b panel (kJc row stride, row 0 = k of kc).
/// Contributions are sequential adds in ascending k — the same chain as
/// a naive dot product.
inline void GemmTile2(const double* __restrict a0, const double* __restrict a1,
                      size_t stride, const double* __restrict bp,
                      size_t bstride, double* __restrict o0,
                      double* __restrict o1, size_t kc, size_t kc_end) {
#if defined(TCSS_KERNELS_USE_AVX2)
  __m256d acc00 = _mm256_loadu_pd(o0 + 0);
  __m256d acc01 = _mm256_loadu_pd(o0 + 4);
  __m256d acc02 = _mm256_loadu_pd(o0 + 8);
  __m256d acc03 = _mm256_loadu_pd(o0 + 12);
  __m256d acc10 = _mm256_loadu_pd(o1 + 0);
  __m256d acc11 = _mm256_loadu_pd(o1 + 4);
  __m256d acc12 = _mm256_loadu_pd(o1 + 8);
  __m256d acc13 = _mm256_loadu_pd(o1 + 12);
  const double* pa0 = a0 + kc * stride;
  const double* pa1 = a1 + kc * stride;
  // The loop body is front-end bound (~25 uops against 4/cycle decode),
  // not port bound, so process two k steps per trip to amortize the loop
  // control and issue one prefetch per pair. Each k step is the same
  // sequential statement block as before — every accumulator still takes
  // its k and k+1 contributions in ascending order, so the chains (and
  // the bits) are unchanged.
  size_t k = kc;
  for (; k + 2 <= kc_end; k += 2) {
    const double* brow = bp + (k - kc) * bstride;
    // The first row sweep per (kc, j0) tile still streams the packed
    // tile from L2, and this vCPU's hardware prefetcher does not keep
    // up; pull it ~16 rows ahead by hand. Prefetch never changes
    // architectural state — past-the-end addresses are harmless.
    _mm_prefetch(reinterpret_cast<const char*>(brow) + 2048, _MM_HINT_T0);
    const __m256d av0 = _mm256_broadcast_sd(pa0);
    const __m256d av1 = _mm256_broadcast_sd(pa1);
    // Each b row element is loaded once per use rather than once per
    // pair of uses: a single-use load folds into the multiply as a
    // memory operand (one fused uop instead of a load plus a mul),
    // which is what the 4-wide front end actually rations. The loads
    // all hit L1 and the load ports are otherwise idle. Same addresses,
    // same values, same chains — the bits cannot change.
    acc00 = _mm256_add_pd(acc00,
                          _mm256_mul_pd(av0, _mm256_loadu_pd(brow + 0)));
    acc01 = _mm256_add_pd(acc01,
                          _mm256_mul_pd(av0, _mm256_loadu_pd(brow + 4)));
    acc02 = _mm256_add_pd(acc02,
                          _mm256_mul_pd(av0, _mm256_loadu_pd(brow + 8)));
    acc03 = _mm256_add_pd(acc03,
                          _mm256_mul_pd(av0, _mm256_loadu_pd(brow + 12)));
    acc10 = _mm256_add_pd(acc10,
                          _mm256_mul_pd(av1, _mm256_loadu_pd(brow + 0)));
    acc11 = _mm256_add_pd(acc11,
                          _mm256_mul_pd(av1, _mm256_loadu_pd(brow + 4)));
    acc12 = _mm256_add_pd(acc12,
                          _mm256_mul_pd(av1, _mm256_loadu_pd(brow + 8)));
    acc13 = _mm256_add_pd(acc13,
                          _mm256_mul_pd(av1, _mm256_loadu_pd(brow + 12)));
    const __m256d aw0 = _mm256_broadcast_sd(pa0 + stride);
    const __m256d aw1 = _mm256_broadcast_sd(pa1 + stride);
    const double* crow = brow + bstride;
    acc00 = _mm256_add_pd(acc00,
                          _mm256_mul_pd(aw0, _mm256_loadu_pd(crow + 0)));
    acc01 = _mm256_add_pd(acc01,
                          _mm256_mul_pd(aw0, _mm256_loadu_pd(crow + 4)));
    acc02 = _mm256_add_pd(acc02,
                          _mm256_mul_pd(aw0, _mm256_loadu_pd(crow + 8)));
    acc03 = _mm256_add_pd(acc03,
                          _mm256_mul_pd(aw0, _mm256_loadu_pd(crow + 12)));
    acc10 = _mm256_add_pd(acc10,
                          _mm256_mul_pd(aw1, _mm256_loadu_pd(crow + 0)));
    acc11 = _mm256_add_pd(acc11,
                          _mm256_mul_pd(aw1, _mm256_loadu_pd(crow + 4)));
    acc12 = _mm256_add_pd(acc12,
                          _mm256_mul_pd(aw1, _mm256_loadu_pd(crow + 8)));
    acc13 = _mm256_add_pd(acc13,
                          _mm256_mul_pd(aw1, _mm256_loadu_pd(crow + 12)));
    pa0 += 2 * stride;
    pa1 += 2 * stride;
  }
  for (; k < kc_end; ++k) {
    const __m256d av0 = _mm256_broadcast_sd(pa0);
    const __m256d av1 = _mm256_broadcast_sd(pa1);
    pa0 += stride;
    pa1 += stride;
    const double* brow = bp + (k - kc) * bstride;
    acc00 = _mm256_add_pd(acc00,
                          _mm256_mul_pd(av0, _mm256_loadu_pd(brow + 0)));
    acc01 = _mm256_add_pd(acc01,
                          _mm256_mul_pd(av0, _mm256_loadu_pd(brow + 4)));
    acc02 = _mm256_add_pd(acc02,
                          _mm256_mul_pd(av0, _mm256_loadu_pd(brow + 8)));
    acc03 = _mm256_add_pd(acc03,
                          _mm256_mul_pd(av0, _mm256_loadu_pd(brow + 12)));
    acc10 = _mm256_add_pd(acc10,
                          _mm256_mul_pd(av1, _mm256_loadu_pd(brow + 0)));
    acc11 = _mm256_add_pd(acc11,
                          _mm256_mul_pd(av1, _mm256_loadu_pd(brow + 4)));
    acc12 = _mm256_add_pd(acc12,
                          _mm256_mul_pd(av1, _mm256_loadu_pd(brow + 8)));
    acc13 = _mm256_add_pd(acc13,
                          _mm256_mul_pd(av1, _mm256_loadu_pd(brow + 12)));
  }
  _mm256_storeu_pd(o0 + 0, acc00);
  _mm256_storeu_pd(o0 + 4, acc01);
  _mm256_storeu_pd(o0 + 8, acc02);
  _mm256_storeu_pd(o0 + 12, acc03);
  _mm256_storeu_pd(o1 + 0, acc10);
  _mm256_storeu_pd(o1 + 4, acc11);
  _mm256_storeu_pd(o1 + 8, acc12);
  _mm256_storeu_pd(o1 + 12, acc13);
#else
  double acc0[kJc], acc1[kJc];
  for (size_t t = 0; t < kJc; ++t) {
    acc0[t] = o0[t];
    acc1[t] = o1[t];
  }
  const double* pa0 = a0 + kc * stride;
  const double* pa1 = a1 + kc * stride;
  for (size_t k = kc; k < kc_end; ++k) {
    const double av0 = *pa0;
    const double av1 = *pa1;
    pa0 += stride;
    pa1 += stride;
    const double* __restrict brow = bp + (k - kc) * bstride;
    TCSS_SIMD_LOOP
    for (size_t t = 0; t < kJc; ++t) {
      acc0[t] += av0 * brow[t];
      acc1[t] += av1 * brow[t];
    }
  }
  for (size_t t = 0; t < kJc; ++t) {
    o0[t] = acc0[t];
    o1[t] = acc1[t];
  }
#endif
}

/// Single-row variant of GemmTile2, with a runtime tile width for the
/// ragged right edge (jw <= kJc).
inline void GemmTile1(const double* __restrict a0, size_t stride,
                      const double* __restrict bp, size_t bstride,
                      double* __restrict o0, size_t kc, size_t kc_end,
                      size_t jw) {
#if defined(TCSS_KERNELS_USE_AVX2)
  if (jw == kJc) {
    __m256d acc0 = _mm256_loadu_pd(o0 + 0);
    __m256d acc1 = _mm256_loadu_pd(o0 + 4);
    __m256d acc2 = _mm256_loadu_pd(o0 + 8);
    __m256d acc3 = _mm256_loadu_pd(o0 + 12);
    const double* pa0 = a0 + kc * stride;
    // Two k steps per trip, same rationale (and same chain order) as
    // GemmTile2.
    size_t k = kc;
    for (; k + 2 <= kc_end; k += 2) {
      const double* brow = bp + (k - kc) * bstride;
      _mm_prefetch(reinterpret_cast<const char*>(brow) + 2048, _MM_HINT_T0);
      const __m256d av0 = _mm256_broadcast_sd(pa0);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(av0, _mm256_loadu_pd(brow)));
      acc1 =
          _mm256_add_pd(acc1, _mm256_mul_pd(av0, _mm256_loadu_pd(brow + 4)));
      acc2 =
          _mm256_add_pd(acc2, _mm256_mul_pd(av0, _mm256_loadu_pd(brow + 8)));
      acc3 =
          _mm256_add_pd(acc3, _mm256_mul_pd(av0, _mm256_loadu_pd(brow + 12)));
      const __m256d av1 = _mm256_broadcast_sd(pa0 + stride);
      const double* crow = brow + bstride;
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(av1, _mm256_loadu_pd(crow)));
      acc1 =
          _mm256_add_pd(acc1, _mm256_mul_pd(av1, _mm256_loadu_pd(crow + 4)));
      acc2 =
          _mm256_add_pd(acc2, _mm256_mul_pd(av1, _mm256_loadu_pd(crow + 8)));
      acc3 =
          _mm256_add_pd(acc3, _mm256_mul_pd(av1, _mm256_loadu_pd(crow + 12)));
      pa0 += 2 * stride;
    }
    for (; k < kc_end; ++k) {
      const __m256d av0 = _mm256_broadcast_sd(pa0);
      pa0 += stride;
      const double* brow = bp + (k - kc) * bstride;
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(av0, _mm256_loadu_pd(brow)));
      acc1 =
          _mm256_add_pd(acc1, _mm256_mul_pd(av0, _mm256_loadu_pd(brow + 4)));
      acc2 =
          _mm256_add_pd(acc2, _mm256_mul_pd(av0, _mm256_loadu_pd(brow + 8)));
      acc3 =
          _mm256_add_pd(acc3, _mm256_mul_pd(av0, _mm256_loadu_pd(brow + 12)));
    }
    _mm256_storeu_pd(o0 + 0, acc0);
    _mm256_storeu_pd(o0 + 4, acc1);
    _mm256_storeu_pd(o0 + 8, acc2);
    _mm256_storeu_pd(o0 + 12, acc3);
    return;
  }
#endif
  double acc0[kJc];
  for (size_t t = 0; t < jw; ++t) acc0[t] = o0[t];
  const double* pa0 = a0 + kc * stride;
  for (size_t k = kc; k < kc_end; ++k) {
    const double av0 = *pa0;
    pa0 += stride;
    const double* __restrict brow = bp + (k - kc) * bstride;
    TCSS_SIMD_LOOP
    for (size_t t = 0; t < jw; ++t) acc0[t] += av0 * brow[t];
  }
  for (size_t t = 0; t < jw; ++t) o0[t] = acc0[t];
}

void GemmRows(const double* a, const double* b, double* out, size_t i_begin,
              size_t i_end, size_t kk, size_t n) {
  // Loop order: kc -> j0 -> i, with the whole kKc x n b panel packed per
  // kc tile. With j0 outer, the 8 KB packed tile for one column block
  // stays L1-resident across the entire i sweep — the dominant stream
  // becomes the a block (kKc columns of a, re-read once per j0 tile from
  // L2) instead of the full packed panel being re-streamed per row pair,
  // which is n/kJc times more traffic. (Blocking i to bound the a
  // re-reads was tried and measured slower: it cuts the b tile's
  // L1-resident reuse from the full row sweep to one block's worth,
  // and that reuse is worth more than the sequential a stream costs.)
  // Per-element accumulation order is untouched — i/j0 only enumerate
  // independent outputs.
  const size_t ntiles = (n + kJc - 1) / kJc;
  std::vector<double> bp_all(ntiles * kKc * kJc);
  for (size_t kc = 0; kc < kk; kc += kKc) {
    const size_t kc_end = kc + kKc < kk ? kc + kKc : kk;
    for (size_t jt = 0; jt < ntiles; ++jt) {
      const size_t j0 = jt * kJc;
      const size_t jw = n - j0 < kJc ? n - j0 : kJc;
      PackBPanel(b, n, kc, kc_end, j0, jw, &bp_all[jt * kKc * kJc]);
    }
    for (size_t jt = 0; jt < ntiles; ++jt) {
      const size_t j0 = jt * kJc;
      const size_t jw = n - j0 < kJc ? n - j0 : kJc;
      const double* bp = &bp_all[jt * kKc * kJc];
      size_t i = i_begin;
      if (jw == kJc) {
        for (; i + 2 <= i_end; i += 2) {
          GemmTile2(a + i * kk, a + (i + 1) * kk, 1, bp, kJc,
                    out + i * n + j0, out + (i + 1) * n + j0, kc, kc_end);
        }
      }
      for (; i < i_end; ++i) {
        GemmTile1(a + i * kk, 1, bp, kJc, out + i * n + j0, kc, kc_end, jw);
      }
    }
  }
}

void GemmTRows(const double* a, const double* b, double* out, size_t i_begin,
               size_t i_end, size_t rows, size_t a_cols, size_t b_cols) {
  // Same kc -> j0 -> i order as GemmRows; here a is walked down columns
  // (stride a_cols), so the a block re-read per j0 tile is a strided
  // stream, but it is still kKc * b_cols doubles per tile — far less
  // than re-streaming the whole packed panel per column pair.
  const size_t ntiles = (b_cols + kJc - 1) / kJc;
  std::vector<double> bp_all(ntiles * kKc * kJc);
  for (size_t kc = 0; kc < rows; kc += kKc) {
    const size_t kc_end = kc + kKc < rows ? kc + kKc : rows;
    for (size_t jt = 0; jt < ntiles; ++jt) {
      const size_t j0 = jt * kJc;
      const size_t jw = b_cols - j0 < kJc ? b_cols - j0 : kJc;
      PackBPanel(b, b_cols, kc, kc_end, j0, jw, &bp_all[jt * kKc * kJc]);
    }
    for (size_t jt = 0; jt < ntiles; ++jt) {
      const size_t j0 = jt * kJc;
      const size_t jw = b_cols - j0 < kJc ? b_cols - j0 : kJc;
      const double* bp = &bp_all[jt * kKc * kJc];
      size_t i = i_begin;
      if (jw == kJc) {
        for (; i + 2 <= i_end; i += 2) {
          GemmTile2(a + i, a + i + 1, a_cols, bp, kJc,
                    out + i * b_cols + j0, out + (i + 1) * b_cols + j0, kc,
                    kc_end);
        }
      }
      for (; i < i_end; ++i) {
        GemmTile1(a + i, a_cols, bp, kJc, out + i * b_cols + j0, kc,
                  kc_end, jw);
      }
    }
  }
}

void GramUpper(const double* a, double* out, size_t i_begin, size_t i_end,
               size_t rows, size_t cols) {
  // Upper triangle only: row i covers j in [i, cols). No b packing
  // here: the k panel of a is contiguous (cols is the rank, so its row
  // stride is a few hundred bytes, never a power-of-two page) and stays
  // L1-hot across the whole i loop — the tiles read it in place.
  for (size_t kc = 0; kc < rows; kc += kKc) {
    const size_t kc_end = kc + kKc < rows ? kc + kKc : rows;
    for (size_t i = i_begin; i < i_end; ++i) {
      for (size_t j0 = i; j0 < cols; j0 += kJc) {
        const size_t jw = cols - j0 < kJc ? cols - j0 : kJc;
        GemmTile1(a + i, cols, a + kc * cols + j0, cols,
                  out + i * cols + j0, kc, kc_end, jw);
      }
    }
  }
}

#if defined(TCSS_KERNELS_USE_AVX2)
/// One 4-lane chunk of the fused short-fiber update at offset t:
/// sum = v0*c0[t]; sum += v1*c1[t]; ... ; d += sum * b[t] — exactly the
/// generic fused body's chain per lane. LEN selects how many (v, c)
/// terms are real; unused ones are dead code.
template <int LEN>
inline __m256d FusedChunk(__m256d d, const double* b, const double* c0,
                          const double* c1, const double* c2, const double* c3,
                          __m256d w0, __m256d w1, __m256d w2, __m256d w3,
                          size_t t) {
  __m256d sum = _mm256_mul_pd(w0, _mm256_loadu_pd(c0 + t));
  if (LEN > 1) sum = AddVC(sum, w1, c1, t);
  if (LEN > 2) sum = AddVC(sum, w2, c2, t);
  if (LEN > 3) sum = AddVC(sum, w3, c3, t);
  return _mm256_add_pd(d, _mm256_mul_pd(sum, _mm256_loadu_pd(b + t)));
}

/// Mode-0 MTTKRP specialized for rank 32: the destination row (one row
/// per slice) lives in eight ymm registers across the slice's whole
/// fiber list instead of round-tripping through memory per fiber —
/// slices average tens of fibers on check-in data, so that is the
/// dominant saving. Every per-element chain is the generic path's chain
/// verbatim (same products, same add order); holding a double in a
/// register instead of storing and reloading it cannot change its bits,
/// so the scalar TU (which always takes the generic path) still matches
/// bit for bit.
void CsfMttkrpMode0R32(const CsfView& x, const double* fa, const double* fb,
                       double* out, size_t s_begin, size_t s_end) {
  alignas(32) double acc[32];
  const size_t shard_f_end = x.slice_start[s_end];
  for (size_t s = s_begin; s < s_end; ++s) {
    double* dst = out + size_t{x.slice_id[s]} * 32;
    __m256d d0 = _mm256_loadu_pd(dst + 0);
    __m256d d1 = _mm256_loadu_pd(dst + 4);
    __m256d d2 = _mm256_loadu_pd(dst + 8);
    __m256d d3 = _mm256_loadu_pd(dst + 12);
    __m256d d4 = _mm256_loadu_pd(dst + 16);
    __m256d d5 = _mm256_loadu_pd(dst + 20);
    __m256d d6 = _mm256_loadu_pd(dst + 24);
    __m256d d7 = _mm256_loadu_pd(dst + 28);
    const size_t f_end = x.slice_start[s + 1];
    for (size_t f = x.slice_start[s]; f < f_end; ++f) {
      const size_t begin = x.fiber_start[f];
      const size_t len = x.fiber_start[f + 1] - begin;
      const double* __restrict b = fa + size_t{x.fiber_id[f]} * 32;
      if (len == 1) {
        // Chain is the generic singleton body: d += (v*b[t])*c[t].
        const __m256d w0 = _mm256_set1_pd(x.val[begin]);
        const double* __restrict c0 = fb + size_t{x.kk[begin]} * 32;
        d0 = AddVBC(d0, w0, b, c0, 0);
        d1 = AddVBC(d1, w0, b, c0, 4);
        d2 = AddVBC(d2, w0, b, c0, 8);
        d3 = AddVBC(d3, w0, b, c0, 12);
        d4 = AddVBC(d4, w0, b, c0, 16);
        d5 = AddVBC(d5, w0, b, c0, 20);
        d6 = AddVBC(d6, w0, b, c0, 24);
        d7 = AddVBC(d7, w0, b, c0, 28);
      } else if (len <= 4) {
        const double* c0 = fb + size_t{x.kk[begin]} * 32;
        const double* c1 = fb + size_t{x.kk[begin + 1]} * 32;
        const double* c2 = c0;
        const double* c3 = c0;
        const __m256d w0 = _mm256_set1_pd(x.val[begin]);
        const __m256d w1 = _mm256_set1_pd(x.val[begin + 1]);
        __m256d w2 = w0;
        __m256d w3 = w0;
        if (len > 2) {
          c2 = fb + size_t{x.kk[begin + 2]} * 32;
          w2 = _mm256_set1_pd(x.val[begin + 2]);
        }
        if (len > 3) {
          c3 = fb + size_t{x.kk[begin + 3]} * 32;
          w3 = _mm256_set1_pd(x.val[begin + 3]);
        }
#define TCSS_M0_FUSED_ALL(LEN)                                      \
  d0 = FusedChunk<LEN>(d0, b, c0, c1, c2, c3, w0, w1, w2, w3, 0);   \
  d1 = FusedChunk<LEN>(d1, b, c0, c1, c2, c3, w0, w1, w2, w3, 4);   \
  d2 = FusedChunk<LEN>(d2, b, c0, c1, c2, c3, w0, w1, w2, w3, 8);   \
  d3 = FusedChunk<LEN>(d3, b, c0, c1, c2, c3, w0, w1, w2, w3, 12);  \
  d4 = FusedChunk<LEN>(d4, b, c0, c1, c2, c3, w0, w1, w2, w3, 16);  \
  d5 = FusedChunk<LEN>(d5, b, c0, c1, c2, c3, w0, w1, w2, w3, 20);  \
  d6 = FusedChunk<LEN>(d6, b, c0, c1, c2, c3, w0, w1, w2, w3, 24);  \
  d7 = FusedChunk<LEN>(d7, b, c0, c1, c2, c3, w0, w1, w2, w3, 28)
        if (len == 2) {
          TCSS_M0_FUSED_ALL(2);
        } else if (len == 3) {
          TCSS_M0_FUSED_ALL(3);
        } else {
          TCSS_M0_FUSED_ALL(4);
        }
#undef TCSS_M0_FUSED_ALL
      } else {
        // Long fiber: accumulate v*c into acc exactly like the generic
        // acc path (zero, 4-jam in entry order, remainder), then fold
        // acc*b into the register-resident row — the same
        // dst[t] += acc[t] * b[t] statement, dst just never left ymm.
        const size_t end = begin + len;
        const __m256d z = _mm256_setzero_pd();
        _mm256_store_pd(acc + 0, z);
        _mm256_store_pd(acc + 4, z);
        _mm256_store_pd(acc + 8, z);
        _mm256_store_pd(acc + 12, z);
        _mm256_store_pd(acc + 16, z);
        _mm256_store_pd(acc + 20, z);
        _mm256_store_pd(acc + 24, z);
        _mm256_store_pd(acc + 28, z);
        size_t e = begin;
        for (; e + 4 <= end; e += 4) {
          const __m256d w0 = _mm256_set1_pd(x.val[e]);
          const __m256d w1 = _mm256_set1_pd(x.val[e + 1]);
          const __m256d w2 = _mm256_set1_pd(x.val[e + 2]);
          const __m256d w3 = _mm256_set1_pd(x.val[e + 3]);
          const double* __restrict c0 = fb + size_t{x.kk[e]} * 32;
          const double* __restrict c1 = fb + size_t{x.kk[e + 1]} * 32;
          const double* __restrict c2 = fb + size_t{x.kk[e + 2]} * 32;
          const double* __restrict c3 = fb + size_t{x.kk[e + 3]} * 32;
          for (size_t t = 0; t < 32; t += 4) {
            __m256d s_acc = _mm256_load_pd(acc + t);
            s_acc = AddVC(s_acc, w0, c0, t);
            s_acc = AddVC(s_acc, w1, c1, t);
            s_acc = AddVC(s_acc, w2, c2, t);
            s_acc = AddVC(s_acc, w3, c3, t);
            _mm256_store_pd(acc + t, s_acc);
          }
        }
        for (; e < end; ++e) {
          const __m256d w = _mm256_set1_pd(x.val[e]);
          const double* __restrict c = fb + size_t{x.kk[e]} * 32;
          for (size_t t = 0; t < 32; t += 4) {
            _mm256_store_pd(acc + t, AddVC(_mm256_load_pd(acc + t), w, c, t));
          }
        }
        d0 = _mm256_add_pd(
            d0, _mm256_mul_pd(_mm256_load_pd(acc + 0), _mm256_loadu_pd(b)));
        d1 = _mm256_add_pd(d1, _mm256_mul_pd(_mm256_load_pd(acc + 4),
                                             _mm256_loadu_pd(b + 4)));
        d2 = _mm256_add_pd(d2, _mm256_mul_pd(_mm256_load_pd(acc + 8),
                                             _mm256_loadu_pd(b + 8)));
        d3 = _mm256_add_pd(d3, _mm256_mul_pd(_mm256_load_pd(acc + 12),
                                             _mm256_loadu_pd(b + 12)));
        d4 = _mm256_add_pd(d4, _mm256_mul_pd(_mm256_load_pd(acc + 16),
                                             _mm256_loadu_pd(b + 16)));
        d5 = _mm256_add_pd(d5, _mm256_mul_pd(_mm256_load_pd(acc + 20),
                                             _mm256_loadu_pd(b + 20)));
        d6 = _mm256_add_pd(d6, _mm256_mul_pd(_mm256_load_pd(acc + 24),
                                             _mm256_loadu_pd(b + 24)));
        d7 = _mm256_add_pd(d7, _mm256_mul_pd(_mm256_load_pd(acc + 28),
                                             _mm256_loadu_pd(b + 28)));
      }
    }
    _mm256_storeu_pd(dst + 0, d0);
    _mm256_storeu_pd(dst + 4, d1);
    _mm256_storeu_pd(dst + 8, d2);
    _mm256_storeu_pd(dst + 12, d3);
    _mm256_storeu_pd(dst + 16, d4);
    _mm256_storeu_pd(dst + 20, d5);
    _mm256_storeu_pd(dst + 24, d6);
    _mm256_storeu_pd(dst + 28, d7);
  }
}
#endif  // TCSS_KERNELS_USE_AVX2

void CsfMttkrpMode0(const CsfView& x, const double* fa, const double* fb,
                    size_t r, double* out, size_t s_begin, size_t s_end) {
  // Check-in fibers are short (a user revisits a POI in few time bins),
  // so per-fiber and per-nonzero loop overhead dominates. Two jams cut
  // the accumulator-row traffic 4x without touching any chain's order —
  // jammed contributions are *sequential statements* in original entry /
  // fiber order, not a reduction tree:
  //  * runs of up to 4 consecutive singleton fibers fuse into one pass
  //    over dst;
  //  * within a long fiber, 4 nonzeros at a time fuse into one pass
  //    over acc.
#if defined(TCSS_KERNELS_USE_AVX2)
  if (r == 32) {
    CsfMttkrpMode0R32(x, fa, fb, out, s_begin, s_end);
    return;
  }
#endif
  std::vector<double> acc_buf(r);
  double* __restrict acc = acc_buf.data();
  const size_t shard_f_end = x.slice_start[s_end];
  for (size_t s = s_begin; s < s_end; ++s) {
    double* __restrict dst = out + size_t{x.slice_id[s]} * r;
    const size_t f_end = x.slice_start[s + 1];
    size_t f = x.slice_start[s];
    while (f < f_end) {
      // The b rows (fa) are the one access with no locality — fiber ids
      // stride through a factor matrix much bigger than L1/L2. Pull the
      // row a few fibers ahead while this fiber computes; prefetch is
      // architecturally invisible, so the bitwise contract is untouched.
      if (f + 4 < shard_f_end) {
        const char* nb = reinterpret_cast<const char*>(
            fa + size_t{x.fiber_id[f + 4]} * r);
        __builtin_prefetch(nb);
        __builtin_prefetch(nb + 64);
        __builtin_prefetch(nb + 128);
        __builtin_prefetch(nb + 192);
      }
      const size_t begin = x.fiber_start[f];
      size_t end = x.fiber_start[f + 1];
      if (end - begin == 1) {
        // Count the run of singleton fibers starting at f (capped at 4).
        size_t run = 1;
        while (run < 4 && f + run < f_end &&
               x.fiber_start[f + run + 1] - x.fiber_start[f + run] == 1) {
          ++run;
        }
        const double* __restrict b0 = fa + size_t{x.fiber_id[f]} * r;
        const double* __restrict c0 = fb + size_t{x.kk[begin]} * r;
        const double v0 = x.val[begin];
        if (run == 4) {
          const double* __restrict b1 = fa + size_t{x.fiber_id[f + 1]} * r;
          const double* __restrict b2 = fa + size_t{x.fiber_id[f + 2]} * r;
          const double* __restrict b3 = fa + size_t{x.fiber_id[f + 3]} * r;
          const double* __restrict c1 = fb + size_t{x.kk[begin + 1]} * r;
          const double* __restrict c2 = fb + size_t{x.kk[begin + 2]} * r;
          const double* __restrict c3 = fb + size_t{x.kk[begin + 3]} * r;
          const double v1 = x.val[begin + 1];
          const double v2 = x.val[begin + 2];
          const double v3 = x.val[begin + 3];
#if defined(TCSS_KERNELS_USE_AVX2)
          // The chunked intrinsic paths below (and in every other body)
          // skip the vectorizer's runtime prologue/epilogue, which costs
          // real time when fibers average a handful of nonzeros. Each
          // AddVBC/AddVC lane is the scalar statement verbatim.
          if ((r & 3) == 0) {
            const __m256d w0 = _mm256_set1_pd(v0);
            const __m256d w1 = _mm256_set1_pd(v1);
            const __m256d w2 = _mm256_set1_pd(v2);
            const __m256d w3 = _mm256_set1_pd(v3);
            for (size_t t = 0; t < r; t += 4) {
              __m256d d = _mm256_loadu_pd(dst + t);
              d = AddVBC(d, w0, b0, c0, t);
              d = AddVBC(d, w1, b1, c1, t);
              d = AddVBC(d, w2, b2, c2, t);
              d = AddVBC(d, w3, b3, c3, t);
              _mm256_storeu_pd(dst + t, d);
            }
          } else
#endif
          {
            TCSS_SIMD_LOOP
            for (size_t t = 0; t < r; ++t) {
              double d = dst[t];
              d += v0 * b0[t] * c0[t];
              d += v1 * b1[t] * c1[t];
              d += v2 * b2[t] * c2[t];
              d += v3 * b3[t] * c3[t];
              dst[t] = d;
            }
          }
        } else if (run == 2) {
          const double* __restrict b1 = fa + size_t{x.fiber_id[f + 1]} * r;
          const double* __restrict c1 = fb + size_t{x.kk[begin + 1]} * r;
          const double v1 = x.val[begin + 1];
#if defined(TCSS_KERNELS_USE_AVX2)
          if ((r & 3) == 0) {
            const __m256d w0 = _mm256_set1_pd(v0);
            const __m256d w1 = _mm256_set1_pd(v1);
            for (size_t t = 0; t < r; t += 4) {
              __m256d d = _mm256_loadu_pd(dst + t);
              d = AddVBC(d, w0, b0, c0, t);
              d = AddVBC(d, w1, b1, c1, t);
              _mm256_storeu_pd(dst + t, d);
            }
          } else
#endif
          {
            TCSS_SIMD_LOOP
            for (size_t t = 0; t < r; ++t) {
              double d = dst[t];
              d += v0 * b0[t] * c0[t];
              d += v1 * b1[t] * c1[t];
              dst[t] = d;
            }
          }
        } else if (run == 3) {
          const double* __restrict b1 = fa + size_t{x.fiber_id[f + 1]} * r;
          const double* __restrict b2 = fa + size_t{x.fiber_id[f + 2]} * r;
          const double* __restrict c1 = fb + size_t{x.kk[begin + 1]} * r;
          const double* __restrict c2 = fb + size_t{x.kk[begin + 2]} * r;
          const double v1 = x.val[begin + 1];
          const double v2 = x.val[begin + 2];
#if defined(TCSS_KERNELS_USE_AVX2)
          if ((r & 3) == 0) {
            const __m256d w0 = _mm256_set1_pd(v0);
            const __m256d w1 = _mm256_set1_pd(v1);
            const __m256d w2 = _mm256_set1_pd(v2);
            for (size_t t = 0; t < r; t += 4) {
              __m256d d = _mm256_loadu_pd(dst + t);
              d = AddVBC(d, w0, b0, c0, t);
              d = AddVBC(d, w1, b1, c1, t);
              d = AddVBC(d, w2, b2, c2, t);
              _mm256_storeu_pd(dst + t, d);
            }
          } else
#endif
          {
            TCSS_SIMD_LOOP
            for (size_t t = 0; t < r; ++t) {
              double d = dst[t];
              d += v0 * b0[t] * c0[t];
              d += v1 * b1[t] * c1[t];
              d += v2 * b2[t] * c2[t];
              dst[t] = d;
            }
          }
        } else {
#if defined(TCSS_KERNELS_USE_AVX2)
          if ((r & 3) == 0) {
            const __m256d w0 = _mm256_set1_pd(v0);
            for (size_t t = 0; t < r; t += 4) {
              _mm256_storeu_pd(
                  dst + t, AddVBC(_mm256_loadu_pd(dst + t), w0, b0, c0, t));
            }
          } else
#endif
          {
            TCSS_SIMD_LOOP
            for (size_t t = 0; t < r; ++t) dst[t] += v0 * b0[t] * c0[t];
          }
        }
        f += run;
        continue;
      }
      const double* __restrict b = fa + size_t{x.fiber_id[f]} * r;
      if (end - begin <= 4) {
        // Fibers of 2-4 nonzeros fused into one pass over dst. The
        // per-element chain is the acc path's chain with the leading
        // "0.0 + x" folded away, which rounds identically (0 + x == x
        // exactly for every finite/NaN x except the sign of -0.0, which
        // no downstream consumer distinguishes).
        const double* __restrict c0 = fb + size_t{x.kk[begin]} * r;
        const double* __restrict c1 = fb + size_t{x.kk[begin + 1]} * r;
        const double v0 = x.val[begin];
        const double v1 = x.val[begin + 1];
        if (end - begin == 2) {
#if defined(TCSS_KERNELS_USE_AVX2)
          if ((r & 3) == 0) {
            const __m256d w0 = _mm256_set1_pd(v0);
            const __m256d w1 = _mm256_set1_pd(v1);
            for (size_t t = 0; t < r; t += 4) {
              __m256d sum = _mm256_mul_pd(w0, _mm256_loadu_pd(c0 + t));
              sum = AddVC(sum, w1, c1, t);
              _mm256_storeu_pd(
                  dst + t,
                  _mm256_add_pd(_mm256_loadu_pd(dst + t),
                                _mm256_mul_pd(sum, _mm256_loadu_pd(b + t))));
            }
          } else
#endif
          {
            TCSS_SIMD_LOOP
            for (size_t t = 0; t < r; ++t) {
              double sum = v0 * c0[t];
              sum += v1 * c1[t];
              dst[t] += sum * b[t];
            }
          }
        } else if (end - begin == 3) {
          const double* __restrict c2 = fb + size_t{x.kk[begin + 2]} * r;
          const double v2 = x.val[begin + 2];
#if defined(TCSS_KERNELS_USE_AVX2)
          if ((r & 3) == 0) {
            const __m256d w0 = _mm256_set1_pd(v0);
            const __m256d w1 = _mm256_set1_pd(v1);
            const __m256d w2 = _mm256_set1_pd(v2);
            for (size_t t = 0; t < r; t += 4) {
              __m256d sum = _mm256_mul_pd(w0, _mm256_loadu_pd(c0 + t));
              sum = AddVC(sum, w1, c1, t);
              sum = AddVC(sum, w2, c2, t);
              _mm256_storeu_pd(
                  dst + t,
                  _mm256_add_pd(_mm256_loadu_pd(dst + t),
                                _mm256_mul_pd(sum, _mm256_loadu_pd(b + t))));
            }
          } else
#endif
          {
            TCSS_SIMD_LOOP
            for (size_t t = 0; t < r; ++t) {
              double sum = v0 * c0[t];
              sum += v1 * c1[t];
              sum += v2 * c2[t];
              dst[t] += sum * b[t];
            }
          }
        } else {
          const double* __restrict c2 = fb + size_t{x.kk[begin + 2]} * r;
          const double* __restrict c3 = fb + size_t{x.kk[begin + 3]} * r;
          const double v2 = x.val[begin + 2];
          const double v3 = x.val[begin + 3];
#if defined(TCSS_KERNELS_USE_AVX2)
          if ((r & 3) == 0) {
            const __m256d w0 = _mm256_set1_pd(v0);
            const __m256d w1 = _mm256_set1_pd(v1);
            const __m256d w2 = _mm256_set1_pd(v2);
            const __m256d w3 = _mm256_set1_pd(v3);
            for (size_t t = 0; t < r; t += 4) {
              __m256d sum = _mm256_mul_pd(w0, _mm256_loadu_pd(c0 + t));
              sum = AddVC(sum, w1, c1, t);
              sum = AddVC(sum, w2, c2, t);
              sum = AddVC(sum, w3, c3, t);
              _mm256_storeu_pd(
                  dst + t,
                  _mm256_add_pd(_mm256_loadu_pd(dst + t),
                                _mm256_mul_pd(sum, _mm256_loadu_pd(b + t))));
            }
          } else
#endif
          {
            TCSS_SIMD_LOOP
            for (size_t t = 0; t < r; ++t) {
              double sum = v0 * c0[t];
              sum += v1 * c1[t];
              sum += v2 * c2[t];
              sum += v3 * c3[t];
              dst[t] += sum * b[t];
            }
          }
        }
        ++f;
        continue;
      }
      for (size_t t = 0; t < r; ++t) acc[t] = 0.0;
      size_t e = begin;
      for (; e + 4 <= end; e += 4) {
        const double v0 = x.val[e], v1 = x.val[e + 1];
        const double v2 = x.val[e + 2], v3 = x.val[e + 3];
        const double* __restrict c0 = fb + size_t{x.kk[e]} * r;
        const double* __restrict c1 = fb + size_t{x.kk[e + 1]} * r;
        const double* __restrict c2 = fb + size_t{x.kk[e + 2]} * r;
        const double* __restrict c3 = fb + size_t{x.kk[e + 3]} * r;
#if defined(TCSS_KERNELS_USE_AVX2)
        if ((r & 3) == 0) {
          const __m256d w0 = _mm256_set1_pd(v0);
          const __m256d w1 = _mm256_set1_pd(v1);
          const __m256d w2 = _mm256_set1_pd(v2);
          const __m256d w3 = _mm256_set1_pd(v3);
          for (size_t t = 0; t < r; t += 4) {
            __m256d s_acc = _mm256_loadu_pd(acc + t);
            s_acc = AddVC(s_acc, w0, c0, t);
            s_acc = AddVC(s_acc, w1, c1, t);
            s_acc = AddVC(s_acc, w2, c2, t);
            s_acc = AddVC(s_acc, w3, c3, t);
            _mm256_storeu_pd(acc + t, s_acc);
          }
        } else
#endif
        {
          TCSS_SIMD_LOOP
          for (size_t t = 0; t < r; ++t) {
            double s_acc = acc[t];
            s_acc += v0 * c0[t];
            s_acc += v1 * c1[t];
            s_acc += v2 * c2[t];
            s_acc += v3 * c3[t];
            acc[t] = s_acc;
          }
        }
      }
      for (; e < end; ++e) {
        const double v = x.val[e];
        const double* __restrict c = fb + size_t{x.kk[e]} * r;
#if defined(TCSS_KERNELS_USE_AVX2)
        if ((r & 3) == 0) {
          const __m256d w = _mm256_set1_pd(v);
          for (size_t t = 0; t < r; t += 4) {
            _mm256_storeu_pd(acc + t, AddVC(_mm256_loadu_pd(acc + t), w, c, t));
          }
        } else
#endif
        {
          TCSS_SIMD_LOOP
          for (size_t t = 0; t < r; ++t) acc[t] += v * c[t];
        }
      }
#if defined(TCSS_KERNELS_USE_AVX2)
      if ((r & 3) == 0) {
        for (size_t t = 0; t < r; t += 4) {
          _mm256_storeu_pd(
              dst + t,
              _mm256_add_pd(_mm256_loadu_pd(dst + t),
                            _mm256_mul_pd(_mm256_loadu_pd(acc + t),
                                          _mm256_loadu_pd(b + t))));
        }
      } else
#endif
      {
        TCSS_SIMD_LOOP
        for (size_t t = 0; t < r; ++t) dst[t] += acc[t] * b[t];
      }
      ++f;
    }
  }
}

void CsfMttkrpMode1(const CsfView& x, const double* fa, const double* fb,
                    size_t r, double* out, size_t s_begin, size_t s_end) {
  // fa = U1 (slices), fb = U3; scatter into out rows indexed by fiber j.
  std::vector<double> acc_buf(r);
  double* __restrict acc = acc_buf.data();
  for (size_t s = s_begin; s < s_end; ++s) {
    const double* __restrict a = fa + size_t{x.slice_id[s]} * r;
    for (size_t f = x.slice_start[s]; f < x.slice_start[s + 1]; ++f) {
      const size_t begin = x.fiber_start[f];
      const size_t end = x.fiber_start[f + 1];
      double* __restrict dst = out + size_t{x.fiber_id[f]} * r;
      if (end - begin == 1) {
        const double v = x.val[begin];
        const double* __restrict c = fb + size_t{x.kk[begin]} * r;
        TCSS_SIMD_LOOP
        for (size_t t = 0; t < r; ++t) dst[t] += v * a[t] * c[t];
        continue;
      }
      if (end - begin <= 4) {
        // Same 2-4-nonzero fusion as mode 0 (see the comment there).
        const double* __restrict c0 = fb + size_t{x.kk[begin]} * r;
        const double* __restrict c1 = fb + size_t{x.kk[begin + 1]} * r;
        const double v0 = x.val[begin];
        const double v1 = x.val[begin + 1];
        if (end - begin == 2) {
          TCSS_SIMD_LOOP
          for (size_t t = 0; t < r; ++t) {
            double sum = v0 * c0[t];
            sum += v1 * c1[t];
            dst[t] += sum * a[t];
          }
        } else if (end - begin == 3) {
          const double* __restrict c2 = fb + size_t{x.kk[begin + 2]} * r;
          const double v2 = x.val[begin + 2];
          TCSS_SIMD_LOOP
          for (size_t t = 0; t < r; ++t) {
            double sum = v0 * c0[t];
            sum += v1 * c1[t];
            sum += v2 * c2[t];
            dst[t] += sum * a[t];
          }
        } else {
          const double* __restrict c2 = fb + size_t{x.kk[begin + 2]} * r;
          const double* __restrict c3 = fb + size_t{x.kk[begin + 3]} * r;
          const double v2 = x.val[begin + 2];
          const double v3 = x.val[begin + 3];
          TCSS_SIMD_LOOP
          for (size_t t = 0; t < r; ++t) {
            double sum = v0 * c0[t];
            sum += v1 * c1[t];
            sum += v2 * c2[t];
            sum += v3 * c3[t];
            dst[t] += sum * a[t];
          }
        }
        continue;
      }
      for (size_t t = 0; t < r; ++t) acc[t] = 0.0;
      size_t e = begin;
      for (; e + 4 <= end; e += 4) {
        const double v0 = x.val[e], v1 = x.val[e + 1];
        const double v2 = x.val[e + 2], v3 = x.val[e + 3];
        const double* __restrict c0 = fb + size_t{x.kk[e]} * r;
        const double* __restrict c1 = fb + size_t{x.kk[e + 1]} * r;
        const double* __restrict c2 = fb + size_t{x.kk[e + 2]} * r;
        const double* __restrict c3 = fb + size_t{x.kk[e + 3]} * r;
        TCSS_SIMD_LOOP
        for (size_t t = 0; t < r; ++t) {
          double s_acc = acc[t];
          s_acc += v0 * c0[t];
          s_acc += v1 * c1[t];
          s_acc += v2 * c2[t];
          s_acc += v3 * c3[t];
          acc[t] = s_acc;
        }
      }
      for (; e < end; ++e) {
        const double v = x.val[e];
        const double* __restrict c = fb + size_t{x.kk[e]} * r;
        TCSS_SIMD_LOOP
        for (size_t t = 0; t < r; ++t) acc[t] += v * c[t];
      }
      TCSS_SIMD_LOOP
      for (size_t t = 0; t < r; ++t) dst[t] += acc[t] * a[t];
    }
  }
}

void CsfMttkrpMode2(const CsfView& x, const double* fa, const double* fb,
                    size_t r, double* out, size_t s_begin, size_t s_end) {
  // fa = U1 (slices), fb = U2 (fibers); the per-fiber product
  // w = u1[i,:] * u2[j,:] is reused across the fiber's nonzeros.
  std::vector<double> w_buf(r);
  double* __restrict w = w_buf.data();
  for (size_t s = s_begin; s < s_end; ++s) {
    const double* __restrict a = fa + size_t{x.slice_id[s]} * r;
    for (size_t f = x.slice_start[s]; f < x.slice_start[s + 1]; ++f) {
      const double* __restrict b = fb + size_t{x.fiber_id[f]} * r;
      TCSS_SIMD_LOOP
      for (size_t t = 0; t < r; ++t) w[t] = a[t] * b[t];
      for (size_t e = x.fiber_start[f]; e < x.fiber_start[f + 1]; ++e) {
        const double v = x.val[e];
        double* __restrict dst = out + size_t{x.kk[e]} * r;
        TCSS_SIMD_LOOP
        for (size_t t = 0; t < r; ++t) dst[t] += v * w[t];
      }
    }
  }
}

double CsfRewrittenEntries(const CsfView& x, const double* u1,
                           const double* u2, const double* u3,
                           const double* h, size_t r, double w_pos,
                           double w_neg, double* gu1, double* gu2,
                           double* gu3, double* gh, size_t s_begin,
                           size_t s_end) {
  const bool want_grads = gu1 != nullptr;
  // Per-fiber precomputations: ha = h*a, hb = h*b, hab = h*a*b, ab = a*b.
  // y = sum_t hab_t c_t; dL/dU1 row = g*hb*c, dL/dU2 row = g*ha*c,
  // dL/dU3 row = g*hab, dL/dh = g*ab*c — the same per-term products as
  // AccumulateEntryGrad, hoisted out of the nonzero loop.
  std::vector<double> scratch(4 * r);
  double* __restrict ha = scratch.data();
  double* __restrict hb = ha + r;
  double* __restrict hab = hb + r;
  double* __restrict ab = hab + r;
  double loss = 0.0;
  for (size_t s = s_begin; s < s_end; ++s) {
    const double* __restrict a = u1 + size_t{x.slice_id[s]} * r;
    double* __restrict ga =
        want_grads ? gu1 + size_t{x.slice_id[s]} * r : nullptr;
    for (size_t f = x.slice_start[s]; f < x.slice_start[s + 1]; ++f) {
      const double* __restrict b = u2 + size_t{x.fiber_id[f]} * r;
      double* __restrict gb =
          want_grads ? gu2 + size_t{x.fiber_id[f]} * r : nullptr;
      TCSS_SIMD_LOOP
      for (size_t t = 0; t < r; ++t) {
        const double hat = h[t] * a[t];
        ha[t] = hat;
        hb[t] = h[t] * b[t];
        hab[t] = hat * b[t];
        ab[t] = a[t] * b[t];
      }
      for (size_t e = x.fiber_start[f]; e < x.fiber_start[f + 1]; ++e) {
        const double* __restrict c = u3 + size_t{x.kk[e]} * r;
        const double v = x.val[e];
        // Ascending-t scalar sum in BOTH builds: a simd reduction would
        // tree-reorder the chain and break scalar/native bit equality.
        double y = 0.0;
        for (size_t t = 0; t < r; ++t) y += hab[t] * c[t];
        loss += (w_pos - w_neg) * y * y - 2.0 * w_pos * v * y +
                w_pos * v * v;
        if (want_grads) {
          const double g = 2.0 * (w_pos - w_neg) * y - 2.0 * w_pos * v;
          double* __restrict gc = gu3 + size_t{x.kk[e]} * r;
          TCSS_SIMD_LOOP
          for (size_t t = 0; t < r; ++t) {
            ga[t] += g * hb[t] * c[t];
            gb[t] += g * ha[t] * c[t];
            gc[t] += g * hab[t];
            gh[t] += g * ab[t] * c[t];
          }
        }
      }
    }
  }
  return loss;
}

}  // namespace

const KernelTable kTable = {
    TCSS_KERNEL_NAME,   GemmRows,       GemmTRows,
    GramUpper,          CsfMttkrpMode0, CsfMttkrpMode1,
    CsfMttkrpMode2,     CsfRewrittenEntries,
};

}  // namespace TCSS_KERNEL_NS
}  // namespace kern
}  // namespace tcss

#undef TCSS_SIMD_LOOP
