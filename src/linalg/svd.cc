#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/subspace_iteration.h"

namespace tcss {
namespace {

// Gram operator (A^T A or A A^T, whichever is smaller) of an implicit
// matrix.
class ImplicitGram : public LinearOperator {
 public:
  ImplicitGram(const MatVecOperator* op, bool use_cols)
      : op_(op), use_cols_(use_cols),
        tmp_(use_cols ? op->Rows() : op->Cols()) {}

  size_t Dim() const override {
    return use_cols_ ? op_->Cols() : op_->Rows();
  }

  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override {
    if (use_cols_) {
      // y = A^T (A x)
      op_->Apply(x, &tmp_);
      op_->ApplyTranspose(tmp_, y);
    } else {
      // y = A (A^T x)
      op_->ApplyTranspose(x, &tmp_);
      op_->Apply(tmp_, y);
    }
  }

 private:
  const MatVecOperator* op_;
  bool use_cols_;
  mutable std::vector<double> tmp_;
};

// Wraps a dense matrix in the MatVecOperator interface.
class DenseMatVec : public MatVecOperator {
 public:
  explicit DenseMatVec(const Matrix* a) : a_(a) {}
  size_t Rows() const override { return a_->rows(); }
  size_t Cols() const override { return a_->cols(); }
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override {
    *y = MatVec(*a_, x);
  }
  void ApplyTranspose(const std::vector<double>& x,
                      std::vector<double>* y) const override {
    *y = MatTVec(*a_, x);
  }

 private:
  const Matrix* a_;
};

}  // namespace

Result<TruncatedSvd> ComputeTruncatedSvd(const MatVecOperator& op, size_t r,
                                         uint64_t seed) {
  const size_t m = op.Rows();
  const size_t n = op.Cols();
  if (r == 0 || r > std::min(m, n)) {
    return Status::InvalidArgument(
        StrFormat("TruncatedSvd: r=%zu out of range for %zux%zu", r, m, n));
  }
  const bool use_cols = n <= m;  // eigensolve on the smaller Gram side
  ImplicitGram gram(&op, use_cols);
  SubspaceIterationOptions sub_opts;
  sub_opts.seed = seed;
  auto eig = SubspaceEigen(gram, r, sub_opts);
  if (!eig.ok()) return eig.status();
  EigenPairs pairs = eig.MoveValue();

  TruncatedSvd out;
  out.s.resize(r);
  for (size_t j = 0; j < r; ++j) {
    out.s[j] = std::sqrt(std::max(pairs.values[j], 0.0));
  }

  if (use_cols) {
    out.v = std::move(pairs.vectors);  // n x r, right singular vectors
    out.u.Resize(m, r);
    std::vector<double> x(n), y(m);
    for (size_t j = 0; j < r; ++j) {
      for (size_t i = 0; i < n; ++i) x[i] = out.v(i, j);
      op.Apply(x, &y);
      const double inv = out.s[j] > 1e-14 ? 1.0 / out.s[j] : 0.0;
      for (size_t i = 0; i < m; ++i) out.u(i, j) = y[i] * inv;
    }
  } else {
    out.u = std::move(pairs.vectors);  // m x r, left singular vectors
    out.v.Resize(n, r);
    std::vector<double> x(m), y(n);
    for (size_t j = 0; j < r; ++j) {
      for (size_t i = 0; i < m; ++i) x[i] = out.u(i, j);
      op.ApplyTranspose(x, &y);
      const double inv = out.s[j] > 1e-14 ? 1.0 / out.s[j] : 0.0;
      for (size_t i = 0; i < n; ++i) out.v(i, j) = y[i] * inv;
    }
  }
  return out;
}

Result<TruncatedSvd> ComputeTruncatedSvd(const Matrix& a, size_t r) {
  DenseMatVec op(&a);
  return ComputeTruncatedSvd(op, r);
}

}  // namespace tcss
