#include "linalg/jacobi_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"

namespace tcss {

Result<EigenDecomposition> JacobiEigen(const Matrix& a_in, int max_sweeps,
                                       double tol) {
  if (a_in.rows() != a_in.cols()) {
    return Status::InvalidArgument(
        StrFormat("JacobiEigen: matrix must be square, got %zux%zu",
                  a_in.rows(), a_in.cols()));
  }
  const size_t n = a_in.rows();
  // Symmetrize defensively; the algorithm requires exact symmetry.
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j)
      a(i, j) = 0.5 * (a_in(i, j) + a_in(j, i));

  Matrix v = Matrix::Identity(n);

  auto off_norm = [&a, n]() {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i)
      for (size_t j = i + 1; j < n; ++j) s += a(i, j) * a(i, j);
    return std::sqrt(2.0 * s);
  };

  const double scale = std::max(a.MaxAbs(), 1e-300);
  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_norm() <= tol * scale * static_cast<double>(n)) {
      converged = true;
      break;
    }
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable tangent of the rotation angle.
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        // Apply rotation J(p,q,theta) on both sides of A.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!converged && off_norm() > 1e-6 * scale * static_cast<double>(n)) {
    return Status::NotConverged(
        StrFormat("JacobiEigen: off-diagonal norm %.3e after %d sweeps",
                  off_norm(), max_sweeps));
  }

  EigenDecomposition out;
  out.values.resize(n);
  for (size_t i = 0; i < n; ++i) out.values[i] = a(i, i);

  // Sort eigenpairs by non-increasing eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&out](size_t x, size_t y) {
    return out.values[x] > out.values[y];
  });
  std::vector<double> sorted_vals(n);
  Matrix sorted_vecs(n, n);
  for (size_t j = 0; j < n; ++j) {
    sorted_vals[j] = out.values[order[j]];
    for (size_t i = 0; i < n; ++i) sorted_vecs(i, j) = v(i, order[j]);
  }
  out.values = std::move(sorted_vals);
  out.vectors = std::move(sorted_vecs);
  return out;
}

}  // namespace tcss
