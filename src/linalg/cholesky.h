#ifndef TCSS_LINALG_CHOLESKY_H_
#define TCSS_LINALG_CHOLESKY_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace tcss {

/// Solves the symmetric positive-definite system A x = b by Cholesky
/// factorization. A small ridge may be passed to regularize nearly-singular
/// normal equations (A + ridge * I) x = b, as used by the ALS row solvers.
Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b,
                                          double ridge = 0.0);

/// Solves A X = B column-by-column for SPD A; B is (n x k).
Result<Matrix> CholeskySolveMulti(const Matrix& a, const Matrix& b,
                                  double ridge = 0.0);

}  // namespace tcss

#endif  // TCSS_LINALG_CHOLESKY_H_
