#ifndef TCSS_LINALG_JACOBI_EIGEN_H_
#define TCSS_LINALG_JACOBI_EIGEN_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace tcss {

/// Full eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues sorted in non-increasing order.
  std::vector<double> values;
  /// Column j of `vectors` is the eigenvector for values[j].
  Matrix vectors;
};

/// Cyclic Jacobi rotation eigensolver for small symmetric matrices
/// (n up to a few hundred; O(n^3) per sweep). Input must be square and
/// symmetric; symmetry is enforced by averaging. Accuracy ~1e-12.
Result<EigenDecomposition> JacobiEigen(const Matrix& a, int max_sweeps = 64,
                                       double tol = 1e-12);

}  // namespace tcss

#endif  // TCSS_LINALG_JACOBI_EIGEN_H_
