#include "linalg/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "linalg/kernel_table.h"

namespace tcss {

namespace {

/// Minimum multiply-add count before MatMul/MatTMul go parallel; below it
/// the fork/join overhead dominates. Row-sharded outputs are disjoint and
/// every output element is summed in the same index order as the serial
/// loop, so the parallel path is bit-identical to the serial one and the
/// threshold cannot change results.
constexpr size_t kParallelFlopThreshold = 1u << 15;

/// Row grain: at most 32 shards, pure function of the row count.
size_t RowGrain(size_t rows) { return std::max<size_t>(1, (rows + 31) / 32); }

}  // namespace

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    TCSS_CHECK(rows[i].size() == m.cols_) << "ragged row " << i;
    std::copy(rows[i].begin(), rows[i].end(), m.row(i));
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::GaussianRandom(size_t rows, size_t cols, Rng* rng,
                              double stddev) {
  Matrix m(rows, cols);
  for (double& x : m.data_) x = rng->Gaussian(0.0, stddev);
  return m;
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Resize(size_t rows, size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

void Matrix::Add(const Matrix& other, double alpha) {
  TCSS_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Scale(double alpha) {
  for (double& x : data_) x *= alpha;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

std::vector<double> Matrix::Column(size_t j) const {
  std::vector<double> v(rows_);
  for (size_t i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
  return v;
}

void Matrix::SetColumn(size_t j, const std::vector<double>& v) {
  TCSS_CHECK(v.size() == rows_);
  for (size_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

std::string Matrix::ToString(size_t max_rows, size_t max_cols) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")";
  size_t show_r = std::min(rows_, max_rows);
  size_t show_c = std::min(cols_, max_cols);
  for (size_t i = 0; i < show_r; ++i) {
    os << "\n  [";
    for (size_t j = 0; j < show_c; ++j) {
      if (j) os << ", ";
      os << (*this)(i, j);
    }
    if (show_c < cols_) os << ", ...";
    os << "]";
  }
  if (show_r < rows_) os << "\n  ...";
  return os.str();
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  TCSS_CHECK(a.cols() == b.rows()) << "MatMul shape mismatch";
  Matrix out(a.rows(), b.cols());
  // Dispatched micro-kernel (kernels_impl.h): i-k-j order with k-tiling
  // and 4-way register blocking. Every out(i,j) accumulates in ascending
  // k regardless of sharding or kernel build, so all paths are
  // bit-identical to the serial reference loop.
  const KernelTable& kern = ActiveKernels();
  if (a.rows() * a.cols() * b.cols() >= kParallelFlopThreshold) {
    ParallelFor(a.rows(), RowGrain(a.rows()),
                [&](size_t begin, size_t end, size_t) {
                  kern.gemm_rows(a.data(), b.data(), out.data(), begin, end,
                                 a.cols(), b.cols());
                });
  } else {
    kern.gemm_rows(a.data(), b.data(), out.data(), 0, a.rows(), a.cols(),
                   b.cols());
  }
  return out;
}

Matrix MatTMul(const Matrix& a, const Matrix& b) {
  TCSS_CHECK(a.rows() == b.rows()) << "MatTMul shape mismatch";
  Matrix out(a.cols(), b.cols());
  // out(i,j) = sum_k a(k,i) b(k,j): i indexes output rows, so sharding
  // over i is exact; k runs in ascending order for every element in all
  // kernel builds, matching a k-outer serial loop bit for bit.
  const KernelTable& kern = ActiveKernels();
  if (a.rows() * a.cols() * b.cols() >= kParallelFlopThreshold) {
    ParallelFor(a.cols(), RowGrain(a.cols()),
                [&](size_t begin, size_t end, size_t) {
                  kern.gemmt_rows(a.data(), b.data(), out.data(), begin, end,
                                  a.rows(), a.cols(), b.cols());
                });
  } else {
    kern.gemmt_rows(a.data(), b.data(), out.data(), 0, a.cols(), a.rows(),
                    a.cols(), b.cols());
  }
  return out;
}

Matrix MatMulT(const Matrix& a, const Matrix& b) {
  TCSS_CHECK(a.cols() == b.cols()) << "MatMulT shape mismatch";
  Matrix out(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.row(i);
    double* out_row = out.row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const double* b_row = b.row(j);
      double s = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) s += a_row[k] * b_row[k];
      out_row[j] = s;
    }
  }
  return out;
}

Matrix Gram(const Matrix& a) {
  // a^T a is symmetric: compute only the upper triangle and mirror. The
  // (i,j) and (j,i) chains are the same multiplications a(k,i)*a(k,j) in
  // the same ascending-k order, so the mirror is bitwise-faithful to the
  // full-rectangle MatTMul(a, a) it replaces (proptest keeps that gate).
  Matrix out(a.cols(), a.cols());
  const KernelTable& kern = ActiveKernels();
  if (a.rows() * a.cols() * a.cols() >= kParallelFlopThreshold) {
    ParallelFor(a.cols(), RowGrain(a.cols()),
                [&](size_t begin, size_t end, size_t) {
                  kern.gram_upper(a.data(), out.data(), begin, end, a.rows(),
                                  a.cols());
                });
  } else {
    kern.gram_upper(a.data(), out.data(), 0, a.cols(), a.rows(), a.cols());
  }
  for (size_t i = 0; i < a.cols(); ++i)
    for (size_t j = i + 1; j < a.cols(); ++j) out(j, i) = out(i, j);
  return out;
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  TCSS_CHECK(x.size() == a.cols());
  std::vector<double> y(a.rows(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    double s = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x) {
  TCSS_CHECK(x.size() == a.rows());
  std::vector<double> y(a.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t j = 0; j < a.cols(); ++j) y[j] += xi * row[j];
  }
  return y;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  TCSS_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out(a.rows(), a.cols());
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j) out(i, j) = a(i, j) * b(i, j);
  return out;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  TCSS_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j)
      m = std::max(m, std::fabs(a(i, j) - b(i, j)));
  return m;
}

}  // namespace tcss
