#ifndef TCSS_LINALG_SUBSPACE_ITERATION_H_
#define TCSS_LINALG_SUBSPACE_ITERATION_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/linear_operator.h"
#include "linalg/matrix.h"

namespace tcss {

struct SubspaceIterationOptions {
  int max_iterations = 300;
  /// Convergence when the max change of Ritz values between iterations
  /// drops below tol * |largest Ritz value|.
  double tol = 1e-8;
  uint64_t seed = 42;
  /// Extra guard vectors beyond the requested r improve convergence of the
  /// trailing eigenpairs; they are discarded from the output.
  int oversample = 4;
};

/// Top-r eigenpairs returned by SubspaceEigen.
struct EigenPairs {
  std::vector<double> values;  ///< r values, non-increasing.
  Matrix vectors;              ///< Dim() x r, orthonormal columns.
  int iterations = 0;          ///< iterations actually performed.
};

/// Top-r eigenpairs of a symmetric operator by block power iteration
/// (subspace iteration) with Rayleigh-Ritz extraction. Suited to large
/// implicit operators where only matvecs are available (e.g. Gram matrices
/// of sparse tensor unfoldings). Requires r <= Dim().
///
/// Note: plain power iteration converges to the eigenvalues largest in
/// magnitude; for the PSD Gram operators used in this library that
/// coincides with the algebraically largest, which is what spectral
/// initialization needs.
Result<EigenPairs> SubspaceEigen(const LinearOperator& op, size_t r,
                                 const SubspaceIterationOptions& opts = {});

}  // namespace tcss

#endif  // TCSS_LINALG_SUBSPACE_ITERATION_H_
