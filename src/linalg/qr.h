#ifndef TCSS_LINALG_QR_H_
#define TCSS_LINALG_QR_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace tcss {

/// In-place orthonormalization of the columns of `a` (m x n, m >= n) via
/// modified Gram-Schmidt with one re-orthogonalization pass. Columns that
/// become numerically zero (rank deficiency) are replaced by random
/// directions re-orthogonalized against the rest, so the result always has
/// orthonormal columns. `rng` may be null if the input is full-rank.
Status Orthonormalize(Matrix* a, Rng* rng = nullptr);

/// Thin QR decomposition a = q * r with q (m x n) orthonormal columns and
/// r (n x n) upper triangular. Requires m >= n and full column rank.
Status ThinQr(const Matrix& a, Matrix* q, Matrix* r);

}  // namespace tcss

#endif  // TCSS_LINALG_QR_H_
