#ifndef TCSS_LINALG_SIMD_H_
#define TCSS_LINALG_SIMD_H_

namespace tcss {

/// Which build of the micro-kernels (linalg/kernel_table.h) executes.
///
///  * kScalar - the reference build: plain loops compiled with the
///    project-default flags. This is the semantics every other variant
///    is differentially tested against.
///  * kNative - the same kernel bodies compiled with vector hints
///    (#pragma omp simd, -O3, and -mavx2 where the toolchain supports
///    it). The bodies keep every per-element accumulation chain in the
///    same order and forbid FP contraction (-ffp-contract=off), so the
///    two builds are bitwise-identical; only the instruction mix
///    differs. See DESIGN.md "Kernel architecture & SIMD dispatch".
enum class SimdMode { kScalar, kNative };

/// Mode currently driving ActiveKernels(). Resolved once, lazily, from
/// the TCSS_SIMD environment variable (off|scalar|native; off and scalar
/// are synonyms for the reference build); unset picks kNative when the
/// vectorized build was compiled in and the CPU supports it, else
/// kScalar.
SimdMode ActiveSimdMode();

/// Overrides the active mode at runtime (differential tests, benches).
void SetSimdMode(SimdMode mode);

/// Pure resolution function (exposed for the dispatch guard test):
/// maps an environment value (nullptr = unset) to the mode the
/// dispatcher would select on this machine. Unknown values warn and
/// resolve like unset; "native" on a machine whose CPU lacks the
/// compiled ISA warns and resolves to kScalar (never silently).
SimdMode ResolveSimdMode(const char* env_value);

const char* SimdModeName(SimdMode mode);

/// True iff the native kernel TU was actually compiled with vector
/// flags (the toolchain supported -fopenmp-simd / -mavx2). When false,
/// kNative selects a table with identical codegen to kScalar.
bool SimdNativeCompiledIn();

/// True iff this CPU can execute the ISA the native TU was compiled
/// for (AVX2 check on x86-64 when -mavx2 was applied; otherwise true).
bool SimdNativeSupportedByCpu();

}  // namespace tcss

#endif  // TCSS_LINALG_SIMD_H_
