#include "linalg/vector_ops.h"

#include <cmath>

#include "common/logging.h"

namespace tcss {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  TCSS_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  TCSS_CHECK(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void ScaleVec(double alpha, std::vector<double>* v) {
  for (double& x : *v) x *= alpha;
}

double Normalize(std::vector<double>* v) {
  double n = Norm2(*v);
  if (n > 0.0) {
    ScaleVec(1.0 / n, v);
  }
  return n;
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double na = Norm2(a);
  double nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

std::vector<double> HadamardVec(const std::vector<double>& a,
                                const std::vector<double>& b) {
  TCSS_CHECK(a.size() == b.size());
  std::vector<double> c(a.size());
  for (size_t i = 0; i < a.size(); ++i) c[i] = a[i] * b[i];
  return c;
}

}  // namespace tcss
