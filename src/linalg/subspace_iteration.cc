#include "linalg/subspace_iteration.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/qr.h"

namespace tcss {

size_t DenseOperator::Dim() const { return a_->rows(); }

void DenseOperator::Apply(const std::vector<double>& x,
                          std::vector<double>* y) const {
  const Matrix& a = *a_;
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    double s = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) s += row[j] * x[j];
    (*y)[i] = s;
  }
}

Result<EigenPairs> SubspaceEigen(const LinearOperator& op, size_t r,
                                 const SubspaceIterationOptions& opts) {
  const size_t n = op.Dim();
  if (r == 0 || r > n) {
    return Status::InvalidArgument(
        StrFormat("SubspaceEigen: r=%zu out of range for dim %zu", r, n));
  }
  const size_t block =
      std::min(n, r + static_cast<size_t>(std::max(opts.oversample, 0)));

  Rng rng(opts.seed);
  Matrix q = Matrix::GaussianRandom(n, block, &rng);
  Status st = Orthonormalize(&q, &rng);
  if (!st.ok()) return st;

  std::vector<double> ritz_prev(block, 0.0);
  std::vector<double> x(n), y(n);
  Matrix aq(n, block);
  int iter = 0;
  bool converged = false;

  for (iter = 1; iter <= opts.max_iterations; ++iter) {
    // aq = A * q, column by column through the operator interface.
    for (size_t j = 0; j < block; ++j) {
      for (size_t i = 0; i < n; ++i) x[i] = q(i, j);
      op.Apply(x, &y);
      for (size_t i = 0; i < n; ++i) aq(i, j) = y[i];
    }
    // Rayleigh-Ritz: T = q^T (A q), small block x block symmetric problem.
    Matrix t = MatTMul(q, aq);
    auto eig = JacobiEigen(t);
    if (!eig.ok()) return eig.status();
    const EigenDecomposition& dec = eig.value();

    // Rotate the basis toward the Ritz vectors: q <- (A q) * W then QR.
    // Using A q (not q) both advances the power iteration and aligns with
    // the Ritz ordering.
    q = MatMul(aq, dec.vectors);
    st = Orthonormalize(&q, &rng);
    if (!st.ok()) return st;

    double max_change = 0.0;
    double max_val = 0.0;
    for (size_t j = 0; j < block; ++j) {
      max_change = std::max(max_change,
                            std::fabs(dec.values[j] - ritz_prev[j]));
      max_val = std::max(max_val, std::fabs(dec.values[j]));
      ritz_prev[j] = dec.values[j];
    }
    if (iter > 2 && max_change <= opts.tol * std::max(max_val, 1e-30)) {
      converged = true;
      break;
    }
  }

  // Final Rayleigh-Ritz on the converged basis for clean output pairs.
  for (size_t j = 0; j < block; ++j) {
    for (size_t i = 0; i < n; ++i) x[i] = q(i, j);
    op.Apply(x, &y);
    for (size_t i = 0; i < n; ++i) aq(i, j) = y[i];
  }
  Matrix t = MatTMul(q, aq);
  auto eig = JacobiEigen(t);
  if (!eig.ok()) return eig.status();
  const EigenDecomposition& dec = eig.value();
  Matrix ritz = MatMul(q, dec.vectors);

  EigenPairs out;
  out.iterations = iter;
  out.values.assign(dec.values.begin(), dec.values.begin() + r);
  out.vectors.Resize(n, r);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < r; ++j) out.vectors(i, j) = ritz(i, j);
  if (!converged) {
    // Not an error for our use cases: spectral *initialization* tolerates
    // approximate eigenvectors. The caller can inspect `iterations`.
  }
  return out;
}

}  // namespace tcss
