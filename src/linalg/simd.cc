#include "linalg/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "linalg/kernel_table.h"

// This TU is compiled with the project-default (baseline) flags so the
// CPU-capability probe itself never executes unsupported instructions.
// src/CMakeLists.txt defines TCSS_SIMD_NATIVE_COMPILED here when the
// native TU got vector flags, and TCSS_KERNELS_NATIVE_AVX2 when those
// flags included -mavx2 (making the native table AVX2-only code).

namespace tcss {
namespace {

// 0 = unresolved; otherwise 1 + static_cast<int>(SimdMode).
std::atomic<int> g_mode{0};

SimdMode DefaultSimdMode() {
  if (SimdNativeCompiledIn() && SimdNativeSupportedByCpu()) {
    return SimdMode::kNative;
  }
  return SimdMode::kScalar;
}

}  // namespace

bool SimdNativeCompiledIn() {
#if defined(TCSS_SIMD_NATIVE_COMPILED)
  return true;
#else
  return false;
#endif
}

bool SimdNativeSupportedByCpu() {
#if defined(TCSS_KERNELS_NATIVE_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return true;
#endif
}

const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kScalar:
      return "scalar";
    case SimdMode::kNative:
      return "native";
  }
  return "unknown";
}

SimdMode ResolveSimdMode(const char* env_value) {
  if (env_value == nullptr || env_value[0] == '\0') {
    return DefaultSimdMode();
  }
  if (std::strcmp(env_value, "off") == 0 ||
      std::strcmp(env_value, "scalar") == 0) {
    return SimdMode::kScalar;
  }
  if (std::strcmp(env_value, "native") == 0) {
    if (!SimdNativeCompiledIn()) {
      std::fprintf(stderr,
                   "tcss: TCSS_SIMD=native but the vectorized kernel build "
                   "was not compiled in; using scalar kernels\n");
      return SimdMode::kScalar;
    }
    if (!SimdNativeSupportedByCpu()) {
      std::fprintf(stderr,
                   "tcss: TCSS_SIMD=native but this CPU lacks the compiled "
                   "ISA (AVX2); using scalar kernels\n");
      return SimdMode::kScalar;
    }
    return SimdMode::kNative;
  }
  std::fprintf(stderr,
               "tcss: unknown TCSS_SIMD value '%s' (want off|scalar|native); "
               "using the default\n",
               env_value);
  return DefaultSimdMode();
}

SimdMode ActiveSimdMode() {
  int packed = g_mode.load(std::memory_order_acquire);
  if (packed == 0) {
    const SimdMode resolved = ResolveSimdMode(std::getenv("TCSS_SIMD"));
    packed = 1 + static_cast<int>(resolved);
    int expected = 0;
    if (!g_mode.compare_exchange_strong(expected, packed,
                                        std::memory_order_acq_rel)) {
      packed = expected;  // another thread (or SetSimdMode) won the race
    }
  }
  return static_cast<SimdMode>(packed - 1);
}

void SetSimdMode(SimdMode mode) {
  g_mode.store(1 + static_cast<int>(mode), std::memory_order_release);
}

const KernelTable& ActiveKernels() {
  return ActiveSimdMode() == SimdMode::kNative ? NativeKernelTable()
                                               : ScalarKernelTable();
}

}  // namespace tcss
