#ifndef TCSS_LINALG_VECTOR_OPS_H_
#define TCSS_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace tcss {

/// Dot product; sizes must match.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(const std::vector<double>& v);

/// y += alpha * x.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);

/// v *= alpha.
void ScaleVec(double alpha, std::vector<double>* v);

/// Normalizes v to unit Euclidean norm. Returns the original norm
/// (0 if v was the zero vector, in which case v is left unchanged).
double Normalize(std::vector<double>* v);

/// Cosine similarity in [-1, 1]; returns 0 if either vector is zero.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Elementwise product c = a ⊙ b.
std::vector<double> HadamardVec(const std::vector<double>& a,
                                const std::vector<double>& b);

}  // namespace tcss

#endif  // TCSS_LINALG_VECTOR_OPS_H_
