#ifndef TCSS_LINALG_MATRIX_H_
#define TCSS_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"

namespace tcss {

/// Dense row-major matrix of doubles. Owning, copyable and movable.
/// This is the workhorse value type for factor matrices (I x r etc.) and
/// the small dense problems (Gram matrices, Jacobi eigen, Cholesky).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer-style data (row major).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Matrix with i.i.d. N(0, stddev^2) entries.
  static Matrix GaussianRandom(size_t rows, size_t cols, Rng* rng,
                               double stddev = 1.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(size_t i) { return data_.data() + i * cols_; }
  const double* row(size_t i) const { return data_.data() + i * cols_; }

  void Fill(double value);
  void Resize(size_t rows, size_t cols, double fill = 0.0);

  Matrix Transposed() const;

  /// this += alpha * other. Shapes must match.
  void Add(const Matrix& other, double alpha = 1.0);

  /// this *= alpha.
  void Scale(double alpha);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Max absolute entry.
  double MaxAbs() const;

  /// Extracts column j as a vector.
  std::vector<double> Column(size_t j) const;
  void SetColumn(size_t j, const std::vector<double>& v);

  /// Debug string, truncated for large matrices.
  std::string ToString(size_t max_rows = 8, size_t max_cols = 8) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// out = a * b. Shapes: (m x k) * (k x n) -> (m x n).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// out = a^T * b. Shapes: (k x m)^T * (k x n) -> (m x n).
Matrix MatTMul(const Matrix& a, const Matrix& b);

/// out = a * b^T. Shapes: (m x k) * (n x k)^T -> (m x n).
Matrix MatMulT(const Matrix& a, const Matrix& b);

/// Symmetric rank-k product a^T a (Gram matrix of the columns of a).
Matrix Gram(const Matrix& a);

/// y = A x (dense gemv). x.size() == A.cols().
std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x);

/// y = A^T x. x.size() == A.rows().
std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x);

/// Elementwise (Hadamard) product; shapes must match.
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// Max |a - b| over entries; shapes must match.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

}  // namespace tcss

#endif  // TCSS_LINALG_MATRIX_H_
