#include "linalg/cholesky.h"

#include <cmath>

#include "common/strings.h"

namespace tcss {
namespace {

// Lower Cholesky factor of (A + ridge*I); returns false if a pivot fails.
bool Factor(const Matrix& a, double ridge, Matrix* l) {
  const size_t n = a.rows();
  l->Resize(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double s = a(i, j) + (i == j ? ridge : 0.0);
      for (size_t k = 0; k < j; ++k) s -= (*l)(i, k) * (*l)(j, k);
      if (i == j) {
        if (s <= 0.0) return false;
        (*l)(i, j) = std::sqrt(s);
      } else {
        (*l)(i, j) = s / (*l)(j, j);
      }
    }
  }
  return true;
}

void SolveWithFactor(const Matrix& l, const std::vector<double>& b,
                     std::vector<double>* x) {
  const size_t n = l.rows();
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  x->resize(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * (*x)[k];
    (*x)[ii] = s / l(ii, ii);
  }
}

}  // namespace

Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b,
                                          double ridge) {
  if (a.rows() != a.cols() || b.size() != a.rows()) {
    return Status::InvalidArgument("CholeskySolve: shape mismatch");
  }
  Matrix l;
  // Retry with growing ridge if the matrix is numerically indefinite: the
  // ALS callers prefer a slightly biased solve over a hard failure.
  double r = ridge;
  for (int attempt = 0; attempt < 6; ++attempt) {
    if (Factor(a, r, &l)) {
      std::vector<double> x;
      SolveWithFactor(l, b, &x);
      return x;
    }
    r = (r == 0.0) ? 1e-10 : r * 100.0;
  }
  return Status::FailedPrecondition(
      StrFormat("CholeskySolve: matrix not SPD even with ridge %.3e", r));
}

Result<Matrix> CholeskySolveMulti(const Matrix& a, const Matrix& b,
                                  double ridge) {
  if (a.rows() != a.cols() || b.rows() != a.rows()) {
    return Status::InvalidArgument("CholeskySolveMulti: shape mismatch");
  }
  Matrix l;
  double r = ridge;
  bool ok = false;
  for (int attempt = 0; attempt < 6 && !ok; ++attempt) {
    ok = Factor(a, r, &l);
    if (!ok) r = (r == 0.0) ? 1e-10 : r * 100.0;
  }
  if (!ok) {
    return Status::FailedPrecondition(
        StrFormat("CholeskySolveMulti: matrix not SPD even with ridge %.3e",
                  r));
  }
  Matrix x(b.rows(), b.cols());
  std::vector<double> col(b.rows()), sol;
  for (size_t j = 0; j < b.cols(); ++j) {
    for (size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    SolveWithFactor(l, col, &sol);
    for (size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

}  // namespace tcss
