#ifndef TCSS_LINALG_LANCZOS_H_
#define TCSS_LINALG_LANCZOS_H_

#include "common/status.h"
#include "linalg/linear_operator.h"
#include "linalg/subspace_iteration.h"

namespace tcss {

struct LanczosOptions {
  /// Krylov subspace dimension; clamped to [2r+8, Dim]. 0 = auto.
  size_t krylov_dim = 0;
  uint64_t seed = 97;
};

/// Top-r eigenpairs of a symmetric operator by the Lanczos method with
/// full reorthogonalization (robust for the modest Krylov dimensions used
/// here). An alternative to SubspaceEigen with the same output contract:
/// typically fewer matvecs for well-separated spectra, at the cost of one
/// stored Krylov basis. Requires r <= Dim().
///
/// Like power-type methods, Lanczos finds extremal eigenvalues; for the
/// PSD Gram operators of this library those are the algebraically largest
/// (what spectral initialization needs).
Result<EigenPairs> LanczosEigen(const LinearOperator& op, size_t r,
                                const LanczosOptions& opts = LanczosOptions());

}  // namespace tcss

#endif  // TCSS_LINALG_LANCZOS_H_
