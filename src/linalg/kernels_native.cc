// Vectorized build of the micro-kernels: the SAME bodies as
// kernels_scalar.cc (kernels_impl.h), compiled with vector flags when
// the toolchain supports them — see src/CMakeLists.txt, which adds
// -O3 -funroll-loops -fopenmp-simd -mavx2 and, crucially,
// -ffp-contract=off (FMA contraction would change rounding and break
// the bitwise scalar/native contract) to this one translation unit and
// defines TCSS_KERNELS_VECTORIZE. Without toolchain support the macro
// is absent and this TU degenerates to a second scalar build, which
// SimdNativeCompiledIn() reports.

#define TCSS_KERNEL_NS native
#if defined(TCSS_KERNELS_VECTORIZE)
#define TCSS_KERNEL_NAME "native"
#else
#define TCSS_KERNEL_NAME "native-unvectorized"
#endif
#include "linalg/kernels_impl.h"

namespace tcss {

const KernelTable& NativeKernelTable() { return kern::native::kTable; }

}  // namespace tcss
