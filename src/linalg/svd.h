#ifndef TCSS_LINALG_SVD_H_
#define TCSS_LINALG_SVD_H_

#include <vector>

#include "common/status.h"
#include "linalg/linear_operator.h"
#include "linalg/matrix.h"

namespace tcss {

/// Truncated singular value decomposition A ~= U diag(S) V^T.
struct TruncatedSvd {
  Matrix u;                     ///< m x r, orthonormal columns.
  std::vector<double> s;        ///< r singular values, non-increasing, >= 0.
  Matrix v;                     ///< n x r, orthonormal columns.
};

/// Rank-r truncated SVD of a dense matrix, computed through the symmetric
/// eigendecomposition of the smaller Gram matrix (A^T A or A A^T). Suited
/// to the tall-skinny / short-fat shapes used in this library. r must not
/// exceed min(m, n).
Result<TruncatedSvd> ComputeTruncatedSvd(const Matrix& a, size_t r);

/// Abstract "matrix known through products" interface for sparse SVD:
/// implement y = A x and y = A^T x and get a truncated SVD without ever
/// materializing A (used by PureSVD over the sparse user-POI matrix).
class MatVecOperator {
 public:
  virtual ~MatVecOperator() = default;
  virtual size_t Rows() const = 0;
  virtual size_t Cols() const = 0;
  /// y (size Rows) = A x (x size Cols). y is pre-sized; overwrite it.
  virtual void Apply(const std::vector<double>& x,
                     std::vector<double>* y) const = 0;
  /// y (size Cols) = A^T x (x size Rows). y is pre-sized; overwrite it.
  virtual void ApplyTranspose(const std::vector<double>& x,
                              std::vector<double>* y) const = 0;
};

/// Truncated SVD of an implicit matrix via subspace iteration on the Gram
/// operator of the smaller side.
Result<TruncatedSvd> ComputeTruncatedSvd(const MatVecOperator& op, size_t r,
                                         uint64_t seed = 42);

}  // namespace tcss

#endif  // TCSS_LINALG_SVD_H_
