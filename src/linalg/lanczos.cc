#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/vector_ops.h"

namespace tcss {
namespace {

// Jacobi eigensolve of the current (built x built) tridiagonal.
Result<EigenDecomposition> TridiagEigen(const std::vector<double>& alpha,
                                        const std::vector<double>& beta,
                                        size_t built) {
  Matrix t(built, built);
  for (size_t i = 0; i < built; ++i) {
    t(i, i) = alpha[i];
    if (i + 1 < built) {
      t(i, i + 1) = beta[i];
      t(i + 1, i) = beta[i];
    }
  }
  return JacobiEigen(t);
}

}  // namespace

Result<EigenPairs> LanczosEigen(const LinearOperator& op, size_t r,
                                const LanczosOptions& opts) {
  const size_t n = op.Dim();
  if (r == 0 || r > n) {
    return Status::InvalidArgument(
        StrFormat("LanczosEigen: r=%zu out of range for dim %zu", r, n));
  }
  const size_t min_dim = std::min(n, std::max(opts.krylov_dim, 2 * r + 8));
  constexpr double kRitzTol = 1e-9;

  Rng rng(opts.seed);
  std::vector<std::vector<double>> q;  // full basis (full reorth)
  std::vector<double> alpha, beta;

  std::vector<double> v(n);
  for (auto& x : v) x = rng.Gaussian();
  Normalize(&v);
  q.push_back(v);

  std::vector<double> w(n);
  std::vector<double> ritz_prev(r, 0.0);
  size_t built = 0;
  bool exhausted = false;

  while (built < n) {
    const size_t step = built;
    op.Apply(q[step], &w);
    const double a = Dot(w, q[step]);
    alpha.push_back(a);
    Axpy(-a, q[step], &w);
    if (step > 0) Axpy(-beta[step - 1], q[step - 1], &w);
    // Full reorthogonalization (twice is enough).
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& prev : q) {
        const double proj = Dot(w, prev);
        if (proj != 0.0) Axpy(-proj, prev, &w);
      }
    }
    built = step + 1;

    // Convergence test on the top-r Ritz values (cheap: built <= ~100).
    if (built >= min_dim && built >= r) {
      auto eig = TridiagEigen(alpha, beta, built);
      if (!eig.ok()) return eig.status();
      double change = 0.0, scale = 1e-30;
      for (size_t t = 0; t < r; ++t) {
        change = std::max(change,
                          std::fabs(eig.value().values[t] - ritz_prev[t]));
        scale = std::max(scale, std::fabs(eig.value().values[t]));
        ritz_prev[t] = eig.value().values[t];
      }
      if (change <= kRitzTol * scale) break;
    }
    if (built == n) break;

    double b = Norm2(w);
    if (b < 1e-12) {
      // Invariant subspace: restart with a fresh orthogonal direction.
      for (auto& x : w) x = rng.Gaussian();
      for (int pass = 0; pass < 2; ++pass) {
        for (const auto& prev : q) {
          const double proj = Dot(w, prev);
          Axpy(-proj, prev, &w);
        }
      }
      b = Norm2(w);
      if (b < 1e-12) {
        exhausted = true;
        break;  // the whole space is spanned
      }
      ScaleVec(1.0 / b, &w);
      beta.push_back(0.0);
    } else {
      beta.push_back(b);
      ScaleVec(1.0 / b, &w);
    }
    q.push_back(w);
  }
  (void)exhausted;

  if (built < r) {
    return Status::NotConverged(
        StrFormat("LanczosEigen: Krylov space exhausted at %zu < r=%zu",
                  built, r));
  }
  auto eig = TridiagEigen(alpha, beta, built);
  if (!eig.ok()) return eig.status();
  const EigenDecomposition& dec = eig.value();

  EigenPairs out;
  out.iterations = static_cast<int>(built);
  out.values.assign(dec.values.begin(), dec.values.begin() + r);
  out.vectors.Resize(n, r);
  for (size_t col = 0; col < r; ++col) {
    for (size_t step = 0; step < built; ++step) {
      const double c = dec.vectors(step, col);
      if (c == 0.0) continue;
      for (size_t i = 0; i < n; ++i) out.vectors(i, col) += c * q[step][i];
    }
  }
  return out;
}

}  // namespace tcss
