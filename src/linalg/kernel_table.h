#ifndef TCSS_LINALG_KERNEL_TABLE_H_
#define TCSS_LINALG_KERNEL_TABLE_H_

#include <cstddef>
#include <cstdint>

#include "linalg/simd.h"

namespace tcss {

/// Raw view of a CSF tensor (tensor/csf_tensor.h) so the linalg-layer
/// kernels can traverse it without a dependency on the tensor library.
/// All arrays follow the CsfTensor layout: slices index into fibers via
/// slice_start (size num_slices + 1), fibers into nonzeros via
/// fiber_start (size num_fibers + 1).
struct CsfView {
  const uint32_t* slice_id = nullptr;
  const size_t* slice_start = nullptr;
  size_t num_slices = 0;
  const uint32_t* fiber_id = nullptr;
  const size_t* fiber_start = nullptr;
  const uint32_t* kk = nullptr;
  const double* val = nullptr;
};

/// The dispatchable micro-kernels of the training hot path. Two tables
/// exist — scalar reference and native/vectorized — built from the SAME
/// kernel bodies (kernels_impl.h) in two translation units with
/// different flags. Every kernel keeps each output element's floating-
/// point accumulation chain in a fixed (ascending) order, so the tables
/// are interchangeable bit for bit; tests/kernels_test.cc enforces it.
///
/// Matrix arguments are row-major with a row stride equal to the
/// logical column count (the only layout tcss::Matrix produces).
struct KernelTable {
  const char* name;

  /// out[i,:] += sum_k a[i,k] * b[k,:] for i in [i_begin, i_end).
  /// a is (rows x kk), b is (kk x n), out is (rows x n).
  void (*gemm_rows)(const double* a, const double* b, double* out,
                    size_t i_begin, size_t i_end, size_t kk, size_t n);

  /// out[i,:] += sum_k a[k,i] * b[k,:] for i in [i_begin, i_end).
  /// a is (rows x a_cols), b is (rows x b_cols), out is
  /// (a_cols x b_cols): the a^T b product sharded over output rows.
  void (*gemmt_rows)(const double* a, const double* b, double* out,
                     size_t i_begin, size_t i_end, size_t rows,
                     size_t a_cols, size_t b_cols);

  /// Upper triangle of the Gram product: out[i,j] += sum_k a[k,i]*a[k,j]
  /// for i in [i_begin, i_end), j in [i, cols). The caller mirrors the
  /// strict lower triangle; the (i,j) chain equals the full-rectangle
  /// (j,i) chain term for term (multiplication commutes), so mirroring
  /// is bitwise-faithful.
  void (*gram_upper)(const double* a, double* out, size_t i_begin,
                     size_t i_end, size_t rows, size_t cols);

  /// CSF MTTKRP, one function per mode, over slices [s_begin, s_end).
  /// Mode 0: out[i,:] += sum_f (u2[j_f,:] * sum_e v_e u3[k_e,:]).
  /// Mode 1: out[j_f,:] += u1[i,:] * sum_e v_e u3[k_e,:].
  /// Mode 2: out[k_e,:] += v_e * (u1[i,:] * u2[j_f,:]).
  /// fa/fb are the two factor matrices read (u2,u3 / u1,u3 / u1,u2).
  void (*csf_mttkrp_mode0)(const CsfView& x, const double* fa,
                           const double* fb, size_t r, double* out,
                           size_t s_begin, size_t s_end);
  void (*csf_mttkrp_mode1)(const CsfView& x, const double* fa,
                           const double* fb, size_t r, double* out,
                           size_t s_begin, size_t s_end);
  void (*csf_mttkrp_mode2)(const CsfView& x, const double* fa,
                           const double* fb, size_t r, double* out,
                           size_t s_begin, size_t s_end);

  /// Observed-entry loop of the rewritten loss (Eq 15 positive part)
  /// over slices [s_begin, s_end): returns
  ///   sum (w+ - w-) y^2 - 2 w+ x y + w+ x^2,  y = sum_t h_t a_t b_t c_t
  /// and, when gu1 != nullptr, accumulates dL/dU1 into gu1 (global,
  /// slice rows are disjoint across shards), dL/dU2, dL/dU3, dL/dh into
  /// gu2/gu3/gh (shard-local buffers merged by the caller). All g*
  /// must be null or non-null together.
  double (*csf_rewritten_entries)(const CsfView& x, const double* u1,
                                  const double* u2, const double* u3,
                                  const double* h, size_t r, double w_pos,
                                  double w_neg, double* gu1, double* gu2,
                                  double* gu3, double* gh, size_t s_begin,
                                  size_t s_end);
};

/// The two concrete tables (kernels_scalar.cc / kernels_native.cc).
const KernelTable& ScalarKernelTable();
const KernelTable& NativeKernelTable();

/// Table selected by ActiveSimdMode(). Resolve once per kernel call
/// site, outside parallel loops.
const KernelTable& ActiveKernels();

}  // namespace tcss

#endif  // TCSS_LINALG_KERNEL_TABLE_H_
