#include "linalg/qr.h"

#include <cmath>

#include "common/strings.h"

namespace tcss {
namespace {

// Dot product of columns p and q of a.
double ColDot(const Matrix& a, size_t p, size_t q) {
  double s = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) s += a(i, p) * a(i, q);
  return s;
}

void ColAxpy(Matrix* a, size_t dst, size_t src, double alpha) {
  for (size_t i = 0; i < a->rows(); ++i) (*a)(i, dst) += alpha * (*a)(i, src);
}

void ColScale(Matrix* a, size_t j, double alpha) {
  for (size_t i = 0; i < a->rows(); ++i) (*a)(i, j) *= alpha;
}

}  // namespace

Status Orthonormalize(Matrix* a, Rng* rng) {
  const size_t m = a->rows();
  const size_t n = a->cols();
  if (m < n) {
    return Status::InvalidArgument(
        StrFormat("Orthonormalize: need rows >= cols, got %zux%zu", m, n));
  }
  constexpr double kRankTol = 1e-12;
  for (size_t j = 0; j < n; ++j) {
    // Two passes of MGS projection for numerical robustness
    // ("twice is enough" - Kahan/Parlett).
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t p = 0; p < j; ++p) {
        double proj = ColDot(*a, p, j);
        if (proj != 0.0) ColAxpy(a, j, p, -proj);
      }
    }
    double norm = std::sqrt(ColDot(*a, j, j));
    int retries = 0;
    while (norm < kRankTol) {
      if (rng == nullptr || ++retries > 8) {
        return Status::FailedPrecondition(
            StrFormat("Orthonormalize: column %zu is rank deficient", j));
      }
      // Replace a dead column with a random direction, re-project.
      for (size_t i = 0; i < m; ++i) (*a)(i, j) = rng->Gaussian();
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t p = 0; p < j; ++p) {
          double proj = ColDot(*a, p, j);
          if (proj != 0.0) ColAxpy(a, j, p, -proj);
        }
      }
      norm = std::sqrt(ColDot(*a, j, j));
    }
    ColScale(a, j, 1.0 / norm);
  }
  return Status::OK();
}

Status ThinQr(const Matrix& a, Matrix* q, Matrix* r) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument(
        StrFormat("ThinQr: need rows >= cols, got %zux%zu", m, n));
  }
  *q = a;
  r->Resize(n, n);
  constexpr double kRankTol = 1e-12;
  for (size_t j = 0; j < n; ++j) {
    for (size_t p = 0; p < j; ++p) {
      double proj = ColDot(*q, p, j);
      (*r)(p, j) += proj;
      if (proj != 0.0) ColAxpy(q, j, p, -proj);
    }
    // Re-orthogonalization pass; accumulate corrections into R.
    for (size_t p = 0; p < j; ++p) {
      double proj = ColDot(*q, p, j);
      (*r)(p, j) += proj;
      if (proj != 0.0) ColAxpy(q, j, p, -proj);
    }
    double norm = std::sqrt(ColDot(*q, j, j));
    if (norm < kRankTol) {
      return Status::FailedPrecondition(
          StrFormat("ThinQr: matrix is rank deficient at column %zu", j));
    }
    (*r)(j, j) = norm;
    ColScale(q, j, 1.0 / norm);
  }
  return Status::OK();
}

}  // namespace tcss
