#ifndef TCSS_LINALG_LINEAR_OPERATOR_H_
#define TCSS_LINALG_LINEAR_OPERATOR_H_

#include <cstddef>
#include <vector>

namespace tcss {

/// Abstract symmetric linear operator y = A x on R^n. Lets iterative
/// eigensolvers work on implicitly-represented matrices (e.g. Gram matrices
/// of sparse tensor unfoldings) without ever materializing them.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  /// Dimension n of the (square, symmetric) operator.
  virtual size_t Dim() const = 0;

  /// Computes y = A x. `y` is pre-sized to Dim() and must be overwritten.
  virtual void Apply(const std::vector<double>& x,
                     std::vector<double>* y) const = 0;
};

/// y = (A + sigma I) x. Shifting an indefinite symmetric operator by
/// sigma >= -lambda_min makes it PSD, so power-type eigensolvers (which
/// converge to the largest-magnitude eigenvalues) return the
/// *algebraically* largest eigenpairs of A; eigenvectors are unchanged
/// and eigenvalues are shifted by sigma.
class ShiftedOperator : public LinearOperator {
 public:
  ShiftedOperator(const LinearOperator* base, double sigma)
      : base_(base), sigma_(sigma) {}

  size_t Dim() const override { return base_->Dim(); }
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override {
    base_->Apply(x, y);
    for (size_t i = 0; i < x.size(); ++i) (*y)[i] += sigma_ * x[i];
  }
  double sigma() const { return sigma_; }

 private:
  const LinearOperator* base_;
  double sigma_;
};

/// Adapter exposing an explicit dense symmetric matrix as a LinearOperator.
class DenseOperator : public LinearOperator {
 public:
  /// Keeps a pointer to `a`; the matrix must outlive the operator.
  explicit DenseOperator(const class Matrix* a) : a_(a) {}

  size_t Dim() const override;
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override;

 private:
  const class Matrix* a_;
};

}  // namespace tcss

#endif  // TCSS_LINALG_LINEAR_OPERATOR_H_
