#ifndef TCSS_COMMON_FAULT_ENV_H_
#define TCSS_COMMON_FAULT_ENV_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"

namespace tcss {

/// Env wrapper that simulates a crash (or a full disk) part-way through a
/// save. Every *mutating* operation — Append, Flush, Close, Rename,
/// Delete, directory creation — consumes one tick of a countdown; once the
/// countdown reaches zero, that operation and every later one fail with
/// IOError, as if the process had died at that instant. Optionally the
/// failing Append first writes a prefix of its payload, modelling a torn
/// write.
///
/// Reads have their own, independent countdown so the *serving* path can be
/// swept the same way: once it expires, every ReadFileToString either fails
/// with IOError or — with set_truncate_reads(true) — returns only a prefix
/// of the file, modelling a read that races a half-written model. With read
/// injection disabled (the default) reads pass through untouched so tests
/// can inspect the resulting filesystem state ("what would a restarted
/// process see?").
///
/// Typical atomicity sweep:
///
///   for (int k = 0; ; ++k) {
///     FaultInjectionEnv env(Env::Default());
///     env.set_fail_after(k);
///     Status st = SaveSomething(&env, ...);
///     if (st.ok()) break;            // k exceeded the total op count
///     // Crash happened at op k: loading must still see a valid file.
///   }
class FaultInjectionEnv : public Env {
 public:
  /// `base` must outlive this wrapper; typically Env::Default().
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  /// Fails the (k+1)-th mutating operation and all later ones.
  /// Negative k disables injection (the default).
  void set_fail_after(int k) { fail_after_ = k; }

  /// When enabled, the failing Append writes the first half of its payload
  /// before reporting the error (torn write). Later ops still fail clean.
  void set_truncate_on_failure(bool v) { truncate_on_failure_ = v; }

  /// Fails (or tears, see set_truncate_reads) the (k+1)-th
  /// ReadFileToString and all later ones. Negative k disables read
  /// injection (the default).
  void set_fail_reads_after(int k) { fail_reads_after_ = k; }

  /// When enabled, an injected read fault returns the first half of the
  /// file instead of an error — a torn read of a file another process is
  /// mid-way through writing non-atomically.
  void set_truncate_reads(bool v) { truncate_reads_ = v; }

  /// Mutating operations attempted so far (successful or not). Run a save
  /// once with injection disabled to learn the total op count to sweep.
  int ops_attempted() const { return ops_attempted_; }

  int ops_failed() const { return ops_failed_; }

  /// ReadFileToString calls attempted so far (injected or not).
  int reads_attempted() const { return reads_attempted_; }

  // Wire faults ---------------------------------------------------------
  //
  // The stream transport (NewListener/Connect) is wrapped too, so the
  // serving front-end's wire can be faulted deterministically: a shared
  // countdown across every wrapped connection fails the (k+1)-th Conn
  // operation of the given direction and all later ones. Unlike the file
  // countdowns these are atomics — server and client threads hit them
  // concurrently.

  /// Fails the (k+1)-th Conn::Read across all wrapped connections and all
  /// later ones with IOError (a reset mid-request). Negative disables.
  void set_fail_conn_reads_after(int k) { fail_conn_reads_after_.store(k); }

  /// Fails the (k+1)-th Conn::Write and all later ones. With
  /// set_truncate_conn_writes(true), the failing write first delivers
  /// the first half of its payload — a torn frame on the wire that the
  /// peer's CRC check must catch. Negative disables.
  void set_fail_conn_writes_after(int k) { fail_conn_writes_after_.store(k); }
  void set_truncate_conn_writes(bool v) { truncate_conn_writes_.store(v); }

  /// Drops the (k+1)-th *delivered* connection and all later ones: Accept
  /// receives the peer's connection, the wrapper closes it and reports a
  /// transient null Conn — exactly how PosixListener surfaces a real
  /// ECONNABORTED (client gone between connect and accept). The client
  /// side sees its connection die during the handshake. Idle Accept
  /// timeouts do not consume ticks, so the schedule is deterministic no
  /// matter how often the server's accept loop polls. Negative disables.
  void set_fail_accepts_after(int k) { fail_accepts_after_.store(k); }

  /// When n > 0, every Conn::Read is capped to at most n bytes — the
  /// kernel returning a stream in dribbles — so framing code is forced
  /// through its partial-read reassembly paths. 0 disables (default).
  void set_conn_read_chunk(int n) { conn_read_chunk_.store(n); }

  int conn_reads_attempted() const { return conn_reads_attempted_.load(); }
  int conn_writes_attempted() const { return conn_writes_attempted_.load(); }
  int conn_faults_injected() const { return conn_faults_injected_.load(); }
  int accepts_delivered() const { return accepts_delivered_.load(); }

  // Env interface -------------------------------------------------------
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  bool FileExists(const std::string& path) const override;
  Status CreateDirs(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(
      const std::string& dir) const override;
  Result<std::string> ReadFileToString(
      const std::string& path) const override;
  Result<std::unique_ptr<Listener>> NewListener(
      const std::string& path) override;
  Result<std::unique_ptr<Conn>> Connect(const std::string& path) override;

 private:
  friend class FaultInjectionWritableFile;
  friend class FaultInjectionConn;
  friend class FaultInjectionListener;

  /// Consumes one tick; returns true if this operation must fail.
  bool NextOpFails();

  /// Consumes one tick of a wire countdown; true = this op must fail.
  bool NextConnOpFails(std::atomic<int>* counter, std::atomic<int>* attempts);

  Env* base_;
  int fail_after_ = -1;
  bool truncate_on_failure_ = false;
  int ops_attempted_ = 0;
  int ops_failed_ = 0;
  int fail_reads_after_ = -1;
  bool truncate_reads_ = false;
  mutable int reads_attempted_ = 0;  ///< ReadFileToString is const

  std::atomic<int> fail_conn_reads_after_{-1};
  std::atomic<int> fail_conn_writes_after_{-1};
  std::atomic<bool> truncate_conn_writes_{false};
  std::atomic<int> fail_accepts_after_{-1};
  std::atomic<int> conn_read_chunk_{0};
  std::atomic<int> conn_reads_attempted_{0};
  std::atomic<int> conn_writes_attempted_{0};
  std::atomic<int> conn_faults_injected_{0};
  std::atomic<int> accepts_delivered_{0};
};

}  // namespace tcss

#endif  // TCSS_COMMON_FAULT_ENV_H_
