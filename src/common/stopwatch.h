#ifndef TCSS_COMMON_STOPWATCH_H_
#define TCSS_COMMON_STOPWATCH_H_

#include <chrono>

namespace tcss {

/// Monotonic wall-clock stopwatch for coarse timing of training epochs and
/// experiment phases (google-benchmark owns the fine-grained timing).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tcss

#endif  // TCSS_COMMON_STOPWATCH_H_
