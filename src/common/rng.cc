#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace tcss {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return 0;
  double x = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm would avoid materializing [0, n), but n is small in
  // our workloads and the full shuffle keeps ordering uniform.
  if (k == 0) return {};
  if (k * 4 >= n) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), size_t{0});
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  // Sparse case: sample-and-retry with a set of chosen values.
  std::vector<size_t> chosen;
  chosen.reserve(k);
  std::vector<bool> used(n, false);
  while (chosen.size() < k) {
    size_t idx = static_cast<size_t>(UniformInt(n));
    if (!used[idx]) {
      used[idx] = true;
      chosen.push_back(idx);
    }
  }
  return chosen;
}

}  // namespace tcss
