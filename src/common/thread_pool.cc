#include "common/thread_pool.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace tcss {
namespace {

/// True while the current thread is executing a ParallelFor shard; nested
/// regions run inline (same shard decomposition, so same results).
thread_local bool tls_in_parallel_region = false;

// Registry handles are resolved once (thread-safe magic statics) and then
// cost one relaxed atomic add per job — never per shard, so the hot loop
// is untouched. Metrics only observe the pool; they cannot change which
// shard runs where (determinism contract, DESIGN.md §8).
obs::Counter* PoolJobsCounter() {
  static obs::Counter* const c =
      obs::MetricRegistry::Global()->GetCounter("threadpool.jobs");
  return c;
}

obs::Counter* PoolShardsCounter() {
  static obs::Counter* const c =
      obs::MetricRegistry::Global()->GetCounter("threadpool.shards");
  return c;
}

obs::Counter* PoolInlineRunsCounter() {
  static obs::Counter* const c =
      obs::MetricRegistry::Global()->GetCounter("threadpool.inline_runs");
  return c;
}

obs::Histogram* PoolQueueWaitHist() {
  static obs::Histogram* const h =
      obs::MetricRegistry::Global()->GetHistogram("threadpool.queue_wait_ms");
  return h;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int t = 0; t + 1 < num_threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::DrainJob(const std::shared_ptr<Job>& job) {
  size_t done = 0;
  for (;;) {
    const size_t s = job->next.fetch_add(1, std::memory_order_relaxed);
    if (s >= job->num_shards) break;
    (*job->fn)(s);
    ++done;
  }
  if (done == 0) return;
  const size_t total =
      job->completed.fetch_add(done, std::memory_order_acq_rel) + done;
  if (total == job->num_shards) {
    // Empty critical section: pairs with the predicate re-check in Run so
    // the notify cannot slip between its predicate test and its sleep.
    { std::lock_guard<std::mutex> lk(mu_); }
    done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  std::shared_ptr<Job> last;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return shutdown_ ||
               (job_ != nullptr && job_ != last &&
                job_->next.load(std::memory_order_relaxed) < job_->num_shards);
      });
      if (shutdown_) return;
      job = job_;
    }
    last = job;
    tls_in_parallel_region = true;
    DrainJob(job);
    tls_in_parallel_region = false;
  }
}

void ThreadPool::Run(size_t num_shards, const std::function<void(size_t)>& fn) {
  if (num_shards == 0) return;
  const bool record = obs::MetricsEnabled();
  if (workers_.empty()) {
    for (size_t s = 0; s < num_shards; ++s) fn(s);
    if (record) {
      PoolJobsCounter()->Add(1);
      PoolShardsCounter()->Add(num_shards);
    }
    return;
  }
  Stopwatch queue_wait;  // time spent behind an in-flight job
  std::lock_guard<std::mutex> serialize(run_mu_);
  if (record) {
    PoolQueueWaitHist()->Record(queue_wait.ElapsedMillis());
    PoolJobsCounter()->Add(1);
    PoolShardsCounter()->Add(num_shards);
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->num_shards = num_shards;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
  }
  work_cv_.notify_all();
  tls_in_parallel_region = true;
  DrainJob(job);
  tls_in_parallel_region = false;
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] {
    return job->completed.load(std::memory_order_acquire) == job->num_shards;
  });
  job_.reset();
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;  // created lazily; guarded by g_pool_mu

}  // namespace

ThreadPool* GlobalThreadPool() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (g_pool == nullptr) g_pool = std::make_unique<ThreadPool>(1);
  return g_pool.get();
}

void SetGlobalThreads(int num_threads) {
  if (num_threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (g_pool != nullptr && g_pool->num_threads() == num_threads) return;
  g_pool = std::make_unique<ThreadPool>(num_threads);
}

int GlobalThreads() { return GlobalThreadPool()->num_threads(); }

size_t ParallelForShards(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t shards = (n + grain - 1) / grain;
  auto run_shard = [&](size_t s) {
    const size_t begin = s * grain;
    fn(begin, std::min(n, begin + grain), s);
  };
  ThreadPool* pool = tls_in_parallel_region ? nullptr : GlobalThreadPool();
  if (pool == nullptr || pool->num_threads() == 1 || shards == 1) {
    for (size_t s = 0; s < shards; ++s) run_shard(s);
    // Nested regions skip the counter: they run inside a worker's shard
    // and per-call accounting there would double-count the work.
    if (!tls_in_parallel_region && obs::MetricsEnabled()) {
      PoolInlineRunsCounter()->Add(1);
    }
    return;
  }
  pool->Run(shards, run_shard);
}

}  // namespace tcss
