#ifndef TCSS_COMMON_STRINGS_H_
#define TCSS_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace tcss {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Parses a double; returns false on malformed input or trailing garbage.
bool ParseDouble(std::string_view s, double* out);

/// Parses a non-negative integer; returns false on malformed input.
bool ParseIndex(std::string_view s, size_t* out);

/// Parses a signed decimal integer (optional leading '-'); returns false on
/// malformed input, fractional/exponent forms ("1.5e9"), or int64 overflow.
/// Unlike ParseDouble-then-cast this never loses precision above 2^53.
bool ParseInt64(std::string_view s, int64_t* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace tcss

#endif  // TCSS_COMMON_STRINGS_H_
