#include "common/fault_env.h"

namespace tcss {
namespace {

Status Crashed(const char* op) {
  return Status::IOError(std::string("injected fault: ") + op);
}

}  // namespace

/// Wraps a real WritableFile and routes every mutation through the
/// owning env's fault countdown.
class FaultInjectionWritableFile : public WritableFile {
 public:
  FaultInjectionWritableFile(std::unique_ptr<WritableFile> base,
                             FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(std::string_view data) override {
    if (env_->NextOpFails()) {
      if (env_->truncate_on_failure_ && !data.empty()) {
        // Torn write: half the payload lands, then the "crash".
        (void)base_->Append(data.substr(0, data.size() / 2));
        (void)base_->Flush();
      }
      return Crashed("Append");
    }
    return base_->Append(data);
  }

  Status Flush() override {
    if (env_->NextOpFails()) return Crashed("Flush");
    return base_->Flush();
  }

  Status Close() override {
    if (env_->NextOpFails()) {
      // The data may never have reached the disk; drop the handle.
      (void)base_->Close();
      return Crashed("Close");
    }
    return base_->Close();
  }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

bool FaultInjectionEnv::NextOpFails() {
  const int op = ops_attempted_++;
  const bool fails = fail_after_ >= 0 && op >= fail_after_;
  if (fails) ++ops_failed_;
  return fails;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  if (NextOpFails()) return Crashed("NewWritableFile");
  auto base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectionWritableFile>(base.MoveValue(), this));
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (NextOpFails()) return Crashed("RenameFile");
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  if (NextOpFails()) return Crashed("DeleteFile");
  return base_->DeleteFile(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) const {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::CreateDirs(const std::string& path) {
  if (NextOpFails()) return Crashed("CreateDirs");
  return base_->CreateDirs(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) const {
  return base_->ListDir(dir);
}

/// Wraps an accepted/connected stream and routes each direction through
/// the env's shared wire countdowns.
class FaultInjectionConn : public Conn {
 public:
  FaultInjectionConn(std::unique_ptr<Conn> base, FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Result<IoEvent> Read(char* buf, size_t cap, size_t* n,
                       int timeout_ms) override {
    if (env_->NextConnOpFails(&env_->fail_conn_reads_after_,
                              &env_->conn_reads_attempted_)) {
      *n = 0;
      return Crashed("Conn::Read");
    }
    // Split-read injection: the kernel hands the stream over in dribbles,
    // forcing the caller through its partial-frame reassembly path.
    const int chunk = env_->conn_read_chunk_.load();
    if (chunk > 0 && cap > static_cast<size_t>(chunk)) {
      cap = static_cast<size_t>(chunk);
    }
    return base_->Read(buf, cap, n, timeout_ms);
  }

  Status Write(std::string_view data, int timeout_ms) override {
    if (env_->NextConnOpFails(&env_->fail_conn_writes_after_,
                              &env_->conn_writes_attempted_)) {
      if (env_->truncate_conn_writes_.load() && !data.empty()) {
        // Torn frame: half the bytes reach the peer, then the wire dies.
        (void)base_->Write(data.substr(0, data.size() / 2), timeout_ms);
      }
      return Crashed("Conn::Write");
    }
    return base_->Write(data, timeout_ms);
  }

  void Close() override { base_->Close(); }

 private:
  std::unique_ptr<Conn> base_;
  FaultInjectionEnv* env_;
};

class FaultInjectionListener : public Listener {
 public:
  FaultInjectionListener(std::unique_ptr<Listener> base,
                         FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Result<std::unique_ptr<Conn>> Accept(int timeout_ms) override {
    auto conn = base_->Accept(timeout_ms);
    if (!conn.ok() || conn.value() == nullptr) return conn;
    // Ticks are consumed per *delivered* connection, never per idle poll,
    // so the fault lands on a deterministic client no matter how often
    // the accept loop wakes up. The injected outcome mirrors a real
    // ECONNABORTED — the peer vanished between connect and accept — which
    // PosixListener reports as a transient null Conn, not an error.
    if (env_->NextConnOpFails(&env_->fail_accepts_after_,
                              &env_->accepts_delivered_)) {
      conn.value()->Close();
      return std::unique_ptr<Conn>(nullptr);
    }
    return std::unique_ptr<Conn>(
        std::make_unique<FaultInjectionConn>(conn.MoveValue(), env_));
  }

  void Close() override { base_->Close(); }
  const std::string& address() const override { return base_->address(); }

 private:
  std::unique_ptr<Listener> base_;
  FaultInjectionEnv* env_;
};

bool FaultInjectionEnv::NextConnOpFails(std::atomic<int>* counter,
                                        std::atomic<int>* attempts) {
  const int op = attempts->fetch_add(1);
  const int k = counter->load();
  const bool fails = k >= 0 && op >= k;
  if (fails) conn_faults_injected_.fetch_add(1);
  return fails;
}

Result<std::unique_ptr<Listener>> FaultInjectionEnv::NewListener(
    const std::string& path) {
  auto base = base_->NewListener(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<Listener>(
      std::make_unique<FaultInjectionListener>(base.MoveValue(), this));
}

Result<std::unique_ptr<Conn>> FaultInjectionEnv::Connect(
    const std::string& path) {
  auto base = base_->Connect(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<Conn>(
      std::make_unique<FaultInjectionConn>(base.MoveValue(), this));
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) const {
  const int op = reads_attempted_++;
  if (fail_reads_after_ >= 0 && op >= fail_reads_after_) {
    if (truncate_reads_) {
      auto full = base_->ReadFileToString(path);
      if (!full.ok()) return full.status();
      return full.value().substr(0, full.value().size() / 2);
    }
    return Crashed("ReadFileToString");
  }
  return base_->ReadFileToString(path);
}

}  // namespace tcss
