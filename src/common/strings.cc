#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace tcss {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseIndex(std::string_view s, size_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  size_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<size_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  bool negative = false;
  if (!s.empty() && s[0] == '-') {
    negative = true;
    s.remove_prefix(1);
  }
  if (s.empty()) return false;
  uint64_t v = 0;
  // Largest magnitude representable: 2^63 for "-", 2^63 - 1 otherwise.
  const uint64_t limit =
      negative ? (1ULL << 63) : (1ULL << 63) - 1;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (limit - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = negative ? -static_cast<int64_t>(v - 1) - 1
                  : static_cast<int64_t>(v);
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace tcss
