#ifndef TCSS_COMMON_RNG_H_
#define TCSS_COMMON_RNG_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace tcss {

/// Deterministic, fast PRNG (xoshiro256**), seeded via SplitMix64.
/// All stochastic components of the library draw from this generator so
/// experiments are exactly reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double Gaussian();

  /// Gaussian with given mean and stddev.
  double Gaussian(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to the (non-negative) weights. Returns 0 if all weights are zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Draws k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace tcss

#endif  // TCSS_COMMON_RNG_H_
