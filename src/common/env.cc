#include "common/env.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/strings.h"

namespace tcss {
namespace {

namespace fs = std::filesystem;

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(std::FILE* f, std::string path)
      : f_(f), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status Append(std::string_view data) override {
    if (f_ == nullptr) return Status::FailedPrecondition("file is closed");
    if (data.empty()) return Status::OK();
    if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      return Status::IOError("short write to " + path_);
    }
    return Status::OK();
  }

  Status Flush() override {
    if (f_ == nullptr) return Status::FailedPrecondition("file is closed");
    if (std::fflush(f_) != 0) return Status::IOError("flush failed " + path_);
    return Status::OK();
  }

  Status Close() override {
    if (f_ == nullptr) return close_status_;
    std::FILE* f = f_;
    f_ = nullptr;
    if (std::fclose(f) != 0) {
      close_status_ = Status::IOError("close failed " + path_);
    }
    return close_status_;
  }

 private:
  std::FILE* f_;
  std::string path_;
  Status close_status_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::IOError("cannot open " + path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(f, path));
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("rename " + from + " -> " + to + " failed");
    }
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      return Status::IOError("cannot delete " + path);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) const override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Status::IOError("cannot create directory " + path);
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(
      const std::string& dir) const override {
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) return Status::IOError("cannot list " + dir);
    std::vector<std::string> names;
    for (const auto& entry : it) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  Result<std::string> ReadFileToString(
      const std::string& path) const override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::IOError("cannot open " + path);
    std::string out;
    char buf[1 << 14];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      out.append(buf, n);
    }
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) return Status::IOError("read failed " + path);
    return out;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view contents) {
  const std::string tmp = path + ".tmp";
  auto file = env->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  WritableFile* f = file.value().get();
  TCSS_RETURN_IF_ERROR(f->Append(contents));
  TCSS_RETURN_IF_ERROR(f->Flush());
  TCSS_RETURN_IF_ERROR(f->Close());
  return env->RenameFile(tmp, path);
}

}  // namespace tcss
