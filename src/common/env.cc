#include "common/env.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/strings.h"

namespace tcss {
namespace {

namespace fs = std::filesystem;

/// Waits for `events` (POLLIN/POLLOUT) on `fd`. Returns kData when ready,
/// kTimeout on expiry, or an error status. EINTR restarts the wait with
/// the same timeout (coarse, but signals here only happen during
/// shutdown, where the caller re-checks its stop flag anyway).
Result<IoEvent> PollFd(int fd, short events, int timeout_ms) {
  for (;;) {
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return IoEvent::kData;
    if (rc == 0) return IoEvent::kTimeout;
    if (errno == EINTR) continue;
    return Status::IOError(std::string("poll: ") + std::strerror(errno));
  }
}

/// Connection fds run non-blocking. With a blocking fd, poll(POLLOUT)
/// only guarantees *some* buffer space, and send() then blocks until the
/// whole remainder fits — a response larger than the free space written
/// to a stalled peer would sleep far past any timeout. Non-blocking,
/// send() returns partial/EAGAIN and the poll timeout genuinely bounds
/// each progress step.
Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

class PosixConn : public Conn {
 public:
  explicit PosixConn(int fd) : fd_(fd) {}
  ~PosixConn() override { Close(); }

  Result<IoEvent> Read(char* buf, size_t cap, size_t* n,
                       int timeout_ms) override {
    *n = 0;
    if (fd_ < 0) return Status::FailedPrecondition("connection is closed");
    if (cap == 0) return IoEvent::kData;
    for (;;) {
      auto ready = PollFd(fd_, POLLIN, timeout_ms);
      if (!ready.ok()) return ready.status();
      if (ready.value() == IoEvent::kTimeout) return IoEvent::kTimeout;
      const ssize_t rc = ::recv(fd_, buf, cap, 0);
      if (rc > 0) {
        *n = static_cast<size_t>(rc);
        return IoEvent::kData;
      }
      if (rc == 0) return IoEvent::kEof;
      // EAGAIN: spurious readiness on the non-blocking fd — re-poll.
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
  }

  Status Write(std::string_view data, int timeout_ms) override {
    if (fd_ < 0) return Status::FailedPrecondition("connection is closed");
    size_t off = 0;
    while (off < data.size()) {
      auto ready = PollFd(fd_, POLLOUT, timeout_ms);
      if (!ready.ok()) return ready.status();
      if (ready.value() == IoEvent::kTimeout) {
        return Status::IOError("write timeout (slow client)");
      }
      // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE.
      const ssize_t rc = ::send(fd_, data.data() + off, data.size() - off,
                                MSG_NOSIGNAL);
      if (rc >= 0) {
        off += static_cast<size_t>(rc);
        continue;
      }
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    return Status::OK();
  }

  void Close() override {
    if (fd_ < 0) return;
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_;
};

class PosixListener : public Listener {
 public:
  PosixListener(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixListener() override { Close(); }

  Result<std::unique_ptr<Conn>> Accept(int timeout_ms) override {
    if (fd_ < 0) return Status::FailedPrecondition("listener is closed");
    auto ready = PollFd(fd_, POLLIN, timeout_ms);
    if (!ready.ok()) return ready.status();
    if (ready.value() == IoEvent::kTimeout) {
      return std::unique_ptr<Conn>(nullptr);
    }
    for (;;) {
      const int cfd = ::accept(fd_, nullptr, nullptr);
      if (cfd >= 0) {
        Status st = SetNonBlocking(cfd);
        if (!st.ok()) {
          ::close(cfd);
          return st;
        }
        return std::unique_ptr<Conn>(new PosixConn(cfd));
      }
      if (errno == EINTR) continue;
      // The connection may have been reset between poll and accept; treat
      // transient errors as "nothing accepted this tick".
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
        return std::unique_ptr<Conn>(nullptr);
      }
      return Status::IOError(std::string("accept: ") + std::strerror(errno));
    }
  }

  void Close() override {
    if (fd_ < 0) return;
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
  }

  const std::string& address() const override { return path_; }

 private:
  int fd_;
  std::string path_;
};

/// Fills a sockaddr_un; sun_path is only 108 bytes, so long paths fail
/// loudly instead of silently truncating to someone else's socket.
Status FillUnixAddr(const std::string& path, struct sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("unix socket path empty or too long: " +
                                   path);
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::OK();
}

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(std::FILE* f, std::string path)
      : f_(f), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status Append(std::string_view data) override {
    if (f_ == nullptr) return Status::FailedPrecondition("file is closed");
    if (data.empty()) return Status::OK();
    if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      return Status::IOError("short write to " + path_);
    }
    return Status::OK();
  }

  Status Flush() override {
    if (f_ == nullptr) return Status::FailedPrecondition("file is closed");
    if (std::fflush(f_) != 0) return Status::IOError("flush failed " + path_);
    return Status::OK();
  }

  Status Close() override {
    if (f_ == nullptr) return close_status_;
    std::FILE* f = f_;
    f_ = nullptr;
    if (std::fclose(f) != 0) {
      close_status_ = Status::IOError("close failed " + path_);
    }
    return close_status_;
  }

 private:
  std::FILE* f_;
  std::string path_;
  Status close_status_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::IOError("cannot open " + path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(f, path));
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("rename " + from + " -> " + to + " failed");
    }
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      return Status::IOError("cannot delete " + path);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) const override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Status::IOError("cannot create directory " + path);
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(
      const std::string& dir) const override {
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) return Status::IOError("cannot list " + dir);
    std::vector<std::string> names;
    for (const auto& entry : it) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  Result<std::unique_ptr<Listener>> NewListener(
      const std::string& path) override {
    struct sockaddr_un addr;
    TCSS_RETURN_IF_ERROR(FillUnixAddr(path, &addr));
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IOError(std::string("socket: ") + std::strerror(errno));
    }
    // Replace a stale socket file from a previous run (bind refuses to).
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      return Status::IOError("bind " + path + ": " + why);
    }
    if (::listen(fd, 128) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      ::unlink(path.c_str());
      return Status::IOError("listen " + path + ": " + why);
    }
    return std::unique_ptr<Listener>(new PosixListener(fd, path));
  }

  Result<std::unique_ptr<Conn>> Connect(const std::string& path) override {
    struct sockaddr_un addr;
    TCSS_RETURN_IF_ERROR(FillUnixAddr(path, &addr));
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IOError(std::string("socket: ") + std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      return Status::IOError("connect " + path + ": " + why);
    }
    Status st = SetNonBlocking(fd);
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
    return std::unique_ptr<Conn>(new PosixConn(fd));
  }

  Result<std::string> ReadFileToString(
      const std::string& path) const override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::IOError("cannot open " + path);
    std::string out;
    char buf[1 << 14];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      out.append(buf, n);
    }
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) return Status::IOError("read failed " + path);
    return out;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

// Filesystem-only Envs (the base-class default) simply do not speak the
// stream transport; the serving front-end reports this at startup.
Result<std::unique_ptr<Listener>> Env::NewListener(const std::string& path) {
  return Status::IOError("this Env has no stream transport (listen " + path +
                         ")");
}

Result<std::unique_ptr<Conn>> Env::Connect(const std::string& path) {
  return Status::IOError("this Env has no stream transport (connect " + path +
                         ")");
}

Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view contents) {
  const std::string tmp = path + ".tmp";
  auto file = env->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  WritableFile* f = file.value().get();
  TCSS_RETURN_IF_ERROR(f->Append(contents));
  TCSS_RETURN_IF_ERROR(f->Flush());
  TCSS_RETURN_IF_ERROR(f->Close());
  return env->RenameFile(tmp, path);
}

}  // namespace tcss
