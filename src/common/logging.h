#ifndef TCSS_COMMON_LOGGING_H_
#define TCSS_COMMON_LOGGING_H_

#include <sstream>
#include <string>
#include <string_view>

namespace tcss {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug", "info", "warning"/"warn" or "error" (case-insensitive)
/// into a level. Returns false (and leaves *out untouched) on anything
/// else.
bool ParseLogLevel(std::string_view name, LogLevel* out);

/// Applies the TCSS_LOG_LEVEL environment variable, if set. Runs once
/// automatically at process start (static initializer in logging.cc); an
/// unknown value warns on stderr and keeps the current level. Exposed so
/// tests and binaries that mutate the environment can re-apply it.
void InitLogLevelFromEnv();

namespace internal_logging {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace tcss

#define TCSS_LOG(level)                                              \
  ::tcss::internal_logging::LogMessage(::tcss::LogLevel::k##level, \
                                       __FILE__, __LINE__)

/// Invariant check that aborts with a message; active in all build types.
#define TCSS_CHECK(cond)                                                   \
  if (!(cond))                                                             \
  ::tcss::internal_logging::LogMessage(::tcss::LogLevel::kError, __FILE__, \
                                       __LINE__)                           \
      << "Check failed: " #cond " "

#endif  // TCSS_COMMON_LOGGING_H_
