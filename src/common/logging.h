#ifndef TCSS_COMMON_LOGGING_H_
#define TCSS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace tcss {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace tcss

#define TCSS_LOG(level)                                              \
  ::tcss::internal_logging::LogMessage(::tcss::LogLevel::k##level, \
                                       __FILE__, __LINE__)

/// Invariant check that aborts with a message; active in all build types.
#define TCSS_CHECK(cond)                                                   \
  if (!(cond))                                                             \
  ::tcss::internal_logging::LogMessage(::tcss::LogLevel::kError, __FILE__, \
                                       __LINE__)                           \
      << "Check failed: " #cond " "

#endif  // TCSS_COMMON_LOGGING_H_
