#include "common/crc32.h"

#include "common/strings.h"
#include "common/text_io.h"

namespace tcss {
namespace {

constexpr const char kCrcKeyword[] = "CRC32";

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t crc) {
  static const Crc32Table table;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table.t[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

void AppendCrcFooter(std::string* buf) {
  buf->append(StrFormat("%s %08x\n", kCrcKeyword, Crc32(*buf)));
}

Status ValidateCrcFooter(std::string_view text, std::string_view* payload) {
  // The payload formats (hex-float token streams) never contain the
  // keyword, so the last occurrence is the footer.
  const size_t footer = text.rfind(kCrcKeyword);
  if (footer == std::string_view::npos || footer == 0) {
    return Status::IOError("missing CRC footer");
  }
  TextScanner tail(text.substr(footer));
  uint32_t stored = 0;
  if (!tail.Expect(kCrcKeyword) || !tail.NextHex32(&stored) ||
      !tail.AtEnd()) {
    return Status::IOError("malformed CRC footer");
  }
  const std::string_view body = text.substr(0, footer);
  const uint32_t actual = Crc32(body);
  if (actual != stored) {
    return Status::IOError(
        StrFormat("CRC mismatch (stored %08x, computed %08x)", stored,
                  actual));
  }
  *payload = body;
  return Status::OK();
}

}  // namespace tcss
