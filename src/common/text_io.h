#ifndef TCSS_COMMON_TEXT_IO_H_
#define TCSS_COMMON_TEXT_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace tcss {

/// Whitespace-delimited token reader over an in-memory buffer. The
/// persistence formats (TCSSv1 models, TCKPv1 checkpoints) are token
/// streams of keywords, integers and hex floats; loading a whole file into
/// memory and scanning it beats repeated fscanf and makes CRC validation
/// of the exact byte range trivial.
class TextScanner {
 public:
  explicit TextScanner(std::string_view text) : text_(text) {}

  /// Next token, or empty view at end of input.
  std::string_view NextToken();

  /// Next token without consuming it. Lets parsers accept optional fields
  /// appended to a format (e.g. TCKPv1's "sampler") while staying strict
  /// about the required ones.
  std::string_view PeekToken();

  /// True if only whitespace remains.
  bool AtEnd();

  /// Reads a token and requires it to equal `expected`.
  bool Expect(std::string_view expected);

  /// Parses the next token as a double. Accepts the C99 hex-float form
  /// ("0x1.8p+1") that the writers emit, as well as "nan"/"inf" (callers
  /// decide whether non-finite values are acceptable).
  bool NextDouble(double* out);

  /// Parses the next token as a non-negative integer.
  bool NextSize(size_t* out);
  bool NextInt64(int64_t* out);

  /// Parses the next token as exactly 8 lowercase hex digits.
  bool NextHex32(uint32_t* out);

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace tcss

#endif  // TCSS_COMMON_TEXT_IO_H_
