#ifndef TCSS_COMMON_THREAD_POOL_H_
#define TCSS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tcss {

/// Fixed-size, work-stealing-free thread pool for deterministic data
/// parallelism. One job runs at a time: Run(num_shards, fn) executes
/// fn(shard) for every shard in [0, num_shards) across the workers plus
/// the calling thread, claiming shards from a single shared counter (no
/// per-thread deques, no stealing), and returns only when every shard has
/// finished.
///
/// Determinism contract: the pool guarantees each shard runs exactly once,
/// but NOT in which order or on which thread. Callers obtain bit-identical
/// results at any thread count by (a) writing shard-disjoint outputs
/// (row-partitioned matrices), or (b) accumulating into per-shard buffers
/// that the caller merges in ascending shard order after Run returns —
/// and by deriving the shard decomposition from the problem size only,
/// never from the thread count. See DESIGN.md "Deterministic parallelism".
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller of Run is the last
  /// execution lane). num_threads < 1 is clamped to 1 (no workers, Run
  /// degenerates to a serial loop).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Executes fn(shard) for shard in [0, num_shards); blocks until all
  /// shards completed. Safe to call from multiple threads (jobs are
  /// serialized). fn must not call Run on the same pool (use ParallelFor,
  /// which falls back to inline execution when nested).
  void Run(size_t num_shards, const std::function<void(size_t)>& fn);

 private:
  /// One parallel region. Heap-allocated and shared with the workers so a
  /// worker waking up late (after the job finished and a new one started)
  /// still holds the shard counter of *its* job, which is exhausted — it
  /// can never claim shards of a newer job with a stale function pointer.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t num_shards = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
  };

  void WorkerLoop();
  /// Claims and executes shards of `job` until none remain; returns after
  /// signalling done_cv_ if this thread finished the last shard.
  void DrainJob(const std::shared_ptr<Job>& job);

  const int num_threads_;
  std::mutex mu_;                  ///< guards job_ / shutdown_
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;
  bool shutdown_ = false;
  std::mutex run_mu_;              ///< serializes concurrent Run callers
  std::vector<std::thread> workers_;
};

/// Process-global pool used by ParallelFor. Starts at 1 thread (serial)
/// until SetGlobalThreads is called; the trainer calls it with
/// TcssConfig::num_threads, the CLI plumbs --num-threads.
ThreadPool* GlobalThreadPool();

/// Replaces the global pool with one of `num_threads` threads
/// (0 = std::thread::hardware_concurrency). Not safe concurrently with an
/// in-flight ParallelFor; call between parallel regions (e.g. before
/// training starts). No-op when the pool already has that many threads.
void SetGlobalThreads(int num_threads);

/// Thread count of the current global pool.
int GlobalThreads();

/// Number of shards ParallelFor(n, grain, ...) will produce: ceil(n/grain)
/// (0 for n == 0). Depends only on (n, grain) — never on the thread count
/// — so per-shard accumulator layouts are stable across machines.
size_t ParallelForShards(size_t n, size_t grain);

/// Splits [0, n) into ceil(n/grain) contiguous shards and runs
/// fn(begin, end, shard) for each on the global pool. The decomposition is
/// a pure function of (n, grain); the thread count only affects which
/// thread runs which shard. Nested calls (fn itself calling ParallelFor)
/// execute inline serially with the same decomposition, so results do not
/// depend on nesting depth either.
void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& fn);

}  // namespace tcss

#endif  // TCSS_COMMON_THREAD_POOL_H_
