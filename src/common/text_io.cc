#include "common/text_io.h"

#include <cctype>
#include <cstdlib>

namespace tcss {
namespace {

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

}  // namespace

std::string_view TextScanner::NextToken() {
  while (pos_ < text_.size() && IsSpace(text_[pos_])) ++pos_;
  const size_t start = pos_;
  while (pos_ < text_.size() && !IsSpace(text_[pos_])) ++pos_;
  return text_.substr(start, pos_ - start);
}

std::string_view TextScanner::PeekToken() {
  const size_t saved = pos_;
  const std::string_view tok = NextToken();
  pos_ = saved;
  return tok;
}

bool TextScanner::AtEnd() {
  while (pos_ < text_.size() && IsSpace(text_[pos_])) ++pos_;
  return pos_ == text_.size();
}

bool TextScanner::Expect(std::string_view expected) {
  return NextToken() == expected;
}

bool TextScanner::NextDouble(double* out) {
  const std::string_view tok = NextToken();
  if (tok.empty() || tok.size() > 63) return false;
  char buf[64];
  tok.copy(buf, tok.size());
  buf[tok.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + tok.size()) return false;
  *out = v;
  return true;
}

bool TextScanner::NextSize(size_t* out) {
  const std::string_view tok = NextToken();
  if (tok.empty() || tok.size() > 19) return false;
  size_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<size_t>(c - '0');
  }
  *out = v;
  return true;
}

bool TextScanner::NextInt64(int64_t* out) {
  std::string_view tok = NextToken();
  if (tok.empty()) return false;
  bool neg = false;
  if (tok[0] == '-') {
    neg = true;
    tok.remove_prefix(1);
  }
  if (tok.empty() || tok.size() > 18) return false;
  int64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  *out = neg ? -v : v;
  return true;
}

bool TextScanner::NextHex32(uint32_t* out) {
  const std::string_view tok = NextToken();
  if (tok.size() != 8) return false;
  uint32_t v = 0;
  for (char c : tok) {
    uint32_t d;
    if (c >= '0' && c <= '9') {
      d = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

}  // namespace tcss
