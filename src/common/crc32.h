#ifndef TCSS_COMMON_CRC32_H_
#define TCSS_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tcss {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum used
/// by zip/png. Guards checkpoint and model files against torn writes and
/// bit rot; not a cryptographic integrity check.
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

inline uint32_t Crc32(std::string_view s, uint32_t crc = 0) {
  return Crc32(s.data(), s.size(), crc);
}

/// Appends the standard integrity footer "CRC32 <8 lowercase hex>\n",
/// with the checksum taken over everything currently in `buf`. Used by the
/// TCSSv2 model format and the TCKPv1 checkpoint format.
void AppendCrcFooter(std::string* buf);

/// Validates a file that ends in an AppendCrcFooter footer: the last line
/// must be well-formed and its checksum must match the preceding bytes.
/// On success `*payload` receives the footer-free prefix. Any truncation
/// or corruption of such a file — anywhere, including mid-token — fails
/// here before any parsing happens.
Status ValidateCrcFooter(std::string_view text, std::string_view* payload);

}  // namespace tcss

#endif  // TCSS_COMMON_CRC32_H_
