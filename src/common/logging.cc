#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace tcss {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Applies TCSS_LOG_LEVEL before main() in every binary linking
/// tcss_common, so `TCSS_LOG_LEVEL=debug tcss train ...` needs no code
/// support in the front end.
[[maybe_unused]] const bool g_log_level_env_applied = [] {
  InitLogLevelFromEnv();
  return true;
}();

}  // namespace

bool ParseLogLevel(std::string_view name, LogLevel* out) {
  auto equals_ci = [&name](const char* want) {
    size_t i = 0;
    for (; want[i] != '\0'; ++i) {
      if (i >= name.size() ||
          std::tolower(static_cast<unsigned char>(name[i])) != want[i]) {
        return false;
      }
    }
    return i == name.size();
  };
  if (equals_ci("debug")) {
    *out = LogLevel::kDebug;
  } else if (equals_ci("info")) {
    *out = LogLevel::kInfo;
  } else if (equals_ci("warning") || equals_ci("warn")) {
    *out = LogLevel::kWarning;
  } else if (equals_ci("error")) {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void InitLogLevelFromEnv() {
  const char* env = std::getenv("TCSS_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  LogLevel level;
  if (ParseLogLevel(env, &level)) {
    SetLogLevel(level);
  } else {
    std::fprintf(stderr,
                 "[WARN logging] unknown TCSS_LOG_LEVEL '%s' "
                 "(expected debug|info|warning|error); keeping default\n",
                 env);
  }
}

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    // Keep only the basename to shorten lines.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kError && stream_.str().find("Check failed") !=
                                        std::string::npos) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace tcss
