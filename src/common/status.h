#ifndef TCSS_COMMON_STATUS_H_
#define TCSS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace tcss {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of returning a Status instead of throwing across API
/// boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIOError,
  kNotConverged,
  kInternal,
};

/// Lightweight success-or-error value. Cheap to copy in the OK case
/// (no allocation); carries a message otherwise.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<CODE>: <message>" string.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Value-or-Status, in the spirit of arrow::Result. The value is only
/// accessible when ok().
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK status out of the enclosing function.
#define TCSS_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::tcss::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace tcss

#endif  // TCSS_COMMON_STATUS_H_
