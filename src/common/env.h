#ifndef TCSS_COMMON_ENV_H_
#define TCSS_COMMON_ENV_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tcss {

/// Sequential-write file handle in the RocksDB/LevelDB style. Obtained from
/// an Env; all persistence code (model_io, checkpointing) writes through
/// this interface so tests can substitute a fault-injecting implementation
/// and prove crash safety.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the current end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Pushes user-space buffers to the OS (no durability guarantee).
  virtual Status Flush() = 0;

  /// Flushes and closes. The handle is unusable afterwards; double-Close
  /// is a no-op returning the first Close's status.
  virtual Status Close() = 0;
};

/// Outcome of a byte-stream read that did not hard-fail: data arrived,
/// the peer closed cleanly, or the wait timed out.
enum class IoEvent { kData, kEof, kTimeout };

/// Bidirectional byte stream (one accepted connection, or one client side
/// of a connection). Obtained from Env::NewListener / Env::Connect; the
/// serving front-end talks to clients exclusively through this interface
/// so FaultInjectionEnv can fail, tear or garble the wire in tests.
///
/// Thread safety: one thread may Read while another Writes (the two
/// directions are independent), but each direction has a single caller at
/// a time. Close() must only be called once no other thread is inside a
/// Read/Write.
class Conn {
 public:
  virtual ~Conn() = default;

  /// Waits up to `timeout_ms` for bytes (negative = block forever), then
  /// reads at most `cap` into `buf`. On kData, `*n` > 0 bytes were read;
  /// on kEof the peer closed; on kTimeout nothing arrived in time. A
  /// non-OK status is a real transport error (connection reset, bad fd).
  virtual Result<IoEvent> Read(char* buf, size_t cap, size_t* n,
                               int timeout_ms) = 0;

  /// Writes all of `data`, waiting at most `timeout_ms` per progress step
  /// (negative = block forever). A slow or dead client surfaces as IOError
  /// — the caller drops the connection rather than blocking the server.
  virtual Status Write(std::string_view data, int timeout_ms) = 0;

  /// Shuts down both directions and releases the descriptor.
  virtual void Close() = 0;
};

/// Accepting side of a stream transport (a bound Unix-domain socket).
class Listener {
 public:
  virtual ~Listener() = default;

  /// Waits up to `timeout_ms` for a connection (negative = forever).
  /// Returns a null Conn on timeout — the server loop's idle tick, so it
  /// can check its stop flag — and a non-OK status on real failure.
  virtual Result<std::unique_ptr<Conn>> Accept(int timeout_ms) = 0;

  /// Stops accepting and releases the socket (and its filesystem name).
  virtual void Close() = 0;

  virtual const std::string& address() const = 0;
};

/// Minimal filesystem abstraction. Production code uses Env::Default()
/// (POSIX/std::filesystem); tests swap in FaultInjectionEnv to simulate
/// crashes, full disks and torn writes at any point of a save.
class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide real-filesystem Env; never null, not owned by callers.
  static Env* Default();

  /// Creates (truncating) a file for sequential writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Binds a Unix-domain stream socket at `path` (an existing socket file
  /// is replaced, mirroring rename-over semantics). The base class returns
  /// IOError so filesystem-only Envs stay valid; PosixEnv and
  /// FaultInjectionEnv override.
  virtual Result<std::unique_ptr<Listener>> NewListener(
      const std::string& path);

  /// Connects to a listening Unix-domain socket (the client side; tests
  /// and the closed-loop bench drive the server through this).
  virtual Result<std::unique_ptr<Conn>> Connect(const std::string& path);

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) const = 0;

  /// mkdir -p.
  virtual Status CreateDirs(const std::string& path) = 0;

  /// Plain file names (not full paths) in `dir`, sorted ascending.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& dir) const = 0;

  virtual Result<std::string> ReadFileToString(
      const std::string& path) const = 0;
};

/// Writes `contents` to `path` crash-safely: the bytes go to
/// "<path>.tmp", which is renamed onto `path` only after a successful
/// flush + close. A failure at any step leaves the previous `path`
/// (if any) untouched; a stale .tmp may remain and is overwritten by the
/// next attempt.
Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view contents);

}  // namespace tcss

#endif  // TCSS_COMMON_ENV_H_
