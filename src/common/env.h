#ifndef TCSS_COMMON_ENV_H_
#define TCSS_COMMON_ENV_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tcss {

/// Sequential-write file handle in the RocksDB/LevelDB style. Obtained from
/// an Env; all persistence code (model_io, checkpointing) writes through
/// this interface so tests can substitute a fault-injecting implementation
/// and prove crash safety.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the current end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Pushes user-space buffers to the OS (no durability guarantee).
  virtual Status Flush() = 0;

  /// Flushes and closes. The handle is unusable afterwards; double-Close
  /// is a no-op returning the first Close's status.
  virtual Status Close() = 0;
};

/// Minimal filesystem abstraction. Production code uses Env::Default()
/// (POSIX/std::filesystem); tests swap in FaultInjectionEnv to simulate
/// crashes, full disks and torn writes at any point of a save.
class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide real-filesystem Env; never null, not owned by callers.
  static Env* Default();

  /// Creates (truncating) a file for sequential writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) const = 0;

  /// mkdir -p.
  virtual Status CreateDirs(const std::string& path) = 0;

  /// Plain file names (not full paths) in `dir`, sorted ascending.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& dir) const = 0;

  virtual Result<std::string> ReadFileToString(
      const std::string& path) const = 0;
};

/// Writes `contents` to `path` crash-safely: the bytes go to
/// "<path>.tmp", which is renamed onto `path` only after a successful
/// flush + close. A failure at any step leaves the previous `path`
/// (if any) untouched; a stale .tmp may remain and is overwritten by the
/// next attempt.
Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view contents);

}  // namespace tcss

#endif  // TCSS_COMMON_ENV_H_
