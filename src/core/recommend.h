#ifndef TCSS_CORE_RECOMMEND_H_
#define TCSS_CORE_RECOMMEND_H_

#include <cstdint>
#include <vector>

#include "eval/recommender.h"

namespace tcss {

/// One ranked recommendation.
struct Recommendation {
  uint32_t poi;
  double score;
};

/// Options for TopKRecommendations.
struct TopKOptions {
  size_t k = 10;  ///< clamped to num_pois
  /// Exclude POIs the user already visited (per the given train tensor).
  bool exclude_visited = false;
  /// Restrict candidates to this list (empty = all POIs). Out-of-range
  /// ids are dropped.
  std::vector<uint32_t> candidates;
};

/// Ranks POIs for (user, time) under any fitted Recommender. O(J log k).
/// Defensive against untrusted options: exclude_visited with a null
/// `train` returns an empty list (the exclusion cannot be honored), k is
/// clamped to the catalogue size, and out-of-range candidate ids are
/// skipped. Tensor entries outside [0, num_pois) are ignored.
std::vector<Recommendation> TopKRecommendations(
    const Recommender& model, uint32_t user, uint32_t time_bin,
    size_t num_pois, const TopKOptions& opts,
    const SparseTensor* train = nullptr);

}  // namespace tcss

#endif  // TCSS_CORE_RECOMMEND_H_
