#include "core/trainer.h"

#include <cmath>

#include "common/stopwatch.h"
#include "core/spectral_init.h"

namespace tcss {

TcssTrainer::TcssTrainer(const Dataset& data, const SparseTensor& train,
                         const TcssConfig& config)
    : data_(&data), train_(&train), config_(config) {
  l2_ = WholeDataLoss::Create(config_);
  const bool wants_l1 = config_.lambda > 0.0 &&
                        (config_.hausdorff == HausdorffMode::kSocial ||
                         config_.hausdorff == HausdorffMode::kSelf);
  if (wants_l1) {
    hausdorff_ =
        std::make_unique<SocialHausdorffLoss>(data, train, config_);
  }
}

void TcssTrainer::AdamStep(FactorModel* model, const FactorGrads& grads,
                           AdamState* state, double lr) const {
  ++state->t;
  const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(state->t));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(state->t));
  auto update = [&](Matrix* value, const Matrix& g, Matrix* m, Matrix* v) {
    for (size_t idx = 0; idx < value->size(); ++idx) {
      const double gi = g.data()[idx];
      m->data()[idx] = b1 * m->data()[idx] + (1.0 - b1) * gi;
      v->data()[idx] = b2 * v->data()[idx] + (1.0 - b2) * gi * gi;
      const double mhat = m->data()[idx] / bc1;
      const double vhat = v->data()[idx] / bc2;
      value->data()[idx] -= lr * (mhat / (std::sqrt(vhat) + eps) +
                                  config_.weight_decay * value->data()[idx]);
    }
  };
  update(&model->u1, grads.u1, &state->m.u1, &state->v.u1);
  update(&model->u2, grads.u2, &state->m.u2, &state->v.u2);
  update(&model->u3, grads.u3, &state->m.u3, &state->v.u3);
  for (size_t t = 0; t < model->h.size(); ++t) {
    const double gi = grads.h[t];
    state->m.h[t] = b1 * state->m.h[t] + (1.0 - b1) * gi;
    state->v.h[t] = b2 * state->v.h[t] + (1.0 - b2) * gi * gi;
    const double mhat = state->m.h[t] / bc1;
    const double vhat = state->v.h[t] / bc2;
    model->h[t] -= lr * (mhat / (std::sqrt(vhat) + eps) +
                         config_.weight_decay * model->h[t]);
  }
}

// Cyclic temporal smoothness: ts * sum_k ||U3_k - U3_{k+1 mod K}||^2.
// Gradient wrt U3_k: 2 ts (2 U3_k - U3_{k-1} - U3_{k+1}).
double TcssTrainer::AddTemporalSmoothness(const FactorModel& model,
                                          double weight,
                                          FactorGrads* grads) const {
  const size_t K = model.u3.rows();
  const size_t r = model.rank();
  if (K < 2) return 0.0;
  double loss = 0.0;
  for (size_t k = 0; k < K; ++k) {
    const size_t next = (k + 1) % K;
    const size_t prev = (k + K - 1) % K;
    const double* cur_row = model.u3.row(k);
    const double* next_row = model.u3.row(next);
    const double* prev_row = model.u3.row(prev);
    double* g = grads->u3.row(k);
    for (size_t t = 0; t < r; ++t) {
      const double d = cur_row[t] - next_row[t];
      loss += weight * d * d;
      g[t] += 2.0 * weight *
              (2.0 * cur_row[t] - prev_row[t] - next_row[t]);
    }
  }
  return loss;
}

Result<FactorModel> TcssTrainer::Train(const EpochCallback& callback) {
  const std::string problem = config_.Validate();
  if (!problem.empty()) return Status::InvalidArgument(problem);

  auto init = InitializeFactors(*train_, config_);
  if (!init.ok()) return init.status();
  FactorModel model = init.MoveValue();

  FactorGrads grads(model);
  AdamState adam(model);

  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    Stopwatch sw;
    grads.Zero();
    EpochStats stats;
    stats.epoch = epoch;
    stats.loss_l2 = l2_->ComputeWithGrads(model, *train_, &grads);
    if (hausdorff_ != nullptr) {
      stats.loss_l1 =
          hausdorff_->ComputeWithGrads(model, config_.lambda, &grads);
    }
    if (config_.temporal_smoothness > 0.0) {
      AddTemporalSmoothness(model, config_.temporal_smoothness, &grads);
    }
    double lr = config_.learning_rate;
    if (epoch > config_.epochs * 17 / 20) {
      lr *= config_.lr_step_factor * config_.lr_step_factor;
    } else if (epoch > config_.epochs * 3 / 5) {
      lr *= config_.lr_step_factor;
    }
    AdamStep(&model, grads, &adam, lr);
    stats.seconds = sw.ElapsedSeconds();
    if (callback) callback(stats, model);
  }
  return model;
}

Result<double> TcssTrainer::TimeOneLossEpoch(LossMode mode) {
  TcssConfig cfg = config_;
  cfg.loss_mode = mode;
  auto init = InitializeFactors(*train_, cfg);
  if (!init.ok()) return init.status();
  FactorModel model = init.MoveValue();
  FactorGrads grads(model);
  std::unique_ptr<WholeDataLoss> loss = WholeDataLoss::Create(cfg);
  Stopwatch sw;
  (void)loss->ComputeWithGrads(model, *train_, &grads);
  return sw.ElapsedSeconds();
}

}  // namespace tcss
