#include "core/trainer.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/spectral_init.h"
#include "obs/metrics.h"

namespace tcss {
namespace {

/// Per-stage telemetry of the training loop, resolved once per Train()
/// call. Every member only *observes* the loop (clock samples, event
/// counts); none of them feeds a value back into the math — the trained
/// bytes are identical with metrics on or off (determinism suite).
struct TrainMetrics {
  obs::Counter* epochs;
  obs::Counter* rollbacks;
  obs::Counter* plateau_stops;
  obs::Counter* checkpoints;
  obs::Histogram* epoch_ms;
  obs::Histogram* loss_ms;
  obs::Histogram* hausdorff_ms;
  obs::Histogram* apply_ms;
  obs::Histogram* checkpoint_ms;
  obs::Gauge* loss_total;
  obs::Gauge* lr;

  static TrainMetrics Resolve() {
    obs::MetricRegistry* reg = obs::MetricRegistry::Global();
    return {reg->GetCounter("train.epochs"),
            reg->GetCounter("train.rollbacks"),
            reg->GetCounter("train.plateau_stops"),
            reg->GetCounter("train.checkpoints_written"),
            reg->GetHistogram("train.epoch_ms"),
            reg->GetHistogram("train.stage.loss_ms"),
            reg->GetHistogram("train.stage.hausdorff_ms"),
            reg->GetHistogram("train.stage.apply_ms"),
            reg->GetHistogram("train.stage.checkpoint_ms"),
            reg->GetGauge("train.loss_total"),
            reg->GetGauge("train.lr")};
  }
};

/// Max-abs entry over all gradient blocks; +inf if any entry is NaN/Inf,
/// so a single comparison catches both explosion and corruption.
double GradMaxAbs(const FactorGrads& g) {
  double m = MaxAbsOrInf(g.u1.data(), g.u1.size());
  m = std::max(m, MaxAbsOrInf(g.u2.data(), g.u2.size()));
  m = std::max(m, MaxAbsOrInf(g.u3.data(), g.u3.size()));
  m = std::max(m, MaxAbsOrInf(g.h.data(), g.h.size()));
  return m;
}

}  // namespace

double MaxAbsOrInf(const double* p, size_t n) {
  double m = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) return std::numeric_limits<double>::infinity();
    const double a = std::fabs(p[i]);
    if (a > m) m = a;
  }
  return m;
}

void AdamBiasCorrection(int64_t t, double* bc1, double* bc2) {
  *bc1 = 1.0 - std::pow(kAdamBeta1, static_cast<double>(t));
  *bc2 = 1.0 - std::pow(kAdamBeta2, static_cast<double>(t));
}

void AdamUpdateBlock(double* value, const double* grad, double* m, double* v,
                     size_t n, double lr, double weight_decay, double bc1,
                     double bc2) {
  const double b1 = kAdamBeta1, b2 = kAdamBeta2, eps = kAdamEps;
  for (size_t idx = 0; idx < n; ++idx) {
    const double gi = grad[idx];
    m[idx] = b1 * m[idx] + (1.0 - b1) * gi;
    v[idx] = b2 * v[idx] + (1.0 - b2) * gi * gi;
    const double mhat = m[idx] / bc1;
    const double vhat = v[idx] / bc2;
    value[idx] -= lr * (mhat / (std::sqrt(vhat) + eps) +
                        weight_decay * value[idx]);
  }
}

double ScheduledLearningRate(const TcssConfig& config, int epoch) {
  double lr = config.learning_rate;
  if (epoch > config.epochs * 17 / 20) {
    lr *= config.lr_step_factor * config.lr_step_factor;
  } else if (epoch > config.epochs * 3 / 5) {
    lr *= config.lr_step_factor;
  }
  return lr;
}

// Cyclic temporal smoothness: ts * sum_k ||U3_k - U3_{k+1 mod K}||^2.
// Gradient wrt U3_k: 2 ts (2 U3_k - U3_{k-1} - U3_{k+1}).
double AddTemporalSmoothnessGrad(const Matrix& u3, double weight,
                                 Matrix* u3_grad) {
  const size_t K = u3.rows();
  const size_t r = u3.cols();
  if (K < 2) return 0.0;
  double loss = 0.0;
  for (size_t k = 0; k < K; ++k) {
    const size_t next = (k + 1) % K;
    const size_t prev = (k + K - 1) % K;
    const double* cur_row = u3.row(k);
    const double* next_row = u3.row(next);
    const double* prev_row = u3.row(prev);
    double* g = u3_grad->row(k);
    for (size_t t = 0; t < r; ++t) {
      const double d = cur_row[t] - next_row[t];
      loss += weight * d * d;
      g[t] += 2.0 * weight *
              (2.0 * cur_row[t] - prev_row[t] - next_row[t]);
    }
  }
  return loss;
}

TcssTrainer::TcssTrainer(const Dataset& data, const SparseTensor& train,
                         const TcssConfig& config)
    : data_(&data), train_(&train), config_(config) {
  l2_ = WholeDataLoss::Create(config_);
  l2_->BindTensor(*train_);
  const bool wants_l1 = config_.lambda > 0.0 &&
                        (config_.hausdorff == HausdorffMode::kSocial ||
                         config_.hausdorff == HausdorffMode::kSelf);
  if (wants_l1) {
    hausdorff_ =
        std::make_unique<SocialHausdorffLoss>(data, train, config_);
  }
}

void TcssTrainer::AdamStep(FactorModel* model, const FactorGrads& grads,
                           AdamState* state, double lr) const {
  ++state->t;
  double bc1 = 0.0, bc2 = 0.0;
  AdamBiasCorrection(state->t, &bc1, &bc2);
  const double wd = config_.weight_decay;
  AdamUpdateBlock(model->u1.data(), grads.u1.data(), state->m.u1.data(),
                  state->v.u1.data(), model->u1.size(), lr, wd, bc1, bc2);
  AdamUpdateBlock(model->u2.data(), grads.u2.data(), state->m.u2.data(),
                  state->v.u2.data(), model->u2.size(), lr, wd, bc1, bc2);
  AdamUpdateBlock(model->u3.data(), grads.u3.data(), state->m.u3.data(),
                  state->v.u3.data(), model->u3.size(), lr, wd, bc1, bc2);
  AdamUpdateBlock(model->h.data(), grads.h.data(), state->m.h.data(),
                  state->v.h.data(), model->h.size(), lr, wd, bc1, bc2);
}

double TcssTrainer::AddTemporalSmoothness(const FactorModel& model,
                                          double weight,
                                          FactorGrads* grads) const {
  return AddTemporalSmoothnessGrad(model.u3, weight, &grads->u3);
}

double TcssTrainer::ScheduledLr(int epoch) const {
  return ScheduledLearningRate(config_, epoch);
}

Result<FactorModel> TcssTrainer::Train(const EpochCallback& callback) {
  return Train(TrainOptions{}, callback);
}

Result<FactorModel> TcssTrainer::Train(const TrainOptions& options,
                                       const EpochCallback& callback) {
  const std::string problem = config_.Validate();
  if (!problem.empty()) return Status::InvalidArgument(problem);
  if (options.resume && options.checkpoints == nullptr) {
    return Status::InvalidArgument("resume requested without checkpoints");
  }
  SetGlobalThreads(config_.num_threads);

  FactorModel model;
  int start_epoch = 0;        // epochs already completed
  double lr_scale = 1.0;      // divergence-backoff multiplier

  std::unique_ptr<AdamState> adam;
  bool resumed = false;
  if (options.resume) {
    auto loaded = options.checkpoints->LoadLatest();
    if (loaded.ok()) {
      TrainerCheckpoint ckpt = loaded.MoveValue();
      if (ckpt.model.u1.rows() != train_->dim_i() ||
          ckpt.model.u2.rows() != train_->dim_j() ||
          ckpt.model.u3.rows() != train_->dim_k() ||
          ckpt.model.rank() != config_.rank) {
        return Status::InvalidArgument(
            "checkpoint shape does not match the training tensor/config");
      }
      model = std::move(ckpt.model);
      adam = std::make_unique<AdamState>(model);
      adam->m = std::move(ckpt.adam_m);
      adam->v = std::move(ckpt.adam_v);
      adam->t = ckpt.adam_t;
      start_epoch = ckpt.epoch;
      lr_scale = ckpt.lr_scale;
      if (hausdorff_ != nullptr) {
        hausdorff_->set_rotation(ckpt.hausdorff_rotation);
      }
      l2_->set_sampler_state(ckpt.sampler_state);
      resumed = true;
      TCSS_LOG(Info) << "resuming training from checkpoint at epoch "
                     << start_epoch;
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    } else if (options.require_checkpoint) {
      return Status::FailedPrecondition(
          "resume requires a checkpoint but none could be loaded from '" +
          options.checkpoints->options().dir +
          "': " + loaded.status().message());
    }
  }
  if (!resumed) {
    if (options.warm_start != nullptr) {
      const FactorModel& warm = *options.warm_start;
      if (warm.u1.rows() != train_->dim_i() ||
          warm.u2.rows() != train_->dim_j() ||
          warm.u3.rows() != train_->dim_k() ||
          warm.rank() != config_.rank) {
        return Status::InvalidArgument(
            "warm-start model shape does not match the training "
            "tensor/config");
      }
      model = warm;
    } else {
      auto init = InitializeFactors(*train_, config_);
      if (!init.ok()) return init.status();
      model = init.MoveValue();
    }
    adam = std::make_unique<AdamState>(model);
  }

  FactorGrads grads(model);

  // Last state whose *forward* loss was verified finite. Rolling back here
  // and shrinking the LR changes the trajectory that diverged; rolling
  // back a single step would recompute the identical non-finite loss.
  TrainerCheckpoint last_good;
  auto record_last_good = [&](int completed_epochs) {
    last_good.model = model;
    last_good.adam_m = adam->m;
    last_good.adam_v = adam->v;
    last_good.adam_t = adam->t;
    last_good.epoch = completed_epochs;
    last_good.hausdorff_rotation =
        hausdorff_ != nullptr ? hausdorff_->rotation() : 0;
    last_good.sampler_state = l2_->sampler_state();
    last_good.lr_scale = lr_scale;
  };
  record_last_good(start_epoch);

  int rollbacks = 0;
  double best_monitored = std::numeric_limits<double>::infinity();
  int plateau_streak = 0;
  const TrainMetrics metrics = TrainMetrics::Resolve();

  for (int epoch = start_epoch + 1; epoch <= config_.epochs; ++epoch) {
    Stopwatch sw;
    Stopwatch stage;
    grads.Zero();
    EpochStats stats;
    stats.epoch = epoch;
    const size_t rotation_before =
        hausdorff_ != nullptr ? hausdorff_->rotation() : 0;
    const uint64_t sampler_before = l2_->sampler_state();
    stats.loss_l2 = l2_->ComputeWithGrads(model, *train_, &grads);
    stats.seconds_loss = stage.ElapsedSeconds();
    metrics.loss_ms->Record(stats.seconds_loss * 1e3);
    if (hausdorff_ != nullptr) {
      // ComputeWithGrads bakes lambda into its gradient scale but returns
      // the raw (extrapolated) L1 value; multiply here so TotalLoss() —
      // which drives divergence detection and plateau monitoring — sees
      // lambda applied exactly once, matching the gradients.
      stage.Restart();
      stats.loss_l1 =
          config_.lambda *
          hausdorff_->ComputeWithGrads(model, config_.lambda, &grads);
      stats.seconds_hausdorff = stage.ElapsedSeconds();
      metrics.hausdorff_ms->Record(stats.seconds_hausdorff * 1e3);
    }
    if (config_.temporal_smoothness > 0.0) {
      stats.loss_ts =
          AddTemporalSmoothness(model, config_.temporal_smoothness, &grads);
    }
    stats.grad_norm = GradMaxAbs(grads);

    const bool diverged =
        !std::isfinite(stats.TotalLoss()) ||
        !std::isfinite(stats.grad_norm) ||
        (options.grad_norm_limit > 0.0 &&
         stats.grad_norm > options.grad_norm_limit);
    if (diverged) {
      if (rollbacks >= options.max_divergence_retries) {
        return Status::NotConverged(StrFormat(
            "divergence at epoch %d (loss=%g, grad_norm=%g): %d rollback "
            "retries with LR backoff %g exhausted; lower the learning rate",
            epoch, stats.TotalLoss(), stats.grad_norm, rollbacks,
            options.lr_backoff));
      }
      ++rollbacks;
      metrics.rollbacks->Add(1);
      lr_scale *= options.lr_backoff;  // compounds across retries
      TCSS_LOG(Warning) << "divergence at epoch " << epoch
                        << " (loss=" << stats.TotalLoss()
                        << ", grad_norm=" << stats.grad_norm
                        << "); rolling back to epoch " << last_good.epoch
                        << " with lr_scale " << lr_scale;
      model = last_good.model;
      adam->m = last_good.adam_m;
      adam->v = last_good.adam_v;
      adam->t = last_good.adam_t;
      if (hausdorff_ != nullptr) {
        hausdorff_->set_rotation(last_good.hausdorff_rotation);
      }
      l2_->set_sampler_state(last_good.sampler_state);
      epoch = last_good.epoch;  // loop increment restarts at epoch + 1
      continue;
    }

    // The forward pass from the pre-step state was finite, so that state
    // is a safe rollback target (capture it before the step mutates it).
    last_good.model = model;
    last_good.adam_m = adam->m;
    last_good.adam_v = adam->v;
    last_good.adam_t = adam->t;
    last_good.epoch = epoch - 1;
    last_good.hausdorff_rotation = rotation_before;
    last_good.sampler_state = sampler_before;
    last_good.lr_scale = lr_scale;

    stats.lr = ScheduledLr(epoch) * lr_scale;
    stats.rollbacks = rollbacks;
    stage.Restart();
    AdamStep(&model, grads, adam.get(), stats.lr);
    stats.seconds_apply = stage.ElapsedSeconds();
    metrics.apply_ms->Record(stats.seconds_apply * 1e3);

    auto save_checkpoint = [&]() -> Status {
      Stopwatch ckpt_sw;
      TrainerCheckpoint ckpt;
      ckpt.model = model;
      ckpt.adam_m = adam->m;
      ckpt.adam_v = adam->v;
      ckpt.adam_t = adam->t;
      ckpt.epoch = epoch;
      ckpt.hausdorff_rotation =
          hausdorff_ != nullptr ? hausdorff_->rotation() : 0;
      ckpt.sampler_state = l2_->sampler_state();
      ckpt.lr_scale = lr_scale;
      Status saved = options.checkpoints->Save(ckpt);
      stats.seconds_checkpoint = ckpt_sw.ElapsedSeconds();
      metrics.checkpoint_ms->Record(stats.seconds_checkpoint * 1e3);
      metrics.checkpoints->Add(1);
      return saved;
    };
    bool checkpointed = false;
    if (options.checkpoints != nullptr &&
        (options.checkpoints->ShouldSnapshot(epoch) ||
         epoch == config_.epochs)) {
      TCSS_RETURN_IF_ERROR(save_checkpoint());
      checkpointed = true;
    }

    stats.seconds = sw.ElapsedSeconds();
    metrics.epoch_ms->Record(stats.seconds * 1e3);
    metrics.epochs->Add(1);
    metrics.loss_total->Set(stats.TotalLoss());
    metrics.lr->Set(stats.lr);
    if (callback) callback(stats, model);

    if (options.stop != nullptr &&
        options.stop->load(std::memory_order_relaxed)) {
      TCSS_LOG(Info) << "stop requested; ending training after epoch "
                     << epoch;
      // Same reasoning as the plateau break below: the final-epoch
      // snapshot never runs on this path, so persist the stopping point
      // for --resume before leaving.
      if (options.checkpoints != nullptr && !checkpointed) {
        TCSS_RETURN_IF_ERROR(save_checkpoint());
      }
      break;
    }

    if (options.plateau_patience > 0) {
      const double monitored = options.validation_metric
                                   ? options.validation_metric(model)
                                   : stats.TotalLoss();
      if (monitored < best_monitored - options.plateau_min_delta) {
        best_monitored = monitored;
        plateau_streak = 0;
      } else if (++plateau_streak >= options.plateau_patience) {
        metrics.plateau_stops->Add(1);
        TCSS_LOG(Info) << "early stop at epoch " << epoch
                       << ": monitored value plateaued at "
                       << best_monitored;
        // The final-epoch snapshot below the loop never runs on this
        // path; save here so a post-plateau --resume restarts from the
        // stopping point instead of redoing epochs.
        if (options.checkpoints != nullptr && !checkpointed) {
          TCSS_RETURN_IF_ERROR(save_checkpoint());
        }
        break;
      }
    }
  }
  return model;
}

Result<double> TcssTrainer::TimeOneLossEpoch(LossMode mode) {
  TcssConfig cfg = config_;
  cfg.loss_mode = mode;
  SetGlobalThreads(cfg.num_threads);
  auto init = InitializeFactors(*train_, cfg);
  if (!init.ok()) return init.status();
  FactorModel model = init.MoveValue();
  FactorGrads grads(model);
  std::unique_ptr<WholeDataLoss> loss = WholeDataLoss::Create(cfg);
  loss->BindTensor(*train_);  // precompute CSF outside the timed region
  Stopwatch sw;
  (void)loss->ComputeWithGrads(model, *train_, &grads);
  return sw.ElapsedSeconds();
}

}  // namespace tcss
