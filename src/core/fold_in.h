#ifndef TCSS_CORE_FOLD_IN_H_
#define TCSS_CORE_FOLD_IN_H_

#include <vector>

#include "common/status.h"
#include "core/factor_model.h"
#include "data/tensor_builder.h"

namespace tcss {

/// Fold-in for new users (cold-start serving): given a trained model and
/// a fresh user's observed (poi, time) cells, solves the ridge-regularized
/// weighted least squares for that user's embedding with the POI/time
/// factors and h held fixed:
///
///   min_u  sum_{(j,k) in obs} w+ (1 - u . phi_jk)^2
///        + w- sum_{all (j,k)} (u . phi_jk)^2  +  ridge ||u||^2
///
/// where phi_jk = h ⊙ U2_j ⊙ U3_k. The whole-data negative term uses the
/// same Gram rewrite as Eq 15, so the solve costs O(r^2 (J + K) + |obs| r)
/// and never touches the J*K grid. Returns the r-dimensional embedding;
/// score new-user cells as h-weighted products via FoldInScore.
struct FoldInOptions {
  double w_pos = 0.95;
  double w_neg = 0.05;
  double ridge = 1e-6;
};

Result<std::vector<double>> FoldInUser(
    const FactorModel& model, const std::vector<TensorCell>& observations,
    const FoldInOptions& opts = FoldInOptions());

/// Prediction for a folded-in user: sum_t u_t h_t U2[j,t] U3[k,t].
double FoldInScore(const FactorModel& model, const std::vector<double>& user,
                   uint32_t j, uint32_t k);

}  // namespace tcss

#endif  // TCSS_CORE_FOLD_IN_H_
