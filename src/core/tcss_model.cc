#include "core/tcss_model.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "geo/haversine.h"
#include "linalg/vector_ops.h"

namespace tcss {

std::string TcssModel::name() const {
  std::string n = "TCSS";
  if (config_.hausdorff == HausdorffMode::kNone) n += "(no-L1)";
  if (config_.hausdorff == HausdorffMode::kSelf) n += "(self-hausdorff)";
  if (config_.hausdorff == HausdorffMode::kZeroOut) n += "(zero-out)";
  if (config_.init == InitMethod::kRandom) n += "(rand-init)";
  if (config_.init == InitMethod::kOneHot) n += "(onehot-init)";
  if (config_.loss_mode == LossMode::kNegativeSampling) n += "(neg-sampling)";
  return n;
}

Status TcssModel::Fit(const TrainContext& ctx) {
  return FitWithCallback(ctx, nullptr);
}

Status TcssModel::FitWithCallback(const TrainContext& ctx,
                                  const EpochCallback& callback) {
  return FitWithOptions(ctx, TrainOptions{}, callback);
}

Status TcssModel::FitWithOptions(const TrainContext& ctx,
                                 const TrainOptions& options,
                                 const EpochCallback& callback) {
  if (ctx.data == nullptr || ctx.train == nullptr) {
    return Status::InvalidArgument("TcssModel::Fit: null context");
  }
  if (fitted_) {
    return Status::FailedPrecondition("TcssModel::Fit called twice");
  }
  TcssTrainer trainer(*ctx.data, *ctx.train, config_);
  auto trained = trainer.Train(options, callback);
  if (!trained.ok()) return trained.status();
  factors_ = trained.MoveValue();
  num_pois_ = ctx.train->dim_j();
  if (config_.hausdorff == HausdorffMode::kZeroOut) {
    BuildZeroOutMask(ctx);
  }
  fitted_ = true;
  return Status::OK();
}

void TcssModel::BuildZeroOutMask(const TrainContext& ctx) {
  const size_t I = ctx.train->dim_i();
  const size_t J = ctx.train->dim_j();
  const double d_max = MaxPairwiseDistanceKm(ctx.data->PoiLocations());
  const double sigma = config_.zero_out_sigma_frac * std::max(d_max, 1e-9);

  std::vector<std::vector<uint32_t>> user_pois(I);
  for (const auto& e : ctx.train->entries()) user_pois[e.i].push_back(e.j);
  for (auto& v : user_pois) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  allowed_.assign(I * J, 0);
  for (size_t i = 0; i < I; ++i) {
    for (size_t j = 0; j < J; ++j) {
      const GeoPoint& pj = ctx.data->poi(static_cast<uint32_t>(j)).location;
      for (uint32_t own : user_pois[i]) {
        if (HaversineKm(pj, ctx.data->poi(own).location) <= sigma) {
          allowed_[i * J + j] = 1;
          break;
        }
      }
    }
  }
}

double TcssModel::Score(uint32_t i, uint32_t j, uint32_t k) const {
  const double y = factors_.Predict(i, j, k);
  if (!allowed_.empty()) {
    if (!allowed_[static_cast<size_t>(i) * num_pois_ + j]) {
      return -1e9;  // zero-out ablation: discard far POIs entirely
    }
  }
  return y;
}

Matrix TcssModel::TimeFactorSimilarity() const {
  const size_t K = factors_.u3.rows();
  Matrix sim(K, K);
  for (size_t a = 0; a < K; ++a) {
    std::vector<double> va(factors_.u3.row(a),
                           factors_.u3.row(a) + factors_.rank());
    for (size_t b = 0; b < K; ++b) {
      std::vector<double> vb(factors_.u3.row(b),
                             factors_.u3.row(b) + factors_.rank());
      sim(a, b) = CosineSimilarity(va, vb);
    }
  }
  return sim;
}

}  // namespace tcss
