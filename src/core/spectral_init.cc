#include "core/spectral_init.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "linalg/subspace_iteration.h"
#include "tensor/gram_operator.h"

namespace tcss {
namespace {

// Sign-aligns each column so its entry sum is non-negative (eigenvectors
// have arbitrary sign; a predominantly-positive orientation matches the
// non-negative tensor better).
void AlignSigns(Matrix* u) {
  for (size_t t = 0; t < u->cols(); ++t) {
    double s = 0.0;
    for (size_t i = 0; i < u->rows(); ++i) s += (*u)(i, t);
    if (s < 0.0) {
      for (size_t i = 0; i < u->rows(); ++i) (*u)(i, t) = -(*u)(i, t);
    }
  }
}

// Top-r eigenvectors of the (zero-diagonal) Gram of the mode-n unfolding.
// If r exceeds the mode dimension, the leading dim columns come from the
// eigensolver and the rest are filled with small random values.
Result<Matrix> SpectralFactor(const SparseTensor& train, int mode, size_t r,
                              uint64_t seed) {
  const size_t dim = train.dim(mode);
  const size_t r_eff = std::min(r, dim);
  ModeGramOperator gram(train, mode, /*zero_diagonal=*/true);
  // The zero-diagonal Gram G = A A^T - D is indefinite (lambda_min >=
  // -max D_ii by Gershgorin). Power-type iteration converges to the
  // largest-*magnitude* eigenvalues, so shift by max D_ii to make the
  // operator PSD; the top eigenvectors are then the algebraically
  // largest of G, which is what Eq 4 asks for.
  double sigma = 0.0;
  for (double d : gram.Diagonal()) sigma = std::max(sigma, d);
  ShiftedOperator shifted(&gram, sigma);
  SubspaceIterationOptions opts;
  opts.seed = seed + static_cast<uint64_t>(mode) * 7919;
  auto eig = SubspaceEigen(shifted, r_eff, opts);
  if (!eig.ok()) return eig.status();
  Matrix u(dim, r);
  const Matrix& vecs = eig.value().vectors;
  for (size_t i = 0; i < dim; ++i)
    for (size_t t = 0; t < r_eff; ++t) u(i, t) = vecs(i, t);
  if (r_eff < r) {
    Rng rng(seed ^ 0xabcdef);
    for (size_t i = 0; i < dim; ++i)
      for (size_t t = r_eff; t < r; ++t) u(i, t) = rng.Gaussian(0.0, 0.05);
  }
  AlignSigns(&u);
  // Symmetry-breaking jitter: the exact eigenbasis is a stationary-ish
  // configuration for several loss terms; a small perturbation keeps the
  // subspace information while letting Adam leave the saddle quickly.
  {
    Rng rng(seed ^ 0x9177);
    const double scale = 0.25 / std::sqrt(static_cast<double>(dim));
    for (size_t i = 0; i < dim; ++i)
      for (size_t t = 0; t < r; ++t) u(i, t) += rng.Gaussian(0.0, scale);
  }
  return u;
}

}  // namespace

Result<FactorModel> InitializeFactors(const SparseTensor& train,
                                      const TcssConfig& config) {
  if (!train.finalized()) {
    return Status::FailedPrecondition("InitializeFactors: tensor not final");
  }
  const size_t r = config.rank;
  FactorModel m;
  m.h.assign(r, 1.0);

  switch (config.init) {
    case InitMethod::kSpectral: {
      auto u1 = SpectralFactor(train, 0, r, config.seed);
      if (!u1.ok()) return u1.status();
      auto u2 = SpectralFactor(train, 1, r, config.seed + 1);
      if (!u2.ok()) return u2.status();
      auto u3 = SpectralFactor(train, 2, r, config.seed + 2);
      if (!u3.ok()) return u3.status();
      m.u1 = u1.MoveValue();
      m.u2 = u2.MoveValue();
      m.u3 = u3.MoveValue();
      break;
    }
    case InitMethod::kRandom: {
      Rng rng(config.seed);
      m.u1 = Matrix::GaussianRandom(train.dim_i(), r, &rng, 0.1);
      m.u2 = Matrix::GaussianRandom(train.dim_j(), r, &rng, 0.1);
      m.u3 = Matrix::GaussianRandom(train.dim_k(), r, &rng, 0.1);
      break;
    }
    case InitMethod::kOneHot: {
      m.u1.Resize(train.dim_i(), r);
      m.u2.Resize(train.dim_j(), r);
      m.u3.Resize(train.dim_k(), r);
      auto cyclic = [r](Matrix* u) {
        for (size_t i = 0; i < u->rows(); ++i) (*u)(i, i % r) = 0.3;
      };
      cyclic(&m.u1);
      cyclic(&m.u2);
      cyclic(&m.u3);
      break;
    }
  }

  // Note: no magnitude rescaling is applied. The spectral factors keep
  // the eigenvector scale (entries ~ 1/sqrt(n)); Adam's per-coordinate
  // step sizes grow them quickly, and experiments showed that forcing the
  // initial mean prediction toward 0.5 creates a stiff starting point
  // that ends in a worse optimum.
  return m;
}

}  // namespace tcss
