#ifndef TCSS_CORE_TCSS_CONFIG_H_
#define TCSS_CORE_TCSS_CONFIG_H_

#include <cstdint>
#include <string>

namespace tcss {

/// How the latent factors are initialized (Section IV-A / ablation).
enum class InitMethod {
  kSpectral,  ///< top-r eigenvectors of the off-diagonal mode Grams (Eq 4)
  kRandom,    ///< i.i.d. Gaussian
  kOneHot,    ///< deterministic cyclic one-hot pattern (NCF-style indexing)
};

/// Which implementation of the least-squares head L2 is used
/// (Section IV-D / Table IV).
enum class LossMode {
  kRewritten,         ///< Eq 15: O((I+J+K) r^2 + nnz r)
  kNaive,             ///< Eq 14 evaluated over all I*J*K cells
  kNegativeSampling,  ///< nnz sampled negatives per epoch (He et al. style)
};

/// Which Hausdorff regularization head L1 is used (ablation, Table II).
enum class HausdorffMode {
  kSocial,   ///< the paper's social Hausdorff loss (Eq 12)
  kSelf,     ///< N(v_i) = user's own POIs (removes the social signal)
  kZeroOut,  ///< no L1; prediction-time distance mask instead
  kNone,     ///< no L1 at all (lambda = 0)
};

const char* InitMethodName(InitMethod m);
const char* LossModeName(LossMode m);
const char* HausdorffModeName(HausdorffMode m);

/// Hyperparameters of the TCSS model. Defaults follow Section V-D of the
/// paper: w+ = 0.99, w- = 0.01, lambda = 0.1, rank 10, alpha = -1,
/// epsilon = 1e-6, Adam lr 0.001.
struct TcssConfig {
  size_t rank = 10;
  int epochs = 400;

  // Optimizer. The paper uses Adam with lr 0.001 on GPU minibatches; this
  // implementation trains full-batch (one Adam step per epoch), which
  // needs a correspondingly larger step size to converge in a comparable
  // number of passes.
  double learning_rate = 0.2;
  double weight_decay = 1e-5;
  /// Step schedule: the learning rate is multiplied by this factor after
  /// 60% and again after 85% of the epochs (sharpens full-batch Adam).
  double lr_step_factor = 0.3;

  // Class-balancing weights of the whole-data loss (Eq 14/15). The paper
  // reports (0.99, 0.01) as optimal on its datasets; the weight sweep of
  // bench_table3/bench_fig8 on the synthetic presets peaks at
  // (0.95, 0.05), which is therefore the library default.
  double w_pos = 0.95;
  double w_neg = 0.05;

  // Social-spatial head.
  double lambda = 0.1;       ///< weight of L1 in L = lambda*L1 + L2
  double alpha = -1.0;       ///< generalized-mean exponent of the soft min
  double epsilon = 1e-6;     ///< division guard in Eq 10/12
  bool use_location_entropy = true;  ///< e_j weights of Eq 12

  /// Size of the candidate pool S(v_i). 0 = all POIs (paper-exact; only
  /// viable for small J). Otherwise the pool is the user's own POIs plus
  /// N(v_i) plus a uniform sample, capped at this size.
  size_t hausdorff_pool = 160;
  /// Cap on |N(v_i)| (friends' POIs); larger sets are subsampled.
  size_t max_friend_pois = 96;
  /// Number of users whose Hausdorff term is evaluated per epoch
  /// (rotating minibatch; 0 = all users every epoch).
  size_t hausdorff_users_per_epoch = 96;

  /// Extension (off by default, not in the paper): cyclic temporal
  /// smoothness regularizer  ts * sum_k ||U3_k - U3_{k+1 mod K}||^2
  /// encouraging adjacent time bins (e.g. consecutive months) to share
  /// factors. See bench_ext_temporal for its effect.
  double temporal_smoothness = 0.0;

  // Ablation switches.
  InitMethod init = InitMethod::kSpectral;
  LossMode loss_mode = LossMode::kRewritten;
  HausdorffMode hausdorff = HausdorffMode::kSocial;
  /// Zero-out ablation: sigma as a fraction of d_max.
  double zero_out_sigma_frac = 0.01;

  uint64_t seed = 13;

  /// Worker threads for the parallel hot paths (losses, MTTKRP, matmuls).
  /// 0 = std::thread::hardware_concurrency(). Training output is
  /// bit-identical at any thread count (see DESIGN.md, "Deterministic
  /// parallelism").
  int num_threads = 0;

  /// Human-readable one-liner for experiment logs.
  std::string Summary() const;

  /// Sanity-checks ranges; returns a message on the first problem.
  std::string Validate() const;
};

}  // namespace tcss

#endif  // TCSS_CORE_TCSS_CONFIG_H_
