#ifndef TCSS_CORE_CHECKPOINT_H_
#define TCSS_CORE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "core/factor_model.h"

namespace tcss {

/// Everything needed to continue a TcssTrainer run bit-identically from
/// the end of some epoch: the model, the Adam moments + step counter, the
/// epoch number, the Hausdorff minibatch cursor, the negative-sampling
/// call counter, and the divergence-guard learning-rate scale.
struct TrainerCheckpoint {
  FactorModel model;
  FactorGrads adam_m;
  FactorGrads adam_v;
  int64_t adam_t = 0;
  int epoch = 0;                 ///< epochs fully completed
  size_t hausdorff_rotation = 0;
  double lr_scale = 1.0;         ///< divergence-backoff multiplier
  /// WholeDataLoss::sampler_state() — the NegativeSamplingLoss call
  /// counter (0 for deterministic loss modes). Serialized as an optional
  /// trailing "sampler" field so pre-existing TCKPv1 files still parse
  /// (they default to 0).
  uint64_t sampler_state = 0;
};

/// In-memory (de)serialization of the TCKPv1 checkpoint format: a text
/// token stream (hex floats, exact double round-trip) ending in a CRC32
/// footer over every preceding byte. See DESIGN.md "Crash safety".
std::string SerializeCheckpoint(const TrainerCheckpoint& ckpt);
Result<TrainerCheckpoint> ParseCheckpoint(std::string_view text);

/// Options for CheckpointManager.
struct CheckpointOptions {
  std::string dir;      ///< directory holding ckpt-<epoch>.tckp files
  int every = 10;       ///< snapshot period in epochs (>= 1)
  int retain = 3;       ///< keep the newest N checkpoints (>= 1)
  Env* env = nullptr;   ///< defaults to Env::Default()

  /// Shard-aware naming for distributed training: shard `s` of
  /// `num_shards` writes "ckpt-<epoch>-s<s>of<N>.tckp" and only ever sees
  /// files carrying its own (s, N) tag, so every worker of a distributed
  /// run can share one directory without clobbering or loading each
  /// other's state. The default (shard 0 of 1) keeps the legacy
  /// "ckpt-<epoch>.tckp" names — single-process checkpoints are unchanged
  /// and old directories stay loadable.
  int shard = 0;
  int num_shards = 1;
};

/// Writes and reads periodic training checkpoints crash-safely:
///
///  * Save() serializes to "<dir>/ckpt-<epoch>.tckp.tmp", then renames
///    onto the final name — a crash at any instant leaves either the old
///    set of checkpoints or the old set plus the complete new file, never
///    a torn one under the real name.
///  * Every file carries a CRC32 footer; LoadLatest() walks the directory
///    newest-first and returns the first checkpoint that passes both the
///    CRC and the structural parse, so stray corruption degrades to "resume
///    from one snapshot earlier" instead of a crash or silent garbage.
///  * After a successful save, checkpoints beyond `retain` are deleted
///    oldest-first; deletion failures are ignored (retention is advisory,
///    correctness never depends on it).
class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointOptions options);

  /// Creates the checkpoint directory. Call once before Save().
  Status Init();

  /// True when the epoch loop should snapshot after `epoch` completes.
  bool ShouldSnapshot(int epoch) const {
    return options_.every > 0 && epoch % options_.every == 0;
  }

  /// Atomically writes ckpt-<epoch>.tckp and applies retention.
  Status Save(const TrainerCheckpoint& ckpt);

  /// Most recent checkpoint that validates; NotFound if none exists.
  Result<TrainerCheckpoint> LoadLatest() const;

  /// Loads and validates one specific file.
  Result<TrainerCheckpoint> Load(const std::string& path) const;

  /// Loads and validates the checkpoint of one specific epoch (under this
  /// manager's shard naming). The distributed recovery protocol uses this:
  /// the coordinator picks the newest epoch *every* worker has on disk,
  /// which is not necessarily any single worker's newest.
  Result<TrainerCheckpoint> LoadEpoch(int epoch) const {
    return Load(PathForEpoch(epoch));
  }

  /// Epochs of the on-disk checkpoint files, ascending (no validation).
  std::vector<int> ListEpochs() const;

  const CheckpointOptions& options() const { return options_; }

 private:
  std::string PathForEpoch(int epoch) const;

  CheckpointOptions options_;
};

}  // namespace tcss

#endif  // TCSS_CORE_CHECKPOINT_H_
