#ifndef TCSS_CORE_FACTOR_MODEL_H_
#define TCSS_CORE_FACTOR_MODEL_H_

#include <vector>

#include "linalg/matrix.h"

namespace tcss {

/// The learnable state of TCSS (Eq 6): three factor matrices plus the
/// dense-layer weight vector h. Plain value type; trainers own the
/// optimizer state separately.
struct FactorModel {
  Matrix u1;              ///< I x r (users)
  Matrix u2;              ///< J x r (POIs)
  Matrix u3;              ///< K x r (time bins)
  std::vector<double> h;  ///< r importance weights

  size_t rank() const { return h.size(); }

  /// X-hat(i,j,k) = sum_t h_t * U1[i,t] * U2[j,t] * U3[k,t].
  double Predict(uint32_t i, uint32_t j, uint32_t k) const {
    const double* a = u1.row(i);
    const double* b = u2.row(j);
    const double* c = u3.row(k);
    double s = 0.0;
    for (size_t t = 0; t < h.size(); ++t) s += h[t] * a[t] * b[t] * c[t];
    return s;
  }
};

/// Gradient accumulator shaped like a FactorModel. Also reused as the
/// container for Adam moment estimates (same shape as the model).
struct FactorGrads {
  Matrix u1, u2, u3;
  std::vector<double> h;

  /// Empty shape; filled in by deserialization (checkpoint restore).
  FactorGrads() = default;

  explicit FactorGrads(const FactorModel& m)
      : u1(m.u1.rows(), m.u1.cols()),
        u2(m.u2.rows(), m.u2.cols()),
        u3(m.u3.rows(), m.u3.cols()),
        h(m.h.size(), 0.0) {}

  void Zero() {
    u1.Fill(0.0);
    u2.Fill(0.0);
    u3.Fill(0.0);
    std::fill(h.begin(), h.end(), 0.0);
  }

  /// this += alpha * other (shapes must match). The ordered reduce of
  /// per-shard gradient buffers: merging in ascending shard order makes
  /// parallel accumulation bit-identical at any thread count (DESIGN.md,
  /// "Deterministic parallelism").
  void Add(const FactorGrads& other, double alpha = 1.0) {
    u1.Add(other.u1, alpha);
    u2.Add(other.u2, alpha);
    u3.Add(other.u3, alpha);
    for (size_t t = 0; t < h.size(); ++t) h[t] += alpha * other.h[t];
  }
};

}  // namespace tcss

#endif  // TCSS_CORE_FACTOR_MODEL_H_
