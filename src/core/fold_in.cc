#include "core/fold_in.h"

#include "linalg/cholesky.h"

namespace tcss {

Result<std::vector<double>> FoldInUser(
    const FactorModel& model, const std::vector<TensorCell>& observations,
    const FoldInOptions& opts) {
  const size_t r = model.rank();
  if (r == 0) {
    return Status::FailedPrecondition("FoldInUser: empty model");
  }
  if (model.u2.cols() != r || model.u3.cols() != r) {
    return Status::FailedPrecondition(
        "FoldInUser: factor widths do not match rank");
  }
  const size_t J = model.u2.rows();
  const size_t K = model.u3.rows();
  if (J == 0 || K == 0) {
    return Status::FailedPrecondition("FoldInUser: empty POI/time factors");
  }

  // Whole-grid Gram of phi_jk = h ⊙ U2_j ⊙ U3_k:
  //   sum_{j,k} phi phi^T = (h h^T) ⊙ (U2^T U2) ⊙ (U3^T U3).
  const Matrix g2 = Gram(model.u2);
  const Matrix g3 = Gram(model.u3);
  Matrix lhs(r, r);
  for (size_t a = 0; a < r; ++a) {
    for (size_t b = 0; b < r; ++b) {
      lhs(a, b) =
          opts.w_neg * model.h[a] * model.h[b] * g2(a, b) * g3(a, b);
    }
  }

  std::vector<double> rhs(r, 0.0);
  std::vector<double> phi(r);
  const double dw = opts.w_pos - opts.w_neg;
  for (const auto& cell : observations) {
    if (cell.j >= J || cell.k >= K) {
      return Status::OutOfRange("FoldInUser: observation outside model");
    }
    const double* b = model.u2.row(cell.j);
    const double* c = model.u3.row(cell.k);
    for (size_t t = 0; t < r; ++t) phi[t] = model.h[t] * b[t] * c[t];
    for (size_t a = 0; a < r; ++a) {
      rhs[a] += opts.w_pos * phi[a];
      for (size_t bb = 0; bb < r; ++bb) {
        lhs(a, bb) += dw * phi[a] * phi[bb];
      }
    }
  }
  return CholeskySolve(lhs, rhs, opts.ridge);
}

double FoldInScore(const FactorModel& model, const std::vector<double>& user,
                   uint32_t j, uint32_t k) {
  const double* b = model.u2.row(j);
  const double* c = model.u3.row(k);
  double s = 0.0;
  for (size_t t = 0; t < model.rank(); ++t) {
    s += user[t] * model.h[t] * b[t] * c[t];
  }
  return s;
}

}  // namespace tcss
