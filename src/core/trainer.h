#ifndef TCSS_CORE_TRAINER_H_
#define TCSS_CORE_TRAINER_H_

#include <atomic>
#include <functional>
#include <memory>

#include "common/status.h"
#include "core/checkpoint.h"
#include "core/factor_model.h"
#include "core/hausdorff_loss.h"
#include "core/tcss_config.h"
#include "core/whole_data_loss.h"
#include "data/dataset.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Per-epoch training diagnostics.
struct EpochStats {
  int epoch = 0;
  double loss_l2 = 0.0;       ///< least-squares head value
  double loss_l1 = 0.0;       ///< lambda * social Hausdorff value (extrapolated)
  double loss_ts = 0.0;       ///< temporal-smoothness penalty value
  double grad_norm = 0.0;     ///< max-abs entry over all gradients
  double lr = 0.0;            ///< effective learning rate of this epoch
  int rollbacks = 0;          ///< divergence rollbacks so far in the run
  double seconds = 0.0;       ///< wall time of the epoch

  // Stage split of `seconds` (whatever the epoch did not spend in these
  // stages is loop overhead). Also recorded as train.stage.* histograms in
  // the global obs::MetricRegistry.
  double seconds_loss = 0.0;        ///< L2 head forward+grad (rewritten loss)
  double seconds_hausdorff = 0.0;   ///< social Hausdorff forward+grad
  double seconds_apply = 0.0;       ///< Adam gradient-apply step
  double seconds_checkpoint = 0.0;  ///< checkpoint write (0 when skipped)

  double TotalLoss() const { return loss_l2 + loss_l1 + loss_ts; }
};

/// Called after every epoch with stats and the current factors (e.g. to
/// record convergence curves, Fig 9).
using EpochCallback =
    std::function<void(const EpochStats&, const FactorModel&)>;

// Shared training arithmetic ---------------------------------------------
//
// The distributed engine (src/dist) re-implements the trainer's epoch loop
// across processes and must produce bit-identical floating-point
// trajectories. Every piece of per-element arithmetic therefore lives in
// these free functions, used verbatim by both TcssTrainer and DistWorker/
// DistCoordinator: same functions, same IEEE operation order, same bytes.

/// Adam hyperparameters shared by every trainer in the repo.
inline constexpr double kAdamBeta1 = 0.9;
inline constexpr double kAdamBeta2 = 0.999;
inline constexpr double kAdamEps = 1e-8;

/// Bias-correction factors 1 - beta^t for step counter `t` (post-increment
/// value, i.e. the step being applied).
void AdamBiasCorrection(int64_t t, double* bc1, double* bc2);

/// One Adam update over a contiguous parameter block. Elementwise: applying
/// it to disjoint row blocks of a matrix (with the matching gradient and
/// moment blocks) produces exactly the same bytes as one call over the
/// whole matrix — the property that makes user-mode sharding exact.
void AdamUpdateBlock(double* value, const double* grad, double* m, double* v,
                     size_t n, double lr, double weight_decay, double bc1,
                     double bc2);

/// Learning rate of `epoch` under the step schedule (before any divergence
/// backoff): lr * step^2 after 85% of the epochs, lr * step after 60%.
double ScheduledLearningRate(const TcssConfig& config, int epoch);

/// Adds the cyclic temporal-smoothness gradient
/// ts * sum_k ||U3_k - U3_{k+1 mod K}||^2 into `u3_grad` and returns the
/// penalty value. Touches only the (small, replicated) U3 factor, so the
/// distributed coordinator can evaluate it centrally.
double AddTemporalSmoothnessGrad(const Matrix& u3, double weight,
                                 Matrix* u3_grad);

/// Max-abs entry of a block; +inf if any entry is NaN/Inf, so a single
/// comparison catches both explosion and corruption.
double MaxAbsOrInf(const double* p, size_t n);

/// Resilience knobs of TcssTrainer::Train. Defaults preserve the classic
/// behavior (no checkpoints, no early stop) except that non-finite
/// losses/gradients now trigger rollback + LR backoff instead of silently
/// training on NaN — a run that stays finite is bit-identical to before.
struct TrainOptions {
  /// Periodic crash-safe snapshots. Not owned; may be null (no
  /// checkpointing). Call CheckpointManager::Init() before training.
  CheckpointManager* checkpoints = nullptr;

  /// Restore model + optimizer state + epoch counter from the newest valid
  /// checkpoint and continue; a missing checkpoint falls back to a cold
  /// start. Requires `checkpoints`. A resumed run replays the exact
  /// floating-point trajectory of an uninterrupted one in every loss mode:
  /// kNegativeSampling's counter-based sampler state is checkpointed, so
  /// the resumed epochs draw the same negatives the uninterrupted run
  /// would have.
  bool resume = false;

  /// With `resume`: fail (FailedPrecondition) instead of cold-starting when
  /// no checkpoint can be loaded — the CLI sets this so `--resume` against
  /// a missing or fully-corrupt checkpoint directory exits with a clear
  /// diagnostic rather than silently retraining from scratch.
  bool require_checkpoint = false;

  /// Divergence guard: on a non-finite loss/gradient (or grad_norm above
  /// `grad_norm_limit`), roll back to the last verified-good state and
  /// multiply the learning rate by `lr_backoff`. After
  /// `max_divergence_retries` rollbacks the run aborts with
  /// Status::NotConverged.
  int max_divergence_retries = 3;
  double lr_backoff = 0.5;
  /// Extra explosion guard on the max-abs gradient entry; 0 disables it
  /// (non-finite values are always caught).
  double grad_norm_limit = 0.0;

  /// Early stopping: stop once the monitored value fails to improve by
  /// more than `plateau_min_delta` for `plateau_patience` consecutive
  /// epochs. 0 disables. The monitored value is `validation_metric(model)`
  /// when set (lower is better — pass e.g. negated Hit@10), otherwise the
  /// epoch's total training loss.
  int plateau_patience = 0;
  double plateau_min_delta = 1e-4;
  std::function<double(const FactorModel&)> validation_metric;

  /// Warm start: when set (and no checkpoint was resumed), training starts
  /// from a copy of this model instead of InitializeFactors — the seam the
  /// streaming refiner uses to continue from the currently served factors
  /// after a delta merge. Shape must match the training tensor and
  /// config.rank exactly. A resumed checkpoint always wins over the warm
  /// start (the checkpoint is the later state). Not owned; must outlive
  /// Train().
  const FactorModel* warm_start = nullptr;

  /// Cooperative cancellation, checked once per epoch after the step and
  /// callback. When it reads true the trainer writes a final checkpoint
  /// (through the existing atomic path, when `checkpoints` is set) and
  /// returns the model trained so far with Status::OK — a SIGINT'd run is
  /// indistinguishable from a shorter one and `--resume` continues from
  /// the interruption point. A signal handler may store to this flag
  /// (std::atomic<bool> stores are async-signal-safe).
  const std::atomic<bool>* stop = nullptr;
};

/// Joint trainer of L = lambda * L1 + L2 (Eq 20) with Adam, entirely on
/// hand-derived analytic gradients.
class TcssTrainer {
 public:
  /// `data` and `train` must outlive the trainer.
  TcssTrainer(const Dataset& data, const SparseTensor& train,
              const TcssConfig& config);

  /// Runs config.epochs epochs from the configured initialization with
  /// default TrainOptions.
  Result<FactorModel> Train(const EpochCallback& callback = nullptr);

  /// Full-control variant: checkpoint/resume, divergence guards with
  /// rollback + LR backoff, optional early stopping.
  Result<FactorModel> Train(const TrainOptions& options,
                            const EpochCallback& callback);

  /// Measures the wall time of a single gradient evaluation of the L2 head
  /// under the given mode, on a freshly initialized model (Table IV).
  Result<double> TimeOneLossEpoch(LossMode mode);

  const SocialHausdorffLoss* hausdorff() const { return hausdorff_.get(); }

  /// Adds the cyclic temporal-smoothness gradient (extension; see
  /// TcssConfig::temporal_smoothness) and returns the penalty value.
  /// Public for direct testing; Train() calls it when the config weight
  /// is positive.
  double AddTemporalSmoothness(const FactorModel& model, double weight,
                               FactorGrads* grads) const;

 private:
  /// Adam moments shaped like the model.
  struct AdamState {
    FactorGrads m;
    FactorGrads v;
    int64_t t = 0;
    explicit AdamState(const FactorModel& model) : m(model), v(model) {}
  };

  void AdamStep(FactorModel* model, const FactorGrads& grads,
                AdamState* state, double lr) const;

  /// Learning rate of `epoch` under the step schedule (before any
  /// divergence backoff).
  double ScheduledLr(int epoch) const;

  const Dataset* data_;
  const SparseTensor* train_;
  TcssConfig config_;
  std::unique_ptr<WholeDataLoss> l2_;
  std::unique_ptr<SocialHausdorffLoss> hausdorff_;
};

}  // namespace tcss

#endif  // TCSS_CORE_TRAINER_H_
