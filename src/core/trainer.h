#ifndef TCSS_CORE_TRAINER_H_
#define TCSS_CORE_TRAINER_H_

#include <functional>
#include <memory>

#include "common/status.h"
#include "core/factor_model.h"
#include "core/hausdorff_loss.h"
#include "core/tcss_config.h"
#include "core/whole_data_loss.h"
#include "data/dataset.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Per-epoch training diagnostics.
struct EpochStats {
  int epoch = 0;
  double loss_l2 = 0.0;       ///< least-squares head value
  double loss_l1 = 0.0;       ///< social Hausdorff head value (extrapolated)
  double seconds = 0.0;       ///< wall time of the epoch
};

/// Called after every epoch with stats and the current factors (e.g. to
/// record convergence curves, Fig 9).
using EpochCallback =
    std::function<void(const EpochStats&, const FactorModel&)>;

/// Joint trainer of L = lambda * L1 + L2 (Eq 20) with Adam, entirely on
/// hand-derived analytic gradients.
class TcssTrainer {
 public:
  /// `data` and `train` must outlive the trainer.
  TcssTrainer(const Dataset& data, const SparseTensor& train,
              const TcssConfig& config);

  /// Runs config.epochs epochs from the configured initialization.
  Result<FactorModel> Train(const EpochCallback& callback = nullptr);

  /// Measures the wall time of a single gradient evaluation of the L2 head
  /// under the given mode, on a freshly initialized model (Table IV).
  Result<double> TimeOneLossEpoch(LossMode mode);

  const SocialHausdorffLoss* hausdorff() const { return hausdorff_.get(); }

  /// Adds the cyclic temporal-smoothness gradient (extension; see
  /// TcssConfig::temporal_smoothness) and returns the penalty value.
  /// Public for direct testing; Train() calls it when the config weight
  /// is positive.
  double AddTemporalSmoothness(const FactorModel& model, double weight,
                               FactorGrads* grads) const;

 private:
  /// Adam moments shaped like the model.
  struct AdamState {
    FactorGrads m;
    FactorGrads v;
    int64_t t = 0;
    explicit AdamState(const FactorModel& model) : m(model), v(model) {}
  };

  void AdamStep(FactorModel* model, const FactorGrads& grads,
                AdamState* state, double lr) const;

  const Dataset* data_;
  const SparseTensor* train_;
  TcssConfig config_;
  std::unique_ptr<WholeDataLoss> l2_;
  std::unique_ptr<SocialHausdorffLoss> hausdorff_;
};

}  // namespace tcss

#endif  // TCSS_CORE_TRAINER_H_
