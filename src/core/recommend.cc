#include "core/recommend.h"

#include <algorithm>

namespace tcss {

std::vector<Recommendation> TopKRecommendations(
    const Recommender& model, uint32_t user, uint32_t time_bin,
    size_t num_pois, const TopKOptions& opts, const SparseTensor* train) {
  std::vector<uint8_t> visited;
  if (opts.exclude_visited) {
    // The serving path reaches here with untrusted requests: a missing
    // train tensor cannot honor the exclusion, so the only safe answer is
    // an empty list (not a crash, not silently ignoring the flag).
    if (train == nullptr) return {};
    visited.assign(num_pois, 0);
    for (const auto& e : train->entries()) {
      if (e.i == user && e.j < num_pois) visited[e.j] = 1;
    }
  }
  const size_t k = std::min(opts.k, num_pois);
  if (k == 0) return {};

  // Canonical ranking order: higher score first, score ties broken by
  // ascending POI id. Using it for the heap's eviction decision (not just
  // the final sort) makes the returned *set* deterministic too — without
  // it, which of several boundary-tied POIs survives would depend on heap
  // internals and candidate order.
  auto better = [](const Recommendation& a, const Recommendation& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.poi < b.poi;
  };

  std::vector<Recommendation> heap;  // heap.front() = worst kept item
  auto consider = [&](uint32_t j) {
    if (!visited.empty() && visited[j]) return;
    const Recommendation rec{j, model.Score(user, j, time_bin)};
    if (heap.size() < k) {
      heap.push_back(rec);
      std::push_heap(heap.begin(), heap.end(), better);
    } else if (better(rec, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = rec;
      std::push_heap(heap.begin(), heap.end(), better);
    }
  };

  if (opts.candidates.empty()) {
    for (uint32_t j = 0; j < num_pois; ++j) consider(j);
  } else {
    // Dedup: a POI listed twice in an (untrusted) candidate list must not
    // be recommended twice.
    std::vector<uint32_t> candidates = opts.candidates;
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (uint32_t j : candidates) {
      if (j < num_pois) consider(j);
    }
  }

  std::sort(heap.begin(), heap.end(), better);
  return heap;
}

}  // namespace tcss
