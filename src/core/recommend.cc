#include "core/recommend.h"

#include <algorithm>

namespace tcss {

std::vector<Recommendation> TopKRecommendations(
    const Recommender& model, uint32_t user, uint32_t time_bin,
    size_t num_pois, const TopKOptions& opts, const SparseTensor* train) {
  std::vector<uint8_t> visited;
  if (opts.exclude_visited) {
    // The serving path reaches here with untrusted requests: a missing
    // train tensor cannot honor the exclusion, so the only safe answer is
    // an empty list (not a crash, not silently ignoring the flag).
    if (train == nullptr) return {};
    visited.assign(num_pois, 0);
    for (const auto& e : train->entries()) {
      if (e.i == user && e.j < num_pois) visited[e.j] = 1;
    }
  }
  const size_t k = std::min(opts.k, num_pois);

  std::vector<Recommendation> heap;  // min-heap of size <= k on score
  auto cmp = [](const Recommendation& a, const Recommendation& b) {
    return a.score > b.score;
  };
  auto consider = [&](uint32_t j) {
    if (!visited.empty() && visited[j]) return;
    const double s = model.Score(user, j, time_bin);
    if (heap.size() < k) {
      heap.push_back({j, s});
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (!heap.empty() && s > heap.front().score) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = {j, s};
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  };

  if (opts.candidates.empty()) {
    for (uint32_t j = 0; j < num_pois; ++j) consider(j);
  } else {
    for (uint32_t j : opts.candidates) {
      if (j < num_pois) consider(j);
    }
  }

  std::sort(heap.begin(), heap.end(),
            [](const Recommendation& a, const Recommendation& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.poi < b.poi;
            });
  return heap;
}

}  // namespace tcss
