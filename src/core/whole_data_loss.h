#ifndef TCSS_CORE_WHOLE_DATA_LOSS_H_
#define TCSS_CORE_WHOLE_DATA_LOSS_H_

#include <memory>

#include "common/rng.h"
#include "core/factor_model.h"
#include "core/tcss_config.h"
#include "tensor/csf_tensor.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Least-squares head L2 over the whole data (Eq 14), with three
/// interchangeable implementations so Table IV's cost comparison is a
/// like-for-like measurement and tests can assert value equivalence:
///
///  * RewrittenLoss      - Eq 15, O((I+J+K) r^2 + nnz r)
///  * NaiveLoss          - Eq 14 literally, O(I*J*K*r)
///  * NegativeSampling   - nnz uniformly sampled negatives per call
///
/// All three include the constant term  w+ * sum X^2  so that Rewritten
/// and Naive return *identical* values (Remark 1 of the paper).
class WholeDataLoss {
 public:
  virtual ~WholeDataLoss() = default;
  virtual const char* name() const = 0;

  /// Computes L2 and *accumulates* dL2/dparams into `grads`.
  virtual double ComputeWithGrads(const FactorModel& model,
                                  const SparseTensor& train,
                                  FactorGrads* grads) = 0;

  /// Loss value only (no gradient work).
  virtual double Compute(const FactorModel& model,
                         const SparseTensor& train) = 0;

  /// Precomputes tensor-derived structures (the CSF tree for
  /// RewrittenLoss) for the tensor the next Compute*/ComputeWithGrads
  /// calls will pass. Purely an optimization: unbound calls build the
  /// same structure per call and return the same bytes. The binding is
  /// keyed on the tensor's address — rebind if it moves or changes.
  virtual void BindTensor(const SparseTensor& train) { (void)train; }

  /// Opaque sampler state for checkpointing. Deterministic losses return
  /// 0; NegativeSamplingLoss returns its call counter, from which every
  /// random stream is re-derivable (seed + counter), so restoring it makes
  /// kill-and-resume bit-identical.
  virtual uint64_t sampler_state() const { return 0; }
  virtual void set_sampler_state(uint64_t state) { (void)state; }

  /// Factory for the mode selected in the config.
  static std::unique_ptr<WholeDataLoss> Create(const TcssConfig& config);
};

/// Eq 15.
class RewrittenLoss : public WholeDataLoss {
 public:
  RewrittenLoss(double w_pos, double w_neg) : w_pos_(w_pos), w_neg_(w_neg) {}
  const char* name() const override { return "rewritten"; }
  double ComputeWithGrads(const FactorModel& model, const SparseTensor& train,
                          FactorGrads* grads) override;
  double Compute(const FactorModel& model, const SparseTensor& train) override;
  void BindTensor(const SparseTensor& train) override;

 private:
  double Run(const FactorModel& model, const SparseTensor& train,
             FactorGrads* grads);
  double w_pos_, w_neg_;
  CsfTensor csf_;                        ///< bound CSF tree (may be empty)
  const SparseTensor* bound_ = nullptr;  ///< tensor csf_ was built from
};

/// Eq 14, literal triple loop (kept for Table IV and equivalence tests).
class NaiveLoss : public WholeDataLoss {
 public:
  NaiveLoss(double w_pos, double w_neg) : w_pos_(w_pos), w_neg_(w_neg) {}
  const char* name() const override { return "naive"; }
  double ComputeWithGrads(const FactorModel& model, const SparseTensor& train,
                          FactorGrads* grads) override;
  double Compute(const FactorModel& model, const SparseTensor& train) override;

 private:
  double Run(const FactorModel& model, const SparseTensor& train,
             FactorGrads* grads);
  double w_pos_, w_neg_;
};

/// He et al.-style sampling: every positive plus an equal number of
/// uniformly sampled unlabeled entries, re-drawn on every call.
///
/// Randomness is counter-based: call n draws from streams derived purely
/// from (seed, n, shard), never from mutable generator state. That makes
/// the draws (a) identical at any thread count — each shard owns its own
/// stream — and (b) checkpointable as a single integer (the call counter,
/// exposed via sampler_state()).
class NegativeSamplingLoss : public WholeDataLoss {
 public:
  NegativeSamplingLoss(double w_pos, double w_neg, uint64_t seed)
      : w_pos_(w_pos), w_neg_(w_neg), seed_(seed) {}
  const char* name() const override { return "negative-sampling"; }
  double ComputeWithGrads(const FactorModel& model, const SparseTensor& train,
                          FactorGrads* grads) override;
  double Compute(const FactorModel& model, const SparseTensor& train) override;

  uint64_t sampler_state() const override { return calls_; }
  void set_sampler_state(uint64_t state) override { calls_ = state; }

 private:
  double Run(const FactorModel& model, const SparseTensor& train,
             FactorGrads* grads);
  double w_pos_, w_neg_;
  uint64_t seed_;
  uint64_t calls_ = 0;  ///< number of completed sampling passes
};

/// Accumulates g = dL/dXhat(i,j,k) into factor gradients (shared helper).
void AccumulateEntryGrad(const FactorModel& model, uint32_t i, uint32_t j,
                         uint32_t k, double g, FactorGrads* grads);

}  // namespace tcss

#endif  // TCSS_CORE_WHOLE_DATA_LOSS_H_
