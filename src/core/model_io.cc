#include "core/model_io.h"

#include <cmath>

#include "common/crc32.h"
#include "common/strings.h"

namespace tcss {
namespace {

constexpr const char kMagicV1[] = "TCSSv1";
constexpr const char kMagicV2[] = "TCSSv2";

/// Dims + h + U1..U3, shared by both format versions.
std::string SerializeBody(const FactorModel& model) {
  std::string out;
  out.append(StrFormat("%zu %zu %zu %zu\n", model.u1.rows(),
                       model.u2.rows(), model.u3.rows(), model.rank()));
  AppendVectorText(model.h, &out);
  AppendMatrixText(model.u1, &out);
  AppendMatrixText(model.u2, &out);
  AppendMatrixText(model.u3, &out);
  return out;
}

Result<FactorModel> ParseBody(TextScanner* scanner) {
  size_t I, J, K, r;
  if (!scanner->NextSize(&I) || !scanner->NextSize(&J) ||
      !scanner->NextSize(&K) || !scanner->NextSize(&r)) {
    return Status::IOError("bad header");
  }
  if (r == 0 || I == 0 || J == 0 || K == 0 || r > kMaxModelRank ||
      I > kMaxModelDim || J > kMaxModelDim || K > kMaxModelDim) {
    return Status::IOError("implausible dimensions");
  }
  FactorModel model;
  TCSS_RETURN_IF_ERROR(ScanVector(scanner, r, &model.h));
  TCSS_RETURN_IF_ERROR(ScanMatrix(scanner, I, r, &model.u1));
  TCSS_RETURN_IF_ERROR(ScanMatrix(scanner, J, r, &model.u2));
  TCSS_RETURN_IF_ERROR(ScanMatrix(scanner, K, r, &model.u3));
  return model;
}

}  // namespace

void AppendMatrixText(const Matrix& m, std::string* out) {
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      // Hex float round-trips doubles exactly.
      out->append(StrFormat("%a%c", m(i, j), j + 1 == m.cols() ? '\n' : ' '));
    }
  }
}

void AppendVectorText(const std::vector<double>& v, std::string* out) {
  for (size_t t = 0; t < v.size(); ++t) {
    out->append(StrFormat("%a%c", v[t], t + 1 == v.size() ? '\n' : ' '));
  }
}

Status ScanMatrix(TextScanner* scanner, size_t rows, size_t cols, Matrix* m) {
  m->Resize(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      double v;
      if (!scanner->NextDouble(&v)) {
        return Status::IOError("truncated or malformed matrix data");
      }
      if (!std::isfinite(v)) {
        return Status::IOError("non-finite matrix entry");
      }
      (*m)(i, j) = v;
    }
  }
  return Status::OK();
}

Status ScanVector(TextScanner* scanner, size_t n, std::vector<double>* v) {
  v->resize(n);
  for (size_t t = 0; t < n; ++t) {
    if (!scanner->NextDouble(&(*v)[t])) {
      return Status::IOError("truncated or malformed vector data");
    }
    if (!std::isfinite((*v)[t])) {
      return Status::IOError("non-finite vector entry");
    }
  }
  return Status::OK();
}

std::string SerializeFactorModel(const FactorModel& model) {
  return std::string(kMagicV1) + "\n" + SerializeBody(model);
}

Result<FactorModel> ParseFactorModel(TextScanner* scanner) {
  if (!scanner->Expect(kMagicV1)) return Status::IOError("bad magic");
  return ParseBody(scanner);
}

Status SaveFactorModel(const FactorModel& model, const std::string& path,
                       Env* env) {
  if (env == nullptr) env = Env::Default();
  std::string contents = std::string(kMagicV2) + "\n" + SerializeBody(model);
  AppendCrcFooter(&contents);
  return AtomicWriteFile(env, path, contents);
}

Result<FactorModel> ParseFactorModelBytes(std::string_view text) {
  const bool v2 = text.rfind(kMagicV2, 0) == 0;
  std::string_view payload = text;
  if (v2) {
    TCSS_RETURN_IF_ERROR(ValidateCrcFooter(text, &payload));
  }
  TextScanner scanner(payload);
  if (!scanner.Expect(v2 ? kMagicV2 : kMagicV1)) {
    return Status::IOError("bad magic");
  }
  auto model = ParseBody(&scanner);
  if (!model.ok()) return model.status();
  if (!scanner.AtEnd()) {
    return Status::IOError("trailing garbage after factors");
  }
  return model;
}

Status ValidateModelShape(const FactorModel& model, size_t num_users,
                          size_t num_pois, size_t num_bins) {
  if (model.u2.rows() != num_pois) {
    return Status::InvalidArgument(
        StrFormat("model has %zu POIs, dataset has %zu", model.u2.rows(),
                  num_pois));
  }
  if (model.u3.rows() != num_bins) {
    return Status::InvalidArgument(
        StrFormat("model has %zu time bins, granularity has %zu",
                  model.u3.rows(), num_bins));
  }
  if (model.u1.rows() == 0 || model.u1.rows() > num_users) {
    return Status::InvalidArgument(
        StrFormat("model covers %zu users, dataset has %zu",
                  model.u1.rows(), num_users));
  }
  return Status::OK();
}

Result<FactorModel> LoadFactorModel(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  auto contents = env->ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  auto model = ParseFactorModelBytes(contents.value());
  if (!model.ok()) {
    return Status::IOError(model.status().message() + " in " + path);
  }
  return model;
}

}  // namespace tcss
