#include "core/model_io.h"

#include <cinttypes>
#include <cstdio>
#include <memory>

#include "common/strings.h"

namespace tcss {
namespace {

constexpr const char kMagic[] = "TCSSv1";

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteMatrix(std::FILE* f, const Matrix& m) {
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      // Hex float round-trips doubles exactly.
      if (std::fprintf(f, "%a%c", m(i, j),
                       j + 1 == m.cols() ? '\n' : ' ') < 0) {
        return Status::IOError("write failed");
      }
    }
  }
  return Status::OK();
}

Status ReadMatrix(std::FILE* f, size_t rows, size_t cols, Matrix* m) {
  m->Resize(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      double v;
      if (std::fscanf(f, "%la", &v) != 1) {
        return Status::IOError("truncated matrix data");
      }
      (*m)(i, j) = v;
    }
  }
  return Status::OK();
}

}  // namespace

Status SaveFactorModel(const FactorModel& model, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::IOError("cannot open " + path);
  if (std::fprintf(f.get(), "%s\n%zu %zu %zu %zu\n", kMagic,
                   model.u1.rows(), model.u2.rows(), model.u3.rows(),
                   model.rank()) < 0) {
    return Status::IOError("write failed");
  }
  for (size_t t = 0; t < model.h.size(); ++t) {
    if (std::fprintf(f.get(), "%a%c", model.h[t],
                     t + 1 == model.h.size() ? '\n' : ' ') < 0) {
      return Status::IOError("write failed");
    }
  }
  TCSS_RETURN_IF_ERROR(WriteMatrix(f.get(), model.u1));
  TCSS_RETURN_IF_ERROR(WriteMatrix(f.get(), model.u2));
  TCSS_RETURN_IF_ERROR(WriteMatrix(f.get(), model.u3));
  return Status::OK();
}

Result<FactorModel> LoadFactorModel(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) return Status::IOError("cannot open " + path);
  char magic[16] = {0};
  if (std::fscanf(f.get(), "%15s", magic) != 1 ||
      std::string(magic) != kMagic) {
    return Status::IOError("bad magic in " + path);
  }
  size_t I, J, K, r;
  if (std::fscanf(f.get(), "%zu %zu %zu %zu", &I, &J, &K, &r) != 4) {
    return Status::IOError("bad header in " + path);
  }
  if (r == 0 || I == 0 || J == 0 || K == 0 || r > 4096) {
    return Status::IOError("implausible dimensions in " + path);
  }
  FactorModel model;
  model.h.resize(r);
  for (size_t t = 0; t < r; ++t) {
    if (std::fscanf(f.get(), "%la", &model.h[t]) != 1) {
      return Status::IOError("truncated h vector");
    }
  }
  TCSS_RETURN_IF_ERROR(ReadMatrix(f.get(), I, r, &model.u1));
  TCSS_RETURN_IF_ERROR(ReadMatrix(f.get(), J, r, &model.u2));
  TCSS_RETURN_IF_ERROR(ReadMatrix(f.get(), K, r, &model.u3));
  return model;
}

}  // namespace tcss
