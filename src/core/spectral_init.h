#ifndef TCSS_CORE_SPECTRAL_INIT_H_
#define TCSS_CORE_SPECTRAL_INIT_H_

#include "common/status.h"
#include "core/factor_model.h"
#include "core/tcss_config.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Initializes a FactorModel for the given tensor and rank using one of
/// the strategies from the paper's Section IV-A / ablation:
///
///  * kSpectral (Eq 4): for each mode n, the top-r eigenvectors of the
///    off-diagonal Gram matrix of the mode-n unfolding, computed by
///    subspace iteration over the implicit Gram operator (O(nnz) per
///    matvec, never materialized). Columns are sign-aligned (positive
///    mean) and lightly jittered to break the eigenbasis symmetry.
///  * kRandom: i.i.d. N(0, 0.1^2).
///  * kOneHot: deterministic cyclic one-hot pattern U[i, i mod r] = 0.3
///    (the degenerate "index embedding" start; expected to trail the
///    other schemes, as in Table II).
///
/// h is initialized to all-ones (making the model start as plain CP).
Result<FactorModel> InitializeFactors(const SparseTensor& train,
                                      const TcssConfig& config);

}  // namespace tcss

#endif  // TCSS_CORE_SPECTRAL_INIT_H_
