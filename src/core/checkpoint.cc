#include "core/checkpoint.h"

#include <algorithm>
#include <cmath>

#include "common/crc32.h"
#include "common/strings.h"
#include "common/text_io.h"
#include "core/model_io.h"

namespace tcss {
namespace {

constexpr const char kMagic[] = "TCKPv1";
constexpr const char kFilePrefix[] = "ckpt-";
constexpr const char kFileSuffix[] = ".tckp";

// Appends one Adam-moment section: h vector then the three matrices, all
// shapes implied by the model header.
void AppendMoments(const char* label, const FactorGrads& g,
                   std::string* out) {
  out->append(label);
  out->push_back('\n');
  AppendVectorText(g.h, out);
  AppendMatrixText(g.u1, out);
  AppendMatrixText(g.u2, out);
  AppendMatrixText(g.u3, out);
}

Status ScanMoments(TextScanner* scanner, const char* label,
                   const FactorModel& shape, FactorGrads* g) {
  if (!scanner->Expect(label)) {
    return Status::IOError(std::string("missing section ") + label);
  }
  TCSS_RETURN_IF_ERROR(ScanVector(scanner, shape.h.size(), &g->h));
  TCSS_RETURN_IF_ERROR(
      ScanMatrix(scanner, shape.u1.rows(), shape.u1.cols(), &g->u1));
  TCSS_RETURN_IF_ERROR(
      ScanMatrix(scanner, shape.u2.rows(), shape.u2.cols(), &g->u2));
  TCSS_RETURN_IF_ERROR(
      ScanMatrix(scanner, shape.u3.rows(), shape.u3.cols(), &g->u3));
  return Status::OK();
}

// Leading decimal run of `*s`, consumed; false when there is none or the
// value is absurd.
bool TakeInt(std::string_view* s, int* out) {
  int value = 0;
  size_t used = 0;
  while (used < s->size()) {
    const char c = (*s)[used];
    if (c < '0' || c > '9') break;
    if (value > 100'000'000) return false;
    value = value * 10 + (c - '0');
    ++used;
  }
  if (used == 0) return false;
  s->remove_prefix(used);
  *out = value;
  return true;
}

// "ckpt-000123.tckp"       -> epoch 123 of shard 0-of-1 (legacy name)
// "ckpt-000123-s1of4.tckp" -> epoch 123 of shard 1-of-4
// Returns the epoch when the file belongs to shard `shard` of
// `num_shards`; -1 for other shards and non-checkpoint names.
int EpochFromName(const std::string& name, int shard, int num_shards) {
  const std::string_view prefix = kFilePrefix;
  const std::string_view suffix = kFileSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return -1;
  if (name.compare(0, prefix.size(), prefix) != 0) return -1;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return -1;
  }
  std::string_view body(name.data() + prefix.size(),
                        name.size() - prefix.size() - suffix.size());
  int epoch = 0;
  if (!TakeInt(&body, &epoch)) return -1;
  int file_shard = 0, file_num_shards = 1;
  if (!body.empty()) {
    if (body.size() < 2 || body[0] != '-' || body[1] != 's') return -1;
    body.remove_prefix(2);
    if (!TakeInt(&body, &file_shard)) return -1;
    if (body.size() < 2 || body[0] != 'o' || body[1] != 'f') return -1;
    body.remove_prefix(2);
    if (!TakeInt(&body, &file_num_shards)) return -1;
    if (!body.empty()) return -1;
  }
  if (file_shard != shard || file_num_shards != num_shards) return -1;
  return epoch;
}

}  // namespace

std::string SerializeCheckpoint(const TrainerCheckpoint& ckpt) {
  std::string out;
  out.append(StrFormat("%s\n", kMagic));
  out.append(StrFormat("epoch %d\n", ckpt.epoch));
  out.append(StrFormat("adam_t %lld\n",
                       static_cast<long long>(ckpt.adam_t)));
  out.append(StrFormat("rotation %zu\n", ckpt.hausdorff_rotation));
  out.append(StrFormat("lr_scale %a\n", ckpt.lr_scale));
  out.append(StrFormat("sampler %llu\n",
                       static_cast<unsigned long long>(ckpt.sampler_state)));
  out.append(SerializeFactorModel(ckpt.model));
  AppendMoments("adam_m", ckpt.adam_m, &out);
  AppendMoments("adam_v", ckpt.adam_v, &out);
  AppendCrcFooter(&out);
  return out;
}

Result<TrainerCheckpoint> ParseCheckpoint(std::string_view text) {
  // Integrity first: any truncation or corruption anywhere in the file —
  // including mid-token — fails the CRC before parsing starts.
  std::string_view payload;
  TCSS_RETURN_IF_ERROR(ValidateCrcFooter(text, &payload));

  TextScanner scanner(payload);
  if (!scanner.Expect(kMagic)) return Status::IOError("bad checkpoint magic");
  TrainerCheckpoint ckpt;
  int64_t epoch64 = 0;
  if (!scanner.Expect("epoch") || !scanner.NextInt64(&epoch64) ||
      epoch64 < 0 || epoch64 > 100'000'000) {
    return Status::IOError("bad epoch field");
  }
  ckpt.epoch = static_cast<int>(epoch64);
  if (!scanner.Expect("adam_t") || !scanner.NextInt64(&ckpt.adam_t) ||
      ckpt.adam_t < 0) {
    return Status::IOError("bad adam_t field");
  }
  if (!scanner.Expect("rotation") ||
      !scanner.NextSize(&ckpt.hausdorff_rotation)) {
    return Status::IOError("bad rotation field");
  }
  if (!scanner.Expect("lr_scale") || !scanner.NextDouble(&ckpt.lr_scale) ||
      !std::isfinite(ckpt.lr_scale) || ckpt.lr_scale <= 0.0) {
    return Status::IOError("bad lr_scale field");
  }
  // Optional field (added after the format shipped): files written before
  // the negative-sampling state was checkpointed simply lack it.
  if (scanner.PeekToken() == "sampler") {
    scanner.NextToken();
    size_t sampler = 0;
    if (!scanner.NextSize(&sampler)) {
      return Status::IOError("bad sampler field");
    }
    ckpt.sampler_state = sampler;
  }
  auto model = ParseFactorModel(&scanner);
  if (!model.ok()) return model.status();
  ckpt.model = model.MoveValue();
  TCSS_RETURN_IF_ERROR(
      ScanMoments(&scanner, "adam_m", ckpt.model, &ckpt.adam_m));
  TCSS_RETURN_IF_ERROR(
      ScanMoments(&scanner, "adam_v", ckpt.model, &ckpt.adam_v));
  if (!scanner.AtEnd()) {
    return Status::IOError("trailing garbage in checkpoint");
  }
  return ckpt;
}

CheckpointManager::CheckpointManager(CheckpointOptions options)
    : options_(std::move(options)) {
  if (options_.env == nullptr) options_.env = Env::Default();
  if (options_.every < 1) options_.every = 1;
  if (options_.retain < 1) options_.retain = 1;
  if (options_.num_shards < 1) options_.num_shards = 1;
  if (options_.shard < 0 || options_.shard >= options_.num_shards) {
    options_.shard = 0;
  }
}

Status CheckpointManager::Init() {
  if (options_.dir.empty()) {
    return Status::InvalidArgument("checkpoint dir is empty");
  }
  return options_.env->CreateDirs(options_.dir);
}

std::string CheckpointManager::PathForEpoch(int epoch) const {
  // Legacy names when unsharded so old directories and tools keep working.
  const std::string tag =
      options_.num_shards > 1
          ? StrFormat("-s%dof%d", options_.shard, options_.num_shards)
          : std::string();
  return options_.dir + "/" +
         StrFormat("%s%06d%s%s", kFilePrefix, epoch, tag.c_str(),
                   kFileSuffix);
}

std::vector<int> CheckpointManager::ListEpochs() const {
  std::vector<int> epochs;
  auto names = options_.env->ListDir(options_.dir);
  if (!names.ok()) return epochs;
  for (const std::string& name : names.value()) {
    const int e = EpochFromName(name, options_.shard, options_.num_shards);
    if (e >= 0) epochs.push_back(e);
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Status CheckpointManager::Save(const TrainerCheckpoint& ckpt) {
  TCSS_RETURN_IF_ERROR(AtomicWriteFile(options_.env, PathForEpoch(ckpt.epoch),
                                       SerializeCheckpoint(ckpt)));
  // Retention. Best-effort: a file that refuses to die must not fail the
  // save that just succeeded.
  std::vector<int> epochs = ListEpochs();
  if (epochs.size() > static_cast<size_t>(options_.retain)) {
    for (size_t i = 0; i + options_.retain < epochs.size(); ++i) {
      (void)options_.env->DeleteFile(PathForEpoch(epochs[i]));
    }
  }
  return Status::OK();
}

Result<TrainerCheckpoint> CheckpointManager::Load(
    const std::string& path) const {
  auto contents = options_.env->ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  auto ckpt = ParseCheckpoint(contents.value());
  if (!ckpt.ok()) {
    return Status::IOError(ckpt.status().message() + " in " + path);
  }
  return ckpt;
}

Result<TrainerCheckpoint> CheckpointManager::LoadLatest() const {
  std::vector<int> epochs = ListEpochs();
  if (epochs.empty()) {
    return Status::NotFound("no checkpoint in " + options_.dir);
  }
  // Newest first; skip over torn or corrupt files so one bad snapshot
  // costs `every` epochs of progress, not the whole run.
  std::string newest_error;
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    auto ckpt = Load(PathForEpoch(*it));
    if (ckpt.ok()) return ckpt;
    if (newest_error.empty()) newest_error = ckpt.status().message();
  }
  // Files exist but every one is corrupt: IOError, not NotFound, so a
  // resume surfaces the damage instead of silently cold-starting.
  return Status::IOError(StrFormat(
      "all %zu checkpoint file(s) in %s are corrupt (newest: %s)",
      epochs.size(), options_.dir.c_str(), newest_error.c_str()));
}

}  // namespace tcss
