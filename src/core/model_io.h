#ifndef TCSS_CORE_MODEL_IO_H_
#define TCSS_CORE_MODEL_IO_H_

#include <string>
#include <string_view>

#include "common/env.h"
#include "common/status.h"
#include "common/text_io.h"
#include "core/factor_model.h"

namespace tcss {

/// Serializes a trained FactorModel to a file. The format is a simple
/// versioned text format, portable across platforms:
///   magic line ("TCSSv2"), dims line (I J K r), then h and the three
///   factor matrices row-major with full double precision (hex floats),
///   terminated by a "CRC32 <hex>" integrity footer.
/// The write is crash-safe: bytes go to "<path>.tmp" which is renamed onto
/// `path` only after a successful close, so a crash mid-save leaves any
/// previous file at `path` intact. `env` defaults to Env::Default().
Status SaveFactorModel(const FactorModel& model, const std::string& path,
                       Env* env = nullptr);

/// Loads a FactorModel written by SaveFactorModel. For "TCSSv2" files the
/// CRC footer is mandatory, so any truncation or bit corruption is
/// detected; legacy "TCSSv1" files (no footer) still load with structural
/// validation only. Both paths validate the header, bound the dimensions
/// (so a corrupt header cannot trigger a huge allocation), and reject
/// non-finite entries and trailing garbage.
Result<FactorModel> LoadFactorModel(const std::string& path,
                                    Env* env = nullptr);

/// Same validation as LoadFactorModel, but over bytes already in memory.
/// The serving hot-reload path reads the file exactly once and validates
/// the very bytes it will swap in, so a file mutated between a "validate"
/// read and a "load" read can never slip through (no TOCTOU window).
Result<FactorModel> ParseFactorModelBytes(std::string_view text);

/// Shape compatibility of a loaded model with a serving dataset: U2/U3
/// must match the POI count and time-bin count exactly; U1 may cover a
/// *prefix* of the users (users registered after the model was trained are
/// served by fold-in instead).
Status ValidateModelShape(const FactorModel& model, size_t num_users,
                          size_t num_pois, size_t num_bins);

// --- Serialization building blocks (shared with the checkpoint format) ---

/// Largest per-mode dimension / rank accepted by the loaders. Generous for
/// any realistic LBSN, small enough that a corrupt header cannot OOM.
inline constexpr size_t kMaxModelDim = 50'000'000;
inline constexpr size_t kMaxModelRank = 4096;

/// Appends `m` row-major as hex-float tokens, one row per line.
void AppendMatrixText(const Matrix& m, std::string* out);

/// Appends `v` as one line of hex-float tokens.
void AppendVectorText(const std::vector<double>& v, std::string* out);

/// Reads rows*cols doubles into `m`; fails on malformed tokens or
/// non-finite values.
Status ScanMatrix(TextScanner* scanner, size_t rows, size_t cols, Matrix* m);

/// Reads n doubles into `v`; same validation as ScanMatrix.
Status ScanVector(TextScanner* scanner, size_t n, std::vector<double>* v);

/// In-memory TCSSv1-section writer/parser, embedded by the checkpoint
/// format (whose own CRC footer covers the section, so none is nested).
std::string SerializeFactorModel(const FactorModel& model);
Result<FactorModel> ParseFactorModel(TextScanner* scanner);

}  // namespace tcss

#endif  // TCSS_CORE_MODEL_IO_H_
