#ifndef TCSS_CORE_MODEL_IO_H_
#define TCSS_CORE_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "core/factor_model.h"

namespace tcss {

/// Serializes a trained FactorModel to a file. The format is a simple
/// versioned text format ("TCSSv1"), portable across platforms:
///   header line, dims line (I J K r), then h and the three factor
///   matrices row-major with full double precision (hex floats).
Status SaveFactorModel(const FactorModel& model, const std::string& path);

/// Loads a FactorModel written by SaveFactorModel. Validates the header,
/// dimensions and element counts.
Result<FactorModel> LoadFactorModel(const std::string& path);

}  // namespace tcss

#endif  // TCSS_CORE_MODEL_IO_H_
