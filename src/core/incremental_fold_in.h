#ifndef TCSS_CORE_INCREMENTAL_FOLD_IN_H_
#define TCSS_CORE_INCREMENTAL_FOLD_IN_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/factor_model.h"
#include "core/fold_in.h"
#include "data/tensor_builder.h"
#include "linalg/matrix.h"

namespace tcss {

/// Incremental, generation-consistent version of the ridge fold-in tier
/// (DESIGN.md §14). FoldInUser re-derives the whole normal system on every
/// call: the base Gram term (h hᵀ) ⊙ (U2ᵀU2) ⊙ (U3ᵀU3) costs
/// O(r² (J + K)) and every observation adds a rank-1 update. Under a
/// streaming workload the observations arrive one at a time, so this class
/// keeps the decomposition live instead:
///
///   * the base term is computed ONCE per bound model generation and
///     shared by every user;
///   * per user, the observation sums Σ dw·φφᵀ and Σ w₊·φ are maintained
///     incrementally — an appended check-in is one O(r²) rank-1 update,
///     never a re-scan of the user's history;
///   * a solve (O(r³) Cholesky over base + user sums) happens only when
///     the user is dirty (new observations since the last solve).
///
/// Generation consistency: every piece of derived state (base term,
/// per-user sums, cached embeddings) is keyed by the model generation
/// passed to BindModel. Binding a different generation invalidates all of
/// it; the raw observation lists persist (they are data, not derived
/// state) and are replayed lazily, in original insertion order, the next
/// time a user's embedding is requested. An embedding solved against
/// generation N can therefore never be served after a hot reload to N+1.
///
/// Differential contract (enforced by tests/stream_test.cc): after any
/// interleaving of appends and invalidations, Embedding(u) equals
/// FoldInUser(model, cells-of-u-in-insertion-order) to <= 1e-12 — the only
/// arithmetic difference is the association of the base-plus-observations
/// sum.
///
/// Threading: single-writer, like the RecommendService that owns it. The
/// serving dispatcher is the only thread that may call any method.
class IncrementalFoldIn {
 public:
  explicit IncrementalFoldIn(const FoldInOptions& opts = FoldInOptions());

  /// Binds the fold-in state to `model` at `generation` (the
  /// ModelWatcher's counter). Same generation: no-op. Different
  /// generation: drops the base Gram term, every per-user sum and every
  /// cached embedding; observation lists are kept for lazy replay.
  /// A null model unbinds (Embedding returns null until rebound).
  void BindModel(std::shared_ptr<const FactorModel> model,
                 uint64_t generation);

  uint64_t generation() const { return generation_; }
  bool bound() const { return model_ != nullptr; }

  /// Appends one observed (poi, time) cell for `user`. Duplicate cells
  /// are ignored (the check-in tensor is binary, exactly like the batch
  /// path's distinct-cell observation lists). Returns true when the cell
  /// was new. No model needs to be bound; the cell is folded into the
  /// user's sums on the next Embedding call.
  bool Append(uint32_t user, uint32_t poi, uint32_t time_bin);

  /// Seeds a user's observation list (e.g. from the serving train tensor)
  /// without marking anything solved. Order is preserved — it is the
  /// replay order of the differential contract.
  void Seed(uint32_t user, const std::vector<TensorCell>& cells);

  /// Drops the user's observations, sums and cached embedding entirely
  /// (slice retirement re-seeds afterwards with the surviving cells).
  void Invalidate(uint32_t user);

  /// Slice retirement: removes every observation at time bin `bin` from
  /// every user. Touched users keep their surviving cells in insertion
  /// order but lose all derived state (sums are rebuilt by replay on the
  /// next Embedding call — removal cannot be expressed as a rank-1
  /// update because dw·φφᵀ of the dropped cells was folded against a
  /// possibly different generation). Returns the number of cells dropped.
  size_t RetireBin(uint32_t bin);

  bool HasObservations(uint32_t user) const;

  /// The user's observed cells in insertion order (the differential
  /// oracle's input). Empty vector for unknown users.
  std::vector<TensorCell> Observations(uint32_t user) const;

  /// The embedding solved against the bound model. Re-solves only when
  /// the user has unapplied observations or the generation changed since
  /// their last solve; otherwise returns the cached vector. Null when no
  /// model is bound, the user has no observations, or the solve fails
  /// (singular system — caller degrades a tier, exactly like FoldInUser).
  const std::vector<double>* Embedding(uint32_t user);

  struct Stats {
    uint64_t solves = 0;            ///< Cholesky solves performed
    uint64_t rank_one_updates = 0;  ///< observation folds into user sums
    uint64_t cache_hits = 0;        ///< Embedding served without a solve
    uint64_t generation_binds = 0;  ///< BindModel calls that invalidated
    uint64_t invalidations = 0;     ///< explicit Invalidate calls
  };
  const Stats& stats() const { return stats_; }

 private:
  struct UserState {
    /// Observation cells in insertion order; (j,k) dedup set beside it.
    std::vector<TensorCell> cells;
    std::unordered_set<uint64_t> seen;
    /// Derived, generation-keyed state: sums over cells[0..applied).
    uint64_t sums_generation = 0;
    size_t applied = 0;
    Matrix obs_lhs;                ///< Σ dw · φφᵀ  (r x r)
    std::vector<double> obs_rhs;   ///< Σ w₊ · φ
    /// Cached solve and the (generation, applied) it was solved at.
    bool solved = false;
    std::vector<double> embedding;
    size_t solved_at = 0;
  };

  /// Folds cells[applied..end) of `s` into its sums against the bound
  /// model. Returns false when a cell is outside the model's ranges.
  bool CatchUp(UserState* s);

  const FoldInOptions opts_;
  std::shared_ptr<const FactorModel> model_;
  uint64_t generation_ = 0;
  bool base_valid_ = false;
  Matrix base_lhs_;  ///< w₋ · (h hᵀ) ⊙ (U2ᵀU2) ⊙ (U3ᵀU3)
  std::unordered_map<uint32_t, UserState> users_;
  Stats stats_;
};

}  // namespace tcss

#endif  // TCSS_CORE_INCREMENTAL_FOLD_IN_H_
