#include "core/hausdorff_loss.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/whole_data_loss.h"
#include "geo/haversine.h"
#include "geo/location_entropy.h"

namespace tcss {
namespace {

// Shorthands for the shared clamp constants declared in the header.
constexpr double kCapMargin = kHausdorffCapMargin;
constexpr double kFloorF = kHausdorffSoftMinFloor;

}  // namespace

SocialHausdorffLoss::SocialHausdorffLoss(const Dataset& data,
                                         const SparseTensor& train,
                                         const TcssConfig& config)
    : data_(&data), train_(&train), config_(config) {
  const size_t I = train.dim_i();
  const size_t J = train.dim_j();
  TCSS_CHECK(data.num_users() == I && data.num_pois() == J)
      << "dataset / tensor shape mismatch";

  // Entropy weights e_j = exp(-E_j), from the *train* tensor.
  if (config.use_location_entropy) {
    e_ = EntropyWeights(ComputeLocationEntropy(train));
  } else {
    e_.assign(J, 1.0);
  }

  d_max_ = MaxPairwiseDistanceKm(data.PoiLocations());
  if (d_max_ <= 0.0) d_max_ = 1.0;  // degenerate single-point geometry

  // Per-user distinct POIs from the train tensor.
  user_pois_.assign(I, {});
  for (const auto& entry : train.entries()) {
    user_pois_[entry.i].push_back(entry.j);
  }
  for (auto& v : user_pois_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  Rng rng(config.seed ^ 0x4a05d0u);
  // N(v_i): union of friends' POIs (or own POIs in the Self ablation),
  // subsampled to max_friend_pois.
  friend_pois_.assign(I, {});
  for (uint32_t i = 0; i < I; ++i) {
    std::vector<uint32_t> n;
    if (config_.hausdorff == HausdorffMode::kSelf) {
      n = user_pois_[i];
    } else {
      for (const uint32_t* f = data.social().NeighborsBegin(i);
           f != data.social().NeighborsEnd(i); ++f) {
        n.insert(n.end(), user_pois_[*f].begin(), user_pois_[*f].end());
      }
      std::sort(n.begin(), n.end());
      n.erase(std::unique(n.begin(), n.end()), n.end());
    }
    if (config_.max_friend_pois > 0 && n.size() > config_.max_friend_pois) {
      rng.Shuffle(&n);
      n.resize(config_.max_friend_pois);
      std::sort(n.begin(), n.end());
    }
    friend_pois_[i] = std::move(n);
  }

  // S(v_i): the candidate pool.
  pool_.assign(I, {});
  for (uint32_t i = 0; i < I; ++i) {
    if (config_.hausdorff_pool == 0 || config_.hausdorff_pool >= J) {
      pool_[i].resize(J);
      for (uint32_t j = 0; j < J; ++j) pool_[i][j] = j;
    } else {
      std::vector<uint32_t> s = user_pois_[i];
      s.insert(s.end(), friend_pois_[i].begin(), friend_pois_[i].end());
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
      // Fill the remainder with a uniform sample of other POIs so the loss
      // can also *suppress* far-away false positives.
      size_t guard = 0;
      while (s.size() < config_.hausdorff_pool && guard < 20 * J) {
        ++guard;
        const uint32_t j = static_cast<uint32_t>(rng.UniformInt(J));
        if (!std::binary_search(s.begin(), s.end(), j)) {
          s.insert(std::lower_bound(s.begin(), s.end(), j), j);
        }
      }
      if (s.size() > config_.hausdorff_pool) {
        rng.Shuffle(&s);
        s.resize(config_.hausdorff_pool);
        std::sort(s.begin(), s.end());
      }
      pool_[i] = std::move(s);
    }
    if (!pool_[i].empty() && !friend_pois_[i].empty()) {
      eligible_.push_back(i);
    }
  }

  // Distance cache (see header). Budget: ~256 MB of floats.
  size_t cache_floats = 0;
  for (uint32_t i : eligible_) {
    cache_floats += pool_[i].size() * (friend_pois_[i].size() + 1);
  }
  use_cache_ = cache_floats * sizeof(float) <= (256u << 20);
  if (use_cache_) {
    dist_cache_.resize(I);
    dmin_cache_.resize(I);
    for (uint32_t i : eligible_) {
      const auto& s_set = pool_[i];
      const auto& n_set = friend_pois_[i];
      auto& dist = dist_cache_[i];
      auto& dmin = dmin_cache_[i];
      dist.resize(s_set.size() * n_set.size());
      dmin.resize(s_set.size());
      for (size_t a = 0; a < s_set.size(); ++a) {
        const GeoPoint& pj = data.poi(s_set[a]).location;
        double best = d_max_;
        for (size_t b = 0; b < n_set.size(); ++b) {
          const double d = HaversineKm(pj, data.poi(n_set[b]).location);
          dist[a * n_set.size() + b] = static_cast<float>(d);
          best = std::min(best, d);
        }
        dmin[a] = static_cast<float>(best);
      }
    }
  }
}

double SocialHausdorffLoss::ComputeForUser(const FactorModel& model,
                                           uint32_t user, FactorGrads* grads,
                                           double grad_scale) const {
  const auto& s_set = pool_[user];
  const auto& n_set = friend_pois_[user];
  if (s_set.empty() || n_set.empty()) return 0.0;
  const size_t ns = s_set.size();
  const size_t nn = n_set.size();
  const size_t K = train_->dim_k();
  const double alpha = config_.alpha;

  // --- probabilities p_j and their per-bin partials ---------------------
  std::vector<double> p(ns);
  std::vector<double> y(ns * K);        // clamped predictions
  std::vector<double> dp_dy(ns * K);    // dp_j / dy_{jk}
  std::vector<uint8_t> gate(ns * K);    // 1 if clamp is in the interior
  for (size_t a = 0; a < ns; ++a) {
    const uint32_t j = s_set[a];
    double prod = 1.0;
    for (size_t k = 0; k < K; ++k) {
      const double raw =
          model.Predict(user, j, static_cast<uint32_t>(k));
      double yc = raw;
      uint8_t g = 1;
      if (raw <= 0.0) {
        yc = 0.0;
        g = 0;
      } else if (raw >= 1.0 - kCapMargin) {
        yc = 1.0 - kCapMargin;
        g = 0;
      }
      y[a * K + k] = yc;
      gate[a * K + k] = g;
      prod *= (1.0 - yc);
    }
    p[a] = 1.0 - prod;
    // dp/dy_k = prod_{k' != k} (1 - y_{k'}); via prefix/suffix products.
    // prefix[k] = prod_{k'<k} (1-y), suffix[k] = prod_{k'>k} (1-y).
    double prefix = 1.0;
    std::vector<double> suffix(K + 1, 1.0);
    for (size_t k = K; k-- > 0;) {
      suffix[k] = suffix[k + 1] * (1.0 - y[a * K + k]);
    }
    for (size_t k = 0; k < K; ++k) {
      dp_dy[a * K + k] = prefix * suffix[k + 1];
      prefix *= (1.0 - y[a * K + k]);
    }
  }

  // --- geometry: d(j, j') and dmin_j -------------------------------------
  const float* dist = nullptr;
  const float* dmin = nullptr;
  std::vector<float> dist_f, dmin_f;
  if (use_cache_) {
    dist = dist_cache_[user].data();
    dmin = dmin_cache_[user].data();
  } else {
    dist_f.resize(ns * nn);
    dmin_f.resize(ns);
    for (size_t a = 0; a < ns; ++a) {
      const GeoPoint& pj = data_->poi(s_set[a]).location;
      double best = d_max_;
      for (size_t b = 0; b < nn; ++b) {
        const double d = HaversineKm(pj, data_->poi(n_set[b]).location);
        dist_f[a * nn + b] = static_cast<float>(d);
        best = std::min(best, d);
      }
      dmin_f[a] = static_cast<float>(best);
    }
    dist = dist_f.data();
    dmin = dmin_f.data();
  }

  // --- term 1 -------------------------------------------------------------
  double a_sum = 0.0;
  double w_sum = 0.0;
  for (size_t a = 0; a < ns; ++a) {
    a_sum += p[a];
    w_sum += p[a] * e_[s_set[a]] * dmin[a];
  }
  const double denom = a_sum + config_.epsilon;
  const double term1 = w_sum / denom;

  // --- term 2 -------------------------------------------------------------
  // f_{a,b} = p_a d(a,b) + (1 - p_a) d_max, clamped from below.
  // M_b = ((1/ns) sum_a f^alpha)^(1/alpha);  term2 = (1/nn) sum_b e_b M_b.
  double term2 = 0.0;
  std::vector<double> dl_dp(ns, 0.0);  // d(d_WH)/dp_a accumulated
  const double inv_ns = 1.0 / static_cast<double>(ns);
  const double inv_nn = 1.0 / static_cast<double>(nn);
  const bool harmonic = (alpha == -1.0);  // paper default; avoids pow()
  for (size_t b = 0; b < nn; ++b) {
    double s_alpha = 0.0;
    for (size_t a = 0; a < ns; ++a) {
      const double f = std::max(
          p[a] * dist[a * nn + b] + (1.0 - p[a]) * d_max_, kFloorF);
      s_alpha += harmonic ? 1.0 / f : std::pow(f, alpha);
    }
    s_alpha *= inv_ns;
    const double m =
        harmonic ? 1.0 / s_alpha : std::pow(s_alpha, 1.0 / alpha);
    const double eb = e_[n_set[b]];
    term2 += inv_nn * eb * m;
    if (grads != nullptr) {
      // dM/df_a = S^(1/alpha - 1) * f^(alpha-1) / ns
      const double s_pow = harmonic
                               ? 1.0 / (s_alpha * s_alpha)
                               : std::pow(s_alpha, 1.0 / alpha - 1.0);
      for (size_t a = 0; a < ns; ++a) {
        const double f = std::max(
            p[a] * dist[a * nn + b] + (1.0 - p[a]) * d_max_, kFloorF);
        if (f <= kFloorF) continue;  // clamped: zero subgradient
        const double f_pow =
            harmonic ? 1.0 / (f * f) : std::pow(f, alpha - 1.0);
        const double dm_df = s_pow * f_pow * inv_ns;
        const double df_dp = dist[a * nn + b] - d_max_;
        dl_dp[a] += inv_nn * eb * dm_df * df_dp;
      }
    }
  }

  if (grads != nullptr) {
    // term1 gradient: dT1/dp_a = (e_a dmin_a - T1) / denom.
    for (size_t a = 0; a < ns; ++a) {
      dl_dp[a] += (e_[s_set[a]] * dmin[a] - term1) / denom;
    }
    // Chain through p -> y -> factors.
    for (size_t a = 0; a < ns; ++a) {
      if (dl_dp[a] == 0.0) continue;
      const uint32_t j = s_set[a];
      for (size_t k = 0; k < K; ++k) {
        if (!gate[a * K + k]) continue;
        const double g = grad_scale * dl_dp[a] * dp_dy[a * K + k];
        if (g == 0.0) continue;
        AccumulateEntryGrad(model, user, j, static_cast<uint32_t>(k), g,
                            grads);
      }
    }
  }
  return term1 + term2;
}

double SocialHausdorffLoss::ComputeWithGrads(const FactorModel& model,
                                             double lambda,
                                             FactorGrads* grads) {
  if (eligible_.empty() || lambda == 0.0) return 0.0;
  size_t batch = config_.hausdorff_users_per_epoch;
  if (batch == 0 || batch > eligible_.size()) batch = eligible_.size();
  const double extrapolate =
      static_cast<double>(eligible_.size()) / static_cast<double>(batch);
  const double grad_scale = lambda * extrapolate;
  // Per-user work is independent (ComputeForUser only reads caches), so
  // shard the batch with per-shard loss/grad buffers reduced in ascending
  // shard order; the decomposition depends only on the batch size, so the
  // result is bit-identical at any thread count.
  const size_t grain = std::max<size_t>(1, (batch + 15) / 16);
  const size_t shards = ParallelForShards(batch, grain);
  double sum = 0.0;
  if (shards == 1) {
    for (size_t t = 0; t < batch; ++t) {
      const uint32_t user = eligible_[(rotation_ + t) % eligible_.size()];
      sum += ComputeForUser(model, user, grads, grad_scale);
    }
  } else {
    std::vector<double> shard_sum(shards, 0.0);
    std::vector<FactorGrads> shard_grads;
    if (grads != nullptr) {
      shard_grads.reserve(shards);
      for (size_t s = 0; s < shards; ++s) shard_grads.emplace_back(model);
    }
    ParallelFor(batch, grain, [&](size_t begin, size_t end, size_t s) {
      FactorGrads* g = grads != nullptr ? &shard_grads[s] : nullptr;
      double local = 0.0;
      for (size_t t = begin; t < end; ++t) {
        const uint32_t user = eligible_[(rotation_ + t) % eligible_.size()];
        local += ComputeForUser(model, user, g, grad_scale);
      }
      shard_sum[s] = local;
    });
    for (size_t s = 0; s < shards; ++s) sum += shard_sum[s];
    if (grads != nullptr) {
      for (size_t s = 0; s < shards; ++s) grads->Add(shard_grads[s]);
    }
  }
  rotation_ = (rotation_ + batch) % eligible_.size();
  return sum * extrapolate;
}

double SocialHausdorffLoss::ComputeFull(const FactorModel& model) const {
  double sum = 0.0;
  for (uint32_t user : eligible_) {
    sum += ComputeForUser(model, user, nullptr, 0.0);
  }
  return sum;
}

}  // namespace tcss
