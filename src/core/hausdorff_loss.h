#ifndef TCSS_CORE_HAUSDORFF_LOSS_H_
#define TCSS_CORE_HAUSDORFF_LOSS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/factor_model.h"
#include "core/tcss_config.h"
#include "data/dataset.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Prediction clamp of the Hausdorff head: Xhat is treated as a
/// probability and clamped to [0, 1 - kHausdorffCapMargin) so the product
/// prod_k (1 - Xhat) stays positive. Gradients are gated to the interior.
/// Shared with the brute-force oracle (src/proptest/oracles.cc), which
/// must clamp identically.
inline constexpr double kHausdorffCapMargin = 1e-9;
/// Lower bound on the soft-min inputs f_j (a POI exactly at a friend's
/// POI with p = 1 would otherwise yield f = 0 and blow up f^(alpha-1)).
inline constexpr double kHausdorffSoftMinFloor = 1e-6;

/// The paper's social Hausdorff distance head L1 (Eq 10-13), with
/// location-entropy weighting (Eq 11-12) and the generalized-mean soft
/// minimum M_alpha enabling backpropagation.
///
/// For each user v_i:
///   S(v_i) = candidate POIs with visit probability p_{i,j}
///            (p = 1 - prod_k (1 - Xhat_{i,j,k}), Xhat clamped to [0,1))
///   N(v_i) = POIs checked in by v_i's friends (train tensor)
///
///   d_WH = 1/(A+eps) * sum_{j in S} p_ij e_j min_{j' in N} d(j,j')
///        + 1/|N| * sum_{j' in N} e_j' M_alpha_{j in S}[ p_ij d(j,j')
///                                                + (1-p_ij) d_max ]
///
/// All gradients are computed analytically and flow through p into the
/// factor matrices and h.
///
/// The paper's S(v_i) is all J POIs; for tractability the candidate pool
/// can be bounded (own POIs + friends' POIs + uniform sample). Pool size 0
/// reproduces the paper exactly (see DESIGN.md decision #2).
class SocialHausdorffLoss {
 public:
  /// `data` and `train` must outlive the loss object. Precomputes entropy
  /// weights, d_max, friend POI sets and candidate pools.
  SocialHausdorffLoss(const Dataset& data, const SparseTensor& train,
                      const TcssConfig& config);

  /// Social Hausdorff distance of a single user (Eq 12); also accumulates
  /// grad_scale * d(d_WH)/d(params) into `grads` when non-null. Returns 0
  /// for users with empty N(v_i) or S(v_i).
  double ComputeForUser(const FactorModel& model, uint32_t user,
                        FactorGrads* grads, double grad_scale) const;

  /// One epoch's contribution: evaluates a rotating minibatch of
  /// `users_per_epoch` eligible users and extrapolates to the full sum
  /// (Eq 13). Gradients are accumulated pre-scaled so that
  /// lambda * L1-full-batch is what the optimizer effectively sees.
  double ComputeWithGrads(const FactorModel& model, double lambda,
                          FactorGrads* grads);

  /// Loss value over all eligible users (no grads, no extrapolation).
  double ComputeFull(const FactorModel& model) const;

  // --- Introspection (tests, benches) -----------------------------------
  const TcssConfig& config() const { return config_; }
  size_t num_eligible_users() const { return eligible_.size(); }
  double d_max() const { return d_max_; }
  const std::vector<double>& entropy_weights() const { return e_; }
  const std::vector<uint32_t>& candidate_pool(uint32_t user) const {
    return pool_[user];
  }
  const std::vector<uint32_t>& friend_pois(uint32_t user) const {
    return friend_pois_[user];
  }

  /// Rotating-minibatch cursor over eligible users. Checkpointed and
  /// restored by the trainer so a resumed run replays the exact same
  /// minibatch sequence as an uninterrupted one.
  size_t rotation() const { return rotation_; }
  void set_rotation(size_t r) {
    rotation_ = eligible_.empty() ? 0 : r % eligible_.size();
  }

 private:
  const Dataset* data_;
  const SparseTensor* train_;
  TcssConfig config_;

  std::vector<double> e_;  ///< entropy weights e_j (all 1 if disabled)
  double d_max_ = 0.0;
  std::vector<std::vector<uint32_t>> user_pois_;    ///< train POIs per user
  std::vector<std::vector<uint32_t>> friend_pois_;  ///< N(v_i)
  std::vector<std::vector<uint32_t>> pool_;         ///< S(v_i) candidates
  std::vector<uint32_t> eligible_;                  ///< users with N,S != {}
  size_t rotation_ = 0;  ///< minibatch cursor over eligible_

  // Geometry cache: per-user |S| x |N| haversine distances (float) and the
  // row minima, computed once at construction - POI locations are static,
  // so recomputing them every epoch would dominate training time. Falls
  // back to on-the-fly computation if the cache would exceed the budget.
  bool use_cache_ = false;
  std::vector<std::vector<float>> dist_cache_;   ///< indexed by user
  std::vector<std::vector<float>> dmin_cache_;
};

}  // namespace tcss

#endif  // TCSS_CORE_HAUSDORFF_LOSS_H_
