#ifndef TCSS_CORE_TCSS_MODEL_H_
#define TCSS_CORE_TCSS_MODEL_H_

#include <string>
#include <vector>

#include "core/factor_model.h"
#include "core/tcss_config.h"
#include "core/trainer.h"
#include "eval/recommender.h"

namespace tcss {

/// TCSS - Tensor Completion with Social-Spatial regularization: the
/// paper's model, packaged behind the common Recommender interface.
///
/// Usage:
///   TcssConfig cfg;                 // paper defaults
///   TcssModel model(cfg);
///   model.Fit({&data, &train_tensor, TimeGranularity::kMonthOfYear, 13});
///   double score = model.Score(user, poi, month);
class TcssModel : public Recommender {
 public:
  explicit TcssModel(const TcssConfig& config) : config_(config) {}

  std::string name() const override;

  Status Fit(const TrainContext& ctx) override;

  /// Fit with a per-epoch callback (convergence experiments, Fig 9).
  Status FitWithCallback(const TrainContext& ctx,
                         const EpochCallback& callback);

  /// Fit with full resilience control: periodic checkpoints, resume,
  /// divergence rollback, early stopping (see TrainOptions).
  Status FitWithOptions(const TrainContext& ctx, const TrainOptions& options,
                        const EpochCallback& callback = nullptr);

  /// Xhat(i,j,k); for the zero-out ablation, POIs outside the sigma radius
  /// of the user's own train POIs are pushed to -infinity-like scores.
  double Score(uint32_t i, uint32_t j, uint32_t k) const override;

  const FactorModel& factors() const { return factors_; }
  const TcssConfig& config() const { return config_; }
  bool fitted() const { return fitted_; }

  /// Cosine similarity matrix between time-factor rows (columns of U3 per
  /// bin), used by the Fig 6/7 heatmaps.
  Matrix TimeFactorSimilarity() const;

 private:
  void BuildZeroOutMask(const TrainContext& ctx);

  TcssConfig config_;
  FactorModel factors_;
  bool fitted_ = false;
  // Zero-out ablation: allowed_[i*J + j] == 1 iff POI j is within sigma of
  // user i's nearest train POI.
  std::vector<uint8_t> allowed_;
  size_t num_pois_ = 0;
};

}  // namespace tcss

#endif  // TCSS_CORE_TCSS_MODEL_H_
