#include "core/incremental_fold_in.h"

#include <utility>

#include "linalg/cholesky.h"

namespace tcss {
namespace {

uint64_t CellKey(uint32_t j, uint32_t k) {
  return (static_cast<uint64_t>(j) << 32) | static_cast<uint64_t>(k);
}

}  // namespace

IncrementalFoldIn::IncrementalFoldIn(const FoldInOptions& opts)
    : opts_(opts) {}

void IncrementalFoldIn::BindModel(std::shared_ptr<const FactorModel> model,
                                  uint64_t generation) {
  if (model_ != nullptr && model.get() == model_.get() &&
      generation == generation_) {
    return;  // same model object at the same generation: all state valid
  }
  model_ = std::move(model);
  generation_ = generation;
  base_valid_ = false;
  ++stats_.generation_binds;
  // Derived per-user state is invalidated lazily: each UserState carries
  // the generation its sums were built against, and CatchUp rebuilds when
  // it does not match. Observation lists are untouched.
}

bool IncrementalFoldIn::Append(uint32_t user, uint32_t poi,
                               uint32_t time_bin) {
  UserState& s = users_[user];
  if (!s.seen.insert(CellKey(poi, time_bin)).second) return false;
  s.cells.push_back({user, poi, time_bin});
  return true;
}

void IncrementalFoldIn::Seed(uint32_t user,
                             const std::vector<TensorCell>& cells) {
  for (const auto& c : cells) Append(user, c.j, c.k);
}

void IncrementalFoldIn::Invalidate(uint32_t user) {
  users_.erase(user);
  ++stats_.invalidations;
}

size_t IncrementalFoldIn::RetireBin(uint32_t bin) {
  size_t dropped = 0;
  for (auto& [user, s] : users_) {
    size_t kept = 0;
    for (const TensorCell& c : s.cells) {
      if (c.k != bin) s.cells[kept++] = c;
    }
    if (kept == s.cells.size()) continue;
    dropped += s.cells.size() - kept;
    s.cells.resize(kept);
    s.seen.clear();
    for (const TensorCell& c : s.cells) s.seen.insert(CellKey(c.j, c.k));
    // Force a full replay: stamping applied=0 alone is not enough because
    // obs_lhs/obs_rhs still hold the retired cells' contributions.
    s.obs_lhs = Matrix(0, 0);
    s.obs_rhs.clear();
    s.applied = 0;
    s.sums_generation = generation_ + 1;  // never matches -> CatchUp rebuilds
    s.solved = false;
  }
  return dropped;
}

bool IncrementalFoldIn::HasObservations(uint32_t user) const {
  auto it = users_.find(user);
  return it != users_.end() && !it->second.cells.empty();
}

std::vector<TensorCell> IncrementalFoldIn::Observations(uint32_t user) const {
  auto it = users_.find(user);
  return it != users_.end() ? it->second.cells : std::vector<TensorCell>();
}

bool IncrementalFoldIn::CatchUp(UserState* s) {
  const size_t r = model_->rank();
  if (s->sums_generation != generation_ || s->obs_lhs.rows() != r) {
    // Stale generation (or first touch): replay the whole observation
    // list against the bound model, in insertion order.
    s->obs_lhs = Matrix(r, r);
    s->obs_rhs.assign(r, 0.0);
    s->applied = 0;
    s->sums_generation = generation_;
    s->solved = false;
  }
  const size_t J = model_->u2.rows();
  const size_t K = model_->u3.rows();
  const double dw = opts_.w_pos - opts_.w_neg;
  std::vector<double> phi(r);
  for (; s->applied < s->cells.size(); ++s->applied) {
    const TensorCell& cell = s->cells[s->applied];
    if (cell.j >= J || cell.k >= K) return false;
    const double* b = model_->u2.row(cell.j);
    const double* c = model_->u3.row(cell.k);
    for (size_t t = 0; t < r; ++t) phi[t] = model_->h[t] * b[t] * c[t];
    for (size_t a = 0; a < r; ++a) {
      s->obs_rhs[a] += opts_.w_pos * phi[a];
      double* lrow = s->obs_lhs.row(a);
      for (size_t bb = 0; bb < r; ++bb) lrow[bb] += dw * phi[a] * phi[bb];
    }
    s->solved = false;
    ++stats_.rank_one_updates;
  }
  return true;
}

const std::vector<double>* IncrementalFoldIn::Embedding(uint32_t user) {
  if (model_ == nullptr) return nullptr;
  const size_t r = model_->rank();
  if (r == 0 || model_->u2.cols() != r || model_->u3.cols() != r ||
      model_->u2.rows() == 0 || model_->u3.rows() == 0) {
    return nullptr;
  }
  auto it = users_.find(user);
  if (it == users_.end() || it->second.cells.empty()) return nullptr;
  UserState& s = it->second;
  if (!CatchUp(&s)) return nullptr;  // observation outside the model
  if (s.solved && s.solved_at == s.cells.size()) {
    ++stats_.cache_hits;
    return &s.embedding;
  }

  if (!base_valid_) {
    // Whole-grid negative-weight Gram term, shared by every user of this
    // generation: w₋ · (h hᵀ) ⊙ (U2ᵀU2) ⊙ (U3ᵀU3).
    const Matrix g2 = Gram(model_->u2);
    const Matrix g3 = Gram(model_->u3);
    base_lhs_ = Matrix(r, r);
    for (size_t a = 0; a < r; ++a) {
      for (size_t b = 0; b < r; ++b) {
        base_lhs_(a, b) =
            opts_.w_neg * model_->h[a] * model_->h[b] * g2(a, b) * g3(a, b);
      }
    }
    base_valid_ = true;
  }

  Matrix lhs = base_lhs_;
  lhs.Add(s.obs_lhs);
  auto solved = CholeskySolve(lhs, s.obs_rhs, opts_.ridge);
  ++stats_.solves;
  if (!solved.ok()) return nullptr;
  s.embedding = solved.MoveValue();
  s.solved = true;
  s.solved_at = s.cells.size();
  return &s.embedding;
}

}  // namespace tcss
