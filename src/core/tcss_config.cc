#include "core/tcss_config.h"

#include "common/strings.h"

namespace tcss {

const char* InitMethodName(InitMethod m) {
  switch (m) {
    case InitMethod::kSpectral:
      return "spectral";
    case InitMethod::kRandom:
      return "random";
    case InitMethod::kOneHot:
      return "one-hot";
  }
  return "?";
}

const char* LossModeName(LossMode m) {
  switch (m) {
    case LossMode::kRewritten:
      return "rewritten";
    case LossMode::kNaive:
      return "naive";
    case LossMode::kNegativeSampling:
      return "negative-sampling";
  }
  return "?";
}

const char* HausdorffModeName(HausdorffMode m) {
  switch (m) {
    case HausdorffMode::kSocial:
      return "social";
    case HausdorffMode::kSelf:
      return "self";
    case HausdorffMode::kZeroOut:
      return "zero-out";
    case HausdorffMode::kNone:
      return "none";
  }
  return "?";
}

std::string TcssConfig::Summary() const {
  return StrFormat(
      "TCSS{r=%zu epochs=%d lr=%g w+=%g w-=%g lambda=%g alpha=%g init=%s "
      "loss=%s hausdorff=%s pool=%zu threads=%d}",
      rank, epochs, learning_rate, w_pos, w_neg, lambda, alpha,
      InitMethodName(init), LossModeName(loss_mode),
      HausdorffModeName(hausdorff), hausdorff_pool, num_threads);
}

std::string TcssConfig::Validate() const {
  if (rank == 0) return "rank must be positive";
  if (epochs < 0) return "epochs must be non-negative";
  if (learning_rate <= 0) return "learning_rate must be positive";
  if (w_pos <= 0 || w_neg < 0) return "weights must be positive";
  if (w_pos < w_neg) return "w_pos should not be below w_neg";
  if (lambda < 0) return "lambda must be non-negative";
  if (alpha >= 0) return "alpha must be negative (soft minimum)";
  if (epsilon <= 0) return "epsilon must be positive";
  if (zero_out_sigma_frac <= 0 || zero_out_sigma_frac > 1) {
    return "zero_out_sigma_frac must be in (0, 1]";
  }
  if (num_threads < 0 || num_threads > 1024) {
    return "num_threads must be in [0, 1024] (0 = hardware concurrency)";
  }
  return "";
}

}  // namespace tcss
