#include "core/whole_data_loss.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "tensor/sparse_kernels.h"

namespace tcss {

namespace {

/// Shard grain for observed-entry loops: at most ~16 shards, at least
/// 1024 entries each. Pure function of nnz — the per-shard accumulator
/// layout (and hence every rounding decision) is independent of the
/// thread count.
size_t EntryGrain(size_t n) {
  return std::max<size_t>(1024, (n + 15) / 16);
}

/// SplitMix64-style finalizer deriving an independent RNG stream for
/// (seed, call, shard). Counter-based: no mutable generator state crosses
/// calls, so the draws of call n are a pure function of these three.
uint64_t MixStream(uint64_t seed, uint64_t call, uint64_t shard) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (call + 1) +
               0xbf58476d1ce4e5b9ULL * (shard + 1);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

/// Runs fn(entry, &loss, grads_or_null) over all observed entries, sharded
/// with per-shard loss and gradient buffers that are reduced in ascending
/// shard order — bit-identical at any thread count.
template <typename EntryFn>
double ShardedEntryLoop(const FactorModel& model, const SparseTensor& train,
                        FactorGrads* grads, EntryFn&& fn) {
  const std::vector<TensorEntry>& entries = train.entries();
  const size_t n = entries.size();
  if (n == 0) return 0.0;
  const size_t grain = EntryGrain(n);
  const size_t shards = ParallelForShards(n, grain);
  if (shards == 1) {
    double loss = 0.0;
    for (const TensorEntry& e : entries) fn(e, &loss, grads);
    return loss;
  }
  std::vector<double> shard_loss(shards, 0.0);
  std::vector<FactorGrads> shard_grads;
  if (grads != nullptr) {
    shard_grads.reserve(shards);
    for (size_t s = 0; s < shards; ++s) shard_grads.emplace_back(model);
  }
  ParallelFor(n, grain, [&](size_t begin, size_t end, size_t s) {
    FactorGrads* g = grads != nullptr ? &shard_grads[s] : nullptr;
    double local = 0.0;
    for (size_t e = begin; e < end; ++e) fn(entries[e], &local, g);
    shard_loss[s] = local;
  });
  double loss = 0.0;
  for (size_t s = 0; s < shards; ++s) loss += shard_loss[s];
  if (grads != nullptr) {
    for (size_t s = 0; s < shards; ++s) grads->Add(shard_grads[s]);
  }
  return loss;
}

}  // namespace

void AccumulateEntryGrad(const FactorModel& model, uint32_t i, uint32_t j,
                         uint32_t k, double g, FactorGrads* grads) {
  const size_t r = model.rank();
  const double* a = model.u1.row(i);
  const double* b = model.u2.row(j);
  const double* c = model.u3.row(k);
  double* ga = grads->u1.row(i);
  double* gb = grads->u2.row(j);
  double* gc = grads->u3.row(k);
  for (size_t t = 0; t < r; ++t) {
    const double h = model.h[t];
    ga[t] += g * h * b[t] * c[t];
    gb[t] += g * h * a[t] * c[t];
    gc[t] += g * h * a[t] * b[t];
    grads->h[t] += g * a[t] * b[t] * c[t];
  }
}

std::unique_ptr<WholeDataLoss> WholeDataLoss::Create(
    const TcssConfig& config) {
  switch (config.loss_mode) {
    case LossMode::kRewritten:
      return std::make_unique<RewrittenLoss>(config.w_pos, config.w_neg);
    case LossMode::kNaive:
      return std::make_unique<NaiveLoss>(config.w_pos, config.w_neg);
    case LossMode::kNegativeSampling:
      return std::make_unique<NegativeSamplingLoss>(config.w_pos,
                                                    config.w_neg,
                                                    config.seed ^ 0x5eed);
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// RewrittenLoss (Eq 15)
// ---------------------------------------------------------------------------

void RewrittenLoss::BindTensor(const SparseTensor& train) {
  if (train.finalized()) {
    csf_ = CsfTensor(train);
    bound_ = &train;
  } else {
    csf_ = CsfTensor();
    bound_ = nullptr;
  }
}

double RewrittenLoss::Run(const FactorModel& model, const SparseTensor& train,
                          FactorGrads* grads) {
  const size_t r = model.rank();

  // --- positive part: sum over observed entries -------------------------
  // (w+ - w-) yhat^2 - 2 w+ X yhat  [+ w+ X^2 constant for exactness]
  // Dispatched CSF entry loop (tensor/sparse_kernels.h); bound tensors
  // reuse the precomputed tree, unbound finalized tensors build one per
  // call (same structure, same bytes). Unfinalized tensors keep the COO
  // loop below.
  double loss;
  if (train.finalized()) {
    auto run_csf = [&](const CsfTensor& csf) {
      return SparseKernels::RewrittenEntryLoss(
          csf, model.u1, model.u2, model.u3, model.h, w_pos_, w_neg_,
          grads != nullptr ? &grads->u1 : nullptr,
          grads != nullptr ? &grads->u2 : nullptr,
          grads != nullptr ? &grads->u3 : nullptr,
          grads != nullptr ? &grads->h : nullptr);
    };
    if (bound_ == &train) {
      loss = run_csf(csf_);
    } else {
      loss = run_csf(CsfTensor(train));
    }
  } else {
    loss = ShardedEntryLoop(
        model, train, grads,
        [&](const TensorEntry& e, double* local, FactorGrads* g) {
          const double y = model.Predict(e.i, e.j, e.k);
          *local += (w_pos_ - w_neg_) * y * y - 2.0 * w_pos_ * e.value * y +
                    w_pos_ * e.value * e.value;
          if (g != nullptr) {
            const double gv =
                2.0 * (w_pos_ - w_neg_) * y - 2.0 * w_pos_ * e.value;
            AccumulateEntryGrad(model, e.i, e.j, e.k, gv, g);
          }
        });
  }

  // --- whole-data part: w- * sum_{all cells} yhat^2 ---------------------
  // T = sum_{r1,r2} h_r1 h_r2 G1_{r1r2} G2_{r1r2} G3_{r1r2}
  // with Gn = Un^T Un (r x r Gram matrices): O((I+J+K) r^2).
  const Matrix g1 = Gram(model.u1);
  const Matrix g2 = Gram(model.u2);
  const Matrix g3 = Gram(model.u3);
  double t_val = 0.0;
  // M_{r1r2} = h_r1 h_r2 * G2 * G3 (used for the U1 gradient), and the
  // analogous products for the other factors.
  Matrix m1(r, r), m2(r, r), m3(r, r);
  std::vector<double> gh(r, 0.0);
  for (size_t r1 = 0; r1 < r; ++r1) {
    for (size_t r2 = 0; r2 < r; ++r2) {
      const double hh = model.h[r1] * model.h[r2];
      t_val += hh * g1(r1, r2) * g2(r1, r2) * g3(r1, r2);
      m1(r1, r2) = hh * g2(r1, r2) * g3(r1, r2);
      m2(r1, r2) = hh * g1(r1, r2) * g3(r1, r2);
      m3(r1, r2) = hh * g1(r1, r2) * g2(r1, r2);
      // dT/dh_r1 = 2 h_r2 G1 G2 G3 summed over r2 (symmetry).
      gh[r1] += 2.0 * model.h[r2] * g1(r1, r2) * g2(r1, r2) * g3(r1, r2);
    }
  }
  loss += w_neg_ * t_val;

  if (grads != nullptr) {
    // dT/dU1 = 2 U1 M1 (M1 symmetric), etc.
    Matrix d1 = MatMul(model.u1, m1);
    Matrix d2 = MatMul(model.u2, m2);
    Matrix d3 = MatMul(model.u3, m3);
    grads->u1.Add(d1, 2.0 * w_neg_);
    grads->u2.Add(d2, 2.0 * w_neg_);
    grads->u3.Add(d3, 2.0 * w_neg_);
    for (size_t t = 0; t < r; ++t) grads->h[t] += w_neg_ * gh[t];
  }
  return loss;
}

double RewrittenLoss::ComputeWithGrads(const FactorModel& model,
                                       const SparseTensor& train,
                                       FactorGrads* grads) {
  return Run(model, train, grads);
}

double RewrittenLoss::Compute(const FactorModel& model,
                              const SparseTensor& train) {
  return Run(model, train, nullptr);
}

// ---------------------------------------------------------------------------
// NaiveLoss (Eq 14)
// ---------------------------------------------------------------------------

double NaiveLoss::Run(const FactorModel& model, const SparseTensor& train,
                      FactorGrads* grads) {
  const size_t I = train.dim_i();
  const size_t J = train.dim_j();
  const size_t K = train.dim_k();
  // Walk all cells in (i,j,k) order in lockstep with the sorted nonzeros,
  // so membership tests are O(1) amortized.
  const auto& entries = train.entries();
  size_t cursor = 0;
  double loss = 0.0;
  for (uint32_t i = 0; i < I; ++i) {
    for (uint32_t j = 0; j < J; ++j) {
      for (uint32_t k = 0; k < K; ++k) {
        double x = 0.0;
        if (cursor < entries.size() && entries[cursor].i == i &&
            entries[cursor].j == j && entries[cursor].k == k) {
          x = entries[cursor].value;
          ++cursor;
        }
        const double w = (x != 0.0) ? w_pos_ : w_neg_;
        const double y = model.Predict(i, j, k);
        const double d = y - x;
        loss += w * d * d;
        if (grads != nullptr) {
          AccumulateEntryGrad(model, i, j, k, 2.0 * w * d, grads);
        }
      }
    }
  }
  TCSS_CHECK(cursor == entries.size());
  return loss;
}

double NaiveLoss::ComputeWithGrads(const FactorModel& model,
                                   const SparseTensor& train,
                                   FactorGrads* grads) {
  return Run(model, train, grads);
}

double NaiveLoss::Compute(const FactorModel& model,
                          const SparseTensor& train) {
  return Run(model, train, nullptr);
}

// ---------------------------------------------------------------------------
// NegativeSamplingLoss
// ---------------------------------------------------------------------------

double NegativeSamplingLoss::Run(const FactorModel& model,
                                 const SparseTensor& train,
                                 FactorGrads* grads) {
  double loss = ShardedEntryLoop(
      model, train, grads,
      [&](const TensorEntry& e, double* local, FactorGrads* g) {
        const double y = model.Predict(e.i, e.j, e.k);
        const double d = y - e.value;
        *local += w_pos_ * d * d;
        if (g != nullptr) {
          AccumulateEntryGrad(model, e.i, e.j, e.k, 2.0 * w_pos_ * d, g);
        }
      });
  // One sampled negative per positive (He et al. ratio 1:1), uniformly
  // over the unlabeled cells via rejection. Each shard draws its quota
  // from its own counter-derived stream, so the sample set is a pure
  // function of (seed, call counter) — same at any thread count, and
  // reproducible after a checkpoint restore of the counter.
  const size_t I = train.dim_i();
  const size_t J = train.dim_j();
  const size_t K = train.dim_k();
  const size_t want = train.nnz();
  const uint64_t call = calls_++;
  if (want == 0) return loss;
  const size_t grain = std::max<size_t>(256, (want + 15) / 16);
  const size_t shards = ParallelForShards(want, grain);
  std::vector<double> shard_loss(shards, 0.0);
  std::vector<size_t> shard_drawn(shards, 0);
  std::vector<FactorGrads> shard_grads;
  if (grads != nullptr) {
    // Negatives always go through per-shard buffers (even when shards==1
    // would allow direct accumulation) so an under-draw rescale can be
    // applied uniformly at merge time.
    shard_grads.reserve(shards);
    for (size_t s = 0; s < shards; ++s) shard_grads.emplace_back(model);
  }
  ParallelFor(want, grain, [&](size_t begin, size_t end, size_t s) {
    Rng rng(MixStream(seed_, call, s));
    FactorGrads* g = grads != nullptr ? &shard_grads[s] : nullptr;
    const size_t quota = end - begin;
    size_t drawn = 0;
    size_t guard = 0;
    double local = 0.0;
    while (drawn < quota && guard < quota * 50 + 100) {
      ++guard;
      const uint32_t i = static_cast<uint32_t>(rng.UniformInt(I));
      const uint32_t j = static_cast<uint32_t>(rng.UniformInt(J));
      const uint32_t k = static_cast<uint32_t>(rng.UniformInt(K));
      if (train.Contains(i, j, k)) continue;
      ++drawn;
      const double y = model.Predict(i, j, k);
      local += w_neg_ * y * y;
      if (g != nullptr) {
        AccumulateEntryGrad(model, i, j, k, 2.0 * w_neg_ * y, g);
      }
    }
    shard_loss[s] = local;
    shard_drawn[s] = drawn;
  });
  size_t drawn = 0;
  double neg_loss = 0.0;
  for (size_t s = 0; s < shards; ++s) {
    drawn += shard_drawn[s];
    neg_loss += shard_loss[s];
  }
  // Under-draw (rejection guard exhausted on a near-dense tensor): the
  // drawn negatives are still uniform over unlabeled cells, so rescale by
  // want/drawn to keep the w- term an unbiased estimate of the intended
  // `want`-sample sum instead of silently shrinking it.
  double scale = 1.0;
  if (drawn < want) {
    if (drawn > 0) {
      scale = static_cast<double>(want) / static_cast<double>(drawn);
    }
    TCSS_LOG(Warning) << "negative sampling under-drew " << drawn << "/"
                      << want << " negatives (tensor too dense for the "
                      << "rejection guard); rescaling the w- term by "
                      << scale;
  }
  loss += scale * neg_loss;
  if (grads != nullptr) {
    for (size_t s = 0; s < shards; ++s) grads->Add(shard_grads[s], scale);
  }
  return loss;
}

double NegativeSamplingLoss::ComputeWithGrads(const FactorModel& model,
                                              const SparseTensor& train,
                                              FactorGrads* grads) {
  return Run(model, train, grads);
}

double NegativeSamplingLoss::Compute(const FactorModel& model,
                                     const SparseTensor& train) {
  return Run(model, train, nullptr);
}

}  // namespace tcss
