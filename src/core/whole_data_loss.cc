#include "core/whole_data_loss.h"

#include <cmath>

#include "common/logging.h"

namespace tcss {

void AccumulateEntryGrad(const FactorModel& model, uint32_t i, uint32_t j,
                         uint32_t k, double g, FactorGrads* grads) {
  const size_t r = model.rank();
  const double* a = model.u1.row(i);
  const double* b = model.u2.row(j);
  const double* c = model.u3.row(k);
  double* ga = grads->u1.row(i);
  double* gb = grads->u2.row(j);
  double* gc = grads->u3.row(k);
  for (size_t t = 0; t < r; ++t) {
    const double h = model.h[t];
    ga[t] += g * h * b[t] * c[t];
    gb[t] += g * h * a[t] * c[t];
    gc[t] += g * h * a[t] * b[t];
    grads->h[t] += g * a[t] * b[t] * c[t];
  }
}

std::unique_ptr<WholeDataLoss> WholeDataLoss::Create(
    const TcssConfig& config) {
  switch (config.loss_mode) {
    case LossMode::kRewritten:
      return std::make_unique<RewrittenLoss>(config.w_pos, config.w_neg);
    case LossMode::kNaive:
      return std::make_unique<NaiveLoss>(config.w_pos, config.w_neg);
    case LossMode::kNegativeSampling:
      return std::make_unique<NegativeSamplingLoss>(config.w_pos,
                                                    config.w_neg,
                                                    config.seed ^ 0x5eed);
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// RewrittenLoss (Eq 15)
// ---------------------------------------------------------------------------

double RewrittenLoss::Run(const FactorModel& model, const SparseTensor& train,
                          FactorGrads* grads) {
  const size_t r = model.rank();

  // --- positive part: sum over observed entries -------------------------
  // (w+ - w-) yhat^2 - 2 w+ X yhat  [+ w+ X^2 constant for exactness]
  double loss = 0.0;
  for (const auto& e : train.entries()) {
    const double y = model.Predict(e.i, e.j, e.k);
    loss += (w_pos_ - w_neg_) * y * y - 2.0 * w_pos_ * e.value * y +
            w_pos_ * e.value * e.value;
    if (grads != nullptr) {
      const double g = 2.0 * (w_pos_ - w_neg_) * y - 2.0 * w_pos_ * e.value;
      AccumulateEntryGrad(model, e.i, e.j, e.k, g, grads);
    }
  }

  // --- whole-data part: w- * sum_{all cells} yhat^2 ---------------------
  // T = sum_{r1,r2} h_r1 h_r2 G1_{r1r2} G2_{r1r2} G3_{r1r2}
  // with Gn = Un^T Un (r x r Gram matrices): O((I+J+K) r^2).
  const Matrix g1 = Gram(model.u1);
  const Matrix g2 = Gram(model.u2);
  const Matrix g3 = Gram(model.u3);
  double t_val = 0.0;
  // M_{r1r2} = h_r1 h_r2 * G2 * G3 (used for the U1 gradient), and the
  // analogous products for the other factors.
  Matrix m1(r, r), m2(r, r), m3(r, r);
  std::vector<double> gh(r, 0.0);
  for (size_t r1 = 0; r1 < r; ++r1) {
    for (size_t r2 = 0; r2 < r; ++r2) {
      const double hh = model.h[r1] * model.h[r2];
      t_val += hh * g1(r1, r2) * g2(r1, r2) * g3(r1, r2);
      m1(r1, r2) = hh * g2(r1, r2) * g3(r1, r2);
      m2(r1, r2) = hh * g1(r1, r2) * g3(r1, r2);
      m3(r1, r2) = hh * g1(r1, r2) * g2(r1, r2);
      // dT/dh_r1 = 2 h_r2 G1 G2 G3 summed over r2 (symmetry).
      gh[r1] += 2.0 * model.h[r2] * g1(r1, r2) * g2(r1, r2) * g3(r1, r2);
    }
  }
  loss += w_neg_ * t_val;

  if (grads != nullptr) {
    // dT/dU1 = 2 U1 M1 (M1 symmetric), etc.
    Matrix d1 = MatMul(model.u1, m1);
    Matrix d2 = MatMul(model.u2, m2);
    Matrix d3 = MatMul(model.u3, m3);
    grads->u1.Add(d1, 2.0 * w_neg_);
    grads->u2.Add(d2, 2.0 * w_neg_);
    grads->u3.Add(d3, 2.0 * w_neg_);
    for (size_t t = 0; t < r; ++t) grads->h[t] += w_neg_ * gh[t];
  }
  return loss;
}

double RewrittenLoss::ComputeWithGrads(const FactorModel& model,
                                       const SparseTensor& train,
                                       FactorGrads* grads) {
  return Run(model, train, grads);
}

double RewrittenLoss::Compute(const FactorModel& model,
                              const SparseTensor& train) {
  return Run(model, train, nullptr);
}

// ---------------------------------------------------------------------------
// NaiveLoss (Eq 14)
// ---------------------------------------------------------------------------

double NaiveLoss::Run(const FactorModel& model, const SparseTensor& train,
                      FactorGrads* grads) {
  const size_t I = train.dim_i();
  const size_t J = train.dim_j();
  const size_t K = train.dim_k();
  // Walk all cells in (i,j,k) order in lockstep with the sorted nonzeros,
  // so membership tests are O(1) amortized.
  const auto& entries = train.entries();
  size_t cursor = 0;
  double loss = 0.0;
  for (uint32_t i = 0; i < I; ++i) {
    for (uint32_t j = 0; j < J; ++j) {
      for (uint32_t k = 0; k < K; ++k) {
        double x = 0.0;
        if (cursor < entries.size() && entries[cursor].i == i &&
            entries[cursor].j == j && entries[cursor].k == k) {
          x = entries[cursor].value;
          ++cursor;
        }
        const double w = (x != 0.0) ? w_pos_ : w_neg_;
        const double y = model.Predict(i, j, k);
        const double d = y - x;
        loss += w * d * d;
        if (grads != nullptr) {
          AccumulateEntryGrad(model, i, j, k, 2.0 * w * d, grads);
        }
      }
    }
  }
  TCSS_CHECK(cursor == entries.size());
  return loss;
}

double NaiveLoss::ComputeWithGrads(const FactorModel& model,
                                   const SparseTensor& train,
                                   FactorGrads* grads) {
  return Run(model, train, grads);
}

double NaiveLoss::Compute(const FactorModel& model,
                          const SparseTensor& train) {
  return Run(model, train, nullptr);
}

// ---------------------------------------------------------------------------
// NegativeSamplingLoss
// ---------------------------------------------------------------------------

double NegativeSamplingLoss::Run(const FactorModel& model,
                                 const SparseTensor& train,
                                 FactorGrads* grads) {
  double loss = 0.0;
  for (const auto& e : train.entries()) {
    const double y = model.Predict(e.i, e.j, e.k);
    const double d = y - e.value;
    loss += w_pos_ * d * d;
    if (grads != nullptr) {
      AccumulateEntryGrad(model, e.i, e.j, e.k, 2.0 * w_pos_ * d, grads);
    }
  }
  // One sampled negative per positive (He et al. ratio 1:1), uniformly
  // over the unlabeled cells via rejection.
  const size_t I = train.dim_i();
  const size_t J = train.dim_j();
  const size_t K = train.dim_k();
  const size_t want = train.nnz();
  size_t drawn = 0;
  size_t guard = 0;
  while (drawn < want && guard < want * 50 + 100) {
    ++guard;
    const uint32_t i = static_cast<uint32_t>(rng_.UniformInt(I));
    const uint32_t j = static_cast<uint32_t>(rng_.UniformInt(J));
    const uint32_t k = static_cast<uint32_t>(rng_.UniformInt(K));
    if (train.Contains(i, j, k)) continue;
    ++drawn;
    const double y = model.Predict(i, j, k);
    loss += w_neg_ * y * y;
    if (grads != nullptr) {
      AccumulateEntryGrad(model, i, j, k, 2.0 * w_neg_ * y, grads);
    }
  }
  return loss;
}

double NegativeSamplingLoss::ComputeWithGrads(const FactorModel& model,
                                              const SparseTensor& train,
                                              FactorGrads* grads) {
  return Run(model, train, grads);
}

double NegativeSamplingLoss::Compute(const FactorModel& model,
                                     const SparseTensor& train) {
  return Run(model, train, nullptr);
}

}  // namespace tcss
