#include "graph/personalized_pagerank.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace tcss {

WalkGraph::WalkGraph(size_t num_nodes) : num_nodes_(num_nodes) {}

void WalkGraph::AddArc(uint32_t u, uint32_t v, double weight) {
  TCSS_CHECK(!finalized_);
  TCSS_CHECK(u < num_nodes_ && v < num_nodes_);
  TCSS_CHECK(weight > 0.0);
  pending_.push_back({u, {v, weight}});
}

void WalkGraph::Finalize() {
  TCSS_CHECK(!finalized_);
  std::sort(pending_.begin(), pending_.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second.first < b.second.first;
            });
  offsets_.assign(num_nodes_ + 1, 0);
  for (const auto& [u, vw] : pending_) ++offsets_[u + 1];
  for (size_t u = 0; u < num_nodes_; ++u) offsets_[u + 1] += offsets_[u];
  heads_.resize(pending_.size());
  probs_.resize(pending_.size());
  std::vector<size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, vw] : pending_) {
    heads_[cursor[u]] = vw.first;
    probs_[cursor[u]] = vw.second;
    ++cursor[u];
  }
  // Normalize outgoing weight mass per node.
  for (size_t u = 0; u < num_nodes_; ++u) {
    double total = 0.0;
    for (size_t t = offsets_[u]; t < offsets_[u + 1]; ++t) total += probs_[t];
    if (total > 0.0) {
      for (size_t t = offsets_[u]; t < offsets_[u + 1]; ++t)
        probs_[t] /= total;
    }
  }
  pending_.clear();
  pending_.shrink_to_fit();
  finalized_ = true;
}

std::vector<double> WalkGraph::BookmarkColoring(uint32_t source, double alpha,
                                                double epsilon,
                                                int max_pushes) const {
  TCSS_CHECK(finalized_);
  TCSS_CHECK(source < num_nodes_);
  std::vector<double> rank(num_nodes_, 0.0);
  std::vector<double> residual(num_nodes_, 0.0);
  std::vector<uint8_t> queued(num_nodes_, 0);
  std::deque<uint32_t> queue;
  residual[source] = 1.0;
  queue.push_back(source);
  queued[source] = 1;
  int pushes = 0;
  while (!queue.empty() && pushes < max_pushes) {
    uint32_t u = queue.front();
    queue.pop_front();
    queued[u] = 0;
    double r = residual[u];
    if (r < epsilon) continue;
    residual[u] = 0.0;
    rank[u] += alpha * r;
    const double spread = (1.0 - alpha) * r;
    const size_t deg = offsets_[u + 1] - offsets_[u];
    if (deg == 0) {
      // Dangling node: return the walk to the source.
      residual[source] += spread;
      if (!queued[source] && residual[source] >= epsilon) {
        queue.push_back(source);
        queued[source] = 1;
      }
      ++pushes;
      continue;
    }
    for (size_t t = offsets_[u]; t < offsets_[u + 1]; ++t) {
      uint32_t v = heads_[t];
      residual[v] += spread * probs_[t];
      if (!queued[v] && residual[v] >= epsilon) {
        queue.push_back(v);
        queued[v] = 1;
      }
    }
    ++pushes;
  }
  return rank;
}

std::vector<double> WalkGraph::PowerIteration(uint32_t source, double alpha,
                                              int iterations) const {
  TCSS_CHECK(finalized_);
  std::vector<double> rank(num_nodes_, 0.0);
  std::vector<double> next(num_nodes_, 0.0);
  rank[source] = 1.0;
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    next[source] += alpha;
    for (size_t u = 0; u < num_nodes_; ++u) {
      const double mass = (1.0 - alpha) * rank[u];
      if (mass == 0.0) continue;
      const size_t deg = offsets_[u + 1] - offsets_[u];
      if (deg == 0) {
        next[source] += mass;
        continue;
      }
      for (size_t t = offsets_[u]; t < offsets_[u + 1]; ++t) {
        next[heads_[t]] += mass * probs_[t];
      }
    }
    std::swap(rank, next);
  }
  return rank;
}

}  // namespace tcss
