#ifndef TCSS_GRAPH_PERSONALIZED_PAGERANK_H_
#define TCSS_GRAPH_PERSONALIZED_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"

namespace tcss {

/// Weighted directed graph in CSR form for random-walk computations over
/// heterogeneous user-POI graphs (the substrate of the LFBCA baseline,
/// which runs a bookmark-coloring algorithm = personalized PageRank).
class WalkGraph {
 public:
  explicit WalkGraph(size_t num_nodes);

  size_t num_nodes() const { return num_nodes_; }

  /// Adds a directed edge u -> v with positive weight.
  void AddArc(uint32_t u, uint32_t v, double weight);

  /// Normalizes outgoing weights per node to probabilities and builds CSR.
  void Finalize();

  /// Personalized PageRank with restart probability `alpha` at `source`,
  /// computed by bookmark-coloring (Berkhin's push algorithm): exact up to
  /// `epsilon` residual mass per node, sparse in practice.
  std::vector<double> BookmarkColoring(uint32_t source, double alpha,
                                       double epsilon = 1e-6,
                                       int max_pushes = 2'000'000) const;

  /// Power-iteration PPR (dense), used to cross-check the push variant.
  std::vector<double> PowerIteration(uint32_t source, double alpha,
                                     int iterations = 100) const;

 private:
  size_t num_nodes_;
  bool finalized_ = false;
  std::vector<std::pair<uint32_t, std::pair<uint32_t, double>>> pending_;
  std::vector<size_t> offsets_;
  std::vector<uint32_t> heads_;
  std::vector<double> probs_;
};

}  // namespace tcss

#endif  // TCSS_GRAPH_PERSONALIZED_PAGERANK_H_
