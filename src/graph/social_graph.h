#ifndef TCSS_GRAPH_SOCIAL_GRAPH_H_
#define TCSS_GRAPH_SOCIAL_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace tcss {

/// Undirected friendship graph over LBSN users, stored in CSR form after
/// Finalize(). Self-loops are rejected; duplicate edges are coalesced.
class SocialGraph {
 public:
  SocialGraph() : num_nodes_(0) {}
  explicit SocialGraph(size_t num_nodes) : num_nodes_(num_nodes) {}

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return adj_.size() / 2; }  ///< undirected count
  bool finalized() const { return finalized_; }

  /// Adds an undirected edge u-v. Must be called before Finalize().
  Status AddEdge(uint32_t u, uint32_t v);

  /// Sorts and dedups adjacency; builds CSR offsets.
  Status Finalize();

  /// Neighbors of u as a sorted span. Requires finalized().
  const uint32_t* NeighborsBegin(uint32_t u) const {
    return adj_.data() + offsets_[u];
  }
  const uint32_t* NeighborsEnd(uint32_t u) const {
    return adj_.data() + offsets_[u + 1];
  }
  size_t Degree(uint32_t u) const { return offsets_[u + 1] - offsets_[u]; }

  /// Convenience copy of u's neighbor list.
  std::vector<uint32_t> Neighbors(uint32_t u) const;

  /// O(log degree) membership test. Requires finalized().
  bool HasEdge(uint32_t u, uint32_t v) const;

  /// Number of connected components (isolated nodes count individually).
  size_t CountConnectedComponents() const;

  /// Average degree 2|E| / |V| (0 for an empty graph).
  double AverageDegree() const;

 private:
  size_t num_nodes_;
  bool finalized_ = false;
  std::vector<std::pair<uint32_t, uint32_t>> pending_;
  std::vector<size_t> offsets_;
  std::vector<uint32_t> adj_;
};

}  // namespace tcss

#endif  // TCSS_GRAPH_SOCIAL_GRAPH_H_
