#include "graph/social_graph.h"

#include <algorithm>

#include "common/strings.h"

namespace tcss {

Status SocialGraph::AddEdge(uint32_t u, uint32_t v) {
  if (finalized_) {
    return Status::FailedPrecondition("SocialGraph: AddEdge after Finalize");
  }
  if (u >= num_nodes_ || v >= num_nodes_) {
    return Status::OutOfRange(StrFormat(
        "SocialGraph: edge (%u,%u) outside %zu nodes", u, v, num_nodes_));
  }
  if (u == v) {
    return Status::InvalidArgument("SocialGraph: self-loop rejected");
  }
  pending_.emplace_back(u, v);
  pending_.emplace_back(v, u);
  return Status::OK();
}

Status SocialGraph::Finalize() {
  if (finalized_) {
    return Status::FailedPrecondition("SocialGraph: double Finalize");
  }
  std::sort(pending_.begin(), pending_.end());
  pending_.erase(std::unique(pending_.begin(), pending_.end()),
                 pending_.end());
  offsets_.assign(num_nodes_ + 1, 0);
  adj_.resize(pending_.size());
  for (const auto& [u, v] : pending_) ++offsets_[u + 1];
  for (size_t u = 0; u < num_nodes_; ++u) offsets_[u + 1] += offsets_[u];
  std::vector<size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : pending_) adj_[cursor[u]++] = v;
  pending_.clear();
  pending_.shrink_to_fit();
  finalized_ = true;
  return Status::OK();
}

std::vector<uint32_t> SocialGraph::Neighbors(uint32_t u) const {
  return std::vector<uint32_t>(NeighborsBegin(u), NeighborsEnd(u));
}

bool SocialGraph::HasEdge(uint32_t u, uint32_t v) const {
  return std::binary_search(NeighborsBegin(u), NeighborsEnd(u), v);
}

size_t SocialGraph::CountConnectedComponents() const {
  std::vector<uint8_t> seen(num_nodes_, 0);
  std::vector<uint32_t> stack;
  size_t components = 0;
  for (uint32_t s = 0; s < num_nodes_; ++s) {
    if (seen[s]) continue;
    ++components;
    seen[s] = 1;
    stack.push_back(s);
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      for (const uint32_t* p = NeighborsBegin(u); p != NeighborsEnd(u); ++p) {
        if (!seen[*p]) {
          seen[*p] = 1;
          stack.push_back(*p);
        }
      }
    }
  }
  return components;
}

double SocialGraph::AverageDegree() const {
  if (num_nodes_ == 0) return 0.0;
  return static_cast<double>(adj_.size()) / static_cast<double>(num_nodes_);
}

}  // namespace tcss
