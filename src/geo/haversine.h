#ifndef TCSS_GEO_HAVERSINE_H_
#define TCSS_GEO_HAVERSINE_H_

#include <vector>

#include "geo/geo_point.h"

namespace tcss {

/// Mean Earth radius in kilometers (as used by the `haversine` package the
/// paper references).
inline constexpr double kEarthRadiusKm = 6371.0088;

/// Great-circle distance between two points in kilometers (haversine
/// formula; the paper's POI distance d(j, j')).
double HaversineKm(const GeoPoint& a, const GeoPoint& b);

/// Maximum pairwise haversine distance among `points` (the paper's d_max).
/// Exact O(n^2) for small n; for larger inputs uses the diameter of the
/// bounding box corners as a tight upper-bound proxy.
double MaxPairwiseDistanceKm(const std::vector<GeoPoint>& points,
                             size_t exact_threshold = 2048);

}  // namespace tcss

#endif  // TCSS_GEO_HAVERSINE_H_
