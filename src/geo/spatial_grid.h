#ifndef TCSS_GEO_SPATIAL_GRID_H_
#define TCSS_GEO_SPATIAL_GRID_H_

#include <cstdint>
#include <vector>

#include "geo/geo_point.h"

namespace tcss {

/// Uniform lat/lon grid index over a fixed point set. Supports approximate
/// nearest-neighbour and radius queries by expanding rings of cells; exact
/// enough for the Hausdorff candidate pruning and the zero-out ablation
/// (distances are verified with haversine inside candidate cells).
class SpatialGrid {
 public:
  /// Builds the index over `points` with roughly `target_per_cell` points
  /// per cell. Points must outlive the grid (indices refer into it).
  SpatialGrid(const std::vector<GeoPoint>& points, double target_per_cell = 8.0);

  /// Index of the nearest point to `q` (by haversine), or -1 if empty.
  /// `exclude` (optional) is skipped, enabling nearest-other queries.
  int64_t Nearest(const GeoPoint& q, int64_t exclude = -1) const;

  /// Haversine distance from q to its nearest indexed point; +inf if empty.
  double NearestDistanceKm(const GeoPoint& q, int64_t exclude = -1) const;

  /// All point indices within `radius_km` of q (haversine), sorted
  /// ascending and deduplicated. Exact: the cell window is conservative,
  /// wraps across the antimeridian, and widens toward the poles, so no
  /// in-radius point is ever missed.
  std::vector<uint32_t> WithinRadius(const GeoPoint& q,
                                     double radius_km) const;

  size_t num_points() const { return points_->size(); }

 private:
  size_t CellOf(const GeoPoint& p) const;
  void CellCoords(const GeoPoint& p, int* cx, int* cy) const;

  const std::vector<GeoPoint>* points_;
  GeoBounds bounds_;
  int nx_ = 1, ny_ = 1;
  double cell_lat_ = 1.0, cell_lon_ = 1.0;
  std::vector<std::vector<uint32_t>> cells_;
};

}  // namespace tcss

#endif  // TCSS_GEO_SPATIAL_GRID_H_
