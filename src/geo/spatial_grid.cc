#include "geo/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/haversine.h"

namespace tcss {

SpatialGrid::SpatialGrid(const std::vector<GeoPoint>& points,
                         double target_per_cell)
    : points_(&points) {
  for (const auto& p : points) bounds_.Extend(p);
  if (points.empty()) {
    cells_.resize(1);
    return;
  }
  const double span_lat = std::max(bounds_.max_lat - bounds_.min_lat, 1e-9);
  const double span_lon = std::max(bounds_.max_lon - bounds_.min_lon, 1e-9);
  const double n_cells =
      std::max(1.0, static_cast<double>(points.size()) / target_per_cell);
  const double aspect = span_lon / span_lat;
  ny_ = std::max(1, static_cast<int>(std::sqrt(n_cells / std::max(aspect, 1e-9))));
  nx_ = std::max(1, static_cast<int>(n_cells / ny_));
  cell_lat_ = span_lat / ny_;
  cell_lon_ = span_lon / nx_;
  cells_.assign(static_cast<size_t>(nx_) * ny_, {});
  for (uint32_t idx = 0; idx < points.size(); ++idx) {
    cells_[CellOf(points[idx])].push_back(idx);
  }
}

void SpatialGrid::CellCoords(const GeoPoint& p, int* cx, int* cy) const {
  *cx = std::clamp(
      static_cast<int>((p.lon - bounds_.min_lon) / cell_lon_), 0, nx_ - 1);
  *cy = std::clamp(
      static_cast<int>((p.lat - bounds_.min_lat) / cell_lat_), 0, ny_ - 1);
}

size_t SpatialGrid::CellOf(const GeoPoint& p) const {
  int cx, cy;
  CellCoords(p, &cx, &cy);
  return static_cast<size_t>(cy) * nx_ + cx;
}

int64_t SpatialGrid::Nearest(const GeoPoint& q, int64_t exclude) const {
  if (points_->empty()) return -1;
  int cx, cy;
  CellCoords(q, &cx, &cy);
  int64_t best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  const int max_ring = std::max(nx_, ny_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    bool any_cell = false;
    for (int dy = -ring; dy <= ring; ++dy) {
      for (int dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        const int x = cx + dx;
        const int y = cy + dy;
        if (x < 0 || x >= nx_ || y < 0 || y >= ny_) continue;
        any_cell = true;
        for (uint32_t idx : cells_[static_cast<size_t>(y) * nx_ + x]) {
          if (static_cast<int64_t>(idx) == exclude) continue;
          const double d = HaversineKm(q, (*points_)[idx]);
          if (d < best_d) {
            best_d = d;
            best = idx;
          }
        }
      }
    }
    // Stop one ring after the first hit: a neighbouring ring can still hold
    // a closer point than the first one found (cells are rectangles).
    if (best >= 0 && ring > 0) break;
    if (!any_cell && ring > 0 && best >= 0) break;
  }
  return best;
}

double SpatialGrid::NearestDistanceKm(const GeoPoint& q,
                                      int64_t exclude) const {
  int64_t idx = Nearest(q, exclude);
  if (idx < 0) return std::numeric_limits<double>::infinity();
  return HaversineKm(q, (*points_)[idx]);
}

std::vector<uint32_t> SpatialGrid::WithinRadius(const GeoPoint& q,
                                                double radius_km) const {
  std::vector<uint32_t> out;
  if (points_->empty()) return out;
  // Conservative cell window: convert km radius to degrees at this latitude.
  const double lat_deg = radius_km / 110.574;
  const double cos_lat =
      std::max(0.05, std::cos(q.lat * M_PI / 180.0));
  const double lon_deg = radius_km / (111.320 * cos_lat);
  int cx0, cy0, cx1, cy1;
  CellCoords({q.lat - lat_deg, q.lon - lon_deg}, &cx0, &cy0);
  CellCoords({q.lat + lat_deg, q.lon + lon_deg}, &cx1, &cy1);
  for (int y = cy0; y <= cy1; ++y) {
    for (int x = cx0; x <= cx1; ++x) {
      for (uint32_t idx : cells_[static_cast<size_t>(y) * nx_ + x]) {
        if (HaversineKm(q, (*points_)[idx]) <= radius_km) out.push_back(idx);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tcss
