#include "geo/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/haversine.h"

namespace tcss {

SpatialGrid::SpatialGrid(const std::vector<GeoPoint>& points,
                         double target_per_cell)
    : points_(&points) {
  for (const auto& p : points) bounds_.Extend(p);
  if (points.empty()) {
    cells_.resize(1);
    return;
  }
  const double span_lat = std::max(bounds_.max_lat - bounds_.min_lat, 1e-9);
  const double span_lon = std::max(bounds_.max_lon - bounds_.min_lon, 1e-9);
  const double n_cells =
      std::max(1.0, static_cast<double>(points.size()) / target_per_cell);
  const double aspect = span_lon / span_lat;
  ny_ = std::max(1, static_cast<int>(std::sqrt(n_cells / std::max(aspect, 1e-9))));
  nx_ = std::max(1, static_cast<int>(n_cells / ny_));
  cell_lat_ = span_lat / ny_;
  cell_lon_ = span_lon / nx_;
  cells_.assign(static_cast<size_t>(nx_) * ny_, {});
  for (uint32_t idx = 0; idx < points.size(); ++idx) {
    cells_[CellOf(points[idx])].push_back(idx);
  }
}

void SpatialGrid::CellCoords(const GeoPoint& p, int* cx, int* cy) const {
  *cx = std::clamp(
      static_cast<int>((p.lon - bounds_.min_lon) / cell_lon_), 0, nx_ - 1);
  *cy = std::clamp(
      static_cast<int>((p.lat - bounds_.min_lat) / cell_lat_), 0, ny_ - 1);
}

size_t SpatialGrid::CellOf(const GeoPoint& p) const {
  int cx, cy;
  CellCoords(p, &cx, &cy);
  return static_cast<size_t>(cy) * nx_ + cx;
}

int64_t SpatialGrid::Nearest(const GeoPoint& q, int64_t exclude) const {
  if (points_->empty()) return -1;
  int cx, cy;
  CellCoords(q, &cx, &cy);
  int64_t best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  const int max_ring = std::max(nx_, ny_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    bool any_cell = false;
    for (int dy = -ring; dy <= ring; ++dy) {
      for (int dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        const int x = cx + dx;
        const int y = cy + dy;
        if (x < 0 || x >= nx_ || y < 0 || y >= ny_) continue;
        any_cell = true;
        for (uint32_t idx : cells_[static_cast<size_t>(y) * nx_ + x]) {
          if (static_cast<int64_t>(idx) == exclude) continue;
          const double d = HaversineKm(q, (*points_)[idx]);
          if (d < best_d) {
            best_d = d;
            best = idx;
          }
        }
      }
    }
    // Stop one ring after the first hit: a neighbouring ring can still hold
    // a closer point than the first one found (cells are rectangles).
    if (best >= 0 && ring > 0) break;
    if (!any_cell && ring > 0 && best >= 0) break;
  }
  return best;
}

double SpatialGrid::NearestDistanceKm(const GeoPoint& q,
                                      int64_t exclude) const {
  int64_t idx = Nearest(q, exclude);
  if (idx < 0) return std::numeric_limits<double>::infinity();
  return HaversineKm(q, (*points_)[idx]);
}

std::vector<uint32_t> SpatialGrid::WithinRadius(const GeoPoint& q,
                                                double radius_km) const {
  std::vector<uint32_t> out;
  if (points_->empty() || !(radius_km >= 0.0)) return out;
  // Conservative cell window, derived from the haversine formula itself
  // (d = 2R asin sqrt(sin^2(dlat/2) + cos lat1 cos lat2 sin^2(dlon/2))):
  //   * dropping the longitude term gives d >= R*|dlat|, so every point
  //     within the radius lies inside the latitude band +-c (c = angular
  //     radius in radians);
  //   * dropping the latitude term and lower-bounding both cosines by the
  //     band's minimum cosine gives |dlon| <= 2 asin(sin(c/2)/cos lat_m),
  //     where lat_m is the largest |latitude| the band reaches. Using the
  //     band minimum (not cos(q.lat)) is what keeps pole-adjacent queries
  //     correct: the circle bulges in longitude toward the pole.
  // A radius that reaches a pole, or a bound that saturates, means every
  // longitude qualifies. The 1.001 slack absorbs rounding.
  const double kDegPerRad = 180.0 / M_PI;
  const double c = radius_km / kEarthRadiusKm;  // angular radius, radians
  const double lat_deg = c * kDegPerRad * 1.001;
  const double lat_lo = q.lat - lat_deg;
  const double lat_hi = q.lat + lat_deg;
  bool all_lon = false;
  double lon_deg = 0.0;
  if (lat_lo <= -90.0 || lat_hi >= 90.0 || c >= M_PI) {
    all_lon = true;
  } else {
    const double band_max_lat = std::max(std::fabs(lat_lo), std::fabs(lat_hi));
    const double sin_half =
        std::sin(c / 2.0) / std::cos(band_max_lat * M_PI / 180.0);
    if (sin_half >= 1.0) {
      all_lon = true;
    } else {
      lon_deg = 2.0 * std::asin(sin_half) * kDegPerRad * 1.001;
      if (lon_deg >= 180.0) all_lon = true;
    }
  }
  // Longitude wraps at the antimeridian: a window that crosses +-180 is
  // split into two disjoint spans (a window this wide but not global is
  // excluded above, so at most one edge wraps).
  struct LonSpan {
    double lo, hi;
  };
  LonSpan spans[2];
  int num_spans = 0;
  if (all_lon) {
    spans[num_spans++] = {-180.0, 180.0};
  } else {
    double lo = q.lon - lon_deg;
    double hi = q.lon + lon_deg;
    if (lo < -180.0) {
      spans[num_spans++] = {lo + 360.0, 180.0};
      lo = -180.0;
    }
    if (hi > 180.0) {
      spans[num_spans++] = {-180.0, hi - 360.0};
      hi = 180.0;
    }
    spans[num_spans++] = {lo, hi};
  }
  for (int s = 0; s < num_spans; ++s) {
    int cx0, cy0, cx1, cy1;
    CellCoords({lat_lo, spans[s].lo}, &cx0, &cy0);
    CellCoords({lat_hi, spans[s].hi}, &cx1, &cy1);
    for (int y = cy0; y <= cy1; ++y) {
      for (int x = cx0; x <= cx1; ++x) {
        for (uint32_t idx : cells_[static_cast<size_t>(y) * nx_ + x]) {
          if (HaversineKm(q, (*points_)[idx]) <= radius_km) out.push_back(idx);
        }
      }
    }
  }
  // Disjoint spans can still clamp onto overlapping cell columns at the
  // grid edge, so dedup after sorting.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace tcss
