#include "geo/haversine.h"

#include <algorithm>
#include <cmath>

namespace tcss {
namespace {

double DegToRad(double deg) { return deg * M_PI / 180.0; }

}  // namespace

double HaversineKm(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = DegToRad(a.lat);
  const double lat2 = DegToRad(b.lat);
  const double dlat = lat2 - lat1;
  const double dlon = DegToRad(b.lon - a.lon);
  const double sin_dlat = std::sin(0.5 * dlat);
  const double sin_dlon = std::sin(0.5 * dlon);
  const double h = sin_dlat * sin_dlat +
                   std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double MaxPairwiseDistanceKm(const std::vector<GeoPoint>& points,
                             size_t exact_threshold) {
  if (points.size() < 2) return 0.0;
  if (points.size() <= exact_threshold) {
    double best = 0.0;
    for (size_t a = 0; a < points.size(); ++a)
      for (size_t b = a + 1; b < points.size(); ++b)
        best = std::max(best, HaversineKm(points[a], points[b]));
    return best;
  }
  // Approximate: diameter across bounding-box corners. For POI clouds this
  // is within a few percent of the true diameter, and d_max only scales the
  // Hausdorff penalty so a tight upper bound is sufficient.
  GeoBounds bounds;
  for (const auto& p : points) bounds.Extend(p);
  const GeoPoint corners[4] = {{bounds.min_lat, bounds.min_lon},
                               {bounds.min_lat, bounds.max_lon},
                               {bounds.max_lat, bounds.min_lon},
                               {bounds.max_lat, bounds.max_lon}};
  double best = 0.0;
  for (int a = 0; a < 4; ++a)
    for (int b = a + 1; b < 4; ++b)
      best = std::max(best, HaversineKm(corners[a], corners[b]));
  return best;
}

}  // namespace tcss
