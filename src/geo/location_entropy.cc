#include "geo/location_entropy.h"

#include <cmath>
#include <map>

namespace tcss {

std::vector<double> ComputeLocationEntropyFromCounts(
    const std::vector<std::vector<std::pair<uint32_t, double>>>&
        per_poi_user_counts) {
  std::vector<double> entropy(per_poi_user_counts.size(), 0.0);
  for (size_t j = 0; j < per_poi_user_counts.size(); ++j) {
    double total = 0.0;
    for (const auto& [user, cnt] : per_poi_user_counts[j]) total += cnt;
    if (total <= 0.0) continue;
    double e = 0.0;
    for (const auto& [user, cnt] : per_poi_user_counts[j]) {
      if (cnt <= 0.0) continue;
      const double p = cnt / total;
      e -= p * std::log(p);
    }
    entropy[j] = e;
  }
  return entropy;
}

std::vector<double> ComputeLocationEntropy(const SparseTensor& checkins) {
  // Aggregate check-ins over time bins: |Phi_ij| = number of (i,j,*) cells.
  std::vector<std::vector<std::pair<uint32_t, double>>> counts(
      checkins.dim_j());
  // Entries are sorted by (i, j, k) if finalized; group by (j, i) via a map
  // per POI to stay correct for unfinalized input too.
  std::vector<std::map<uint32_t, double>> acc(checkins.dim_j());
  for (const auto& e : checkins.entries()) {
    acc[e.j][e.i] += e.value;
  }
  for (size_t j = 0; j < acc.size(); ++j) {
    counts[j].assign(acc[j].begin(), acc[j].end());
  }
  return ComputeLocationEntropyFromCounts(counts);
}

std::vector<double> EntropyWeights(const std::vector<double>& entropy) {
  std::vector<double> w(entropy.size());
  for (size_t j = 0; j < entropy.size(); ++j) w[j] = std::exp(-entropy[j]);
  return w;
}

}  // namespace tcss
