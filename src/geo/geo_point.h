#ifndef TCSS_GEO_GEO_POINT_H_
#define TCSS_GEO_GEO_POINT_H_

#include <string>

namespace tcss {

/// A point on the globe in decimal degrees.
struct GeoPoint {
  double lat = 0.0;  ///< latitude in [-90, 90]
  double lon = 0.0;  ///< longitude in [-180, 180]

  bool operator==(const GeoPoint& o) const {
    return lat == o.lat && lon == o.lon;
  }
};

/// Validates coordinate ranges.
bool IsValid(const GeoPoint& p);

/// "lat,lon" with 6 decimal places.
std::string ToString(const GeoPoint& p);

/// Axis-aligned lat/lon bounding box.
struct GeoBounds {
  double min_lat = 90.0;
  double max_lat = -90.0;
  double min_lon = 180.0;
  double max_lon = -180.0;

  void Extend(const GeoPoint& p);
  bool Contains(const GeoPoint& p) const;
  GeoPoint Center() const;
};

}  // namespace tcss

#endif  // TCSS_GEO_GEO_POINT_H_
