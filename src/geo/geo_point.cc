#include "geo/geo_point.h"

#include <algorithm>

#include "common/strings.h"

namespace tcss {

bool IsValid(const GeoPoint& p) {
  return p.lat >= -90.0 && p.lat <= 90.0 && p.lon >= -180.0 && p.lon <= 180.0;
}

std::string ToString(const GeoPoint& p) {
  return StrFormat("%.6f,%.6f", p.lat, p.lon);
}

void GeoBounds::Extend(const GeoPoint& p) {
  min_lat = std::min(min_lat, p.lat);
  max_lat = std::max(max_lat, p.lat);
  min_lon = std::min(min_lon, p.lon);
  max_lon = std::max(max_lon, p.lon);
}

bool GeoBounds::Contains(const GeoPoint& p) const {
  return p.lat >= min_lat && p.lat <= max_lat && p.lon >= min_lon &&
         p.lon <= max_lon;
}

GeoPoint GeoBounds::Center() const {
  return {0.5 * (min_lat + max_lat), 0.5 * (min_lon + max_lon)};
}

}  // namespace tcss
