#ifndef TCSS_GEO_LOCATION_ENTROPY_H_
#define TCSS_GEO_LOCATION_ENTROPY_H_

#include <vector>

#include "tensor/sparse_tensor.h"

namespace tcss {

/// Location entropy of every POI (Eq 11 of the paper):
///   E_j = - sum_{i : |Phi_ij| > 0}  (|Phi_ij| / |Phi_j|) log(|Phi_ij| / |Phi_j|)
/// where Phi_ij are user i's check-ins at POI j and Phi_j all check-ins at
/// POI j. High entropy = visited evenly by many users (e.g. a Costco);
/// low entropy = a niche spot visited repeatedly by few (e.g. a tennis
/// court), which better reflects social strength.
///
/// Computed from the (finalized or not) check-in tensor where duplicate
/// check-ins within a bin count once; pass pre-coalesced counts for exact
/// multi-visit weighting via the overload below.
std::vector<double> ComputeLocationEntropy(const SparseTensor& checkins);

/// Same from raw per-(user, poi) visit counts. counts[j] maps user -> visits.
std::vector<double> ComputeLocationEntropyFromCounts(
    const std::vector<std::vector<std::pair<uint32_t, double>>>&
        per_poi_user_counts);

/// Entropy-derived diversity weights e_j = exp(-E_j) in (0, 1].
std::vector<double> EntropyWeights(const std::vector<double>& entropy);

}  // namespace tcss

#endif  // TCSS_GEO_LOCATION_ENTROPY_H_
