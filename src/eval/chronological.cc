#include "eval/chronological.h"

#include <algorithm>
#include <cmath>

namespace tcss {

ChronoSplit ChronologicalSplit(std::vector<CheckInEvent> events,
                               double train_fraction) {
  ChronoSplit split;
  if (events.empty()) return split;
  if (train_fraction < 0.0) train_fraction = 0.0;
  if (train_fraction > 1.0) train_fraction = 1.0;
  std::stable_sort(events.begin(), events.end(),
                   [](const CheckInEvent& a, const CheckInEvent& b) {
                     if (a.timestamp != b.timestamp) {
                       return a.timestamp < b.timestamp;
                     }
                     if (a.user != b.user) return a.user < b.user;
                     return a.poi < b.poi;
                   });
  size_t cut = static_cast<size_t>(
      std::floor(train_fraction * static_cast<double>(events.size())));
  if (cut >= events.size()) cut = events.size();
  // Pull the cut back to the first event of the cutoff timestamp, so a
  // run of equal timestamps is never torn across the boundary.
  while (cut > 0 && cut < events.size() &&
         events[cut - 1].timestamp == events[cut].timestamp) {
    --cut;
  }
  split.cutoff_ts = cut < events.size() ? events[cut].timestamp
                                        : events.back().timestamp + 1;
  split.before.assign(events.begin(), events.begin() + cut);
  split.after.assign(events.begin() + cut, events.end());
  return split;
}

}  // namespace tcss
