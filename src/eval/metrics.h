#ifndef TCSS_EVAL_METRICS_H_
#define TCSS_EVAL_METRICS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "data/tensor_builder.h"

namespace tcss {

/// Scoring callback: (user, poi, time) -> affinity.
using ScoreFn = std::function<double(uint32_t, uint32_t, uint32_t)>;

/// Aggregated ranking quality over a test set.
struct RankingMetrics {
  double hit_at_k = 0.0;  ///< fraction of test entries ranked in top-K
  double mrr = 0.0;       ///< mean reciprocal rank (per-user averaged)
  double ndcg_at_k = 0.0; ///< mean single-item NDCG@K over entries
  double precision_at_k = 0.0;  ///< mean Precision@K over entries
  size_t num_entries = 0;
  size_t num_users = 0;
};

/// Root mean squared error of `score` against a constant target over the
/// given cells (used by Table III for positive/negative RMSE columns).
double RmseAgainstConstant(const ScoreFn& score,
                           const std::vector<TensorCell>& cells,
                           double target);

/// Mid-rank of `target_score` within `others`: 1 + #greater + #equal / 2.
/// Ties are split evenly so constant scorers receive chance-level ranks
/// rather than artificially good or bad ones.
double MidRank(double target_score, const std::vector<double>& others);

/// NDCG@K of a single target at the given (1-based, possibly fractional
/// mid-) rank among candidates: 1/log2(rank+1) if rank <= K else 0. With
/// one relevant item the ideal DCG is 1, so this is the per-entry NDCG.
double NdcgAtK(double rank, size_t k);

/// Precision@K with a single relevant item: 1/K if rank <= K else 0.
double PrecisionAtK(double rank, size_t k);

}  // namespace tcss

#endif  // TCSS_EVAL_METRICS_H_
