#include "eval/ranking_protocol.h"

#include <algorithm>
#include <map>

#include "common/rng.h"

namespace tcss {

RankingMetrics EvaluateRanking(const ScoreFn& score, size_t num_pois,
                               const std::vector<TensorCell>& test_cells,
                               const RankingProtocolOptions& opts,
                               const SparseTensor* train) {
  RankingMetrics out;
  if (test_cells.empty() || num_pois == 0) return out;
  Rng rng(opts.seed);

  std::map<uint32_t, std::pair<double, size_t>> per_user_rr;  // sum, count
  size_t hits = 0;
  double ndcg_sum = 0.0;
  double precision_sum = 0.0;
  std::vector<double> negatives;
  negatives.reserve(opts.num_negatives);

  for (const auto& cell : test_cells) {
    negatives.clear();
    size_t attempts = 0;
    while (negatives.size() < opts.num_negatives &&
           attempts < opts.num_negatives * 20) {
      ++attempts;
      const uint32_t j = static_cast<uint32_t>(rng.UniformInt(num_pois));
      if (j == cell.j) continue;
      if (opts.exclude_observed && train != nullptr &&
          train->Contains(cell.i, j, cell.k)) {
        continue;
      }
      negatives.push_back(score(cell.i, j, cell.k));
    }
    const double target = score(cell.i, cell.j, cell.k);
    const double rank = MidRank(target, negatives);
    if (rank <= static_cast<double>(opts.top_k)) ++hits;
    ndcg_sum += NdcgAtK(rank, opts.top_k);
    precision_sum += PrecisionAtK(rank, opts.top_k);
    auto& acc = per_user_rr[cell.i];
    acc.first += 1.0 / rank;
    acc.second += 1;
  }

  out.num_entries = test_cells.size();
  out.num_users = per_user_rr.size();
  out.hit_at_k =
      static_cast<double>(hits) / static_cast<double>(test_cells.size());
  out.ndcg_at_k = ndcg_sum / static_cast<double>(test_cells.size());
  out.precision_at_k =
      precision_sum / static_cast<double>(test_cells.size());
  double mrr_sum = 0.0;
  for (const auto& [user, acc] : per_user_rr) {
    mrr_sum += acc.first / static_cast<double>(acc.second);
  }
  out.mrr = per_user_rr.empty()
                ? 0.0
                : mrr_sum / static_cast<double>(per_user_rr.size());
  return out;
}

RankingMetrics EvaluateRanking(const Recommender& model, size_t num_pois,
                               const std::vector<TensorCell>& test_cells,
                               const RankingProtocolOptions& opts,
                               const SparseTensor* train) {
  return EvaluateRanking(
      [&model](uint32_t i, uint32_t j, uint32_t k) {
        return model.Score(i, j, k);
      },
      num_pois, test_cells, opts, train);
}

}  // namespace tcss
