#ifndef TCSS_EVAL_CHRONOLOGICAL_H_
#define TCSS_EVAL_CHRONOLOGICAL_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace tcss {

/// Chronological train/test partition (DESIGN.md §14). The paper's random
/// 80/20 split scatters each user's history across both sides, which
/// hides exactly the distribution drift a streaming system exists to
/// track: the test set looks like the train set by construction. A
/// chronological split puts everything before the cutoff timestamp in
/// `before` and everything at-or-after it in `after`, so post-cutoff
/// evaluation measures how a model copes with the future, not a shuffled
/// past. This mirrors the sequential evaluation of the spatiotemporal POI
/// embedding literature (arXiv:1704.08853).
struct ChronoSplit {
  std::vector<CheckInEvent> before;  ///< strictly earlier than cutoff_ts
  std::vector<CheckInEvent> after;   ///< at-or-after cutoff_ts
  int64_t cutoff_ts = 0;
};

/// Sorts `events` by (timestamp, user, poi) — a total, input-order-
/// independent key — and cuts at the `train_fraction` quantile. Both
/// sides come back chronologically sorted; ties at the cutoff timestamp
/// all land on the same side (after), so the cutoff is a clean point in
/// time rather than an index into equal timestamps.
ChronoSplit ChronologicalSplit(std::vector<CheckInEvent> events,
                               double train_fraction);

}  // namespace tcss

#endif  // TCSS_EVAL_CHRONOLOGICAL_H_
