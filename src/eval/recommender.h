#ifndef TCSS_EVAL_RECOMMENDER_H_
#define TCSS_EVAL_RECOMMENDER_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"
#include "data/time_binning.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Everything a model may consume during training: the dataset (for side
/// information: POI locations, categories, social graph), the observed
/// train tensor, the binning, and a seed. Models that ignore side
/// information simply read `train`.
struct TrainContext {
  const Dataset* data = nullptr;
  const SparseTensor* train = nullptr;
  TimeGranularity granularity = TimeGranularity::kMonthOfYear;
  uint64_t seed = 1;
};

/// Common interface of TCSS and all baselines: fit on the observed tensor
/// (+side information), then score arbitrary (user, POI, time) triples.
/// Matrix-completion baselines ignore the time index.
class Recommender {
 public:
  virtual ~Recommender() = default;

  virtual std::string name() const = 0;

  /// Trains the model. Must be called exactly once before Score().
  virtual Status Fit(const TrainContext& ctx) = 0;

  /// Predicted affinity of user i for POI j at time bin k. Higher = more
  /// likely interaction. Only relative order matters for ranking metrics.
  virtual double Score(uint32_t i, uint32_t j, uint32_t k) const = 0;
};

}  // namespace tcss

#endif  // TCSS_EVAL_RECOMMENDER_H_
