#ifndef TCSS_EVAL_RANKING_PROTOCOL_H_
#define TCSS_EVAL_RANKING_PROTOCOL_H_

#include <vector>

#include "eval/metrics.h"
#include "eval/recommender.h"

namespace tcss {

/// Configuration of the paper's evaluation protocol (Section V-C): for
/// each test entry (i, j, k) sample `num_negatives` random POIs, score the
/// resulting num_negatives+1 candidates, and rank the target.
struct RankingProtocolOptions {
  size_t num_negatives = 100;
  size_t top_k = 10;
  uint64_t seed = 777;
  /// If true, sampled negatives exclude POIs the user visited in the train
  /// tensor at the same time bin (slightly cleaner; the paper samples
  /// "100 random POIs" so the default is false).
  bool exclude_observed = false;
};

/// Evaluates a scorer over test cells. MRR follows the paper: reciprocal
/// ranks are first averaged within each user (along the time dimension),
/// then across users. Hit@K is the fraction of test entries whose target
/// mid-rank is <= K. NDCG@K and Precision@K (single-relevant-item forms)
/// are reported as per-entry averages.
RankingMetrics EvaluateRanking(const ScoreFn& score, size_t num_pois,
                               const std::vector<TensorCell>& test_cells,
                               const RankingProtocolOptions& opts,
                               const SparseTensor* train = nullptr);

/// Convenience overload for a fitted Recommender.
RankingMetrics EvaluateRanking(const Recommender& model, size_t num_pois,
                               const std::vector<TensorCell>& test_cells,
                               const RankingProtocolOptions& opts,
                               const SparseTensor* train = nullptr);

}  // namespace tcss

#endif  // TCSS_EVAL_RANKING_PROTOCOL_H_
