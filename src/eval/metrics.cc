#include "eval/metrics.h"

#include <cmath>

namespace tcss {

double RmseAgainstConstant(const ScoreFn& score,
                           const std::vector<TensorCell>& cells,
                           double target) {
  if (cells.empty()) return 0.0;
  double s = 0.0;
  for (const auto& c : cells) {
    const double d = score(c.i, c.j, c.k) - target;
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(cells.size()));
}

double NdcgAtK(double rank, size_t k) {
  if (rank > static_cast<double>(k)) return 0.0;
  return 1.0 / std::log2(rank + 1.0);
}

double PrecisionAtK(double rank, size_t k) {
  if (k == 0 || rank > static_cast<double>(k)) return 0.0;
  return 1.0 / static_cast<double>(k);
}

double MidRank(double target_score, const std::vector<double>& others) {
  size_t greater = 0;
  size_t equal = 0;
  for (double s : others) {
    if (s > target_score) {
      ++greater;
    } else if (s == target_score) {
      ++equal;
    }
  }
  return 1.0 + static_cast<double>(greater) +
         static_cast<double>(equal) / 2.0;
}

}  // namespace tcss
