#include "stream/delta_buffer.h"

#include <algorithm>

#include "common/strings.h"
#include "data/csv_io.h"

namespace tcss {

DeltaBuffer::DeltaBuffer(size_t num_users, size_t num_pois)
    : num_users_(num_users), num_pois_(num_pois) {}

Result<uint64_t> DeltaBuffer::Append(uint32_t user, uint32_t poi,
                                     int64_t timestamp) {
  std::lock_guard<std::mutex> lock(mu_);
  if (user >= num_users_) {
    ++rejected_;
    return Status::OutOfRange(
        StrFormat("ingest user %u >= %zu", user, num_users_));
  }
  if (poi >= num_pois_) {
    ++rejected_;
    return Status::OutOfRange(
        StrFormat("ingest poi %u >= %zu", poi, num_pois_));
  }
  if (timestamp < kMinCheckinTimestamp || timestamp > kMaxCheckinTimestamp) {
    ++rejected_;
    return Status::OutOfRange("ingest timestamp outside calendar range");
  }
  events_.push_back({user, poi, timestamp});
  return ++accepted_;
}

std::vector<CheckInEvent> DeltaBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t DeltaBuffer::DropBin(uint32_t bin, TimeGranularity g) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t before = events_.size();
  events_.erase(std::remove_if(events_.begin(), events_.end(),
                               [&](const CheckInEvent& e) {
                                 return TimeBin(e.timestamp, g) == bin;
                               }),
                events_.end());
  return before - events_.size();
}

size_t DeltaBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t DeltaBuffer::accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accepted_;
}

uint64_t DeltaBuffer::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

}  // namespace tcss
