#include "stream/streaming_engine.h"

#include <cmath>

#include "common/stopwatch.h"
#include "core/model_io.h"
#include "data/tensor_builder.h"

namespace tcss {

StreamingEngine::StreamingEngine(const Dataset& data, ModelWatcher* watcher,
                                 const Options& opts)
    : data_(&data),
      watcher_(watcher),
      opts_(opts),
      env_(opts.env != nullptr ? opts.env : Env::Default()),
      delta_(data.num_users(), data.num_pois()),
      fold_in_(opts.fold_in),
      roller_(NumBins(opts.granularity)),
      refiner_(opts.refiner),
      base_poi_counts_(data.num_pois(), 0),
      delta_poi_counts_(data.num_pois(), 0) {
  for (const CheckInEvent& e : data.checkins()) {
    if (e.poi < base_poi_counts_.size()) {
      ++base_poi_counts_[e.poi];
      ++base_total_;
    }
  }
  obs::MetricRegistry* reg =
      opts_.metrics != nullptr ? opts_.metrics : obs::MetricRegistry::Global();
  ingested_counter_ = reg->GetCounter("stream.ingested");
  rejected_counter_ = reg->GetCounter("stream.rejected");
  folded_counter_ = reg->GetCounter("stream.folded");
  rollover_counter_ = reg->GetCounter("stream.rollovers");
  refine_counter_ = reg->GetCounter("stream.refines");
  refine_ms_hist_ = reg->GetHistogram("stream.refine_ms");
  drift_gauge_ = reg->GetGauge("stream.drift");
}

Result<uint64_t> StreamingEngine::Ingest(const ServeRequest& req) {
  if (req.verb != ServeVerb::kIngest) {
    return Status::InvalidArgument("StreamingEngine::Ingest needs an ingest request");
  }
  auto seq = delta_.Append(req.user, req.poi, req.timestamp);
  if (!seq.ok()) {
    rejected_counter_->Add(1);
    return seq;
  }
  ingested_counter_->Add(1);
  if (fold_in_.Append(req.user, req.poi,
                      TimeBin(req.timestamp, opts_.granularity))) {
    ++folded_;
    folded_counter_->Add(1);
  }
  ++delta_poi_counts_[req.poi];
  ++delta_total_;
  const uint64_t accepted = seq.value();
  // The drift gauge is O(J) to evaluate, so refresh it on a stride rather
  // than per event (and at every publish point below).
  if ((accepted & 0xFF) == 0) UpdateDriftGauge();
  if (opts_.rollover_every > 0 && accepted % opts_.rollover_every == 0) {
    TCSS_RETURN_IF_ERROR(Rollover());
  }
  if (opts_.refine_every > 0 && accepted % opts_.refine_every == 0) {
    TCSS_RETURN_IF_ERROR(Refine());
  }
  return accepted;
}

Status StreamingEngine::Rollover() {
  if (opts_.model_path.empty()) {
    return Status::FailedPrecondition("rollover needs a model publish path");
  }
  std::shared_ptr<const FactorModel> live = watcher_->current();
  if (live == nullptr) {
    return Status::FailedPrecondition("rollover needs a live model");
  }
  SliceRoller::Rolled rolled = roller_.Roll(*live);
  TCSS_RETURN_IF_ERROR(SaveFactorModel(rolled.model, opts_.model_path, env_));
  delta_.DropBin(rolled.retired_bin, opts_.granularity);
  fold_in_.RetireBin(rolled.retired_bin);
  // Rebuild the delta histogram from the surviving events (DropBin removed
  // an unknown per-POI subset).
  std::fill(delta_poi_counts_.begin(), delta_poi_counts_.end(), 0);
  delta_total_ = 0;
  for (const CheckInEvent& e : delta_.Snapshot()) {
    ++delta_poi_counts_[e.poi];
    ++delta_total_;
  }
  watcher_->Poll();
  rollover_counter_->Add(1);
  UpdateDriftGauge();
  return Status::OK();
}

Status StreamingEngine::Refine() {
  if (opts_.model_path.empty()) {
    return Status::FailedPrecondition("refine needs a model publish path");
  }
  Stopwatch timer;
  std::vector<CheckInEvent> merged = data_->checkins();
  const std::vector<CheckInEvent> delta = delta_.Snapshot();
  merged.insert(merged.end(), delta.begin(), delta.end());
  auto tensor = BuildCheckinTensor(*data_, merged, opts_.granularity);
  TCSS_RETURN_IF_ERROR(tensor.status());
  std::shared_ptr<const FactorModel> live = watcher_->current();
  auto refined = refiner_.Refine(*data_, tensor.value(), live.get());
  TCSS_RETURN_IF_ERROR(refined.status());
  TCSS_RETURN_IF_ERROR(SaveFactorModel(refined.value(), opts_.model_path, env_));
  watcher_->Poll();
  ++refinements_;
  refine_counter_->Add(1);
  refine_ms_hist_->Record(timer.ElapsedMillis());
  UpdateDriftGauge();
  return Status::OK();
}

double StreamingEngine::DriftScore() const {
  if (base_total_ == 0 || delta_total_ == 0) return 0.0;
  double l1 = 0.0;
  for (size_t j = 0; j < base_poi_counts_.size(); ++j) {
    const double p =
        static_cast<double>(base_poi_counts_[j]) / static_cast<double>(base_total_);
    const double q = static_cast<double>(delta_poi_counts_[j]) /
                     static_cast<double>(delta_total_);
    l1 += std::fabs(p - q);
  }
  return 0.5 * l1;
}

void StreamingEngine::UpdateDriftGauge() { drift_gauge_->Set(DriftScore()); }

StreamingEngine::Stats StreamingEngine::stats() const {
  Stats s;
  s.accepted = delta_.accepted();
  s.rejected = delta_.rejected();
  s.folded = folded_;
  s.rollovers = roller_.rollovers();
  s.refinements = refinements_;
  return s;
}

}  // namespace tcss
