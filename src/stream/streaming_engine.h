#ifndef TCSS_STREAM_STREAMING_ENGINE_H_
#define TCSS_STREAM_STREAMING_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "core/incremental_fold_in.h"
#include "data/dataset.h"
#include "data/time_binning.h"
#include "obs/metrics.h"
#include "serve/model_watcher.h"
#include "serve/request.h"
#include "stream/delta_buffer.h"
#include "stream/refiner.h"
#include "stream/slice_roller.h"

namespace tcss {

/// Online ingestion engine (DESIGN.md §14): the object behind the serving
/// front-end's `ingest` verb. It owns the three freshness mechanisms and
/// keys them off one counter of accepted check-ins:
///
///   every ingest      -> DeltaBuffer append + one IncrementalFoldIn
///                        rank-1 update (the user's next query reflects
///                        the check-in immediately);
///   every Nth ingest  -> SliceRoller retires the oldest time slice and
///                        publishes a model whose retiring U3 row is
///                        warm-started from its cyclic neighbours;
///   every Mth ingest  -> BackgroundRefiner runs a bounded number of full
///                        epochs over the delta-merged tensor and
///                        publishes the result.
///
/// Publishing always goes through SaveFactorModel + ModelWatcher::Poll()
/// — the same validated hot-swap path an operator's offline retrain uses,
/// so a crash mid-publish leaves the previous model serving and a corrupt
/// write is rejected, never swapped.
///
/// Threading: like the RecommendService, the engine is single-writer — the
/// serving dispatcher is the only thread that may call Ingest/Rollover/
/// Refine (the server routes ingest frames onto the dispatcher). The
/// DeltaBuffer itself is additionally thread-safe so tests and external
/// refinement drivers may Snapshot() concurrently.
class StreamingEngine {
 public:
  struct Options {
    FoldInOptions fold_in;
    TimeGranularity granularity = TimeGranularity::kMonthOfYear;

    /// Accepted ingests between automatic rollovers / refinements;
    /// 0 disables the automatic trigger (Rollover()/Refine() still work
    /// when called explicitly).
    uint64_t rollover_every = 0;
    uint64_t refine_every = 0;

    RefinerOptions refiner;

    /// Where rolled/refined models are published (normally the
    /// ModelWatcher's own path). Empty string: Rollover/Refine fail with
    /// FailedPrecondition instead of publishing.
    std::string model_path;

    obs::MetricRegistry* metrics = nullptr;  ///< null: process-global
    Env* env = nullptr;                      ///< null: Env::Default()
  };

  /// `data` and `watcher` must outlive the engine. `watcher` may have no
  /// live model yet; ingestion works regardless (fold-in binds lazily).
  StreamingEngine(const Dataset& data, ModelWatcher* watcher,
                  const Options& opts);

  /// The fold-in tier to hand to RecommendService::Options::incremental.
  IncrementalFoldIn* fold_in() { return &fold_in_; }
  DeltaBuffer* delta() { return &delta_; }

  /// One validated check-in (req.verb must be kIngest). Appends to the
  /// delta buffer, folds the cell into the user's incremental sums, and
  /// fires any due automatic rollover/refinement. Returns the accept
  /// sequence number; OutOfRange for ids/timestamps the buffer rejects.
  Result<uint64_t> Ingest(const ServeRequest& req);

  /// Retires the next time slice: publishes a copy of the current model
  /// whose retiring U3 row is the mean of its cyclic neighbours, then
  /// drops that bin's events from the delta buffer and the fold-in state.
  /// FailedPrecondition when no model is live or no model_path is set.
  Status Rollover();

  /// Bounded refinement over the delta-merged tensor (base check-ins +
  /// delta snapshot, deduplicated by the tensor builder — the merge is
  /// canonical no matter how the delta arrived), warm-started from the
  /// live model, published through the hot-swap path.
  Status Refine();

  /// Total-variation distance (0.5 * L1) between the POI visit
  /// distribution of the base dataset and of the delta buffer; 0 when
  /// either side is empty. The drift signal exported as `stream.drift`.
  double DriftScore() const;

  struct Stats {
    uint64_t accepted = 0;   ///< delta appends that validated
    uint64_t rejected = 0;   ///< appends refused by validation
    uint64_t folded = 0;     ///< new cells folded into user sums
    uint64_t rollovers = 0;
    uint64_t refinements = 0;
  };
  Stats stats() const;

 private:
  void UpdateDriftGauge();

  const Dataset* data_;
  ModelWatcher* watcher_;
  Options opts_;
  Env* env_;

  DeltaBuffer delta_;
  IncrementalFoldIn fold_in_;
  SliceRoller roller_;
  BackgroundRefiner refiner_;

  uint64_t folded_ = 0;
  uint64_t refinements_ = 0;

  /// POI visit histograms for DriftScore: base is fixed at construction,
  /// delta is maintained per accepted ingest (and rebuilt after DropBin).
  std::vector<uint64_t> base_poi_counts_;
  uint64_t base_total_ = 0;
  std::vector<uint64_t> delta_poi_counts_;
  uint64_t delta_total_ = 0;

  obs::Counter* ingested_counter_;
  obs::Counter* rejected_counter_;
  obs::Counter* folded_counter_;
  obs::Counter* rollover_counter_;
  obs::Counter* refine_counter_;
  obs::Histogram* refine_ms_hist_;
  obs::Gauge* drift_gauge_;
};

}  // namespace tcss

#endif  // TCSS_STREAM_STREAMING_ENGINE_H_
