#include "stream/refiner.h"

namespace tcss {

Result<FactorModel> BackgroundRefiner::Refine(const Dataset& data,
                                              const SparseTensor& merged,
                                              const FactorModel* warm) {
  TcssTrainer trainer(data, merged, opts_.config);
  TrainOptions train_opts;
  train_opts.checkpoints = opts_.checkpoints;
  train_opts.resume = opts_.resume;
  train_opts.stop = opts_.stop;
  const size_t r = opts_.config.rank;
  if (warm != nullptr && warm->rank() == r &&
      warm->u1.rows() == merged.dim_i() && warm->u2.rows() == merged.dim_j() &&
      warm->u3.rows() == merged.dim_k()) {
    train_opts.warm_start = warm;
  }
  auto refined = trainer.Train(train_opts, nullptr);
  if (refined.ok()) ++refinements_;
  return refined;
}

}  // namespace tcss
