#ifndef TCSS_STREAM_SLICE_ROLLER_H_
#define TCSS_STREAM_SLICE_ROLLER_H_

#include <cstdint>

#include "core/factor_model.h"

namespace tcss {

/// Time-slice rollover (DESIGN.md §14). The paper's time mode is a fixed
/// cyclic binning (12 months / 53 weeks / 24 hours); under continuous
/// traffic the bin about to be refilled with fresh data is the *oldest*
/// slice of the cycle. Rolling it forward means: forget what the factors
/// learned about that bin and warm-start its U3 row from its cyclic
/// neighbours — the temporal-smoothing prior of TATD (arXiv:2012.08855):
/// adjacent time slices share structure, so the mean of the two
/// neighbouring rows is a far better initialization for the refilling
/// slice than either zeros or its own stale values.
///
/// The roller is intentionally serial and allocation-light: a rollover is
/// a copy of the model plus one O(r) row rewrite, so its output is
/// bit-identical at any thread count (locked in by stream_test).
class SliceRoller {
 public:
  explicit SliceRoller(size_t num_bins);

  struct Rolled {
    uint32_t retired_bin = 0;
    FactorModel model;
  };

  /// Retires the next bin in cycle order: returns a copy of `base` whose
  /// U3 row for that bin is 0.5 * (U3[prev] + U3[next]) (cyclic
  /// neighbours), and advances the retire pointer. With fewer than three
  /// bins there are no distinct neighbours and the row is left unchanged.
  Rolled Roll(const FactorModel& base);

  /// The bin the next Roll() will retire.
  uint32_t next_retired() const { return next_; }
  uint64_t rollovers() const { return rollovers_; }

 private:
  const size_t num_bins_;
  uint32_t next_ = 0;
  uint64_t rollovers_ = 0;
};

}  // namespace tcss

#endif  // TCSS_STREAM_SLICE_ROLLER_H_
