#ifndef TCSS_STREAM_REFINER_H_
#define TCSS_STREAM_REFINER_H_

#include <atomic>

#include "common/status.h"
#include "core/checkpoint.h"
#include "core/tcss_config.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Bounded background refinement (DESIGN.md §14). A streaming system's
/// fold-in tier keeps new users fresh but never touches U2/U3/h; the
/// refiner closes that gap by running a *budgeted* number of full
/// training epochs over the delta-merged tensor, warm-started from the
/// currently served factors so a handful of epochs is enough to absorb
/// the delta instead of relearning from scratch.
struct RefinerOptions {
  /// Full training configuration; `config.epochs` IS the refinement
  /// budget (the CLI's --refine-budget). Everything else — rank, loss
  /// mode, learning rate, lambda — matches the offline trainer so a
  /// refined model is a valid TCSS model, just a few epochs newer.
  TcssConfig config;

  /// Crash safety rides the trainer's existing checkpoint machinery: a
  /// killed refinement resumes from its last snapshot and replays the
  /// exact floating-point trajectory (kill-and-resume bit-identity is
  /// locked in by stream_test). Not owned; null disables.
  CheckpointManager* checkpoints = nullptr;
  bool resume = false;

  /// Cooperative cancellation, forwarded to TrainOptions::stop.
  const std::atomic<bool>* stop = nullptr;
};

class BackgroundRefiner {
 public:
  explicit BackgroundRefiner(const RefinerOptions& opts) : opts_(opts) {}

  /// Runs opts_.config.epochs epochs on `merged` (the serving tensor plus
  /// the delta buffer), warm-started from `warm` when its shape matches
  /// the tensor and rank (a mismatched or null warm model falls back to
  /// cold initialization — e.g. after the catalogue grew). Returns the
  /// refined model; the caller publishes it via SaveFactorModel + the
  /// ModelWatcher hot-swap path.
  Result<FactorModel> Refine(const Dataset& data, const SparseTensor& merged,
                             const FactorModel* warm);

  uint64_t refinements() const { return refinements_; }

 private:
  RefinerOptions opts_;
  uint64_t refinements_ = 0;
};

}  // namespace tcss

#endif  // TCSS_STREAM_REFINER_H_
