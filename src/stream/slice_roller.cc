#include "stream/slice_roller.h"

namespace tcss {

SliceRoller::SliceRoller(size_t num_bins) : num_bins_(num_bins) {}

SliceRoller::Rolled SliceRoller::Roll(const FactorModel& base) {
  Rolled out;
  out.retired_bin = next_;
  out.model = base;
  const size_t K = out.model.u3.rows();
  const size_t r = out.model.u3.cols();
  if (num_bins_ >= 3 && next_ < K) {
    const uint32_t prev =
        static_cast<uint32_t>((next_ + num_bins_ - 1) % num_bins_);
    const uint32_t succ = static_cast<uint32_t>((next_ + 1) % num_bins_);
    if (prev < K && succ < K) {
      const double* p = base.u3.row(prev);
      const double* n = base.u3.row(succ);
      double* row = out.model.u3.row(next_);
      for (size_t t = 0; t < r; ++t) row[t] = 0.5 * (p[t] + n[t]);
    }
  }
  if (num_bins_ > 0) next_ = static_cast<uint32_t>((next_ + 1) % num_bins_);
  ++rollovers_;
  return out;
}

}  // namespace tcss
