#ifndef TCSS_STREAM_DELTA_BUFFER_H_
#define TCSS_STREAM_DELTA_BUFFER_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/time_binning.h"

namespace tcss {

/// Validated append-only buffer of streamed check-ins (DESIGN.md §14).
/// Everything that reaches this buffer has passed the same hardening as
/// the CSV loader: ids are bounds-checked against the serving dataset and
/// timestamps against the calendar range, so the delta-merge and the
/// incremental fold-in never see a forged or out-of-range event — the
/// wire path upstream (CRC frames + ParseRequestLine's exact integer
/// parses) rejects everything else before it gets here.
///
/// Thread-safe: the serving dispatcher appends while a background
/// refinement snapshots. Accepted events carry a monotone sequence
/// number (1-based), the reconciliation handle the `ingested seq=<n>`
/// wire ack exposes to clients.
class DeltaBuffer {
 public:
  DeltaBuffer(size_t num_users, size_t num_pois);

  /// Appends one validated check-in; returns its accept sequence number.
  /// OutOfRange for ids beyond the serving dataset or timestamps outside
  /// [kMinCheckinTimestamp, kMaxCheckinTimestamp] (rejects are counted,
  /// never stored).
  Result<uint64_t> Append(uint32_t user, uint32_t poi, int64_t timestamp);

  /// Copy of the buffered events, in accept order.
  std::vector<CheckInEvent> Snapshot() const;

  /// Drops every buffered event whose TimeBin(timestamp, g) equals `bin`
  /// (slice retirement). Returns the number dropped; accept order of the
  /// survivors is preserved.
  size_t DropBin(uint32_t bin, TimeGranularity g);

  size_t size() const;
  uint64_t accepted() const;  ///< total appends that validated (== last seq)
  uint64_t rejected() const;

 private:
  const size_t num_users_;
  const size_t num_pois_;
  mutable std::mutex mu_;
  std::vector<CheckInEvent> events_;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace tcss

#endif  // TCSS_STREAM_DELTA_BUFFER_H_
