#include "tensor/dense_tensor.h"

#include <cmath>

#include "common/logging.h"

namespace tcss {

DenseTensor DenseTensor::FromSparse(const SparseTensor& sp) {
  DenseTensor t(sp.dim_i(), sp.dim_j(), sp.dim_k());
  for (const auto& e : sp.entries()) t.at(e.i, e.j, e.k) = e.value;
  return t;
}

double DenseTensor::FrobeniusDistance(const DenseTensor& other) const {
  TCSS_CHECK(dim_i_ == other.dim_i_ && dim_j_ == other.dim_j_ &&
             dim_k_ == other.dim_k_);
  double s = 0.0;
  for (size_t idx = 0; idx < data_.size(); ++idx) {
    double d = data_[idx] - other.data_[idx];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace tcss
