#ifndef TCSS_TENSOR_MATRICIZATION_H_
#define TCSS_TENSOR_MATRICIZATION_H_

#include "linalg/matrix.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Dense mode-n matricization (unfolding) of a sparse tensor, mainly for
/// tests and small reference computations. Layouts follow the paper's
/// Section IV-A:
///   mode 0: A in R^{I x (J*K)}, A[i, j*K + k]         = X[i,j,k]
///   mode 1: B in R^{J x (I*K)}, B[j, i*K + k]         = X[i,j,k]
///   mode 2: C in R^{K x (I*J)}, C[k, i*J + j]         = X[i,j,k]
Matrix Unfold(const SparseTensor& x, int mode);

/// Row index of entry (i,j,k) in the mode-n unfolding.
size_t UnfoldRow(const TensorEntry& e, int mode);

/// Column index of entry (i,j,k) in the mode-n unfolding of tensor `x`.
size_t UnfoldCol(const SparseTensor& x, const TensorEntry& e, int mode);

}  // namespace tcss

#endif  // TCSS_TENSOR_MATRICIZATION_H_
