#ifndef TCSS_TENSOR_GRAM_OPERATOR_H_
#define TCSS_TENSOR_GRAM_OPERATOR_H_

#include <cstdint>
#include <vector>

#include "linalg/linear_operator.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Implicit symmetric operator G = A A^T (optionally with the diagonal
/// zeroed, per the spectral initialization of the paper, Eq 4), where A is
/// the mode-n unfolding of a sparse tensor. Never materializes A or G:
/// each Apply is O(nnz).
///
/// Construction groups the nonzeros by unfolding column; Apply computes
///   y = A (A^T x)        [then subtracts diag(G) ⊙ x if zero_diagonal]
/// by one pass over the column groups.
class ModeGramOperator : public LinearOperator {
 public:
  /// `x` must be finalized and must outlive the operator.
  ModeGramOperator(const SparseTensor& x, int mode, bool zero_diagonal);

  size_t Dim() const override { return dim_; }
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override;

  /// diag(A A^T), exposed for tests.
  const std::vector<double>& Diagonal() const { return diag_; }

 private:
  size_t dim_;
  bool zero_diagonal_;
  // Nonzeros sorted by unfolding column; col_start_ delimits groups.
  std::vector<uint32_t> row_;      // unfolding row of each nonzero
  std::vector<double> val_;        // value of each nonzero
  std::vector<size_t> col_start_;  // group g spans [col_start_[g], col_start_[g+1])
  std::vector<double> diag_;
};

}  // namespace tcss

#endif  // TCSS_TENSOR_GRAM_OPERATOR_H_
