#include "tensor/gram_operator.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "tensor/matricization.h"

namespace tcss {

ModeGramOperator::ModeGramOperator(const SparseTensor& x, int mode,
                                   bool zero_diagonal)
    : dim_(x.dim(mode)), zero_diagonal_(zero_diagonal) {
  TCSS_CHECK(x.finalized()) << "ModeGramOperator requires a finalized tensor";
  const auto& entries = x.entries();
  const size_t n = entries.size();

  // Sort nonzero ids by unfolding column to form column groups.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<size_t> col(n);
  for (size_t t = 0; t < n; ++t) col[t] = UnfoldCol(x, entries[t], mode);
  std::sort(order.begin(), order.end(),
            [&col](size_t a, size_t b) { return col[a] < col[b]; });

  row_.resize(n);
  val_.resize(n);
  col_start_.clear();
  diag_.assign(dim_, 0.0);
  size_t prev_col = static_cast<size_t>(-1);
  for (size_t t = 0; t < n; ++t) {
    const TensorEntry& e = entries[order[t]];
    if (col[order[t]] != prev_col) {
      col_start_.push_back(t);
      prev_col = col[order[t]];
    }
    row_[t] = static_cast<uint32_t>(UnfoldRow(e, mode));
    val_[t] = e.value;
    diag_[row_[t]] += e.value * e.value;
  }
  col_start_.push_back(n);
}

void ModeGramOperator::Apply(const std::vector<double>& x,
                             std::vector<double>* y) const {
  TCSS_CHECK(x.size() == dim_);
  y->assign(dim_, 0.0);
  // For each unfolding column c with nonzeros {(row_t, val_t)}:
  //   s_c = sum_t val_t * x[row_t]   (this is (A^T x)_c)
  //   y[row_t] += val_t * s_c        (accumulating A (A^T x))
  for (size_t g = 0; g + 1 < col_start_.size(); ++g) {
    const size_t b = col_start_[g];
    const size_t e = col_start_[g + 1];
    double s = 0.0;
    for (size_t t = b; t < e; ++t) s += val_[t] * x[row_[t]];
    if (s == 0.0) continue;
    for (size_t t = b; t < e; ++t) (*y)[row_[t]] += val_[t] * s;
  }
  if (zero_diagonal_) {
    for (size_t i = 0; i < dim_; ++i) (*y)[i] -= diag_[i] * x[i];
  }
}

}  // namespace tcss
