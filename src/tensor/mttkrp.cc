#include "tensor/mttkrp.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "tensor/csf_tensor.h"
#include "tensor/sparse_kernels.h"

namespace tcss {

namespace {

/// Minimum nnz * rank before going parallel; the serial and parallel paths
/// add the same values in the same order per output element, so the
/// threshold cannot change results.
constexpr size_t kParallelWorkThreshold = 1u << 14;

/// Target shard count; the decomposition below depends only on the tensor,
/// never on the thread count.
constexpr size_t kTargetShards = 16;

}  // namespace

Matrix Mttkrp(const SparseTensor& x, const Matrix factors[3], int mode) {
  if (x.finalized()) {
    return SparseKernels::Mttkrp(CsfTensor(x), factors, mode);
  }
  return MttkrpCoo(x, factors, mode);
}

Matrix MttkrpCoo(const SparseTensor& x, const Matrix factors[3], int mode) {
  TCSS_CHECK(mode >= 0 && mode <= 2);
  const size_t r = factors[(mode + 1) % 3].cols();
  TCSS_CHECK(factors[(mode + 2) % 3].cols() == r);
  Matrix out(x.dim(mode), r);
  const std::vector<TensorEntry>& entries = x.entries();
  const size_t nnz = entries.size();
  const Matrix& fa = factors[(mode + 1) % 3];
  const Matrix& fb = factors[(mode + 2) % 3];

  auto accumulate = [&](const TensorEntry& e) {
    const uint32_t idx[3] = {e.i, e.j, e.k};
    const double* a = fa.row(idx[(mode + 1) % 3]);
    const double* b = fb.row(idx[(mode + 2) % 3]);
    double* dst = out.row(idx[mode]);
    const double v = e.value;
    for (size_t t = 0; t < r; ++t) dst[t] += v * a[t] * b[t];
  };

  if (nnz * r < kParallelWorkThreshold || GlobalThreads() == 1) {
    for (const TensorEntry& e : entries) accumulate(e);
    return out;
  }

  if (mode == 0 && x.finalized()) {
    // Entries are sorted by (i, j, k), so contiguous entry ranges whose
    // boundaries are snapped forward to the next row start write disjoint
    // output rows. Snapping is monotone, so bounds stay ordered even when
    // one row spans several grains (that just yields empty shards).
    const size_t grain = std::max<size_t>(1, (nnz + kTargetShards - 1) /
                                                 kTargetShards);
    const size_t shards = (nnz + grain - 1) / grain;
    std::vector<size_t> bounds(shards + 1, nnz);
    bounds[0] = 0;
    for (size_t s = 1; s < shards; ++s) {
      size_t p = s * grain;
      while (p < nnz && entries[p].i == entries[p - 1].i) ++p;
      bounds[s] = std::max(bounds[s - 1], p);
    }
    ParallelFor(shards, 1, [&](size_t s, size_t, size_t) {
      for (size_t e = bounds[s]; e < bounds[s + 1]; ++e)
        accumulate(entries[e]);
    });
    return out;
  }

  // Modes 1/2 (and unfinalized mode 0): shard over output rows. Entries
  // are pre-bucketed by output-row shard with a counting pass + stable
  // scatter, so each shard touches exactly its own entries — O(nnz)
  // total instead of the old O(shards * nnz) scan-and-discard. The
  // scatter walks entries in ascending index, so within a shard (and
  // hence per output row) contributions keep original entry order and
  // results stay bitwise-identical to the serial loop. The bucketing is
  // a pure function of the tensor (shard = row / grain mirrors the
  // ParallelFor decomposition), never of the thread count.
  const size_t rows = out.rows();
  const size_t grain =
      std::max<size_t>(1, (rows + kTargetShards - 1) / kTargetShards);
  const size_t shards = ParallelForShards(rows, grain);
  std::vector<size_t> slot(shards + 1, 0);
  auto shard_of = [&](const TensorEntry& e) {
    const uint32_t idx[3] = {e.i, e.j, e.k};
    return size_t{idx[mode]} / grain;
  };
  for (const TensorEntry& e : entries) ++slot[shard_of(e) + 1];
  for (size_t s = 0; s < shards; ++s) slot[s + 1] += slot[s];
  std::vector<size_t> order(nnz);
  {
    std::vector<size_t> cursor(slot.begin(), slot.end() - 1);
    for (size_t e = 0; e < nnz; ++e) order[cursor[shard_of(entries[e])]++] = e;
  }
  ParallelFor(rows, grain, [&](size_t, size_t, size_t s) {
    for (size_t p = slot[s]; p < slot[s + 1]; ++p) accumulate(entries[order[p]]);
  });
  return out;
}

}  // namespace tcss
