#include "tensor/mttkrp.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace tcss {

namespace {

/// Minimum nnz * rank before going parallel; the serial and parallel paths
/// add the same values in the same order per output element, so the
/// threshold cannot change results.
constexpr size_t kParallelWorkThreshold = 1u << 14;

/// Target shard count; the decomposition below depends only on the tensor,
/// never on the thread count.
constexpr size_t kTargetShards = 16;

}  // namespace

Matrix Mttkrp(const SparseTensor& x, const Matrix factors[3], int mode) {
  TCSS_CHECK(mode >= 0 && mode <= 2);
  const size_t r = factors[(mode + 1) % 3].cols();
  TCSS_CHECK(factors[(mode + 2) % 3].cols() == r);
  Matrix out(x.dim(mode), r);
  const std::vector<TensorEntry>& entries = x.entries();
  const size_t nnz = entries.size();
  const Matrix& fa = factors[(mode + 1) % 3];
  const Matrix& fb = factors[(mode + 2) % 3];

  auto accumulate = [&](const TensorEntry& e) {
    const uint32_t idx[3] = {e.i, e.j, e.k};
    const double* a = fa.row(idx[(mode + 1) % 3]);
    const double* b = fb.row(idx[(mode + 2) % 3]);
    double* dst = out.row(idx[mode]);
    const double v = e.value;
    for (size_t t = 0; t < r; ++t) dst[t] += v * a[t] * b[t];
  };

  if (nnz * r < kParallelWorkThreshold || GlobalThreads() == 1) {
    for (const TensorEntry& e : entries) accumulate(e);
    return out;
  }

  if (mode == 0 && x.finalized()) {
    // Entries are sorted by (i, j, k), so contiguous entry ranges whose
    // boundaries are snapped forward to the next row start write disjoint
    // output rows. Snapping is monotone, so bounds stay ordered even when
    // one row spans several grains (that just yields empty shards).
    const size_t grain = std::max<size_t>(1, (nnz + kTargetShards - 1) /
                                                 kTargetShards);
    const size_t shards = (nnz + grain - 1) / grain;
    std::vector<size_t> bounds(shards + 1, nnz);
    bounds[0] = 0;
    for (size_t s = 1; s < shards; ++s) {
      size_t p = s * grain;
      while (p < nnz && entries[p].i == entries[p - 1].i) ++p;
      bounds[s] = std::max(bounds[s - 1], p);
    }
    ParallelFor(shards, 1, [&](size_t s, size_t, size_t) {
      for (size_t e = bounds[s]; e < bounds[s + 1]; ++e)
        accumulate(entries[e]);
    });
    return out;
  }

  // Modes 1/2 (and unfinalized mode 0): shard over output rows; every
  // shard scans all entries and keeps only those landing in its rows, so
  // each output row sees its contributions in original entry order.
  const size_t rows = out.rows();
  const size_t grain =
      std::max<size_t>(1, (rows + kTargetShards - 1) / kTargetShards);
  ParallelFor(rows, grain, [&](size_t begin, size_t end, size_t) {
    for (const TensorEntry& e : entries) {
      const uint32_t idx[3] = {e.i, e.j, e.k};
      const uint32_t row = idx[mode];
      if (row < begin || row >= end) continue;
      accumulate(e);
    }
  });
  return out;
}

}  // namespace tcss
