#include "tensor/mttkrp.h"

#include "common/logging.h"

namespace tcss {

Matrix Mttkrp(const SparseTensor& x, const Matrix factors[3], int mode) {
  TCSS_CHECK(mode >= 0 && mode <= 2);
  const size_t r = factors[(mode + 1) % 3].cols();
  TCSS_CHECK(factors[(mode + 2) % 3].cols() == r);
  Matrix out(x.dim(mode), r);
  for (const auto& e : x.entries()) {
    const uint32_t idx[3] = {e.i, e.j, e.k};
    const double* a = factors[(mode + 1) % 3].row(idx[(mode + 1) % 3]);
    const double* b = factors[(mode + 2) % 3].row(idx[(mode + 2) % 3]);
    double* dst = out.row(idx[mode]);
    const double v = e.value;
    for (size_t t = 0; t < r; ++t) dst[t] += v * a[t] * b[t];
  }
  return out;
}

}  // namespace tcss
