#include "tensor/sparse_tensor.h"

#include <algorithm>

#include "common/strings.h"

namespace tcss {

size_t SparseTensor::dim(int mode) const {
  switch (mode) {
    case 0:
      return dim_i_;
    case 1:
      return dim_j_;
    default:
      return dim_k_;
  }
}

double SparseTensor::NumCells() const {
  return static_cast<double>(dim_i_) * static_cast<double>(dim_j_) *
         static_cast<double>(dim_k_);
}

double SparseTensor::Density() const {
  double cells = NumCells();
  return cells > 0 ? static_cast<double>(nnz()) / cells : 0.0;
}

Status SparseTensor::Add(uint32_t i, uint32_t j, uint32_t k, double value) {
  if (finalized_) {
    return Status::FailedPrecondition("SparseTensor: Add after Finalize");
  }
  if (i >= dim_i_ || j >= dim_j_ || k >= dim_k_) {
    return Status::OutOfRange(
        StrFormat("SparseTensor: (%u,%u,%u) outside %zux%zux%zu", i, j, k,
                  dim_i_, dim_j_, dim_k_));
  }
  entries_.push_back({i, j, k, value});
  return Status::OK();
}

Status SparseTensor::Finalize(bool binary) {
  if (finalized_) {
    return Status::FailedPrecondition("SparseTensor: double Finalize");
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const TensorEntry& a, const TensorEntry& b) {
              if (a.i != b.i) return a.i < b.i;
              if (a.j != b.j) return a.j < b.j;
              return a.k < b.k;
            });
  // Coalesce duplicates in place.
  size_t w = 0;
  for (size_t r = 0; r < entries_.size(); ++r) {
    if (w > 0 && entries_[w - 1].i == entries_[r].i &&
        entries_[w - 1].j == entries_[r].j &&
        entries_[w - 1].k == entries_[r].k) {
      entries_[w - 1].value += entries_[r].value;
    } else {
      entries_[w++] = entries_[r];
    }
  }
  entries_.resize(w);
  if (binary) {
    for (auto& e : entries_) e.value = e.value != 0.0 ? 1.0 : 0.0;
    // Drop explicit zeros that a binary clamp may have produced.
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [](const TensorEntry& e) {
                                    return e.value == 0.0;
                                  }),
                   entries_.end());
  }
  finalized_ = true;
  return Status::OK();
}

double SparseTensor::Get(uint32_t i, uint32_t j, uint32_t k) const {
  TensorEntry probe{i, j, k, 0.0};
  auto it = std::lower_bound(entries_.begin(), entries_.end(), probe,
                             [](const TensorEntry& a, const TensorEntry& b) {
                               if (a.i != b.i) return a.i < b.i;
                               if (a.j != b.j) return a.j < b.j;
                               return a.k < b.k;
                             });
  if (it != entries_.end() && it->i == i && it->j == j && it->k == k) {
    return it->value;
  }
  return 0.0;
}

bool SparseTensor::Contains(uint32_t i, uint32_t j, uint32_t k) const {
  return Get(i, j, k) != 0.0;
}

double SparseTensor::SquaredSum() const {
  double s = 0.0;
  for (const auto& e : entries_) s += e.value * e.value;
  return s;
}

}  // namespace tcss
