#ifndef TCSS_TENSOR_SPARSE_TENSOR_H_
#define TCSS_TENSOR_SPARSE_TENSOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace tcss {

/// One nonzero of an order-3 tensor.
struct TensorEntry {
  uint32_t i;  ///< mode-1 index (user)
  uint32_t j;  ///< mode-2 index (POI)
  uint32_t k;  ///< mode-3 index (time bin)
  double value;

  bool operator==(const TensorEntry& o) const {
    return i == o.i && j == o.j && k == o.k && value == o.value;
  }
};

/// Order-3 sparse tensor in coordinate (COO) format, stored
/// structure-of-arrays and kept sorted lexicographically by (i, j, k).
/// Duplicate coordinates added before Finalize() are coalesced (summed,
/// or clamped to 1 for binary tensors).
///
/// This is the check-in tensor X of the paper: X[i,j,k] = 1 iff user i
/// checked in at POI j during time bin k.
class SparseTensor {
 public:
  SparseTensor() : dim_i_(0), dim_j_(0), dim_k_(0) {}
  SparseTensor(size_t dim_i, size_t dim_j, size_t dim_k)
      : dim_i_(dim_i), dim_j_(dim_j), dim_k_(dim_k) {}

  size_t dim(int mode) const;  ///< mode in {0,1,2}
  size_t dim_i() const { return dim_i_; }
  size_t dim_j() const { return dim_j_; }
  size_t dim_k() const { return dim_k_; }

  size_t nnz() const { return entries_.size(); }
  bool finalized() const { return finalized_; }

  /// Total number of cells I*J*K.
  double NumCells() const;
  /// nnz / (I*J*K).
  double Density() const;

  /// Appends an entry; indices must be in range. Invalid after Finalize().
  Status Add(uint32_t i, uint32_t j, uint32_t k, double value = 1.0);

  /// Sorts entries and coalesces duplicates. If `binary`, coalesced values
  /// are clamped to 1 (a user visiting the same POI twice in the same bin
  /// still yields X=1, per the paper's problem formulation).
  Status Finalize(bool binary = true);

  /// Value at (i,j,k); 0 for unobserved cells. Requires finalized().
  double Get(uint32_t i, uint32_t j, uint32_t k) const;

  /// True iff (i,j,k) is an observed (nonzero) entry. Requires finalized().
  bool Contains(uint32_t i, uint32_t j, uint32_t k) const;

  const std::vector<TensorEntry>& entries() const { return entries_; }

  /// Sum of squared values (the constant term of the full MSE loss).
  double SquaredSum() const;

 private:
  size_t dim_i_, dim_j_, dim_k_;
  std::vector<TensorEntry> entries_;
  bool finalized_ = false;
};

}  // namespace tcss

#endif  // TCSS_TENSOR_SPARSE_TENSOR_H_
