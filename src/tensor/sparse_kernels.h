#ifndef TCSS_TENSOR_SPARSE_KERNELS_H_
#define TCSS_TENSOR_SPARSE_KERNELS_H_

#include <vector>

#include "linalg/matrix.h"
#include "tensor/csf_tensor.h"

namespace tcss {

/// Dispatch seam between the algorithm layer (trainer, losses, CP-ALS)
/// and the CSF micro-kernels (linalg/kernel_table.h). Callers hold a
/// CsfTensor (built once per tensor) and get:
///
///  * the kernel build selected by TCSS_SIMD (scalar reference or the
///    vectorized native build — bitwise-interchangeable);
///  * deterministic parallelism: every shard decomposition below is a
///    pure function of the tensor shape, never the thread count, and
///    per-shard accumulators merge in ascending shard order, so results
///    are bit-identical at 1/2/8/... threads.
///
/// Expressed in terms of Matrix (not core/FactorModel) so the tensor
/// layer stays below core in the dependency order.
class SparseKernels {
 public:
  /// MTTKRP over the mode-0-rooted CSF tree, any mode. Same contract as
  /// Mttkrp(coo, factors, mode): `factors` are {U1, U2, U3} and the
  /// `mode` factor itself is not read. Matches the COO result to
  /// <= 1e-12 relative (per-row accumulation order differs: CSF factors
  /// each fiber's contribution through a rank-r accumulator).
  static Matrix Mttkrp(const CsfTensor& x, const Matrix factors[3],
                       int mode);

  /// Observed-entry part of the rewritten loss (Eq 15): returns
  ///   sum_{(i,j,k) in nnz} (w+ - w-) y^2 - 2 w+ X y + w+ X^2
  /// with y = sum_t h_t u1[i,t] u2[j,t] u3[k,t], and when gu1 is
  /// non-null accumulates dL/dU1..3 and dL/dh into gu1/gu2/gu3/gh
  /// (all four must be null or non-null together). The whole-data
  /// (Gram) part of Eq 15 stays with RewrittenLoss.
  static double RewrittenEntryLoss(const CsfTensor& x, const Matrix& u1,
                                   const Matrix& u2, const Matrix& u3,
                                   const std::vector<double>& h,
                                   double w_pos, double w_neg, Matrix* gu1,
                                   Matrix* gu2, Matrix* gu3,
                                   std::vector<double>* gh);
};

}  // namespace tcss

#endif  // TCSS_TENSOR_SPARSE_KERNELS_H_
