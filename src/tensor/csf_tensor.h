#ifndef TCSS_TENSOR_CSF_TENSOR_H_
#define TCSS_TENSOR_CSF_TENSOR_H_

#include <cstdint>
#include <vector>

#include "linalg/kernel_table.h"
#include "linalg/matrix.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Compressed Sparse Fiber (CSF) representation of an order-3 tensor,
/// rooted at mode 0 (SPLATT-style). The tree has three levels:
///   level 0: distinct i values (slices)
///   level 1: distinct (i, j) pairs (fibers), delimited per slice
///   level 2: (k, value) nonzeros, delimited per fiber
///
/// Compared to COO, the mode-0 MTTKRP over CSF reuses the per-fiber
/// partial product U2[j] across the fiber's nonzeros, turning
///   out[i] += v * (U2[j] ⊙ U3[k])   per nonzero
/// into one fused multiply per nonzero plus one rank-r combine per fiber -
/// fewer flops and much better locality on check-in data, where a user
/// visits the same POI in many time bins. See bench_kernel_mttkrp.
/// The single mode-0-rooted tree serves all three MTTKRP modes (see
/// SparseKernels in tensor/sparse_kernels.h): mode 1 scatters the fiber
/// accumulator times U1[i] into out[j], mode 2 reuses the per-fiber
/// product U1[i] ⊙ U2[j] across the fiber's nonzeros.
class CsfTensor {
 public:
  CsfTensor() : dim_i_(0), dim_j_(0), dim_k_(0) {}

  /// Builds from a finalized sparse tensor.
  explicit CsfTensor(const SparseTensor& coo);

  size_t dim_i() const { return dim_i_; }
  size_t dim_j() const { return dim_j_; }
  size_t dim_k() const { return dim_k_; }
  size_t nnz() const { return kk_.size(); }
  size_t num_slices() const { return slice_id_.size(); }
  size_t num_fibers() const { return fiber_id_.size(); }

  /// Mode-0 MTTKRP: out[i, :] = sum_{(i,j,k)} v * (u2[j, :] ⊙ u3[k, :]).
  /// Equivalent to Mttkrp(coo, {.., u2, u3}, 0) but fiber-factored.
  Matrix MttkrpMode0(const Matrix& u2, const Matrix& u3) const;

  /// Sum of squared values.
  double SquaredSum() const;

  /// Raw pointer view consumed by the dispatched micro-kernels
  /// (linalg/kernel_table.h). Valid while this object is alive and
  /// unmodified.
  CsfView view() const {
    CsfView v;
    v.slice_id = slice_id_.data();
    v.slice_start = slice_start_.data();
    v.num_slices = slice_id_.size();
    v.fiber_id = fiber_id_.data();
    v.fiber_start = fiber_start_.data();
    v.kk = kk_.data();
    v.val = val_.data();
    return v;
  }

  // --- Introspection (tests) ---------------------------------------------
  const std::vector<uint32_t>& slice_ids() const { return slice_id_; }
  const std::vector<uint32_t>& fiber_ids() const { return fiber_id_; }
  const std::vector<size_t>& slice_starts() const { return slice_start_; }
  const std::vector<size_t>& fiber_starts() const { return fiber_start_; }
  const std::vector<uint32_t>& kks() const { return kk_; }
  const std::vector<double>& vals() const { return val_; }

 private:
  size_t dim_i_, dim_j_, dim_k_;
  // Level 0: slices.
  std::vector<uint32_t> slice_id_;     // distinct i
  std::vector<size_t> slice_start_;    // into fibers, size slices+1
  // Level 1: fibers.
  std::vector<uint32_t> fiber_id_;     // j of each (i, j) fiber
  std::vector<size_t> fiber_start_;    // into nonzeros, size fibers+1
  // Level 2: nonzeros.
  std::vector<uint32_t> kk_;
  std::vector<double> val_;
};

}  // namespace tcss

#endif  // TCSS_TENSOR_CSF_TENSOR_H_
