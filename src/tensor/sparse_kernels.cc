#include "tensor/sparse_kernels.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "linalg/kernel_table.h"

namespace tcss {

namespace {

/// Same work threshold as the COO Mttkrp: below nnz * r multiply-adds,
/// fork/join overhead dominates and the serial path runs.
constexpr size_t kParallelWorkThreshold = 1u << 14;

/// Target shard count for slice decompositions. The grain is a pure
/// function of the slice count, never the thread count.
constexpr size_t kTargetShards = 16;

size_t SliceGrain(size_t num_slices) {
  return std::max<size_t>(1,
                          (num_slices + kTargetShards - 1) / kTargetShards);
}

using CsfModeKernel = void (*)(const CsfView&, const double*, const double*,
                               size_t, double*, size_t, size_t);

CsfModeKernel ModeKernel(const KernelTable& kern, int mode) {
  switch (mode) {
    case 0:
      return kern.csf_mttkrp_mode0;
    case 1:
      return kern.csf_mttkrp_mode1;
    default:
      return kern.csf_mttkrp_mode2;
  }
}

}  // namespace

Matrix SparseKernels::Mttkrp(const CsfTensor& x, const Matrix factors[3],
                             int mode) {
  TCSS_CHECK(mode >= 0 && mode <= 2);
  const size_t r = factors[(mode + 1) % 3].cols();
  TCSS_CHECK(factors[(mode + 2) % 3].cols() == r);
  const size_t dims[3] = {x.dim_i(), x.dim_j(), x.dim_k()};
  Matrix out(dims[mode], r);
  const CsfView v = x.view();
  const KernelTable& kern = ActiveKernels();
  const CsfModeKernel fn = ModeKernel(kern, mode);
  // The kernels read the two factors in tree order: slices (U1) and the
  // lower levels, so fa/fb are (U2, U3) for mode 0 and (U1, U3) / (U1, U2)
  // for modes 1 / 2.
  const double* fa =
      (mode == 0 ? factors[1] : factors[0]).data();
  const double* fb = (mode == 2 ? factors[1] : factors[2]).data();

  if (x.nnz() * r < kParallelWorkThreshold) {
    fn(v, fa, fb, r, out.data(), 0, v.num_slices);
    return out;
  }

  const size_t grain = SliceGrain(v.num_slices);
  if (mode == 0) {
    // Slice rows are distinct i values: shards write disjoint out rows,
    // so any decomposition is bit-identical to the serial loop.
    if (GlobalThreads() == 1) {
      fn(v, fa, fb, r, out.data(), 0, v.num_slices);
      return out;
    }
    ParallelFor(v.num_slices, grain, [&](size_t begin, size_t end, size_t) {
      fn(v, fa, fb, r, out.data(), begin, end);
    });
    return out;
  }

  // Modes 1/2 scatter into rows shared across slices, so each shard
  // accumulates into its own buffer and the buffers merge in ascending
  // shard order. The decomposition and the merge chain depend only on
  // the tensor, so results are bit-identical at any thread count (this
  // path runs even at 1 thread — taking the serial shortcut instead
  // would change the summation chain with the thread count).
  const size_t shards = ParallelForShards(v.num_slices, grain);
  if (shards <= 1) {
    fn(v, fa, fb, r, out.data(), 0, v.num_slices);
    return out;
  }
  std::vector<Matrix> shard_out(shards, Matrix(dims[mode], r));
  ParallelFor(v.num_slices, grain, [&](size_t begin, size_t end, size_t s) {
    fn(v, fa, fb, r, shard_out[s].data(), begin, end);
  });
  for (size_t s = 0; s < shards; ++s) out.Add(shard_out[s]);
  return out;
}

double SparseKernels::RewrittenEntryLoss(const CsfTensor& x, const Matrix& u1,
                                         const Matrix& u2, const Matrix& u3,
                                         const std::vector<double>& h,
                                         double w_pos, double w_neg,
                                         Matrix* gu1, Matrix* gu2,
                                         Matrix* gu3,
                                         std::vector<double>* gh) {
  const size_t r = h.size();
  if (x.nnz() == 0) return 0.0;
  const CsfView v = x.view();
  const KernelTable& kern = ActiveKernels();
  const bool want_grads = gu1 != nullptr;

  // Shard decomposition mirrors the COO entry loop's sizing (>= ~1024
  // entries per shard, <= 16 shards) but splits on slice boundaries; a
  // pure function of (nnz, num_slices), so the summation structure — and
  // hence every rounding decision — is thread-count invariant.
  const size_t target = std::clamp<size_t>(x.nnz() / 1024, 1, kTargetShards);
  const size_t grain =
      std::max<size_t>(1, (v.num_slices + target - 1) / target);
  const size_t shards = ParallelForShards(v.num_slices, grain);

  if (shards <= 1) {
    return kern.csf_rewritten_entries(
        v, u1.data(), u2.data(), u3.data(), h.data(), r, w_pos, w_neg,
        want_grads ? gu1->data() : nullptr,
        want_grads ? gu2->data() : nullptr,
        want_grads ? gu3->data() : nullptr,
        want_grads ? gh->data() : nullptr, 0, v.num_slices);
  }

  // dL/dU1 rows are slice rows — disjoint across shards — so shards
  // write gu1 in place. dL/dU2, dL/dU3 and dL/dh overlap, so they go
  // through per-shard buffers merged in ascending shard order.
  std::vector<double> shard_loss(shards, 0.0);
  std::vector<Matrix> shard_gu2, shard_gu3;
  std::vector<std::vector<double>> shard_gh;
  if (want_grads) {
    shard_gu2.assign(shards, Matrix(u2.rows(), r));
    shard_gu3.assign(shards, Matrix(u3.rows(), r));
    shard_gh.assign(shards, std::vector<double>(r, 0.0));
  }
  ParallelFor(v.num_slices, grain, [&](size_t begin, size_t end, size_t s) {
    shard_loss[s] = kern.csf_rewritten_entries(
        v, u1.data(), u2.data(), u3.data(), h.data(), r, w_pos, w_neg,
        want_grads ? gu1->data() : nullptr,
        want_grads ? shard_gu2[s].data() : nullptr,
        want_grads ? shard_gu3[s].data() : nullptr,
        want_grads ? shard_gh[s].data() : nullptr, begin, end);
  });
  double loss = 0.0;
  for (size_t s = 0; s < shards; ++s) loss += shard_loss[s];
  if (want_grads) {
    for (size_t s = 0; s < shards; ++s) {
      gu2->Add(shard_gu2[s]);
      gu3->Add(shard_gu3[s]);
      for (size_t t = 0; t < r; ++t) (*gh)[t] += shard_gh[s][t];
    }
  }
  return loss;
}

}  // namespace tcss
