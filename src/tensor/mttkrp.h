#ifndef TCSS_TENSOR_MTTKRP_H_
#define TCSS_TENSOR_MTTKRP_H_

#include "linalg/matrix.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Sparse MTTKRP (matricized tensor times Khatri-Rao product), the core
/// kernel of CP-ALS. For mode 0 it computes
///   M[i, :] = sum_{(i,j,k) in nnz} X[i,j,k] * (B[j, :] ⊙ C[k, :])
/// where B and C are the factor matrices of the other two modes (J x r and
/// K x r). Analogous contractions for modes 1 and 2. O(nnz * r).
///
/// `factors` are the three factor matrices {U1 (I x r), U2 (J x r),
/// U3 (K x r)}; the factor for `mode` itself is not read.
///
/// Finalized tensors route through the CSF path (SparseKernels over a
/// CsfTensor built per call — amortize with SparseKernels::Mttkrp and a
/// long-lived CsfTensor in loops); unfinalized tensors fall back to the
/// COO entry loop. Both are bit-identical across thread counts and match
/// the dense oracle to <= 1e-12 relative.
Matrix Mttkrp(const SparseTensor& x, const Matrix factors[3], int mode);

/// The COO entry-loop implementation (any tensor, finalized or not).
/// Kept callable for differential tests and the coo bench series.
Matrix MttkrpCoo(const SparseTensor& x, const Matrix factors[3], int mode);

}  // namespace tcss

#endif  // TCSS_TENSOR_MTTKRP_H_
