#ifndef TCSS_TENSOR_MTTKRP_H_
#define TCSS_TENSOR_MTTKRP_H_

#include "linalg/matrix.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Sparse MTTKRP (matricized tensor times Khatri-Rao product), the core
/// kernel of CP-ALS. For mode 0 it computes
///   M[i, :] = sum_{(i,j,k) in nnz} X[i,j,k] * (B[j, :] ⊙ C[k, :])
/// where B and C are the factor matrices of the other two modes (J x r and
/// K x r). Analogous contractions for modes 1 and 2. O(nnz * r).
///
/// `factors` are the three factor matrices {U1 (I x r), U2 (J x r),
/// U3 (K x r)}; the factor for `mode` itself is not read.
Matrix Mttkrp(const SparseTensor& x, const Matrix factors[3], int mode);

}  // namespace tcss

#endif  // TCSS_TENSOR_MTTKRP_H_
