#ifndef TCSS_TENSOR_DENSE_TENSOR_H_
#define TCSS_TENSOR_DENSE_TENSOR_H_

#include <cstdint>
#include <vector>

#include "tensor/sparse_tensor.h"

namespace tcss {

/// Dense order-3 tensor. Used by reference implementations and tests;
/// intentionally simple (contiguous, i-major layout).
class DenseTensor {
 public:
  DenseTensor() : dim_i_(0), dim_j_(0), dim_k_(0) {}
  DenseTensor(size_t dim_i, size_t dim_j, size_t dim_k, double fill = 0.0)
      : dim_i_(dim_i), dim_j_(dim_j), dim_k_(dim_k),
        data_(dim_i * dim_j * dim_k, fill) {}

  /// Materializes a sparse tensor (unobserved cells become 0).
  static DenseTensor FromSparse(const SparseTensor& sp);

  size_t dim_i() const { return dim_i_; }
  size_t dim_j() const { return dim_j_; }
  size_t dim_k() const { return dim_k_; }
  size_t size() const { return data_.size(); }

  double& at(size_t i, size_t j, size_t k) {
    return data_[(i * dim_j_ + j) * dim_k_ + k];
  }
  double at(size_t i, size_t j, size_t k) const {
    return data_[(i * dim_j_ + j) * dim_k_ + k];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Frobenius norm of the difference with another tensor of equal shape.
  double FrobeniusDistance(const DenseTensor& other) const;

 private:
  size_t dim_i_, dim_j_, dim_k_;
  std::vector<double> data_;
};

}  // namespace tcss

#endif  // TCSS_TENSOR_DENSE_TENSOR_H_
