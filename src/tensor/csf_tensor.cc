#include "tensor/csf_tensor.h"

#include "common/logging.h"

namespace tcss {

CsfTensor::CsfTensor(const SparseTensor& coo)
    : dim_i_(coo.dim_i()), dim_j_(coo.dim_j()), dim_k_(coo.dim_k()) {
  TCSS_CHECK(coo.finalized()) << "CsfTensor requires a finalized tensor";
  const auto& entries = coo.entries();  // sorted by (i, j, k)
  kk_.reserve(entries.size());
  val_.reserve(entries.size());
  for (size_t t = 0; t < entries.size(); ++t) {
    const TensorEntry& e = entries[t];
    const bool new_slice = slice_id_.empty() || slice_id_.back() != e.i;
    if (new_slice) {
      slice_id_.push_back(e.i);
      slice_start_.push_back(fiber_id_.size());
    }
    // Fiber boundary: first entry of a slice, or j changed.
    if (new_slice || fiber_id_.back() != e.j) {
      fiber_id_.push_back(e.j);
      fiber_start_.push_back(kk_.size());
    }
    kk_.push_back(e.k);
    val_.push_back(e.value);
  }
  slice_start_.push_back(fiber_id_.size());
  fiber_start_.push_back(kk_.size());
}

Matrix CsfTensor::MttkrpMode0(const Matrix& u2, const Matrix& u3) const {
  TCSS_CHECK(u2.rows() == dim_j_ && u3.rows() == dim_k_);
  TCSS_CHECK(u2.cols() == u3.cols());
  const size_t r = u2.cols();
  Matrix out(dim_i_, r);
  std::vector<double> acc(r);
  for (size_t s = 0; s + 1 < slice_start_.size(); ++s) {
    double* dst = out.row(slice_id_[s]);
    for (size_t f = slice_start_[s]; f < slice_start_[s + 1]; ++f) {
      const size_t begin = fiber_start_[f];
      const size_t end = fiber_start_[f + 1];
      const double* b = u2.row(fiber_id_[f]);
      if (end - begin == 1) {
        // Singleton fiber: fuse directly, skipping the accumulator.
        const double v = val_[begin];
        const double* c = u3.row(kk_[begin]);
        for (size_t a = 0; a < r; ++a) dst[a] += v * b[a] * c[a];
        continue;
      }
      // acc = sum_k v * U3[k, :]   (inner accumulation over the fiber)
      std::fill(acc.begin(), acc.end(), 0.0);
      for (size_t t = begin; t < end; ++t) {
        const double v = val_[t];
        const double* c = u3.row(kk_[t]);
        for (size_t a = 0; a < r; ++a) acc[a] += v * c[a];
      }
      // dst += acc ⊙ U2[j, :]      (one combine per fiber)
      for (size_t a = 0; a < r; ++a) dst[a] += acc[a] * b[a];
    }
  }
  return out;
}

double CsfTensor::SquaredSum() const {
  double s = 0.0;
  for (double v : val_) s += v * v;
  return s;
}

}  // namespace tcss
