#include "tensor/matricization.h"

namespace tcss {

size_t UnfoldRow(const TensorEntry& e, int mode) {
  switch (mode) {
    case 0:
      return e.i;
    case 1:
      return e.j;
    default:
      return e.k;
  }
}

size_t UnfoldCol(const SparseTensor& x, const TensorEntry& e, int mode) {
  switch (mode) {
    case 0:
      return static_cast<size_t>(e.j) * x.dim_k() + e.k;
    case 1:
      return static_cast<size_t>(e.i) * x.dim_k() + e.k;
    default:
      return static_cast<size_t>(e.i) * x.dim_j() + e.j;
  }
}

Matrix Unfold(const SparseTensor& x, int mode) {
  size_t rows = x.dim(mode);
  size_t cols = 0;
  switch (mode) {
    case 0:
      cols = x.dim_j() * x.dim_k();
      break;
    case 1:
      cols = x.dim_i() * x.dim_k();
      break;
    default:
      cols = x.dim_i() * x.dim_j();
      break;
  }
  Matrix m(rows, cols);
  for (const auto& e : x.entries()) {
    m(UnfoldRow(e, mode), UnfoldCol(x, e, mode)) = e.value;
  }
  return m;
}

}  // namespace tcss
