#include "nn/optimizer.h"

#include <cmath>

namespace tcss::nn {

Adam::Adam(ParameterStore* store, const Options& opts)
    : store_(store), opts_(opts) {
  m_.reserve(store->size());
  v_.reserve(store->size());
  for (size_t idx = 0; idx < store->size(); ++idx) {
    const Matrix& val = store->at(idx)->value;
    m_.emplace_back(val.rows(), val.cols());
    v_.emplace_back(val.rows(), val.cols());
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(opts_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(opts_.beta2, static_cast<double>(t_));
  for (size_t idx = 0; idx < store_->size(); ++idx) {
    Parameter* p = store_->at(idx);
    Matrix& m = m_[idx];
    Matrix& v = v_[idx];
    double* val = p->value.data();
    double* grd = p->grad.data();
    for (size_t t = 0; t < p->value.size(); ++t) {
      const double g = grd[t];
      m.data()[t] = opts_.beta1 * m.data()[t] + (1.0 - opts_.beta1) * g;
      v.data()[t] = opts_.beta2 * v.data()[t] + (1.0 - opts_.beta2) * g * g;
      const double mhat = m.data()[t] / bc1;
      const double vhat = v.data()[t] / bc2;
      val[t] -= opts_.lr * (mhat / (std::sqrt(vhat) + opts_.eps) +
                            opts_.weight_decay * val[t]);
    }
    p->ZeroGrad();
  }
}

Sgd::Sgd(ParameterStore* store, const Options& opts)
    : store_(store), opts_(opts) {
  velocity_.reserve(store->size());
  for (size_t idx = 0; idx < store->size(); ++idx) {
    const Matrix& val = store->at(idx)->value;
    velocity_.emplace_back(val.rows(), val.cols());
  }
}

void Sgd::Step() {
  for (size_t idx = 0; idx < store_->size(); ++idx) {
    Parameter* p = store_->at(idx);
    Matrix& vel = velocity_[idx];
    double* val = p->value.data();
    double* grd = p->grad.data();
    for (size_t t = 0; t < p->value.size(); ++t) {
      vel.data()[t] = opts_.momentum * vel.data()[t] - opts_.lr * grd[t];
      val[t] += vel.data()[t];
    }
    p->ZeroGrad();
  }
}

}  // namespace tcss::nn
