// Composite and loss ops of the autodiff Tape (kept in a separate TU from
// the structural ops in tape.cc for readability).
#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "nn/tape.h"

namespace tcss::nn {
namespace {
constexpr double kEps = 1e-9;
}  // namespace

Var Tape::ConcatCols(Var a, Var b) {
  const Matrix& va = value(a);
  const Matrix& vb = value(b);
  TCSS_CHECK(va.rows() == vb.rows());
  Matrix out(va.rows(), va.cols() + vb.cols());
  for (size_t i = 0; i < va.rows(); ++i) {
    double* dst = out.row(i);
    const double* sa = va.row(i);
    const double* sb = vb.row(i);
    for (size_t j = 0; j < va.cols(); ++j) dst[j] = sa[j];
    for (size_t j = 0; j < vb.cols(); ++j) dst[va.cols() + j] = sb[j];
  }
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* na = &node(a);
  Node* nb = &node(b);
  n->backward = [n, na, nb]() {
    const size_t ca = na->grad.cols();
    const size_t cb = nb->grad.cols();
    for (size_t i = 0; i < n->grad.rows(); ++i) {
      const double* src = n->grad.row(i);
      double* da = na->grad.row(i);
      double* db = nb->grad.row(i);
      for (size_t j = 0; j < ca; ++j) da[j] += src[j];
      for (size_t j = 0; j < cb; ++j) db[j] += src[ca + j];
    }
  };
  return v;
}

Var Tape::Slice(Var a, size_t r0, size_t c0, size_t rows, size_t cols) {
  const Matrix& va = value(a);
  TCSS_CHECK(r0 + rows <= va.rows() && c0 + cols <= va.cols());
  Matrix out(rows, cols);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j) out(i, j) = va(r0 + i, c0 + j);
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* na = &node(a);
  n->backward = [n, na, r0, c0, rows, cols]() {
    for (size_t i = 0; i < rows; ++i)
      for (size_t j = 0; j < cols; ++j)
        na->grad(r0 + i, c0 + j) += n->grad(i, j);
  };
  return v;
}

Var Tape::MulScalarVar(Var a, Var scalar) {
  const Matrix& vs = value(scalar);
  TCSS_CHECK(vs.rows() == 1 && vs.cols() == 1);
  Matrix out = value(a);
  out.Scale(vs(0, 0));
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* na = &node(a);
  Node* ns = &node(scalar);
  n->backward = [n, na, ns]() {
    const double s = ns->value(0, 0);
    na->grad.Add(n->grad, s);
    double acc = 0.0;
    for (size_t i = 0; i < n->grad.rows(); ++i)
      for (size_t j = 0; j < n->grad.cols(); ++j)
        acc += n->grad(i, j) * na->value(i, j);
    ns->grad(0, 0) += acc;
  };
  return v;
}

Var Tape::SoftmaxRows(Var a) {
  Matrix out = value(a);
  for (size_t i = 0; i < out.rows(); ++i) {
    double* row = out.row(i);
    double mx = row[0];
    for (size_t j = 1; j < out.cols(); ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (size_t j = 0; j < out.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    for (size_t j = 0; j < out.cols(); ++j) row[j] /= sum;
  }
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* na = &node(a);
  n->backward = [n, na]() {
    // dX_j = s_j * (dY_j - sum_k dY_k s_k), per row.
    for (size_t i = 0; i < n->grad.rows(); ++i) {
      const double* s = n->value.row(i);
      const double* dy = n->grad.row(i);
      double dot = 0.0;
      for (size_t j = 0; j < n->grad.cols(); ++j) dot += dy[j] * s[j];
      double* dx = na->grad.row(i);
      for (size_t j = 0; j < n->grad.cols(); ++j)
        dx[j] += s[j] * (dy[j] - dot);
    }
  };
  return v;
}

Var Tape::SumAll(Var a) {
  double s = 0.0;
  const Matrix& va = value(a);
  for (size_t i = 0; i < va.rows(); ++i)
    for (size_t j = 0; j < va.cols(); ++j) s += va(i, j);
  Matrix out(1, 1);
  out(0, 0) = s;
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* na = &node(a);
  n->backward = [n, na]() {
    const double g = n->grad(0, 0);
    for (size_t i = 0; i < na->grad.rows(); ++i)
      for (size_t j = 0; j < na->grad.cols(); ++j) na->grad(i, j) += g;
  };
  return v;
}

Var Tape::MeanAll(Var a) {
  const double inv =
      1.0 / static_cast<double>(std::max<size_t>(1, value(a).size()));
  return Scale(SumAll(a), inv);
}

Var Tape::MseLoss(Var pred, const Matrix& target) {
  const Matrix& p = value(pred);
  TCSS_CHECK(p.rows() == target.rows() && p.cols() == target.cols());
  double s = 0.0;
  for (size_t i = 0; i < p.rows(); ++i)
    for (size_t j = 0; j < p.cols(); ++j) {
      const double d = p(i, j) - target(i, j);
      s += d * d;
    }
  const double inv = 1.0 / static_cast<double>(std::max<size_t>(1, p.size()));
  Matrix out(1, 1);
  out(0, 0) = s * inv;
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* np = &node(pred);
  Matrix tgt = target;
  n->backward = [n, np, tgt = std::move(tgt), inv]() {
    const double g = n->grad(0, 0) * 2.0 * inv;
    for (size_t i = 0; i < np->grad.rows(); ++i)
      for (size_t j = 0; j < np->grad.cols(); ++j)
        np->grad(i, j) += g * (np->value(i, j) - tgt(i, j));
  };
  return v;
}

Var Tape::BceLoss(Var probs, const Matrix& target) {
  const Matrix& p = value(probs);
  TCSS_CHECK(p.rows() == target.rows() && p.cols() == target.cols());
  double s = 0.0;
  for (size_t i = 0; i < p.rows(); ++i)
    for (size_t j = 0; j < p.cols(); ++j) {
      const double q = std::clamp(p(i, j), kEps, 1.0 - kEps);
      const double t = target(i, j);
      s -= t * std::log(q) + (1.0 - t) * std::log(1.0 - q);
    }
  const double inv = 1.0 / static_cast<double>(std::max<size_t>(1, p.size()));
  Matrix out(1, 1);
  out(0, 0) = s * inv;
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* np = &node(probs);
  Matrix tgt = target;
  n->backward = [n, np, tgt = std::move(tgt), inv]() {
    const double g = n->grad(0, 0) * inv;
    for (size_t i = 0; i < np->grad.rows(); ++i)
      for (size_t j = 0; j < np->grad.cols(); ++j) {
        const double q = std::clamp(np->value(i, j), kEps, 1.0 - kEps);
        const double t = tgt(i, j);
        np->grad(i, j) += g * (q - t) / (q * (1.0 - q));
      }
  };
  return v;
}

Var Tape::WeightedMseLoss(Var pred, const Matrix& target,
                          const Matrix& weights) {
  const Matrix& p = value(pred);
  TCSS_CHECK(p.rows() == target.rows() && p.cols() == target.cols());
  TCSS_CHECK(p.rows() == weights.rows() && p.cols() == weights.cols());
  double s = 0.0;
  for (size_t i = 0; i < p.rows(); ++i)
    for (size_t j = 0; j < p.cols(); ++j) {
      const double d = p(i, j) - target(i, j);
      s += weights(i, j) * d * d;
    }
  const double inv = 1.0 / static_cast<double>(std::max<size_t>(1, p.size()));
  Matrix out(1, 1);
  out(0, 0) = s * inv;
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* np = &node(pred);
  Matrix tgt = target;
  Matrix w = weights;
  n->backward = [n, np, tgt = std::move(tgt), w = std::move(w), inv]() {
    const double g = n->grad(0, 0) * 2.0 * inv;
    for (size_t i = 0; i < np->grad.rows(); ++i)
      for (size_t j = 0; j < np->grad.cols(); ++j)
        np->grad(i, j) += g * w(i, j) * (np->value(i, j) - tgt(i, j));
  };
  return v;
}

}  // namespace tcss::nn
