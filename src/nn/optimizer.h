#ifndef TCSS_NN_OPTIMIZER_H_
#define TCSS_NN_OPTIMIZER_H_

#include <vector>

#include "nn/parameter.h"

namespace tcss::nn {

/// Adam optimizer over all parameters of a store (Kingma & Ba). Matches
/// the paper's training setup: lr 0.001 with decoupled weight decay.
class Adam {
 public:
  struct Options {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    /// Decoupled (AdamW-style) weight decay applied to values.
    double weight_decay = 0.0;
  };

  explicit Adam(ParameterStore* store) : Adam(store, Options()) {}
  Adam(ParameterStore* store, const Options& opts);

  /// Applies one update from the accumulated grads, then zeroes grads.
  void Step();

  int64_t steps() const { return t_; }

 private:
  ParameterStore* store_;
  Options opts_;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

/// Plain SGD with optional momentum.
class Sgd {
 public:
  struct Options {
    double lr = 1e-2;
    double momentum = 0.0;
  };

  explicit Sgd(ParameterStore* store) : Sgd(store, Options()) {}
  Sgd(ParameterStore* store, const Options& opts);
  void Step();

 private:
  ParameterStore* store_;
  Options opts_;
  std::vector<Matrix> velocity_;
};

}  // namespace tcss::nn

#endif  // TCSS_NN_OPTIMIZER_H_
