#include "nn/layers.h"

#include <cmath>

#include "common/logging.h"

namespace tcss::nn {
namespace {

Var Activate(Tape* tape, Var x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return tape->Relu(x);
    case Activation::kSigmoid:
      return tape->Sigmoid(x);
    case Activation::kTanh:
      return tape->Tanh(x);
  }
  return x;
}

// He/Xavier-style scale.
double InitStddev(size_t in, size_t out) {
  return std::sqrt(2.0 / static_cast<double>(in + out));
}

}  // namespace

Dense::Dense(ParameterStore* store, const std::string& name, size_t in,
             size_t out, Activation act, Rng* rng)
    : in_(in), out_(out), act_(act) {
  w_ = store->Create(name + ".w", in, out, rng, InitStddev(in, out));
  b_ = store->Create(name + ".b", Matrix(1, out));
}

Var Dense::Apply(Tape* tape, Var x) const {
  Var z = tape->MatMul(x, tape->Leaf(w_));
  z = tape->AddRowBroadcast(z, tape->Leaf(b_));
  return Activate(tape, z, act_);
}

Mlp::Mlp(ParameterStore* store, const std::string& name,
         const std::vector<size_t>& dims, Activation hidden,
         Activation output, Rng* rng) {
  TCSS_CHECK(dims.size() >= 2);
  for (size_t l = 0; l + 1 < dims.size(); ++l) {
    const bool last = (l + 2 == dims.size());
    layers_.emplace_back(store, name + ".l" + std::to_string(l), dims[l],
                         dims[l + 1], last ? output : hidden, rng);
  }
}

Var Mlp::Apply(Tape* tape, Var x) const {
  for (const auto& layer : layers_) x = layer.Apply(tape, x);
  return x;
}

LstmCell::LstmCell(ParameterStore* store, const std::string& name, size_t in,
                   size_t hidden, bool spatiotemporal, Rng* rng)
    : in_(in), hidden_(hidden), st_(spatiotemporal) {
  const double sx = InitStddev(in, hidden);
  const double sh = InitStddev(hidden, hidden);
  auto make = [&](const char* g, Parameter** wx, Parameter** wh,
                  Parameter** b) {
    *wx = store->Create(name + ".wx" + g, in, hidden, rng, sx);
    *wh = store->Create(name + ".wh" + g, hidden, hidden, rng, sh);
    *b = store->Create(name + ".b" + g, Matrix(1, hidden));
  };
  make("i", &wxi_, &whi_, &bi_);
  make("f", &wxf_, &whf_, &bf_);
  make("o", &wxo_, &who_, &bo_);
  make("c", &wxc_, &whc_, &bc_);
  if (st_) {
    wxt_ = store->Create(name + ".wxt", in, hidden, rng, sx);
    wt_ = store->Create(name + ".wt", 1, hidden, rng, 0.1);
    bt_ = store->Create(name + ".bt", Matrix(1, hidden));
    wxd_ = store->Create(name + ".wxd", in, hidden, rng, sx);
    wd_ = store->Create(name + ".wd", 1, hidden, rng, 0.1);
    bd_ = store->Create(name + ".bd", Matrix(1, hidden));
  }
}

LstmCell::State LstmCell::InitialState(Tape* tape, size_t batch) const {
  return {tape->Input(Matrix(batch, hidden_)),
          tape->Input(Matrix(batch, hidden_))};
}

Var LstmCell::Gate(Tape* tape, Var x, Var h, Parameter* wx, Parameter* wh,
                   Parameter* b) const {
  Var z = tape->Add(tape->MatMul(x, tape->Leaf(wx)),
                    tape->MatMul(h, tape->Leaf(wh)));
  return tape->AddRowBroadcast(z, tape->Leaf(b));
}

LstmCell::State LstmCell::Step(Tape* tape, Var x, const State& prev, Var dt,
                               Var dd) const {
  Var i = tape->Sigmoid(Gate(tape, x, prev.h, wxi_, whi_, bi_));
  Var f = tape->Sigmoid(Gate(tape, x, prev.h, wxf_, whf_, bf_));
  Var o = tape->Sigmoid(Gate(tape, x, prev.h, wxo_, who_, bo_));
  Var g = tape->Tanh(Gate(tape, x, prev.h, wxc_, whc_, bc_));
  Var update = tape->Mul(i, g);
  if (st_) {
    // STGN-style: the cell update is additionally gated by functions of the
    // time gap dt and distance gap dd (batch x 1, broadcast over hidden by
    // an outer product with learned row vectors).
    TCSS_CHECK(dt.valid() && dd.valid());
    Var t_feat = tape->MatMul(dt, tape->Leaf(wt_));  // batch x hidden
    Var t_gate = tape->Sigmoid(tape->AddRowBroadcast(
        tape->Add(tape->MatMul(x, tape->Leaf(wxt_)), t_feat),
        tape->Leaf(bt_)));
    Var d_feat = tape->MatMul(dd, tape->Leaf(wd_));
    Var d_gate = tape->Sigmoid(tape->AddRowBroadcast(
        tape->Add(tape->MatMul(x, tape->Leaf(wxd_)), d_feat),
        tape->Leaf(bd_)));
    update = tape->Mul(update, tape->Mul(t_gate, d_gate));
  }
  Var c = tape->Add(tape->Mul(f, prev.c), update);
  Var h = tape->Mul(o, tape->Tanh(c));
  return {h, c};
}

}  // namespace tcss::nn
