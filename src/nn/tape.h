#ifndef TCSS_NN_TAPE_H_
#define TCSS_NN_TAPE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "linalg/matrix.h"
#include "nn/parameter.h"

namespace tcss::nn {

/// Handle to a node on the tape (index into Tape::nodes_).
struct Var {
  int id = -1;
  bool valid() const { return id >= 0; }
};

/// Eager, tape-based reverse-mode autodiff over dense matrices. Each op
/// computes its value immediately and records a backward closure; calling
/// Backward(loss) runs the closures in reverse order, accumulating
/// gradients into node grads and, for Leaf nodes, into Parameter::grad.
///
/// A Tape represents one forward pass; construct a fresh Tape per training
/// step (cheap: vectors of small matrices) and reuse the ParameterStore.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // --- Graph construction -------------------------------------------------

  /// Constant input; no gradient is tracked through it.
  Var Input(Matrix value);

  /// Leaf bound to a trainable parameter; backward adds to p->grad.
  Var Leaf(Parameter* p);

  /// Selected rows of an embedding table parameter; backward scatters.
  Var Rows(Parameter* table, const std::vector<uint32_t>& row_ids);

  // --- Ops (shapes follow the dense Matrix conventions) -------------------

  Var MatMul(Var a, Var b);
  Var MatMulT(Var a, Var b);            ///< a * b^T
  Var Transpose(Var a);
  Var Add(Var a, Var b);                ///< elementwise, equal shapes
  Var Sub(Var a, Var b);
  Var Mul(Var a, Var b);                ///< Hadamard
  Var AddRowBroadcast(Var a, Var bias); ///< bias is 1 x n, added to each row
  Var Scale(Var a, double alpha);
  Var AddScalar(Var a, double c);

  Var Sigmoid(Var a);
  Var Tanh(Var a);
  Var Relu(Var a);

  /// Column-wise concatenation [a | b]; equal row counts.
  Var ConcatCols(Var a, Var b);

  /// Contiguous submatrix a[r0:r0+rows, c0:c0+cols].
  Var Slice(Var a, size_t r0, size_t c0, size_t rows, size_t cols);

  /// Elementwise multiply by a 1x1 node (gradient flows into both).
  Var MulScalarVar(Var a, Var scalar);

  /// Row-wise softmax.
  Var SoftmaxRows(Var a);

  /// Sum of all entries -> 1x1.
  Var SumAll(Var a);
  /// Mean of all entries -> 1x1.
  Var MeanAll(Var a);

  /// Mean squared error against a fixed target (same shape) -> 1x1.
  Var MseLoss(Var pred, const Matrix& target);

  /// Binary cross-entropy of probabilities in (0,1) against 0/1 targets,
  /// with clamping for numerical safety -> 1x1.
  Var BceLoss(Var probs, const Matrix& target);

  /// Weighted MSE: sum w ⊙ (pred - target)^2 / n -> 1x1.
  Var WeightedMseLoss(Var pred, const Matrix& target, const Matrix& weights);

  // --- Execution -----------------------------------------------------------

  const Matrix& value(Var v) const { return nodes_[v.id].value; }
  const Matrix& grad(Var v) const { return nodes_[v.id].grad; }

  /// Runs reverse-mode accumulation seeded with d(loss)/d(loss) = 1.
  /// `loss` must be 1x1. Parameter grads are *accumulated* (call
  /// ParameterStore::ZeroGrads() between steps).
  void Backward(Var loss);

  size_t NumNodes() const { return nodes_.size(); }

 private:
  struct Node {
    Matrix value;
    Matrix grad;
    Parameter* param = nullptr;  // set for Leaf/Rows nodes
    std::function<void()> backward;
  };

  Var NewNode(Matrix value);
  Node& node(Var v) { return nodes_[v.id]; }

  // deque: backward closures capture Node pointers, so addresses must be
  // stable under push_back.
  std::deque<Node> nodes_;
};

}  // namespace tcss::nn

#endif  // TCSS_NN_TAPE_H_
