#include "nn/tape.h"

#include <cmath>

#include "common/logging.h"

namespace tcss::nn {

Var Tape::NewNode(Matrix value) {
  Node n;
  n.grad = Matrix(value.rows(), value.cols());
  n.value = std::move(value);
  nodes_.push_back(std::move(n));
  return Var{static_cast<int>(nodes_.size()) - 1};
}

Var Tape::Input(Matrix value) { return NewNode(std::move(value)); }

Var Tape::Leaf(Parameter* p) {
  Var v = NewNode(p->value);
  node(v).param = p;
  // Gradient transfer into the parameter happens in Backward()'s final
  // pass, so no closure is needed here.
  return v;
}

Var Tape::Rows(Parameter* table, const std::vector<uint32_t>& row_ids) {
  const size_t cols = table->value.cols();
  Matrix out(row_ids.size(), cols);
  for (size_t r = 0; r < row_ids.size(); ++r) {
    TCSS_CHECK(row_ids[r] < table->value.rows());
    const double* src = table->value.row(row_ids[r]);
    double* dst = out.row(r);
    for (size_t c = 0; c < cols; ++c) dst[c] = src[c];
  }
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  std::vector<uint32_t> ids = row_ids;
  n->backward = [n, table, ids]() {
    const size_t cols = table->value.cols();
    for (size_t r = 0; r < ids.size(); ++r) {
      double* dst = table->grad.row(ids[r]);
      const double* src = n->grad.row(r);
      for (size_t c = 0; c < cols; ++c) dst[c] += src[c];
    }
  };
  return v;
}

Var Tape::MatMul(Var a, Var b) {
  Var v = NewNode(::tcss::MatMul(value(a), value(b)));
  Node* n = &node(v);
  Node* na = &node(a);
  Node* nb = &node(b);
  n->backward = [n, na, nb]() {
    // dA += dOut * B^T ; dB += A^T * dOut
    na->grad.Add(::tcss::MatMulT(n->grad, nb->value));
    nb->grad.Add(::tcss::MatTMul(na->value, n->grad));
  };
  return v;
}

Var Tape::MatMulT(Var a, Var b) {
  Var v = NewNode(::tcss::MatMulT(value(a), value(b)));
  Node* n = &node(v);
  Node* na = &node(a);
  Node* nb = &node(b);
  n->backward = [n, na, nb]() {
    // out = A B^T: dA += dOut * B ; dB += dOut^T * A
    na->grad.Add(::tcss::MatMul(n->grad, nb->value));
    nb->grad.Add(::tcss::MatTMul(n->grad, na->value));
  };
  return v;
}

Var Tape::Transpose(Var a) {
  Var v = NewNode(value(a).Transposed());
  Node* n = &node(v);
  Node* na = &node(a);
  n->backward = [n, na]() { na->grad.Add(n->grad.Transposed()); };
  return v;
}

Var Tape::Add(Var a, Var b) {
  Matrix out = value(a);
  out.Add(value(b));
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* na = &node(a);
  Node* nb = &node(b);
  n->backward = [n, na, nb]() {
    na->grad.Add(n->grad);
    nb->grad.Add(n->grad);
  };
  return v;
}

Var Tape::Sub(Var a, Var b) {
  Matrix out = value(a);
  out.Add(value(b), -1.0);
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* na = &node(a);
  Node* nb = &node(b);
  n->backward = [n, na, nb]() {
    na->grad.Add(n->grad);
    nb->grad.Add(n->grad, -1.0);
  };
  return v;
}

Var Tape::Mul(Var a, Var b) {
  Var v = NewNode(Hadamard(value(a), value(b)));
  Node* n = &node(v);
  Node* na = &node(a);
  Node* nb = &node(b);
  n->backward = [n, na, nb]() {
    na->grad.Add(Hadamard(n->grad, nb->value));
    nb->grad.Add(Hadamard(n->grad, na->value));
  };
  return v;
}

Var Tape::AddRowBroadcast(Var a, Var bias) {
  TCSS_CHECK(value(bias).rows() == 1);
  TCSS_CHECK(value(bias).cols() == value(a).cols());
  Matrix out = value(a);
  const Matrix& b = value(bias);
  for (size_t i = 0; i < out.rows(); ++i) {
    double* row = out.row(i);
    for (size_t j = 0; j < out.cols(); ++j) row[j] += b(0, j);
  }
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* na = &node(a);
  Node* nb = &node(bias);
  n->backward = [n, na, nb]() {
    na->grad.Add(n->grad);
    for (size_t i = 0; i < n->grad.rows(); ++i) {
      const double* row = n->grad.row(i);
      for (size_t j = 0; j < n->grad.cols(); ++j) nb->grad(0, j) += row[j];
    }
  };
  return v;
}

Var Tape::Scale(Var a, double alpha) {
  Matrix out = value(a);
  out.Scale(alpha);
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* na = &node(a);
  n->backward = [n, na, alpha]() { na->grad.Add(n->grad, alpha); };
  return v;
}

Var Tape::AddScalar(Var a, double c) {
  Matrix out = value(a);
  for (size_t i = 0; i < out.rows(); ++i)
    for (size_t j = 0; j < out.cols(); ++j) out(i, j) += c;
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* na = &node(a);
  n->backward = [n, na]() { na->grad.Add(n->grad); };
  return v;
}

Var Tape::Sigmoid(Var a) {
  Matrix out = value(a);
  for (size_t i = 0; i < out.rows(); ++i)
    for (size_t j = 0; j < out.cols(); ++j)
      out(i, j) = 1.0 / (1.0 + std::exp(-out(i, j)));
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* na = &node(a);
  n->backward = [n, na]() {
    for (size_t i = 0; i < n->grad.rows(); ++i)
      for (size_t j = 0; j < n->grad.cols(); ++j) {
        const double s = n->value(i, j);
        na->grad(i, j) += n->grad(i, j) * s * (1.0 - s);
      }
  };
  return v;
}

Var Tape::Tanh(Var a) {
  Matrix out = value(a);
  for (size_t i = 0; i < out.rows(); ++i)
    for (size_t j = 0; j < out.cols(); ++j) out(i, j) = std::tanh(out(i, j));
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* na = &node(a);
  n->backward = [n, na]() {
    for (size_t i = 0; i < n->grad.rows(); ++i)
      for (size_t j = 0; j < n->grad.cols(); ++j) {
        const double t = n->value(i, j);
        na->grad(i, j) += n->grad(i, j) * (1.0 - t * t);
      }
  };
  return v;
}

Var Tape::Relu(Var a) {
  Matrix out = value(a);
  for (size_t i = 0; i < out.rows(); ++i)
    for (size_t j = 0; j < out.cols(); ++j)
      if (out(i, j) < 0.0) out(i, j) = 0.0;
  Var v = NewNode(std::move(out));
  Node* n = &node(v);
  Node* na = &node(a);
  n->backward = [n, na]() {
    for (size_t i = 0; i < n->grad.rows(); ++i)
      for (size_t j = 0; j < n->grad.cols(); ++j)
        if (n->value(i, j) > 0.0) na->grad(i, j) += n->grad(i, j);
  };
  return v;
}

void Tape::Backward(Var loss) {
  TCSS_CHECK(value(loss).rows() == 1 && value(loss).cols() == 1)
      << "Backward expects a scalar loss";
  for (auto& n : nodes_) n.grad.Fill(0.0);
  nodes_[loss.id].grad(0, 0) = 1.0;
  for (size_t idx = nodes_.size(); idx-- > 0;) {
    if (nodes_[idx].backward) nodes_[idx].backward();
  }
  // Flush leaf node grads into their parameters.
  for (auto& n : nodes_) {
    if (n.param != nullptr && !n.backward) {
      n.param->grad.Add(n.grad);
    }
  }
}

}  // namespace tcss::nn
