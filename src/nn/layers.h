#ifndef TCSS_NN_LAYERS_H_
#define TCSS_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/tape.h"

namespace tcss::nn {

enum class Activation { kNone, kRelu, kSigmoid, kTanh };

/// Fully connected layer y = act(x W + b). W is (in x out), b is (1 x out).
class Dense {
 public:
  Dense() = default;
  Dense(ParameterStore* store, const std::string& name, size_t in, size_t out,
        Activation act, Rng* rng);

  Var Apply(Tape* tape, Var x) const;

  size_t in_dim() const { return in_; }
  size_t out_dim() const { return out_; }
  const Parameter* weights() const { return w_; }
  const Parameter* bias() const { return b_; }

 private:
  size_t in_ = 0, out_ = 0;
  Activation act_ = Activation::kNone;
  Parameter* w_ = nullptr;
  Parameter* b_ = nullptr;
};

/// Multi-layer perceptron: a stack of Dense layers with one activation on
/// hidden layers and a configurable output activation.
class Mlp {
 public:
  Mlp() = default;
  /// `dims` = {in, hidden..., out}.
  Mlp(ParameterStore* store, const std::string& name,
      const std::vector<size_t>& dims, Activation hidden, Activation output,
      Rng* rng);

  Var Apply(Tape* tape, Var x) const;

 private:
  std::vector<Dense> layers_;
};

/// LSTM cell with optional extra spatiotemporal gates (used by the STGN
/// baseline). Step() consumes one timestep for a batch of sequences.
class LstmCell {
 public:
  LstmCell() = default;
  /// If `spatiotemporal`, two extra gates modulated by scalar time/distance
  /// intervals are added (STGN-style).
  LstmCell(ParameterStore* store, const std::string& name, size_t in,
           size_t hidden, bool spatiotemporal, Rng* rng);

  struct State {
    Var h;  ///< batch x hidden
    Var c;  ///< batch x hidden
  };

  /// Zero initial state for a batch.
  State InitialState(Tape* tape, size_t batch) const;

  /// One step. `dt` and `dd` are per-row scalar columns (batch x 1) of
  /// time gap and distance gap; ignored unless spatiotemporal.
  State Step(Tape* tape, Var x, const State& prev, Var dt = {},
             Var dd = {}) const;

  size_t hidden() const { return hidden_; }

 private:
  Var Gate(Tape* tape, Var x, Var h, Parameter* wx, Parameter* wh,
           Parameter* b) const;

  size_t in_ = 0, hidden_ = 0;
  bool st_ = false;
  // input, forget, output, candidate
  Parameter *wxi_ = nullptr, *whi_ = nullptr, *bi_ = nullptr;
  Parameter *wxf_ = nullptr, *whf_ = nullptr, *bf_ = nullptr;
  Parameter *wxo_ = nullptr, *who_ = nullptr, *bo_ = nullptr;
  Parameter *wxc_ = nullptr, *whc_ = nullptr, *bc_ = nullptr;
  // spatiotemporal gates: T gate (time), D gate (distance)
  Parameter *wxt_ = nullptr, *wt_ = nullptr, *bt_ = nullptr;
  Parameter *wxd_ = nullptr, *wd_ = nullptr, *bd_ = nullptr;
};

}  // namespace tcss::nn

#endif  // TCSS_NN_LAYERS_H_
