#ifndef TCSS_NN_PARAMETER_H_
#define TCSS_NN_PARAMETER_H_

#include <deque>
#include <string>

#include "linalg/matrix.h"

namespace tcss::nn {

/// A trainable tensor: value plus accumulated gradient. Owned by a
/// ParameterStore; optimizers update `value` in place from `grad`.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;

  void ZeroGrad() { grad.Fill(0.0); }
};

/// Owns parameters with stable addresses (deque-backed). A model creates
/// all its parameters here; the optimizer iterates the store.
class ParameterStore {
 public:
  ParameterStore() = default;
  ParameterStore(const ParameterStore&) = delete;
  ParameterStore& operator=(const ParameterStore&) = delete;

  /// Creates a parameter initialized with i.i.d. N(0, stddev^2) entries.
  Parameter* Create(const std::string& name, size_t rows, size_t cols,
                    Rng* rng, double stddev) {
    params_.push_back(Parameter{name, Matrix::GaussianRandom(rows, cols, rng,
                                                             stddev),
                                Matrix(rows, cols)});
    return &params_.back();
  }

  /// Creates a parameter with an explicit initial value.
  Parameter* Create(const std::string& name, Matrix init) {
    Matrix grad(init.rows(), init.cols());
    params_.push_back(Parameter{name, std::move(init), std::move(grad)});
    return &params_.back();
  }

  size_t size() const { return params_.size(); }
  Parameter* at(size_t idx) { return &params_[idx]; }

  void ZeroGrads() {
    for (auto& p : params_) p.ZeroGrad();
  }

  /// Total number of scalar weights, for model summaries.
  size_t NumWeights() const {
    size_t n = 0;
    for (const auto& p : params_) n += p.value.size();
    return n;
  }

 private:
  std::deque<Parameter> params_;
};

}  // namespace tcss::nn

#endif  // TCSS_NN_PARAMETER_H_
