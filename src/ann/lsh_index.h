#ifndef TCSS_ANN_LSH_INDEX_H_
#define TCSS_ANN_LSH_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/factor_model.h"
#include "linalg/matrix.h"
#include "obs/metrics.h"

namespace tcss {
namespace ann {

/// Hard caps on index parameters; values beyond them are clamped at
/// construction so a hostile flag value cannot trigger a 2^64-bucket
/// allocation.
inline constexpr size_t kMaxLshTables = 64;
inline constexpr size_t kMaxLshBits = 20;
inline constexpr size_t kMaxLshProbes = 1024;

/// Parameters of the candidate-generation index (DESIGN.md §13).
struct LshConfig {
  /// Independent hash tables; more tables = higher recall, more memory.
  size_t tables = 8;
  /// Hyperplane bits per table (2^bits buckets). 0 = auto: sized so the
  /// mean bucket holds ~8 POIs, clamped to [2, kMaxLshBits]. Narrow
  /// buckets plus generous multi-probe beats wide buckets: the probe
  /// order skips low-confidence bits, so precision rises faster than
  /// recall falls.
  size_t bits = 0;
  /// Buckets probed per table: the base bucket plus the probes-1
  /// perturbed buckets, enumerated in increasing sum-of-squared-margin
  /// order over the flipped bits (multi-probe LSH). Clamped to the bucket
  /// count (2^bits) and kMaxLshProbes.
  size_t probes = 32;
  /// When the (possibly geo/candidate-intersected) candidate union is
  /// smaller than this, the service falls back to the exact path.
  size_t min_candidates = 64;
  /// Base seed; the effective projection seed mixes in the model
  /// fingerprint, so a retrained model gets fresh hyperplanes while a
  /// byte-identical model reproduces the index bit for bit.
  uint64_t seed = 0x7c55'a22'5eedULL;
};

/// Order-sensitive digest of the factors the index is built from (the POI
/// matrix and the h weights — the parts that define the scored inner
/// product). Two models with identical bytes get identical fingerprints;
/// any retrain perturbs it.
uint64_t ModelFingerprint(const FactorModel& model);

/// Multi-table random-hyperplane (SimHash) LSH over the POI factor rows.
///
/// Ranking POIs for a composed query q (q_t = h_t * U1[i,t] * U3[k,t]) is
/// a maximum-inner-product search over the rows of U2. MIPS is reduced to
/// cosine search by the standard norm augmentation: each row x becomes
/// [x; sqrt(M^2 - |x|^2)] (M = max row norm) and the query [q; 0], which
/// makes augmented-space cosine order equal inner-product order. Signed
/// random projections then bucket the augmented rows per table; a query
/// probes its base bucket plus the buckets across its lowest-confidence
/// hyperplanes (multi-probe) and returns the deduplicated union for exact
/// re-ranking by the caller.
///
/// The whole build is deterministic: projections come from a seeded RNG
/// (seed ⊕ model fingerprint), the projection pass runs through the
/// KernelTable gemm seam whose per-row accumulation chains are fixed, and
/// the ParallelFor shard decomposition depends only on the row count — so
/// the index bytes are identical at any build thread count (enforced by
/// tests/ann_test.cc).
class LshIndex {
 public:
  /// Builds the index over `model.u2`. If `metrics` is non-null, records
  /// ann.rebuild_ms and the per-bucket ann.bucket_occupancy histograms.
  /// Does not retain `model`.
  LshIndex(const FactorModel& model, const LshConfig& config,
           obs::MetricRegistry* metrics = nullptr);

  /// Union of the probed buckets across all tables for composed query
  /// vector `q` (length `r`, which must equal the build rank): sorted
  /// ascending, deduplicated. Thread-safe (read-only).
  std::vector<uint32_t> Candidates(const double* q, size_t r) const;

  size_t num_pois() const { return num_pois_; }
  size_t rank() const { return rank_; }
  size_t tables() const { return tables_; }
  size_t bits() const { return bits_; }
  uint64_t fingerprint() const { return fingerprint_; }
  double build_ms() const { return build_ms_; }

  /// Byte-exact image of the index state (config, projections, bucket
  /// offsets and ids) — the determinism tests compare these across build
  /// thread counts and seeds.
  std::string DebugBytes() const;

 private:
  size_t tables_ = 1;
  size_t bits_ = 2;
  size_t probes_ = 1;
  size_t num_pois_ = 0;
  size_t rank_ = 0;
  uint64_t fingerprint_ = 0;
  double build_ms_ = 0.0;
  /// (rank+1) x (tables*bits) hyperplane normals; the last row multiplies
  /// the MIPS augmentation coordinate (zero for queries).
  Matrix proj_;
  /// Per-table CSR buckets: offsets_[t] has 2^bits+1 entries, ids_[t]
  /// holds every POI id once, ascending within each bucket.
  std::vector<std::vector<size_t>> offsets_;
  std::vector<std::vector<uint32_t>> ids_;
};

}  // namespace ann
}  // namespace tcss

#endif  // TCSS_ANN_LSH_INDEX_H_
