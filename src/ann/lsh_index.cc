#include "ann/lsh_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/crc32.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "linalg/kernel_table.h"

namespace tcss {
namespace ann {
namespace {

/// SplitMix64 finalizer, the repo-wide seed mixer.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Auto bucket width: mean occupancy ~8 POIs per bucket.
size_t AutoBits(size_t num_pois) {
  size_t bits = 2;
  while (bits < kMaxLshBits && (num_pois >> bits) > 8) ++bits;
  return bits;
}

void AppendBytes(std::string* out, const void* p, size_t n) {
  out->append(reinterpret_cast<const char*>(p), n);
}

}  // namespace

uint64_t ModelFingerprint(const FactorModel& model) {
  uint32_t crc = 0;
  if (!model.u2.empty()) {
    crc = Crc32(model.u2.data(), model.u2.size() * sizeof(double), crc);
  }
  if (!model.h.empty()) {
    crc = Crc32(model.h.data(), model.h.size() * sizeof(double), crc);
  }
  uint64_t fp = Mix64((static_cast<uint64_t>(model.u2.rows()) << 20) ^
                      model.u2.cols());
  fp = Mix64(fp ^ crc);
  fp = Mix64(fp ^ model.h.size());
  return fp;
}

LshIndex::LshIndex(const FactorModel& model, const LshConfig& config,
                   obs::MetricRegistry* metrics) {
  Stopwatch sw;
  num_pois_ = model.u2.rows();
  rank_ = model.u2.cols();
  tables_ = std::clamp<size_t>(config.tables, 1, kMaxLshTables);
  bits_ = config.bits == 0 ? AutoBits(num_pois_)
                           : std::clamp<size_t>(config.bits, 2, kMaxLshBits);
  probes_ = std::clamp<size_t>(
      config.probes, 1, std::min(kMaxLshProbes, size_t{1} << bits_));
  fingerprint_ = ModelFingerprint(model);

  const size_t d = tables_ * bits_;
  // Hyperplanes from seed ⊕ fingerprint: a retrained model draws fresh
  // projections, a byte-identical model reproduces them exactly.
  Rng rng(Mix64(config.seed ^ fingerprint_));
  proj_ = Matrix::GaussianRandom(rank_ + 1, d, &rng);

  // MIPS→cosine augmentation coordinate per POI row.
  std::vector<double> aug(num_pois_, 0.0);
  double max_sq = 0.0;
  for (size_t j = 0; j < num_pois_; ++j) {
    const double* x = model.u2.row(j);
    double sq = 0.0;
    for (size_t t = 0; t < rank_; ++t) sq += x[t] * x[t];
    aug[j] = sq;  // stash |x|^2, finished below once M is known
    max_sq = std::max(max_sq, sq);
  }
  for (size_t j = 0; j < num_pois_; ++j) {
    aug[j] = std::sqrt(std::max(0.0, max_sq - aug[j]));
  }

  // Projection pass H = [U2 aug] · proj through the kernel gemm seam: one
  // row-sharded dense gemm over all POI rows plus a rank-1 update for the
  // augmentation column (this avoids materializing the augmented J×(r+1)
  // matrix). Each row's accumulation chain lives entirely inside one
  // shard, so the result is bitwise thread-count-invariant.
  Matrix h(num_pois_, d);
  std::vector<uint32_t> bucket_of(num_pois_ * tables_, 0);
  if (num_pois_ > 0) {
    const KernelTable& kernels = ActiveKernels();
    const double* proj_aug = proj_.row(rank_);
    ParallelFor(num_pois_, 256, [&](size_t begin, size_t end, size_t) {
      if (rank_ > 0) {
        kernels.gemm_rows(model.u2.data(), proj_.data(), h.data(), begin,
                          end, rank_, d);
      }
      kernels.gemm_rows(aug.data(), proj_aug, h.data(), begin, end, 1, d);
      for (size_t j = begin; j < end; ++j) {
        const double* hrow = h.row(j);
        for (size_t t = 0; t < tables_; ++t) {
          uint32_t bucket = 0;
          for (size_t bit = 0; bit < bits_; ++bit) {
            if (hrow[t * bits_ + bit] >= 0.0) bucket |= 1u << bit;
          }
          bucket_of[j * tables_ + t] = bucket;
        }
      }
    });
  }

  // CSR buckets by counting sort: ids ascending within each bucket, one
  // pass per table. Serial — O(J·tables) index arithmetic.
  const size_t num_buckets = size_t{1} << bits_;
  offsets_.assign(tables_, {});
  ids_.assign(tables_, {});
  for (size_t t = 0; t < tables_; ++t) {
    auto& off = offsets_[t];
    off.assign(num_buckets + 1, 0);
    for (size_t j = 0; j < num_pois_; ++j) {
      ++off[bucket_of[j * tables_ + t] + 1];
    }
    for (size_t b = 0; b < num_buckets; ++b) off[b + 1] += off[b];
    auto& ids = ids_[t];
    ids.resize(num_pois_);
    std::vector<size_t> cursor(off.begin(), off.end() - 1);
    for (size_t j = 0; j < num_pois_; ++j) {
      ids[cursor[bucket_of[j * tables_ + t]]++] = static_cast<uint32_t>(j);
    }
  }

  build_ms_ = sw.ElapsedMillis();
  if (metrics != nullptr) {
    metrics->GetHistogram("ann.rebuild_ms")->Record(build_ms_);
    obs::Histogram* occupancy = metrics->GetHistogram("ann.bucket_occupancy");
    for (size_t t = 0; t < tables_; ++t) {
      for (size_t b = 0; b < num_buckets; ++b) {
        const size_t n = offsets_[t][b + 1] - offsets_[t][b];
        if (n > 0) occupancy->Record(static_cast<double>(n));
      }
    }
  }
}

std::vector<uint32_t> LshIndex::Candidates(const double* q, size_t r) const {
  std::vector<uint32_t> out;
  if (q == nullptr || r != rank_ || num_pois_ == 0) return out;
  const size_t d = tables_ * bits_;
  // z = projᵀ q; the query's augmentation coordinate is exactly zero, so
  // the last projection row never contributes.
  std::vector<double> z(d, 0.0);
  for (size_t t = 0; t < rank_; ++t) {
    const double qt = q[t];
    if (qt == 0.0) continue;
    const double* prow = proj_.row(t);
    for (size_t i = 0; i < d; ++i) z[i] += qt * prow[i];
  }
  std::vector<std::pair<double, uint32_t>> margin(bits_);
  // A perturbation set is a subset of the margin-sorted bit positions,
  // encoded as a mask over positions; its score is the sum of squared
  // margins of the flipped bits (the standard multi-probe LSH ordering:
  // cheaper sets are likelier to hold the true bucket). Heap entries are
  // (score, position-mask); comparing the mask on score ties keeps the
  // probe order fully deterministic.
  using Pert = std::pair<double, uint32_t>;
  std::vector<Pert> heap;
  const auto later = [](const Pert& a, const Pert& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  };
  for (size_t t = 0; t < tables_; ++t) {
    const double* zt = z.data() + t * bits_;
    uint32_t base = 0;
    for (size_t bit = 0; bit < bits_; ++bit) {
      if (zt[bit] >= 0.0) base |= 1u << bit;
      margin[bit] = {std::fabs(zt[bit]), static_cast<uint32_t>(bit)};
    }
    // Sorting the (|margin|, bit) pairs breaks ties on the bit index —
    // deterministic even for degenerate projections.
    std::sort(margin.begin(), margin.end());
    const auto gather = [&](uint32_t bucket) {
      const auto& ids = ids_[t];
      out.insert(out.end(), ids.begin() + offsets_[t][bucket],
                 ids.begin() + offsets_[t][bucket + 1]);
    };
    gather(base);
    // Enumerate perturbation sets in nondecreasing score order with the
    // shift/expand successor scheme (Lv et al.): popping the set whose
    // largest sorted position is `top` yields two successors, "shift"
    // (move `top` one position up) and "expand" (also keep `top`). Every
    // non-empty subset is reached exactly once.
    heap.clear();
    if (bits_ > 0 && probes_ > 1) {
      heap.push_back({margin[0].first * margin[0].first, 1u});
    }
    for (size_t p = 1; p < probes_ && !heap.empty(); ++p) {
      std::pop_heap(heap.begin(), heap.end(), later);
      const Pert cur = heap.back();
      heap.pop_back();
      uint32_t bucket = base;
      uint32_t mask = cur.second;
      uint32_t top = 0;
      while (mask != 0) {
        const uint32_t pos = static_cast<uint32_t>(__builtin_ctz(mask));
        mask &= mask - 1;
        bucket ^= 1u << margin[pos].second;
        top = pos;
      }
      gather(bucket);
      if (top + 1 < bits_) {
        const double step = margin[top + 1].first * margin[top + 1].first -
                            margin[top].first * margin[top].first;
        const uint32_t shifted =
            (cur.second & ~(1u << top)) | (1u << (top + 1));
        heap.push_back({cur.first + step, shifted});
        std::push_heap(heap.begin(), heap.end(), later);
        heap.push_back({cur.first + margin[top + 1].first *
                                        margin[top + 1].first,
                        cur.second | (1u << (top + 1))});
        std::push_heap(heap.begin(), heap.end(), later);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string LshIndex::DebugBytes() const {
  std::string out;
  const uint64_t header[6] = {tables_, bits_,      probes_,
                              num_pois_, rank_, fingerprint_};
  AppendBytes(&out, header, sizeof(header));
  if (!proj_.empty()) {
    AppendBytes(&out, proj_.data(), proj_.size() * sizeof(double));
  }
  for (size_t t = 0; t < tables_; ++t) {
    AppendBytes(&out, offsets_[t].data(),
                offsets_[t].size() * sizeof(size_t));
    if (!ids_[t].empty()) {
      AppendBytes(&out, ids_[t].data(), ids_[t].size() * sizeof(uint32_t));
    }
  }
  return out;
}

}  // namespace ann
}  // namespace tcss
